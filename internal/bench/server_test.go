package bench

import "testing"

// TestE16SublinearCrowdCost pins the acceptance criterion of the
// multi-session server: total paid crowd comparisons for K concurrent
// sessions issuing overlapping CROWDEQUAL/CROWDORDER queries grow
// sublinearly in K.
func TestE16SublinearCrowdCost(t *testing.T) {
	one, err := e16Run(42, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.comparisons == 0 {
		t.Fatal("single session paid nothing; workload broken")
	}
	eight, err := e16Run(42, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Linear growth would be 8x the single-session cost. Require well
	// under 2x: the shared work is paid once, only the one private
	// comparison per session scales.
	if eight.comparisons >= 2*one.comparisons {
		t.Errorf("8 sessions paid %d comparisons vs %d for 1 session — not sublinear",
			eight.comparisons, one.comparisons)
	}
	if eight.hitRate <= one.hitRate {
		t.Errorf("hit rate did not improve with sharing: %f -> %f", one.hitRate, eight.hitRate)
	}
}

// TestE16SingleSessionDeterministic: the fixed-seed single-session run is
// reproducible bit-for-bit (same paid comparisons, HITs, and spend).
func TestE16SingleSessionDeterministic(t *testing.T) {
	a, err := e16Run(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e16Run(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("single-session run not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}
