package bench

import "testing"

// TestE23Shape pins the crash-recovery experiment's claims: the resumed
// stream is byte-identical to the uninterrupted run (zero divergence, a
// clean ?from= reconnect tail), the resume never re-pays a persisted
// comparison, the budget settles at exactly the uninterrupted value, and
// the admission rejection costs nothing.
func TestE23Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full crash/restart harness in -short mode")
	}
	tab := E23CrashRecovery(42)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %v (notes %v)", tab.Rows, tab.Notes)
	}
	if got := tab.Metrics["baseline_rows_out"]; got != e23Pairs {
		t.Errorf("baseline rows = %v, want %d", got, e23Pairs)
	}
	for _, gate := range []string{
		"resumed_not_done_err",
		"rows_divergence_err",
		"reconnect_tail_divergence_err",
		"repaid_comparisons_err",
		"budget_left_delta_err",
		"admission_not_rejected_err",
		"admission_spend_cents",
		"admission_hit_groups",
		"admission_budget_delta_err",
	} {
		if got := tab.Metrics[gate]; got != 0 {
			t.Errorf("%s = %v, want 0", gate, got)
		}
	}
	// The crash must land mid-stream for the arm to mean anything: some
	// answers persisted, but not all of them.
	persisted := tab.Metrics["persisted_answers_precrash"]
	if persisted <= 0 || persisted >= e23Pairs {
		t.Errorf("persisted answers pre-crash = %v, want in (0, %d)", persisted, e23Pairs)
	}
	if groups := tab.Metrics["resumed_hit_groups"]; groups != e23Pairs-persisted {
		t.Errorf("resumed run posted %v groups, want %v (the answers the crash lost)",
			groups, e23Pairs-persisted)
	}
}
