package bench

// E21: observability overhead. PR 7 threads trace spans, per-operator
// instrumentation, and metrics counters through the whole stack; the
// instrumented wrapper is only installed when a statement runs with a
// trace or an ANALYZE stats map, so the untraced hot path must stay
// byte-identical. This experiment runs the same fixed workload — one
// crowd-paid entity-resolution SELECT plus a train of cache-served
// repeats — under both arms: observability on (the default; every
// statement records an engine-owned trace) and Config.
// DisableObservability (the control: no tracer, no spans).
//
// Determinism note for the benchdiff gate: crowd work, HIT groups, and
// row counts must be IDENTICAL across arms — tracing must never change
// what the engine does, only record it — and those metrics are gated.
// Wall-clock times and the overhead ratio are informational (their keys
// avoid the gate's directional classifiers).

import (
	"fmt"
	"time"

	"crowddb/internal/core"
	"crowddb/internal/crowd/amt"
	"crowddb/internal/sqltypes"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

const (
	e21Pairs   = 8  // company pairs in the fixture
	e21Repeats = 24 // cache-served repeat SELECTs after the paid one
)

// e21Arm runs the fixed workload once and reports its deterministic
// counters and wall time. disable selects the control arm.
func e21Arm(seed int64, disable bool) (comparisons, groups, rows, spans int, wall time.Duration, err error) {
	conf := workload.NewConference(8, seed)
	eng, err := core.Open(core.Config{
		Platform:             amt.NewDefault(seed),
		Oracle:               conf.Oracle(),
		Payment:              wrm.DefaultPolicy(),
		Tasks:                fastTasks(),
		DisableObservability: disable,
	})
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	defer eng.Close()
	if _, err := eng.Exec(`CREATE TABLE Pair (id INTEGER PRIMARY KEY, a STRING, b STRING)`); err != nil {
		return 0, 0, 0, 0, 0, err
	}
	cs := workload.NewCompanies(e21Pairs, seed)
	for i, c := range cs.List {
		variant := c.Variants[len(c.Variants)-1] // true match under the oracle
		if _, err := eng.Exec(fmt.Sprintf("INSERT INTO Pair VALUES (%d, %s, %s)",
			i, sqltypes.NewString(c.Canonical).SQLLiteral(), sqltypes.NewString(variant).SQLLiteral())); err != nil {
			return 0, 0, 0, 0, 0, err
		}
	}

	const q = "SELECT id FROM Pair WHERE a ~= b"
	start := time.Now()
	for i := 0; i <= e21Repeats; i++ { // first iteration pays the crowd
		res, err := eng.Exec(q)
		if err != nil {
			return 0, 0, 0, 0, 0, err
		}
		comparisons += res.Stats.Comparisons
		rows += len(res.Rows)
	}
	wall = time.Since(start)
	groups = eng.Tasks().Stats().GroupsPosted
	if tracer := eng.Tracer(); tracer != nil {
		// The paid statement's trace is the first SELECT after the
		// fixture's 1 CREATE + e21Pairs INSERTs.
		if tr := tracer.Lookup(fmt.Sprintf("q%06d", e21Pairs+2)); tr != nil {
			spans = tr.SpanCount()
		}
	}
	return comparisons, groups, rows, spans, wall, nil
}

// E21ObservabilityOverhead is the tracing-overhead harness.
func E21ObservabilityOverhead(seed int64) *Table {
	tab := &Table{
		ID:      "E21",
		Title:   "observability overhead: traced vs DisableObservability on a crowd workload (extension)",
		Exhibit: "per-query trace spans and metrics with an untouched untraced hot path (post-paper extension)",
		Headers: []string{"arm", "paid comparisons", "HIT groups", "rows out", "trace spans", "wall"},
		Metrics: map[string]float64{},
	}
	onCmp, onGroups, onRows, onSpans, onWall, err := e21Arm(seed, false)
	if err != nil {
		tab.Notes = append(tab.Notes, err.Error())
		return tab
	}
	offCmp, offGroups, offRows, offSpans, offWall, err := e21Arm(seed, true)
	if err != nil {
		tab.Notes = append(tab.Notes, err.Error())
		return tab
	}
	tab.AddRow("observability on", fmt.Sprintf("%d", onCmp), fmt.Sprintf("%d", onGroups),
		fmt.Sprintf("%d", onRows), fmt.Sprintf("%d", onSpans), onWall.String())
	tab.AddRow("observability off", fmt.Sprintf("%d", offCmp), fmt.Sprintf("%d", offGroups),
		fmt.Sprintf("%d", offRows), fmt.Sprintf("%d", offSpans), offWall.String())

	// Deterministic, gated: the two arms must do identical crowd work.
	tab.Metrics["on_comparisons"] = float64(onCmp)
	tab.Metrics["off_comparisons"] = float64(offCmp)
	tab.Metrics["on_groups"] = float64(onGroups)
	tab.Metrics["off_groups"] = float64(offGroups)
	tab.Metrics["on_rows_out"] = float64(onRows)
	tab.Metrics["off_rows_out"] = float64(offRows)
	tab.Metrics["arm_divergence_err"] = float64(abs(onCmp-offCmp) + abs(onGroups-offGroups) + abs(onRows-offRows))
	// Informational: span volume and wall clock (keys avoid the gate's
	// directional classifiers — wall time is machine noise).
	tab.Metrics["trace_span_volume"] = float64(onSpans)
	tab.Metrics["on_wall_micros"] = float64(onWall.Microseconds())
	tab.Metrics["off_wall_micros"] = float64(offWall.Microseconds())
	if offWall > 0 {
		tab.Metrics["overhead_wall_ratio"] = float64(onWall) / float64(offWall)
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("both arms run 1 paid + %d cache-served SELECTs; gated metrics assert identical crowd work", e21Repeats),
		"wall-clock keys are informational; the arm_divergence_err gate pins tracing as observation-only")
	return tab
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}
