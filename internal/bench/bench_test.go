package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"

	"crowddb/internal/taskmgr"
)

// parse helpers for table cells.

func cellDur(t *testing.T, s string) time.Duration {
	t.Helper()
	s = strings.TrimSpace(s)
	switch {
	case strings.HasSuffix(s, "m"):
		f, err := strconv.ParseFloat(strings.TrimSuffix(s, "m"), 64)
		if err != nil {
			t.Fatalf("bad duration %q", s)
		}
		return time.Duration(f * float64(time.Minute))
	case strings.HasSuffix(s, "h"):
		f, err := strconv.ParseFloat(strings.TrimSuffix(s, "h"), 64)
		if err != nil {
			t.Fatalf("bad duration %q", s)
		}
		return time.Duration(f * float64(time.Hour))
	}
	t.Fatalf("bad duration %q", s)
	return 0
}

func cellPct(t *testing.T, s string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(s), "%"), 64)
	if err != nil {
		t.Fatalf("bad percent %q", s)
	}
	return f
}

func cellInt(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		t.Fatalf("bad int %q", s)
	}
	return n
}

func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("bad float %q", s)
	}
	return f
}

// E1: the 1¢ group must finish strictly slower than the 4¢ group.
func TestE1Shape(t *testing.T) {
	tab := E1CompletionVsReward(42)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	cheap := cellDur(t, tab.Rows[0][4])
	rich := cellDur(t, tab.Rows[3][4])
	if rich >= cheap {
		t.Errorf("paper shape violated: 4c (%v) must beat 1c (%v)", rich, cheap)
	}
}

// E2: per-assignment throughput for 50-HIT groups beats single HITs.
func TestE2Shape(t *testing.T) {
	tab := E2TurnaroundVsBatch(42)
	if len(tab.Rows) != 6 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	small := cellFloat(t, tab.Rows[0][3])
	big := cellFloat(t, tab.Rows[4][3])
	if big <= small {
		t.Errorf("throughput must grow with batch size: %f vs %f", small, big)
	}
}

// E3: top-10 workers must do the majority of all assignments.
func TestE3Shape(t *testing.T) {
	tab := E3WorkerAffinity(42)
	if len(tab.Rows) != 1 {
		t.Fatal("one row expected")
	}
	if share := cellPct(t, tab.Rows[0][4]); share < 50 {
		t.Errorf("affinity skew too weak: top-10 = %.0f%%", share)
	}
	if gini := cellFloat(t, tab.Rows[0][5]); gini < 0.3 {
		t.Errorf("gini too low: %f", gini)
	}
}

// E4: voted error at replication 7 must be well under replication 1, and
// raw error must stay roughly flat.
func TestE4Shape(t *testing.T) {
	tab := E4MajorityVote(42)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	v1 := cellPct(t, tab.Rows[0][2])
	v7 := cellPct(t, tab.Rows[3][2])
	if v7 >= v1 {
		t.Errorf("majority vote must reduce error: r1=%f r7=%f", v1, v7)
	}
	if v7 > 5 {
		t.Errorf("7-way vote error too high: %f%%", v7)
	}
}

// E5: completeness should be high and one probe task per professor.
func TestE5Shape(t *testing.T) {
	tab := E5CrowdProbe(42)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	for i, n := range []int{10, 25, 50} {
		if filled := cellPct(t, tab.Rows[i][1]); filled < 80 {
			t.Errorf("n=%d completeness too low: %.0f%%", n, filled)
		}
		// One task per tuple plus quality-control retries for failed quorums.
		if tasks := cellInt(t, tab.Rows[i][3]); tasks < n || tasks > 2*n {
			t.Errorf("n=%d: %d probe tasks (expected n..2n)", n, tasks)
		}
	}
}

// E6: batching must post far fewer groups and finish much faster.
func TestE6Shape(t *testing.T) {
	tab := E6CrowdJoin(42)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	batchedGroups := cellInt(t, tab.Rows[0][1])
	naiveGroups := cellInt(t, tab.Rows[1][1])
	// The batched join posts at most one async window of concurrent groups;
	// the naive strategy posts (and serializes) one group per outer tuple.
	window := taskmgr.DefaultConfig().MaxInFlight
	if batchedGroups < 1 || batchedGroups > window || naiveGroups < 10 || batchedGroups >= naiveGroups {
		t.Errorf("groups: batched=%d naive=%d (window %d)", batchedGroups, naiveGroups, window)
	}
	if cellDur(t, tab.Rows[0][4]) >= cellDur(t, tab.Rows[1][4]) {
		t.Errorf("batched join must be faster: %v", tab.Rows)
	}
}

// E7: precision grows with replication; recall stays high.
func TestE7Shape(t *testing.T) {
	tab := E7EntityResolution(42)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	p1 := cellFloat(t, tab.Rows[0][1])
	p5 := cellFloat(t, tab.Rows[2][1])
	if p5 < p1 {
		t.Errorf("precision must not degrade with votes: %f -> %f", p1, p5)
	}
	if r5 := cellFloat(t, tab.Rows[2][2]); r5 < 0.6 {
		t.Errorf("recall at 5 votes too low: %f", r5)
	}
}

// E8: Kendall tau must improve from 1 to 5 votes and be clearly positive.
func TestE8Shape(t *testing.T) {
	tab := E8CrowdOrder(42)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	t1 := cellFloat(t, tab.Rows[0][1])
	t5 := cellFloat(t, tab.Rows[2][1])
	if t5 < t1 {
		t.Errorf("tau must not degrade with votes: %f -> %f", t1, t5)
	}
	if t5 < 0.5 {
		t.Errorf("5-vote tau too low: %f", t5)
	}
}

// E9: both forms must render with the expected inputs.
func TestE9Shape(t *testing.T) {
	forms, err := GeneratedForms()
	if err != nil {
		t.Fatal(err)
	}
	if len(forms) != 2 {
		t.Fatalf("forms: %d", len(forms))
	}
	fig2 := forms[0]
	if fig2.Inputs != 1 || !strings.Contains(fig2.HTML, "CrowdDB") {
		t.Errorf("fig2 probe form wrong: %+v", fig2)
	}
	fig3 := forms[1]
	if fig3.Inputs != 2 || !strings.Contains(fig3.HTML, "Which talk did you like better") {
		t.Errorf("fig3 order form wrong: inputs=%d", fig3.Inputs)
	}
}

// E10: each disabled rule must cost strictly more crowd work than the full
// rule set, and the un-reordered join must find fewer results.
func TestE10Shape(t *testing.T) {
	tab := E10OptimizerRules(42)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	full := cellInt(t, tab.Rows[0][1])
	noPush := cellInt(t, tab.Rows[1][1])
	noStop := cellInt(t, tab.Rows[2][1])
	if noPush <= full {
		t.Errorf("no-pushdown must probe more: %d vs %d", noPush, full)
	}
	if noStop <= full {
		t.Errorf("no-stopafter must probe more: %d vs %d", noStop, full)
	}
	joinFull := cellInt(t, tab.Rows[3][3])
	joinNoReorder := cellInt(t, tab.Rows[4][3])
	if joinNoReorder >= joinFull {
		t.Errorf("without reorder the crowd inner cannot be solicited: %d vs %d rows", joinNoReorder, joinFull)
	}
}

// E11: the two unbounded queries are rejected, the bounded four accepted.
func TestE11Shape(t *testing.T) {
	tab := E11Boundedness(42)
	if len(tab.Rows) != 6 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	wantRejected := map[int]bool{0: true, 5: true}
	for i, row := range tab.Rows {
		rejected := strings.Contains(row[1], "REJECTED")
		if rejected != wantRejected[i] {
			t.Errorf("query %d (%s): verdict %q", i, row[0], row[1])
		}
	}
}

// E12: the mobile crowd must answer faster than generic AMT.
func TestE12Shape(t *testing.T) {
	tab := E12MobileVsAMT(42)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	amtTime := cellDur(t, tab.Rows[0][3])
	mobTime := cellDur(t, tab.Rows[1][3])
	if mobTime >= amtTime {
		t.Errorf("mobile must be faster: amt=%v mobile=%v", amtTime, mobTime)
	}
}

func TestRunAllPrints(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in -short mode")
	}
	var buf bytes.Buffer
	RunAll(&buf, 7)
	out := buf.String()
	for _, e := range All() {
		if !strings.Contains(out, "== "+e.ID+":") {
			t.Errorf("output missing %s", e.ID)
		}
	}
}
