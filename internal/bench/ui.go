package bench

import (
	"fmt"
	"strings"

	"crowddb/internal/catalog"
	"crowddb/internal/sqltypes"
	"crowddb/internal/ui"
)

// E9UIGeneration reproduces the demo's Figs. 2–3: the automatically
// generated task user interfaces for the Example 1 query — the Mechanical
// Turk probe form asking for the missing CrowdDB abstract, and the mobile
// comparison card. The table reports structural facts about the generated
// HTML; GeneratedForms returns the artifacts themselves.
func E9UIGeneration(seed int64) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "schema-driven task UI generation",
		Exhibit: "demo Figs. 2-3 (generated AMT and mobile task forms)",
		Headers: []string{"form", "fields", "inputs", "bytes"},
	}
	forms, err := GeneratedForms()
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	for _, f := range forms {
		t.AddRow(f.Name, fmt.Sprintf("%d", f.Fields), fmt.Sprintf("%d", f.Inputs), fmt.Sprintf("%d", len(f.HTML)))
	}
	t.Notes = append(t.Notes, "templates are generated at schema definition time and instantiated per tuple at run time")
	return t
}

// Form is one generated UI artifact.
type Form struct {
	Name   string
	Fields int
	Inputs int
	HTML   string
}

// GeneratedForms builds the paper's two example task UIs.
func GeneratedForms() ([]Form, error) {
	cat := catalog.New()
	err := cat.CreateTable(&catalog.Table{
		Name: "Talk",
		Columns: []catalog.Column{
			{Name: "title", Type: sqltypes.TypeString, PrimaryKey: true},
			{Name: "abstract", Type: sqltypes.TypeString, Crowd: true},
			{Name: "nb_attendees", Type: sqltypes.TypeInt, Crowd: true},
		},
	})
	if err != nil {
		return nil, err
	}
	m := ui.NewManager(cat)
	m.GenerateAll()

	var forms []Form
	// Fig. 2: the AMT probe form for SELECT abstract FROM Talk WHERE
	// title = "CrowdDB".
	fields, html, err := m.ProbeForm("Talk",
		map[string]sqltypes.Value{"title": sqltypes.NewString("CrowdDB"), "abstract": sqltypes.CNull()},
		[]string{"abstract"})
	if err != nil {
		return nil, err
	}
	forms = append(forms, Form{Name: "fig2-amt-probe", Fields: len(fields), Inputs: countInputs(html), HTML: html})

	// Fig. 3: the mobile comparison card for Example 3's CROWDORDER.
	fields, html, err = m.CompareOrderForm("Which talk did you like better",
		"CrowdDB: Query Processing with the VLDB Crowd", "Another VLDB Talk")
	if err != nil {
		return nil, err
	}
	forms = append(forms, Form{Name: "fig3-mobile-order", Fields: len(fields), Inputs: countInputs(html), HTML: html})
	return forms, nil
}

func countInputs(html string) int {
	return strings.Count(html, "<input ")
}
