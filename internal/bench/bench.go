// Package bench is the experiment harness that regenerates the paper's
// evaluation exhibits (see DESIGN.md §4 for the experiment index E1–E12
// and EXPERIMENTS.md for recorded paper-vs-measured results). Each
// experiment returns a Table whose rows are the series the corresponding
// figure plots; cmd/crowdbench prints them and the root bench_test.go
// wraps them as testing.B benchmarks.
//
// Beyond the paper's exhibits, E13–E15 are extensions: E13 diurnal
// responsiveness, E14 weighted-vote quality control, and E15 the
// asynchronous HIT scheduler — wall-clock turnaround of a fixed workload
// as the Task Manager's in-flight window (taskmgr.Config.MaxInFlight)
// grows from 1 (the serial task manager) to 8 groups live at once.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"crowddb/internal/core"
	"crowddb/internal/crowd"
	"crowddb/internal/crowd/amt"
	"crowddb/internal/sim"
	"crowddb/internal/sqltypes"
	"crowddb/internal/taskmgr"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

// Table is one experiment's output: the rows a paper figure/table plots.
type Table struct {
	ID      string
	Title   string
	Exhibit string // which paper exhibit this regenerates
	Headers []string
	Rows    [][]string
	Notes   []string
	// Metrics carries machine-readable headline numbers (ops/sec, crowd
	// cost, cache hit rate, ...) for crowdbench's BENCH_<id>.json output.
	Metrics map[string]float64
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "   reproduces: %s\n", t.Exhibit)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		fmt.Fprint(w, "   ")
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Headers)
	total := 3
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, "   "+strings.Repeat("-", total-3))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// fmtDur renders a virtual duration compactly (minutes under 2h, hours
// otherwise).
func fmtDur(d time.Duration) string {
	if d < 2*time.Hour {
		return fmt.Sprintf("%.0fm", d.Minutes())
	}
	return fmt.Sprintf("%.1fh", d.Hours())
}

func fmtPct(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }

// probeHITGroup builds a synthetic probe group of n HITs whose ground
// truth is "v<i>"; used by the platform micro-benchmarks E1–E4.
func probeHITGroup(n, assignments int, reward crowd.Cents) *crowd.HITGroup {
	g := &crowd.HITGroup{
		Title:       "platform microbenchmark",
		Kind:        crowd.TaskProbeValues,
		Reward:      reward,
		Assignments: assignments,
	}
	for i := 0; i < n; i++ {
		g.HITs = append(g.HITs, &crowd.HIT{
			ID:   fmt.Sprintf("H%04d", i),
			Kind: crowd.TaskProbeValues,
			Fields: []crowd.Field{
				{Name: "item", Kind: crowd.FieldDisplay, Value: fmt.Sprintf("item %d", i)},
				{Name: "value", Kind: crowd.FieldInput, Label: "enter the value"},
			},
			Truth: &crowd.SimTruth{
				Truth: map[string]string{"value": fmt.Sprintf("v%d", i)},
				Wrong: map[string][]string{"value": {fmt.Sprintf("v%d", i+1), "something else"}},
			},
		})
	}
	return g
}

// stepUntilDone advances a market until the group completes (or maxT),
// returning completion time and a completion-percentage series sampled at
// `sample` intervals.
func stepUntilDone(m *sim.Market, id crowd.GroupID, sample, maxT time.Duration) (time.Duration, []float64) {
	var series []float64
	for elapsed := time.Duration(0); elapsed < maxT; elapsed += sample {
		m.Step(sample)
		st, err := m.Status(id)
		if err != nil {
			break
		}
		series = append(series, float64(st.Completed)/float64(st.Posted))
		if st.Done() {
			return elapsed + sample, series
		}
	}
	return maxT, series
}

// conferenceEngine builds an engine over simulated AMT with the demo
// schema, n talks stored (abstracts and attendance CNULL), and the
// conference oracle.
func conferenceEngine(seed int64, nTalks int, opts core.Config) (*core.Engine, *workload.Conference, error) {
	conf := workload.NewConference(nTalks, seed)
	cfg := opts
	if cfg.Platform == nil {
		cfg.Platform = amt.NewDefault(seed)
	}
	cfg.Oracle = conf.Oracle()
	if cfg.Payment == (wrm.PaymentPolicy{}) {
		cfg.Payment = wrm.DefaultPolicy()
	}
	eng, err := core.Open(cfg)
	if err != nil {
		return nil, nil, err
	}
	ddl := `CREATE TABLE Talk (
		title STRING PRIMARY KEY,
		room STRING,
		abstract CROWD STRING,
		nb_attendees CROWD INTEGER );
	CREATE CROWD TABLE NotableAttendee (
		name STRING PRIMARY KEY,
		title STRING,
		FOREIGN KEY (title) REF Talk(title) );`
	if _, err := eng.Exec(ddl); err != nil {
		return nil, nil, err
	}
	for i, talk := range conf.Talks {
		room := fmt.Sprintf("Room %d", i%4+1)
		_, err := eng.Exec(fmt.Sprintf("INSERT INTO Talk (title, room) VALUES (%s, %s)",
			sqltypes.NewString(talk.Title).SQLLiteral(), sqltypes.NewString(room).SQLLiteral()))
		if err != nil {
			return nil, nil, err
		}
	}
	return eng, conf, nil
}

// fastTasks is the task config the engine experiments use: modest rewards,
// 3-way replication, tight polling so virtual time resolution is fine.
func fastTasks() taskmgr.Config {
	cfg := taskmgr.DefaultConfig()
	cfg.PollInterval = time.Minute
	return cfg
}
