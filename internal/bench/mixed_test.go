package bench

import "testing"

// E20: the writer workload must complete while a crowd SELECT is parked
// in flight (the pre-MVCC statement lock made phase B hang), the reader
// must return exactly its snapshot, and the deterministic row counts
// must hold at any seed.
func TestE20Shape(t *testing.T) {
	tab := E20MixedReadWrite(42)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %v (notes: %v)", tab.Rows, tab.Notes)
	}
	if got := tab.Metrics["reader_rows_out"]; got != e20Pairs {
		t.Errorf("reader_rows_out = %v, want %d (the snapshot's matches)", got, e20Pairs)
	}
	wantAfter := float64(e20Pairs + e20WriterStmts/2)
	if got := tab.Metrics["table_rows_out"]; got != wantAfter {
		t.Errorf("table_rows_out = %v, want %v", got, wantAfter)
	}
	if got := tab.Metrics["snapshot_mismatch_err"]; got != 0 {
		t.Errorf("snapshot_mismatch_err = %v, want 0: the reader saw writer rows", got)
	}
	// Both phases measured a full writer run.
	for _, k := range []string{"writer_p50_micros_alone", "writer_p50_micros_with_reader"} {
		if tab.Metrics[k] <= 0 {
			t.Errorf("%s = %v, want > 0", k, tab.Metrics[k])
		}
	}
}
