package bench

import (
	"fmt"

	"crowddb/internal/core"
	"crowddb/internal/crowd/amt"
	"crowddb/internal/optimizer"
	"crowddb/internal/sqltypes"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

// E17 measures the crowd-aware cost-based optimizer against the flat
// heuristic it replaced (PR 2's optimizer, reproduced via
// Options.DisableCostBased). The workload is an entity-resolution query
// whose condition mixes a paid crowd predicate with a cheap machine
// predicate the rule-based optimizer cannot push down (an IN-subquery):
//
//	SELECT id FROM Pair WHERE a ~= b AND id IN (SELECT id FROM Keep)
//
// The flat heuristic pays one CROWDEQUAL comparison for every Pair row;
// the cost model orders the cheap phase first, so only rows surviving the
// subquery reach the crowd. EXPLAIN's predicted cents are reported next
// to the measured spend to show forecast accuracy.

// e17Pairs / e17Keep size the workload: total pairs vs pairs the cheap
// predicate keeps.
const (
	e17Pairs = 24
	e17Keep  = 8
)

// e17Engine builds a fresh engine with the Pair/Keep tables over
// simulated AMT.
func e17Engine(seed int64, opts optimizer.Options) (*core.Engine, error) {
	cs := workload.NewCompanies(e17Pairs, seed)
	eng, err := core.Open(core.Config{
		Platform:  amt.NewDefault(seed),
		Oracle:    cs.Oracle(),
		Payment:   wrm.DefaultPolicy(),
		Tasks:     fastTasks(),
		Optimizer: opts,
	})
	if err != nil {
		return nil, err
	}
	ddl := `CREATE TABLE Pair (id INTEGER PRIMARY KEY, a STRING, b STRING);
		CREATE TABLE Keep (id INTEGER PRIMARY KEY)`
	if _, err := eng.Exec(ddl); err != nil {
		return nil, err
	}
	for i := 0; i < e17Pairs; i++ {
		c := cs.List[i]
		variant := c.Variants[len(c.Variants)-1]
		if _, err := eng.Exec(fmt.Sprintf("INSERT INTO Pair VALUES (%d, %s, %s)", i,
			sqltypes.NewString(c.Canonical).SQLLiteral(),
			sqltypes.NewString(variant).SQLLiteral())); err != nil {
			return nil, err
		}
	}
	for i := 0; i < e17Keep; i++ {
		if _, err := eng.Exec(fmt.Sprintf("INSERT INTO Keep VALUES (%d)", i*2)); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

// E17CostBasedOptimizer compares the flat-heuristic optimizer against the
// cost-based one on the mixed cheap/crowd predicate workload.
func E17CostBasedOptimizer(seed int64) *Table {
	t := &Table{
		ID:      "E17",
		Title:   "cost-based optimizer: paid comparisons vs the flat heuristic",
		Exhibit: "crowd-aware cost model, money × latency (extension)",
		Headers: []string{"optimizer", "paid cmp", "rows out", "spend", "crowd time", "predicted", "actual"},
		Metrics: map[string]float64{},
	}
	query := `SELECT id FROM Pair WHERE a ~= b AND id IN (SELECT id FROM Keep)`
	type cfg struct {
		name   string
		prefix string
		opts   optimizer.Options
	}
	for _, c := range []cfg{
		{"flat heuristic (pre-cost-model)", "heuristic_", optimizer.Options{DisableCostBased: true}},
		{"cost-based (money x latency)", "costbased_", optimizer.Options{}},
	} {
		eng, err := e17Engine(seed, c.opts)
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			continue
		}
		res, err := eng.Exec(query)
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			eng.Close()
			continue
		}
		ts := eng.Tasks().Stats()
		t.AddRow(c.name,
			fmt.Sprintf("%d", res.Stats.Comparisons),
			fmt.Sprintf("%d", len(res.Rows)),
			ts.ApprovedSpend.String(),
			fmtDur(ts.CrowdTime),
			res.Predicted.String(),
			fmt.Sprintf("¢%.1f", res.ActualCents),
		)
		t.Metrics[c.prefix+"paid_comparisons"] = float64(res.Stats.Comparisons)
		t.Metrics[c.prefix+"spend_cents"] = float64(ts.ApprovedSpend)
		t.Metrics[c.prefix+"crowd_minutes"] = ts.CrowdTime.Minutes()
		t.Metrics[c.prefix+"predicted_cents"] = res.Predicted.Cents
		t.Metrics[c.prefix+"actual_cents"] = res.ActualCents
		eng.Close()
	}
	t.Notes = append(t.Notes,
		"same query, same seed: the cost model orders the cheap IN-subquery phase before the paid CROWDEQUAL phase",
		"the flat heuristic pays one comparison per Pair row; cost-based pays only for rows the machine predicate keeps")
	return t
}
