package bench

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
)

// E17: the cost-based optimizer must pay strictly fewer comparisons than
// the flat heuristic on the mixed cheap/crowd predicate workload, with
// identical answers, and its forecast must match the measured spend.
func TestE17Shape(t *testing.T) {
	tab := E17CostBasedOptimizer(42)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	heuristic := cellInt(t, tab.Rows[0][1])
	costBased := cellInt(t, tab.Rows[1][1])
	if costBased >= heuristic {
		t.Errorf("cost-based must pay fewer comparisons: %d vs %d", costBased, heuristic)
	}
	if tab.Rows[0][2] != tab.Rows[1][2] {
		t.Errorf("answers must be identical: %v vs %v rows out", tab.Rows[0][2], tab.Rows[1][2])
	}
	// The spend halves or better (24 -> 8 pairs at the default workload).
	if tab.Metrics["costbased_spend_cents"] >= tab.Metrics["heuristic_spend_cents"] {
		t.Errorf("spend must drop: %v", tab.Metrics)
	}
	// Forecast accuracy: predicted == actual for both configurations on
	// this deterministic workload.
	for _, prefix := range []string{"heuristic_", "costbased_"} {
		p, a := tab.Metrics[prefix+"predicted_cents"], tab.Metrics[prefix+"actual_cents"]
		if p != a {
			t.Errorf("%s forecast must match actual: predicted %v actual %v", prefix, p, a)
		}
	}
}

// TestE1E15GoldenSeed42 pins the full rendered output of experiments
// E1–E15 at seed 42 against the PR 2 baseline: the cost-based optimizer
// may change plans, but crowd answers and crowd costs must not drift.
func TestE1E15GoldenSeed42(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in -short mode")
	}
	golden, err := os.ReadFile("testdata/golden_e1e15_seed42.txt")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, e := range All() {
		if e.ID == "E16" || e.ID == "E17" || e.ID == "E18" || e.ID == "E19" || e.ID == "E20" || e.ID == "E21" || e.ID == "E22" || e.ID == "E23" || e.ID == "E24" {
			continue
		}
		e.Run(42).Fprint(&buf)
	}
	if buf.String() != string(golden) {
		t.Errorf("E1-E15 output drifted from the PR 2 baseline at seed 42:\n%s",
			firstDiff(string(golden), buf.String()))
	}
}

func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n golden: %s\n    got: %s", i+1, al[i], bl[i])
		}
	}
	return "length mismatch"
}
