package bench

import (
	"fmt"
	"strings"

	"crowddb/internal/core"
	"crowddb/internal/crowd/amt"
	"crowddb/internal/crowd/mobile"
	"crowddb/internal/optimizer"
	"crowddb/internal/quality"
	"crowddb/internal/sqltypes"
	"crowddb/internal/stats"
	"crowddb/internal/taskmgr"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

// E5CrowdProbe reproduces the CrowdProbe field study (SIGMOD Fig. 9: the
// professor-directory experiment): crowdsource missing emails and
// departments and measure completeness, accuracy, tasks, virtual time and
// cost.
func E5CrowdProbe(seed int64) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "CrowdProbe: filling a professor directory",
		Exhibit: "SIGMOD'11 Fig. 9 (CrowdProbe case study)",
		Headers: []string{"professors", "filled", "accuracy", "probe tasks", "crowd time", "spend"},
	}
	for _, n := range []int{10, 25, 50} {
		uni := workload.NewUniversity(n, seed)
		eng, err := core.Open(core.Config{
			Platform: amt.NewDefault(seed),
			Oracle:   uni.Oracle(),
			Payment:  wrm.DefaultPolicy(),
			Tasks:    fastTasks(),
		})
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			continue
		}
		eng.Exec(`CREATE TABLE Professor (
			name STRING PRIMARY KEY,
			email CROWD STRING,
			department CROWD STRING )`)
		for _, p := range uni.Professors {
			eng.Exec("INSERT INTO Professor (name) VALUES (" + sqltypes.NewString(p.Name).SQLLiteral() + ")")
		}
		res, err := eng.Exec("SELECT name, email, department FROM Professor")
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			continue
		}
		filled, correct := 0, 0
		for _, row := range res.Rows {
			if !row[1].IsUnknown() && !row[2].IsUnknown() {
				filled++
			}
			for _, p := range uni.Professors {
				if strings.EqualFold(p.Name, row[0].Str()) {
					if quality.Normalize(row[1].Str()) == quality.Normalize(p.Email) &&
						quality.Normalize(row[2].Str()) == quality.Normalize(p.Department) {
						correct++
					}
				}
			}
		}
		ts := eng.Tasks().Stats()
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmtPct(float64(filled)/float64(n)),
			fmtPct(float64(correct)/float64(n)),
			fmt.Sprintf("%d", res.Stats.ProbeRequests),
			fmtDur(ts.CrowdTime),
			ts.ApprovedSpend.String(),
		)
		eng.Close()
	}
	t.Notes = append(t.Notes, "one probe task per tuple; completeness near 100% with 3-way replication")
	return t
}

// E6CrowdJoin reproduces the CrowdJoin strategy comparison (SIGMOD Fig.
// 10): the batched index-nested-loop CrowdJoin versus naively issuing one
// query (and so one HIT group) per outer tuple.
func E6CrowdJoin(seed int64) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "CrowdJoin: batched index-NL join vs per-tuple probing",
		Exhibit: "SIGMOD'11 Fig. 10 (CrowdJoin)",
		Headers: []string{"strategy", "groups posted", "HITs posted", "rows out", "crowd time"},
		Metrics: map[string]float64{},
	}
	const nTalks = 15

	// Strategy A: one join query; CrowdJoin batches all keys in one group.
	engA, _, err := conferenceEngine(seed, nTalks, core.Config{Tasks: fastTasks()})
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	resA, err := engA.Exec(`SELECT t.title, n.name FROM Talk t JOIN NotableAttendee n ON n.title = t.title`)
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	tsA := engA.Tasks().Stats()
	t.AddRow("CrowdJoin (batched)", fmt.Sprintf("%d", tsA.GroupsPosted), fmt.Sprintf("%d", tsA.HITsPosted),
		fmt.Sprintf("%d", len(resA.Rows)), fmtDur(tsA.CrowdTime))
	t.Metrics["batched_groups"] = float64(tsA.GroupsPosted)
	t.Metrics["batched_hits_posted"] = float64(tsA.HITsPosted)
	t.Metrics["batched_crowd_minutes"] = tsA.CrowdTime.Minutes()
	t.Metrics["batched_rows_out"] = float64(len(resA.Rows))
	engA.Close()

	// Strategy B: one bounded query per talk — a group per outer tuple.
	engB, confB, err := conferenceEngine(seed, nTalks, core.Config{Tasks: fastTasks()})
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	rowsB := 0
	for _, talk := range confB.Talks {
		res, err := engB.Exec("SELECT name FROM NotableAttendee WHERE title = " +
			sqltypes.NewString(talk.Title).SQLLiteral())
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			break
		}
		rowsB += len(res.Rows)
	}
	tsB := engB.Tasks().Stats()
	t.AddRow("per-tuple groups", fmt.Sprintf("%d", tsB.GroupsPosted), fmt.Sprintf("%d", tsB.HITsPosted),
		fmt.Sprintf("%d", rowsB), fmtDur(tsB.CrowdTime))
	engB.Close()
	t.Notes = append(t.Notes, "batching posts one async window of concurrent groups for all join keys; per-tuple posting multiplies groups and serializes crowd waits")
	return t
}

// E7EntityResolution reproduces the CROWDEQUAL entity-resolution study:
// matching company name variants against canonical names, as replication
// grows.
func E7EntityResolution(seed int64) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "CROWDEQUAL entity resolution: company name variants",
		Exhibit: "SIGMOD'11 entity-resolution experiment",
		Headers: []string{"votes/pair", "precision", "recall", "f1", "comparisons"},
	}
	const nCompanies = 10
	for _, votes := range []int{1, 3, 5} {
		comp := workload.NewCompanies(nCompanies, seed)
		tcfg := fastTasks()
		tcfg.Assignments = votes
		eng, err := core.Open(core.Config{
			Platform: amt.NewDefault(seed),
			Oracle:   comp.Oracle(),
			Payment:  wrm.DefaultPolicy(),
			Tasks:    tcfg,
		})
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			continue
		}
		eng.Exec(`CREATE TABLE company (name STRING PRIMARY KEY, hq STRING)`)
		for _, c := range comp.List {
			eng.Exec("INSERT INTO company VALUES (" + sqltypes.NewString(c.Canonical).SQLLiteral() +
				", " + sqltypes.NewString(c.HQ).SQLLiteral() + ")")
		}
		predicted := map[string]bool{}
		truth := map[string]bool{}
		comparisons := 0
		for _, c := range comp.List {
			v := c.Variants[0] // the abbreviation: hardest variant
			truth[v+"->"+c.Canonical] = true
			res, err := eng.Exec("SELECT name FROM company WHERE name ~= " + sqltypes.NewString(v).SQLLiteral())
			if err != nil {
				continue
			}
			comparisons += res.Stats.Comparisons
			for _, row := range res.Rows {
				predicted[v+"->"+row[0].Str()] = true
			}
		}
		p, r, f1 := stats.PrecisionRecall(predicted, truth)
		t.AddRow(fmt.Sprintf("%d", votes), fmt.Sprintf("%.2f", p), fmt.Sprintf("%.2f", r),
			fmt.Sprintf("%.2f", f1), fmt.Sprintf("%d", comparisons))
		eng.Close()
	}
	t.Notes = append(t.Notes, "replication buys precision/recall; each variant costs one comparison per stored candidate")
	return t
}

// E8CrowdOrder reproduces the subjective-ordering study (demo Example 3):
// ranking talks with CROWDORDER and scoring the result against the hidden
// preference ranking with Kendall's tau.
func E8CrowdOrder(seed int64) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "CROWDORDER ranking quality vs votes per comparison",
		Exhibit: "demo Example 3 / SIGMOD'11 ordering experiment",
		Headers: []string{"votes/cmp", "kendall tau", "comparisons", "crowd time"},
	}
	const nTalks = 12
	for _, votes := range []int{1, 3, 5} {
		tcfg := fastTasks()
		tcfg.Assignments = votes
		eng, conf, err := conferenceEngine(seed, nTalks, core.Config{Tasks: tcfg})
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			continue
		}
		res, err := eng.Exec(`SELECT title FROM Talk ORDER BY CROWDORDER(title, "Which talk did you like better")`)
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			eng.Close()
			continue
		}
		var got []string
		for _, row := range res.Rows {
			got = append(got, row[0].Str())
		}
		tau, err := stats.KendallTau(got, conf.PreferenceRanking())
		tauStr := "-"
		if err == nil {
			tauStr = fmt.Sprintf("%.2f", tau)
		}
		ts := eng.Tasks().Stats()
		t.AddRow(fmt.Sprintf("%d", votes), tauStr, fmt.Sprintf("%d", res.Stats.Comparisons), fmtDur(ts.CrowdTime))
		eng.Close()
	}
	t.Notes = append(t.Notes, "tau rises steeply from 1 to 3 votes, then saturates; quicksort costs O(n log n) comparisons")
	return t
}

// E10OptimizerRules reproduces the optimizer study the demo's §3.2.2
// sketches: crowd tasks issued with each rewrite rule disabled in turn.
func E10OptimizerRules(seed int64) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "optimizer ablation: crowd tasks per rule set",
		Exhibit: "demo §3.2.2 (rule-based optimizations)",
		Headers: []string{"configuration", "probe tasks", "tuple tasks", "rows out"},
		Metrics: map[string]float64{},
	}
	const nTalks = 24
	// The probe query: selective non-crowd predicate + LIMIT.
	probeQ := `SELECT abstract FROM Talk WHERE room = 'Room 1' LIMIT 3`
	// The join query: crowd table written first, so reorder matters.
	joinQ := `SELECT n.name FROM NotableAttendee n JOIN Talk t ON n.title = t.title WHERE t.room = 'Room 2'`

	type cfg struct {
		name string
		opts optimizer.Options
		sql  string
	}
	configs := []cfg{
		{"probe: all rules", optimizer.Options{}, probeQ},
		{"probe: no predicate push-down", optimizer.Options{DisablePushdown: true}, probeQ},
		{"probe: no stop-after push-down", optimizer.Options{DisableStopAfter: true}, probeQ},
		{"join: all rules", optimizer.Options{}, joinQ},
		{"join: no join re-ordering", optimizer.Options{DisableJoinReorder: true, AllowUnbounded: true}, joinQ},
	}
	for _, c := range configs {
		eng, _, err := conferenceEngine(seed, nTalks, core.Config{Tasks: fastTasks(), Optimizer: c.opts})
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			continue
		}
		res, err := eng.Exec(c.sql)
		if err != nil {
			t.AddRow(c.name, "-", "-", "compile error: "+err.Error())
			eng.Close()
			continue
		}
		t.AddRow(c.name,
			fmt.Sprintf("%d", res.Stats.ProbeRequests),
			fmt.Sprintf("%d", res.Stats.NewTupleRequests),
			fmt.Sprintf("%d", len(res.Rows)))
		if c.name == "probe: all rules" {
			t.Metrics["full_rules_probe_tasks"] = float64(res.Stats.ProbeRequests)
		}
		if c.name == "join: all rules" {
			t.Metrics["join_full_rules_tuple_tasks"] = float64(res.Stats.NewTupleRequests)
			t.Metrics["join_full_rules_rows_out"] = float64(len(res.Rows))
		}
		eng.Close()
	}
	t.Notes = append(t.Notes,
		"push-down probes only matching tuples; stop-after bounds them further; without re-ordering the crowd table cannot be probed by key (stored-only answers)")
	return t
}

// E11Boundedness reproduces the compile-time boundedness analysis of the
// demo's §3.2.2: which queries the optimizer accepts, bounds, or rejects.
func E11Boundedness(seed int64) *Table {
	t := &Table{
		ID:      "E11",
		Title:   "boundedness analysis verdicts",
		Exhibit: "demo §3.2.2 (bounded plans, compile-time warning)",
		Headers: []string{"query", "verdict"},
	}
	eng, _, err := conferenceEngine(seed, 5, core.Config{Tasks: fastTasks()})
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	defer eng.Close()
	queries := []string{
		`SELECT name FROM NotableAttendee`,
		`SELECT name FROM NotableAttendee LIMIT 5`,
		`SELECT name FROM NotableAttendee WHERE title = 'X'`,
		`SELECT n.name FROM Talk t JOIN NotableAttendee n ON n.title = t.title`,
		`SELECT abstract FROM Talk`,
		`SELECT t1.title FROM Talk t1, NotableAttendee n`,
	}
	for _, q := range queries {
		_, err := eng.Exec("EXPLAIN " + q)
		verdict := "bounded"
		if err != nil {
			verdict = "REJECTED (unbounded crowd access)"
		}
		t.AddRow(q, verdict)
	}
	t.Notes = append(t.Notes, "unbounded CROWD scans are rejected at compile time; keys, limits and join bindings bound them")
	return t
}

// E12MobileVsAMT reproduces the demo's platform comparison (§4): the same
// conference workload on the generic AMT crowd versus the geo-fenced VLDB
// mobile crowd.
func E12MobileVsAMT(seed int64) *Table {
	t := &Table{
		ID:      "E12",
		Title:   "same workload on AMT vs the VLDB mobile crowd",
		Exhibit: "demo §4 (mobile platform demonstration)",
		Headers: []string{"platform", "filled", "accuracy", "crowd time", "spend"},
	}
	const nTalks = 12
	for _, platform := range []string{"amt", "mobile"} {
		cfg := core.Config{Tasks: fastTasks()}
		if platform == "mobile" {
			cfg.Platform = mobile.New(mobile.DefaultConfig(seed))
		} else {
			cfg.Platform = amt.NewDefault(seed)
		}
		eng, conf, err := conferenceEngine(seed, nTalks, cfg)
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			continue
		}
		res, err := eng.Exec(`SELECT title, nb_attendees FROM Talk`)
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			eng.Close()
			continue
		}
		filled, correct := 0, 0
		for _, row := range res.Rows {
			if row[1].IsUnknown() {
				continue
			}
			filled++
			if info, ok := conf.Talk(row[0].Str()); ok && int(row[1].Int()) == info.NbAttendees {
				correct++
			}
		}
		ts := eng.Tasks().Stats()
		t.AddRow(platform, fmtPct(float64(filled)/float64(nTalks)),
			fmtPct(float64(correct)/float64(nTalks)), fmtDur(ts.CrowdTime), ts.ApprovedSpend.String())
		eng.Close()
	}
	t.Notes = append(t.Notes, "the co-located expert crowd answers faster and more accurately; attendance counts are local knowledge")
	return t
}

var _ = taskmgr.Config{} // keep import for fastTasks signature readability
