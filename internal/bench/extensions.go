package bench

import (
	"fmt"
	"time"

	"crowddb/internal/quality"
	"crowddb/internal/sim"
)

// E13Diurnal reproduces the time-of-day observation of the SIGMOD paper's
// platform study: the same HIT group completes faster when posted at the
// crowd's peak hours than into the overnight trough.
func E13Diurnal(seed int64) *Table {
	t := &Table{
		ID:      "E13",
		Title:   "responsiveness by posting time of (virtual) day",
		Exhibit: "SIGMOD'11 platform study (diurnal responsiveness)",
		Headers: []string{"posted at", "t(50%)", "t(100%)"},
	}
	for _, startHour := range []int{2, 8, 14, 20} {
		cfg := sim.DefaultConfig()
		cfg.Seed = seed
		cfg.DiurnalAmplitude = 0.8
		m := sim.NewMarket(cfg)
		m.Step(time.Duration(startHour) * time.Hour)
		id, err := m.Post(probeHITGroup(30, 3, 2))
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			continue
		}
		done, series := stepUntilDone(m, id, 10*time.Minute, 500*time.Hour)
		half := time.Duration(0)
		for i, f := range series {
			if f >= 0.5 {
				half = time.Duration(i+1) * 10 * time.Minute
				break
			}
		}
		t.AddRow(fmt.Sprintf("%02d:00", startHour), fmtDur(half), fmtDur(done))
	}
	t.Notes = append(t.Notes, "arrival rate peaks at virtual noon; overnight postings wait for the morning crowd")
	return t
}

// E14VotePolicy compares plain majority voting against score-weighted
// voting (the quality-control extension the SIGMOD paper sketches) on a
// spammy crowd, after a warm-up phase that teaches the tracker who is who.
func E14VotePolicy(seed int64) *Table {
	t := &Table{
		ID:      "E14",
		Title:   "quality control: majority vote vs score-weighted vote",
		Exhibit: "SIGMOD'11 quality-control discussion (extension)",
		Headers: []string{"policy", "correct", "error rate", "no-quorum"},
		Metrics: map[string]float64{},
	}
	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	cfg.Pool.SpammerFrac = 0.35 // a hostile crowd to separate the policies
	cfg.Pool.SpammerAccuracy = 0.3
	m := sim.NewMarket(cfg)
	tracker := quality.NewTracker()

	collect := func(n, replication int) map[string][]quality.Vote {
		g := probeHITGroup(n, replication, 2)
		id, _ := m.Post(g)
		stepUntilDone(m, id, time.Hour, 3000*time.Hour)
		res, _ := m.Results(id)
		byHIT := map[string][]quality.Vote{}
		for _, a := range res {
			byHIT[a.HITID] = append(byHIT[a.HITID], quality.Vote{WorkerID: a.WorkerID, Answer: a.Answers["value"]})
		}
		return byHIT
	}

	// Warm-up: 150 HITs teach the tracker (and build worker affinity, so
	// the same workers return for the evaluation round).
	for hit, votes := range collect(150, 3) {
		_ = hit
		tracker.Record(quality.MajorityVote(votes, 2))
	}

	// Evaluation round.
	const n = 120
	byHIT := collect(n, 3)
	type policy struct {
		name string
		vote func(votes []quality.Vote) quality.Decision
	}
	for _, p := range []policy{
		{"majority (3)", func(v []quality.Vote) quality.Decision {
			return quality.MajorityVote(v, quality.MajorityFor(3))
		}},
		{"score-weighted (3)", func(v []quality.Vote) quality.Decision {
			return quality.WeightedVote(v, tracker.Score, 0.5)
		}},
	} {
		wrong, noQuorum := 0, 0
		for i := 0; i < n; i++ {
			votes := byHIT[fmt.Sprintf("H%04d", i)]
			d := p.vote(votes)
			truth := fmt.Sprintf("v%d", i)
			switch {
			case !d.Quorum:
				noQuorum++
			case quality.Normalize(d.Value) != truth:
				wrong++
			}
		}
		correct := n - wrong - noQuorum
		t.AddRow(p.name, fmtPct(float64(correct)/float64(n)),
			fmtPct(float64(wrong)/float64(n)), fmtPct(float64(noQuorum)/float64(n)))
	}
	t.Notes = append(t.Notes, "with 35% spammers, score weighting resolves splits majority voting must leave undecided")

	// Adaptive vote sizing (metrics only; the rows above are pinned by
	// the golden replay): the same spammy crowd answers the same probe
	// workload with fixed 3-vote replication vs early-stop once answers
	// are unanimous above the quorum floor. The exhibit is paid
	// assignments dropping while correctness stays within tolerance.
	for _, arm := range []struct {
		prefix   string
		adaptive bool
	}{
		{"fixed_", false},
		{"adaptive_", true},
	} {
		am := sim.NewMarket(cfg)
		g := probeHITGroup(n, 3, 2)
		g.AdaptiveVotes = arm.adaptive
		gid, err := am.Post(g)
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			continue
		}
		stepUntilDone(am, gid, time.Hour, 3000*time.Hour)
		res, _ := am.Results(gid)
		armVotes := map[string][]quality.Vote{}
		for _, a := range res {
			armVotes[a.HITID] = append(armVotes[a.HITID], quality.Vote{WorkerID: a.WorkerID, Answer: a.Answers["value"]})
		}
		correct := 0
		for i := 0; i < n; i++ {
			d := quality.MajorityVote(armVotes[fmt.Sprintf("H%04d", i)], quality.MajorityFor(3))
			if d.Quorum && quality.Normalize(d.Value) == fmt.Sprintf("v%d", i) {
				correct++
			}
		}
		t.Metrics[arm.prefix+"paid_assignments"] = float64(len(res))
		t.Metrics[arm.prefix+"assignment_spend_cents"] = float64(len(res)) * 2
		t.Metrics[arm.prefix+"correct_pct"] = 100 * float64(correct) / float64(n)
	}
	return t
}
