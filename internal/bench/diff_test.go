package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir string, bf *BenchFile) {
	t.Helper()
	data, err := json.Marshal(bf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_"+bf.ID+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func baseFile() *BenchFile {
	return &BenchFile{
		ID: "E99", Seed: 42,
		Rows: [][]string{{"a", "1"}},
		Metrics: map[string]float64{
			"paid_comparisons": 30,
			"cache_hit_rate":   0.9,
			"makespan_minutes": 120,
		},
	}
}

func runCompare(t *testing.T, cand *BenchFile) *DiffResult {
	t.Helper()
	res := &DiffResult{}
	Compare(baseFile(), cand, 0.10, 1.0, res)
	return res
}

func TestDiffPassesWithinTolerance(t *testing.T) {
	cand := baseFile()
	cand.Metrics["paid_comparisons"] = 32  // +2 of 30: within 10%
	cand.Metrics["cache_hit_rate"] = 0.88  // within absolute slack
	cand.Metrics["makespan_minutes"] = 130 // within 10%+slack
	if res := runCompare(t, cand); !res.OK() {
		t.Errorf("within tolerance must pass: %v", res.Failures)
	}
}

func TestDiffPredictedMetricsAreInformational(t *testing.T) {
	base := baseFile()
	base.Metrics["predicted_cents"] = 10
	cand := baseFile()
	cand.Metrics["predicted_cents"] = 50 // forecast became more accurate
	res := &DiffResult{}
	Compare(base, cand, 0.10, 1.0, res)
	if !res.OK() {
		t.Errorf("forecast metrics must not be direction-gated: %v", res.Failures)
	}
}

func TestDiffFailsOnCostRegression(t *testing.T) {
	cand := baseFile()
	cand.Metrics["paid_comparisons"] = 40 // +33%: regression
	res := runCompare(t, cand)
	if res.OK() || !strings.Contains(res.Failures[0], "paid_comparisons") {
		t.Errorf("comparison regression must fail: %v", res.Failures)
	}
}

func TestDiffFailsOnBenefitRegression(t *testing.T) {
	cand := baseFile()
	// hit_rate is higher-is-better; a drop past relative tolerance is
	// within the 1.0 absolute slack, so shrink the slack in a direct call.
	res := &DiffResult{}
	Compare(baseFile(), cand, 0.10, 0.01, res)
	if !res.OK() {
		t.Fatalf("identical metrics must pass: %v", res.Failures)
	}
	cand.Metrics["cache_hit_rate"] = 0.5
	res = &DiffResult{}
	Compare(baseFile(), cand, 0.10, 0.01, res)
	if res.OK() {
		t.Error("hit-rate drop must fail with tight slack")
	}
}

func TestDiffFailsOnMissingPieces(t *testing.T) {
	// Missing experiment.
	res := &DiffResult{}
	Compare(baseFile(), nil, 0.10, 1.0, res)
	if res.OK() {
		t.Error("missing candidate experiment must fail")
	}
	// Missing metric.
	cand := baseFile()
	delete(cand.Metrics, "makespan_minutes")
	if res := runCompare(t, cand); res.OK() {
		t.Error("missing metric must fail")
	}
	// Seed mismatch.
	cand = baseFile()
	cand.Seed = 7
	if res := runCompare(t, cand); res.OK() {
		t.Error("seed mismatch must fail")
	}
	// Row-count change.
	cand = baseFile()
	cand.Rows = nil
	if res := runCompare(t, cand); res.OK() {
		t.Error("row-count change must fail")
	}
}

func TestDiffNotesTextChangesAndNewMetrics(t *testing.T) {
	cand := baseFile()
	cand.Rows = [][]string{{"a", "2"}}
	cand.Metrics["new_metric"] = 1
	res := runCompare(t, cand)
	if !res.OK() {
		t.Fatalf("textual change is a note, not a failure: %v", res.Failures)
	}
	if len(res.Notes) != 2 {
		t.Errorf("want a cell-change note and a new-metric note: %v", res.Notes)
	}
}

func TestCompareDirsEndToEnd(t *testing.T) {
	baseDir, candDir := t.TempDir(), t.TempDir()
	writeBench(t, baseDir, baseFile())
	cand := baseFile()
	cand.Metrics["paid_comparisons"] = 60
	writeBench(t, candDir, cand)
	res, err := CompareDirs(baseDir, candDir, 0.10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || res.Compared != 1 {
		t.Errorf("regression must fail the gate: %+v", res)
	}
	rep := res.Report()
	if !strings.Contains(rep, "FAIL") {
		t.Errorf("report must show the failure:\n%s", rep)
	}
	// An empty baseline dir is an error, not a silent pass.
	if _, err := CompareDirs(t.TempDir(), candDir, 0.10, 1.0); err == nil {
		t.Error("empty baseline dir must error")
	}
}
