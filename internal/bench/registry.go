package bench

import "io"

// Experiment is one registered experiment runner.
type Experiment struct {
	ID   string
	Name string
	Run  func(seed int64) *Table
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"E1", "completion vs reward", E1CompletionVsReward},
		{"E2", "turnaround vs batch size", E2TurnaroundVsBatch},
		{"E3", "worker affinity", E3WorkerAffinity},
		{"E4", "majority-vote quality", E4MajorityVote},
		{"E5", "CrowdProbe directory fill", E5CrowdProbe},
		{"E6", "CrowdJoin batching", E6CrowdJoin},
		{"E7", "CROWDEQUAL entity resolution", E7EntityResolution},
		{"E8", "CROWDORDER ranking quality", E8CrowdOrder},
		{"E9", "UI generation (Figs. 2-3)", E9UIGeneration},
		{"E10", "optimizer rule ablation", E10OptimizerRules},
		{"E11", "boundedness verdicts", E11Boundedness},
		{"E12", "mobile vs AMT", E12MobileVsAMT},
		{"E13", "diurnal responsiveness (extension)", E13Diurnal},
		{"E14", "weighted-vote quality control (extension)", E14VotePolicy},
		{"E15", "async speedup vs in-flight window (extension)", E15AsyncScheduler},
		{"E16", "concurrent sessions: shared-cache crowd cost (extension)", E16ConcurrentSessions},
		{"E17", "cost-based optimizer vs flat heuristic (extension)", E17CostBasedOptimizer},
		{"E18", "sharded storage throughput (extension)", E18StorageThroughput},
		{"E19", "streaming vs materialized time-to-first-row (extension)", E19Streaming},
		{"E20", "mixed read/write under MVCC snapshot isolation (extension)", E20MixedReadWrite},
		{"E21", "observability overhead: traced vs untraced (extension)", E21ObservabilityOverhead},
		{"E22", "quorum-streaming crowd operators (extension)", E22QuorumStreaming},
		{"E23", "crash recovery: durable jobs + admission (extension)", E23CrashRecovery},
		{"E24", "hybrid model/human answering (extension)", E24HybridAnswering},
	}
}

// RunAll executes every experiment and prints its table.
func RunAll(w io.Writer, seed int64) {
	for _, e := range All() {
		e.Run(seed).Fprint(w)
	}
}
