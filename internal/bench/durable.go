package bench

// E23: crash recovery and durable jobs. A crowddbd restart is simulated
// by closing the engine + server over a data dir and jobs journal, then
// assembling fresh ones over the same paths; the crash itself uses the
// faultinject registry's soft handler — from the armed crashpoint on,
// every durability write (shard WAL, jobs journal, compare-answer
// persistence) is silently dropped, exactly the writes a torn process
// would have lost. Three arms:
//
//   - baseline: the pair query runs uninterrupted on a durable engine
//     with the jobs journal enabled;
//   - crash+restart: the same query is killed at the third emitted row,
//     the server restarts over the surviving dirs, the job resumes, and
//     an NDJSON client reconnects with ?from=<acked offset>;
//   - admission: a server with -admission-headroom rejects a forecast
//     overrun before posting a single HIT.
//
// Determinism note for the benchdiff gate: the crowd is fully
// deterministic here (perfect-accuracy workers, difficulty-0 oracle,
// virtual-time market), so row streams, journaled spend, re-paid
// comparison counts, and budget settlements are exact at a fixed seed
// and gated: the resumed stream must be byte-identical to the baseline
// (rows_divergence_err = 0), recovery must never re-pay a persisted
// comparison (repaid_comparisons_err = 0), and the budget must settle at
// exactly the uninterrupted value (budget_left_delta_err = 0).
// Wall-clock recovery latency is informational (*_wall_us).

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"time"

	"crowddb/internal/core"
	"crowddb/internal/crowd"
	"crowddb/internal/crowd/amt"
	"crowddb/internal/faultinject"
	"crowddb/internal/server"
	"crowddb/internal/sim"
	"crowddb/internal/sqltypes"
	"crowddb/internal/storage"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

const (
	e23Pairs  = 6                                   // entity-resolution pairs (= crowd comparisons)
	e23Budget = 20                                  // session comparison budget
	e23Crash  = "server.job.row=3"                  // kill after the 3rd journaled row
	e23Query  = "SELECT id FROM Pair WHERE a ~= b " // the CROWDEQUAL workload
)

// e23Engine opens a durable engine whose crowd is fully deterministic:
// perfect-accuracy workers, no spammers, no format noise, and a
// difficulty-0 oracle. Every majority vote is unanimous and correct, so
// a resumed execution reaches the same decisions as an uninterrupted one
// regardless of which comparisons replay from the persistent cache and
// which consume fresh market randomness.
func e23Engine(dataDir string, seed int64) (*core.Engine, error) {
	base := workload.NewCompanies(e23Pairs, seed).Oracle()
	oracle := workload.NewOracle()
	oracle.RegisterCompare(func(kind crowd.TaskKind, q, l, r string) *crowd.SimTruth {
		tr := base.CompareTruth(kind, q, l, r)
		if tr != nil {
			tr.Difficulty = 0
		}
		return tr
	})
	mcfg := sim.DefaultConfig()
	mcfg.Seed = seed
	mcfg.Pool.SpammerFrac = 0
	mcfg.Pool.AccuracyMean = 1
	mcfg.Pool.AccuracySpread = 0
	mcfg.Pool.GarbageRate = 0
	mcfg.FormatNoiseRate = 0
	return core.Open(core.Config{
		DataDir:  dataDir,
		WALSync:  storage.SyncAlways,
		Platform: amt.New(sim.NewMarket(mcfg)),
		Oracle:   oracle,
		Payment:  wrm.DefaultPolicy(),
		Tasks:    fastTasks(),
	})
}

// e23Seed populates the Pair table (run once, on the first open).
func e23Seed(eng *core.Engine, seed int64) error {
	if _, err := eng.Exec(`CREATE TABLE Pair (id INTEGER PRIMARY KEY, a STRING, b STRING)`); err != nil {
		return err
	}
	cs := workload.NewCompanies(e23Pairs, seed)
	for i, c := range cs.List {
		variant := c.Variants[len(c.Variants)-1]
		if _, err := eng.Exec(fmt.Sprintf("INSERT INTO Pair VALUES (%d, %s, %s)",
			i, sqltypes.NewString(c.Canonical).SQLLiteral(), sqltypes.NewString(variant).SQLLiteral())); err != nil {
			return err
		}
	}
	return nil
}

// e23Wait polls a job to a terminal state.
func e23Wait(j *server.Job) (server.JobState, error) {
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if st := j.State(); st.Terminal() {
			return st, nil
		}
		if time.Now().After(deadline) {
			return j.State(), fmt.Errorf("job %s stuck in %s", j.ID(), j.State())
		}
		time.Sleep(time.Millisecond)
	}
}

// e23Rows drains a terminal job's NDJSON row stream through the real
// HTTP surface — GET /v1/queries/<id>/rows?from=N — and returns the
// rendered rows plus the trailer state, exactly what a reconnecting
// client sees.
func e23Rows(srv *server.Server, jobID string, from int) ([]string, string, error) {
	req := httptest.NewRequest("GET", fmt.Sprintf("/v1/queries/%s/rows?from=%d", jobID, from), nil)
	w := httptest.NewRecorder()
	srv.HTTPHandler().ServeHTTP(w, req)
	var rows []string
	var state string
	for _, line := range strings.Split(strings.TrimSpace(w.Body.String()), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "{") {
			var trailer struct {
				State string `json:"state"`
			}
			if err := json.Unmarshal([]byte(line), &trailer); err != nil {
				return nil, "", err
			}
			state = trailer.State
			continue
		}
		var cells []*string
		if err := json.Unmarshal([]byte(line), &cells); err != nil {
			return nil, "", fmt.Errorf("row line %q: %w", line, err)
		}
		var sb strings.Builder
		for k, c := range cells {
			if k > 0 {
				sb.WriteByte('|')
			}
			if c == nil {
				sb.WriteString(`\N`)
			} else {
				sb.WriteString(*c)
			}
		}
		rows = append(rows, sb.String())
	}
	return rows, state, nil
}

// e23Journal replays the jobs journal and returns how many rows it
// acknowledged and how many compare answers it recorded as durably
// persisted (and charged) for the session.
func e23Journal(jpath, sessionID string) (ackRows, persisted int, err error) {
	err = storage.ReplayRecordLog(jpath, func(line json.RawMessage) error {
		var rec struct {
			T       string `json:"t"`
			Session string `json:"session"`
			N       int    `json:"n"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			return err
		}
		switch rec.T {
		case "row":
			ackRows++
		case "spend":
			if rec.Session == sessionID {
				persisted += rec.N
			}
		}
		return nil
	})
	return ackRows, persisted, err
}

// e23Baseline runs the query uninterrupted on a durable engine and
// returns the values every recovery arm must converge to.
func e23Baseline(seed int64) (rows []string, budgetLeft, groups int, wall time.Duration, err error) {
	dir, err := os.MkdirTemp("", "crowddb-e23-base-")
	if err != nil {
		return nil, 0, 0, 0, err
	}
	defer os.RemoveAll(dir)
	eng, err := e23Engine(filepath.Join(dir, "data"), seed)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	defer eng.Close()
	if err := e23Seed(eng, seed); err != nil {
		return nil, 0, 0, 0, err
	}
	srv := server.New(eng, server.Config{})
	if err := srv.EnableJournal(filepath.Join(dir, "jobs.log"), storage.SyncAlways); err != nil {
		return nil, 0, 0, 0, err
	}
	sess, serr := srv.CreateSession(e23Budget)
	if serr != nil {
		return nil, 0, 0, 0, serr
	}
	start := time.Now()
	job, serr := srv.StartJob(sess.ID(), e23Query)
	if serr != nil {
		return nil, 0, 0, 0, serr
	}
	if st, err := e23Wait(job); err != nil || st != server.JobDone {
		return nil, 0, 0, 0, fmt.Errorf("baseline job state %s: %v (%v)", st, job.Err(), err)
	}
	wall = time.Since(start)
	rows, _, err = e23Rows(srv, job.ID(), 0)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	return rows, sess.Info().BudgetLeft, eng.Tasks().Stats().GroupsPosted, wall, nil
}

// e23CrashRun kills the durability layers at e23Crash mid-query,
// restarts over the surviving dirs, and measures the resumed job.
type e23Recovery struct {
	ackRows       int // rows the journal acknowledged pre-crash
	persisted     int // compare answers durable (and charged) pre-crash
	state         server.JobState
	rows          []string // resumed ?from=0 stream
	tail          []string // reconnect with ?from=ackRows
	repaid        int      // persisted answers bought again after restart
	resumedGroups int      // HIT groups the resumed run posted
	budgetLeft    int
	recoveryWall  time.Duration // restart -> resumed job terminal
}

func e23CrashRun(seed int64) (e23Recovery, error) {
	var r e23Recovery
	dir, err := os.MkdirTemp("", "crowddb-e23-crash-")
	if err != nil {
		return r, err
	}
	defer os.RemoveAll(dir)
	data, jpath := filepath.Join(dir, "data"), filepath.Join(dir, "jobs.log")

	eng1, err := e23Engine(data, seed)
	if err != nil {
		return r, err
	}
	if err := e23Seed(eng1, seed); err != nil {
		eng1.Close()
		return r, err
	}
	srv1 := server.New(eng1, server.Config{})
	if err := srv1.EnableJournal(jpath, storage.SyncAlways); err != nil {
		eng1.Close()
		return r, err
	}
	sess1, serr := srv1.CreateSession(e23Budget)
	if serr != nil {
		eng1.Close()
		return r, serr
	}

	defer faultinject.Disarm()
	faultinject.SetHandler(func(string) {}) // in-process crash: durability writes stop
	if err := faultinject.Arm(e23Crash); err != nil {
		eng1.Close()
		return r, err
	}
	job1, serr := srv1.StartJob(sess1.ID(), e23Query)
	if serr != nil {
		eng1.Close()
		return r, serr
	}
	if _, err := e23Wait(job1); err != nil { // the dying process's in-memory state is irrelevant
		eng1.Close()
		return r, err
	}
	eng1.Close() // Killed() is still set: closing persists nothing further
	faultinject.Disarm()

	if r.ackRows, r.persisted, err = e23Journal(jpath, sess1.ID()); err != nil {
		return r, err
	}

	restart := time.Now()
	eng2, err := e23Engine(data, seed)
	if err != nil {
		return r, err
	}
	defer eng2.Close()
	srv2 := server.New(eng2, server.Config{})
	if err := srv2.EnableJournal(jpath, storage.SyncAlways); err != nil {
		return r, err
	}
	job2, serr := srv2.Job(job1.ID())
	if serr != nil {
		return r, serr
	}
	if r.state, err = e23Wait(job2); err != nil {
		return r, err
	}
	r.recoveryWall = time.Since(restart)
	if r.rows, _, err = e23Rows(srv2, job2.ID(), 0); err != nil {
		return r, err
	}
	if r.tail, _, err = e23Rows(srv2, job2.ID(), r.ackRows); err != nil {
		return r, err
	}
	r.resumedGroups = eng2.Tasks().Stats().GroupsPosted
	// The resumed run should buy exactly the answers the crash lost; any
	// group beyond that re-paid a comparison the persistent cache held.
	r.repaid = r.resumedGroups - (e23Pairs - r.persisted)
	if r.repaid < 0 {
		r.repaid = 0
	}
	sess2, serr := srv2.Session(sess1.ID())
	if serr != nil {
		return r, serr
	}
	r.budgetLeft = sess2.Info().BudgetLeft
	return r, nil
}

// e23Admission submits a forecast overrun to a headroom-enforcing server
// and reports what the rejection cost.
func e23Admission(seed int64) (rejected, groups int, spend crowd.Cents, budgetLeft int, err error) {
	eng, err := e23Engine("", seed) // in-memory: admission happens before any durability
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer eng.Close()
	if err := e23Seed(eng, seed); err != nil {
		return 0, 0, 0, 0, err
	}
	srv := server.New(eng, server.Config{AdmissionHeadroom: 1})
	sess, serr := srv.CreateSession(1) // the forecast needs ~e23Pairs comparisons
	if serr != nil {
		return 0, 0, 0, 0, serr
	}
	if _, serr := srv.StartJob(sess.ID(), e23Query); serr != nil && serr.Code == server.CodeBudgetExhausted {
		rejected = 1
	}
	st := eng.Tasks().Stats()
	return rejected, st.GroupsPosted, st.ApprovedSpend, sess.Info().BudgetLeft, nil
}

// E23CrashRecovery measures durable jobs end to end: what a restart
// preserves, what a resume re-buys (nothing persisted), and what an
// admission rejection costs (nothing at all).
func E23CrashRecovery(seed int64) *Table {
	t := &Table{
		ID:      "E23",
		Title:   "crash recovery: durable jobs, resumed streams, budget-aware admission",
		Exhibit: "durable jobs + fault-injection extension (no paper exhibit)",
		Headers: []string{"arm", "outcome", "rows", "acked pre-crash", "persisted answers",
			"HIT groups", "re-paid", "budget left", "wall"},
		Metrics: map[string]float64{},
	}
	baseRows, baseBudget, baseGroups, baseWall, err := e23Baseline(seed)
	if err != nil {
		t.Notes = append(t.Notes, "baseline: "+err.Error())
		return t
	}
	t.AddRow("baseline", "done", fmt.Sprintf("%d", len(baseRows)), "-", "-",
		fmt.Sprintf("%d", baseGroups), "0", fmt.Sprintf("%d", baseBudget), fmtMicros(baseWall))
	t.Metrics["baseline_rows_out"] = float64(len(baseRows))
	t.Metrics["baseline_hit_groups"] = float64(baseGroups)
	t.Metrics["baseline_budget_left"] = float64(baseBudget)
	t.Metrics["baseline_wall_us"] = float64(baseWall.Microseconds())

	rec, err := e23CrashRun(seed)
	if err != nil {
		t.Notes = append(t.Notes, "crash+restart: "+err.Error())
		return t
	}
	t.AddRow("crash+restart", string(rec.state), fmt.Sprintf("%d", len(rec.rows)),
		fmt.Sprintf("%d", rec.ackRows), fmt.Sprintf("%d", rec.persisted),
		fmt.Sprintf("%d", rec.resumedGroups), fmt.Sprintf("%d", rec.repaid),
		fmt.Sprintf("%d", rec.budgetLeft), fmtMicros(rec.recoveryWall))
	divergence := 0
	if len(rec.rows) != len(baseRows) {
		divergence = abs(len(rec.rows) - len(baseRows))
	} else {
		for i := range baseRows {
			if rec.rows[i] != baseRows[i] {
				divergence++
			}
		}
	}
	tailDiv := abs(len(rec.tail) - (len(baseRows) - rec.ackRows))
	for i := range rec.tail {
		if i+rec.ackRows < len(baseRows) && rec.tail[i] != baseRows[i+rec.ackRows] {
			tailDiv++
		}
	}
	resumedDone := 0
	if rec.state == server.JobDone {
		resumedDone = 1
	}
	t.Metrics["resumed_rows_out"] = float64(len(rec.rows))
	t.Metrics["resumed_not_done_err"] = float64(1 - resumedDone)
	t.Metrics["rows_divergence_err"] = float64(divergence)
	t.Metrics["reconnect_tail_divergence_err"] = float64(tailDiv)
	t.Metrics["acked_rows_precrash"] = float64(rec.ackRows)
	t.Metrics["persisted_answers_precrash"] = float64(rec.persisted)
	t.Metrics["resumed_hit_groups"] = float64(rec.resumedGroups)
	t.Metrics["repaid_comparisons_err"] = float64(rec.repaid)
	t.Metrics["budget_left_delta_err"] = float64(abs(rec.budgetLeft - baseBudget))
	t.Metrics["recovery_wall_us"] = float64(rec.recoveryWall.Microseconds())

	rejected, admGroups, admSpend, admBudget, err := e23Admission(seed)
	if err != nil {
		t.Notes = append(t.Notes, "admission: "+err.Error())
		return t
	}
	t.AddRow("admission", "rejected", "0", "-", "-",
		fmt.Sprintf("%d", admGroups), "0", fmt.Sprintf("%d", admBudget), "-")
	t.Metrics["admission_not_rejected_err"] = float64(1 - rejected)
	t.Metrics["admission_hit_groups"] = float64(admGroups)
	t.Metrics["admission_spend_cents"] = float64(admSpend)
	t.Metrics["admission_budget_delta_err"] = float64(abs(admBudget - 1))

	t.Notes = append(t.Notes,
		fmt.Sprintf("crash arm kills durability at %q: the journal acknowledged %d of %d rows, %d answers were persisted (and charged) pre-crash",
			e23Crash, rec.ackRows, len(baseRows), rec.persisted),
		"the resumed stream is byte-identical to the uninterrupted run; the resume buys only the answers the crash lost (zero re-paid), and the budget settles at the uninterrupted value",
		"the admission arm rejects a forecast overrun with budget_exhausted before a single HIT group is posted")
	return t
}
