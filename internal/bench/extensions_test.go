package bench

import "testing"

// E13: the noon-adjacent posting must complete faster than the overnight
// one.
func TestE13Shape(t *testing.T) {
	tab := E13Diurnal(42)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	night := cellDur(t, tab.Rows[0][2])   // 02:00
	morning := cellDur(t, tab.Rows[1][2]) // 08:00
	if morning >= night {
		t.Errorf("08:00 posting (%v) must beat 02:00 (%v)", morning, night)
	}
}

// E14: weighted voting must resolve at least as many HITs correctly as
// plain majority on the spammy crowd.
func TestE14Shape(t *testing.T) {
	tab := E14VotePolicy(42)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	majCorrect := cellPct(t, tab.Rows[0][1])
	wgtCorrect := cellPct(t, tab.Rows[1][1])
	if wgtCorrect < majCorrect {
		t.Errorf("weighted (%0.f%%) must not resolve fewer than majority (%0.f%%)", wgtCorrect, majCorrect)
	}
	majNoQuorum := cellPct(t, tab.Rows[0][3])
	wgtNoQuorum := cellPct(t, tab.Rows[1][3])
	if wgtNoQuorum > majNoQuorum {
		t.Errorf("weighting must cut no-quorum splits: %0.f%% vs %0.f%%", wgtNoQuorum, majNoQuorum)
	}
}

// E14 adaptive vote sizing: early-stopping on unanimous agreement must
// pay for fewer assignments than fixed replication while keeping
// correctness within tolerance (5 points on the spammy crowd).
func TestE14AdaptiveVotes(t *testing.T) {
	tab := E14VotePolicy(42)
	fixed := tab.Metrics["fixed_paid_assignments"]
	adaptive := tab.Metrics["adaptive_paid_assignments"]
	if fixed <= 0 || adaptive <= 0 {
		t.Fatalf("missing adaptive-vote metrics: %v", tab.Metrics)
	}
	if adaptive >= fixed {
		t.Errorf("adaptive sizing must pay fewer assignments: %v vs %v", adaptive, fixed)
	}
	if drop := tab.Metrics["fixed_correct_pct"] - tab.Metrics["adaptive_correct_pct"]; drop > 5 {
		t.Errorf("adaptive correctness dropped %.1f points (max 5): %v", drop, tab.Metrics)
	}
}
