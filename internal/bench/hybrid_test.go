package bench

import (
	"bytes"
	"testing"
)

// E24 acceptance gates at the pinned seed: the hybrid arm pays at most
// 40% of the human-only arm's cents, answers match ground truth
// exactly, and hybrid quality is no worse than human-only.
func TestE24Gates(t *testing.T) {
	tab := E24HybridAnswering(42)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %v (notes %v)", tab.Rows, tab.Notes)
	}
	human := tab.Metrics["humanonly_spend_cents"]
	hybrid := tab.Metrics["hybrid_spend_cents"]
	if human <= 0 {
		t.Fatalf("human-only arm spent nothing: %v", tab.Metrics)
	}
	if pct := 100 * hybrid / human; pct > 40 {
		t.Errorf("hybrid must pay <= 40%% of human-only: %.1f%% (¢%v vs ¢%v)", pct, hybrid, human)
	}
	if div := tab.Metrics["divergence_err_pct"]; div != 0 {
		t.Errorf("hybrid answer divergence from ground truth must be 0 at seed 42: %v%%", div)
	}
	if hq, hu := tab.Metrics["hybrid_correct_pct"], tab.Metrics["humanonly_correct_pct"]; hq < hu {
		t.Errorf("hybrid quality must be no worse than human-only: %.1f%% vs %.1f%%", hq, hu)
	}
	if tab.Metrics["hybrid_escalated_hits"] <= 0 {
		t.Errorf("hybrid must exercise the escalation path: %v", tab.Metrics)
	}
	if tab.Metrics["hybrid_model_answers"] <= 0 || tab.Metrics["hybrid_human_answers"] <= 0 {
		t.Errorf("hybrid must collect answers from both tiers: %v", tab.Metrics)
	}
}

// Hybrid routing replays byte-identical at a fixed seed: two fresh runs
// render the same table and the same metrics.
func TestE24Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full harness runs in -short mode")
	}
	var a, b bytes.Buffer
	ta := E24HybridAnswering(42)
	tb := E24HybridAnswering(42)
	ta.Fprint(&a)
	tb.Fprint(&b)
	if a.String() != b.String() {
		t.Errorf("E24 replay drifted at seed 42:\n%s", firstDiff(a.String(), b.String()))
	}
	if len(ta.Metrics) != len(tb.Metrics) {
		t.Fatalf("metric sets differ: %v vs %v", ta.Metrics, tb.Metrics)
	}
	for k, v := range ta.Metrics {
		if tb.Metrics[k] != v {
			t.Errorf("metric %s drifted: %v vs %v", k, v, tb.Metrics[k])
		}
	}
}
