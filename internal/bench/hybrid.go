package bench

import (
	"fmt"
	"sort"
	"strings"

	"crowddb/internal/core"
	"crowddb/internal/crowd"
	"crowddb/internal/crowd/amt"
	"crowddb/internal/crowd/model"
	"crowddb/internal/sqltypes"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

// E24 measures the model-first escalation router: a simulated model
// platform answers every HIT for ¢1 a call, and only HITs whose model
// answers are unconfident or contested escalate to the human crowd at
// the full reward × replication rate. Three arms run the same
// entity-resolution query over the same pairs:
//
//	human-only:  every comparison goes to simulated AMT (3 × ¢2)
//	model-only:  every comparison answered by the sharp model profile
//	hybrid:      model-first, contested HITs escalated to AMT
//
// The exhibit is the cost curve — hybrid should approach model-only
// spend while matching (or beating) human-only answer quality — plus
// the hybrid arm's answer divergence from ground truth (every pair in
// the Companies workload is a true match, so the truth set is all
// ids; divergence is 0 at the pinned seed).

// e24Pairs sizes the workload.
const e24Pairs = 24

// e24Engine builds a fresh engine over the Companies pairs. tier
// selects the arm: "human" (AMT only), "model" (model platform only),
// or "hybrid" (AMT with a model tier routed first).
func e24Engine(seed int64, tier string) (*core.Engine, error) {
	cs := workload.NewCompanies(e24Pairs, seed)
	tasks := fastTasks()
	var platform crowd.Platform
	switch tier {
	case "human":
		platform = amt.NewDefault(seed)
	case "model":
		platform = model.New(model.Config{Seed: seed, Profile: model.Sharp()})
		tasks.Reward = 1
		tasks.Assignments = 1
	case "hybrid":
		platform = amt.NewDefault(seed)
		tasks.ModelPlatform = model.New(model.Config{Seed: seed, Profile: model.Sharp()})
		tasks.ModelReward = 1
		tasks.ModelAssignments = 1
	default:
		return nil, fmt.Errorf("e24: unknown tier %q", tier)
	}
	eng, err := core.Open(core.Config{
		Platform: platform,
		Oracle:   cs.Oracle(),
		Payment:  wrm.DefaultPolicy(),
		Tasks:    tasks,
	})
	if err != nil {
		return nil, err
	}
	if _, err := eng.Exec(`CREATE TABLE Pair (id INTEGER PRIMARY KEY, a STRING, b STRING)`); err != nil {
		return nil, err
	}
	for i := 0; i < e24Pairs; i++ {
		c := cs.List[i]
		variant := c.Variants[len(c.Variants)-1]
		if _, err := eng.Exec(fmt.Sprintf("INSERT INTO Pair VALUES (%d, %s, %s)", i,
			sqltypes.NewString(c.Canonical).SQLLiteral(),
			sqltypes.NewString(variant).SQLLiteral())); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

// e24IDs renders a result's id column as a sorted signature for the
// divergence check.
func e24IDs(res *core.Result) string {
	ids := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		ids = append(ids, row[0].String())
	}
	sort.Strings(ids)
	return strings.Join(ids, ",")
}

// e24Divergence counts ids present in exactly one of the two
// signatures (symmetric difference).
func e24Divergence(a, b string) int {
	count := func(s string) map[string]int {
		m := map[string]int{}
		if s == "" {
			return m
		}
		for _, id := range strings.Split(s, ",") {
			m[id]++
		}
		return m
	}
	am, bm := count(a), count(b)
	n := 0
	for id, c := range am {
		if bm[id] != c {
			n++
		}
	}
	for id, c := range bm {
		if am[id] != c {
			n++
		}
	}
	return n
}

// E24HybridAnswering compares human-only, model-only, and hybrid
// (model-first with human escalation) answering on the same
// entity-resolution workload.
func E24HybridAnswering(seed int64) *Table {
	t := &Table{
		ID:      "E24",
		Title:   "hybrid answering: model-first with human escalation",
		Exhibit: "model workers as a crowd tier, escalation router (extension)",
		Headers: []string{"arm", "rows out", "spend", "escalated HITs", "model answers", "human answers", "crowd time"},
		Metrics: map[string]float64{},
	}
	query := `SELECT id FROM Pair WHERE a ~= b`
	// Every pair is a canonical name vs a misspelling of the same
	// company, so ground truth keeps all ids.
	truthIDs := make([]string, 0, e24Pairs)
	for i := 0; i < e24Pairs; i++ {
		truthIDs = append(truthIDs, fmt.Sprintf("%d", i))
	}
	sort.Strings(truthIDs)
	truth := strings.Join(truthIDs, ",")
	sigs := map[string]string{}
	spends := map[string]float64{}
	for _, arm := range []struct {
		tier   string
		label  string
		prefix string
	}{
		{"human", "human-only (3 x ¢2 per comparison)", "humanonly_"},
		{"model", "model-only (sharp profile, ¢1 per call)", "modelonly_"},
		{"hybrid", "hybrid (model-first, escalate contested)", "hybrid_"},
	} {
		eng, err := e24Engine(seed, arm.tier)
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			continue
		}
		res, err := eng.Exec(query)
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			eng.Close()
			continue
		}
		ts := eng.Tasks().Stats()
		modelAnswers := ts.ByPlatform["model"].Assignments
		humanAnswers := ts.ByPlatform["amt"].Assignments
		t.AddRow(arm.label,
			fmt.Sprintf("%d", len(res.Rows)),
			ts.ApprovedSpend.String(),
			fmt.Sprintf("%d", ts.EscalatedHITs),
			fmt.Sprintf("%d", modelAnswers),
			fmt.Sprintf("%d", humanAnswers),
			fmtDur(ts.CrowdTime),
		)
		sig := e24IDs(res)
		t.Metrics[arm.prefix+"spend_cents"] = float64(ts.ApprovedSpend)
		t.Metrics[arm.prefix+"rows_out"] = float64(len(res.Rows))
		t.Metrics[arm.prefix+"correct_pct"] = 100 * float64(e24Pairs-e24Divergence(sig, truth)) / float64(e24Pairs)
		if arm.tier == "hybrid" {
			t.Metrics["hybrid_escalated_hits"] = float64(ts.EscalatedHITs)
			t.Metrics["hybrid_model_answers"] = float64(modelAnswers)
			t.Metrics["hybrid_human_answers"] = float64(humanAnswers)
		}
		sigs[arm.tier] = sig
		spends[arm.tier] = float64(ts.ApprovedSpend)
		eng.Close()
	}
	if human, ok := spends["human"]; ok && human > 0 {
		t.Metrics["hybrid_spend_pct_of_human_cents"] = 100 * spends["hybrid"] / human
	}
	if _, ok := sigs["hybrid"]; ok {
		div := e24Divergence(sigs["hybrid"], truth)
		t.Metrics["divergence_err_pct"] = 100 * float64(div) / float64(e24Pairs)
	}
	t.Notes = append(t.Notes,
		"same pairs, same seed: hybrid posts every HIT to the model tier first and escalates only unconfident or contested HITs to AMT",
		"divergence counts hybrid result ids that differ from ground truth (all pairs match), as a % of pairs")
	return t
}
