package bench

// E18: storage-engine throughput. Unlike E1–E17 this experiment measures
// the machine, not the crowd: rows/sec for (a) a parallel full-table
// scan fanning one worker per shard and (b) concurrent inserts from 8
// writers, at 1/2/4/8 shards. The 1-shard row IS the old single-mutex
// engine (every operation behind one lock), so the ×1 columns read as
// "sharding speedup over the pre-sharding storage layer".
//
// Determinism note for the benchdiff gate: row/shape and the *_rows_out
// metrics are deterministic and gated; the throughput and speedup
// metrics are wall-clock and reported as informational (their metric
// keys deliberately avoid the gate's directional classifiers), because
// CI runners vary wildly in core count — the ≥3× scan target applies on
// a multi-core machine (effective parallelism = min(shards, GOMAXPROCS)).

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"crowddb/internal/sqltypes"
	"crowddb/internal/storage"
)

const (
	e18ScanRows   = 30000
	e18InsertRows = 6000
	e18Writers    = 8
)

var e18ShardCounts = []int{1, 2, 4, 8}

func e18Row(i int64) storage.Row {
	return storage.Row{
		sqltypes.NewString(fmt.Sprintf("key-%08d", i)),
		sqltypes.NewString(fmt.Sprintf("payload-%d", i%977)),
		sqltypes.NewInt(i % 300),
	}
}

// e18ScanThroughput loads an in-memory store and measures the per-shard
// fan-out scan (the parallel seqScan's storage pattern), repeating until
// enough wall-clock accumulates for a stable rate.
func e18ScanThroughput(shards int) (float64, error) {
	s, err := storage.NewStoreOptions("", storage.Options{Shards: shards})
	if err != nil {
		return 0, err
	}
	if err := s.CreateTable("t", []int{0}); err != nil {
		return 0, err
	}
	for i := int64(0); i < e18ScanRows; i++ {
		if _, err := s.Insert("t", e18Row(i)); err != nil {
			return 0, err
		}
	}
	scanOnce := func() (int, error) {
		counts := make([]int, shards)
		errs := make([]error, shards)
		var wg sync.WaitGroup
		for sh := 0; sh < shards; sh++ {
			wg.Add(1)
			go func(sh int) {
				defer wg.Done()
				_, rows, err := s.ScanShardRows("t", sh)
				if err != nil {
					errs[sh] = err
					return
				}
				// Touch every row (clone + a field read) so the measured
				// work matches what a filtering scan actually does.
				for _, r := range rows {
					if r[2].Int() >= 0 {
						counts[sh]++
					}
				}
			}(sh)
		}
		wg.Wait()
		total := 0
		for sh := 0; sh < shards; sh++ {
			if errs[sh] != nil {
				return 0, errs[sh]
			}
			total += counts[sh]
		}
		return total, nil
	}
	// Warm up once, then measure at least 60ms and 3 passes.
	if n, err := scanOnce(); err != nil || n != e18ScanRows {
		return 0, fmt.Errorf("scan covered %d rows: %v", n, err)
	}
	start := time.Now()
	passes := 0
	for passes < 3 || time.Since(start) < 60*time.Millisecond {
		if _, err := scanOnce(); err != nil {
			return 0, err
		}
		passes++
	}
	return float64(passes) * e18ScanRows / time.Since(start).Seconds(), nil
}

// e18InsertThroughput measures 8 concurrent writers inserting disjoint
// key ranges into a durable store with group-commit WAL: with one shard
// they serialize behind a single lock and fsync stream, with more they
// spread across independent locks and WAL files.
func e18InsertThroughput(shards int) (float64, error) {
	dir, err := os.MkdirTemp("", "crowddb-e18-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	s, err := storage.NewStoreOptions(dir, storage.Options{Shards: shards, Sync: storage.SyncGroup})
	if err != nil {
		return 0, err
	}
	defer s.Close()
	if err := s.CreateTable("t", []int{0}); err != nil {
		return 0, err
	}
	per := e18InsertRows / e18Writers
	errs := make([]error, e18Writers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < e18Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * int64(per)
			for i := int64(0); i < int64(per); i++ {
				if _, err := s.Insert("t", e18Row(base+i)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	n, err := s.RowCount("t")
	if err != nil {
		return 0, err
	}
	if n != per*e18Writers {
		return 0, fmt.Errorf("concurrent insert lost rows: %d of %d", n, per*e18Writers)
	}
	return float64(n) / elapsed, nil
}

// E18StorageThroughput is the sharded-storage throughput harness.
func E18StorageThroughput(seed int64) *Table {
	tab := &Table{
		ID:      "E18",
		Title:   "sharded storage: parallel scan + concurrent insert (extension)",
		Exhibit: "storage-engine throughput vs shard count (post-paper extension)",
		Headers: []string{"shards", "scan rows/s", "scan x1", "insert rows/s", "insert x1"},
		Metrics: map[string]float64{},
	}
	_ = seed // dataset is fixed; wall-clock throughput is the measurement
	var scanBase, insBase float64
	for _, shards := range e18ShardCounts {
		scan, err := e18ScanThroughput(shards)
		if err != nil {
			tab.Notes = append(tab.Notes, fmt.Sprintf("shards=%d scan failed: %v", shards, err))
			continue
		}
		ins, err := e18InsertThroughput(shards)
		if err != nil {
			tab.Notes = append(tab.Notes, fmt.Sprintf("shards=%d insert failed: %v", shards, err))
			continue
		}
		if shards == 1 {
			scanBase, insBase = scan, ins
		}
		ratio := func(v, base float64) string {
			if base <= 0 {
				return "n/a" // 1-shard baseline failed; no ratio to report
			}
			return fmt.Sprintf("%.2fx", v/base)
		}
		tab.AddRow(
			fmt.Sprintf("%d", shards),
			fmt.Sprintf("%.2fM", scan/1e6),
			ratio(scan, scanBase),
			fmt.Sprintf("%.0fK", ins/1e3),
			ratio(ins, insBase),
		)
		tab.Metrics[fmt.Sprintf("scan_rows_per_sec_%dshards", shards)] = scan
		tab.Metrics[fmt.Sprintf("insert_rows_per_sec_%dshards", shards)] = ins
	}
	// Deterministic, gated coverage counters (rows_out is a higher-is-
	// better key for the benchdiff gate).
	tab.Metrics["scan_rows_out"] = e18ScanRows
	tab.Metrics["insert_rows_out"] = float64(e18InsertRows/e18Writers) * e18Writers
	// Wall-clock ratios: informational (key names avoid gate classifiers).
	if scanBase > 0 {
		tab.Metrics["scan_par8_vs_1"] = tab.Metrics["scan_rows_per_sec_8shards"] / scanBase
	}
	if insBase > 0 {
		tab.Metrics["insert_par8_vs_1"] = tab.Metrics["insert_rows_per_sec_8shards"] / insBase
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("effective scan parallelism = min(shards, GOMAXPROCS=%d); 8 concurrent writers, group-commit WAL", runtime.GOMAXPROCS(0)),
		"1 shard = the pre-sharding single-mutex engine; ratios are sharding speedups over it")
	return tab
}
