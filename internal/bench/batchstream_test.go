package bench

import "testing"

// TestE22Shape pins the quorum-streaming experiment's claims per crowd
// workload: identical answers and crowd work across delivery modes, a
// single buffered row at first delivery when streamed versus the whole
// result when materialized, and a first row that arrives with part of
// the crowd round still uncollected.
func TestE22Shape(t *testing.T) {
	tab := E22QuorumStreaming(42)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %v (notes %v)", tab.Rows, tab.Notes)
	}
	for _, wl := range []string{"crowdorder", "crowdequal"} {
		if tab.Metrics[wl+"_streamed_rows_out"] != tab.Metrics[wl+"_materialized_rows_out"] {
			t.Errorf("%s: answers differ across modes: %v vs %v", wl,
				tab.Metrics[wl+"_streamed_rows_out"], tab.Metrics[wl+"_materialized_rows_out"])
		}
		if tab.Metrics[wl+"_streamed_rows_out"] == 0 {
			t.Errorf("%s: no rows", wl)
		}
		if tab.Metrics[wl+"_mode_divergence_err"] != 0 {
			t.Errorf("%s: batching changed crowd work: divergence %v", wl,
				tab.Metrics[wl+"_mode_divergence_err"])
		}
		if tab.Metrics[wl+"_streamed_first_row_buffered"] != 1 {
			t.Errorf("%s: streamed first row buffered %v, want 1", wl,
				tab.Metrics[wl+"_streamed_first_row_buffered"])
		}
		if tab.Metrics[wl+"_materialized_first_row_buffered"] != tab.Metrics[wl+"_materialized_rows_out"] {
			t.Errorf("%s: materialization must buffer the whole result, got %v of %v", wl,
				tab.Metrics[wl+"_materialized_first_row_buffered"], tab.Metrics[wl+"_materialized_rows_out"])
		}
		if tab.Metrics[wl+"_unstreamed_err"] != 0 {
			t.Errorf("%s: first row waited for the full crowd round (%v of %v decisions)", wl,
				tab.Metrics[wl+"_first_row_decisions"], tab.Metrics[wl+"_final_decisions"])
		}
	}
}
