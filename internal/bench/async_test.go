package bench

import (
	"reflect"
	"testing"
)

// E15: the async scheduler must deliver at least the 1.5x wall-clock win
// the ROADMAP promises at window 8 vs the serial window 1, without ever
// exceeding its window.
func TestE15AsyncSpeedup(t *testing.T) {
	serial, serialStats, err := asyncWorkload(42, 1, 8, 12)
	if err != nil {
		t.Fatal(err)
	}
	overlapped, asyncStats, err := asyncWorkload(42, 8, 8, 12)
	if err != nil {
		t.Fatal(err)
	}
	if serialStats.PeakInFlight != 1 {
		t.Errorf("window 1 must serialize groups: peak %d", serialStats.PeakInFlight)
	}
	if asyncStats.PeakInFlight > 8 {
		t.Errorf("window 8 exceeded: peak %d", asyncStats.PeakInFlight)
	}
	if speedup := float64(serial) / float64(overlapped); speedup < 1.5 {
		t.Errorf("async speedup %.2fx below the 1.5x bar (serial %v, window-8 %v)",
			speedup, serial, overlapped)
	}
}

// The E15 table itself must be a deterministic function of the seed — the
// fixed-seed regression for the whole experiment pipeline.
func TestE15Deterministic(t *testing.T) {
	a, b := E15AsyncScheduler(7), E15AsyncScheduler(7)
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Errorf("E15 not deterministic per seed:\n%v\nvs\n%v", a.Rows, b.Rows)
	}
	if len(a.Rows) != 4 {
		t.Fatalf("expected 4 window rows: %v", a.Rows)
	}
}

// E5 exercises the pipelined CrowdProbe path end to end (engine, probe
// chunking, async scheduler); its table must also replay identically.
func TestE5Deterministic(t *testing.T) {
	a, b := E5CrowdProbe(42), E5CrowdProbe(42)
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Errorf("E5 not deterministic per seed:\n%v\nvs\n%v", a.Rows, b.Rows)
	}
}
