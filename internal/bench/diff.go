package bench

// Benchmark-regression comparison: the logic behind cmd/benchdiff and the
// CI gate. Baselines are the BENCH_<id>.json files crowdbench -json
// writes, committed under bench/baselines/; a candidate run at the same
// seed is compared metric by metric.
//
// Rules (the documented tolerance):
//
//   - Metrics are classified by key: cost-like metrics (comparisons,
//     spend, cents, minutes, makespan, HITs, error rates) must not rise,
//     benefit-like metrics (hit_rate, speedup, ops_per*, queries,
//     correct) must not fall.
//   - The allowance per metric is max(tolerance × baseline, slack): the
//     relative tolerance absorbs proportional drift on large numbers,
//     the absolute slack keeps single-digit metrics (e.g. 8 paid
//     comparisons) from failing on a ±1 wobble.
//   - A missing candidate experiment or metric, a seed mismatch, or a
//     row-count change is a hard failure; new metrics and textual cell
//     changes are reported as notes.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// BenchFile mirrors crowdbench's BENCH_<id>.json output shape.
type BenchFile struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Exhibit string             `json:"exhibit"`
	Seed    int64              `json:"seed"`
	Headers []string           `json:"headers"`
	Rows    [][]string         `json:"rows"`
	Notes   []string           `json:"notes,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// DiffResult is the outcome of comparing a candidate run to a baseline.
type DiffResult struct {
	// Failures are regressions beyond tolerance; a non-empty list fails
	// the gate.
	Failures []string
	// Notes are informational differences (new metrics, cell changes).
	Notes []string
	// Compared counts experiments matched against a baseline.
	Compared int
}

// OK reports whether the candidate passed the gate.
func (d *DiffResult) OK() bool { return len(d.Failures) == 0 }

// Report renders the outcome for CI logs.
func (d *DiffResult) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "benchdiff: %d experiments compared\n", d.Compared)
	for _, n := range d.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	for _, f := range d.Failures {
		fmt.Fprintf(&sb, "FAIL: %s\n", f)
	}
	if d.OK() {
		sb.WriteString("benchdiff: no regressions\n")
	}
	return sb.String()
}

// lowerIsBetter / higherIsBetter classify metric keys by substring.
var (
	lowerIsBetter  = []string{"comparison", "spend", "cents", "minutes", "makespan", "hits_posted", "err", "tasks", "groups"}
	higherIsBetter = []string{"hit_rate", "speedup", "ops_per", "queries", "correct", "rows_out"}
)

func classify(key string) int { // -1 lower-better, +1 higher-better, 0 info
	k := strings.ToLower(key)
	// Forecast metrics are informational: a predicted_* value may
	// legitimately rise when the model becomes MORE accurate, so gating
	// it directionally would punish accuracy fixes.
	if strings.Contains(k, "predicted") {
		return 0
	}
	// "err" must not shadow benefit keys that merely contain it.
	for _, s := range higherIsBetter {
		if strings.Contains(k, s) {
			return 1
		}
	}
	for _, s := range lowerIsBetter {
		if strings.Contains(k, s) {
			return -1
		}
	}
	return 0
}

// LoadBenchDir reads every BENCH_*.json in dir, keyed by experiment ID.
func LoadBenchDir(dir string) (map[string]*BenchFile, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	out := make(map[string]*BenchFile, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var bf BenchFile
		if err := json.Unmarshal(data, &bf); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if bf.ID == "" {
			return nil, fmt.Errorf("%s: missing experiment id", p)
		}
		out[bf.ID] = &bf
	}
	return out, nil
}

// Compare applies the regression rules to one experiment.
func Compare(base, cand *BenchFile, tol, slack float64, res *DiffResult) {
	id := base.ID
	if cand == nil {
		res.Failures = append(res.Failures, fmt.Sprintf("%s: missing from candidate run", id))
		return
	}
	res.Compared++
	if base.Seed != cand.Seed {
		res.Failures = append(res.Failures,
			fmt.Sprintf("%s: seed mismatch (baseline %d, candidate %d)", id, base.Seed, cand.Seed))
		return
	}
	if len(base.Rows) != len(cand.Rows) {
		res.Failures = append(res.Failures,
			fmt.Sprintf("%s: row count changed %d -> %d", id, len(base.Rows), len(cand.Rows)))
	} else {
		changed := 0
		for i := range base.Rows {
			if strings.Join(base.Rows[i], "|") != strings.Join(cand.Rows[i], "|") {
				changed++
			}
		}
		if changed > 0 {
			res.Notes = append(res.Notes, fmt.Sprintf("%s: %d result rows changed textually", id, changed))
		}
	}
	keys := make([]string, 0, len(base.Metrics))
	for k := range base.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		bv := base.Metrics[k]
		cv, ok := cand.Metrics[k]
		if !ok {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: metric %s missing from candidate", id, k))
			continue
		}
		allowance := tol * math.Abs(bv)
		if allowance < slack {
			allowance = slack
		}
		switch classify(k) {
		case -1:
			if cv > bv+allowance {
				res.Failures = append(res.Failures,
					fmt.Sprintf("%s: %s regressed %.3f -> %.3f (allowed <= %.3f)", id, k, bv, cv, bv+allowance))
			}
		case 1:
			if cv < bv-allowance {
				res.Failures = append(res.Failures,
					fmt.Sprintf("%s: %s regressed %.3f -> %.3f (allowed >= %.3f)", id, k, bv, cv, bv-allowance))
			}
		}
	}
	for k := range cand.Metrics {
		if _, ok := base.Metrics[k]; !ok {
			res.Notes = append(res.Notes, fmt.Sprintf("%s: new metric %s (no baseline; commit updated baselines)", id, k))
		}
	}
}

// CompareDirs runs the gate over two BENCH_*.json directories.
func CompareDirs(baselineDir, candidateDir string, tol, slack float64) (*DiffResult, error) {
	base, err := LoadBenchDir(baselineDir)
	if err != nil {
		return nil, err
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("benchdiff: no BENCH_*.json baselines in %s", baselineDir)
	}
	cand, err := LoadBenchDir(candidateDir)
	if err != nil {
		return nil, err
	}
	res := &DiffResult{}
	ids := make([]string, 0, len(base))
	for id := range base {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		Compare(base[id], cand[id], tol, slack, res)
	}
	for id := range cand {
		if _, ok := base[id]; !ok {
			res.Notes = append(res.Notes, fmt.Sprintf("%s: new experiment (no baseline; commit one)", id))
		}
	}
	return res, nil
}
