package bench

import (
	"fmt"
	"time"

	"crowddb/internal/crowd"
	"crowddb/internal/quality"
	"crowddb/internal/sim"
	"crowddb/internal/stats"
)

// E1CompletionVsReward reproduces the AMT responsiveness micro-benchmark
// (SIGMOD Figs. 4–5): percentage of HITs completed over time for different
// rewards. Expected shape: higher pay completes faster, with diminishing
// returns at the top.
func E1CompletionVsReward(seed int64) *Table {
	t := &Table{
		ID:      "E1",
		Title:   "HIT-group completion time vs reward (50 HITs x 3 assignments)",
		Exhibit: "SIGMOD'11 Figs. 4-5 (platform responsiveness)",
		Headers: []string{"reward", "t(25%)", "t(50%)", "t(75%)", "t(100%)"},
	}
	const sample = 10 * time.Minute
	for _, reward := range []crowd.Cents{1, 2, 3, 4} {
		cfg := sim.DefaultConfig()
		cfg.Seed = seed
		m := sim.NewMarket(cfg)
		id, err := m.Post(probeHITGroup(50, 3, reward))
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			continue
		}
		done, series := stepUntilDone(m, id, sample, 400*time.Hour)
		row := []string{reward.String()}
		for _, frac := range []float64{0.25, 0.5, 0.75} {
			at := time.Duration(0)
			for i, f := range series {
				if f >= frac {
					at = time.Duration(i+1) * sample
					break
				}
			}
			row = append(row, fmtDur(at))
		}
		row = append(row, fmtDur(done))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "higher reward => faster completion with diminishing returns (price-elastic arrivals)")
	return t
}

// E2TurnaroundVsBatch reproduces the batch-size study (SIGMOD Fig. 6):
// time to first and last answer as the HIT-group size grows. Expected
// shape: first answers arrive at similar times; the last answer grows
// sublinearly (big groups amortize worker visits).
func E2TurnaroundVsBatch(seed int64) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "turnaround vs HIT-group size (2c, 3 assignments)",
		Exhibit: "SIGMOD'11 Fig. 6 (group-size effect)",
		Headers: []string{"batch", "first answer", "last answer", "assignments/hour"},
	}
	for _, batch := range []int{1, 5, 10, 25, 50, 100} {
		cfg := sim.DefaultConfig()
		cfg.Seed = seed
		m := sim.NewMarket(cfg)
		id, err := m.Post(probeHITGroup(batch, 3, 2))
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			continue
		}
		done, _ := stepUntilDone(m, id, 5*time.Minute, 1000*time.Hour)
		res, _ := m.Results(id)
		if len(res) == 0 {
			t.AddRow(fmt.Sprintf("%d", batch), "-", "-", "-")
			continue
		}
		first := res[0].SubmittedAt
		last := res[len(res)-1].SubmittedAt
		rate := float64(len(res)) / last.Hours()
		t.AddRow(fmt.Sprintf("%d", batch), fmtDur(first), fmtDur(last), fmt.Sprintf("%.1f", rate))
		_ = done
	}
	t.Notes = append(t.Notes, "per-assignment throughput rises with batch size; last-answer time grows sublinearly")
	return t
}

// E3WorkerAffinity reproduces the worker-community observation (SIGMOD
// Fig. 7): a small set of returning workers does most of the work.
func E3WorkerAffinity(seed int64) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "worker affinity: share of assignments by most active workers",
		Exhibit: "SIGMOD'11 Fig. 7 (worker community / affinity)",
		Headers: []string{"workers", "assignments", "top-1 share", "top-5 share", "top-10 share", "gini"},
	}
	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	m := sim.NewMarket(cfg)
	id, _ := m.Post(probeHITGroup(300, 3, 2))
	stepUntilDone(m, id, time.Hour, 2000*time.Hour)
	ws := m.WorkerStats()
	var counts []int
	total := 0
	for _, w := range ws {
		counts = append(counts, w.Completed)
		total += w.Completed
	}
	t.AddRow(
		fmt.Sprintf("%d", len(ws)),
		fmt.Sprintf("%d", total),
		fmtPct(stats.TopKShare(counts, 1)),
		fmtPct(stats.TopKShare(counts, 5)),
		fmtPct(stats.TopKShare(counts, 10)),
		fmt.Sprintf("%.2f", stats.Gini(counts)),
	)
	t.Notes = append(t.Notes, "preferential attachment: returning workers dominate, as the paper observed on live AMT")
	return t
}

// E4MajorityVote reproduces the quality-control study: answer error rate
// before and after majority vote, as the replication factor grows.
func E4MajorityVote(seed int64) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "answer error rate vs replication (majority vote)",
		Exhibit: "SIGMOD'11 quality-control study (§ Experiments)",
		Headers: []string{"assignments", "raw error", "voted error", "no-quorum"},
	}
	for _, replication := range []int{1, 3, 5, 7} {
		cfg := sim.DefaultConfig()
		cfg.Seed = seed
		m := sim.NewMarket(cfg)
		const n = 100
		g := probeHITGroup(n, replication, 2)
		id, _ := m.Post(g)
		stepUntilDone(m, id, time.Hour, 2000*time.Hour)
		res, _ := m.Results(id)
		byHIT := map[string][]quality.Vote{}
		rawWrong, rawTotal := 0, 0
		for _, a := range res {
			byHIT[a.HITID] = append(byHIT[a.HITID], quality.Vote{WorkerID: a.WorkerID, Answer: a.Answers["value"]})
		}
		votedWrong, noQuorum := 0, 0
		for i := 0; i < n; i++ {
			hitID := fmt.Sprintf("H%04d", i)
			truth := fmt.Sprintf("v%d", i)
			votes := byHIT[hitID]
			for _, v := range votes {
				rawTotal++
				if quality.Normalize(v.Answer) != truth {
					rawWrong++
				}
			}
			d := quality.MajorityVote(votes, quality.MajorityFor(replication))
			switch {
			case !d.Quorum:
				noQuorum++
			case quality.Normalize(d.Value) != truth:
				votedWrong++
			}
		}
		t.AddRow(
			fmt.Sprintf("%d", replication),
			fmtPct(float64(rawWrong)/float64(maxI(rawTotal, 1))),
			fmtPct(float64(votedWrong)/float64(n)),
			fmtPct(float64(noQuorum)/float64(n)),
		)
	}
	t.Notes = append(t.Notes, "voted error falls roughly geometrically with replication; raw error stays flat")
	return t
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
