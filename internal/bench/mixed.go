package bench

// E20: mixed read/write under MVCC snapshot isolation. Before the MVCC
// rewrite the engine held one statement RWMutex, so any DML submitted
// while a crowd SELECT sat mid-crowd-wait blocked until the crowd
// answered — minutes of virtual time, forever if the comparison was
// foreign-owned. This experiment measures writer statement latency (p50)
// with and without a crowd SELECT parked in flight, and checks the
// reader's result is exactly its snapshot.
//
// Determinism note for the benchdiff gate: row/shape and the row-count
// metrics (reader_rows_out, table_rows_out, snapshot_mismatch_err) are
// deterministic and gated; the p50 latencies and their ratio are
// wall-clock and reported as informational (their metric keys
// deliberately avoid the gate's directional classifiers).

import (
	"fmt"
	"sort"
	"time"

	"crowddb/internal/core"
	"crowddb/internal/crowd/amt"
	"crowddb/internal/parser"
	"crowddb/internal/sqltypes"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

const (
	e20Pairs       = 6  // company pairs in the reader's table
	e20WriterStmts = 24 // alternating INSERT / UPDATE statements
)

// e20Engine builds the pair fixture: e20Pairs company rows whose variant
// is the lower-cased canonical, so every `a ~= b` comparison is a true
// match under the conference oracle.
func e20Engine(seed int64) (*core.Engine, *workload.Companies, error) {
	conf := workload.NewConference(8, seed)
	eng, err := core.Open(core.Config{
		Platform: amt.NewDefault(seed),
		Oracle:   conf.Oracle(),
		Payment:  wrm.DefaultPolicy(),
		Tasks:    fastTasks(),
	})
	if err != nil {
		return nil, nil, err
	}
	if _, err := eng.Exec(`CREATE TABLE Pair (id INTEGER PRIMARY KEY, a STRING, b STRING)`); err != nil {
		eng.Close()
		return nil, nil, err
	}
	cs := workload.NewCompanies(e20Pairs, seed)
	for i, c := range cs.List {
		variant := c.Variants[len(c.Variants)-1]
		if _, err := eng.Exec(fmt.Sprintf("INSERT INTO Pair VALUES (%d, %s, %s)",
			i, sqltypes.NewString(c.Canonical).SQLLiteral(), sqltypes.NewString(variant).SQLLiteral())); err != nil {
			eng.Close()
			return nil, nil, err
		}
	}
	return eng, cs, nil
}

// e20RunWriters issues the fixed writer workload sequentially and
// returns the per-statement latencies: e20WriterStmts statements
// alternating new-row INSERTs with b-column UPDATEs of existing rows.
func e20RunWriters(eng *core.Engine) ([]time.Duration, error) {
	lat := make([]time.Duration, 0, e20WriterStmts)
	for i := 0; i < e20WriterStmts; i++ {
		var sql string
		if i%2 == 0 {
			sql = fmt.Sprintf("INSERT INTO Pair VALUES (%d, 'new-%d', 'x')", 100+i, i)
		} else {
			sql = fmt.Sprintf("UPDATE Pair SET b = 'rewritten-%d' WHERE id = %d", i, i%e20Pairs)
		}
		start := time.Now()
		if _, err := eng.Exec(sql); err != nil {
			return nil, fmt.Errorf("%s: %w", sql, err)
		}
		lat = append(lat, time.Since(start))
	}
	return lat, nil
}

func e20P50(lat []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// E20MixedReadWrite is the mixed read/write harness.
func E20MixedReadWrite(seed int64) *Table {
	tab := &Table{
		ID:      "E20",
		Title:   "mixed read/write: writer latency under an in-flight crowd SELECT (extension)",
		Exhibit: "MVCC snapshot reads vs the engine statement lock (post-paper extension)",
		Headers: []string{"phase", "writer stmts", "writer p50", "reader rows", "table rows after"},
		Metrics: map[string]float64{},
	}
	rowsAfter := func(eng *core.Engine) (int, error) {
		res, err := eng.Exec("SELECT COUNT(*) FROM Pair")
		if err != nil {
			return 0, err
		}
		return int(res.Rows[0][0].Int()), nil
	}

	// Phase A: writers alone — the latency floor.
	engA, _, err := e20Engine(seed)
	if err != nil {
		tab.Notes = append(tab.Notes, err.Error())
		return tab
	}
	latA, err := e20RunWriters(engA)
	if err != nil {
		tab.Notes = append(tab.Notes, err.Error())
		engA.Close()
		return tab
	}
	afterA, err := rowsAfter(engA)
	engA.Close()
	if err != nil {
		tab.Notes = append(tab.Notes, err.Error())
		return tab
	}
	p50A := e20P50(latA)
	tab.AddRow("writers alone", fmt.Sprintf("%d", e20WriterStmts), p50A.String(), "-", fmt.Sprintf("%d", afterA))

	// Phase B: the same writer workload while a crowd SELECT is parked
	// mid-crowd-wait on a foreign-owned comparison. With the old engine
	// statement lock this phase never completes.
	engB, cs, err := e20Engine(seed)
	if err != nil {
		tab.Notes = append(tab.Notes, err.Error())
		return tab
	}
	defer engB.Close()
	c0 := cs.List[0]
	leader := engB.Cache().ClaimEqual("", c0.Canonical, c0.Variants[len(c0.Variants)-1])
	if !leader.Leader {
		tab.Notes = append(tab.Notes, "setup: failed to lead the blocking claim")
		return tab
	}
	stmts, err := parser.ParseAll("SELECT id FROM Pair WHERE a ~= b")
	if err != nil {
		tab.Notes = append(tab.Notes, err.Error())
		return tab
	}
	snapCh := make(chan int64, 1)
	opts := core.DefaultExecOpts()
	opts.OnSnapshot = func(ts int64) { snapCh <- ts }
	type selOut struct {
		res *core.Result
		err error
	}
	selCh := make(chan selOut, 1)
	go func() {
		res, err := engB.ExecStmtOpts(stmts[0], opts)
		selCh <- selOut{res, err}
	}()
	<-snapCh // the reader has pinned its snapshot; writers now race it

	latB, err := e20RunWriters(engB)
	if err != nil {
		tab.Notes = append(tab.Notes, err.Error())
		return tab
	}
	afterB, err := rowsAfter(engB)
	if err != nil {
		tab.Notes = append(tab.Notes, err.Error())
		return tab
	}
	leader.Abandon() // release the reader; it finishes against its snapshot
	sel := <-selCh
	if sel.err != nil {
		tab.Notes = append(tab.Notes, sel.err.Error())
		return tab
	}
	// The reader's rows must be exactly its snapshot: ids 0..e20Pairs-1,
	// all true matches, none of the concurrent inserts or rewrites.
	mismatches := 0
	if len(sel.res.Rows) != e20Pairs {
		mismatches = e20Pairs
	} else {
		for i, row := range sel.res.Rows {
			if row[0].Int() != int64(i) {
				mismatches++
			}
		}
	}
	p50B := e20P50(latB)
	tab.AddRow("writers + parked crowd SELECT", fmt.Sprintf("%d", e20WriterStmts), p50B.String(),
		fmt.Sprintf("%d", len(sel.res.Rows)), fmt.Sprintf("%d", afterB))

	// Deterministic, gated coverage counters.
	tab.Metrics["reader_rows_out"] = float64(len(sel.res.Rows))
	tab.Metrics["table_rows_out"] = float64(afterB)
	tab.Metrics["snapshot_mismatch_err"] = float64(mismatches)
	// Wall-clock latencies: informational (keys avoid gate classifiers).
	tab.Metrics["writer_p50_micros_alone"] = float64(p50A.Microseconds())
	tab.Metrics["writer_p50_micros_with_reader"] = float64(p50B.Microseconds())
	if p50A > 0 {
		tab.Metrics["writer_p50_with_reader_vs_alone"] = float64(p50B) / float64(p50A)
	}
	tab.Notes = append(tab.Notes,
		"phase B parks a crowd SELECT on a foreign-owned comparison for the whole writer run; with the pre-MVCC engine statement lock it never completes",
		fmt.Sprintf("reader snapshot pinned before %d writer statements; %d mismatches against its snapshot", e20WriterStmts, mismatches))
	return tab
}
