package bench

import "testing"

// TestE19Shape pins the streaming experiment's structural claims: both
// modes produce the identical row count, and the streaming seam holds
// exactly one row between the executor and the caller at first delivery
// while materialization holds the whole result.
func TestE19Shape(t *testing.T) {
	tab := E19Streaming(42)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %v (notes %v)", tab.Rows, tab.Notes)
	}
	if tab.Metrics["streamed_rows_out"] != tab.Metrics["materialized_rows_out"] {
		t.Errorf("answers differ: streamed %v vs materialized %v rows",
			tab.Metrics["streamed_rows_out"], tab.Metrics["materialized_rows_out"])
	}
	if tab.Metrics["streamed_rows_out"] == 0 {
		t.Error("experiment produced no rows")
	}
	if tab.Metrics["streamed_first_row_buffered"] != 1 {
		t.Errorf("streaming must deliver the first row unbuffered, got %v",
			tab.Metrics["streamed_first_row_buffered"])
	}
	if tab.Metrics["materialized_first_row_buffered"] != tab.Metrics["materialized_rows_out"] {
		t.Errorf("materialization must buffer the whole result before the first row, got %v of %v",
			tab.Metrics["materialized_first_row_buffered"], tab.Metrics["materialized_rows_out"])
	}
}
