package bench

// E19: time-to-first-row for streamed vs materialized results — the
// jobs API's RowSink seam against the old collect-everything path, on a
// machine-only workload at the pinned seed.
//
// Determinism note for the benchdiff gate: the row counts and the
// rows-buffered-before-first-delivery metrics are deterministic and
// meaningful (1 for the streaming seam, the full result for
// materialization); wall-clock first-row/total latencies are reported
// as informational metrics whose keys avoid the gate's directional
// classifiers, because CI runners vary. This experiment covers the
// machine-only pipeline; E22 measures the crowd operators, which stream
// per settled prefix / per quorum under the vectorized executor.

import (
	"context"
	"fmt"
	"strings"
	"time"

	"crowddb/internal/core"
	"crowddb/internal/exec"
)

const (
	e19Rows      = 8000
	e19BatchSize = 500
)

// e19Engine loads a machine-only Item table (no crowd platform).
func e19Engine() (*core.Engine, error) {
	eng, err := core.Open(core.Config{})
	if err != nil {
		return nil, err
	}
	if _, err := eng.Exec(`CREATE TABLE Item (id INTEGER PRIMARY KEY, grp INTEGER, val STRING)`); err != nil {
		return nil, err
	}
	for lo := 0; lo < e19Rows; lo += e19BatchSize {
		var sb strings.Builder
		sb.WriteString("INSERT INTO Item VALUES ")
		for i := lo; i < lo+e19BatchSize && i < e19Rows; i++ {
			if i > lo {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, 'payload-%d')", i, i%311, i%977)
		}
		if _, err := eng.Exec(sb.String()); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

// E19Streaming measures how much result buffering stands between the
// executor and the caller's first row, streamed vs materialized.
func E19Streaming(seed int64) *Table {
	t := &Table{
		ID:      "E19",
		Title:   "Streaming vs materialized results: time to first row",
		Exhibit: "jobs API extension (no paper exhibit)",
		Headers: []string{"mode", "rows out", "rows buffered at first row", "first row", "total"},
		Metrics: map[string]float64{},
	}
	query := "SELECT id, val FROM Item WHERE grp < 150"

	// Materialized: the caller sees row 1 only after every row is
	// collected (the pre-jobs Engine.Exec contract).
	engM, err := e19Engine()
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	startM := time.Now()
	resM, err := engM.Exec(query)
	totalM := time.Since(startM)
	engM.Close()
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	matRows := len(resM.Rows)
	t.AddRow("materialized", fmt.Sprintf("%d", matRows), fmt.Sprintf("%d", matRows),
		fmtMicros(totalM), fmtMicros(totalM))
	t.Metrics["materialized_rows_out"] = float64(matRows)
	t.Metrics["materialized_first_row_buffered"] = float64(matRows)
	t.Metrics["materialized_ttfr_wall_us"] = float64(totalM.Microseconds())

	// Streamed: rows flow through the RowSink seam as operators produce
	// them; the caller holds exactly one undelivered row at first sight.
	engS, err := e19Engine()
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	var firstRow time.Duration
	streamed := 0
	opts := core.DefaultExecOpts()
	startS := time.Now()
	opts.Sink = func(exec.Row) error {
		if streamed == 0 {
			firstRow = time.Since(startS)
		}
		streamed++
		return nil
	}
	_, err = engS.Execute(context.Background(), query, opts)
	totalS := time.Since(startS)
	engS.Close()
	if err != nil {
		t.Notes = append(t.Notes, err.Error())
		return t
	}
	t.AddRow("streamed", fmt.Sprintf("%d", streamed), "1",
		fmtMicros(firstRow), fmtMicros(totalS))
	t.Metrics["streamed_rows_out"] = float64(streamed)
	t.Metrics["streamed_first_row_buffered"] = 1
	t.Metrics["streamed_ttfr_wall_us"] = float64(firstRow.Microseconds())

	t.Notes = append(t.Notes,
		fmt.Sprintf("identical %d-row answer both ways; streaming hands row 1 over before %d rows are buffered", streamed, matRows),
		"machine-only pipeline; the crowd operators stream per settled prefix / per quorum — E22 measures those")
	_ = seed // data generation is formulaic; the seed pins the JSON header
	return t
}

func fmtMicros(d time.Duration) string {
	if d >= time.Millisecond {
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	}
	return fmt.Sprintf("%dµs", d.Microseconds())
}
