package bench

import "testing"

// E21: tracing is observation-only — both arms must do bit-identical
// crowd work at any seed, and the traced arm must actually have recorded
// a span tree for the paid statement.
func TestE21Shape(t *testing.T) {
	tab := E21ObservabilityOverhead(42)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %v (notes: %v)", tab.Rows, tab.Notes)
	}
	if got := tab.Metrics["arm_divergence_err"]; got != 0 {
		t.Errorf("arm_divergence_err = %v, want 0: tracing changed the engine's crowd work", got)
	}
	if got := tab.Metrics["on_comparisons"]; got < float64(e21Pairs) {
		t.Errorf("on_comparisons = %v, want >= %d (every pair compared once)", got, e21Pairs)
	}
	if got := tab.Metrics["on_rows_out"]; got != float64(e21Pairs*(e21Repeats+1)) {
		t.Errorf("on_rows_out = %v, want %d (all true matches, every run)", got, e21Pairs*(e21Repeats+1))
	}
	if got := tab.Metrics["trace_span_volume"]; got <= 0 {
		t.Errorf("trace_span_volume = %v, want > 0: the paid SELECT's trace was not retained", got)
	}
	if got := tab.Metrics["overhead_wall_ratio"]; got <= 0 {
		t.Errorf("overhead_wall_ratio = %v, want > 0", got)
	}
}
