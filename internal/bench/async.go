package bench

import (
	"fmt"
	"time"

	"crowddb/internal/crowd/amt"
	"crowddb/internal/quality"
	"crowddb/internal/taskmgr"
	"crowddb/internal/wrm"
)

// asyncWorkload runs the E2-style workload (several probe HIT groups of
// the same shape) through the Task Manager's async scheduler at the given
// in-flight window and reports the virtual makespan (time until the last
// group resolves) plus the manager's stats.
func asyncWorkload(seed int64, window, groups, hitsPerGroup int) (time.Duration, taskmgr.Stats, error) {
	platform := amt.NewDefault(seed)
	cfg := taskmgr.DefaultConfig()
	cfg.PollInterval = time.Minute
	cfg.MaxInFlight = window
	m := taskmgr.New(platform, nil, quality.NewTracker(), wrm.New(wrm.DefaultPolicy(), quality.NewTracker()), nil, cfg)

	// Submit every group up front — the paper's executor posts HITs and
	// continues processing — then collect them all.
	pendings := make([]*taskmgr.Pending, groups)
	for i := range pendings {
		g := probeHITGroup(hitsPerGroup, 3, 2)
		// HIT IDs must be unique across groups on one platform run.
		for h, hit := range g.HITs {
			hit.ID = fmt.Sprintf("G%02d-H%04d", i, h)
		}
		pendings[i] = m.Submit(g)
	}
	for _, p := range pendings {
		if _, err := p.Wait(); err != nil {
			return 0, taskmgr.Stats{}, err
		}
	}
	return platform.Now(), m.Stats(), nil
}

// E15AsyncScheduler measures the async HIT scheduler: the same E2-style
// workload (8 probe groups x 12 HITs, 3 assignments, 2c) dispatched at
// in-flight windows 1/2/4/8. Window 1 serializes the groups exactly like
// the original synchronous Task Manager; wider windows overlap their crowd
// waits, shrinking wall-clock turnaround while the per-group answer
// latency distribution stays the same.
func E15AsyncScheduler(seed int64) *Table {
	t := &Table{
		ID:      "E15",
		Title:   "async scheduler: turnaround vs in-flight window",
		Exhibit: "paper §3 asynchronous task manager (extension)",
		Headers: []string{"window", "makespan", "crowd time", "peak in-flight", "peak queue", "speedup"},
		Metrics: map[string]float64{},
	}
	const groups, hitsPerGroup = 8, 12
	var base time.Duration
	for _, window := range []int{1, 2, 4, 8} {
		makespan, st, err := asyncWorkload(seed, window, groups, hitsPerGroup)
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			continue
		}
		if window == 1 {
			base = makespan
		}
		speedup := "-"
		if base > 0 && makespan > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(base)/float64(makespan))
			t.Metrics[fmt.Sprintf("window%d_speedup", window)] = float64(base) / float64(makespan)
		}
		t.Metrics[fmt.Sprintf("window%d_makespan_minutes", window)] = makespan.Minutes()
		t.AddRow(
			fmt.Sprintf("%d", window),
			fmtDur(makespan),
			fmtDur(st.CrowdTime),
			fmt.Sprintf("%d", st.PeakInFlight),
			fmt.Sprintf("%d", st.PeakQueueDepth),
			speedup,
		)
	}
	t.Notes = append(t.Notes,
		"makespan = virtual time until the last of 8 concurrent probe groups resolves; window 1 reproduces the serial task manager")
	return t
}
