package bench

import "testing"

// E18 shape: four shard configurations, positive throughput everywhere,
// deterministic coverage counters, and the informational speedup ratios
// present. Absolute speedups are NOT asserted — they depend on the
// runner's core count (GOMAXPROCS=1 gives ratios near 1 for scans).
func TestE18Shape(t *testing.T) {
	tab := E18StorageThroughput(42)
	if len(tab.Rows) != len(e18ShardCounts) {
		t.Fatalf("rows: %v (notes: %v)", tab.Rows, tab.Notes)
	}
	for _, shards := range e18ShardCounts {
		for _, key := range []string{"scan_rows_per_sec_", "insert_rows_per_sec_"} {
			k := key + map[int]string{1: "1shards", 2: "2shards", 4: "4shards", 8: "8shards"}[shards]
			if tab.Metrics[k] <= 0 {
				t.Errorf("metric %s missing or non-positive: %v", k, tab.Metrics[k])
			}
		}
	}
	if tab.Metrics["scan_rows_out"] != e18ScanRows {
		t.Errorf("scan coverage: %v", tab.Metrics["scan_rows_out"])
	}
	if tab.Metrics["insert_rows_out"] != e18InsertRows {
		t.Errorf("insert coverage: %v", tab.Metrics["insert_rows_out"])
	}
	for _, k := range []string{"scan_par8_vs_1", "insert_par8_vs_1"} {
		if tab.Metrics[k] <= 0 {
			t.Errorf("ratio %s missing: %v", k, tab.Metrics[k])
		}
	}
}
