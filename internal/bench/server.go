package bench

import (
	"fmt"
	"sync"
	"time"

	"crowddb/internal/core"
	"crowddb/internal/crowd"
	"crowddb/internal/crowd/amt"
	"crowddb/internal/server"
	"crowddb/internal/sqltypes"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

// E16 load generator: K concurrent sessions on one crowddbd-style server,
// issuing mostly-overlapping CROWDEQUAL/CROWDORDER work plus one private
// query each. With the shared comparison cache and singleflight, the
// overlapping work is paid for once globally, so total crowd cost grows
// sublinearly in K (ideally: shared cost + K private comparisons).

// e16Result is one K's measurement.
type e16Result struct {
	sessions    int
	queries     int
	comparisons int // paid crowd comparisons, summed over sessions
	hitRate     float64
	spend       crowd.Cents
	hitsPosted  int
	makespan    time.Duration
}

// e16SharedPairs and e16Talks size the shared (overlapping) workload.
const (
	e16SharedPairs = 12
	e16Talks       = 8
)

// e16Engine builds the E16 dataset: a Pair table of company surface-form
// pairs (CROWDEQUAL), a Priv table with one pair per session (private
// work), and the conference talks (CROWDORDER), over simulated AMT.
func e16Engine(seed int64, sessions int) (*core.Engine, error) {
	cs := workload.NewCompanies(e16SharedPairs+sessions, seed)
	conf := workload.NewConference(e16Talks, seed)
	csO, confO := cs.Oracle(), conf.Oracle()
	o := workload.NewOracle()
	o.RegisterCompare(func(kind crowd.TaskKind, q, l, r string) *crowd.SimTruth {
		if kind == crowd.TaskCompareEqual {
			return csO.CompareTruth(kind, q, l, r)
		}
		return confO.CompareTruth(kind, q, l, r)
	})
	eng, err := core.Open(core.Config{
		Platform: amt.NewDefault(seed),
		Oracle:   o,
		Payment:  wrm.DefaultPolicy(),
		Tasks:    fastTasks(),
	})
	if err != nil {
		return nil, err
	}
	ddl := `CREATE TABLE Pair (id INTEGER PRIMARY KEY, a STRING, b STRING);
		CREATE TABLE Priv (id INTEGER PRIMARY KEY, a STRING, b STRING);
		CREATE TABLE Talk (title STRING PRIMARY KEY)`
	if _, err := eng.Exec(ddl); err != nil {
		return nil, err
	}
	insertPair := func(table string, id int, c workload.Company) error {
		variant := c.Variants[len(c.Variants)-1]
		_, err := eng.Exec(fmt.Sprintf("INSERT INTO %s VALUES (%d, %s, %s)", table, id,
			sqltypes.NewString(c.Canonical).SQLLiteral(), sqltypes.NewString(variant).SQLLiteral()))
		return err
	}
	for i := 0; i < e16SharedPairs; i++ {
		if err := insertPair("Pair", i, cs.List[i]); err != nil {
			return nil, err
		}
	}
	for k := 0; k < sessions; k++ {
		if err := insertPair("Priv", k, cs.List[e16SharedPairs+k]); err != nil {
			return nil, err
		}
	}
	for _, talk := range conf.Talks {
		if _, err := eng.Exec("INSERT INTO Talk VALUES (" +
			sqltypes.NewString(talk.Title).SQLLiteral() + ")"); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

// e16Run drives K concurrent sessions through the query server over a
// fresh engine and reports the global crowd cost.
func e16Run(seed int64, sessions int) (e16Result, error) {
	eng, err := e16Engine(seed, sessions)
	if err != nil {
		return e16Result{}, err
	}
	defer eng.Close()
	srv := server.New(eng, server.Config{MaxSessions: sessions + 1, MaxConcurrent: sessions + 1})

	shared := []string{
		"SELECT id FROM Pair WHERE a ~= b",
		"SELECT title FROM Talk ORDER BY CROWDORDER(title, 'Which talk did you like better?')",
		"SELECT id FROM Pair WHERE a ~= b",
	}
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for k := 0; k < sessions; k++ {
		sess, serr := srv.CreateSession(-1)
		if serr != nil {
			return e16Result{}, serr
		}
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			queries := append(append([]string(nil), shared...),
				fmt.Sprintf("SELECT id FROM Priv WHERE a ~= b AND id = %d", k))
			for _, q := range queries {
				if _, qerr := srv.Query(sess.ID(), q); qerr != nil {
					errs[k] = qerr
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return e16Result{}, err
		}
	}

	res := e16Result{sessions: sessions, queries: sessions * (len(shared) + 1)}
	for _, info := range srv.Stats().Sessions {
		res.comparisons += info.Stats.Comparisons
	}
	cs := eng.CacheStats()
	if resolved := cs.Hits + cs.Shared + cs.Misses; resolved > 0 {
		res.hitRate = float64(cs.Hits+cs.Shared) / float64(resolved)
	}
	ts := eng.Tasks().Stats()
	res.spend = ts.ApprovedSpend
	res.hitsPosted = ts.HITsPosted
	res.makespan = eng.Tasks().Platform().Now()
	return res, nil
}

// E16ConcurrentSessions measures the multi-session server: the same
// overlapping crowd workload issued by 1/2/4/8 concurrent sessions, on a
// fresh engine each time. Shared cache + singleflight keep the paid
// comparisons near-flat while sessions (and private work) grow — the
// sublinear total crowd cost the server exists for. The single-session
// row doubles as the regression baseline: it must match the serial
// engine's cost exactly.
func E16ConcurrentSessions(seed int64) *Table {
	t := &Table{
		ID:      "E16",
		Title:   "concurrent sessions: crowd cost vs K (shared cache + singleflight)",
		Exhibit: "crowddbd multi-session query server (extension)",
		Headers: []string{"sessions", "queries", "paid cmp", "cmp/session", "hit rate", "HITs", "spend", "makespan"},
		Metrics: map[string]float64{},
	}
	for _, k := range []int{1, 2, 4, 8} {
		r, err := e16Run(seed, k)
		if err != nil {
			t.Notes = append(t.Notes, err.Error())
			continue
		}
		t.AddRow(
			fmt.Sprintf("%d", r.sessions),
			fmt.Sprintf("%d", r.queries),
			fmt.Sprintf("%d", r.comparisons),
			fmt.Sprintf("%.1f", float64(r.comparisons)/float64(r.sessions)),
			fmtPct(r.hitRate),
			fmt.Sprintf("%d", r.hitsPosted),
			r.spend.String(),
			fmtDur(r.makespan),
		)
		prefix := fmt.Sprintf("k%d_", k)
		t.Metrics[prefix+"queries"] = float64(r.queries)
		t.Metrics[prefix+"crowd_cost_comparisons"] = float64(r.comparisons)
		t.Metrics[prefix+"cache_hit_rate"] = r.hitRate
		t.Metrics[prefix+"spend_cents"] = float64(r.spend)
		if r.makespan > 0 {
			t.Metrics[prefix+"ops_per_virtual_hour"] = float64(r.queries) / r.makespan.Hours()
		}
	}
	t.Notes = append(t.Notes,
		"each session issues 3 shared (overlapping) crowd queries + 1 private one; fresh engine per K",
		"paid cmp grows sublinearly in sessions: shared comparisons are paid once globally, only private work scales")
	return t
}
