package bench

// E22: quorum-streaming crowd operators. The vectorized executor lets
// CROWDORDER emit its settled prefix while later segments are still
// being compared, and CROWDEQUAL emit each row the moment its pair's
// quorum lands — where both previously materialized their entire result
// before the first row left the operator. This experiment runs each
// crowd workload under both delivery modes (streamed via the RowSink
// seam, materialized via the collect-everything Exec path) on fresh
// engines at the pinned seed.
//
// Determinism note for the benchdiff gate: row counts, comparisons,
// rows-buffered-at-first-row (1 streamed vs the full result
// materialized), and the decisions-collected-at-first-row progress
// marker are all deterministic at a fixed seed — crowd scheduling is
// virtual-time — and gated. Wall-clock first-row/total latencies are
// informational; their keys avoid the gate's directional classifiers.

import (
	"context"
	"fmt"
	"time"

	"crowddb/internal/core"
	"crowddb/internal/crowd/amt"
	"crowddb/internal/exec"
	"crowddb/internal/sqltypes"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

const (
	e22Talks = 16 // CROWDORDER ranking size
	e22Pairs = 12 // CROWDEQUAL entity-resolution pairs
)

// e22Workload is one crowd query plus its engine fixture.
type e22Workload struct {
	name  string
	query string
	open  func(seed int64) (*core.Engine, error)
}

// e22ArmResult is one (workload, delivery mode) measurement.
type e22ArmResult struct {
	rows              int
	comparisons       int
	firstRowBuffered  int
	firstRowDecisions int
	finalDecisions    int
	firstRowWall      time.Duration
	totalWall         time.Duration
}

// e22PairEngine loads the entity-resolution fixture (company name pairs
// whose stored variant matches under the oracle).
func e22PairEngine(seed int64) (*core.Engine, error) {
	conf := workload.NewConference(8, seed)
	eng, err := core.Open(core.Config{
		Platform: amt.NewDefault(seed),
		Oracle:   conf.Oracle(),
		Payment:  wrm.DefaultPolicy(),
		Tasks:    fastTasks(),
	})
	if err != nil {
		return nil, err
	}
	if _, err := eng.Exec(`CREATE TABLE Pair (id INTEGER PRIMARY KEY, a STRING, b STRING)`); err != nil {
		eng.Close()
		return nil, err
	}
	cs := workload.NewCompanies(e22Pairs, seed)
	for i, c := range cs.List {
		variant := c.Variants[len(c.Variants)-1]
		if _, err := eng.Exec(fmt.Sprintf("INSERT INTO Pair VALUES (%d, %s, %s)",
			i, sqltypes.NewString(c.Canonical).SQLLiteral(), sqltypes.NewString(variant).SQLLiteral())); err != nil {
			eng.Close()
			return nil, err
		}
	}
	return eng, nil
}

// e22Run executes one workload in one delivery mode on a fresh engine.
func e22Run(seed int64, wl e22Workload, streamed bool) (e22ArmResult, error) {
	var r e22ArmResult
	eng, err := wl.open(seed)
	if err != nil {
		return r, err
	}
	defer eng.Close()

	start := time.Now()
	if !streamed {
		res, err := eng.Exec(wl.query)
		r.totalWall = time.Since(start)
		if err != nil {
			return r, err
		}
		r.rows = len(res.Rows)
		r.comparisons = res.Stats.Comparisons
		// The materialized contract: the caller sees row 1 only once the
		// whole result — and every quorum behind it — is in.
		r.firstRowBuffered = r.rows
		r.firstRowWall = r.totalWall
		r.finalDecisions = eng.Tasks().Stats().Decisions
		r.firstRowDecisions = r.finalDecisions
		return r, nil
	}

	opts := core.DefaultExecOpts()
	opts.Sink = func(exec.Row) error {
		if r.rows == 0 {
			r.firstRowWall = time.Since(start)
			r.firstRowDecisions = eng.Tasks().Stats().Decisions
		}
		r.rows++
		return nil
	}
	res, err := eng.Execute(context.Background(), wl.query, opts)
	r.totalWall = time.Since(start)
	if err != nil {
		return r, err
	}
	r.comparisons = res.Stats.Comparisons
	r.firstRowBuffered = 1
	r.finalDecisions = eng.Tasks().Stats().Decisions
	return r, nil
}

// E22QuorumStreaming measures how much of the crowd round still stands
// between the executor and the caller's first row, per crowd operator.
func E22QuorumStreaming(seed int64) *Table {
	t := &Table{
		ID:      "E22",
		Title:   "quorum-streaming crowd operators: rows delivered as quorums land",
		Exhibit: "vectorized executor extension (no paper exhibit)",
		Headers: []string{"workload", "mode", "rows out", "rows buffered at first row",
			"decisions at first row", "decisions total", "comparisons", "first row", "total"},
		Metrics: map[string]float64{},
	}
	workloads := []e22Workload{
		{
			name:  "crowdorder",
			query: `SELECT title FROM Talk ORDER BY CROWDORDER(title, "Which talk did you like better")`,
			open: func(seed int64) (*core.Engine, error) {
				eng, _, err := conferenceEngine(seed, e22Talks, core.Config{Tasks: fastTasks()})
				return eng, err
			},
		},
		{
			name:  "crowdequal",
			query: `SELECT id FROM Pair WHERE a ~= b`,
			open:  e22PairEngine,
		},
	}
	for _, wl := range workloads {
		mat, err := e22Run(seed, wl, false)
		if err != nil {
			t.Notes = append(t.Notes, wl.name+": "+err.Error())
			continue
		}
		st, err := e22Run(seed, wl, true)
		if err != nil {
			t.Notes = append(t.Notes, wl.name+": "+err.Error())
			continue
		}
		for _, m := range []struct {
			mode string
			r    e22ArmResult
		}{{"materialized", mat}, {"streamed", st}} {
			t.AddRow(wl.name, m.mode, fmt.Sprintf("%d", m.r.rows),
				fmt.Sprintf("%d", m.r.firstRowBuffered),
				fmt.Sprintf("%d", m.r.firstRowDecisions), fmt.Sprintf("%d", m.r.finalDecisions),
				fmt.Sprintf("%d", m.r.comparisons),
				fmtMicros(m.r.firstRowWall), fmtMicros(m.r.totalWall))
		}
		// Deterministic, gated: identical answers and crowd work across
		// modes; the streamed arm holds exactly one undelivered row at
		// first sight and has collected only part of the crowd round.
		t.Metrics[wl.name+"_materialized_rows_out"] = float64(mat.rows)
		t.Metrics[wl.name+"_streamed_rows_out"] = float64(st.rows)
		t.Metrics[wl.name+"_materialized_first_row_buffered"] = float64(mat.firstRowBuffered)
		t.Metrics[wl.name+"_streamed_first_row_buffered"] = float64(st.firstRowBuffered)
		t.Metrics[wl.name+"_materialized_comparisons"] = float64(mat.comparisons)
		t.Metrics[wl.name+"_streamed_comparisons"] = float64(st.comparisons)
		t.Metrics[wl.name+"_first_row_decisions"] = float64(st.firstRowDecisions)
		t.Metrics[wl.name+"_final_decisions"] = float64(st.finalDecisions)
		divergence := abs(mat.rows-st.rows) + abs(mat.comparisons-st.comparisons) +
			abs(mat.finalDecisions-st.finalDecisions)
		t.Metrics[wl.name+"_mode_divergence_err"] = float64(divergence)
		unstreamed := 0
		if st.firstRowDecisions >= st.finalDecisions {
			unstreamed = 1
		}
		t.Metrics[wl.name+"_unstreamed_err"] = float64(unstreamed)
		// Informational: wall clock varies with the runner.
		t.Metrics[wl.name+"_streamed_ttfr_wall_us"] = float64(st.firstRowWall.Microseconds())
		t.Metrics[wl.name+"_materialized_ttfr_wall_us"] = float64(mat.firstRowWall.Microseconds())
	}
	t.Notes = append(t.Notes,
		"batching changes when rows leave the operators, not what the crowd is asked: comparisons and decisions are identical across modes",
		"streamed first rows arrive with part of the crowd round still uncollected (decisions at first row < total); materialization waits for all of it")
	return t
}
