package lexer

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []Kind {
	ks := make([]Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func values(toks []Token) []string {
	vs := make([]string, len(toks))
	for i, t := range toks {
		vs[i] = t.Value
	}
	return vs
}

func TestTokenizePaperQuery(t *testing.T) {
	// The demo paper's first example query.
	toks, err := Tokenize(`SELECT abstract FROM paper WHERE title = "CrowdDB";`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"SELECT", "abstract", "FROM", "paper", "WHERE", "title", "=", "CrowdDB", ";"}
	got := values(toks)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("got %v want %v", got, want)
	}
	if toks[7].Kind != String {
		t.Errorf("double-quoted literal must lex as string, got %v", toks[7].Kind)
	}
}

func TestTokenizeCrowdDDL(t *testing.T) {
	src := `CREATE TABLE Talk (
		title STRING PRIMARY KEY,
		abstract CROWD STRING,
		nb_attendees CROWD INTEGER );`
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	var crowdCount int
	for _, tok := range toks {
		if tok.Kind == Keyword && tok.Value == "CROWD" {
			crowdCount++
		}
	}
	if crowdCount != 2 {
		t.Errorf("want 2 CROWD keywords, got %d", crowdCount)
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	toks, err := Tokenize("select Select SELECT cnull Cnull")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks {
		if tok.Kind != Keyword {
			t.Errorf("%q should be keyword", tok.Value)
		}
	}
	if toks[3].Value != "CNULL" {
		t.Errorf("keywords should be upper-cased: %q", toks[3].Value)
	}
}

func TestIdentifiersKeepCase(t *testing.T) {
	toks, err := Tokenize("nb_attendees NotableAttendee")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Value != "nb_attendees" || toks[1].Value != "NotableAttendee" {
		t.Errorf("identifier case mangled: %v", values(toks))
	}
}

func TestStringEscapes(t *testing.T) {
	toks, err := Tokenize(`'it''s' "a""b"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Value != "it's" || toks[1].Value != `a"b` {
		t.Errorf("escape handling: %v", values(toks))
	}
}

func TestUnterminatedString(t *testing.T) {
	if _, err := Tokenize("'oops"); err == nil {
		t.Error("unterminated string must error")
	}
}

func TestNumbers(t *testing.T) {
	toks, err := Tokenize("1 2.5 .5 1e3 2.5E-2 10")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks {
		if tok.Kind != Number {
			t.Errorf("%q should be a number", tok.Value)
		}
	}
	if len(toks) != 6 {
		t.Errorf("want 6 numbers, got %d: %v", len(toks), values(toks))
	}
}

func TestCrowdEqualSymbol(t *testing.T) {
	toks, err := Tokenize("name ~= 'UC Berkeley'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != Symbol || toks[1].Value != "~=" {
		t.Errorf("~= must lex as one symbol: %v %v", kinds(toks), values(toks))
	}
}

func TestComments(t *testing.T) {
	toks, err := Tokenize("SELECT -- line comment\n 1 /* block\ncomment */ ;")
	if err != nil {
		t.Fatal(err)
	}
	got := values(toks)
	want := []string{"SELECT", "1", ";"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("comments not skipped: %v", got)
	}
}

func TestMultiCharSymbols(t *testing.T) {
	toks, err := Tokenize("a <= b >= c <> d != e")
	if err != nil {
		t.Fatal(err)
	}
	var syms []string
	for _, tok := range toks {
		if tok.Kind == Symbol {
			syms = append(syms, tok.Value)
		}
	}
	want := []string{"<=", ">=", "<>", "!="}
	if strings.Join(syms, " ") != strings.Join(want, " ") {
		t.Errorf("symbols: %v", syms)
	}
}

func TestUnexpectedChar(t *testing.T) {
	if _, err := Tokenize("SELECT @"); err == nil {
		t.Error("@ must be rejected")
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("SELECT  title")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != 0 || toks[1].Pos != 8 {
		t.Errorf("positions: %d %d", toks[0].Pos, toks[1].Pos)
	}
}

// Property: lexing never panics and always terminates on arbitrary input.
func TestLexerRobustness(t *testing.T) {
	check := func(s string) bool {
		_, _ = Tokenize(s)
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: for identifier-safe words, tokenize(a+" "+b) yields exactly two
// tokens.
func TestLexerWordSplit(t *testing.T) {
	words := []string{"talk", "abstract", "nb_attendees", "x1", "Foo_Bar"}
	for _, a := range words {
		for _, b := range words {
			toks, err := Tokenize(a + " " + b)
			if err != nil || len(toks) != 2 {
				t.Errorf("%q %q: %v %v", a, b, toks, err)
			}
		}
	}
}
