// Package lexer tokenizes CrowdSQL, the SQL dialect of the CrowdDB paper:
// standard SQL plus the CROWD keyword (DDL), the CNULL literal, and the
// CROWDEQUAL/CROWDORDER built-in functions (which lex as identifiers; the
// parser gives them meaning). The crowd-equality shorthand `~=` lexes as a
// distinct token.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
)

// Kind classifies tokens.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Keyword
	Number
	String // quoted string literal, value has quotes removed
	Symbol // punctuation / operators, value is the exact spelling
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case Ident:
		return "ident"
	case Keyword:
		return "keyword"
	case Number:
		return "number"
	case String:
		return "string"
	case Symbol:
		return "symbol"
	default:
		return "?"
	}
}

// Token is one lexical unit with its position (byte offset) for errors.
type Token struct {
	Kind Kind
	// Value is the token text. Keywords are upper-cased; identifiers keep
	// their original spelling; string literals have quotes and escapes
	// resolved.
	Value string
	Pos   int
}

// keywords is the CrowdSQL reserved-word set. CROWD, CNULL, CROWDEQUAL and
// CROWDORDER are the paper's additions (§2).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true,
	"ASC": true, "DESC": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "IS": true, "IN": true, "LIKE": true, "BETWEEN": true,
	"NULL": true, "CNULL": true, "TRUE": true, "FALSE": true,
	"CREATE": true, "TABLE": true, "CROWD": true, "DROP": true,
	"PRIMARY": true, "KEY": true, "FOREIGN": true, "REF": true,
	"REFERENCES": true, "INDEX": true, "ON": true, "UNIQUE": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "JOIN": true, "INNER": true, "LEFT": true,
	"OUTER": true, "CROSS": true, "DISTINCT": true, "ALL": true,
	"ANNOTATION": true, "EXPLAIN": true, "ANALYZE": true,
	"SHOW": true, "TABLES": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"CROWDEQUAL": true, "CROWDORDER": true,
}

// IsKeyword reports whether the upper-cased word is reserved.
func IsKeyword(word string) bool { return keywords[strings.ToUpper(word)] }

// Lexer scans an input string into tokens.
type Lexer struct {
	src string
	pos int
}

// New returns a Lexer over src.
func New(src string) *Lexer { return &Lexer{src: src} }

// Tokenize scans the whole input, returning all tokens up to and excluding
// EOF. It is the convenience entry point used by the parser and tests.
func Tokenize(src string) ([]Token, error) {
	l := New(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == EOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}

// Next returns the next token, or an EOF token at end of input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '\'' || c == '"':
		return l.lexString(c)
	case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		return l.lexNumber()
	case isIdentStart(rune(c)):
		return l.lexWord()
	default:
		return l.lexSymbol(start)
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func (l *Lexer) lexString(quote byte) (Token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			// doubled quote is an escaped quote
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
				sb.WriteByte(quote)
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: String, Value: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("lexer: unterminated string literal at offset %d", start)
}

func (l *Lexer) lexNumber() (Token, error) {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			return Token{Kind: Number, Value: l.src[start:l.pos], Pos: start}, nil
		}
	}
	return Token{Kind: Number, Value: l.src[start:l.pos], Pos: start}, nil
}

func (l *Lexer) lexWord() (Token, error) {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	word := l.src[start:l.pos]
	if IsKeyword(word) {
		return Token{Kind: Keyword, Value: strings.ToUpper(word), Pos: start}, nil
	}
	return Token{Kind: Ident, Value: word, Pos: start}, nil
}

// multi-char symbols, longest first.
var symbols = []string{"<>", "<=", ">=", "!=", "~=", "||",
	"(", ")", ",", ";", "*", "=", "<", ">", "+", "-", "/", ".", "%"}

func (l *Lexer) lexSymbol(start int) (Token, error) {
	rest := l.src[l.pos:]
	for _, s := range symbols {
		if strings.HasPrefix(rest, s) {
			l.pos += len(s)
			return Token{Kind: Symbol, Value: s, Pos: start}, nil
		}
	}
	return Token{}, fmt.Errorf("lexer: unexpected character %q at offset %d", l.src[l.pos], l.pos)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
