package plan

import (
	"fmt"
	"strings"

	"crowddb/internal/catalog"
	"crowddb/internal/parser"
	"crowddb/internal/sqltypes"
)

// Build lowers a parsed SELECT into a logical plan, binding every column
// reference against the catalog. The produced tree is canonical and
// unoptimized: Scan → Join* → Filter → Aggregate|Project → Distinct →
// Sort → Limit; the optimizer rewrites it afterwards.
func Build(sel *parser.Select, cat *catalog.Catalog) (Node, error) {
	if len(sel.From) == 0 {
		return nil, fmt.Errorf("plan: SELECT without FROM is not supported")
	}

	// FROM: scans, joined left-deep in syntactic order.
	var scans []*Scan
	seen := map[string]bool{}
	var root Node
	for i, tr := range sel.From {
		t, ok := cat.Table(tr.Table)
		if !ok {
			return nil, fmt.Errorf("plan: table %s not found", tr.Table)
		}
		alias := tr.Alias
		if alias == "" {
			alias = t.Name
		}
		if seen[strings.ToLower(alias)] {
			return nil, fmt.Errorf("plan: duplicate table alias %q", alias)
		}
		seen[strings.ToLower(alias)] = true
		s := NewScan(t, alias)
		scans = append(scans, s)
		if i == 0 {
			root = s
			continue
		}
		jt := tr.Join
		if jt == parser.JoinNone {
			jt = parser.JoinCross
		}
		root = &Join{Left: root, Right: s, Type: jt, On: tr.On}
		if tr.On != nil {
			if err := bindExpr(tr.On, root.Schema()); err != nil {
				return nil, err
			}
		}
	}

	// Expand stars into explicit select items.
	items, err := expandStars(sel.Items, root.Schema())
	if err != nil {
		return nil, err
	}

	// Bind remaining clauses against the join output schema.
	if sel.Where != nil {
		if err := bindExpr(sel.Where, root.Schema()); err != nil {
			return nil, err
		}
		root = &Filter{Input: root, Cond: sel.Where}
	}
	for _, g := range sel.GroupBy {
		if err := bindExpr(g, root.Schema()); err != nil {
			return nil, err
		}
	}
	for _, it := range items {
		if err := bindSelectExpr(it.Expr, root.Schema()); err != nil {
			return nil, err
		}
	}

	hasAgg := len(sel.GroupBy) > 0
	for _, it := range items {
		if exprHasAggregate(it.Expr) {
			hasAgg = true
		}
	}

	if hasAgg {
		if err := checkGrouping(items, sel.GroupBy); err != nil {
			return nil, err
		}
		agg := &Aggregate{Input: root, GroupBy: sel.GroupBy, Items: items, Having: sel.Having}
		agg.schema = outputSchema(items, root.Schema())
		if sel.Having != nil {
			if err := bindHaving(sel.Having, root.Schema()); err != nil {
				return nil, err
			}
		}
		root = agg
	} else {
		if sel.Having != nil {
			return nil, fmt.Errorf("plan: HAVING requires GROUP BY or aggregates")
		}
		proj := &Project{Input: root, Items: items}
		proj.schema = outputSchema(items, root.Schema())
		root = proj
	}

	if sel.Distinct {
		root = &Distinct{Input: root}
	}

	if len(sel.OrderBy) > 0 {
		node, err := placeSort(root, sel)
		if err != nil {
			return nil, err
		}
		root = node
	}

	if sel.Limit >= 0 || sel.Offset > 0 {
		n := sel.Limit
		if n < 0 {
			n = -1
		}
		root = &Limit{Input: root, N: n, Offset: sel.Offset}
	}

	// Mark referenced crowd columns on each scan: the executor must
	// instantiate their CNULLs (§2.1 semantics).
	markAskColumns(sel, items, scans)
	return root, nil
}

// expandStars replaces * and t.* with explicit column references.
func expandStars(items []parser.SelectItem, schema []Col) ([]parser.SelectItem, error) {
	var out []parser.SelectItem
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		matched := false
		for _, c := range schema {
			if it.StarTable != "" && !strings.EqualFold(c.Table, it.StarTable) {
				continue
			}
			matched = true
			out = append(out, parser.SelectItem{Expr: &parser.ColumnRef{Table: c.Table, Name: c.Name}})
		}
		if !matched {
			return nil, fmt.Errorf("plan: %s.* matches no table", it.StarTable)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("plan: empty select list")
	}
	return out, nil
}

// bindExpr checks every column reference resolves in the schema.
func bindExpr(e parser.Expr, schema []Col) error {
	var firstErr error
	parser.WalkExprs(e, func(x parser.Expr) {
		if firstErr != nil {
			return
		}
		if cr, ok := x.(*parser.ColumnRef); ok {
			if _, err := FindCol(schema, cr.Table, cr.Name); err != nil {
				firstErr = err
			}
		}
	})
	return firstErr
}

// bindSelectExpr is bindExpr but permits aggregate calls.
func bindSelectExpr(e parser.Expr, schema []Col) error { return bindExpr(e, schema) }

// bindHaving permits aggregates over the input schema.
func bindHaving(e parser.Expr, schema []Col) error { return bindExpr(e, schema) }

// placeSort positions the Sort operator. SQL lets ORDER BY reference output
// columns (aliases, select-list expressions) or, for plain projections,
// input columns not in the select list — in the latter case the sort runs
// below the projection.
func placeSort(root Node, sel *parser.Select) (Node, error) {
	outSchema := root.Schema()
	keys := make([]parser.OrderItem, len(sel.OrderBy))
	allOutput := true
	for i, k := range sel.OrderBy {
		keys[i] = k
		if parser.HasCrowdFunc(k.Expr) {
			continue // crowd keys bind loosely at execution time
		}
		if cr, ok := k.Expr.(*parser.ColumnRef); ok {
			if _, err := FindCol(outSchema, cr.Table, cr.Name); err == nil {
				continue
			}
		} else if _, err := FindCol(outSchema, "", k.Expr.String()); err == nil {
			// e.g. ORDER BY COUNT(*) over an aggregate output column named
			// "COUNT(*)": rewrite to a reference to that output column.
			keys[i] = parser.OrderItem{Expr: &parser.ColumnRef{Name: k.Expr.String()}, Desc: k.Desc}
			continue
		}
		allOutput = false
	}
	if allOutput {
		return &Sort{Input: root, Keys: keys}, nil
	}
	// Keys reference pre-projection columns: sort under the projection.
	proj, ok := root.(*Project)
	if !ok || sel.Distinct {
		for _, k := range sel.OrderBy {
			if err := bindSortKey(k.Expr, outSchema); err != nil {
				return nil, err
			}
		}
		return &Sort{Input: root, Keys: sel.OrderBy}, nil
	}
	for _, k := range sel.OrderBy {
		if err := bindSortKey(k.Expr, proj.Input.Schema()); err != nil {
			return nil, err
		}
	}
	proj.Input = &Sort{Input: proj.Input, Keys: sel.OrderBy}
	return proj, nil
}

// bindSortKey resolves a sort key against the (possibly projected) schema.
// Keys may name output columns (aliases), input columns, or — for
// CROWDORDER keys — anything at all: the comparison is delegated to the
// crowd, with the first argument rendered per row.
func bindSortKey(e parser.Expr, schema []Col) error {
	if parser.HasCrowdFunc(e) {
		return nil
	}
	var firstErr error
	parser.WalkExprs(e, func(x parser.Expr) {
		if firstErr != nil {
			return
		}
		if cr, ok := x.(*parser.ColumnRef); ok {
			if _, err := FindCol(schema, cr.Table, cr.Name); err != nil {
				firstErr = err
			}
		}
	})
	return firstErr
}

func exprHasAggregate(e parser.Expr) bool {
	found := false
	parser.WalkExprs(e, func(x parser.Expr) {
		if fc, ok := x.(*parser.FuncCall); ok && fc.IsAggregate() {
			found = true
		}
	})
	return found
}

// checkGrouping enforces that non-aggregate select items appear in GROUP BY.
func checkGrouping(items []parser.SelectItem, groupBy []parser.Expr) error {
	keys := map[string]bool{}
	for _, g := range groupBy {
		keys[g.String()] = true
	}
	for _, it := range items {
		if exprHasAggregate(it.Expr) {
			continue
		}
		if !keys[it.Expr.String()] {
			return fmt.Errorf("plan: %s must appear in GROUP BY or an aggregate", it.Expr)
		}
	}
	return nil
}

// outputSchema names projected columns: alias > column name > expression
// text, with best-effort type inference.
func outputSchema(items []parser.SelectItem, in []Col) []Col {
	out := make([]Col, 0, len(items))
	for _, it := range items {
		col := Col{Type: inferType(it.Expr, in)}
		switch e := it.Expr.(type) {
		case *parser.ColumnRef:
			col.Table = e.Table
			col.Name = e.Name
			if i, err := FindCol(in, e.Table, e.Name); err == nil {
				col.Table = in[i].Table
				col.Crowd = in[i].Crowd
			}
		default:
			col.Name = it.Expr.String()
		}
		if it.Alias != "" {
			col.Name = it.Alias
			col.Table = ""
		}
		out = append(out, col)
	}
	return out
}

// inferType derives an output type for an expression.
func inferType(e parser.Expr, schema []Col) sqltypes.Type {
	switch x := e.(type) {
	case *parser.Literal:
		return x.Val.TypeOf()
	case *parser.ColumnRef:
		if i, err := FindCol(schema, x.Table, x.Name); err == nil {
			return schema[i].Type
		}
	case *parser.FuncCall:
		switch x.Name {
		case "COUNT", "LENGTH":
			return sqltypes.TypeInt
		case "AVG":
			return sqltypes.TypeFloat
		case "SUM", "MIN", "MAX", "ROUND", "ABS", "COALESCE":
			if len(x.Args) > 0 {
				return inferType(x.Args[0], schema)
			}
		case "LOWER", "UPPER", "TRIM", "SUBSTR":
			return sqltypes.TypeString
		case "CROWDEQUAL":
			return sqltypes.TypeBool
		}
	case *parser.BinaryExpr:
		switch x.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=", "LIKE", "~=":
			return sqltypes.TypeBool
		case "||":
			return sqltypes.TypeString
		default:
			lt, rt := inferType(x.L, schema), inferType(x.R, schema)
			if lt == sqltypes.TypeFloat || rt == sqltypes.TypeFloat || x.Op == "/" {
				return sqltypes.TypeFloat
			}
			return sqltypes.TypeInt
		}
	case *parser.UnaryExpr:
		if x.Op == "NOT" {
			return sqltypes.TypeBool
		}
		return inferType(x.E, schema)
	case *parser.IsNullExpr, *parser.InExpr, *parser.BetweenExpr:
		return sqltypes.TypeBool
	}
	return sqltypes.TypeAny
}

// markAskColumns records, per scan, the crowd columns the query references
// anywhere — exactly the CNULLs CrowdDB must instantiate.
func markAskColumns(sel *parser.Select, items []parser.SelectItem, scans []*Scan) {
	var exprs []parser.Expr
	for _, it := range items {
		exprs = append(exprs, it.Expr)
	}
	exprs = append(exprs, sel.Where, sel.Having)
	exprs = append(exprs, sel.GroupBy...)
	for _, k := range sel.OrderBy {
		exprs = append(exprs, k.Expr)
	}
	for _, tr := range sel.From {
		if tr.On != nil {
			exprs = append(exprs, tr.On)
		}
	}
	for _, s := range scans {
		asked := map[string]bool{}
		for _, e := range exprs {
			walkSkippingNullTests(e, func(x parser.Expr) {
				cr, ok := x.(*parser.ColumnRef)
				if !ok {
					return
				}
				if cr.Table != "" && !strings.EqualFold(cr.Table, s.Alias) {
					return
				}
				col, ok := s.Table.Column(cr.Name)
				if !ok || !col.Crowd {
					return
				}
				// Unqualified references could belong to another scan; only
				// claim them when the name is unique to this scan among all.
				if cr.Table == "" && !uniqueAmong(scans, s, cr.Name) {
					return
				}
				asked[col.Name] = true
			})
		}
		s.AskColumns = s.AskColumns[:0]
		for _, c := range s.Table.Columns {
			if asked[c.Name] {
				s.AskColumns = append(s.AskColumns, c.Name)
			}
		}
	}
}

// walkSkippingNullTests visits sub-expressions like parser.WalkExprs but
// does not descend into IS [NOT] [C]NULL tests: checking whether a value is
// CNULL does not *require* the value, so it must not trigger crowdsourcing
// (otherwise `WHERE abstract IS CNULL` would instantiate every abstract
// before filtering).
func walkSkippingNullTests(e parser.Expr, fn func(parser.Expr)) {
	if e == nil {
		return
	}
	if _, ok := e.(*parser.IsNullExpr); ok {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *parser.BinaryExpr:
		walkSkippingNullTests(x.L, fn)
		walkSkippingNullTests(x.R, fn)
	case *parser.UnaryExpr:
		walkSkippingNullTests(x.E, fn)
	case *parser.InExpr:
		walkSkippingNullTests(x.E, fn)
		for _, v := range x.List {
			walkSkippingNullTests(v, fn)
		}
	case *parser.BetweenExpr:
		walkSkippingNullTests(x.E, fn)
		walkSkippingNullTests(x.Lo, fn)
		walkSkippingNullTests(x.Hi, fn)
	case *parser.FuncCall:
		for _, a := range x.Args {
			walkSkippingNullTests(a, fn)
		}
	}
}

func uniqueAmong(scans []*Scan, owner *Scan, col string) bool {
	n := 0
	for _, s := range scans {
		if _, ok := s.Table.Column(col); ok {
			n++
		}
	}
	_, ok := owner.Table.Column(col)
	return ok && n == 1
}
