package plan

import (
	"strings"
	"testing"

	"crowddb/internal/catalog"
	"crowddb/internal/parser"
	"crowddb/internal/sqltypes"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, tab := range []*catalog.Table{
		{
			Name: "Talk",
			Columns: []catalog.Column{
				{Name: "title", Type: sqltypes.TypeString, PrimaryKey: true},
				{Name: "abstract", Type: sqltypes.TypeString, Crowd: true},
				{Name: "nb_attendees", Type: sqltypes.TypeInt, Crowd: true},
			},
		},
		{
			Name:  "NotableAttendee",
			Crowd: true,
			Columns: []catalog.Column{
				{Name: "name", Type: sqltypes.TypeString, PrimaryKey: true},
				{Name: "title", Type: sqltypes.TypeString},
			},
			ForeignKeys: []catalog.ForeignKey{{Columns: []string{"title"}, RefTable: "Talk", RefColumns: []string{"title"}}},
		},
		{
			Name: "Room",
			Columns: []catalog.Column{
				{Name: "rtitle", Type: sqltypes.TypeString, PrimaryKey: true},
				{Name: "capacity", Type: sqltypes.TypeInt},
			},
		},
	} {
		if err := cat.CreateTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	if tab, ok := cat.Table("Talk"); ok {
		tab.SetRowCount(100)
	}
	if tab, ok := cat.Table("Room"); ok {
		tab.SetRowCount(10)
	}
	return cat
}

func build(t *testing.T, cat *catalog.Catalog, sql string) Node {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(stmt.(*parser.Select), cat)
	if err != nil {
		t.Fatalf("Build(%q): %v", sql, err)
	}
	return n
}

func TestBuildSimpleSelect(t *testing.T) {
	cat := testCatalog(t)
	n := build(t, cat, "SELECT title FROM Talk WHERE nb_attendees > 10")
	proj, ok := n.(*Project)
	if !ok {
		t.Fatalf("root: %T", n)
	}
	if len(proj.Schema()) != 1 || proj.Schema()[0].Name != "title" {
		t.Errorf("schema: %v", proj.Schema())
	}
	if _, ok := proj.Input.(*Filter); !ok {
		t.Errorf("filter expected below project: %T", proj.Input)
	}
}

func TestBuildStarExpansion(t *testing.T) {
	cat := testCatalog(t)
	n := build(t, cat, "SELECT * FROM Talk")
	if got := len(n.Schema()); got != 3 {
		t.Errorf("star columns: %d", got)
	}
	n = build(t, cat, "SELECT t.* FROM Talk t JOIN Room r ON r.rtitle = t.title")
	if got := len(n.Schema()); got != 3 {
		t.Errorf("t.* columns: %d", got)
	}
}

func TestBuildAskColumnsMarking(t *testing.T) {
	cat := testCatalog(t)
	n := build(t, cat, "SELECT abstract FROM Talk WHERE title = 'CrowdDB'")
	scan := findScan(n, "Talk")
	if scan == nil {
		t.Fatal("no Talk scan")
	}
	if len(scan.AskColumns) != 1 || scan.AskColumns[0] != "abstract" {
		t.Errorf("ask columns: %v (only referenced crowd columns)", scan.AskColumns)
	}
	// Star references everything.
	n = build(t, cat, "SELECT * FROM Talk")
	scan = findScan(n, "Talk")
	if len(scan.AskColumns) != 2 {
		t.Errorf("star must ask all crowd columns: %v", scan.AskColumns)
	}
	// Predicate-only references count too.
	n = build(t, cat, "SELECT title FROM Talk WHERE nb_attendees > 50")
	scan = findScan(n, "Talk")
	if len(scan.AskColumns) != 1 || scan.AskColumns[0] != "nb_attendees" {
		t.Errorf("predicate crowd column must be asked: %v", scan.AskColumns)
	}
	// IS CNULL asks about the crowdsourcing state; it must not probe.
	n = build(t, cat, "SELECT title FROM Talk WHERE abstract IS CNULL")
	scan = findScan(n, "Talk")
	if len(scan.AskColumns) != 0 {
		t.Errorf("IS CNULL must not trigger probing: %v", scan.AskColumns)
	}
}

func findScan(n Node, table string) *Scan {
	if s, ok := n.(*Scan); ok {
		if strings.EqualFold(s.Table.Name, table) {
			return s
		}
		return nil
	}
	for _, c := range n.Children() {
		if s := findScan(c, table); s != nil {
			return s
		}
	}
	return nil
}

func TestBuildJoin(t *testing.T) {
	cat := testCatalog(t)
	n := build(t, cat, `SELECT t.title, n.name FROM Talk t JOIN NotableAttendee n ON n.title = t.title`)
	proj := n.(*Project)
	j, ok := proj.Input.(*Join)
	if !ok {
		t.Fatalf("join expected: %T", proj.Input)
	}
	if len(j.Schema()) != 5 {
		t.Errorf("join schema: %v", j.Schema())
	}
}

func TestBuildAggregate(t *testing.T) {
	cat := testCatalog(t)
	n := build(t, cat, `SELECT title, COUNT(*) AS c FROM NotableAttendee GROUP BY title HAVING COUNT(*) > 2 ORDER BY c DESC LIMIT 3`)
	lim, ok := n.(*Limit)
	if !ok {
		t.Fatalf("limit at root: %T", n)
	}
	srt := lim.Input.(*Sort)
	agg, ok := srt.Input.(*Aggregate)
	if !ok {
		t.Fatalf("aggregate: %T", srt.Input)
	}
	if agg.Schema()[1].Name != "c" {
		t.Errorf("alias schema: %v", agg.Schema())
	}
	if agg.Schema()[1].Type != sqltypes.TypeInt {
		t.Errorf("COUNT type: %v", agg.Schema()[1].Type)
	}
}

func TestBuildErrors(t *testing.T) {
	cat := testCatalog(t)
	bad := []string{
		"SELECT x FROM Nope",
		"SELECT zzz FROM Talk",
		"SELECT t.title FROM Talk",                                       // alias t not defined
		"SELECT title FROM Talk t, Talk t",                               // duplicate alias
		"SELECT title, COUNT(*) FROM Talk",                               // ungrouped column
		"SELECT title FROM Talk HAVING COUNT(*) > 1",                     // having without group
		"SELECT title FROM Talk, NotableAttendee",                        // ambiguous title
		"SELECT name FROM Talk t JOIN NotableAttendee n ON zz = t.title", // unknown on col
	}
	for _, sql := range bad {
		stmt, err := parser.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		if _, err := Build(stmt.(*parser.Select), cat); err == nil {
			t.Errorf("Build(%q) should fail", sql)
		}
	}
}

func TestAmbiguousUnqualifiedNotAsked(t *testing.T) {
	cat := testCatalog(t)
	// title exists in both tables; the unqualified WHERE reference binds
	// against the join schema and must be rejected as ambiguous.
	stmt, _ := parser.Parse("SELECT t.title FROM Talk t JOIN NotableAttendee n ON n.title = t.title WHERE title = 'x'")
	if _, err := Build(stmt.(*parser.Select), cat); err == nil {
		t.Error("ambiguous where column must fail")
	}
	// But ORDER BY binds against the projected schema, where it is unique.
	stmt, _ = parser.Parse("SELECT t.title FROM Talk t JOIN NotableAttendee n ON n.title = t.title ORDER BY title")
	if _, err := Build(stmt.(*parser.Select), cat); err != nil {
		t.Errorf("order key over projection must resolve: %v", err)
	}
}

func TestExplainTree(t *testing.T) {
	cat := testCatalog(t)
	n := build(t, cat, `SELECT title FROM Talk WHERE nb_attendees > 10 ORDER BY CROWDORDER(title, 'better?') LIMIT 5`)
	out := ExplainTree(n)
	for _, want := range []string{"Limit(5)", "CrowdSort", "Project(title)", "Filter", "ProbeScan(Talk)"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestFindCol(t *testing.T) {
	schema := []Col{{Table: "t", Name: "a"}, {Table: "u", Name: "a"}, {Table: "t", Name: "b"}}
	if _, err := FindCol(schema, "", "a"); err == nil {
		t.Error("ambiguous must fail")
	}
	i, err := FindCol(schema, "u", "a")
	if err != nil || i != 1 {
		t.Errorf("qualified: %d %v", i, err)
	}
	i, err = FindCol(schema, "", "b")
	if err != nil || i != 2 {
		t.Errorf("unique unqualified: %d %v", i, err)
	}
	if _, err := FindCol(schema, "", "zzz"); err == nil {
		t.Error("missing must fail")
	}
}
