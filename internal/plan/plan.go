// Package plan defines CrowdDB's logical query algebra and the builder
// that lowers a parsed SELECT into it. The tree is what the rule-based
// optimizer (internal/optimizer) rewrites and what the executor
// (internal/exec) instantiates into physical operators, crowd operators
// included (paper §3.2.2: "CrowdDB generates the logical plan by parsing
// the query", then optimizes, then instantiates).
package plan

import (
	"fmt"
	"strings"

	"crowddb/internal/catalog"
	"crowddb/internal/parser"
	"crowddb/internal/sqltypes"
)

// Col is one column of a node's output schema.
type Col struct {
	Table string // alias of the producing table ("" for computed columns)
	Name  string
	Type  sqltypes.Type
	// Crowd marks columns whose values may be CNULL and crowdsourced.
	Crowd bool
}

func (c Col) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// Node is a logical operator.
type Node interface {
	// Schema is the node's output columns.
	Schema() []Col
	// Children returns input nodes (for traversal).
	Children() []Node
	// Explain renders one line of EXPLAIN output.
	Explain() string
}

// Scan reads one base table. Filter and StopAfter may be pushed into it by
// the optimizer; crowd behaviour (probing CNULLs, soliciting tuples) is
// decided by the executor from the table's catalog entry.
type Scan struct {
	Table *catalog.Table
	Alias string
	// Filter is a pushed-down predicate over this table only (nil = none).
	Filter parser.Expr
	// StopAfter bounds the number of tuples the scan produces (-1 = no
	// bound). For CROWD tables this bounds crowdsourcing (§3.2.2).
	StopAfter int64
	// AskColumns are the crowd columns of this table the query references
	// and which therefore must be instantiated when CNULL (§2.1).
	AskColumns []string
	// ProbeKeys are equality bindings (column = literal) usable to solicit
	// new tuples with a pre-filled key; derived from pushed predicates.
	ProbeKeys map[string]sqltypes.Value

	schema []Col
}

// NewScan builds a scan with its schema derived from the table definition.
func NewScan(t *catalog.Table, alias string) *Scan {
	if alias == "" {
		alias = t.Name
	}
	s := &Scan{Table: t, Alias: alias, StopAfter: -1, ProbeKeys: map[string]sqltypes.Value{}}
	for _, c := range t.Columns {
		s.schema = append(s.schema, Col{Table: alias, Name: c.Name, Type: c.Type, Crowd: c.Crowd})
	}
	return s
}

// Schema implements Node.
func (s *Scan) Schema() []Col { return s.schema }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// Explain implements Node.
func (s *Scan) Explain() string {
	var sb strings.Builder
	kind := "Scan"
	if s.Table.Crowd {
		kind = "CrowdScan"
	} else if len(s.AskColumns) > 0 {
		kind = "ProbeScan"
	}
	fmt.Fprintf(&sb, "%s(%s", kind, s.Table.Name)
	if !strings.EqualFold(s.Alias, s.Table.Name) {
		fmt.Fprintf(&sb, " AS %s", s.Alias)
	}
	sb.WriteString(")")
	if s.Filter != nil {
		fmt.Fprintf(&sb, " filter=%s", s.Filter)
	}
	if s.StopAfter >= 0 {
		fmt.Fprintf(&sb, " stopafter=%d", s.StopAfter)
	}
	if len(s.AskColumns) > 0 {
		fmt.Fprintf(&sb, " ask=[%s]", strings.Join(s.AskColumns, ","))
	}
	return sb.String()
}

// Filter drops rows not satisfying Cond. Crowd predicates (CROWDEQUAL, ~=)
// stay in Filter nodes; the executor evaluates them with CrowdCompare.
type Filter struct {
	Input Node
	Cond  parser.Expr
	// Pre is the cheap (crowd-free) part of Cond, ordered first by the
	// cost-based optimizer: the executor prunes rows with Pre before any
	// crowd comparison is paid for, so rows a machine predicate rejects
	// never reach the crowd. Nil when Cond has no cheap conjuncts or
	// cost-based optimization is disabled (Cond alone is then complete).
	Pre parser.Expr
}

// Schema implements Node.
func (f *Filter) Schema() []Col { return f.Input.Schema() }

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Input} }

// Explain implements Node.
func (f *Filter) Explain() string {
	kind := "Filter"
	if parser.HasCrowdFunc(f.Cond) {
		kind = "CrowdFilter"
	}
	if f.Pre != nil {
		return fmt.Sprintf("%s(%s) pre=%s", kind, f.Cond, f.Pre)
	}
	return fmt.Sprintf("%s(%s)", kind, f.Cond)
}

// Join combines two inputs. Equi-join keys, when detectable, let the
// executor pick index nested-loop (CrowdJoin when the inner is
// crowdsourced, §3.2.1) or hash join.
type Join struct {
	Left, Right Node
	Type        parser.JoinType
	On          parser.Expr
	// BuildRows is the optimizer's cardinality estimate for the build
	// (right) side, stamped after costing; a hash join pre-sizes its
	// build table from it. 0 = no estimate.
	BuildRows float64
}

// Schema implements Node.
func (j *Join) Schema() []Col {
	return append(append([]Col{}, j.Left.Schema()...), j.Right.Schema()...)
}

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// Explain implements Node.
func (j *Join) Explain() string {
	t := map[parser.JoinType]string{
		parser.JoinInner: "InnerJoin", parser.JoinLeft: "LeftJoin", parser.JoinCross: "CrossJoin",
	}[j.Type]
	if j.On != nil {
		return fmt.Sprintf("%s(%s)", t, j.On)
	}
	return t
}

// Project computes the SELECT list.
type Project struct {
	Input Node
	Items []parser.SelectItem

	schema []Col
}

// Schema implements Node.
func (p *Project) Schema() []Col { return p.schema }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Input} }

// Explain implements Node.
func (p *Project) Explain() string {
	var parts []string
	for _, it := range p.Items {
		parts = append(parts, it.String())
	}
	return "Project(" + strings.Join(parts, ", ") + ")"
}

// Aggregate groups and aggregates.
type Aggregate struct {
	Input   Node
	GroupBy []parser.Expr
	// Items are the output select items (aggregates and group keys).
	Items  []parser.SelectItem
	Having parser.Expr

	schema []Col
}

// Schema implements Node.
func (a *Aggregate) Schema() []Col { return a.schema }

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Input} }

// Explain implements Node.
func (a *Aggregate) Explain() string {
	var gs []string
	for _, g := range a.GroupBy {
		gs = append(gs, g.String())
	}
	s := "Aggregate(group=[" + strings.Join(gs, ", ") + "]"
	if a.Having != nil {
		s += " having=" + a.Having.String()
	}
	return s + ")"
}

// Sort orders rows. Keys containing CROWDORDER calls make the executor use
// the CrowdCompare-backed sort (paper Example 3).
type Sort struct {
	Input Node
	Keys  []parser.OrderItem
}

// Schema implements Node.
func (s *Sort) Schema() []Col { return s.Input.Schema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Input} }

// Explain implements Node.
func (s *Sort) Explain() string {
	var ks []string
	crowd := false
	for _, k := range s.Keys {
		item := k.Expr.String()
		if k.Desc {
			item += " DESC"
		}
		if parser.HasCrowdFunc(k.Expr) {
			crowd = true
		}
		ks = append(ks, item)
	}
	kind := "Sort"
	if crowd {
		kind = "CrowdSort"
	}
	return kind + "(" + strings.Join(ks, ", ") + ")"
}

// Limit truncates output.
type Limit struct {
	Input  Node
	N      int64
	Offset int64
}

// Schema implements Node.
func (l *Limit) Schema() []Col { return l.Input.Schema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Input} }

// Explain implements Node.
func (l *Limit) Explain() string {
	if l.Offset > 0 {
		return fmt.Sprintf("Limit(%d offset %d)", l.N, l.Offset)
	}
	return fmt.Sprintf("Limit(%d)", l.N)
}

// Distinct removes duplicate rows.
type Distinct struct{ Input Node }

// Schema implements Node.
func (d *Distinct) Schema() []Col { return d.Input.Schema() }

// Children implements Node.
func (d *Distinct) Children() []Node { return []Node{d.Input} }

// Explain implements Node.
func (d *Distinct) Explain() string { return "Distinct" }

// ExplainTree renders the whole plan, one node per line, children indented.
func ExplainTree(n Node) string { return ExplainTreeAnnotated(n, nil) }

// ExplainTreeAnnotated renders the plan with an optional per-node
// annotation (EXPLAIN uses it for the optimizer's cardinality predictions,
// §3.2.2: "the heuristic first annotates the query plan with the
// cardinality predictions between the operators").
func ExplainTreeAnnotated(n Node, annotate func(Node) string) string {
	var sb strings.Builder
	var walk func(Node, int)
	walk = func(n Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.Explain())
		if annotate != nil {
			if extra := annotate(n); extra != "" {
				sb.WriteString("  " + extra)
			}
		}
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return sb.String()
}

// FindCol resolves a column reference against a schema. Empty table matches
// any alias but must be unambiguous.
func FindCol(schema []Col, table, name string) (int, error) {
	found := -1
	for i, c := range schema {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("plan: ambiguous column %q", name)
		}
		found = i
	}
	if found < 0 {
		if table != "" {
			return -1, fmt.Errorf("plan: column %s.%s not found", table, name)
		}
		return -1, fmt.Errorf("plan: column %q not found", name)
	}
	return found, nil
}
