package plan

import (
	"fmt"
	"math"
)

// Cost is the optimizer's crowd cost prediction for a (sub)plan (paper
// §3.2.2: crowd queries must be planned against monetary cost AND human
// latency, not tuple counts alone). Cents is the expected crowd spend,
// Seconds the expected crowd-side latency (virtual time the query waits
// on people), Rows the predicted output cardinality. MachineSeconds is
// the machine-side scan time after dividing by the storage engine's
// effective scan parallelism (shards × cores) — microscopic next to any
// crowd round-trip, but it makes EXPLAIN and plan ranking reflect the
// real hardware.
type Cost struct {
	Cents          float64
	Seconds        float64
	Rows           float64
	MachineSeconds float64
}

// Plus accumulates the crowd and machine dimensions of another cost
// (Rows is a per-node property and is NOT summed; the caller sets it
// explicitly).
func (c Cost) Plus(o Cost) Cost {
	c.Cents += o.Cents
	c.Seconds += o.Seconds
	c.MachineSeconds += o.MachineSeconds
	return c
}

// IsUnbounded reports whether the prediction diverged (an unbounded crowd
// access: infinitely many tuples, infinite spend).
func (c Cost) IsUnbounded() bool {
	return math.IsInf(c.Cents, 1) || math.IsInf(c.Rows, 1)
}

// String renders the crowd dimensions compactly for EXPLAIN:
// "¢36.0 ~30m". A costless node renders as "¢0". Machine time is shown
// only once it is human-noticeable (≥ 1ms) — crowd dimensions dominate
// every real plan, and sub-millisecond noise would only clutter EXPLAIN.
func (c Cost) String() string {
	if c.IsUnbounded() {
		return "¢∞"
	}
	machine := ""
	if c.MachineSeconds >= 0.001 {
		machine = " cpu:" + fmtMachineSeconds(c.MachineSeconds)
	}
	if c.Cents == 0 && c.Seconds == 0 {
		return "¢0" + machine
	}
	return fmt.Sprintf("¢%.1f ~%s%s", c.Cents, fmtSeconds(c.Seconds), machine)
}

// fmtMachineSeconds renders machine scan time (milliseconds to seconds).
func fmtMachineSeconds(s float64) string {
	if s < 1 {
		return fmt.Sprintf("%.0fms", s*1000)
	}
	return fmt.Sprintf("%.1fs", s)
}

// fmtSeconds renders a duration prediction in seconds as minutes or hours
// (crowd latencies are human-scale).
func fmtSeconds(s float64) string {
	switch {
	case s < 90:
		return fmt.Sprintf("%.0fs", s)
	case s < 2*3600:
		return fmt.Sprintf("%.0fm", s/60)
	default:
		return fmt.Sprintf("%.1fh", s/3600)
	}
}
