package wrm

import (
	"fmt"
	"testing"
	"time"

	"crowddb/internal/crowd"
	"crowddb/internal/crowd/amt"
	"crowddb/internal/quality"
)

// settleGroup posts a small group, waits for completion, and settles it.
func settleGroup(t *testing.T, m *Manager, p *amt.Platform) []*crowd.Assignment {
	t.Helper()
	g := &crowd.HITGroup{Title: "t", Reward: 2, Assignments: 3}
	for i := 0; i < 4; i++ {
		g.HITs = append(g.HITs, &crowd.HIT{
			ID:     fmt.Sprintf("H%d", i),
			Fields: []crowd.Field{{Name: "x", Kind: crowd.FieldInput}},
			Truth:  &crowd.SimTruth{Truth: map[string]string{"x": "v"}},
		})
	}
	id, err := p.Post(g)
	if err != nil {
		t.Fatal(err)
	}
	p.Step(72 * time.Hour)
	res, err := p.Results(id)
	if err != nil || len(res) == 0 {
		t.Fatalf("results: %v %v", len(res), err)
	}
	if _, err := m.Settle(p, res); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSettleApprovesAndPays(t *testing.T) {
	tr := quality.NewTracker()
	m := New(DefaultPolicy(), tr)
	p := amt.NewDefault(11)
	res := settleGroup(t, m, p)
	paid, _ := p.Spend()
	if paid < crowd.Cents(len(res))*2 {
		t.Errorf("paid %v for %d assignments", paid, len(res))
	}
	if got := len(m.Ledger()); got != len(res) {
		t.Errorf("ledger entries: %d vs %d", got, len(res))
	}
}

func TestRejectBadWorkers(t *testing.T) {
	tr := quality.NewTracker()
	// Poison one worker's score.
	for i := 0; i < 20; i++ {
		tr.Record(quality.MajorityVote([]quality.Vote{
			{WorkerID: "good1", Answer: "x"},
			{WorkerID: "good2", Answer: "x"},
			{WorkerID: "spammer", Answer: fmt.Sprintf("junk%d", i)},
		}, 2))
	}
	m := New(PaymentPolicy{AutoApprove: true, RejectBelow: 0.2}, tr)
	p := amt.NewDefault(11)
	g := &crowd.HITGroup{Title: "t", Reward: 1, Assignments: 1, HITs: []*crowd.HIT{{
		ID: "H0", Fields: []crowd.Field{{Name: "x", Kind: crowd.FieldInput}},
	}}}
	id, _ := p.Post(g)
	p.Step(48 * time.Hour)
	res, _ := p.Results(id)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	// Masquerade the submission as the spammer's to trigger rejection.
	res[0].WorkerID = "spammer"
	if _, err := m.Settle(p, res); err != nil {
		t.Fatal(err)
	}
	led := m.Ledger()
	if len(led) != 1 || !led[0].Rejected {
		t.Errorf("spammer must be rejected: %+v", led)
	}
}

func TestBonusOncePerWorker(t *testing.T) {
	tr := quality.NewTracker()
	for i := 0; i < 50; i++ {
		tr.Record(quality.MajorityVote([]quality.Vote{
			{WorkerID: "star", Answer: "x"},
			{WorkerID: "other", Answer: "x"},
		}, 1))
	}
	m := New(PaymentPolicy{AutoApprove: true, BonusAbove: 0.9, BonusAmount: 5}, tr)
	p := amt.NewDefault(11)
	g := &crowd.HITGroup{Title: "t", Reward: 1, Assignments: 2, HITs: []*crowd.HIT{{
		ID: "H0", Fields: []crowd.Field{{Name: "x", Kind: crowd.FieldInput}},
	}}}
	id, _ := p.Post(g)
	p.Step(48 * time.Hour)
	res, _ := p.Results(id)
	if len(res) < 2 {
		t.Fatal("need 2 assignments")
	}
	res[0].WorkerID = "star"
	res[1].WorkerID = "star"
	if _, err := m.Settle(p, res); err != nil {
		t.Fatal(err)
	}
	var bonuses int
	for _, e := range m.Ledger() {
		if e.Bonus > 0 {
			bonuses++
		}
	}
	if bonuses != 1 {
		t.Errorf("star worker must be bonused exactly once, got %d", bonuses)
	}
}

func TestBlockBelowEscalates(t *testing.T) {
	tr := quality.NewTracker()
	for i := 0; i < 20; i++ {
		tr.Record(quality.MajorityVote([]quality.Vote{
			{WorkerID: "good1", Answer: "x"},
			{WorkerID: "good2", Answer: "x"},
			{WorkerID: "spammer", Answer: fmt.Sprintf("junk%d", i)},
		}, 2))
	}
	m := New(PaymentPolicy{AutoApprove: true, BlockBelow: 0.2}, tr)
	p := amt.NewDefault(17)
	g := &crowd.HITGroup{Title: "t", Reward: 1, Assignments: 1, HITs: []*crowd.HIT{{
		ID: "H0", Fields: []crowd.Field{{Name: "x", Kind: crowd.FieldInput}},
	}}}
	id, _ := p.Post(g)
	p.Step(48 * time.Hour)
	res, _ := p.Results(id)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	res[0].WorkerID = "spammer"
	if _, err := m.Settle(p, res); err != nil {
		t.Fatal(err)
	}
	blocked := m.BlockedWorkers()
	if len(blocked) != 1 || blocked[0] != "spammer" {
		t.Errorf("blocked: %v", blocked)
	}
	if p.Market().Blocked() != 1 {
		t.Error("block must reach the platform")
	}
	// Second settle of the same worker must not double-block.
	res[0].Status = crowd.AssignmentSubmitted
	m.Settle(p, res)
	if len(m.BlockedWorkers()) != 1 {
		t.Error("double block")
	}
}

func TestComplaints(t *testing.T) {
	m := New(DefaultPolicy(), quality.NewTracker())
	id1 := m.FileComplaint("W1", "payment late", time.Hour)
	id2 := m.FileComplaint("W2", "task unclear", 2*time.Hour)
	open := m.OpenComplaints()
	if len(open) != 2 || open[0].ID != id1 {
		t.Errorf("open queue: %+v", open)
	}
	if err := m.AnswerComplaint(id1, "paid now, sorry"); err != nil {
		t.Fatal(err)
	}
	if err := m.AnswerComplaint(id1, "again"); err == nil {
		t.Error("double-resolve must fail")
	}
	if err := m.AnswerComplaint(999, "x"); err == nil {
		t.Error("unknown complaint must fail")
	}
	open = m.OpenComplaints()
	if len(open) != 1 || open[0].ID != id2 {
		t.Errorf("after resolve: %+v", open)
	}
}

func TestCommunityOrder(t *testing.T) {
	tr := quality.NewTracker()
	tr.Record(quality.MajorityVote([]quality.Vote{
		{WorkerID: "good", Answer: "x"},
		{WorkerID: "good2", Answer: "x"},
		{WorkerID: "bad", Answer: "y"},
	}, 2))
	m := New(DefaultPolicy(), tr)
	com := m.Community()
	if len(com) != 3 || com[len(com)-1].WorkerID != "bad" {
		t.Errorf("community must be best-first: %+v", com)
	}
}
