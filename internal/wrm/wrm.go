// Package wrm implements CrowdDB's Worker Relationship Manager (paper §3):
// "crowd workers are not fungible resources and the worker/requester
// relationship evolves over time". The WRM pays workers promptly, grants
// bonuses to consistently good workers, and files and answers worker
// complaints — building the requester's community.
package wrm

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"crowddb/internal/crowd"
	"crowddb/internal/quality"
)

// PaymentPolicy decides how assignments are paid.
type PaymentPolicy struct {
	// AutoApprove pays every submitted assignment whose worker score is at
	// least RejectBelow; the paper's WRM "assists the requester with paying
	// workers in time".
	AutoApprove bool
	// RejectBelow is the agreement-score floor under which assignments are
	// rejected instead of paid (0 = never reject).
	RejectBelow float64
	// BonusAbove grants BonusAmount to workers whose score exceeds it.
	BonusAbove  float64
	BonusAmount crowd.Cents
	// BlockBelow escalates beyond rejection: workers whose score falls
	// under it are blocked from future assignments on platforms that
	// support blocking (0 = never block).
	BlockBelow float64
}

// Blocker is implemented by platforms that can bar workers from future
// assignments (both simulated platforms do).
type Blocker interface {
	Block(workerID string)
}

// DefaultPolicy pays everyone, rejects workers who almost always disagree
// with the majority, and tips the best workers a cent.
func DefaultPolicy() PaymentPolicy {
	return PaymentPolicy{AutoApprove: true, RejectBelow: 0.2, BonusAbove: 0.9, BonusAmount: 1}
}

// Complaint is one worker grievance and its resolution state.
type Complaint struct {
	ID       int
	WorkerID string
	Text     string
	FiledAt  time.Duration
	Answer   string
	Resolved bool
}

// LedgerEntry records one payment decision.
type LedgerEntry struct {
	AssignmentID string
	WorkerID     string
	Amount       crowd.Cents // 0 for rejections
	Bonus        crowd.Cents
	Rejected     bool
	At           time.Duration
}

// Manager is the WRM. It wraps a platform's payment operations with policy
// and bookkeeping, and owns the complaint queue.
type Manager struct {
	policy  PaymentPolicy
	tracker *quality.Tracker

	mu         sync.Mutex
	ledger     []LedgerEntry
	bonused    map[string]bool // workers already bonused (one per relationship)
	blocked    map[string]bool
	complaints []*Complaint
	nextID     int
}

// New creates a WRM with the given policy and quality tracker.
func New(policy PaymentPolicy, tracker *quality.Tracker) *Manager {
	return &Manager{policy: policy, tracker: tracker,
		bonused: make(map[string]bool), blocked: make(map[string]bool)}
}

// BlockedWorkers lists workers this manager has blocked, in no particular
// order.
func (m *Manager) BlockedWorkers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.blocked))
	for id := range m.blocked {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Settle applies the payment policy to a batch of submitted assignments on
// a platform, approving (with possible bonus) or rejecting each. It returns
// the number approved.
func (m *Manager) Settle(p crowd.Platform, assignments []*crowd.Assignment) (approved int, err error) {
	for _, a := range assignments {
		if a.Status != crowd.AssignmentSubmitted {
			continue
		}
		score := m.tracker.Score(a.WorkerID)
		if m.policy.BlockBelow > 0 && score < m.policy.BlockBelow {
			if blocker, ok := p.(Blocker); ok && !m.isBlocked(a.WorkerID) {
				blocker.Block(a.WorkerID)
				m.markBlocked(a.WorkerID)
			}
		}
		if m.policy.RejectBelow > 0 && score < m.policy.RejectBelow {
			if err := p.Reject(a.ID, "answers consistently disagree with the majority"); err != nil {
				return approved, fmt.Errorf("wrm: reject %s: %w", a.ID, err)
			}
			m.record(LedgerEntry{AssignmentID: a.ID, WorkerID: a.WorkerID, Rejected: true, At: p.Now()})
			continue
		}
		if !m.policy.AutoApprove {
			continue
		}
		var bonus crowd.Cents
		if m.policy.BonusAbove > 0 && score > m.policy.BonusAbove && !m.wasBonused(a.WorkerID) {
			bonus = m.policy.BonusAmount
			m.markBonused(a.WorkerID)
		}
		if err := p.Approve(a.ID, bonus); err != nil {
			return approved, fmt.Errorf("wrm: approve %s: %w", a.ID, err)
		}
		m.record(LedgerEntry{AssignmentID: a.ID, WorkerID: a.WorkerID, Amount: 1, Bonus: bonus, At: p.Now()})
		approved++
	}
	return approved, nil
}

func (m *Manager) record(e LedgerEntry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ledger = append(m.ledger, e)
}

func (m *Manager) wasBonused(workerID string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bonused[workerID]
}

func (m *Manager) markBonused(workerID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bonused[workerID] = true
}

func (m *Manager) isBlocked(workerID string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.blocked[workerID]
}

func (m *Manager) markBlocked(workerID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blocked[workerID] = true
}

// Ledger returns a copy of all payment decisions.
func (m *Manager) Ledger() []LedgerEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]LedgerEntry(nil), m.ledger...)
}

// FileComplaint records a worker grievance and returns its ID.
func (m *Manager) FileComplaint(workerID, text string, at time.Duration) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	m.complaints = append(m.complaints, &Complaint{ID: m.nextID, WorkerID: workerID, Text: text, FiledAt: at})
	return m.nextID
}

// AnswerComplaint resolves a complaint with a response.
func (m *Manager) AnswerComplaint(id int, answer string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.complaints {
		if c.ID == id {
			if c.Resolved {
				return fmt.Errorf("wrm: complaint %d already resolved", id)
			}
			c.Answer = answer
			c.Resolved = true
			return nil
		}
	}
	return fmt.Errorf("wrm: complaint %d not found", id)
}

// OpenComplaints returns unresolved complaints, oldest first.
func (m *Manager) OpenComplaints() []Complaint {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Complaint
	for _, c := range m.complaints {
		if !c.Resolved {
			out = append(out, *c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FiledAt < out[j].FiledAt })
	return out
}

// Community summarizes the requester's worker community: everyone the
// quality tracker has seen, best first — the relationship the WRM tends.
func (m *Manager) Community() []quality.WorkerQuality {
	ws := m.tracker.Workers()
	// Workers() sorts worst-first for the review queue; the community view
	// is best-first.
	for i, j := 0, len(ws)-1; i < j; i, j = i+1, j-1 {
		ws[i], ws[j] = ws[j], ws[i]
	}
	return ws
}
