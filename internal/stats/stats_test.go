package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKendallTau(t *testing.T) {
	a := []string{"a", "b", "c", "d"}
	tau, err := KendallTau(a, a)
	if err != nil || tau != 1 {
		t.Errorf("identical: %f %v", tau, err)
	}
	rev := []string{"d", "c", "b", "a"}
	tau, _ = KendallTau(a, rev)
	if tau != -1 {
		t.Errorf("reversed: %f", tau)
	}
	swapped := []string{"b", "a", "c", "d"}
	tau, _ = KendallTau(a, swapped)
	want := float64(5-1) / 6
	if math.Abs(tau-want) > 1e-9 {
		t.Errorf("one swap: %f want %f", tau, want)
	}
	if _, err := KendallTau([]string{"x"}, []string{"y"}); err == nil {
		t.Error("too few common items must fail")
	}
}

func TestKendallTauIgnoresMissing(t *testing.T) {
	tau, err := KendallTau([]string{"a", "zz", "b"}, []string{"a", "b", "qq"})
	if err != nil || tau != 1 {
		t.Errorf("missing items: %f %v", tau, err)
	}
}

// Property: τ is within [-1,1] and antisymmetric under reversal.
func TestKendallTauBoundsProperty(t *testing.T) {
	check := func(perm []uint8) bool {
		if len(perm) < 2 {
			return true
		}
		seen := map[string]bool{}
		var a []string
		for _, p := range perm {
			s := string(rune('a' + p%26))
			if !seen[s] {
				seen[s] = true
				a = append(a, s)
			}
		}
		if len(a) < 2 {
			return true
		}
		b := make([]string, len(a))
		for i := range a {
			b[len(a)-1-i] = a[i]
		}
		t1, err1 := KendallTau(a, a)
		t2, err2 := KendallTau(a, b)
		return err1 == nil && err2 == nil && t1 == 1 &&
			math.Abs(t1+t2) < 1e-9 && t2 >= -1 && t2 <= 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(xs, 50); p != 5 {
		t.Errorf("p50: %f", p)
	}
	if p := Percentile(xs, 100); p != 10 {
		t.Errorf("p100: %f", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("p0: %f", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Errorf("empty: %f", p)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("mean: %f", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("empty mean: %f", m)
	}
}

func TestTopKShare(t *testing.T) {
	counts := []int{100, 50, 10, 10, 10, 10, 10}
	if s := TopKShare(counts, 2); math.Abs(s-0.75) > 1e-9 {
		t.Errorf("top2: %f", s)
	}
	if s := TopKShare(counts, 100); s != 1 {
		t.Errorf("top-all: %f", s)
	}
	if s := TopKShare(nil, 3); s != 0 {
		t.Errorf("empty: %f", s)
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]int{5, 5, 5, 5}); math.Abs(g) > 1e-9 {
		t.Errorf("even: %f", g)
	}
	concentrated := Gini([]int{0, 0, 0, 100})
	if concentrated < 0.7 {
		t.Errorf("concentrated: %f", concentrated)
	}
	if g := Gini(nil); g != 0 {
		t.Errorf("empty: %f", g)
	}
}

func TestPrecisionRecall(t *testing.T) {
	pred := map[string]bool{"a": true, "b": true, "c": true}
	truth := map[string]bool{"a": true, "b": true, "d": true, "e": true}
	p, r, f1 := PrecisionRecall(pred, truth)
	if math.Abs(p-2.0/3) > 1e-9 || math.Abs(r-0.5) > 1e-9 {
		t.Errorf("p=%f r=%f", p, r)
	}
	wantF1 := 2 * (2.0 / 3) * 0.5 / (2.0/3 + 0.5)
	if math.Abs(f1-wantF1) > 1e-9 {
		t.Errorf("f1=%f", f1)
	}
	p, r, f1 = PrecisionRecall(nil, nil)
	if p != 0 || r != 0 || f1 != 0 {
		t.Error("empty sets")
	}
}
