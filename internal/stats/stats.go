// Package stats provides the small statistical toolkit the experiment
// harness uses: rank correlation (Kendall τ) for CROWDORDER quality,
// percentiles for latency distributions, and share-of-work summaries for
// the worker-affinity analysis.
package stats

import (
	"fmt"
	"sort"
)

// KendallTau computes the Kendall rank correlation τ between two rankings
// given as slices of the same items (by label). 1 = identical order,
// -1 = reversed. Items missing from either ranking are ignored.
func KendallTau(a, b []string) (float64, error) {
	posB := make(map[string]int, len(b))
	for i, s := range b {
		posB[s] = i
	}
	var ranks []int
	for _, s := range a {
		if p, ok := posB[s]; ok {
			ranks = append(ranks, p)
		}
	}
	n := len(ranks)
	if n < 2 {
		return 0, fmt.Errorf("stats: need at least 2 common items, have %d", n)
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ranks[i] < ranks[j] {
				concordant++
			} else {
				discordant++
			}
		}
	}
	pairs := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(pairs), nil
}

// Percentile returns the p-th percentile (0..100) of xs by nearest-rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(p/100*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// TopKShare returns the fraction of total work done by the k largest
// contributors (counts need not be sorted).
func TopKShare(counts []int, k int) float64 {
	if len(counts) == 0 || k <= 0 {
		return 0
	}
	sorted := append([]int(nil), counts...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	total, top := 0, 0
	for i, c := range sorted {
		total += c
		if i < k {
			top += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}

// Gini computes the Gini coefficient of the given non-negative counts
// (0 = perfectly even, →1 = concentrated). Used for worker-affinity skew.
func Gini(counts []int) float64 {
	n := len(counts)
	if n == 0 {
		return 0
	}
	sorted := append([]int(nil), counts...)
	sort.Ints(sorted)
	var cum, total float64
	for i, c := range sorted {
		cum += float64(c) * float64(2*(i+1)-n-1)
		total += float64(c)
	}
	if total == 0 {
		return 0
	}
	return cum / (float64(n) * total)
}

// PrecisionRecall scores a predicted set against a truth set.
func PrecisionRecall(predicted, truth map[string]bool) (precision, recall, f1 float64) {
	tp := 0
	for p := range predicted {
		if truth[p] {
			tp++
		}
	}
	if len(predicted) > 0 {
		precision = float64(tp) / float64(len(predicted))
	}
	if len(truth) > 0 {
		recall = float64(tp) / float64(len(truth))
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}
