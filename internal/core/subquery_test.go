package core

import (
	"strings"
	"testing"

	"crowddb/internal/sqltypes"
)

func subqueryEngine(t *testing.T) *Engine {
	t.Helper()
	eng, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	mustExec(t, eng, `CREATE TABLE talk (id INTEGER PRIMARY KEY, room STRING, att INTEGER)`)
	mustExec(t, eng, `CREATE TABLE vis (vid INTEGER PRIMARY KEY, tid INTEGER, who STRING)`)
	mustExec(t, eng, `INSERT INTO talk VALUES (1, 'A', 100), (2, 'B', 50), (3, 'A', 200), (4, 'C', 10)`)
	mustExec(t, eng, `INSERT INTO vis VALUES (1, 1, 'alice'), (2, 1, 'bob'), (3, 3, 'carol'), (4, 9, 'dave')`)
	return eng
}

func TestInSubquery(t *testing.T) {
	eng := subqueryEngine(t)
	res := mustExec(t, eng,
		`SELECT who FROM vis WHERE tid IN (SELECT id FROM talk WHERE att > 80) ORDER BY who`)
	var names []string
	for _, r := range res.Rows {
		names = append(names, r[0].Str())
	}
	if strings.Join(names, ",") != "alice,bob,carol" {
		t.Errorf("names: %v", names)
	}
}

func TestNotInSubquery(t *testing.T) {
	eng := subqueryEngine(t)
	res := mustExec(t, eng,
		`SELECT who FROM vis WHERE tid NOT IN (SELECT id FROM talk WHERE att > 80) ORDER BY who`)
	// dave's tid=9 is not in talk at all, so NOT IN includes him.
	var names []string
	for _, r := range res.Rows {
		names = append(names, r[0].Str())
	}
	if strings.Join(names, ",") != "dave" {
		t.Errorf("names: %v", names)
	}
}

func TestNestedSubquery(t *testing.T) {
	eng := subqueryEngine(t)
	res := mustExec(t, eng,
		`SELECT id FROM talk WHERE id IN (SELECT tid FROM vis WHERE tid IN (SELECT id FROM talk WHERE room = 'A')) ORDER BY id`)
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 1 || res.Rows[1][0].Int() != 3 {
		t.Errorf("rows: %v", res.Rows)
	}
}

func TestSubqueryInSelectList(t *testing.T) {
	eng := subqueryEngine(t)
	res := mustExec(t, eng,
		`SELECT who, tid IN (SELECT id FROM talk) AS known FROM vis ORDER BY who`)
	if len(res.Rows) != 4 {
		t.Fatalf("rows: %v", res.Rows)
	}
	for _, r := range res.Rows {
		want := r[0].Str() != "dave"
		if r[1].Kind() != sqltypes.KindBool || r[1].Bool() != want {
			t.Errorf("%s known=%v", r[0].Str(), r[1])
		}
	}
}

func TestSubqueryErrors(t *testing.T) {
	eng := subqueryEngine(t)
	// Multi-column subqueries are rejected.
	if _, err := eng.Exec(`SELECT who FROM vis WHERE tid IN (SELECT id, att FROM talk)`); err == nil {
		t.Error("multi-column subquery must fail")
	}
	// Unknown table inside the subquery surfaces.
	if _, err := eng.Exec(`SELECT who FROM vis WHERE tid IN (SELECT id FROM nope)`); err == nil {
		t.Error("bad subquery must fail")
	}
	// Correlated references are unsupported and must error cleanly.
	if _, err := eng.Exec(`SELECT who FROM vis WHERE tid IN (SELECT id FROM talk WHERE att > vid)`); err == nil {
		t.Error("correlated subquery must be rejected")
	}
}

func TestSubqueryWithAggregates(t *testing.T) {
	eng := subqueryEngine(t)
	res := mustExec(t, eng,
		`SELECT room, COUNT(*) AS c FROM talk WHERE id IN (SELECT tid FROM vis) GROUP BY room ORDER BY room`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "A" || res.Rows[0][1].Int() != 2 {
		t.Errorf("rows: %v", res.Rows)
	}
}

func TestSubqueryPrintReparse(t *testing.T) {
	eng := subqueryEngine(t)
	// EXPLAIN exercises the printer path for subqueries.
	res := mustExec(t, eng, `EXPLAIN SELECT who FROM vis WHERE tid IN (SELECT id FROM talk)`)
	if !strings.Contains(res.Plan, "IN (SELECT id FROM talk)") {
		t.Errorf("plan rendering:\n%s", res.Plan)
	}
}
