package core

// Tests for the streaming/cancellation seam: Execute(ctx), RowSink, and
// the OnSchema/OnStats observers.

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"crowddb/internal/exec"
	"crowddb/internal/parser"
	"crowddb/internal/storage"
)

func itemEngine(t *testing.T, n int) *Engine {
	t.Helper()
	eng, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	if _, err := eng.Exec(`CREATE TABLE Item (id INTEGER PRIMARY KEY, grp INTEGER)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := eng.Exec(intInsert(i)); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

func intInsert(i int) string {
	return "INSERT INTO Item VALUES (" + itoa(i) + ", " + itoa(i%3) + ")"
}

func itoa(i int) string { return string(rune('0'+i/10)) + string(rune('0'+i%10)) }

// TestExecuteStreamsIdenticalRows: the sink receives exactly the rows
// the materializing path returns, in order, with the schema announced
// before the first row.
func TestExecuteStreamsIdenticalRows(t *testing.T) {
	eng := itemEngine(t, 12)
	query := "SELECT id FROM Item WHERE grp = 1"

	materialized, err := eng.Query(query)
	if err != nil {
		t.Fatal(err)
	}

	var streamed []storage.Row
	var cols []string
	sawSchemaFirst := true
	opts := DefaultExecOpts()
	opts.OnSchema = func(c []string) { cols = c }
	opts.Sink = func(r exec.Row) error {
		if cols == nil {
			sawSchemaFirst = false
		}
		streamed = append(streamed, r)
		return nil
	}
	res, err := eng.Execute(context.Background(), query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !sawSchemaFirst {
		t.Error("OnSchema must fire before the first row")
	}
	if res.Rows != nil {
		t.Errorf("streamed Result must not materialize rows, got %d", len(res.Rows))
	}
	if !reflect.DeepEqual(cols, materialized.Columns) {
		t.Errorf("columns = %v, want %v", cols, materialized.Columns)
	}
	if !reflect.DeepEqual(streamed, materialized.Rows) {
		t.Errorf("streamed rows diverge:\n%v\nvs\n%v", streamed, materialized.Rows)
	}
}

// TestExecuteSinkErrorStops: a sink error aborts the statement.
func TestExecuteSinkErrorStops(t *testing.T) {
	eng := itemEngine(t, 12)
	boom := errors.New("sink full")
	n := 0
	opts := DefaultExecOpts()
	opts.Sink = func(exec.Row) error {
		n++
		if n == 2 {
			return boom
		}
		return nil
	}
	_, err := eng.Execute(context.Background(), "SELECT id FROM Item", opts)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want sink error", err)
	}
	if n != 2 {
		t.Fatalf("sink called %d times, want 2", n)
	}
}

// TestExecuteCancelledContext: a pre-cancelled context stops execution
// and still fires OnStats (budget settlement path).
func TestExecuteCancelledContext(t *testing.T) {
	eng := itemEngine(t, 12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	statsFired := false
	opts := DefaultExecOpts()
	opts.OnStats = func(exec.Stats) { statsFired = true }
	_, err := eng.Execute(ctx, "SELECT id FROM Item", opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A script-level cancellation may stop before the statement compiles;
	// run the statement-level path too.
	stmtErrFired := false
	opts.OnStats = func(exec.Stats) { stmtErrFired = true }
	stmt, perr := parser.Parse("SELECT id FROM Item")
	if perr != nil {
		t.Fatal(perr)
	}
	if _, err := eng.ExecStmtCtx(ctx, stmt, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("stmt err = %v", err)
	}
	if !stmtErrFired {
		t.Error("OnStats must fire even when the statement is cancelled")
	}
	_ = statsFired
}
