package core

// Snapshot-isolation stress and compare-cache persistence regression
// tests. Run with -race: the point of the MVCC rewrite is that a long
// crowd SELECT shares the engine with committing writers without a
// statement lock.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"crowddb/internal/crowd/amt"
	"crowddb/internal/exec"
	"crowddb/internal/parser"
	"crowddb/internal/sqltypes"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

// pairCoreEngine mirrors the server suite's pair fixture: n company
// pairs whose variant is the lower-cased canonical, so every `a ~= b`
// comparison is a true match under the conference oracle.
func pairCoreEngine(t *testing.T, seed int64, n int) (*Engine, *workload.Companies) {
	t.Helper()
	conf := workload.NewConference(8, seed)
	eng, err := Open(Config{
		Platform: amt.NewDefault(seed),
		Oracle:   conf.Oracle(),
		Payment:  wrm.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	mustExec(t, eng, `CREATE TABLE Pair (id INTEGER PRIMARY KEY, a STRING, b STRING)`)
	cs := workload.NewCompanies(n, seed)
	for i, c := range cs.List {
		variant := c.Variants[len(c.Variants)-1]
		mustExec(t, eng, fmt.Sprintf("INSERT INTO Pair VALUES (%d, %s, %s)",
			i, sqltypes.NewString(c.Canonical).SQLLiteral(), sqltypes.NewString(variant).SQLLiteral()))
	}
	return eng, cs
}

// TestSnapshotSELECTConcurrentWithWriters is the headline regression for
// the killed engine statement lock: a crowd SELECT parked mid-crowd-wait
// must not block INSERT/UPDATE/DELETE traffic, and its result must be
// the database as of its snapshot — not the mutated present. Afterwards
// version GC reclaims everything the snapshot was holding.
func TestSnapshotSELECTConcurrentWithWriters(t *testing.T) {
	const n = 6
	eng, cs := pairCoreEngine(t, 97, n)

	// Pose as a foreign session's in-flight leader for row 0's
	// comparison: the SELECT will park on it until we abandon.
	c0 := cs.List[0]
	leader := eng.Cache().ClaimEqual("", c0.Canonical, c0.Variants[len(c0.Variants)-1])
	if !leader.Leader {
		t.Fatal("test setup: expected to lead the claim")
	}

	stmts, err := parser.ParseAll("SELECT id FROM Pair WHERE a ~= b")
	if err != nil {
		t.Fatal(err)
	}
	snapCh := make(chan int64, 1)
	opts := DefaultExecOpts()
	opts.OnSnapshot = func(ts int64) { snapCh <- ts }
	done := make(chan struct{})
	var res *Result
	var selErr error
	go func() {
		defer close(done)
		res, selErr = eng.ExecStmtCtx(context.Background(), stmts[0], opts)
	}()

	var snapTS int64
	select {
	case snapTS = <-snapCh:
	case <-time.After(30 * time.Second):
		t.Fatal("SELECT never pinned a snapshot")
	}
	if snapTS <= 0 {
		t.Fatalf("snapshot ts = %d", snapTS)
	}

	// With the SELECT in flight (and soon parked on the foreign claim),
	// hammer the table from concurrent writers: every row class — new,
	// rewritten, deleted — plus churn that leaves retained versions.
	var wg sync.WaitGroup
	writersDone := make(chan struct{})
	writerErrs := make(chan error, 32)
	exec1 := func(sql string) {
		if _, err := eng.Exec(sql); err != nil {
			writerErrs <- fmt.Errorf("%s: %w", sql, err)
		}
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				id := 100 + w*10 + i
				exec1(fmt.Sprintf("INSERT INTO Pair VALUES (%d, 'new-%d', 'x')", id, id))
				exec1(fmt.Sprintf("UPDATE Pair SET b = 'rewritten-%d-%d' WHERE id = %d", w, i, w+1))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		exec1("DELETE FROM Pair WHERE id = 5")
	}()
	go func() { wg.Wait(); close(writersDone) }()

	// Writers must complete while the reader is still parked: with the
	// old engine RWMutex this deadlocks (DML waits on the crowd SELECT,
	// which waits on a comparison nobody will answer).
	select {
	case err := <-writerErrs:
		t.Fatal(err)
	case <-writersDone:
	case <-done:
		t.Fatalf("SELECT finished while its comparison was foreign-owned (err=%v)", selErr)
	case <-time.After(30 * time.Second):
		t.Fatal("writers blocked behind the in-flight crowd SELECT")
	}
	select {
	case <-done:
		t.Fatalf("SELECT finished before its claim was released (err=%v)", selErr)
	default:
	}

	// Release the claim: the SELECT takes over, pays the crowd, finishes.
	leader.Abandon()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("SELECT never finished after the claim was abandoned")
	}
	if selErr != nil {
		t.Fatal(selErr)
	}
	select {
	case err := <-writerErrs:
		t.Fatal(err)
	default:
	}
	if res.SnapshotTS != snapTS {
		t.Errorf("Result.SnapshotTS = %d, want %d", res.SnapshotTS, snapTS)
	}
	// The result is the snapshot: exactly the n original rows (all true
	// matches), untouched by the concurrent inserts, rewrites, deletes.
	if len(res.Rows) != n {
		t.Fatalf("SELECT returned %d rows, want the %d snapshot rows: %v", len(res.Rows), n, res.Rows)
	}
	for i, row := range res.Rows {
		if row[0].Int() != int64(i) {
			t.Errorf("row %d = %v, want id %d", i, row, i)
		}
	}

	// The statement released its snapshot on the way out; GC reclaimed
	// every version it was holding (15 rewrites + 1 delete).
	live, retained := eng.store.VersionStats()
	if retained != 0 {
		t.Errorf("retained versions after snapshot release = %d, want 0", retained)
	}
	// n original - 1 deleted + 15 inserted, plus compare-cache rows.
	if live < n-1+15 {
		t.Errorf("live rows = %d, want >= %d", live, n-1+15)
	}
	// And the latest view sees the writers' world.
	after := mustExec(t, eng, "SELECT id FROM Pair")
	if len(after.Rows) != n-1+15 {
		t.Errorf("latest row count = %d, want %d", len(after.Rows), n-1+15)
	}
}

// TestPersistCompareCacheSkipsPoisonedEntry (regression): one entry
// whose system-table write keeps failing must not block the healthy
// answers behind it — they persist, it is retained for the next pass,
// and the first error is still reported.
func TestPersistCompareCacheSkipsPoisonedEntry(t *testing.T) {
	eng, _ := pairCoreEngine(t, 101, 1)
	eng.cache.PutEqual("q", "healthy-a", "x", true)
	eng.cache.PutEqual("q", "poison", "x", false)
	eng.cache.PutEqual("q", "healthy-z", "x", true)

	eng.persistMu.Lock()
	eng.persistHook = func(en exec.Entry) error {
		if en.Left == "poison" {
			return fmt.Errorf("injected write failure")
		}
		return nil
	}
	eng.persistMu.Unlock()

	if _, err := eng.persistCompareCache(); err == nil {
		t.Fatal("poisoned pass must report the first error")
	}
	// Healthy entries reached the system table despite the failure...
	for _, left := range []string{"healthy-a", "healthy-z"} {
		if _, _, ok := eng.store.LookupPKRow(compareTable,
			sqltypes.NewString("equal"), sqltypes.NewString("q"),
			sqltypes.NewString(left), sqltypes.NewString("x")); !ok {
			t.Errorf("healthy entry %q not persisted", left)
		}
	}
	// ...and only the poisoned one is still pending.
	eng.persistMu.Lock()
	pending := len(eng.pendingPersist)
	_, poisonPending := eng.pendingPersist[compareKey{"equal", "q", "poison", "x"}]
	eng.persistMu.Unlock()
	if pending != 1 || !poisonPending {
		t.Fatalf("pending = %d (poison retained: %v), want just the poisoned entry", pending, poisonPending)
	}
	// While pending, the answer still serves read-through.
	if ans, ok := eng.lookupPersistedCompare("equal", "q", "poison", "x"); !ok || ans != "no" {
		t.Errorf("pending entry not readable: %q %v", ans, ok)
	}

	// The write path recovers: the retained entry persists next pass.
	eng.persistMu.Lock()
	eng.persistHook = nil
	eng.persistMu.Unlock()
	if _, err := eng.persistCompareCache(); err != nil {
		t.Fatal(err)
	}
	eng.persistMu.Lock()
	pending = len(eng.pendingPersist)
	eng.persistMu.Unlock()
	if pending != 0 {
		t.Fatalf("pending after recovery = %d, want 0", pending)
	}
	if ans, ok := eng.lookupPersistedCompare("equal", "q", "poison", "x"); !ok || ans != "no" {
		t.Errorf("recovered entry unreadable: %q %v", ans, ok)
	}
}

// TestPendingPersistKeyedLookup (regression): read-through consults the
// pending-persist backlog by key — entries parked behind a failing
// write stay resolvable, and misses stay misses, regardless of backlog
// size.
func TestPendingPersistKeyedLookup(t *testing.T) {
	eng, _ := pairCoreEngine(t, 103, 1)
	eng.persistMu.Lock()
	eng.persistHook = func(exec.Entry) error { return fmt.Errorf("storage down") }
	eng.persistMu.Unlock()

	const backlog = 500
	for i := 0; i < backlog; i++ {
		eng.cache.PutEqual("q", fmt.Sprintf("left-%03d", i), "right", i%2 == 0)
	}
	if _, err := eng.persistCompareCache(); err == nil {
		t.Fatal("want the injected failure reported")
	}
	eng.persistMu.Lock()
	pending := len(eng.pendingPersist)
	eng.persistMu.Unlock()
	if pending != backlog {
		t.Fatalf("pending = %d, want %d", pending, backlog)
	}
	// Every parked entry resolves to its own answer.
	for _, i := range []int{0, 1, backlog / 2, backlog - 1} {
		want := "no"
		if i%2 == 0 {
			want = "yes"
		}
		ans, ok := eng.lookupPersistedCompare("equal", "q", fmt.Sprintf("left-%03d", i), "right")
		if !ok || ans != want {
			t.Errorf("entry %d: got %q %v, want %q", i, ans, ok, want)
		}
	}
	if _, ok := eng.lookupPersistedCompare("equal", "q", "left-none", "right"); ok {
		t.Error("unknown key resolved from the pending backlog")
	}
}
