package core

// Engine-level observability: the metrics registry every subsystem
// exports into, the per-statement trace recorder, and the slow-query
// log. Everything is hand-rolled (internal/obs) — no external metrics or
// tracing dependency — and scraped in Prometheus text form by the
// server's GET /metrics.

import (
	"os"
	"sync"
	"time"

	"crowddb/internal/exec"
	"crowddb/internal/obs"
	"crowddb/internal/parser"
)

// engineMetrics is the engine's hot-path instrument set. Counters are
// updated with per-statement deltas after each statement finishes;
// everything cheap to read on demand (cache, cost model, storage, task
// manager) is exported as func-backed series instead, evaluated at
// scrape time.
type engineMetrics struct {
	statements   map[string]*obs.Counter
	comparisons  *obs.Counter
	probeReqs    *obs.Counter
	tupleReqs    *obs.Counter
	budgetDenied *obs.Counter
	spendCents   *obs.Counter
}

// initObservability builds the registry and tracer at Open. The registry
// always exists (metrics are cheap and scrape-driven); the tracer is
// omitted under Config.DisableObservability so statements record no
// spans at all — the overhead benchmark's control arm.
func (e *Engine) initObservability() {
	e.reg = obs.NewRegistry()
	if !e.cfg.DisableObservability {
		e.tracer = obs.NewTracer(0)
		if e.cfg.SlowQueryThreshold > 0 {
			w := e.cfg.SlowQueryLog
			if w == nil {
				w = os.Stderr
			}
			e.tracer.SetSlowQueryLog(e.cfg.SlowQueryThreshold, w)
		}
	}

	e.obsm.statements = make(map[string]*obs.Counter)
	for _, kind := range []string{"select", "explain", "dml", "ddl", "show", "other"} {
		e.obsm.statements[kind] = e.reg.Counter("crowddb_statements_total",
			"statements executed by kind", "kind", kind)
	}
	e.obsm.comparisons = e.reg.Counter("crowddb_crowd_comparisons_total",
		"crowd comparisons paid for (cache misses led by a statement)")
	e.obsm.probeReqs = e.reg.Counter("crowddb_crowd_probe_requests_total",
		"tuples whose CNULL columns were sent to the crowd")
	e.obsm.tupleReqs = e.reg.Counter("crowddb_crowd_new_tuples_total",
		"candidate tuples solicited from the crowd")
	e.obsm.budgetDenied = e.reg.Counter("crowddb_crowd_budget_denied_total",
		"comparisons skipped because the per-statement budget ran out")
	e.obsm.spendCents = e.reg.Counter("crowddb_crowd_spend_cents_total",
		"crowd spend in cost-model cents (reward x replication per paid request)")

	e.reg.CounterFunc("crowddb_cache_hits_total",
		"comparison claims answered from a resident cache entry",
		func() float64 { return float64(e.cache.Stats().Hits) })
	e.reg.CounterFunc("crowddb_cache_misses_total",
		"comparison claims that led a new crowd question",
		func() float64 { return float64(e.cache.Stats().Misses) })
	e.reg.CounterFunc("crowddb_cache_shared_total",
		"comparison claims that adopted another session's in-flight question",
		func() float64 { return float64(e.cache.Stats().Shared) })
	e.reg.CounterFunc("crowddb_cache_evictions_total",
		"comparison-cache entries dropped by the LRU cap",
		func() float64 { return float64(e.cache.Stats().Evictions) })
	e.reg.GaugeFunc("crowddb_cache_resident_entries",
		"comparison-cache entries currently resident",
		func() float64 { return float64(e.cache.Stats().Size) })

	e.reg.CounterFunc("crowddb_costmodel_statements_total",
		"crowd-active SELECTs scored by the cost model",
		func() float64 { return float64(e.CostModel().Statements) })
	e.reg.CounterFunc("crowddb_costmodel_predicted_cents_total",
		"running total of cost-model cents forecasts",
		func() float64 { return e.CostModel().PredictedCents })
	e.reg.CounterFunc("crowddb_costmodel_actual_cents_total",
		"running total of measured crowd cents on scored statements",
		func() float64 { return e.CostModel().ActualCents })

	e.store.RegisterMetrics(e.reg)
	if e.tasks != nil {
		e.tasks.RegisterMetrics(e.reg)
	}
	if !e.cfg.DisableObservability {
		e.opm = newOpMetrics(e.reg)
	}
}

// opMetrics funnels each instrumented operator's final accounting into
// the registry, keyed by operator name — the engine's exec.OpMetricsSink.
// Series are created lazily the first time an operator label is seen, so
// /metrics only carries families for operators that actually ran. Nil
// when observability is disabled: the executor then skips the
// instrumented shells entirely and the row hot path stays unwrapped.
type opMetrics struct {
	reg    *obs.Registry
	mu     sync.Mutex
	series map[string]*opSeries
}

type opSeries struct {
	rows    *obs.Counter
	batches *obs.Counter
	wall    *obs.Counter
	peak    *obs.Gauge
}

func newOpMetrics(reg *obs.Registry) *opMetrics {
	return &opMetrics{reg: reg, series: make(map[string]*opSeries)}
}

// ObserveOp implements exec.OpMetricsSink; the instrumented shell calls
// it once per operator at Close. The peak gauge is a high watermark
// across statements, not a sum: it answers "how large does this
// operator's materialization get", the vectorized pipeline's
// per-operator memory figure.
func (m *opMetrics) ObserveOp(op string, st exec.OpStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.series[op]
	if s == nil {
		s = &opSeries{
			rows: m.reg.Counter("crowddb_exec_op_rows_total",
				"rows produced by each physical operator", "op", op),
			batches: m.reg.Counter("crowddb_exec_op_batches_total",
				"non-empty batches produced by each physical operator", "op", op),
			wall: m.reg.Counter("crowddb_exec_op_wall_seconds_total",
				"inclusive wall time inside each physical operator and its children", "op", op),
			peak: m.reg.Gauge("crowddb_exec_op_peak_buffered_rows",
				"high watermark of rows an operator materialized at once", "op", op),
		}
		m.series[op] = s
	}
	s.rows.Add(float64(st.RowsOut))
	s.batches.Add(float64(st.Batches))
	s.wall.Add(float64(st.WallNanos) / float64(time.Second))
	if p := float64(st.PeakBufferedRows); p > s.peak.Value() {
		s.peak.Set(p)
	}
}

// Metrics exposes the engine's registry (the server mounts it at
// GET /metrics; experiments scrape it directly).
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// Tracer exposes the trace recorder (nil when observability is
// disabled). The server starts a trace per job and serves the retained
// ring at GET /v1/queries/{id}/trace.
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// NumShards reports the storage engine's per-table hash-shard fan-out
// (the server's healthz surfaces it).
func (e *Engine) NumShards() int { return e.store.NumShards() }

// noteCrowdStats folds one finished statement's crowd activity into the
// hot-path counters. Safe on a partially-initialized engine: nil
// counters no-op.
func (e *Engine) noteCrowdStats(st exec.Stats) {
	e.obsm.comparisons.Add(float64(st.Comparisons))
	e.obsm.probeReqs.Add(float64(st.ProbeRequests))
	e.obsm.tupleReqs.Add(float64(st.NewTupleRequests))
	e.obsm.budgetDenied.Add(float64(st.BudgetDenied))
	e.obsm.spendCents.Add(e.actualCents(st))
}

// stmtKind buckets a statement for the crowddb_statements_total label.
func stmtKind(stmt parser.Statement) string {
	switch stmt.(type) {
	case *parser.Select:
		return "select"
	case *parser.Explain:
		return "explain"
	case *parser.ShowTables:
		return "show"
	case *parser.Insert, *parser.Update, *parser.Delete:
		return "dml"
	case *parser.CreateTable, *parser.CreateIndex, *parser.DropTable:
		return "ddl"
	default:
		return "other"
	}
}
