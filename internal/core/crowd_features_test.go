package core

import (
	"fmt"
	"testing"

	"crowddb/internal/crowd/amt"
	"crowddb/internal/crowd/mobile"
	"crowddb/internal/quality"
	"crowddb/internal/sqltypes"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

func newAMT(seed int64) *amt.Platform { return amt.NewDefault(seed) }

// Aggregates over crowd columns must first instantiate the CNULLs they
// aggregate (§2.1: values are sourced when "required to evaluate ... or if
// they are part of a query result").
func TestAggregateOverCrowdColumn(t *testing.T) {
	eng, conf := newConferenceEngine(t, 41, "")
	defer eng.Close()
	res := mustExec(t, eng, "SELECT COUNT(nb_attendees), AVG(nb_attendees) FROM Talk")
	if res.Stats.ProbeRequests == 0 {
		t.Fatalf("aggregation must probe: %+v", res.Stats)
	}
	if res.Rows[0][0].Int() < 8 { // 10 talks, allow a couple of failed quorums
		t.Errorf("most attendance values must be filled: %v", res.Rows)
	}
	avg := res.Rows[0][1].Float()
	if avg < 20 || avg > 310 {
		t.Errorf("average out of ground-truth range: %f", avg)
	}
	_ = conf
}

// CROWDEQUAL in the SELECT list resolves through the single-pair fallback
// path and caches like everything else.
func TestCrowdEqualInSelectList(t *testing.T) {
	comp := workload.NewCompanies(4, 42)
	eng, err := Open(Config{
		Platform: newAMT(42),
		Oracle:   comp.Oracle(),
		Payment:  wrm.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	mustExec(t, eng, `CREATE TABLE company (name STRING PRIMARY KEY)`)
	for _, c := range comp.List {
		mustExec(t, eng, "INSERT INTO company VALUES ("+sqltypes.NewString(c.Canonical).SQLLiteral()+")")
	}
	probe := sqltypes.NewString(comp.List[0].Variants[len(comp.List[0].Variants)-1]).SQLLiteral()
	res := mustExec(t, eng, "SELECT name, CROWDEQUAL(name, "+probe+") AS same FROM company")
	if len(res.Rows) != 4 {
		t.Fatalf("rows: %v", res.Rows)
	}
	yes := 0
	for _, row := range res.Rows {
		if row[1].Kind() == sqltypes.KindBool && row[1].Bool() {
			yes++
		}
	}
	if yes < 1 {
		t.Errorf("the matching company must be recognized: %v", res.Rows)
	}
	if res.Stats.Comparisons == 0 {
		t.Errorf("projection comparisons must reach the crowd: %+v", res.Stats)
	}
}

// The full demo workload also runs on the mobile platform end to end.
func TestConferenceOnMobilePlatform(t *testing.T) {
	conf := workload.NewConference(8, 43)
	eng, err := Open(Config{
		Platform: mobile.New(mobile.DefaultConfig(43)),
		Oracle:   conf.Oracle(),
		Payment:  wrm.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	mustExec(t, eng, `CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING, nb_attendees CROWD INTEGER)`)
	for _, talk := range conf.Talks {
		mustExec(t, eng, fmt.Sprintf("INSERT INTO Talk (title) VALUES (%s)",
			sqltypes.NewString(talk.Title).SQLLiteral()))
	}
	res := mustExec(t, eng, "SELECT title, nb_attendees FROM Talk WHERE nb_attendees > 0")
	if len(res.Rows) < 6 {
		t.Errorf("mobile crowd should fill most counts: %d rows (%+v)", len(res.Rows), res.Stats)
	}
}

// LIKE over a crowd column: the predicate requires the value, so the
// column is probed before filtering.
func TestLikeOverCrowdColumn(t *testing.T) {
	eng, conf := newConferenceEngine(t, 44, "")
	defer eng.Close()
	res := mustExec(t, eng, "SELECT title FROM Talk WHERE abstract LIKE '%techniques%'")
	if res.Stats.ProbeRequests == 0 {
		t.Fatalf("LIKE on crowd column must probe: %+v", res.Stats)
	}
	// Every ground-truth abstract contains "techniques".
	if len(res.Rows) < 8 {
		t.Errorf("rows: %d", len(res.Rows))
	}
	_ = conf
}

// EXPLAIN shows the join reorder: the crowd table moves to the inner side.
func TestExplainShowsCrowdJoin(t *testing.T) {
	eng, _ := newConferenceEngine(t, 45, "")
	defer eng.Close()
	res := mustExec(t, eng,
		"EXPLAIN SELECT n.name FROM NotableAttendee n JOIN Talk t ON n.title = t.title")
	plan := res.Plan
	scanIdx := indexOf(plan, "CrowdScan(NotableAttendee")
	talkIdx := indexOf(plan, "Scan(Talk")
	if scanIdx < 0 || talkIdx < 0 {
		t.Fatalf("plan:\n%s", plan)
	}
	if scanIdx < talkIdx {
		t.Errorf("crowd table must be reordered after Talk:\n%s", plan)
	}
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// The engine's quality tracker converges: after several crowd queries,
// workers who disagreed with majorities score lower.
func TestQualityTrackerConverges(t *testing.T) {
	eng, conf := newConferenceEngine(t, 46, "")
	defer eng.Close()
	for _, talk := range conf.Talks[:6] {
		mustExec(t, eng, "SELECT abstract FROM Talk WHERE title = "+
			sqltypes.NewString(talk.Title).SQLLiteral())
	}
	ws := eng.Tracker().Workers()
	if len(ws) < 3 {
		t.Fatalf("too few tracked workers: %d", len(ws))
	}
	var agreed, disagreed int
	for _, w := range ws {
		agreed += w.Agreed
		disagreed += w.Disagreed
	}
	if agreed <= disagreed {
		t.Errorf("majority agreement should dominate: %d vs %d", agreed, disagreed)
	}
	// The decisions must be recorded as quality.Decision votes.
	if eng.Tracker().Score(ws[0].WorkerID) == 0.5 && ws[0].Agreed+ws[0].Disagreed > 0 {
		t.Error("scores must move off the prior")
	}
	_ = quality.Decision{}
}
