package core

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"crowddb/internal/crowd"
	"crowddb/internal/crowd/amt"
	"crowddb/internal/optimizer"
	"crowddb/internal/taskmgr"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

// The engine must work unchanged against the AMT HTTP binding — the same
// networked lifecycle the paper's prototype had against the real AMT.
func TestEngineOverHTTPPlatform(t *testing.T) {
	conf := workload.NewConference(10, 31)
	srv := httptest.NewServer(amt.NewServer(amt.NewDefault(31)))
	defer srv.Close()

	eng, err := Open(Config{
		Platform: amt.NewClient(srv.URL),
		Oracle:   conf.Oracle(),
		Payment:  wrm.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	mustExec(t, eng, `CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING, nb_attendees CROWD INTEGER)`)
	mustExec(t, eng, fmt.Sprintf("INSERT INTO Talk (title) VALUES ('%s')", conf.Talks[0].Title))
	res := mustExec(t, eng, fmt.Sprintf("SELECT abstract FROM Talk WHERE title = '%s'", conf.Talks[0].Title))
	if len(res.Rows) != 1 || res.Rows[0][0].IsUnknown() {
		t.Fatalf("probe over HTTP failed: %v (stats %+v)", res.Rows, res.Stats)
	}
}

// Platform outages must surface as statement errors without corrupting
// the engine: stored data stays queryable and later crowd calls work.
func TestEngineSurvivesPlatformOutage(t *testing.T) {
	conf := workload.NewConference(10, 32)
	flaky := crowd.NewFlaky(amt.NewDefault(32), 1) // every call fails
	eng, err := Open(Config{
		Platform: flaky,
		Oracle:   conf.Oracle(),
		Payment:  wrm.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	mustExec(t, eng, `CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING, nb_attendees CROWD INTEGER)`)
	mustExec(t, eng, fmt.Sprintf("INSERT INTO Talk (title) VALUES ('%s')", conf.Talks[0].Title))

	if _, err := eng.Exec(fmt.Sprintf("SELECT abstract FROM Talk WHERE title = '%s'", conf.Talks[0].Title)); err == nil {
		t.Fatal("outage must surface as an error")
	}
	if flaky.Fails() == 0 {
		t.Fatal("no failure was injected")
	}
	// Crowd-free statements still work.
	res := mustExec(t, eng, "SELECT COUNT(*) FROM Talk")
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("engine corrupted after outage: %v", res.Rows)
	}
	// Platform recovers: the same crowd query now succeeds.
	flaky.FailEvery = 0
	res = mustExec(t, eng, fmt.Sprintf("SELECT abstract FROM Talk WHERE title = '%s'", conf.Talks[0].Title))
	if res.Rows[0][0].IsUnknown() {
		t.Errorf("query after recovery: %v (%+v)", res.Rows, res.Stats)
	}
}

// Worker no-shows: with a deadline too tight for any answers, the query
// still returns (with CNULLs surviving) instead of hanging.
func TestWorkerNoShowDeadline(t *testing.T) {
	conf := workload.NewConference(10, 33)
	tcfg := taskmgr.DefaultConfig()
	tcfg.MaxWait = time.Minute
	eng, err := Open(Config{
		Platform: amt.NewDefault(33),
		Oracle:   conf.Oracle(),
		Payment:  wrm.DefaultPolicy(),
		Tasks:    tcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	mustExec(t, eng, `CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING, nb_attendees CROWD INTEGER)`)
	mustExec(t, eng, fmt.Sprintf("INSERT INTO Talk (title) VALUES ('%s')", conf.Talks[0].Title))
	res := mustExec(t, eng, "SELECT title, abstract FROM Talk")
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %v", res.Rows)
	}
	if !res.Rows[0][1].IsCNull() {
		t.Errorf("no answers could have arrived in 1 virtual minute: %v", res.Rows[0])
	}
	ts := eng.Tasks().Stats()
	if ts.ExpiredGroups == 0 {
		t.Errorf("deadline must expire the group: %+v", ts)
	}
}

// The comparison budget caps crowd comparisons per query; CROWDORDER then
// degrades deterministically instead of overspending.
func TestCompareBudget(t *testing.T) {
	conf := workload.NewConference(10, 34)
	eng, err := Open(Config{
		Platform:      amt.NewDefault(34),
		Oracle:        conf.Oracle(),
		Payment:       wrm.DefaultPolicy(),
		CompareBudget: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	mustExec(t, eng, `CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING, nb_attendees CROWD INTEGER)`)
	for _, talk := range conf.Talks {
		mustExec(t, eng, fmt.Sprintf("INSERT INTO Talk (title) VALUES ('%s')", talk.Title))
	}
	res := mustExec(t, eng, `SELECT title FROM Talk ORDER BY CROWDORDER(title, "better?")`)
	if res.Stats.Comparisons > 5 {
		t.Errorf("budget exceeded: %+v", res.Stats)
	}
	if res.Stats.BudgetDenied == 0 {
		t.Errorf("denials expected for a 10-row sort with budget 5: %+v", res.Stats)
	}
	if len(res.Rows) != 10 {
		t.Errorf("sort must still return all rows: %d", len(res.Rows))
	}
}

// Checkpointing truncates the WAL while preserving all state.
func TestEngineCheckpoint(t *testing.T) {
	dir := t.TempDir()
	conf := workload.NewConference(10, 35)
	eng, _ := newConferenceEngineWithDir(t, 35, dir, conf)
	q := fmt.Sprintf("SELECT abstract FROM Talk WHERE title = '%s'", conf.Talks[0].Title)
	first := mustExec(t, eng, q)
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, eng, "INSERT INTO Talk (title) VALUES ('post-checkpoint')")
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	eng2, err := Open(Config{
		DataDir:  dir,
		Platform: amt.NewDefault(36),
		Oracle:   conf.Oracle(),
		Payment:  wrm.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	res := mustExec(t, eng2, "SELECT COUNT(*) FROM Talk")
	if res.Rows[0][0].Int() != 11 {
		t.Errorf("rows after checkpoint+WAL recovery: %v", res.Rows)
	}
	res = mustExec(t, eng2, q)
	if res.Stats.ProbeRequests != 0 || res.Rows[0][0].Str() != first.Rows[0][0].Str() {
		t.Errorf("crowd answer lost through checkpoint: %+v", res.Stats)
	}
}

// Property-style equivalence: on randomly generated crowd-free data,
// every optimizer configuration must return identical result sets.
func TestOptimizerEquivalenceOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		eng, err := Open(Config{})
		if err != nil {
			t.Fatal(err)
		}
		mustExec(t, eng, `CREATE TABLE talk (id INTEGER PRIMARY KEY, room STRING, att INTEGER)`)
		mustExec(t, eng, `CREATE TABLE vis (vid INTEGER PRIMARY KEY, tid INTEGER, who STRING)`)
		nTalks := 5 + rng.Intn(20)
		for i := 0; i < nTalks; i++ {
			mustExec(t, eng, fmt.Sprintf("INSERT INTO talk VALUES (%d, 'R%d', %d)", i, rng.Intn(4), rng.Intn(300)))
		}
		nVis := 5 + rng.Intn(40)
		for i := 0; i < nVis; i++ {
			mustExec(t, eng, fmt.Sprintf("INSERT INTO vis VALUES (%d, %d, 'w%d')", i, rng.Intn(nTalks+3), rng.Intn(10)))
		}
		queries := []string{
			"SELECT id FROM talk WHERE att > 100 AND room = 'R1' ORDER BY id",
			"SELECT t.id, v.who FROM talk t JOIN vis v ON v.tid = t.id WHERE t.att >= 50 ORDER BY t.id, v.who",
			"SELECT v.who, COUNT(*) AS c FROM vis v, talk t WHERE v.tid = t.id GROUP BY v.who ORDER BY c DESC, v.who",
			"SELECT DISTINCT room FROM talk ORDER BY room LIMIT 3",
			"SELECT id FROM talk ORDER BY att DESC LIMIT 4",
		}
		configs := []optimizer.Options{
			{},
			{DisablePushdown: true},
			{DisableStopAfter: true},
			{DisableJoinReorder: true},
			{DisablePushdown: true, DisableStopAfter: true, DisableJoinReorder: true},
		}
		for _, q := range queries {
			var baseline string
			for ci, opts := range configs {
				eng.cfg.Optimizer = opts
				res, err := eng.Exec(q)
				if err != nil {
					t.Fatalf("trial %d, config %d, %q: %v", trial, ci, q, err)
				}
				var sb strings.Builder
				for _, row := range res.Rows {
					for _, v := range row {
						sb.WriteString(v.String())
						sb.WriteByte('|')
					}
					sb.WriteByte('\n')
				}
				if ci == 0 {
					baseline = sb.String()
				} else if sb.String() != baseline {
					t.Errorf("trial %d: config %d changed results for %q:\n%s\nvs\n%s",
						trial, ci, q, baseline, sb.String())
				}
			}
		}
		eng.Close()
	}
}

// EXPLAIN must carry cardinality annotations (§3.2.2).
func TestExplainCardinalities(t *testing.T) {
	eng, _ := newConferenceEngine(t, 37, "")
	defer eng.Close()
	res := mustExec(t, eng, "EXPLAIN SELECT title FROM Talk WHERE title = 'X'")
	if !strings.Contains(res.Plan, "rows") {
		t.Errorf("cardinality annotations missing:\n%s", res.Plan)
	}
}
