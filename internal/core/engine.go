// Package core is the CrowdDB engine: it wires the paper's architecture
// (Fig. 1) together — parser, rule-based optimizer and executor on the
// left; UI generation, Task Manager and Worker Relationship Manager on the
// right — and owns durability: DDL is persisted to a schema script, data
// to the WAL, and crowd comparison answers to a system table, so every
// crowd answer is paid for exactly once.
package core

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crowddb/internal/catalog"
	"crowddb/internal/crowd"
	"crowddb/internal/exec"
	"crowddb/internal/faultinject"
	"crowddb/internal/obs"
	"crowddb/internal/optimizer"
	"crowddb/internal/parser"
	"crowddb/internal/plan"
	"crowddb/internal/quality"
	"crowddb/internal/sqltypes"
	"crowddb/internal/storage"
	"crowddb/internal/taskmgr"
	"crowddb/internal/ui"
	"crowddb/internal/wrm"
)

// compareTable is the hidden system table memorizing CrowdCompare answers.
const compareTable = "__crowd_compare"

// compareKey identifies one comparison answer (the system table's PK).
type compareKey struct {
	kind, question, left, right string
}

// Config assembles an engine.
type Config struct {
	// DataDir enables durability when non-empty.
	DataDir string
	// Shards is the storage engine's hash-partition fan-out per table
	// (0 = automatic: one per CPU, capped; a durable store adopts its
	// on-disk count). Scans, probes, and the WAL parallelize per shard.
	Shards int
	// WALSync is the WAL durability mode: storage.SyncAlways,
	// SyncGroup (default — group commit), or SyncOff.
	WALSync storage.SyncMode
	// Platform is the crowdsourcing platform; nil disables crowdsourcing
	// (queries then run on stored data only).
	Platform crowd.Platform
	// Oracle supplies simulated ground truth (see taskmgr.Oracle).
	Oracle taskmgr.Oracle
	// Tasks tunes task posting (reward, replication, deadlines).
	Tasks taskmgr.Config
	// Payment is the WRM policy.
	Payment wrm.PaymentPolicy
	// AllowUnbounded turns the unbounded-crowd-request compile error into
	// a warning.
	AllowUnbounded bool
	// CompareBudget caps crowd comparisons per query (0 = unlimited).
	CompareBudget int
	// CompareCacheCap bounds the resident comparison-cache entries
	// (0 = unbounded). Answers are persisted to the system table when
	// memoized, and a resident miss reads through to it, so a paid
	// answer is never re-purchased — only re-read from storage.
	CompareCacheCap int
	// Optimizer exposes the rule switches (ablation benchmarks).
	Optimizer optimizer.Options
	// SlowQueryThreshold, when positive, dumps the full span tree of any
	// statement or job whose wall time reaches it to SlowQueryLog.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives slow-query span dumps (nil = os.Stderr).
	SlowQueryLog io.Writer
	// DisableObservability turns per-statement tracing off (the metrics
	// registry stays registered but statements record no spans). The
	// overhead benchmark's control arm.
	DisableObservability bool
	// BatchSize overrides the executor's rows-per-batch
	// (0 = exec.DefaultBatchSize; 1 degenerates to row-at-a-time).
	BatchSize int
}

// Result is the outcome of one statement.
type Result struct {
	// Columns names the result columns of a SELECT.
	Columns []string
	// Rows holds the result tuples of a SELECT.
	Rows []storage.Row
	// Affected is the row count of a DML statement.
	Affected int
	// Plan is the EXPLAIN rendering (EXPLAIN only).
	Plan string
	// Warnings carries compile-time diagnostics (boundedness etc.).
	Warnings []string
	// Stats reports the executor's crowd activity for the statement.
	Stats exec.Stats
	// Predicted is the cost model's forecast for the statement (crowd
	// cents, crowd-latency seconds, output rows).
	Predicted plan.Cost
	// ActualCents is the crowd spend the statement actually incurred, in
	// the cost model's units (rewards × replication for every paid probe,
	// solicitation, and comparison).
	ActualCents float64
	// SnapshotTS is the MVCC snapshot the statement read at (SELECT and
	// EXPLAIN): every stored row it saw was committed at or before this
	// timestamp, regardless of what committed while it ran.
	SnapshotTS int64
}

// Engine is a CrowdDB instance. It is safe for concurrent use: SELECT,
// EXPLAIN, and SHOW statements take no engine-level lock at all — each
// SELECT pins an MVCC snapshot and reads a stable cut of the data for its
// whole (possibly minutes-long, crowd-waiting) lifetime, while DML
// commits freely around it. Writers never wait on readers and readers
// never wait on writers; DDL and DML serialize only against each other
// (one writer at a time, preserving statement-granular write semantics).
type Engine struct {
	cfg     Config
	cat     *catalog.Catalog
	store   *storage.Store
	uim     *ui.Manager
	tracker *quality.Tracker
	payer   *wrm.Manager
	tasks   *taskmgr.Manager
	cache   *exec.CompareCache

	// writeMu serializes DDL and DML statements (plus Close/Checkpoint)
	// against each other. Queries never touch it: snapshot isolation —
	// not a statement lock — is what keeps their reads consistent.
	writeMu sync.Mutex

	// persistMu serializes compare-cache persistence; pendingPersist
	// holds entries whose system-table write failed, keyed for O(1)
	// read-through, until a later pass retries them.
	persistMu      sync.Mutex
	pendingPersist map[compareKey]exec.Entry
	// persistHook, when non-nil, is consulted before each system-table
	// write (test seam: injecting per-entry persist failures).
	persistHook func(exec.Entry) error

	// costMu guards the predicted-vs-actual cost-model accounting.
	costMu    sync.Mutex
	costModel CostModelStats

	// Observability: the metrics registry every subsystem exports into,
	// the trace recorder (nil when Config.DisableObservability), a
	// sequence for engine-owned trace ids, and the hot-path counters.
	reg      *obs.Registry
	tracer   *obs.Tracer
	traceSeq atomic.Int64
	obsm     engineMetrics
	opm      *opMetrics
}

// CostModelStats aggregates the cost model's predicted-vs-actual error
// across executed statements (crowd-active SELECTs only). The relative
// error of each statement's cents forecast is averaged; /stats and the
// REPL surface it so drift is visible in production.
type CostModelStats struct {
	// Statements counts crowd-active SELECTs scored.
	Statements int64 `json:"statements"`
	// PredictedCents / ActualCents are running totals.
	PredictedCents float64 `json:"predicted_cents"`
	ActualCents    float64 `json:"actual_cents"`
	// MeanAbsPctErr is the mean |predicted−actual| / max(actual, 1¢)
	// over scored statements, in percent.
	MeanAbsPctErr float64 `json:"mean_abs_pct_err"`
}

// CostModel snapshots the predicted-vs-actual accounting.
func (e *Engine) CostModel() CostModelStats {
	e.costMu.Lock()
	defer e.costMu.Unlock()
	return e.costModel
}

// observeCostError scores one executed statement's forecast.
func (e *Engine) observeCostError(predicted, actual float64) {
	denom := actual
	if denom < 1 {
		denom = 1
	}
	errPct := 100 * math.Abs(predicted-actual) / denom
	e.costMu.Lock()
	defer e.costMu.Unlock()
	n := float64(e.costModel.Statements)
	e.costModel.MeanAbsPctErr = (e.costModel.MeanAbsPctErr*n + errPct) / (n + 1)
	e.costModel.Statements++
	e.costModel.PredictedCents += predicted
	e.costModel.ActualCents += actual
}

// Open builds an engine, replaying any persisted schema and data.
func Open(cfg Config) (*Engine, error) {
	e := &Engine{
		cfg:            cfg,
		cat:            catalog.New(),
		tracker:        quality.NewTracker(),
		cache:          exec.NewCompareCacheSize(cfg.CompareCacheCap),
		pendingPersist: make(map[compareKey]exec.Entry),
	}
	// Evicted answers stay readable: a resident miss falls back to the
	// system table before the crowd is paid again.
	e.cache.ReadThrough = e.lookupPersistedCompare
	store, err := storage.NewStoreOptions(cfg.DataDir, storage.Options{
		Shards: cfg.Shards,
		Sync:   cfg.WALSync,
	})
	if err != nil {
		return nil, err
	}
	e.store = store
	e.uim = ui.NewManager(e.cat)
	e.payer = wrm.New(cfg.Payment, e.tracker)
	if cfg.Platform != nil {
		e.tasks = taskmgr.New(cfg.Platform, e.uim, e.tracker, e.payer, cfg.Oracle, cfg.Tasks)
	}
	// The comparison memo is storage-only (not in the user catalog).
	if err := e.store.CreateTable(compareTable, []int{0, 1, 2, 3}); err != nil {
		return nil, err
	}
	if cfg.DataDir != "" {
		if err := e.replaySchema(); err != nil {
			return nil, err
		}
		if err := e.store.Recover(); err != nil {
			return nil, err
		}
		if err := e.loadCompareCache(); err != nil {
			return nil, err
		}
		e.refreshStats()
	}
	e.uim.GenerateAll()
	e.initObservability()
	return e, nil
}

// Close releases resources (the WAL handles) after in-flight write
// statements finish. Queries hold no engine lock, so the caller is
// responsible for draining them first (the server's job registry does);
// an in-flight read-only statement keeps working against memory.
func (e *Engine) Close() error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	return e.store.Close()
}

// Checkpoint snapshots the store and truncates the WAL.
func (e *Engine) Checkpoint() error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	return e.store.Checkpoint()
}

// Catalog exposes schema metadata (REPL, UI tooling).
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// UI exposes the template manager (Form Editor access).
func (e *Engine) UI() *ui.Manager { return e.uim }

// WRM exposes the worker relationship manager.
func (e *Engine) WRM() *wrm.Manager { return e.payer }

// Tasks exposes the task manager (nil without a platform).
func (e *Engine) Tasks() *taskmgr.Manager { return e.tasks }

// Tracker exposes worker quality scores.
func (e *Engine) Tracker() *quality.Tracker { return e.tracker }

// Cache exposes the shared comparison cache (server stats, experiments).
func (e *Engine) Cache() *exec.CompareCache { return e.cache }

// CacheStats snapshots the shared comparison cache's counters.
func (e *Engine) CacheStats() exec.CacheStats { return e.cache.Stats() }

// schemaPath is the DDL replay script inside the data dir.
func (e *Engine) schemaPath() string { return filepath.Join(e.cfg.DataDir, "schema.sql") }

func (e *Engine) replaySchema() error {
	data, err := os.ReadFile(e.schemaPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	stmts, err := parser.ParseAll(string(data))
	if err != nil {
		return fmt.Errorf("core: corrupt schema script: %w", err)
	}
	for _, s := range stmts {
		if err := e.applyDDL(s, false); err != nil {
			return fmt.Errorf("core: schema replay: %w", err)
		}
	}
	return nil
}

func (e *Engine) appendSchema(ddl string) error {
	if e.cfg.DataDir == "" {
		return nil
	}
	f, err := os.OpenFile(e.schemaPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString(ddl + ";\n")
	return err
}

// refreshStats recomputes per-table row counts and CNULL counts after
// recovery (one bulk snapshot per table, not a Get per row).
func (e *Engine) refreshStats() {
	for _, t := range e.cat.Tables() {
		n, err := e.store.RowCount(t.Name)
		if err != nil {
			continue
		}
		t.SetRowCount(int64(n))
		t.ResetCNullCounts()
		_, rows, err := e.store.ScanRows(t.Name)
		if err != nil {
			continue
		}
		for _, row := range rows {
			for ci, c := range t.Columns {
				if row[ci].IsCNull() {
					t.AdjustCNull(c.Name, 1)
				}
			}
		}
	}
}

// Exec parses and runs a CrowdSQL script (one or more statements) and
// returns the last statement's result.
func (e *Engine) Exec(sql string) (*Result, error) {
	stmts, err := parser.ParseAll(sql)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, s := range stmts {
		r, err := e.ExecStmt(s)
		if err != nil {
			return nil, err
		}
		last = r
	}
	return last, nil
}

// Query is Exec restricted to a single SELECT.
func (e *Engine) Query(sql string) (*Result, error) {
	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	if _, ok := stmt.(*parser.Select); !ok {
		return nil, fmt.Errorf("core: Query requires a SELECT, got %T", stmt)
	}
	return e.ExecStmt(stmt)
}

// RowSink consumes a SELECT's result rows as the executor produces them
// (the jobs API's streaming seam). Returning an error stops the
// statement.
type RowSink = exec.RowSink

// ExecOpts tunes one statement execution. The multi-session server uses
// it to apply per-session crowd budgets on a shared engine and to stream
// job results.
type ExecOpts struct {
	// CompareBudget caps crowd comparisons for this statement. Negative
	// uses the engine default (Config.CompareBudget); 0 is unlimited.
	CompareBudget int
	// Sink, when set, streams a SELECT's rows out as operators produce
	// them; the returned Result's Rows then stay nil. Non-SELECT
	// statements ignore it.
	Sink RowSink
	// OnSchema, when set, is called with the result column names after a
	// SELECT compiles and before its first row is produced (streaming
	// clients need the header ahead of the rows).
	OnSchema func(cols []string)
	// OnStats, when set, always receives the statement's final crowd
	// stats — including when execution fails or is cancelled midway, when
	// the Result carries no stats. Budget settlement for work already
	// paid depends on it.
	OnStats func(exec.Stats)
	// Progress, when set, receives stats snapshots whenever a crowd
	// operator commits to paid work mid-statement (live spend reporting).
	Progress func(exec.Stats)
	// OnSnapshot, when set, receives a SELECT's pinned MVCC snapshot
	// timestamp after the statement compiles and before its first read —
	// the jobs API surfaces it so clients know which database state a
	// long-running query reflects.
	OnSnapshot func(ts int64)
	// Trace, when set, records the statement's span tree into the given
	// trace instead of an engine-owned one (the jobs API threads one
	// trace through every statement of a job). Nil with tracing enabled
	// means the engine starts and finishes its own trace per statement.
	Trace *obs.Trace
}

// DefaultExecOpts defers every knob to the engine configuration.
func DefaultExecOpts() ExecOpts { return ExecOpts{CompareBudget: -1} }

// ExecStmt runs one parsed statement with the engine defaults.
func (e *Engine) ExecStmt(stmt parser.Statement) (*Result, error) {
	return e.ExecStmtOpts(stmt, DefaultExecOpts())
}

// ExecStmtOpts runs one parsed statement with the background context.
func (e *Engine) ExecStmtOpts(stmt parser.Statement, opts ExecOpts) (*Result, error) {
	return e.ExecStmtCtx(context.Background(), stmt, opts)
}

// Execute parses and runs a CrowdSQL script under ctx, returning the last
// statement's result. Cancelling ctx stops the running statement: crowd
// operators stop posting new HIT groups within one scheduler tick,
// queued submissions are withdrawn, singleflight claims are released, and
// opts.OnStats still reports the work already paid for. This is the
// context-aware entry point the jobs API and the client SDK build on.
func (e *Engine) Execute(ctx context.Context, sql string, opts ExecOpts) (*Result, error) {
	parseStart := time.Now()
	stmts, err := parser.ParseAll(sql)
	if err != nil {
		return nil, err
	}
	if opts.Trace != nil {
		psp := opts.Trace.SpanAt(nil, "parse", parseStart, time.Now())
		psp.SetInt("statements", int64(len(stmts)))
	}
	var last *Result
	for _, s := range stmts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := e.ExecStmtCtx(ctx, s, opts)
		if err != nil {
			return nil, err
		}
		last = r
	}
	return last, nil
}

// stmtAttrMax bounds the statement text recorded on a span.
const stmtAttrMax = 200

// ExecStmtCtx runs one parsed statement under ctx. Read-only statements
// (SELECT, EXPLAIN, SHOW) take no lock and run concurrently with
// everything — each SELECT pins an MVCC snapshot instead; DDL and DML
// serialize against each other only, each committing as one transaction.
//
// Every statement records a span tree: into opts.Trace when the caller
// threads one (the jobs API), otherwise into an engine-owned trace that
// is finished — and slow-query-logged past the threshold — when the
// statement returns.
func (e *Engine) ExecStmtCtx(ctx context.Context, stmt parser.Statement, opts ExecOpts) (*Result, error) {
	kind := stmtKind(stmt)
	e.obsm.statements[kind].Inc()
	tr := opts.Trace
	owned := false
	if tr == nil && e.tracer != nil {
		tr = e.tracer.Start(fmt.Sprintf("q%06d", e.traceSeq.Add(1)))
		owned = true
	}
	sp := tr.Span(nil, "statement")
	sp.SetAttr("kind", kind)
	if s := stmt.String(); len(s) <= stmtAttrMax {
		sp.SetAttr("stmt", s)
	} else {
		sp.SetAttr("stmt", s[:stmtAttrMax]+"…")
	}
	res, err := e.execStmt(ctx, stmt, opts, tr, sp)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	if owned {
		e.tracer.Finish(tr)
	}
	return res, err
}

// execStmt dispatches one statement with its trace context threaded.
func (e *Engine) execStmt(ctx context.Context, stmt parser.Statement, opts ExecOpts, tr *obs.Trace, sp *obs.Span) (*Result, error) {
	switch s := stmt.(type) {
	case *parser.Select:
		return e.execSelect(ctx, s, opts, tr, sp)
	case *parser.Explain:
		return e.execExplain(ctx, s, opts, tr, sp)
	case *parser.ShowTables:
		return e.execShowTables()
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	switch s := stmt.(type) {
	case *parser.CreateTable, *parser.CreateIndex, *parser.DropTable:
		if err := e.applyDDL(stmt, true); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *parser.Insert:
		return e.execInsert(s, tr, sp)
	case *parser.Update:
		return e.execUpdate(s, tr, sp)
	case *parser.Delete:
		return e.execDelete(s, tr, sp)
	}
	return nil, fmt.Errorf("core: unsupported statement %T", stmt)
}

func (e *Engine) execShowTables() (*Result, error) {
	res := &Result{Columns: []string{"table", "kind", "rows"}}
	for _, t := range e.cat.Tables() {
		kind := "table"
		if t.Crowd {
			kind = "crowd table"
		} else if t.HasCrowdColumns() {
			kind = "table (crowd columns)"
		}
		res.Rows = append(res.Rows, storage.Row{
			sqltypes.NewString(t.Name), sqltypes.NewString(kind), sqltypes.NewInt(t.RowCount()),
		})
	}
	return res, nil
}

// applyDDL executes a DDL statement; persist controls schema-script append
// (false during replay).
func (e *Engine) applyDDL(stmt parser.Statement, persist bool) error {
	switch s := stmt.(type) {
	case *parser.CreateTable:
		t := &catalog.Table{Name: s.Name, Crowd: s.Crowd, Annotation: s.Annotation, PrimaryKey: s.PrimaryKey}
		for _, c := range s.Columns {
			t.Columns = append(t.Columns, catalog.Column{
				Name: c.Name, Type: c.Type, Crowd: c.Crowd, PrimaryKey: c.PrimaryKey, Annotation: c.Annotation,
			})
		}
		for _, fk := range s.ForeignKeys {
			t.ForeignKeys = append(t.ForeignKeys, catalog.ForeignKey{
				Columns: fk.Columns, RefTable: fk.RefTable, RefColumns: fk.RefColumns,
			})
		}
		if err := e.cat.CreateTable(t); err != nil {
			return err
		}
		if err := e.store.CreateTable(t.Name, t.PrimaryKeyIndexes()); err != nil {
			e.cat.DropTable(t.Name)
			return err
		}
		t.SetShardCount(int64(e.store.NumShards()))
		e.uim.GenerateAll()
		if persist {
			return e.appendSchema(s.String())
		}
		return nil
	case *parser.CreateIndex:
		t, ok := e.cat.Table(s.Table)
		if !ok {
			return fmt.Errorf("core: table %s not found", s.Table)
		}
		cols := make([]int, len(s.Columns))
		for i, c := range s.Columns {
			ci := t.ColumnIndex(c)
			if ci < 0 {
				return fmt.Errorf("core: column %s.%s not found", s.Table, c)
			}
			cols[i] = ci
		}
		if err := e.cat.CreateIndex(&catalog.Index{Name: s.Name, Table: t.Name, Columns: s.Columns, Unique: s.Unique}); err != nil {
			return err
		}
		if err := e.store.CreateIndex(t.Name, s.Name, cols, s.Unique); err != nil {
			return err
		}
		if persist {
			return e.appendSchema(s.String())
		}
		return nil
	case *parser.DropTable:
		if _, ok := e.cat.Table(s.Name); !ok {
			if s.IfExists {
				return nil
			}
			return fmt.Errorf("core: table %s not found", s.Name)
		}
		if err := e.cat.DropTable(s.Name); err != nil {
			return err
		}
		if err := e.store.DropTable(s.Name); err != nil {
			return err
		}
		if persist {
			return e.appendSchema(s.String())
		}
		return nil
	}
	return fmt.Errorf("core: not a DDL statement: %T", stmt)
}

// constEval evaluates a row-independent expression (INSERT values, SET
// right-hand sides without column references).
func constEval(ex parser.Expr) (sqltypes.Value, error) {
	return exec.EvalConst(ex)
}

// commitTraced commits a DML statement's transaction under a "commit"
// span (the span covers watermark advancement; WAL fsync latency is
// measured separately, per shard, by the storage histograms).
func (e *Engine) commitTraced(tx *storage.Txn, tr *obs.Trace, sp *obs.Span) {
	csp := tr.Span(sp, "commit")
	tx.Commit()
	csp.End()
}

func (e *Engine) execInsert(s *parser.Insert, tr *obs.Trace, sp *obs.Span) (*Result, error) {
	t, ok := e.cat.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("core: table %s not found", s.Table)
	}
	cols := s.Columns
	if len(cols) == 0 {
		for _, c := range t.Columns {
			cols = append(cols, c.Name)
		}
	}
	colIdx := make([]int, len(cols))
	for i, c := range cols {
		ci := t.ColumnIndex(c)
		if ci < 0 {
			return nil, fmt.Errorf("core: column %s.%s not found", s.Table, c)
		}
		colIdx[i] = ci
	}
	// One transaction per statement: every row of a multi-row INSERT
	// becomes visible to new snapshots together. Commit always runs —
	// rows applied before a mid-statement error stay applied (the
	// engine's established partial-application semantics).
	tx := e.store.Begin()
	defer e.commitTraced(tx, tr, sp)
	inserted := 0
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(cols) {
			return nil, fmt.Errorf("core: INSERT value count %d does not match column count %d", len(exprRow), len(cols))
		}
		row := make(storage.Row, len(t.Columns))
		// Unlisted crowd columns default to CNULL ("source on first use"),
		// unlisted plain columns to NULL.
		for ci, c := range t.Columns {
			if c.Crowd {
				row[ci] = sqltypes.CNull()
			} else {
				row[ci] = sqltypes.Null()
			}
		}
		for i, ex := range exprRow {
			v, err := constEval(ex)
			if err != nil {
				return nil, err
			}
			cv, err := v.Coerce(t.Columns[colIdx[i]].Type)
			if err != nil {
				return nil, fmt.Errorf("core: column %s: %w", cols[i], err)
			}
			row[colIdx[i]] = cv
		}
		if _, err := tx.Insert(t.Name, row); err != nil {
			return nil, err
		}
		t.AddRowCount(1)
		for ci, c := range t.Columns {
			if row[ci].IsCNull() {
				t.AdjustCNull(c.Name, 1)
			}
		}
		inserted++
	}
	return &Result{Affected: inserted}, nil
}

func (e *Engine) execUpdate(s *parser.Update, tr *obs.Trace, sp *obs.Span) (*Result, error) {
	t, ok := e.cat.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("core: table %s not found", s.Table)
	}
	scan := plan.NewScan(t, "")
	schema := scan.Schema()
	for _, a := range s.Set {
		if t.ColumnIndex(a.Column) < 0 {
			return nil, fmt.Errorf("core: column %s.%s not found", s.Table, a.Column)
		}
	}
	ids, rows, err := e.store.ScanRows(t.Name)
	if err != nil {
		return nil, err
	}
	// One transaction per statement: all matched rows flip to the new
	// version together from any new snapshot's point of view.
	tx := e.store.Begin()
	defer e.commitTraced(tx, tr, sp)
	affected := 0
	for i, row := range rows {
		id := ids[i]
		match, err := exec.RowMatches(s.Where, row, schema)
		if err != nil {
			return nil, err
		}
		if !match {
			continue
		}
		updated := row.Clone()
		for _, a := range s.Set {
			ci := t.ColumnIndex(a.Column)
			v, err := exec.EvalRow(a.Value, updated, schema)
			if err != nil {
				return nil, err
			}
			cv, err := v.Coerce(t.Columns[ci].Type)
			if err != nil {
				return nil, fmt.Errorf("core: column %s: %w", a.Column, err)
			}
			if row[ci].IsCNull() && !cv.IsCNull() {
				t.AdjustCNull(t.Columns[ci].Name, -1)
			} else if !row[ci].IsCNull() && cv.IsCNull() {
				t.AdjustCNull(t.Columns[ci].Name, 1)
			}
			updated[ci] = cv
		}
		if err := tx.Update(t.Name, id, updated); err != nil {
			return nil, err
		}
		affected++
	}
	return &Result{Affected: affected}, nil
}

func (e *Engine) execDelete(s *parser.Delete, tr *obs.Trace, sp *obs.Span) (*Result, error) {
	t, ok := e.cat.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("core: table %s not found", s.Table)
	}
	scan := plan.NewScan(t, "")
	schema := scan.Schema()
	ids, rows, err := e.store.ScanRows(t.Name)
	if err != nil {
		return nil, err
	}
	// One transaction per statement: all matched rows disappear together
	// from any new snapshot's point of view.
	tx := e.store.Begin()
	defer e.commitTraced(tx, tr, sp)
	affected := 0
	for i, row := range rows {
		id := ids[i]
		match, err := exec.RowMatches(s.Where, row, schema)
		if err != nil {
			return nil, err
		}
		if !match {
			continue
		}
		for ci, c := range t.Columns {
			if row[ci].IsCNull() {
				t.AdjustCNull(c.Name, -1)
			}
		}
		if err := tx.Delete(t.Name, id); err != nil {
			return nil, err
		}
		t.AddRowCount(-1)
		affected++
	}
	return &Result{Affected: affected}, nil
}

func (e *Engine) compile(s *parser.Select) (*optimizer.Result, error) {
	root, err := plan.Build(s, e.cat)
	if err != nil {
		return nil, err
	}
	opts := e.cfg.Optimizer
	opts.AllowUnbounded = opts.AllowUnbounded || e.cfg.AllowUnbounded
	opts.Cost = e.costInputs()
	return optimizer.Optimize(root, e.cat, opts)
}

// costInputs assembles the live numbers the cost model prices plans with:
// the task manager's pricing and observed round-trip latency plus the
// shared comparison cache's hit rate — the runtime feedback loop.
func (e *Engine) costInputs() optimizer.CostInputs {
	ci := optimizer.DefaultCostInputs()
	if e.tasks != nil {
		cfg := e.tasks.Config()
		ci.RewardCents = float64(cfg.Reward)
		ci.CompareAssignments = float64(cfg.Assignments)
		ci.TupleAssignments = float64(cfg.NewTupleAssignments)
		ci.Window = float64(cfg.MaxInFlight)
		if p50, _, n := e.tasks.LatencyStats(); n > 0 && p50 > 0 {
			ci.RoundTripSeconds = p50.Seconds()
		}
		if cfg.ModelPlatform != nil {
			// Escalation routing: plans price the blended model-first
			// rate with the observed escalation rate fed back in.
			ci.ModelRewardCents = float64(cfg.ModelReward)
			ci.ModelAssignments = float64(cfg.ModelAssignments)
			ci.EscalationRate = e.tasks.EscalationRate()
		}
	}
	cs := e.cache.Stats()
	if resolved := cs.Hits + cs.Misses + cs.Shared; resolved > 0 {
		ci.CacheHitRate = float64(cs.Hits+cs.Shared) / float64(resolved)
	}
	// Machine side: parallel scans fan out across shards, bounded by the
	// CPU workers actually available.
	ci.MachineParallelism = float64(runtime.GOMAXPROCS(0))
	return ci
}

// PriceStats prices measured crowd activity in the cost model's units —
// the jobs API reports a running "cents spent so far" from progress
// snapshots with it.
func (e *Engine) PriceStats(st exec.Stats) float64 { return e.actualCents(st) }

// CostPerComparisonCents is the price of one paid crowd comparison under
// the current task configuration (reward × replication, blended with the
// model tier when escalation routing is on); 0 without a crowd platform.
// Admission control converts cents forecasts into the session budget's
// comparison units with it.
func (e *Engine) CostPerComparisonCents() float64 {
	if e.tasks == nil {
		return 0
	}
	return e.comparisonUnitCents()
}

// comparisonUnitCents / tupleUnitCents price one comparison (or probe)
// and one solicited tuple: the pure human rate, or the blended
// model-first rate — every question pays the model tier, the escalated
// fraction additionally pays humans — when routing is enabled.
func (e *Engine) comparisonUnitCents() float64 {
	cfg := e.tasks.Config()
	human := float64(cfg.Reward) * float64(cfg.Assignments)
	if cfg.ModelPlatform == nil {
		return human
	}
	return float64(cfg.ModelReward)*float64(cfg.ModelAssignments) + e.tasks.EscalationRate()*human
}

func (e *Engine) tupleUnitCents() float64 {
	cfg := e.tasks.Config()
	human := float64(cfg.Reward) * float64(cfg.NewTupleAssignments)
	if cfg.ModelPlatform == nil {
		return human
	}
	return float64(cfg.ModelReward)*float64(cfg.NewTupleAssignments) + e.tasks.EscalationRate()*human
}

// Forecast compiles a statement and returns the optimizer's cost
// forecast without executing anything — the submit-time admission
// check's input. ok is false for statements the cost model does not
// price (DDL/DML and plain EXPLAIN cost the crowd nothing; compile
// errors surface at execution, not admission).
func (e *Engine) Forecast(stmt parser.Statement) (plan.Cost, bool) {
	switch s := stmt.(type) {
	case *parser.Select:
		opt, err := e.compile(s)
		if err != nil {
			return plan.Cost{}, false
		}
		return opt.Predicted, true
	case *parser.Explain:
		if s.Analyze {
			// EXPLAIN ANALYZE executes for real: forecast the inner query.
			return e.Forecast(s.Stmt)
		}
	}
	return plan.Cost{}, false
}

// actualCents prices a statement's measured crowd activity in the cost
// model's units: every probe and comparison pays reward × replication,
// every solicited tuple reward × tuple replication — each blended with
// the model tier's rate when escalation routing is on.
func (e *Engine) actualCents(st exec.Stats) float64 {
	if e.tasks == nil {
		return 0
	}
	return float64(st.Comparisons+st.ProbeRequests)*e.comparisonUnitCents() +
		float64(st.NewTupleRequests)*e.tupleUnitCents()
}

func (e *Engine) execSelect(ctx context.Context, s *parser.Select, opts ExecOpts, tr *obs.Trace, sp *obs.Span) (*Result, error) {
	opt, err := e.compileTraced(s, tr, sp)
	if err != nil {
		return nil, err
	}
	return e.runSelect(ctx, opt, opts, tr, sp, nil)
}

// compileTraced compiles a SELECT under an "optimize" span carrying the
// chosen plan's cost snapshot.
func (e *Engine) compileTraced(s *parser.Select, tr *obs.Trace, sp *obs.Span) (*optimizer.Result, error) {
	osp := tr.Span(sp, "optimize")
	opt, err := e.compile(s)
	if err != nil {
		osp.SetAttr("error", err.Error())
		osp.End()
		return nil, err
	}
	osp.SetAttr("predicted", opt.Predicted.String())
	osp.SetAttr("bounded", fmt.Sprintf("%v", opt.Bounded))
	osp.End()
	return opt, nil
}

// runSelect executes a compiled SELECT. opStats, when non-nil, collects
// per-plan-node actuals (EXPLAIN ANALYZE); passing it also forces the
// instrumented operator shells on even when tracing is off.
func (e *Engine) runSelect(ctx context.Context, opt *optimizer.Result, opts ExecOpts, tr *obs.Trace, sp *obs.Span, opStats map[plan.Node]*exec.OpStats) (*Result, error) {
	budget := e.cfg.CompareBudget
	if opts.CompareBudget >= 0 {
		budget = opts.CompareBudget
	}
	// Pin the statement's snapshot: every stored-data read — across
	// crowd waits that may last minutes — sees exactly the rows
	// committed at this timestamp. Released when the statement finishes
	// so version GC can reclaim what only this snapshot could see.
	snap := e.store.AcquireSnapshot()
	snapSpan := tr.Span(sp, "snapshot")
	snapSpan.SetInt("ts", snap.TS())
	defer func() {
		snap.Release()
		snapSpan.End()
	}()
	if opts.OnSnapshot != nil {
		opts.OnSnapshot(snap.TS())
	}
	ectx := &exec.Ctx{
		Store:         e.store,
		Cat:           e.cat,
		Tasks:         e.tasks,
		Cache:         e.cache,
		CompareBudget: budget,
		BatchSize:     e.cfg.BatchSize,
		SnapshotTS:    snap.TS(),
		Context:       ctx,
		Progress:      opts.Progress,
		Trace:         tr,
		OpStats:       opStats,
	}
	if e.opm != nil {
		ectx.OpMetrics = e.opm
	}
	// Crowd counters fold in even when the statement errors or is
	// cancelled midway — like the stats observer below, they account for
	// work already paid.
	defer func() { e.noteCrowdStats(ectx.Stats) }()
	// The stats observer fires even when the statement errors or is
	// cancelled midway: the crowd work already committed must reach the
	// caller's budget settlement, and the Result cannot carry it then.
	if opts.OnStats != nil {
		defer func() { opts.OnStats(ectx.Stats) }()
	}
	var cols []string
	for _, c := range opt.Root.Schema() {
		cols = append(cols, c.Name)
	}
	if opts.OnSchema != nil {
		opts.OnSchema(cols)
	}
	execSpan := tr.Span(sp, "execute")
	ectx.Span = execSpan
	defer execSpan.End()
	e.installSubqueryRunner(ectx, 0)
	op, err := exec.Build(opt.Root, ectx)
	if err != nil {
		return nil, err
	}
	var rows []storage.Row
	if opts.Sink != nil {
		err = exec.RunSink(op, ectx, opts.Sink)
	} else {
		rows, err = exec.Run(op, ectx)
	}
	// Answers paid for before a failure or cancellation are still
	// memoized: persist them so they are never re-purchased.
	if _, perr := e.persistCompareCache(); err == nil {
		err = perr
	}
	if err != nil {
		return nil, err
	}
	res := &Result{Rows: rows, Warnings: opt.Warnings, Stats: ectx.Stats, SnapshotTS: snap.TS()}
	res.Predicted = opt.Predicted
	res.ActualCents = e.actualCents(ectx.Stats)
	if e.tasks != nil && !opt.Predicted.IsUnbounded() &&
		(opt.Predicted.Cents > 0 || res.ActualCents > 0) {
		e.observeCostError(opt.Predicted.Cents, res.ActualCents)
	}
	res.Columns = cols
	return res, nil
}

// maxSubqueryDepth bounds IN-subquery nesting.
const maxSubqueryDepth = 8

// installSubqueryRunner wires uncorrelated IN-subquery execution into an
// execution context. Each subquery compiles and runs like a top-level
// SELECT (sharing store, crowd, and cache); its single output column
// becomes the IN list.
func (e *Engine) installSubqueryRunner(ctx *exec.Ctx, depth int) {
	ctx.RunSubquery = func(sel *parser.Select) ([]sqltypes.Value, error) {
		if depth+1 >= maxSubqueryDepth {
			return nil, fmt.Errorf("core: subqueries nested deeper than %d", maxSubqueryDepth)
		}
		opt, err := e.compile(sel)
		if err != nil {
			return nil, fmt.Errorf("core: subquery: %w", err)
		}
		if len(opt.Root.Schema()) != 1 {
			return nil, fmt.Errorf("core: IN subquery must return exactly one column, got %d", len(opt.Root.Schema()))
		}
		// The subquery spends from the statement's remaining budget, not
		// a fresh copy — its Comparisons merge into ctx.Stats below, so
		// the outer query's later checks see the combined spend too.
		budget := ctx.CompareBudget
		if budget > 0 {
			if remaining := budget - ctx.Stats.Comparisons; remaining > 0 {
				budget = remaining
			} else {
				budget = -1 // exhausted: deny, do not grant unlimited
			}
		}
		sub := &exec.Ctx{
			Store:         ctx.Store,
			Cat:           ctx.Cat,
			Tasks:         ctx.Tasks,
			Cache:         ctx.Cache,
			CompareBudget: budget,
			BatchSize:     ctx.BatchSize,
			SnapshotTS:    ctx.SnapshotTS, // one snapshot for the whole statement
			Context:       ctx.Context,
			// The subquery's spans nest under the operator evaluating the
			// IN predicate at call time.
			Trace: ctx.Trace,
			Span:  ctx.Span,
		}
		// Live-progress observers see the outer statement's totals plus
		// the subquery's running snapshot — never the subquery's counts
		// alone, which would make reported spend regress mid-statement.
		// The subquery runs on the calling goroutine, so reading
		// ctx.Stats here is race-free.
		if ctx.Progress != nil {
			sub.Progress = func(st exec.Stats) { ctx.Progress(ctx.Stats.Add(st)) }
		}
		e.installSubqueryRunner(sub, depth+1)
		op, err := exec.Build(opt.Root, sub)
		if err != nil {
			return nil, err
		}
		rows, err := exec.Run(op, sub)
		// Crowd work the subquery already paid for must reach the outer
		// statement's stats even when it fails or is cancelled mid-flight:
		// budget settlement reads the outer ctx.Stats (via OnStats).
		ctx.Stats = ctx.Stats.Add(sub.Stats)
		if err != nil {
			return nil, err
		}
		vals := make([]sqltypes.Value, len(rows))
		for i, r := range rows {
			vals[i] = r[0]
		}
		return vals, nil
	}
}

func (e *Engine) execExplain(ctx context.Context, s *parser.Explain, opts ExecOpts, tr *obs.Trace, sp *obs.Span) (*Result, error) {
	sel, ok := s.Stmt.(*parser.Select)
	if !ok {
		return nil, fmt.Errorf("core: EXPLAIN supports SELECT only")
	}
	opt, err := e.compileTraced(sel, tr, sp)
	if err != nil {
		return nil, err
	}
	// EXPLAIN ANALYZE runs the statement for real — crowd work, spend,
	// budget, and all — discarding the rows; the per-operator actuals it
	// measures annotate the plan next to the optimizer's predictions.
	var opStats map[plan.Node]*exec.OpStats
	var analyzed *Result
	if s.Analyze {
		run := opts
		run.Sink = nil
		run.OnSchema = nil
		opStats = make(map[plan.Node]*exec.OpStats)
		analyzed, err = e.runSelect(ctx, opt, run, tr, sp, opStats)
		if err != nil {
			return nil, err
		}
	}
	var cfg taskmgr.Config
	if e.tasks != nil {
		cfg = e.tasks.Config()
	}
	var sb strings.Builder
	sb.WriteString(plan.ExplainTreeAnnotated(opt.Root, func(n plan.Node) string {
		var parts []string
		if card, ok := opt.Cards[n]; ok {
			parts = append(parts, fmt.Sprintf("~%.0f rows", card))
		}
		if cost, ok := opt.Costs[n]; ok {
			parts = append(parts, cost.String())
		}
		if st, ok := opStats[n]; ok {
			actual := fmt.Sprintf("(actual: %d rows, %s, ¢%.1f",
				st.RowsOut, time.Duration(st.WallNanos).Round(time.Microsecond), st.Cents(cfg))
			if st.PeakBufferedRows > 0 {
				actual += fmt.Sprintf(", peak %d buffered", st.PeakBufferedRows)
			}
			parts = append(parts, actual+")")
		}
		return strings.Join(parts, "  ")
	}))
	fmt.Fprintf(&sb, "bounded: %v\n", opt.Bounded)
	fmt.Fprintf(&sb, "predicted: %s\n", opt.Predicted)
	// EXPLAIN reads no rows; it reports the watermark a SELECT compiled
	// right now would pin. ANALYZE reports the snapshot it executed at.
	res := &Result{Plan: sb.String(), Warnings: opt.Warnings, Predicted: opt.Predicted, SnapshotTS: e.store.VisibleTS()}
	if analyzed != nil {
		fmt.Fprintf(&sb, "actual: ¢%.1f, %d comparisons, %d rows\n",
			analyzed.ActualCents, analyzed.Stats.Comparisons, len(analyzed.Rows))
		res.Plan = sb.String()
		res.Stats = analyzed.Stats
		res.ActualCents = analyzed.ActualCents
		res.SnapshotTS = analyzed.SnapshotTS
	}
	return res, nil
}

// lookupPersistedCompare reads one comparison answer from the system
// table (the cache's ReadThrough: resident misses check durable storage
// before paying the crowd again). left/right arrive normalized. Entries
// drained from the cache but not yet written (persist in progress or
// retrying after an error) are covered by the keyed pending map — an
// O(1) probe, so a large retry backlog cannot serialize read-through.
// The storage probe deliberately reads the LATEST committed state, not
// any statement snapshot: answer reuse must see answers as soon as any
// session persists them.
func (e *Engine) lookupPersistedCompare(kind, question, left, right string) (string, bool) {
	e.persistMu.Lock()
	if en, ok := e.pendingPersist[compareKey{kind, question, left, right}]; ok {
		e.persistMu.Unlock()
		return en.Answer, true
	}
	e.persistMu.Unlock()
	_, row, ok := e.store.LookupPKRow(compareTable,
		sqltypes.NewString(kind), sqltypes.NewString(question),
		sqltypes.NewString(left), sqltypes.NewString(right))
	if !ok || len(row) != 5 {
		return "", false
	}
	return row[4].Str(), true
}

// FlushCompareAnswers makes every comparison answer memoized since the
// last flush durable and returns how many entries reached the system
// table. The jobs journal charges budget spend by this count — answers
// are charged when (and only when) they become durable, so a crash can
// never double-charge a session for an answer recovery cannot reuse.
func (e *Engine) FlushCompareAnswers() (int, error) {
	return e.persistCompareCache()
}

// persistCompareCache writes the comparison answers memoized since the
// last pass to the system table and reports how many were written. Only
// the deltas are walked — the resident cache is cross-session and can be
// large. An entry whose write fails is skipped and retained for the next
// pass; the rest of the batch still persists (no head-of-line blocking:
// one poisoned entry must not keep every later healthy answer out of the
// system table). The first error is reported after the full sweep.
func (e *Engine) persistCompareCache() (int, error) {
	if faultinject.Killed() {
		// Simulated crash: nothing more reaches disk; the entries stay
		// dirty in memory, exactly like a torn process's lost writes.
		return 0, nil
	}
	e.persistMu.Lock()
	defer e.persistMu.Unlock()
	for _, en := range e.cache.TakeDirty() {
		e.pendingPersist[compareKey{en.Kind, en.Question, en.Left, en.Right}] = en
	}
	if len(e.pendingPersist) == 0 {
		return 0, nil
	}
	keys := make([]compareKey, 0, len(e.pendingPersist))
	for k := range e.pendingPersist {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.question != b.question {
			return a.question < b.question
		}
		if a.left != b.left {
			return a.left < b.left
		}
		return a.right < b.right
	})
	var firstErr error
	persisted := 0
	for _, k := range keys {
		if err := e.persistEntryLocked(e.pendingPersist[k]); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		delete(e.pendingPersist, k)
		persisted++
	}
	return persisted, firstErr
}

// persistEntryLocked writes one cache entry; an entry already in the
// system table (duplicate key) is a no-op. Caller holds persistMu.
func (e *Engine) persistEntryLocked(entry exec.Entry) error {
	if e.persistHook != nil {
		if err := e.persistHook(entry); err != nil {
			return err
		}
	}
	row := storage.Row{
		sqltypes.NewString(entry.Kind),
		sqltypes.NewString(entry.Question),
		sqltypes.NewString(entry.Left),
		sqltypes.NewString(entry.Right),
		sqltypes.NewString(entry.Answer),
	}
	if _, err := e.store.Insert(compareTable, row); err != nil {
		if _, dup := err.(*storage.DuplicateKeyError); !dup {
			return err
		}
	}
	return nil
}

func (e *Engine) loadCompareCache() error {
	_, rows, err := e.store.ScanRows(compareTable)
	if err != nil {
		return err
	}
	var entries []exec.Entry
	for _, row := range rows {
		if len(row) != 5 {
			continue
		}
		entries = append(entries, exec.Entry{
			Kind: row[0].Str(), Question: row[1].Str(),
			Left: row[2].Str(), Right: row[3].Str(), Answer: row[4].Str(),
		})
	}
	e.cache.Load(entries)
	return nil
}
