package core

import (
	"strings"
	"testing"

	"crowddb/internal/crowd/amt"
	"crowddb/internal/quality"
	"crowddb/internal/sqltypes"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

// newConferenceEngine builds an engine over the simulated AMT with the
// demo paper's conference schema and workload oracle.
func newConferenceEngine(t *testing.T, seed int64, dir string) (*Engine, *workload.Conference) {
	t.Helper()
	conf := workload.NewConference(20, seed)
	eng, err := Open(Config{
		DataDir:  dir,
		Platform: amt.NewDefault(seed),
		Oracle:   conf.Oracle(),
		Payment:  wrm.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, eng, `CREATE TABLE Talk (
		title STRING PRIMARY KEY,
		abstract CROWD STRING,
		nb_attendees CROWD INTEGER )`)
	mustExec(t, eng, `CREATE CROWD TABLE NotableAttendee (
		name STRING PRIMARY KEY,
		title STRING,
		FOREIGN KEY (title) REF Talk(title) )`)
	for _, talk := range conf.Talks[:10] {
		mustExec(t, eng, "INSERT INTO Talk (title) VALUES ("+sqltypes.NewString(talk.Title).SQLLiteral()+")")
	}
	return eng, conf
}

func mustExec(t *testing.T, e *Engine, sql string) *Result {
	t.Helper()
	r, err := e.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return r
}

func TestDDLAndDML(t *testing.T) {
	eng, _ := newConferenceEngine(t, 1, "")
	defer eng.Close()
	res := mustExec(t, eng, "SHOW TABLES")
	if len(res.Rows) != 2 {
		t.Fatalf("tables: %v", res.Rows)
	}
	res = mustExec(t, eng, "SELECT COUNT(*) FROM Talk")
	if res.Rows[0][0].Int() != 10 {
		t.Errorf("count: %v", res.Rows)
	}
	res = mustExec(t, eng, "UPDATE Talk SET nb_attendees = 42 WHERE title LIKE '%1'")
	if res.Affected == 0 {
		t.Error("update affected nothing")
	}
	res = mustExec(t, eng, "DELETE FROM Talk WHERE nb_attendees = 42")
	if res.Affected == 0 {
		t.Error("delete affected nothing")
	}
}

// Paper §1: "SELECT abstract FROM paper WHERE title = 'CrowdDB'" must not
// return empty — the crowd fills the missing abstract (Example 1 / Fig 2).
func TestCrowdProbeFillsMissingAbstract(t *testing.T) {
	eng, conf := newConferenceEngine(t, 2, "")
	defer eng.Close()
	title := conf.Talks[0].Title
	res := mustExec(t, eng, "SELECT abstract FROM Talk WHERE title = "+sqltypes.NewString(title).SQLLiteral())
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %v", res.Rows)
	}
	got := res.Rows[0][0]
	if got.IsUnknown() {
		t.Fatalf("abstract still unknown: %v (stats %+v)", got, res.Stats)
	}
	if quality.Normalize(got.Str()) != quality.Normalize(conf.Talks[0].Abstract) {
		t.Errorf("abstract: %q want %q", got.Str(), conf.Talks[0].Abstract)
	}
	if res.Stats.ProbeRequests != 1 {
		t.Errorf("probe requests: %+v", res.Stats)
	}
}

// §3: "Results obtained from the crowd are always stored in the database
// for future use" — the second identical query asks the crowd nothing.
func TestCrowdAnswersMemorized(t *testing.T) {
	eng, conf := newConferenceEngine(t, 3, "")
	defer eng.Close()
	q := "SELECT abstract FROM Talk WHERE title = " + sqltypes.NewString(conf.Talks[1].Title).SQLLiteral()
	r1 := mustExec(t, eng, q)
	if r1.Stats.ProbeRequests != 1 {
		t.Fatalf("first run must probe: %+v", r1.Stats)
	}
	r2 := mustExec(t, eng, q)
	if r2.Stats.ProbeRequests != 0 {
		t.Errorf("second run must hit storage: %+v", r2.Stats)
	}
	if r1.Rows[0][0].Str() != r2.Rows[0][0].Str() {
		t.Error("memorized answer differs")
	}
}

// Example 2: joining a stored table with a CROWD table solicits new tuples
// bound by the join key (CrowdJoin).
func TestCrowdJoinSolicitsTuples(t *testing.T) {
	eng, conf := newConferenceEngine(t, 4, "")
	defer eng.Close()
	title := conf.Talks[2].Title
	res := mustExec(t, eng,
		"SELECT n.name FROM Talk t JOIN NotableAttendee n ON n.title = t.title WHERE t.title = "+
			sqltypes.NewString(title).SQLLiteral())
	if len(res.Rows) == 0 {
		t.Fatalf("join produced nothing: %+v", res.Stats)
	}
	if res.Stats.NewTupleRequests == 0 {
		t.Errorf("crowd join must solicit tuples: %+v", res.Stats)
	}
	// Contributed names should come from the ground truth set.
	truthNames := map[string]bool{}
	for _, n := range conf.Notable[title] {
		truthNames[quality.Normalize(n)] = true
	}
	hits := 0
	for _, row := range res.Rows {
		if truthNames[quality.Normalize(row[0].Str())] {
			hits++
		}
	}
	if hits == 0 {
		t.Errorf("no contributed tuple matches truth: %v", res.Rows)
	}
}

// Example 3: CROWDORDER ranks talks by crowd preference.
func TestCrowdOrderRanking(t *testing.T) {
	eng, conf := newConferenceEngine(t, 5, "")
	defer eng.Close()
	res := mustExec(t, eng,
		`SELECT title FROM Talk ORDER BY CROWDORDER(title, "Which talk did you like better") LIMIT 5`)
	if len(res.Rows) != 5 {
		t.Fatalf("rows: %v", res.Rows)
	}
	if res.Stats.Comparisons == 0 {
		t.Error("crowd order must compare")
	}
	// The top result should be among the true top half.
	ranking := conf.PreferenceRanking()
	topHalf := map[string]bool{}
	for _, title := range ranking[:len(ranking)/2] {
		topHalf[title] = true
	}
	// Only the 10 stored talks participate.
	if !topHalf[res.Rows[0][0].Str()] {
		t.Logf("warning: top pick %q not in global top half (crowd noise)", res.Rows[0][0].Str())
	}
}

// CROWDEQUAL entity resolution with the ~= shorthand.
func TestCrowdEqualPredicate(t *testing.T) {
	comp := workload.NewCompanies(8, 6)
	eng, err := Open(Config{
		Platform: amt.NewDefault(6),
		Oracle:   comp.Oracle(),
		Payment:  wrm.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	mustExec(t, eng, `CREATE TABLE company (name STRING PRIMARY KEY, hq STRING)`)
	for _, c := range comp.List {
		mustExec(t, eng, "INSERT INTO company VALUES ("+
			sqltypes.NewString(c.Canonical).SQLLiteral()+", "+
			sqltypes.NewString(c.HQ).SQLLiteral()+")")
	}
	variant := comp.List[0].Variants[len(comp.List[0].Variants)-1] // lower-cased canonical
	res := mustExec(t, eng, "SELECT hq FROM company WHERE name ~= "+sqltypes.NewString(variant).SQLLiteral())
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != comp.List[0].HQ {
		t.Errorf("entity resolution failed: %v (stats %+v)", res.Rows, res.Stats)
	}
	// Comparison answers are cached: re-running costs no crowd comparisons.
	res2 := mustExec(t, eng, "SELECT hq FROM company WHERE name ~= "+sqltypes.NewString(variant).SQLLiteral())
	if res2.Stats.Comparisons != 0 {
		t.Errorf("comparisons must be cached: %+v", res2.Stats)
	}
	if res2.Stats.CacheHits == 0 {
		t.Errorf("cache hits expected: %+v", res2.Stats)
	}
}

func TestUnboundedQueryRejected(t *testing.T) {
	eng, _ := newConferenceEngine(t, 7, "")
	defer eng.Close()
	if _, err := eng.Exec("SELECT name FROM NotableAttendee"); err == nil {
		t.Fatal("unbounded crowd query must fail at compile time")
	}
	// With LIMIT it becomes a bounded acquisition.
	res := mustExec(t, eng, "SELECT name FROM NotableAttendee LIMIT 3")
	if len(res.Rows) > 3 {
		t.Errorf("limit violated: %v", res.Rows)
	}
}

func TestExplain(t *testing.T) {
	eng, _ := newConferenceEngine(t, 8, "")
	defer eng.Close()
	res := mustExec(t, eng, "EXPLAIN SELECT abstract FROM Talk WHERE title = 'X'")
	for _, want := range []string{"ProbeScan(Talk)", "ask=[abstract]", "bounded: true"} {
		if !strings.Contains(res.Plan, want) {
			t.Errorf("explain missing %q:\n%s", want, res.Plan)
		}
	}
	if _, err := eng.Exec("EXPLAIN INSERT INTO Talk (title) VALUES ('x')"); err == nil {
		t.Error("EXPLAIN DML must fail")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	conf := workload.NewConference(20, 9)

	eng, _ := newConferenceEngineWithDir(t, 9, dir, conf)
	title := conf.Talks[0].Title
	q := "SELECT abstract FROM Talk WHERE title = " + sqltypes.NewString(title).SQLLiteral()
	r1 := mustExec(t, eng, q)
	if r1.Stats.ProbeRequests != 1 {
		t.Fatalf("first probe: %+v", r1.Stats)
	}
	// Also cache a comparison.
	mustExec(t, eng, "SELECT title FROM Talk WHERE title ~= "+sqltypes.NewString(strings.ToUpper(title)).SQLLiteral())
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: schema, data, crowd answers, and the comparison memo persist.
	eng2, err := Open(Config{
		DataDir:  dir,
		Platform: amt.NewDefault(10),
		Oracle:   conf.Oracle(),
		Payment:  wrm.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	res := mustExec(t, eng2, "SHOW TABLES")
	if len(res.Rows) != 2 {
		t.Fatalf("schema lost: %v", res.Rows)
	}
	r2 := mustExec(t, eng2, q)
	if r2.Stats.ProbeRequests != 0 {
		t.Errorf("crowd answer lost across restart: %+v", r2.Stats)
	}
	if r2.Rows[0][0].Str() != r1.Rows[0][0].Str() {
		t.Error("persisted abstract differs")
	}
	r3 := mustExec(t, eng2, "SELECT title FROM Talk WHERE title ~= "+sqltypes.NewString(strings.ToUpper(title)).SQLLiteral())
	if r3.Stats.Comparisons != 0 {
		t.Errorf("comparison memo lost across restart: %+v", r3.Stats)
	}
}

func newConferenceEngineWithDir(t *testing.T, seed int64, dir string, conf *workload.Conference) (*Engine, *workload.Conference) {
	t.Helper()
	eng, err := Open(Config{
		DataDir:  dir,
		Platform: amt.NewDefault(seed),
		Oracle:   conf.Oracle(),
		Payment:  wrm.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, eng, `CREATE TABLE Talk (
		title STRING PRIMARY KEY,
		abstract CROWD STRING,
		nb_attendees CROWD INTEGER )`)
	mustExec(t, eng, `CREATE CROWD TABLE NotableAttendee (
		name STRING PRIMARY KEY,
		title STRING,
		FOREIGN KEY (title) REF Talk(title) )`)
	for _, talk := range conf.Talks[:10] {
		mustExec(t, eng, "INSERT INTO Talk (title) VALUES ("+sqltypes.NewString(talk.Title).SQLLiteral()+")")
	}
	return eng, conf
}

func TestNoCrowdEngineDegrades(t *testing.T) {
	eng, err := Open(Config{AllowUnbounded: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	mustExec(t, eng, `CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING)`)
	mustExec(t, eng, `INSERT INTO Talk (title) VALUES ('X')`)
	res := mustExec(t, eng, `SELECT abstract FROM Talk WHERE title = 'X'`)
	if len(res.Rows) != 1 || !res.Rows[0][0].IsCNull() {
		t.Errorf("without a crowd the CNULL must survive: %v", res.Rows)
	}
}

func TestInsertDefaultsCrowdColumnsToCNull(t *testing.T) {
	eng, _ := newConferenceEngine(t, 11, "")
	defer eng.Close()
	res := mustExec(t, eng, "SELECT title FROM Talk WHERE abstract IS CNULL")
	if len(res.Rows) != 10 {
		t.Errorf("all inserted talks have CNULL abstracts: %d", len(res.Rows))
	}
	tab, _ := eng.Catalog().Table("Talk")
	if tab.Stats().CNullCount["abstract"] != 10 {
		t.Errorf("CNULL stats: %+v", tab.Stats().CNullCount)
	}
}

func TestQueryRequiresSelect(t *testing.T) {
	eng, _ := newConferenceEngine(t, 12, "")
	defer eng.Close()
	if _, err := eng.Query("INSERT INTO Talk (title) VALUES ('zz')"); err == nil {
		t.Error("Query must reject non-SELECT")
	}
	if _, err := eng.Query("SELECT COUNT(*) FROM Talk"); err != nil {
		t.Errorf("Query select: %v", err)
	}
}

func TestWRMPaysDuringQueries(t *testing.T) {
	eng, conf := newConferenceEngine(t, 13, "")
	defer eng.Close()
	mustExec(t, eng, "SELECT abstract FROM Talk WHERE title = "+sqltypes.NewString(conf.Talks[0].Title).SQLLiteral())
	if len(eng.WRM().Ledger()) == 0 {
		t.Error("the WRM must settle payments for collected assignments")
	}
	if len(eng.Tracker().Workers()) == 0 {
		t.Error("worker quality must be tracked")
	}
}
