package core

// Engine observability: EXPLAIN ANALYZE actuals, per-statement traces,
// the slow-query log, and the DisableObservability control arm.

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"crowddb/internal/crowd/amt"
	"crowddb/internal/obs"
	"crowddb/internal/sqltypes"
	"crowddb/internal/workload"
	"crowddb/internal/wrm"
)

func TestExplainAnalyze(t *testing.T) {
	eng, conf := newConferenceEngine(t, 31, "")
	defer eng.Close()
	title := sqltypes.NewString(conf.Talks[0].Title).SQLLiteral()
	q := "SELECT abstract FROM Talk WHERE title = " + title

	// Plain EXPLAIN predicts but never executes: no actuals, no probes.
	res := mustExec(t, eng, "EXPLAIN "+q)
	if strings.Contains(res.Plan, "(actual:") {
		t.Fatalf("EXPLAIN must not report actuals:\n%s", res.Plan)
	}
	if res.Stats.ProbeRequests != 0 {
		t.Fatalf("EXPLAIN must not run the query: %+v", res.Stats)
	}

	// EXPLAIN ANALYZE executes for real and annotates each operator with
	// measured rows, wall time, and cents next to the predictions.
	res = mustExec(t, eng, "EXPLAIN ANALYZE "+q)
	for _, want := range []string{"ProbeScan(Talk)", "(actual:", "rows", "predicted:", "actual: ¢"} {
		if !strings.Contains(res.Plan, want) {
			t.Errorf("EXPLAIN ANALYZE missing %q:\n%s", want, res.Plan)
		}
	}
	if res.Stats.ProbeRequests != 1 {
		t.Errorf("ANALYZE must pay for the probe: %+v", res.Stats)
	}
	if res.ActualCents <= 0 {
		t.Errorf("ANALYZE must report measured spend, got ¢%v", res.ActualCents)
	}

	// The crowd work ANALYZE paid for is durable: the same SELECT now
	// answers from storage without a second probe.
	res = mustExec(t, eng, q)
	if res.Stats.ProbeRequests != 0 {
		t.Errorf("probe answer not reused after ANALYZE: %+v", res.Stats)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].IsNull() {
		t.Errorf("rows after ANALYZE: %v", res.Rows)
	}

	if _, err := eng.Exec("EXPLAIN ANALYZE INSERT INTO Talk (title) VALUES ('x')"); err == nil {
		t.Error("EXPLAIN ANALYZE DML must fail")
	}
}

// TestStatementTrace drives a crowd SELECT under a caller-owned trace and
// checks the span taxonomy end to end.
func TestStatementTrace(t *testing.T) {
	eng, conf := newConferenceEngine(t, 32, "")
	defer eng.Close()
	tr := eng.Tracer().Start("t-test")
	q := "SELECT abstract FROM Talk WHERE title = " +
		sqltypes.NewString(conf.Talks[1].Title).SQLLiteral()
	if _, err := eng.Execute(context.Background(), q, ExecOpts{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	eng.Tracer().Finish(tr)

	got := eng.Tracer().Lookup("t-test")
	if got == nil {
		t.Fatal("finished trace not retained")
	}
	tj := got.JSON()
	for _, prefix := range []string{"parse", "statement", "optimize", "snapshot", "execute", "op:scan", "crowd:probe"} {
		if len(tj.FindSpans(prefix)) == 0 {
			t.Errorf("no %q span in trace %s (%d spans)", prefix, tj.TraceID, tj.Spans)
		}
	}
	probe := tj.FindSpans("crowd:probe")[0]
	if probe.Attrs["answers"] == "" || probe.Attrs["posted_at"] == "" {
		t.Errorf("probe span lacks lifecycle attrs: %v", probe.Attrs)
	}
}

// TestEngineOwnedTraces checks that statements run without a caller trace
// still record one in the tracer's ring under a q-sequence id.
func TestEngineOwnedTraces(t *testing.T) {
	eng, _ := newConferenceEngine(t, 33, "")
	defer eng.Close()
	// newConferenceEngine already ran statements; q000001 is its CREATE.
	tr := eng.Tracer().Lookup("q000001")
	if tr == nil {
		t.Fatal("engine-owned trace q000001 not retained")
	}
	if spans := tr.JSON().FindSpans("statement"); len(spans) == 0 || spans[0].Attrs["kind"] != "ddl" {
		t.Errorf("first trace should be the DDL statement: %+v", spans)
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	conf := workload.NewConference(20, 34)
	eng, err := Open(Config{
		Platform:           amt.NewDefault(34),
		Oracle:             conf.Oracle(),
		Payment:            wrm.DefaultPolicy(),
		SlowQueryThreshold: time.Nanosecond, // everything is slow
		SlowQueryLog:       &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	mustExec(t, eng, "CREATE TABLE t (id INTEGER PRIMARY KEY)")
	mustExec(t, eng, "SELECT id FROM t")
	out := buf.String()
	if !strings.Contains(out, "[slow query]") || !strings.Contains(out, "statement") {
		t.Errorf("slow-query log did not fire:\n%s", out)
	}
}

// TestDisableObservability is the benchmark control arm: no tracer, no
// spans, yet queries — including EXPLAIN ANALYZE, whose actuals come
// from the opStats map, not the tracer — behave identically.
func TestDisableObservability(t *testing.T) {
	conf := workload.NewConference(20, 35)
	eng, err := Open(Config{
		Platform:             amt.NewDefault(35),
		Oracle:               conf.Oracle(),
		Payment:              wrm.DefaultPolicy(),
		DisableObservability: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Tracer() != nil {
		t.Fatal("DisableObservability must drop the tracer")
	}
	if eng.Metrics() == nil {
		t.Fatal("metrics registry must survive DisableObservability")
	}
	mustExec(t, eng, `CREATE TABLE Talk (
		title STRING PRIMARY KEY,
		abstract CROWD STRING,
		nb_attendees CROWD INTEGER )`)
	mustExec(t, eng, "INSERT INTO Talk (title) VALUES ("+
		sqltypes.NewString(conf.Talks[0].Title).SQLLiteral()+")")
	res := mustExec(t, eng, "EXPLAIN ANALYZE SELECT abstract FROM Talk WHERE title = "+
		sqltypes.NewString(conf.Talks[0].Title).SQLLiteral())
	if !strings.Contains(res.Plan, "(actual:") {
		t.Errorf("EXPLAIN ANALYZE must still measure actuals without a tracer:\n%s", res.Plan)
	}
	// Passing an obs.Trace is harmless too: the nil tracer just never
	// retains it.
	var tr *obs.Trace
	if _, err := eng.Execute(context.Background(), "SELECT title FROM Talk", ExecOpts{Trace: tr}); err != nil {
		t.Fatal(err)
	}
}
