package faultinject

import "testing"

func TestDisarmedHitIsNoop(t *testing.T) {
	Disarm()
	Hit("anything")
	if Armed() || Killed() {
		t.Fatal("disarmed registry must stay inert")
	}
}

func TestCountdownFiresOnNth(t *testing.T) {
	defer Disarm()
	if err := Arm("p.one=3"); err != nil {
		t.Fatal(err)
	}
	var fired []string
	SetHandler(func(p string) { fired = append(fired, p) })
	Hit("p.one")
	Hit("p.other") // unarmed point: ignored
	Hit("p.one")
	if Killed() || len(fired) != 0 {
		t.Fatalf("fired early: %v", fired)
	}
	Hit("p.one")
	if !Killed() || len(fired) != 1 || fired[0] != "p.one" {
		t.Fatalf("killed=%v fired=%v", Killed(), fired)
	}
	// Once killed, further hits (even of other armed points) are inert.
	Hit("p.one")
	if len(fired) != 1 {
		t.Fatalf("hit after kill re-fired: %v", fired)
	}
}

func TestBareNameFiresFirstHit(t *testing.T) {
	defer Disarm()
	if err := Arm("solo"); err != nil {
		t.Fatal(err)
	}
	fired := false
	SetHandler(func(string) { fired = true })
	Hit("solo")
	if !fired || !Killed() {
		t.Fatal("bare point must fire on the first hit")
	}
}

func TestMultiPointSpec(t *testing.T) {
	defer Disarm()
	if err := Arm("a=2, b"); err != nil {
		t.Fatal(err)
	}
	var fired []string
	SetHandler(func(p string) { fired = append(fired, p) })
	Hit("b")
	if len(fired) != 1 || fired[0] != "b" {
		t.Fatalf("fired=%v", fired)
	}
	// b fired -> killed; a never fires now.
	Hit("a")
	Hit("a")
	if len(fired) != 1 {
		t.Fatalf("second point fired after kill: %v", fired)
	}
}

func TestBadSpecs(t *testing.T) {
	defer Disarm()
	for _, spec := range []string{"p=0", "p=-1", "p=x", "=3"} {
		if err := Arm(spec); err == nil {
			t.Errorf("Arm(%q) accepted", spec)
		}
	}
	// Empty spec arms nothing.
	if err := Arm(""); err != nil || Armed() {
		t.Fatalf("empty spec: err=%v armed=%v", err, Armed())
	}
}

func TestRearmClearsKilled(t *testing.T) {
	defer Disarm()
	SetHandler(func(string) {})
	if err := Arm("x"); err != nil {
		t.Fatal(err)
	}
	Hit("x")
	if !Killed() {
		t.Fatal("not killed")
	}
	if err := Arm("y=1"); err != nil {
		t.Fatal(err)
	}
	if Killed() {
		t.Fatal("re-arm must clear the killed state")
	}
}
