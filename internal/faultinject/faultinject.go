// Package faultinject is a deterministic crashpoint registry for
// robustness testing. Production code marks interesting instants —
// a WAL append, a job state transition, a crowd platform call — with
// Hit("name"); when the registry is disarmed (the default) a hit is a
// single atomic load and nothing more. Tests and the CI kill-restart
// smoke arm specific points with a countdown:
//
//	faultinject.Arm("server.job.row=3")   // crash on the 3rd streamed row
//	CROWDDB_CRASHPOINTS=wal.append=10 crowddbd ...
//
// When an armed countdown reaches zero the registry fires: it enters
// the killed state and invokes the handler. The default handler exits
// the process with status 137 (the SIGKILL convention), simulating a
// hard crash; tests install a softer handler with SetHandler to cut
// durability paths in-process instead. While killed, durability layers
// that consult Killed() silently drop writes — exactly what a torn
// process would have failed to persist — so recovery code can be
// exercised without forking.
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// EnvVar is the environment variable ArmFromEnv reads crashpoint specs
// from.
const EnvVar = "CROWDDB_CRASHPOINTS"

var (
	// active is the fast path: non-zero while any point is armed or the
	// registry is killed. Disarmed Hit calls read it and return.
	active atomic.Int32

	mu      sync.Mutex
	points  map[string]int // remaining hits before each point fires
	killed  bool
	handler func(point string)
)

// defaultHandler simulates a hard crash: exit 137, the shell's code for
// a SIGKILLed process.
func defaultHandler(point string) {
	fmt.Fprintf(os.Stderr, "faultinject: crashpoint %s fired\n", point)
	os.Exit(137)
}

// Arm installs crashpoints from a spec: comma-separated "point=N" pairs
// (fire on the N-th hit, N >= 1) or bare "point" (fire on the first).
// Arming replaces any previous spec and clears the killed state.
func Arm(spec string) error {
	parsed := make(map[string]int)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, countStr, hasCount := strings.Cut(part, "=")
		count := 1
		if hasCount {
			n, err := strconv.Atoi(countStr)
			if err != nil || n < 1 {
				return fmt.Errorf("faultinject: bad crashpoint count %q in %q", countStr, part)
			}
			count = n
		}
		if name == "" {
			return fmt.Errorf("faultinject: empty crashpoint name in %q", spec)
		}
		parsed[name] = count
	}
	mu.Lock()
	defer mu.Unlock()
	points = parsed
	killed = false
	if len(parsed) > 0 {
		active.Store(1)
	} else {
		active.Store(0)
	}
	return nil
}

// ArmFromEnv arms crashpoints from $CROWDDB_CRASHPOINTS; unset or empty
// leaves the registry disarmed.
func ArmFromEnv() error {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return nil
	}
	return Arm(spec)
}

// Disarm clears every crashpoint, the killed state, and any installed
// handler.
func Disarm() {
	mu.Lock()
	defer mu.Unlock()
	points = nil
	killed = false
	handler = nil
	active.Store(0)
}

// Armed reports whether any crashpoint is installed and not yet fired.
func Armed() bool {
	if active.Load() == 0 {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	return len(points) > 0
}

// Killed reports whether a crashpoint has fired. Durability layers use
// it to drop writes after the simulated crash instant.
func Killed() bool {
	if active.Load() == 0 {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	return killed
}

// SetHandler replaces the process-exit default with fn for in-process
// crash simulation (the registry still enters the killed state before
// fn runs). A nil fn restores the default.
func SetHandler(fn func(point string)) {
	mu.Lock()
	defer mu.Unlock()
	handler = fn
}

// Hit marks one pass through a named crashpoint. Disarmed, it is a
// single atomic load. Armed, it decrements the point's countdown and —
// on zero — marks the registry killed and invokes the handler (which
// by default never returns).
func Hit(point string) {
	if active.Load() == 0 {
		return
	}
	mu.Lock()
	if killed {
		mu.Unlock()
		return
	}
	n, ok := points[point]
	if !ok {
		mu.Unlock()
		return
	}
	if n > 1 {
		points[point] = n - 1
		mu.Unlock()
		return
	}
	delete(points, point)
	killed = true
	fn := handler
	mu.Unlock()
	if fn == nil {
		fn = defaultHandler
	}
	fn(point)
}
