package taskmgr

import (
	"testing"

	"crowddb/internal/catalog"
	"crowddb/internal/crowd"
	"crowddb/internal/crowd/amt"
	"crowddb/internal/crowd/model"
	"crowddb/internal/quality"
	"crowddb/internal/ui"
	"crowddb/internal/wrm"
)

// calmOracle answers like testOracle but with zero difficulty, so a
// perfect-accuracy model profile is guaranteed correct and the
// escalation decision is driven purely by the confidence knobs.
type calmOracle struct{ testOracle }

func (calmOracle) CompareTruth(kind crowd.TaskKind, question, left, right string) *crowd.SimTruth {
	if kind == crowd.TaskCompareEqual {
		ans := "no"
		if quality.Normalize(left) == quality.Normalize(right) {
			ans = "yes"
		}
		return &crowd.SimTruth{Truth: map[string]string{ui.AnswerField: ans}}
	}
	win := left
	if right < left {
		win = right
	}
	return &crowd.SimTruth{Truth: map[string]string{ui.AnswerField: win}}
}

// newHybridManager builds a manager whose human tier is simulated AMT
// and whose model tier is the given platform.
func newHybridManager(t *testing.T, seed int64, mp crowd.Platform, mut func(*Config)) *Manager {
	t.Helper()
	cat := catalog.New()
	uim := ui.NewManager(cat)
	uim.GenerateAll()
	tracker := quality.NewTracker()
	payer := wrm.New(wrm.DefaultPolicy(), tracker)
	cfg := DefaultConfig()
	cfg.ModelPlatform = mp
	if mut != nil {
		mut(&cfg)
	}
	return New(amt.NewDefault(seed), uim, tracker, payer, calmOracle{}, cfg)
}

// confidentModel is a profile that always answers correctly (at zero
// difficulty) with confidence safely above the default floor.
func confidentModel() model.Profile {
	prof := model.Sharp()
	prof.Accuracy = 1
	prof.ConfidenceNoise = 0
	return prof
}

// A confident, correct model tier resolves everything without touching
// the human platform, and the per-platform split attributes all spend
// to the model tier.
func TestHybridNoEscalation(t *testing.T) {
	mp := model.New(model.Config{Seed: 5, Profile: confidentModel()})
	m := newHybridManager(t, 5, mp, nil)
	ds, err := m.CompareEqual("Same company?", []ComparePair{
		{Left: "UC Berkeley", Right: "uc berkeley"},
		{Left: "UC Berkeley", Right: "Stanford"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if quality.Normalize(ds[0].Value) != "yes" || quality.Normalize(ds[1].Value) != "no" {
		t.Errorf("decisions: %+v", ds)
	}
	st := m.Stats()
	if st.ModelGroupsPosted != 1 || st.EscalatedGroups != 0 || st.EscalatedHITs != 0 {
		t.Errorf("confident model tier must not escalate: %+v", st)
	}
	mps := st.ByPlatform["model"]
	if mps.Groups != 1 || mps.HITs != 2 || mps.Assignments != 2 {
		t.Errorf("model tier split: %+v", mps)
	}
	if hps := st.ByPlatform["amt"]; hps.Groups != 0 || hps.ApprovedSpend != 0 {
		t.Errorf("human tier must stay idle: %+v", hps)
	}
	if mps.ApprovedSpend != st.ApprovedSpend || st.ApprovedSpend == 0 {
		t.Errorf("all spend must land on the model tier: %v of %v", mps.ApprovedSpend, st.ApprovedSpend)
	}
}

// An unconfident model tier escalates every HIT: the human platform
// answers, both tiers' votes merge into the decision, and the spend
// breakdown splits across both platform names.
func TestHybridEscalation(t *testing.T) {
	prof := confidentModel()
	prof.CorrectConfidence = 0.5 // below the 0.75 floor: everything contested
	mp := model.New(model.Config{Seed: 5, Profile: prof})
	m := newHybridManager(t, 5, mp, nil)
	ds, err := m.CompareEqual("Same company?", []ComparePair{
		{Left: "UC Berkeley", Right: "uc berkeley"},
		{Left: "UC Berkeley", Right: "Stanford"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if quality.Normalize(ds[0].Value) != "yes" || quality.Normalize(ds[1].Value) != "no" {
		t.Errorf("decisions: %+v", ds)
	}
	st := m.Stats()
	if st.ModelGroupsPosted != 1 || st.EscalatedGroups != 1 || st.EscalatedHITs != 2 {
		t.Errorf("unconfident model tier must escalate both HITs: %+v", st)
	}
	mps, hps := st.ByPlatform["model"], st.ByPlatform["amt"]
	if mps.HITs != 2 || mps.Assignments != 2 || mps.ApprovedSpend == 0 {
		t.Errorf("model tier split: %+v", mps)
	}
	if hps.Groups != 1 || hps.HITs != 2 || hps.Assignments < 6 || hps.ApprovedSpend == 0 {
		t.Errorf("human tier split: %+v", hps)
	}
	if mps.ApprovedSpend+hps.ApprovedSpend != st.ApprovedSpend {
		t.Errorf("per-platform spend must sum to the aggregate: %v + %v != %v",
			mps.ApprovedSpend, hps.ApprovedSpend, st.ApprovedSpend)
	}
	// The merged decision counts votes from both tiers (1 model + 3 human).
	if ds[0].Total < 4 {
		t.Errorf("escalated decision must merge model and human votes: %+v", ds[0])
	}
}

// Tier-weighted resolution: a model worker with a strong agreement
// record outvotes low-scoring human workers — but only up to the
// escalation threshold, below which the HIT routes to humans no matter
// how well the model has scored historically.
func TestTierWeightedOutvoteUpToThreshold(t *testing.T) {
	mp := model.New(model.Config{Seed: 1, Profile: confidentModel()})
	m := newHybridManager(t, 1, mp, nil)
	vote := func(worker, source, answer string, conf float64) *crowd.Assignment {
		return &crowd.Assignment{
			HITID: "H1", WorkerID: worker, Answers: map[string]string{"answer": answer},
			Confidence: conf, Source: source,
		}
	}
	asgs := []*crowd.Assignment{
		vote("model-w00", "model", "alpha", 0.9),
		vote("h-a", "amt", "beta", 0),
		vote("h-b", "amt", "beta", 0),
	}
	// Neutral history: the model vote weighs 0.5×0.6 against two 0.5
	// human votes — the humans win.
	if d := m.decide(asgs, "answer"); quality.Normalize(d.Value) != "beta" {
		t.Errorf("unproven model worker must not outvote two humans: %+v", d)
	}
	// Teach the tracker: the model worker keeps agreeing with decisions,
	// the two humans keep landing on the losing side.
	for i := 0; i < 60; i++ {
		m.tracker.Record(quality.Decision{Agreed: []string{"model-w00"}, Disagreed: []string{"h-a", "h-b"}})
	}
	if d := m.decide(asgs, "answer"); quality.Normalize(d.Value) != "alpha" {
		t.Errorf("high-scoring model worker must outvote low-scoring humans: %+v", d)
	}
	// The outvote only holds above the escalation threshold: the same
	// high-scoring worker at low confidence is contested and routed to
	// the human tier before any weighted resolution happens.
	hit := &crowd.HIT{ID: "H1", Kind: crowd.TaskCompareEqual, Fields: []crowd.Field{
		{Name: "answer", Kind: crowd.FieldInput, Label: "same?"},
	}}
	group := &crowd.HITGroup{Kind: crowd.TaskCompareEqual, Reward: 1, Assignments: 1, HITs: []*crowd.HIT{hit}}
	low := map[string][]*crowd.Assignment{"H1": {vote("model-w00", "model", "alpha", 0.5)}}
	if contested := m.contestedHITs(group, low); len(contested) != 1 {
		t.Errorf("low confidence must escalate regardless of tracker score: %v", contested)
	}
	high := map[string][]*crowd.Assignment{"H1": {vote("model-w00", "model", "alpha", 0.9)}}
	if contested := m.contestedHITs(group, high); len(contested) != 0 {
		t.Errorf("confident answer must not escalate: %v", contested)
	}
}

// The FlakyPlatform wrapper composes over the model tier: injected
// post/status/results outages are absorbed by the retry budget without
// wedging, double-paying, or spurious escalations.
func TestFlakyModelTier(t *testing.T) {
	flaky := crowd.NewFlaky(model.New(model.Config{Seed: 9, Profile: confidentModel()}), 3)
	m := newHybridManager(t, 9, flaky, nil)
	for round := 0; round < 3; round++ {
		ds, err := m.CompareEqual("Same company?", []ComparePair{
			{Left: "IBM", Right: "ibm"},
			{Left: "IBM", Right: "Oracle"},
		})
		if err != nil {
			t.Fatal(err)
		}
		if quality.Normalize(ds[0].Value) != "yes" || quality.Normalize(ds[1].Value) != "no" {
			t.Errorf("round %d decisions: %+v", round, ds)
		}
	}
	if flaky.Fails() == 0 {
		t.Fatal("flaky wrapper injected no failures; the retry path went unexercised")
	}
	st := m.Stats()
	if st.ModelGroupsPosted != 3 || st.EscalatedHITs != 0 {
		t.Errorf("outages must not cause spurious escalations: %+v", st)
	}
	if got := st.ByPlatform["model"].Assignments; got != 6 {
		t.Errorf("model tier must answer exactly once per HIT despite retries: %d", got)
	}
}
