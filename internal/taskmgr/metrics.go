package taskmgr

import (
	"time"

	"crowddb/internal/obs"
)

// GroupTelemetry is one HIT group's scheduler lifecycle, in virtual
// platform time: whether it waited behind the in-flight window, and when
// it was posted and resolved. The exec layer stamps it onto trace spans.
type GroupTelemetry struct {
	Queued     bool
	Posted     bool
	PostedAt   time.Duration
	ResolvedAt time.Duration
	// Tier names the platform the group last ran on ("model" until an
	// escalation moves it to the human platform); Escalated reports
	// whether the escalation router re-posted part of it to humans.
	Tier      string
	Escalated bool
}

// Telemetry snapshots the group's scheduler lifecycle. Safe any time;
// fields are final once the group resolves.
func (p *Pending) Telemetry() GroupTelemetry {
	if p == nil {
		return GroupTelemetry{}
	}
	p.m.sched.mu.Lock()
	defer p.m.sched.mu.Unlock()
	tel := GroupTelemetry{
		Queued:     p.wasQueued,
		Posted:     p.posted,
		PostedAt:   p.postedAt,
		ResolvedAt: p.resolvedAt,
		Escalated:  p.escalated,
	}
	if p.platform != nil {
		tel.Tier = p.platform.Name()
	}
	return tel
}

// Telemetry reports the underlying group's lifecycle (zero when the call
// never posted — nil-call or degraded paths).
func (c *ProbeCall) Telemetry() GroupTelemetry {
	if c == nil || c.pending == nil {
		return GroupTelemetry{}
	}
	return c.pending.Telemetry()
}

// Telemetry reports the underlying group's lifecycle; see ProbeCall.
func (c *TupleCall) Telemetry() GroupTelemetry {
	if c == nil || c.pending == nil {
		return GroupTelemetry{}
	}
	return c.pending.Telemetry()
}

// Telemetry reports the underlying group's lifecycle; see ProbeCall.
func (c *CompareCall) Telemetry() GroupTelemetry {
	if c == nil || c.pending == nil {
		return GroupTelemetry{}
	}
	return c.pending.Telemetry()
}

// RegisterMetrics exports the Task Manager's counters into the registry:
// scrape-time reads of the existing Stats plus a live round-trip
// histogram fed by recordLatency. Virtual (simulated) crowd seconds, not
// wall time.
func (m *Manager) RegisterMetrics(reg *obs.Registry) {
	m.mu.Lock()
	// One minute to ~2.3 virtual days, doubling.
	m.roundtrip = reg.Histogram("crowddb_taskmgr_group_roundtrip_seconds",
		"HIT group post-to-resolution round trip, in virtual crowd seconds",
		obs.ExpBuckets(60, 2, 12))
	m.mu.Unlock()
	stat := func(f func(Stats) float64) func() float64 {
		return func() float64 { return f(m.Stats()) }
	}
	reg.CounterFunc("crowddb_taskmgr_groups_posted_total",
		"HIT groups posted to the crowd platform",
		stat(func(s Stats) float64 { return float64(s.GroupsPosted) }))
	reg.CounterFunc("crowddb_taskmgr_hits_posted_total",
		"individual HITs posted to the crowd platform",
		stat(func(s Stats) float64 { return float64(s.HITsPosted) }))
	reg.CounterFunc("crowddb_taskmgr_assignments_in_total",
		"worker assignments collected",
		stat(func(s Stats) float64 { return float64(s.AssignmentsIn) }))
	reg.CounterFunc("crowddb_taskmgr_decisions_total",
		"quality-controlled decisions handed back to operators",
		stat(func(s Stats) float64 { return float64(s.Decisions) }))
	reg.CounterFunc("crowddb_taskmgr_retries_total",
		"transient platform call failures absorbed by the retry policy",
		stat(func(s Stats) float64 { return float64(s.Retries) }))
	reg.CounterFunc("crowddb_taskmgr_expired_groups_total",
		"HIT groups that hit MaxWait before reaching quorum",
		stat(func(s Stats) float64 { return float64(s.ExpiredGroups) }))
	reg.CounterFunc("crowddb_taskmgr_approved_spend_cents_total",
		"cents approved and paid to workers through the WRM",
		stat(func(s Stats) float64 { return float64(s.ApprovedSpend) }))
	reg.GaugeFunc("crowddb_taskmgr_inflight_groups",
		"HIT groups currently live on the platform",
		func() float64 { in, _ := m.Load(); return float64(in) })
	reg.GaugeFunc("crowddb_taskmgr_queued_groups",
		"HIT groups queued behind the in-flight window",
		func() float64 { _, q := m.Load(); return float64(q) })

	// Tier split: the escalation router's activity. Flat zeros when no
	// model tier is configured, so dashboards can rely on the families
	// existing.
	modelTier := func(s Stats) PlatformStats {
		if m.cfg.ModelPlatform == nil {
			return PlatformStats{}
		}
		return s.ByPlatform[m.cfg.ModelPlatform.Name()]
	}
	humanTier := func(s Stats) PlatformStats { return s.ByPlatform[m.platform.Name()] }
	reg.CounterFunc("crowddb_crowd_tier_model_groups_total",
		"HIT groups posted to the model tier by the escalation router",
		stat(func(s Stats) float64 { return float64(s.ModelGroupsPosted) }))
	reg.CounterFunc("crowddb_crowd_tier_model_answers_total",
		"model-tier assignments collected",
		stat(func(s Stats) float64 { return float64(modelTier(s).Assignments) }))
	reg.CounterFunc("crowddb_crowd_tier_model_spend_cents_total",
		"cents approved on the model tier",
		stat(func(s Stats) float64 { return float64(modelTier(s).ApprovedSpend) }))
	reg.CounterFunc("crowddb_crowd_tier_human_answers_total",
		"human-platform assignments collected",
		stat(func(s Stats) float64 { return float64(humanTier(s).Assignments) }))
	reg.CounterFunc("crowddb_crowd_tier_human_spend_cents_total",
		"cents approved on the human platform",
		stat(func(s Stats) float64 { return float64(humanTier(s).ApprovedSpend) }))
	reg.CounterFunc("crowddb_crowd_tier_escalations_total",
		"HIT groups escalated from the model tier to the human platform",
		stat(func(s Stats) float64 { return float64(s.EscalatedGroups) }))
	reg.CounterFunc("crowddb_crowd_tier_escalated_hits_total",
		"individual HITs escalated to the human platform",
		stat(func(s Stats) float64 { return float64(s.EscalatedHITs) }))
}
