package taskmgr

import (
	"strings"
	"testing"

	"crowddb/internal/crowd"
	"crowddb/internal/crowd/amt"
	"crowddb/internal/quality"
	"crowddb/internal/wrm"
)

// newFlakyManager builds a manager over an amt platform wrapped in a
// FlakyPlatform, with only the given kinds fallible.
func newFlakyManager(t *testing.T, seed int64, failEvery int, post, status, results bool, cfg Config) (*Manager, *crowd.FlakyPlatform) {
	t.Helper()
	m, _ := newManager(t, seed)
	flaky := crowd.NewFlaky(amt.NewDefault(seed), failEvery)
	flaky.FailPost, flaky.FailStatus, flaky.FailResults = post, status, results
	tracker := quality.NewTracker()
	payer := wrm.New(wrm.DefaultPolicy(), tracker)
	return New(flaky, m.ui, tracker, payer, testOracle{}, cfg), flaky
}

func runTwoCompares(t *testing.T, m *Manager) []quality.Decision {
	t.Helper()
	var out []quality.Decision
	for _, pair := range []ComparePair{
		{Left: "BTalk", Right: "ATalk"},
		{Left: "DTalk", Right: "CTalk"},
	} {
		ds, err := m.CompareOrder("Which talk did you like better", []ComparePair{pair})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ds...)
	}
	return out
}

// A post that fails transiently is retried and — because the failed
// attempt never reached the platform — posted exactly once: spend,
// decisions, and group counts match a run with no outage at all.
func TestPostRetryPaysExactlyOnce(t *testing.T) {
	const seed = 11
	clean, _ := newManager(t, seed)
	wantDs := runTwoCompares(t, clean)
	want := clean.Stats()

	// Per-kind schedule: post 1 passes, post 2 fails, the retry (post 3)
	// passes. Status and results are never flaky.
	m, flaky := newFlakyManager(t, seed, 2, true, false, false, DefaultConfig())
	gotDs := runTwoCompares(t, m)
	got := m.Stats()

	if flaky.Fails() != 1 {
		t.Fatalf("injected post failures: %d, want 1", flaky.Fails())
	}
	if got.Retries != 1 {
		t.Fatalf("Stats.Retries: %d, want 1", got.Retries)
	}
	if got.GroupsPosted != want.GroupsPosted || got.HITsPosted != want.HITsPosted {
		t.Fatalf("retried run posted %d groups / %d HITs, clean run %d / %d",
			got.GroupsPosted, got.HITsPosted, want.GroupsPosted, want.HITsPosted)
	}
	if got.ApprovedSpend != want.ApprovedSpend {
		t.Fatalf("retried run paid %d cents, clean run %d: a retried post double-paid",
			got.ApprovedSpend, want.ApprovedSpend)
	}
	for i := range wantDs {
		if gotDs[i].Value != wantDs[i].Value {
			t.Errorf("decision %d diverged: %q vs %q", i, gotDs[i].Value, wantDs[i].Value)
		}
	}
}

// Transient status and results failures are absorbed by later poll
// ticks; the query still completes and every injected failure shows up
// in Stats.Retries, never as an operator error.
func TestPollRetriesAbsorbTransientOutages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetryAttempts = 100 // plenty: the outage is periodic, not permanent
	m, flaky := newFlakyManager(t, 11, 3, false, true, true, cfg)
	ds, err := m.CompareOrder("Which talk did you like better", []ComparePair{
		{Left: "BTalk", Right: "ATalk"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds[0].Value != "ATalk" {
		t.Errorf("winner: %+v", ds[0])
	}
	st := m.Stats()
	if flaky.Fails() == 0 {
		t.Fatal("no failure was injected")
	}
	if st.Retries != flaky.Fails() {
		t.Errorf("Retries=%d but %d failures injected: some surfaced", st.Retries, flaky.Fails())
	}
}

// When the retry budget is exhausted the error surfaces — and the
// platform was never charged for the group that could not be posted.
func TestPostRetryBudgetExhausted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetryAttempts = 3
	m, flaky := newFlakyManager(t, 11, 1, true, false, false, cfg)
	_, err := m.CompareOrder("q", []ComparePair{{Left: "a", Right: "b"}})
	if err == nil || !strings.Contains(err.Error(), "post") {
		t.Fatalf("exhausted retries must surface the post error, got %v", err)
	}
	if flaky.Fails() != 3 {
		t.Errorf("attempts: %d, want RetryAttempts=3", flaky.Fails())
	}
	st := m.Stats()
	if st.GroupsPosted != 0 || st.ApprovedSpend != 0 {
		t.Errorf("failed posts must not charge: %+v", st)
	}
}
