// Package taskmgr implements CrowdDB's Task Manager (paper §3, Fig. 1):
// the abstraction layer between the query executor's crowd operators and
// the crowdsourcing platforms. It instantiates UI templates for concrete
// tuples, posts HIT groups, polls their status, collects and
// quality-controls the answers, settles payments through the WRM, and
// hands cleansed decisions back to the operators (which memorize them in
// the store).
package taskmgr

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"crowddb/internal/crowd"
	"crowddb/internal/obs"
	"crowddb/internal/quality"
	"crowddb/internal/sqltypes"
	"crowddb/internal/ui"
	"crowddb/internal/wrm"
)

// Oracle supplies simulation-only ground truth for posted tasks. In a real
// deployment there is no oracle (answers come from people); the simulator
// needs one to know what a correct answer looks like. Implementations live
// in internal/workload and the examples.
type Oracle interface {
	// ProbeTruth returns truth for a probe of the given tuple's columns.
	ProbeTruth(table string, known map[string]sqltypes.Value, ask []string) *crowd.SimTruth
	// NewTupleTruth returns truth for the i-th requested new tuple.
	NewTupleTruth(table string, prefill map[string]sqltypes.Value, i int) *crowd.SimTruth
	// CompareTruth returns truth for one comparison task.
	CompareTruth(kind crowd.TaskKind, question, left, right string) *crowd.SimTruth
}

// Config tunes task posting.
type Config struct {
	// Reward per assignment.
	Reward crowd.Cents
	// Assignments is the replication factor per HIT (majority-vote width).
	Assignments int
	// PollInterval is how often the Task Manager polls the platform; each
	// poll advances the simulated crowd by the same amount.
	PollInterval time.Duration
	// MaxWait bounds how long to wait for a group before expiring it and
	// working with partial answers.
	MaxWait time.Duration
	// NewTupleAssignments is the replication for new-tuple solicitations
	// (each assignment is a distinct candidate tuple, so this is the
	// number of candidates requested per open slot).
	NewTupleAssignments int
	// MaxInFlight bounds how many HIT groups may be live on the platform
	// at once (the async scheduler's window). Submissions beyond it queue
	// until a slot frees. 1 serializes groups (the original behavior).
	MaxInFlight int
	// RetryAttempts bounds how many times a transient platform call
	// (post, status, expire, results) is attempted before its error
	// surfaces to the operator. <=0 defaults to 3; 1 disables retries.
	RetryAttempts int
	// RetryBase is the first post-retry backoff delay; each further
	// attempt doubles it, scaled by seeded jitter in [0.5,1.5). 0 (the
	// default) retries without sleeping — right for simulated platforms,
	// whose poll loop already spaces retries by virtual PollInterval.
	RetryBase time.Duration
	// RetrySeed seeds the jitter RNG so backoff schedules replay
	// deterministically for a fixed seed.
	RetrySeed int64

	// ModelPlatform enables model-first escalation routing: every HIT
	// group is posted to this (cheap model) tier first at ModelReward ×
	// ModelAssignments; HITs whose model answers fall below the
	// confidence or agreement floors are re-posted to the human Platform,
	// and the final answer is the tier-weighted resolution over the
	// merged votes. nil (the default) disables routing — the human
	// platform answers everything, byte-identical to the pre-router
	// behavior.
	ModelPlatform crowd.Platform
	// ModelReward is the per-assignment price on the model tier (<=0
	// defaults to 1¢).
	ModelReward crowd.Cents
	// ModelAssignments is the replication on the model tier (<=0 defaults
	// to 1 — model replicas are correlated, replication buys less than
	// it does with humans). New-tuple solicitations keep their own
	// replication: there each assignment is a distinct candidate.
	ModelAssignments int
	// ConfidenceFloor escalates a HIT whose mean model confidence is
	// below it (<=0 defaults to 0.75).
	ConfidenceFloor float64
	// AgreementFloor escalates a HIT whose model votes' winning share is
	// below it, or that failed quorum outright (<=0 defaults to 0.66).
	AgreementFloor float64
	// ModelVoteWeight scales model votes relative to human votes in the
	// tier-weighted resolution (<=0 defaults to 0.6: two fresh humans
	// outvote one fresh model answer, but a model answer tips a split
	// human pair).
	ModelVoteWeight float64

	// AdaptiveVotes lets comparison groups stop soliciting assignments
	// for a HIT once its early answers are unanimous above the quorum
	// floor — fewer paid votes on easy questions.
	AdaptiveVotes bool
}

// DefaultConfig matches the paper's experimental defaults: 2¢ HITs,
// 3-way replication, generous deadline.
func DefaultConfig() Config {
	return Config{
		Reward:              2,
		Assignments:         3,
		PollInterval:        time.Minute,
		MaxWait:             72 * time.Hour,
		NewTupleAssignments: 1,
		MaxInFlight:         8,
		RetryAttempts:       3,
	}
}

// PlatformStats is one platform tier's share of the crowd activity.
// Hybrid (model + human) runs audit each tier's spend through it; the
// old single-aggregate report hid which platform the money went to.
type PlatformStats struct {
	Groups        int
	HITs          int
	Assignments   int
	ApprovedSpend crowd.Cents
	// VotesAgreed/VotesDisagreed count this tier's votes that landed on
	// the winning (resp. losing) side of decisions — the observed
	// per-tier accuracy proxy.
	VotesAgreed    int
	VotesDisagreed int
}

// Stats counts crowd activity for the experiment harness.
type Stats struct {
	GroupsPosted  int
	HITsPosted    int
	AssignmentsIn int
	Decisions     int
	// CrowdTime is the virtual time spent waiting on the crowd: the union
	// of all in-flight group intervals, so overlapping groups count once.
	CrowdTime      time.Duration
	ApprovedSpend  crowd.Cents // rewards paid (excl. platform commission)
	ExpiredGroups  int
	PartialResults int // HITs resolved from fewer than Assignments answers
	// MaxInFlight echoes the configured async window.
	MaxInFlight int
	// PeakInFlight is the most groups ever simultaneously live.
	PeakInFlight int
	// PeakQueueDepth is the longest the over-window submission queue got.
	PeakQueueDepth int
	// Retries counts transient platform call failures absorbed by the
	// retry policy (the error never reached an operator).
	Retries int
	// GroupLatencyP50/P90 are observed HIT-group round-trip percentiles
	// (post to resolution, virtual time) over a sliding window of recent
	// groups; the cost model prices crowd rounds with them.
	GroupLatencyP50 time.Duration
	GroupLatencyP90 time.Duration
	// LatencySamples is how many group round-trips have been observed.
	LatencySamples int64
	// ModelGroupsPosted counts groups first posted to the model tier;
	// EscalatedGroups/EscalatedHITs count how many of them (and how many
	// individual HITs) fell below the confidence or agreement floors and
	// were re-posted to the human platform.
	ModelGroupsPosted int
	EscalatedGroups   int
	EscalatedHITs     int
	// ByPlatform splits groups, assignments, spend, and vote outcomes by
	// platform name.
	ByPlatform map[string]PlatformStats
}

// Manager is the Task Manager.
type Manager struct {
	platform crowd.Platform
	ui       *ui.Manager
	tracker  *quality.Tracker
	payer    *wrm.Manager
	oracle   Oracle
	cfg      Config

	mu    sync.Mutex
	stats Stats
	seq   int
	// jitter scales retry backoff; seeded so schedules replay.
	jitter *rand.Rand
	// latSamples is a ring of recent group round-trip latencies; latPos
	// counts total observations (ring writes wrap at latencyWindow).
	latSamples []time.Duration
	latPos     int64
	// roundtrip mirrors recordLatency observations into the metrics
	// registry when RegisterMetrics has run (nil-safe otherwise).
	roundtrip *obs.Histogram

	sched scheduler
}

// latencyWindow bounds the round-trip sample ring.
const latencyWindow = 64

// New assembles a Task Manager. oracle may be nil (workers will answer
// without ground truth — useful only for plumbing tests).
func New(platform crowd.Platform, uim *ui.Manager, tracker *quality.Tracker, payer *wrm.Manager, oracle Oracle, cfg Config) *Manager {
	if cfg.Assignments <= 0 {
		cfg.Assignments = 3
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = time.Minute
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 72 * time.Hour
	}
	if cfg.NewTupleAssignments <= 0 {
		cfg.NewTupleAssignments = 1
	}
	if cfg.Reward <= 0 {
		cfg.Reward = 2
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 8
	}
	if cfg.RetryAttempts <= 0 {
		cfg.RetryAttempts = 3
	}
	if cfg.ModelPlatform != nil {
		if cfg.ModelReward <= 0 {
			cfg.ModelReward = 1
		}
		if cfg.ModelAssignments <= 0 {
			cfg.ModelAssignments = 1
		}
		if cfg.ConfidenceFloor <= 0 {
			cfg.ConfidenceFloor = 0.75
		}
		if cfg.AgreementFloor <= 0 {
			cfg.AgreementFloor = 0.66
		}
		if cfg.ModelVoteWeight <= 0 {
			cfg.ModelVoteWeight = 0.6
		}
	}
	m := &Manager{platform: platform, ui: uim, tracker: tracker, payer: payer, oracle: oracle, cfg: cfg}
	m.stats.ByPlatform = make(map[string]PlatformStats)
	m.jitter = rand.New(rand.NewSource(cfg.RetrySeed))
	m.sched.handoff = make(chan struct{})
	return m
}

// Stats returns a copy of the activity counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stats
	st.MaxInFlight = m.cfg.MaxInFlight
	st.GroupLatencyP50, st.GroupLatencyP90 = m.latencyPercentilesLocked()
	st.LatencySamples = m.latPos
	st.ByPlatform = make(map[string]PlatformStats, len(m.stats.ByPlatform))
	for name, ps := range m.stats.ByPlatform {
		st.ByPlatform[name] = ps
	}
	return st
}

// platformStatsLocked mutates one platform's split counters in place.
// Callers hold m.mu.
func (m *Manager) platformStatsLocked(name string, f func(*PlatformStats)) {
	ps := m.stats.ByPlatform[name]
	f(&ps)
	m.stats.ByPlatform[name] = ps
}

// EscalationRate is the observed fraction of model-tier HITs that fell
// below the routing floors and escalated to the human platform. Before
// any model HIT has resolved it returns the planning prior (the cost
// optimizer prices blended model-first rates with it).
func (m *Manager) EscalationRate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cfg.ModelPlatform == nil {
		return 0
	}
	modelHITs := m.stats.ByPlatform[m.cfg.ModelPlatform.Name()].HITs
	if modelHITs == 0 {
		return defaultEscalationRate
	}
	return float64(m.stats.EscalatedHITs) / float64(modelHITs)
}

// defaultEscalationRate is the planning prior before feedback arrives: a
// quarter of model answers contested, matching the Sharp preset on
// mid-difficulty comparisons.
const defaultEscalationRate = 0.25

// recordLatency notes one group's post-to-resolution round-trip.
func (m *Manager) recordLatency(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.latSamples) < latencyWindow {
		m.latSamples = append(m.latSamples, d)
	} else {
		m.latSamples[m.latPos%latencyWindow] = d
	}
	m.latPos++
	m.roundtrip.Observe(d.Seconds())
}

// LatencyStats returns observed group round-trip percentiles (virtual
// time) over the recent-sample window, plus the total observation count.
func (m *Manager) LatencyStats() (p50, p90 time.Duration, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p50, p90 = m.latencyPercentilesLocked()
	return p50, p90, m.latPos
}

func (m *Manager) latencyPercentilesLocked() (p50, p90 time.Duration) {
	if len(m.latSamples) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), m.latSamples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := func(q float64) time.Duration {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return idx(0.5), idx(0.9)
}

// Config returns the manager's effective configuration.
func (m *Manager) Config() Config { return m.cfg }

// Load reports the async scheduler's current occupancy: groups live on
// the platform and submissions queued behind the in-flight window. The
// query server keys admission control off the queue depth — a deep queue
// means new crowd work would only pile onto the backlog.
func (m *Manager) Load() (inflight, queued int) {
	m.sched.mu.Lock()
	defer m.sched.mu.Unlock()
	return len(m.sched.inflight), len(m.sched.queued)
}

// Platform exposes the underlying platform (the REPL reports its name).
func (m *Manager) Platform() crowd.Platform { return m.platform }

func (m *Manager) nextHITID(prefix string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	return fmt.Sprintf("%s-%06d", prefix, m.seq)
}

// ProbeRequest asks the crowd to fill the Ask columns of one tuple whose
// known column values are Known (lower-cased column names).
type ProbeRequest struct {
	Known map[string]sqltypes.Value
	Ask   []string
}

// ProbeResult carries the majority-vote decision per asked column.
type ProbeResult struct {
	Decisions map[string]quality.Decision
}

// ProbeValues crowdsources missing column values for a batch of tuples of
// one table, as a single HIT group (CrowdProbe's data path; batching is
// what makes CrowdJoin efficient, experiment E6). Results align with reqs.
func (m *Manager) ProbeValues(table string, reqs []ProbeRequest) ([]ProbeResult, error) {
	call, err := m.ProbeValuesAsync(table, reqs)
	if err != nil {
		return nil, err
	}
	return call.Wait()
}

// ProbeValuesAsync submits a probe batch without waiting for its answers;
// the returned call's Wait collects them. The pipelined crowd operators
// use it to keep several probe groups in flight.
func (m *Manager) ProbeValuesAsync(table string, reqs []ProbeRequest) (*ProbeCall, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	group := &crowd.HITGroup{
		Title:       fmt.Sprintf("Fill in missing %s data", table),
		Description: fmt.Sprintf("Provide missing column values for the %s table.", table),
		Kind:        crowd.TaskProbeValues,
		Reward:      m.cfg.Reward,
		Assignments: m.cfg.Assignments,
		Expiry:      m.cfg.MaxWait,
	}
	for _, r := range reqs {
		fields, html, err := m.ui.ProbeForm(table, r.Known, r.Ask)
		if err != nil {
			return nil, err
		}
		hit := &crowd.HIT{
			ID:     m.nextHITID("probe"),
			Kind:   crowd.TaskProbeValues,
			Title:  group.Title,
			Fields: fields,
			HTML:   html,
		}
		if m.oracle != nil {
			hit.Truth = m.oracle.ProbeTruth(table, r.Known, r.Ask)
		}
		group.HITs = append(group.HITs, hit)
	}
	return &ProbeCall{m: m, reqs: reqs, group: group, pending: m.Submit(group)}, nil
}

// NewTuples solicits candidate tuples for a CROWD table, pre-filling the
// given column values (typically the probing query's join key, as in the
// paper's NotableAttendee example). want is the number of candidate tuples
// requested; each candidate is one worker's raw column->answer map.
func (m *Manager) NewTuples(table string, prefill map[string]sqltypes.Value, want int) ([]map[string]string, error) {
	res, err := m.NewTuplesBatch(table, []TupleRequest{{Prefill: prefill, Want: want}})
	if err != nil || res == nil {
		return nil, err
	}
	return res[0], nil
}

// TupleRequest asks for Want candidate tuples with the given prefill.
type TupleRequest struct {
	Prefill map[string]sqltypes.Value
	Want    int
}

// NewTuplesBatch solicits candidate tuples for many prefill keys in ONE
// HIT group. This is CrowdJoin's batching path (experiment E6): one group
// per join instead of one group per outer tuple. Results align with reqs.
func (m *Manager) NewTuplesBatch(table string, reqs []TupleRequest) ([][]map[string]string, error) {
	call, err := m.NewTuplesBatchAsync(table, reqs)
	if err != nil {
		return nil, err
	}
	return call.Wait()
}

// NewTuplesBatchAsync submits a tuple solicitation without waiting;
// the returned call's Wait collects the candidates.
func (m *Manager) NewTuplesBatchAsync(table string, reqs []TupleRequest) (*TupleCall, error) {
	total := 0
	for _, r := range reqs {
		total += r.Want
	}
	if total <= 0 {
		return nil, nil
	}
	group := &crowd.HITGroup{
		Title:       fmt.Sprintf("Contribute new %s entries", table),
		Description: fmt.Sprintf("Add new rows to the %s table.", table),
		Kind:        crowd.TaskNewTuple,
		Reward:      m.cfg.Reward,
		Assignments: m.cfg.NewTupleAssignments,
		Expiry:      m.cfg.MaxWait,
	}
	hitReq := make(map[string]int) // HIT ID -> request index
	for ri, r := range reqs {
		for i := 0; i < r.Want; i++ {
			fields, html, err := m.ui.NewTupleForm(table, r.Prefill)
			if err != nil {
				return nil, err
			}
			hit := &crowd.HIT{
				ID:     m.nextHITID("tuple"),
				Kind:   crowd.TaskNewTuple,
				Title:  group.Title,
				Fields: fields,
				HTML:   html,
			}
			if m.oracle != nil {
				hit.Truth = m.oracle.NewTupleTruth(table, r.Prefill, i)
			}
			hitReq[hit.ID] = ri
			group.HITs = append(group.HITs, hit)
		}
	}
	return &TupleCall{m: m, reqs: reqs, group: group, hitReq: hitReq, pending: m.Submit(group)}, nil
}

// collectTuples turns a solicitation group's assignments into usable
// candidate tuples aligned with the requests.
func (m *Manager) collectTuples(reqs []TupleRequest, group *crowd.HITGroup, hitReq map[string]int, byHIT map[string][]*crowd.Assignment) [][]map[string]string {
	out := make([][]map[string]string, len(reqs))
	for _, hit := range group.HITs {
		ri := hitReq[hit.ID]
		prefill := reqs[ri].Prefill
		for _, a := range byHIT[hit.ID] {
			tuple := make(map[string]string, len(a.Answers)+len(prefill))
			usable := false
			for col, ans := range a.Answers {
				tuple[col] = ans
				if !quality.IsGarbage(ans) {
					usable = true
				}
			}
			// Pre-filled columns were shown read-only; the Task Manager
			// knows their values and completes the candidate tuple.
			for col, v := range prefill {
				if _, answered := tuple[col]; !answered && !v.IsUnknown() {
					tuple[col] = v.String()
				}
			}
			if usable {
				out[ri] = append(out[ri], tuple)
			}
		}
	}
	return out
}

// ComparePair is one binary comparison task.
type ComparePair struct {
	Left, Right string
}

// CompareEqual asks the crowd whether pairs of values denote the same
// entity (CROWDEQUAL). Decisions are "yes"/"no" majority votes per pair.
func (m *Manager) CompareEqual(question string, pairs []ComparePair) ([]quality.Decision, error) {
	call, err := m.CompareEqualAsync(question, pairs)
	if err != nil {
		return nil, err
	}
	return call.Wait()
}

// CompareOrder asks the crowd which of two items ranks higher
// (CROWDORDER); each decision's Value is the winning item.
func (m *Manager) CompareOrder(question string, pairs []ComparePair) ([]quality.Decision, error) {
	call, err := m.CompareOrderAsync(question, pairs)
	if err != nil {
		return nil, err
	}
	return call.Wait()
}

// CompareEqualAsync submits a CROWDEQUAL batch without waiting.
func (m *Manager) CompareEqualAsync(question string, pairs []ComparePair) (*CompareCall, error) {
	return m.compareAsync(crowd.TaskCompareEqual, question, pairs)
}

// CompareOrderAsync submits a CROWDORDER batch without waiting.
func (m *Manager) CompareOrderAsync(question string, pairs []ComparePair) (*CompareCall, error) {
	return m.compareAsync(crowd.TaskCompareOrder, question, pairs)
}

func (m *Manager) compareAsync(kind crowd.TaskKind, question string, pairs []ComparePair) (*CompareCall, error) {
	if len(pairs) == 0 {
		return nil, nil
	}
	group := &crowd.HITGroup{
		Title:         "Compare items",
		Description:   question,
		Kind:          kind,
		Reward:        m.cfg.Reward,
		Assignments:   m.cfg.Assignments,
		Expiry:        m.cfg.MaxWait,
		AdaptiveVotes: m.cfg.AdaptiveVotes,
	}
	for _, p := range pairs {
		var fields []crowd.Field
		var html string
		var err error
		if kind == crowd.TaskCompareEqual {
			fields, html, err = m.ui.CompareEqualForm(question, p.Left, p.Right)
		} else {
			fields, html, err = m.ui.CompareOrderForm(question, p.Left, p.Right)
		}
		if err != nil {
			return nil, err
		}
		hit := &crowd.HIT{
			ID:     m.nextHITID("cmp"),
			Kind:   kind,
			Title:  group.Title,
			Fields: fields,
			HTML:   html,
		}
		if m.oracle != nil {
			hit.Truth = m.oracle.CompareTruth(kind, question, p.Left, p.Right)
		}
		group.HITs = append(group.HITs, hit)
	}
	return &CompareCall{m: m, pairs: pairs, group: group, pending: m.Submit(group)}, nil
}

// decide resolves one field over a HIT's assignments and feeds the
// quality tracker. Without a model tier it is the paper's majority vote;
// with one it is the tier-weighted resolution — each vote weighted by
// the worker's observed accuracy score, model votes further scaled by
// ModelVoteWeight — over the merged model and human answers.
func (m *Manager) decide(assignments []*crowd.Assignment, field string) quality.Decision {
	votes := make([]quality.Vote, 0, len(assignments))
	source := make(map[string]string, len(assignments))
	for _, a := range assignments {
		if ans, ok := a.Answers[field]; ok {
			votes = append(votes, quality.Vote{WorkerID: a.WorkerID, Answer: ans})
			source[a.WorkerID] = a.Source
		}
	}
	var d quality.Decision
	if m.cfg.ModelPlatform != nil {
		modelName := m.cfg.ModelPlatform.Name()
		d = quality.WeightedVote(votes, func(workerID string) float64 {
			w := m.tracker.Score(workerID)
			if source[workerID] == modelName {
				w *= m.cfg.ModelVoteWeight
			}
			return w
		}, 0.5)
	} else {
		d = quality.MajorityVote(votes, quality.MajorityFor(m.cfg.Assignments))
	}
	m.tracker.Record(d)
	m.mu.Lock()
	m.stats.Decisions++
	if len(votes) > 0 && len(votes) < m.cfg.Assignments {
		m.stats.PartialResults++
	}
	// Per-tier accuracy proxy: which platform's votes land on the
	// winning side. (Assignments fabricated without a Source — plumbing
	// tests — stay out of the split.)
	for _, w := range d.Agreed {
		if src := source[w]; src != "" {
			m.platformStatsLocked(src, func(ps *PlatformStats) { ps.VotesAgreed++ })
		}
	}
	for _, w := range d.Disagreed {
		if src := source[w]; src != "" {
			m.platformStatsLocked(src, func(ps *PlatformStats) { ps.VotesDisagreed++ })
		}
	}
	m.mu.Unlock()
	return d
}
