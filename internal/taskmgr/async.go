package taskmgr

// The asynchronous HIT-group scheduler (paper §3: "the Task Manager posts
// the tasks and the executor continues processing while the crowd works").
// Submit posts a group without waiting for its answers and returns a
// Pending handle; Wait blocks until the group completes or hits its
// deadline. Up to Config.MaxInFlight groups are live on the platform at
// once — further submissions queue and are admitted as slots free up.
//
// Virtual time advances only inside Wait: the first goroutine that blocks
// on an unresolved group takes the driver role, repeatedly polling every
// in-flight group and stepping the platform clock by PollInterval until
// its own group resolves, then hands the role to the next waiter. Exactly
// one goroutine ever steps the clock, so for a fixed seed and a fixed
// Submit order the simulation replays identically regardless of how many
// goroutines are waiting — the property the determinism tests pin down.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"crowddb/internal/crowd"
	"crowddb/internal/faultinject"
	"crowddb/internal/quality"
	"crowddb/internal/ui"
)

// ErrCancelled resolves a Pending whose submission was withdrawn before it
// was posted to the platform (see Pending.Cancel).
var ErrCancelled = errors.New("taskmgr: submission cancelled")

// Pending is a handle to an asynchronously submitted HIT group.
type Pending struct {
	m     *Manager
	group *crowd.HITGroup

	// Scheduler-owned fields, guarded by m.sched.mu until resolution.
	id         crowd.GroupID
	posted     bool
	wasQueued  bool
	postedAt   time.Duration
	resolvedAt time.Duration
	deadline   time.Duration
	// platform is the tier the group is currently live on (the model
	// platform first when routing is enabled, the human platform after
	// escalation or when routing is off); reward is the per-assignment
	// price it was posted at there.
	platform crowd.Platform
	reward   crowd.Cents
	// escalated marks a group re-posted to the human tier; modelByHIT
	// stashes the model tier's answers so resolution merges both tiers.
	escalated  bool
	modelByHIT map[string][]*crowd.Assignment
	// pollFails counts this group's transient status/expire/results
	// failures; the group is retried on later poll ticks (virtual-time
	// backoff) until Config.RetryAttempts is exhausted.
	pollFails int
	// expiredNoted guards the ExpiredGroups counter across collect
	// retries of the same expired group.
	expiredNoted bool

	// Result fields, written exactly once before done is closed.
	byHIT map[string][]*crowd.Assignment
	err   error
	done  chan struct{}
}

// Done reports, without blocking, whether the group has resolved.
func (p *Pending) Done() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// Wait blocks until the group completes, expires, or fails, and returns
// its assignments indexed by HIT ID. Concurrent waiters are safe; Wait may
// be called more than once and returns the same result each time.
func (p *Pending) Wait() (map[string][]*crowd.Assignment, error) {
	return p.WaitCtx(context.Background())
}

// WaitCtx is Wait with cancellation: it returns ctx.Err() as soon as the
// context is done, leaving the group live on the platform. An abandoned
// group keeps its window slot until the next driver (any later waiter)
// polls it to resolution — the scheduler self-heals, no goroutine stays
// behind. A cancelled WaitCtx may be retried; the group's result is
// unchanged by the abandonment.
func (p *Pending) WaitCtx(ctx context.Context) (map[string][]*crowd.Assignment, error) {
	m := p.m
	for {
		select {
		case <-p.done:
			return p.byHIT, p.err
		default:
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m.sched.mu.Lock()
		if m.sched.driving {
			// Another waiter owns the clock: block until our group resolves
			// or the driver hands off, then re-contend.
			handoff := m.sched.handoff
			m.sched.mu.Unlock()
			select {
			case <-p.done:
				return p.byHIT, p.err
			case <-handoff:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			continue
		}
		m.sched.driving = true
		m.sched.mu.Unlock()

		m.drive(p, ctx)

		m.sched.mu.Lock()
		m.sched.driving = false
		close(m.sched.handoff)
		m.sched.handoff = make(chan struct{})
		m.sched.mu.Unlock()
	}
}

// Cancel withdraws a submission that is still queued behind the in-flight
// window, resolving it with ErrCancelled, and reports whether it did.
// A group already posted to the platform is not recalled (the crowd may
// already be working it); cancelling a query therefore stops new HITs
// from ever reaching the platform while letting paid work settle.
func (p *Pending) Cancel() bool {
	m := p.m
	m.sched.mu.Lock()
	defer m.sched.mu.Unlock()
	for i, q := range m.sched.queued {
		if q == p {
			m.sched.queued = append(m.sched.queued[:i], m.sched.queued[i+1:]...)
			m.resolveLocked(p, nil, ErrCancelled)
			return true
		}
	}
	return false
}

// scheduler holds the in-flight window and the clock-driver token. Its
// mutex guards the pending lists and the Pending bookkeeping fields; it is
// never held while polling the platform (only across Post, which platforms
// must support concurrently anyway).
type scheduler struct {
	mu       sync.Mutex
	inflight []*Pending
	queued   []*Pending
	driving  bool
	handoff  chan struct{} // closed and replaced on every driver release
}

// Submit validates and posts a HIT group asynchronously. If the in-flight
// window is full the group is queued and posted when a slot frees (its
// deadline then runs from that later posting time). Submission errors are
// delivered through Wait.
func (m *Manager) Submit(group *crowd.HITGroup) *Pending {
	p := &Pending{m: m, group: group, done: make(chan struct{})}
	m.sched.mu.Lock()
	if len(m.sched.inflight) < m.cfg.MaxInFlight {
		m.admitLocked(p)
	} else {
		p.wasQueued = true
		m.sched.queued = append(m.sched.queued, p)
		m.noteQueueDepthLocked()
	}
	m.sched.mu.Unlock()
	return p
}

// admitLocked posts p to its first tier — the model platform when
// escalation routing is enabled, the human platform otherwise —
// retrying transient post errors with seeded exponential backoff.
// Called with sched.mu held (platforms must support concurrent Post
// anyway; with the default RetryBase of 0 the retries do not sleep, so
// the lock is not held across a wait). Only an exhausted retry budget
// resolves p with an error — and because a failed Post never reached
// the platform, a retried post is still posted exactly once and can
// never double-pay.
func (m *Manager) admitLocked(p *Pending) {
	target, spec := m.platform, p.group
	if m.cfg.ModelPlatform != nil {
		// Model tier first: same HITs (IDs carry over so escalation and
		// resolution can merge answers), the model tier's price, and its
		// own replication — except for new-tuple solicitations, where
		// each assignment is a distinct wanted candidate.
		ms := *p.group
		ms.Reward = m.cfg.ModelReward
		if ms.Kind != crowd.TaskNewTuple {
			ms.Assignments = m.cfg.ModelAssignments
		}
		target, spec = m.cfg.ModelPlatform, &ms
	}
	id, err := m.postWithRetry(target, spec)
	if err != nil {
		m.resolveLocked(p, nil, fmt.Errorf("taskmgr: post: %w", err))
		return
	}
	p.id = id
	p.posted = true
	p.platform = target
	p.reward = spec.Reward
	p.postedAt = target.Now()
	p.deadline = p.postedAt + m.cfg.MaxWait
	m.sched.inflight = append(m.sched.inflight, p)

	m.mu.Lock()
	m.stats.GroupsPosted++
	m.stats.HITsPosted += len(spec.HITs)
	if target == m.cfg.ModelPlatform {
		m.stats.ModelGroupsPosted++
	}
	m.platformStatsLocked(target.Name(), func(ps *PlatformStats) {
		ps.Groups++
		ps.HITs += len(spec.HITs)
	})
	if n := len(m.sched.inflight); n > m.stats.PeakInFlight {
		m.stats.PeakInFlight = n
	}
	m.mu.Unlock()
}

// postWithRetry attempts target.Post up to Config.RetryAttempts times.
func (m *Manager) postWithRetry(target crowd.Platform, group *crowd.HITGroup) (crowd.GroupID, error) {
	var id crowd.GroupID
	var err error
	for attempt := 1; ; attempt++ {
		faultinject.Hit("taskmgr.platform.post")
		id, err = target.Post(group)
		if err == nil || attempt >= m.cfg.RetryAttempts {
			return id, err
		}
		m.noteRetry()
		m.backoff(attempt)
	}
}

// noteRetry counts one absorbed transient failure.
func (m *Manager) noteRetry() {
	m.mu.Lock()
	m.stats.Retries++
	m.mu.Unlock()
}

// backoff sleeps RetryBase·2^(attempt-1), scaled by seeded jitter in
// [0.5,1.5). A zero RetryBase returns immediately without consuming
// jitter — simulated platforms retry on the next virtual poll tick.
func (m *Manager) backoff(attempt int) {
	if m.cfg.RetryBase <= 0 {
		return
	}
	d := m.cfg.RetryBase << (attempt - 1)
	m.mu.Lock()
	scale := 0.5 + m.jitter.Float64()
	m.mu.Unlock()
	time.Sleep(time.Duration(float64(d) * scale))
}

// noteTransient records a transient poll-path failure for p and reports
// whether the scheduler should retry it on a later tick (true) or give
// up and surface the error (false).
func (m *Manager) noteTransient(p *Pending) bool {
	m.sched.mu.Lock()
	p.pollFails++
	retry := p.pollFails < m.cfg.RetryAttempts
	m.sched.mu.Unlock()
	if retry {
		m.noteRetry()
	}
	return retry
}

func (m *Manager) noteQueueDepthLocked() {
	m.mu.Lock()
	if n := len(m.sched.queued); n > m.stats.PeakQueueDepth {
		m.stats.PeakQueueDepth = n
	}
	m.mu.Unlock()
}

// resolveLocked publishes p's result and admits queued groups into the
// freed slot. Called with sched.mu held.
func (m *Manager) resolveLocked(p *Pending, byHIT map[string][]*crowd.Assignment, err error) {
	for i, q := range m.sched.inflight {
		if q == p {
			m.sched.inflight = append(m.sched.inflight[:i], m.sched.inflight[i+1:]...)
			break
		}
	}
	if p.posted && err == nil {
		p.resolvedAt = p.platform.Now()
		// Observed round-trip: the cost model's latency feedback.
		m.recordLatency(p.resolvedAt - p.postedAt)
	}
	for len(m.sched.queued) > 0 && len(m.sched.inflight) < m.cfg.MaxInFlight {
		next := m.sched.queued[0]
		m.sched.queued = m.sched.queued[1:]
		m.admitLocked(next)
	}
	p.byHIT = byHIT
	p.err = err
	close(p.done)
}

// drive owns the platform clock: it polls every in-flight group, resolves
// the finished ones, and steps virtual time by PollInterval until target
// resolves. Exactly one goroutine runs drive at a time.
//
// CrowdTime accounting lives here: virtual time only ever advances in the
// Step below, so counting each step taken while at least one group is in
// flight yields the exact union of the in-flight intervals — overlapping
// groups count once, and for serial use it matches the old synchronous
// post-to-collect turnaround.
func (m *Manager) drive(target *Pending, ctx context.Context) {
	for {
		// A cancelled driver releases the clock without stepping further;
		// the next waiter (if any) takes over exactly where it left off.
		if ctx.Err() != nil {
			return
		}
		m.pollInflight()
		select {
		case <-target.done:
			return
		default:
		}
		m.sched.mu.Lock()
		busy := len(m.sched.inflight) > 0
		m.sched.mu.Unlock()
		m.platform.Step(m.cfg.PollInterval)
		if m.cfg.ModelPlatform != nil {
			// Both tiers share the poll cadence so their virtual
			// clocks stay in step across escalations.
			m.cfg.ModelPlatform.Step(m.cfg.PollInterval)
		}
		if busy {
			m.mu.Lock()
			m.stats.CrowdTime += m.cfg.PollInterval
			m.mu.Unlock()
		}
	}
}

// pollInflight checks every in-flight group once and resolves those that
// are done or past their deadline.
func (m *Manager) pollInflight() {
	m.sched.mu.Lock()
	live := append([]*Pending(nil), m.sched.inflight...)
	m.sched.mu.Unlock()

	for _, p := range live {
		faultinject.Hit("taskmgr.platform.status")
		st, err := p.platform.Status(p.id)
		if err != nil {
			if m.noteTransient(p) {
				continue // retried on the next poll tick
			}
			m.finish(p, nil, fmt.Errorf("taskmgr: status: %w", err))
			continue
		}
		switch {
		case st.Done():
			if st.Expired {
				m.countExpired(p)
			}
			m.collect(p)
		case p.platform.Now() >= p.deadline:
			// Deadline: expire and work with what we have (the paper's
			// operators must tolerate incomplete crowd answers).
			if err := p.platform.Expire(p.id); err != nil {
				if m.noteTransient(p) {
					continue
				}
				m.finish(p, nil, fmt.Errorf("taskmgr: expire: %w", err))
				continue
			}
			m.countExpired(p)
			m.collect(p)
		}
	}
}

// countExpired counts p as expired exactly once, however many collect
// retries the group goes through afterwards.
func (m *Manager) countExpired(p *Pending) {
	m.sched.mu.Lock()
	noted := p.expiredNoted
	p.expiredNoted = true
	m.sched.mu.Unlock()
	if noted {
		return
	}
	m.mu.Lock()
	m.stats.ExpiredGroups++
	m.mu.Unlock()
}

// collect gathers a finished group's assignments, settles payments, and
// resolves the Pending. A transient Results failure leaves the group in
// flight — the next poll tick sees it Done again and retries — until the
// retry budget is exhausted. Settle failures are never retried: payment
// is not known to be idempotent, and retrying could double-pay.
func (m *Manager) collect(p *Pending) {
	faultinject.Hit("taskmgr.platform.results")
	results, err := p.platform.Results(p.id)
	if err != nil {
		if m.noteTransient(p) {
			return
		}
		m.finish(p, nil, fmt.Errorf("taskmgr: results: %w", err))
		return
	}
	tier := p.platform.Name()
	for _, a := range results {
		// Stamp provenance so tier-weighted voting can tell the merged
		// answers apart (the model platform self-stamps; human
		// platforms do not know they are a tier).
		if a.Source == "" {
			a.Source = tier
		}
	}
	if m.payer != nil {
		approved, err := m.payer.Settle(p.platform, results)
		if err != nil {
			m.finish(p, nil, fmt.Errorf("taskmgr: settle: %w", err))
			return
		}
		m.mu.Lock()
		// Priced at the tier the group was posted on — the model tier's
		// reward differs from the human one.
		m.stats.ApprovedSpend += crowd.Cents(approved) * p.reward
		m.platformStatsLocked(tier, func(ps *PlatformStats) {
			ps.ApprovedSpend += crowd.Cents(approved) * p.reward
		})
		m.mu.Unlock()
	}
	m.mu.Lock()
	m.stats.AssignmentsIn += len(results)
	m.platformStatsLocked(tier, func(ps *PlatformStats) { ps.Assignments += len(results) })
	m.mu.Unlock()

	byHIT := make(map[string][]*crowd.Assignment)
	for _, a := range results {
		byHIT[a.HITID] = append(byHIT[a.HITID], a)
	}

	if m.cfg.ModelPlatform != nil && p.platform == m.cfg.ModelPlatform && !p.escalated {
		// Model tier resolved: escalate the HITs whose answers miss the
		// confidence or agreement floors; the rest stand as-is.
		if contested := m.contestedHITs(p.group, byHIT); len(contested) > 0 {
			if m.escalate(p, byHIT, contested) {
				return // now live on the human tier; a later poll resolves it
			}
			// The human tier refused the re-post even after retries;
			// degrade gracefully to the model answers we already paid for.
		}
	} else if p.escalated {
		// Human answers for the contested HITs merge with the model
		// answers for everything (model votes first, then human votes;
		// voting is order-independent, this just keeps replay stable).
		for hitID, human := range byHIT {
			byHIT[hitID] = append(append([]*crowd.Assignment{}, p.modelByHIT[hitID]...), human...)
		}
		for hitID, model := range p.modelByHIT {
			if _, ok := byHIT[hitID]; !ok {
				byHIT[hitID] = model
			}
		}
	}
	m.finish(p, byHIT, nil)
}

// contestedHITs returns the group's HITs whose model-tier answers are
// not trustworthy on their own: mean confidence below ConfidenceFloor,
// no usable answer, failed quorum, or a winning share below
// AgreementFloor on any input field.
func (m *Manager) contestedHITs(group *crowd.HITGroup, byHIT map[string][]*crowd.Assignment) []*crowd.HIT {
	var contested []*crowd.HIT
	for _, hit := range group.HITs {
		as := byHIT[hit.ID]
		if len(as) == 0 {
			contested = append(contested, hit)
			continue
		}
		conf := 0.0
		for _, a := range as {
			conf += a.Confidence
		}
		if conf/float64(len(as)) < m.cfg.ConfidenceFloor {
			contested = append(contested, hit)
			continue
		}
		for _, field := range hit.InputFields() {
			votes := make([]quality.Vote, 0, len(as))
			for _, a := range as {
				if ans, ok := a.Answers[field]; ok {
					votes = append(votes, quality.Vote{WorkerID: a.WorkerID, Answer: ans})
				}
			}
			d := quality.MajorityVote(votes, quality.MajorityFor(len(as)))
			if !d.Quorum || d.Confidence < m.cfg.AgreementFloor {
				contested = append(contested, hit)
				break
			}
		}
	}
	return contested
}

// escalate re-posts the contested HITs to the human platform at the
// human price and replication, keeping p in flight on the new tier. The
// group's deadline restarts from the human posting. Reports false when
// the post failed past its retry budget — the caller then resolves with
// the model answers alone.
func (m *Manager) escalate(p *Pending, modelByHIT map[string][]*crowd.Assignment, contested []*crowd.HIT) bool {
	spec := *p.group
	spec.HITs = contested
	m.sched.mu.Lock()
	defer m.sched.mu.Unlock()
	id, err := m.postWithRetry(m.platform, &spec)
	if err != nil {
		return false
	}
	p.id = id
	p.platform = m.platform
	p.reward = spec.Reward
	p.escalated = true
	p.modelByHIT = modelByHIT
	p.postedAt = m.platform.Now()
	p.deadline = p.postedAt + m.cfg.MaxWait
	p.pollFails = 0

	m.mu.Lock()
	m.stats.GroupsPosted++
	m.stats.HITsPosted += len(contested)
	m.stats.EscalatedGroups++
	m.stats.EscalatedHITs += len(contested)
	m.platformStatsLocked(m.platform.Name(), func(ps *PlatformStats) {
		ps.Groups++
		ps.HITs += len(contested)
	})
	m.mu.Unlock()
	return true
}

// finish resolves p under the scheduler lock.
func (m *Manager) finish(p *Pending, byHIT map[string][]*crowd.Assignment, err error) {
	m.sched.mu.Lock()
	m.resolveLocked(p, byHIT, err)
	m.sched.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Typed async calls: the futures the pipelined crowd operators consume.

// ProbeCall is an in-flight ProbeValues batch.
type ProbeCall struct {
	m       *Manager
	reqs    []ProbeRequest
	group   *crowd.HITGroup
	pending *Pending

	// decide() feeds the quality tracker and the decision counters, so the
	// derivation must run exactly once however often Wait is called.
	once sync.Once
	res  []ProbeResult
	err  error
}

// Wait blocks for the probe answers; results align with the request slice.
// Wait is idempotent: repeated calls return the same result.
func (c *ProbeCall) Wait() ([]ProbeResult, error) {
	return c.WaitCtx(context.Background())
}

// WaitCtx is Wait with cancellation. A cancelled WaitCtx returns ctx's
// error without consuming the result — a later Wait still collects it.
func (c *ProbeCall) WaitCtx(ctx context.Context) ([]ProbeResult, error) {
	if c == nil || c.pending == nil {
		return nil, nil
	}
	byHIT, err := c.pending.WaitCtx(ctx)
	if err != nil {
		return nil, err
	}
	c.once.Do(func() {
		out := make([]ProbeResult, len(c.reqs))
		for i, r := range c.reqs {
			hitID := c.group.HITs[i].ID
			res := ProbeResult{Decisions: make(map[string]quality.Decision, len(r.Ask))}
			for _, col := range r.Ask {
				res.Decisions[col] = c.m.decide(byHIT[hitID], col)
			}
			out[i] = res
		}
		c.res = out
	})
	return c.res, c.err
}

// Abort withdraws the batch if it is still queued behind the in-flight
// window (see Pending.Cancel) and reports whether it did; posted groups
// are left to resolve. Callers refund work counted for a withdrawn
// batch — it never reached the platform, so it was never committed.
func (c *ProbeCall) Abort() bool {
	return c != nil && c.pending != nil && c.pending.Cancel()
}

// TupleCall is an in-flight NewTuplesBatch solicitation.
type TupleCall struct {
	m       *Manager
	reqs    []TupleRequest
	group   *crowd.HITGroup
	hitReq  map[string]int
	pending *Pending

	once sync.Once
	res  [][]map[string]string
	err  error
}

// Wait blocks for the candidate tuples; results align with the requests.
// Wait is idempotent: repeated calls return the same result.
func (c *TupleCall) Wait() ([][]map[string]string, error) {
	return c.WaitCtx(context.Background())
}

// WaitCtx is Wait with cancellation; see ProbeCall.WaitCtx.
func (c *TupleCall) WaitCtx(ctx context.Context) ([][]map[string]string, error) {
	if c == nil || c.pending == nil {
		return nil, nil
	}
	byHIT, err := c.pending.WaitCtx(ctx)
	if err != nil {
		return nil, err
	}
	c.once.Do(func() {
		c.res = c.m.collectTuples(c.reqs, c.group, c.hitReq, byHIT)
	})
	return c.res, c.err
}

// Abort withdraws the batch if it is still queued; see ProbeCall.Abort.
func (c *TupleCall) Abort() bool {
	return c != nil && c.pending != nil && c.pending.Cancel()
}

// CompareCall is an in-flight comparison batch (CROWDEQUAL or CROWDORDER).
type CompareCall struct {
	m       *Manager
	pairs   []ComparePair
	group   *crowd.HITGroup
	pending *Pending

	once sync.Once
	res  []quality.Decision
	err  error
}

// Wait blocks for the majority-vote decisions; results align with pairs.
// Wait is idempotent: repeated calls return the same result.
func (c *CompareCall) Wait() ([]quality.Decision, error) {
	return c.WaitCtx(context.Background())
}

// WaitCtx is Wait with cancellation; see ProbeCall.WaitCtx.
func (c *CompareCall) WaitCtx(ctx context.Context) ([]quality.Decision, error) {
	if c == nil || c.pending == nil {
		return nil, nil
	}
	byHIT, err := c.pending.WaitCtx(ctx)
	if err != nil {
		return nil, err
	}
	c.once.Do(func() {
		out := make([]quality.Decision, len(c.pairs))
		for i := range c.pairs {
			out[i] = c.m.decide(byHIT[c.group.HITs[i].ID], ui.AnswerField)
		}
		c.res = out
	})
	return c.res, c.err
}

// Abort withdraws the batch if it is still queued; see ProbeCall.Abort.
func (c *CompareCall) Abort() bool {
	return c != nil && c.pending != nil && c.pending.Cancel()
}
