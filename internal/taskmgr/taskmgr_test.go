package taskmgr

import (
	"strings"
	"testing"
	"time"

	"crowddb/internal/catalog"
	"crowddb/internal/crowd"
	"crowddb/internal/crowd/amt"
	"crowddb/internal/quality"
	"crowddb/internal/sqltypes"
	"crowddb/internal/ui"
	"crowddb/internal/wrm"
)

// testOracle answers probes with "<title>-abstract", new tuples with
// sequential names, and comparisons with a fixed winner.
type testOracle struct{}

func (testOracle) ProbeTruth(table string, known map[string]sqltypes.Value, ask []string) *crowd.SimTruth {
	truth := make(map[string]string)
	for _, col := range ask {
		truth[col] = strings.ToLower(known["title"].Str()) + "-" + col
	}
	return &crowd.SimTruth{Truth: truth}
}

func (testOracle) NewTupleTruth(table string, prefill map[string]sqltypes.Value, i int) *crowd.SimTruth {
	return &crowd.SimTruth{Truth: map[string]string{
		"name":  []string{"Mike Franklin", "Donald Kossmann", "Tim Kraska", "Sam Madden"}[i%4],
		"title": prefill["title"].Str(),
	}}
}

func (testOracle) CompareTruth(kind crowd.TaskKind, question, left, right string) *crowd.SimTruth {
	if kind == crowd.TaskCompareEqual {
		ans := "no"
		if quality.Normalize(left) == quality.Normalize(right) {
			ans = "yes"
		}
		return &crowd.SimTruth{Truth: map[string]string{ui.AnswerField: ans}, Difficulty: 0.1}
	}
	// Order: lexicographically smaller item wins.
	win := left
	if right < left {
		win = right
	}
	return &crowd.SimTruth{Truth: map[string]string{ui.AnswerField: win}, Difficulty: 0.2}
}

func newManager(t *testing.T, seed int64) (*Manager, *amt.Platform) {
	t.Helper()
	cat := catalog.New()
	if err := cat.CreateTable(&catalog.Table{
		Name: "Talk",
		Columns: []catalog.Column{
			{Name: "title", Type: sqltypes.TypeString, PrimaryKey: true},
			{Name: "abstract", Type: sqltypes.TypeString, Crowd: true},
			{Name: "nb_attendees", Type: sqltypes.TypeInt, Crowd: true},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := cat.CreateTable(&catalog.Table{
		Name:  "NotableAttendee",
		Crowd: true,
		Columns: []catalog.Column{
			{Name: "name", Type: sqltypes.TypeString, PrimaryKey: true},
			{Name: "title", Type: sqltypes.TypeString},
		},
		ForeignKeys: []catalog.ForeignKey{{Columns: []string{"title"}, RefTable: "Talk", RefColumns: []string{"title"}}},
	}); err != nil {
		t.Fatal(err)
	}
	uim := ui.NewManager(cat)
	uim.GenerateAll()
	tracker := quality.NewTracker()
	platform := amt.NewDefault(seed)
	payer := wrm.New(wrm.DefaultPolicy(), tracker)
	return New(platform, uim, tracker, payer, testOracle{}, DefaultConfig()), platform
}

func TestProbeValues(t *testing.T) {
	m, _ := newManager(t, 5)
	reqs := []ProbeRequest{
		{Known: map[string]sqltypes.Value{"title": sqltypes.NewString("CrowdDB")}, Ask: []string{"abstract"}},
		{Known: map[string]sqltypes.Value{"title": sqltypes.NewString("Qurk")}, Ask: []string{"abstract", "nb_attendees"}},
	}
	res, err := m.ProbeValues("Talk", reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results: %d", len(res))
	}
	d := res[0].Decisions["abstract"]
	if quality.Normalize(d.Value) != "crowddb-abstract" {
		t.Errorf("probe answer: %+v", d)
	}
	if !d.Quorum {
		t.Errorf("majority expected with default accuracy: %+v", d)
	}
	if _, ok := res[1].Decisions["nb_attendees"]; !ok {
		t.Error("second ask column missing")
	}
	st := m.Stats()
	if st.GroupsPosted != 1 || st.HITsPosted != 2 {
		t.Errorf("stats: %+v", st)
	}
	if st.AssignmentsIn < 6 {
		t.Errorf("expected >= 6 assignments (3x replication): %+v", st)
	}
	if st.ApprovedSpend == 0 {
		t.Error("WRM settlement must pay workers")
	}
}

func TestNewTuples(t *testing.T) {
	m, _ := newManager(t, 5)
	tuples, err := m.NewTuples("NotableAttendee",
		map[string]sqltypes.Value{"title": sqltypes.NewString("CrowdDB")}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) < 3 {
		t.Fatalf("want >= 3 usable candidates, got %d", len(tuples))
	}
	for _, tup := range tuples {
		if tup["title"] == "" || tup["name"] == "" {
			t.Errorf("incomplete candidate: %v", tup)
		}
	}
}

func TestCompareEqual(t *testing.T) {
	m, _ := newManager(t, 5)
	ds, err := m.CompareEqual("Same company?", []ComparePair{
		{Left: "UC Berkeley", Right: "uc berkeley"},
		{Left: "UC Berkeley", Right: "Stanford"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if quality.Normalize(ds[0].Value) != "yes" {
		t.Errorf("identical values: %+v", ds[0])
	}
	if quality.Normalize(ds[1].Value) != "no" {
		t.Errorf("different values: %+v", ds[1])
	}
}

func TestCompareOrder(t *testing.T) {
	m, _ := newManager(t, 5)
	ds, err := m.CompareOrder("Which talk did you like better", []ComparePair{
		{Left: "BTalk", Right: "ATalk"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds[0].Value != "ATalk" {
		t.Errorf("winner: %+v", ds[0])
	}
}

func TestDeadlineExpiresGroup(t *testing.T) {
	m, p := newManager(t, 5)
	// Rebuild with a tiny deadline: almost no answers will arrive.
	cfg := DefaultConfig()
	cfg.MaxWait = 2 * time.Minute
	m = New(p, m.ui, m.tracker, nil, testOracle{}, cfg)
	res, err := m.ProbeValues("Talk", []ProbeRequest{
		{Known: map[string]sqltypes.Value{"title": sqltypes.NewString("X")}, Ask: []string{"abstract"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatal("must still return a (possibly empty) result per request")
	}
	st := m.Stats()
	if st.ExpiredGroups != 1 {
		t.Errorf("deadline must expire the group: %+v", st)
	}
}

func TestEmptyBatches(t *testing.T) {
	m, _ := newManager(t, 5)
	if res, err := m.ProbeValues("Talk", nil); err != nil || res != nil {
		t.Error("empty probe batch must be a no-op")
	}
	if res, err := m.NewTuples("NotableAttendee", nil, 0); err != nil || res != nil {
		t.Error("zero new tuples must be a no-op")
	}
	if res, err := m.CompareEqual("q", nil); err != nil || res != nil {
		t.Error("empty compare must be a no-op")
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	m := New(amt.NewDefault(1), nil, quality.NewTracker(), nil, nil, Config{})
	cfg := m.Config()
	if cfg.Assignments != 3 || cfg.Reward != 2 || cfg.PollInterval <= 0 || cfg.MaxWait <= 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if m.Platform().Name() != "amt" {
		t.Error("platform accessor")
	}
}

// TestObservedGroupLatency: resolved groups feed the round-trip sample
// ring; percentiles are ordered and surfaced through Stats.
func TestObservedGroupLatency(t *testing.T) {
	m, _ := newManager(t, 99)
	if _, _, n := m.LatencyStats(); n != 0 {
		t.Fatalf("no samples expected before any group resolves, got %d", n)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.CompareEqual("same company?", []ComparePair{
			{Left: "IBM", Right: "International Business Machines"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	p50, p90, n := m.LatencyStats()
	if n != 3 {
		t.Errorf("3 resolved groups must yield 3 samples, got %d", n)
	}
	if p50 <= 0 || p90 < p50 {
		t.Errorf("percentiles must be positive and ordered: p50=%v p90=%v", p50, p90)
	}
	st := m.Stats()
	if st.GroupLatencyP50 != p50 || st.GroupLatencyP90 != p90 || st.LatencySamples != n {
		t.Errorf("Stats must surface the latency numbers: %+v", st)
	}
}
