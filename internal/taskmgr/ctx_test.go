package taskmgr

// Tests for the context-aware scheduler surface: WaitCtx release, driver
// handoff on cancellation, and queued-submission withdrawal.

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestWaitCtxCancelReleasesWaiter: a cancelled WaitCtx returns promptly
// with the context error, leaves the group live, and a later Wait still
// collects the full result.
func TestWaitCtxCancelReleasesWaiter(t *testing.T) {
	m, _ := asyncManager(7, 8)
	p := m.Submit(truthGroup("ctx-a", 4))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.WaitCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled WaitCtx returned %v", err)
	}
	if p.Done() {
		t.Fatal("abandoned group resolved by a cancelled waiter")
	}

	// The next (uncancelled) waiter drives the clock and collects.
	byHIT, err := p.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(byHIT) != 4 {
		t.Fatalf("got %d HITs, want 4", len(byHIT))
	}
}

// TestWaitCtxCancelMidDrive: cancellation while this waiter owns the
// clock releases the driver role instead of spinning.
func TestWaitCtxCancelMidDrive(t *testing.T) {
	m, _ := asyncManager(11, 8)
	p := m.Submit(truthGroup("ctx-b", 6))

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.WaitCtx(ctx)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the waiter take the driver role
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) && err != nil {
			t.Fatalf("WaitCtx returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled driver never released")
	}
	// The scheduler is not wedged: a fresh waiter finishes the group.
	if _, err := p.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestCancelQueuedSubmission: a group still queued behind the in-flight
// window is withdrawn by Cancel — it never reaches the platform.
func TestCancelQueuedSubmission(t *testing.T) {
	m, _ := asyncManager(13, 1)

	first := m.Submit(truthGroup("ctx-c", 2))
	second := m.Submit(truthGroup("ctx-d", 2))
	if _, queued := m.Load(); queued != 1 {
		t.Fatalf("queued = %d, want 1", queued)
	}
	if !second.Cancel() {
		t.Fatal("Cancel did not find the queued submission")
	}
	if _, queued := m.Load(); queued != 0 {
		t.Fatalf("queued after cancel = %d, want 0", queued)
	}
	if _, err := second.Wait(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled submission resolved with %v", err)
	}
	// A posted group cannot be withdrawn.
	if first.Cancel() {
		t.Fatal("Cancel withdrew a posted group")
	}
	if _, err := first.Wait(); err != nil {
		t.Fatal(err)
	}
	// Only the first group's HITs ever reached the platform.
	if st := m.Stats(); st.GroupsPosted != 1 || st.HITsPosted != 2 {
		t.Errorf("posted %d groups / %d HITs, want 1 / 2", st.GroupsPosted, st.HITsPosted)
	}
}
