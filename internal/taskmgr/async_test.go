package taskmgr

// Tests for the asynchronous HIT scheduler: window semantics, concurrent
// Submit/Wait safety (run these with -race), error delivery, and the
// fixed-seed determinism contract.

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"crowddb/internal/crowd"
	"crowddb/internal/crowd/amt"
	"crowddb/internal/quality"
	"crowddb/internal/wrm"
)

// asyncManager builds a Manager over a fresh simulated AMT for direct
// Submit use (no UI templates or oracle needed: groups carry their truth).
func asyncManager(seed int64, window int) (*Manager, *amt.Platform) {
	platform := amt.NewDefault(seed)
	cfg := DefaultConfig()
	cfg.MaxInFlight = window
	tracker := quality.NewTracker()
	return New(platform, nil, tracker, wrm.New(wrm.DefaultPolicy(), tracker), nil, cfg), platform
}

// truthGroup builds a probe group of n HITs whose ground truth for HIT j
// is "v<j>", with IDs unique per (tag, j).
func truthGroup(tag string, n int) *crowd.HITGroup {
	g := &crowd.HITGroup{
		Title:       "async test " + tag,
		Kind:        crowd.TaskProbeValues,
		Reward:      2,
		Assignments: 3,
		Expiry:      72 * time.Hour,
	}
	for j := 0; j < n; j++ {
		g.HITs = append(g.HITs, &crowd.HIT{
			ID:   fmt.Sprintf("%s-H%03d", tag, j),
			Kind: crowd.TaskProbeValues,
			Fields: []crowd.Field{
				{Name: "item", Kind: crowd.FieldDisplay, Value: fmt.Sprintf("item %d", j)},
				{Name: "value", Kind: crowd.FieldInput, Label: "enter the value"},
			},
			Truth: &crowd.SimTruth{Truth: map[string]string{"value": fmt.Sprintf("v%d", j)}},
		})
	}
	return g
}

func TestSubmitWindowBoundsInflight(t *testing.T) {
	m, _ := asyncManager(3, 2)
	var pendings []*Pending
	for i := 0; i < 5; i++ {
		pendings = append(pendings, m.Submit(truthGroup(fmt.Sprintf("G%d", i), 4)))
	}
	for _, p := range pendings {
		byHIT, err := p.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if len(byHIT) != 4 {
			t.Errorf("HITs answered: %d", len(byHIT))
		}
	}
	st := m.Stats()
	if st.GroupsPosted != 5 {
		t.Errorf("groups posted: %d", st.GroupsPosted)
	}
	if st.PeakInFlight > 2 {
		t.Errorf("window 2 exceeded: peak in-flight %d", st.PeakInFlight)
	}
	if st.PeakQueueDepth != 3 {
		t.Errorf("5 submissions into window 2 must peak the queue at 3, got %d", st.PeakQueueDepth)
	}
	if st.MaxInFlight != 2 {
		t.Errorf("stats must echo the configured window: %d", st.MaxInFlight)
	}
}

// TestSubmitStorm hammers one manager from many goroutines — the
// race-detector workout for the scheduler, the platforms, and the WRM.
func TestSubmitStorm(t *testing.T) {
	m, _ := asyncManager(7, 4)
	const storm = 24
	var wg sync.WaitGroup
	errs := make(chan error, storm)
	for i := 0; i < storm; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := m.Submit(truthGroup(fmt.Sprintf("S%02d", i), 3))
			byHIT, err := p.Wait()
			if err != nil {
				errs <- err
				return
			}
			if len(byHIT) != 3 {
				errs <- fmt.Errorf("group %d: %d HITs answered", i, len(byHIT))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := m.Stats()
	if st.GroupsPosted != storm {
		t.Errorf("groups posted: %d", st.GroupsPosted)
	}
	if st.PeakInFlight > 4 {
		t.Errorf("window 4 exceeded: peak in-flight %d", st.PeakInFlight)
	}
	if st.AssignmentsIn < storm*3*3 {
		t.Errorf("assignments in: %d", st.AssignmentsIn)
	}
}

// TestConcurrentWaiters has several goroutines wait on the SAME pending
// group; all must see the identical result.
func TestConcurrentWaiters(t *testing.T) {
	m, _ := asyncManager(11, 8)
	p := m.Submit(truthGroup("W", 5))
	const waiters = 8
	results := make([]map[string][]*crowd.Assignment, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			byHIT, err := p.Wait()
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = byHIT
		}()
	}
	wg.Wait()
	if !p.Done() {
		t.Fatal("pending must be resolved after Wait")
	}
	for i := 1; i < waiters; i++ {
		if len(results[i]) != len(results[0]) {
			t.Errorf("waiter %d saw a different result", i)
		}
	}
}

// TestTypedWaitIdempotent pins the quality-control accounting: however
// often a typed call's Wait runs, decisions are derived (and fed to the
// tracker and Stats) exactly once.
func TestTypedWaitIdempotent(t *testing.T) {
	m, _ := newManager(t, 5)
	call, err := m.CompareEqualAsync("Same company?", []ComparePair{
		{Left: "UC Berkeley", Right: "Stanford"},
		{Left: "MIT", Right: "mit"},
	})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := call.Wait()
	if err != nil {
		t.Fatal(err)
	}
	before := m.Stats().Decisions
	d2, err := call.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if after := m.Stats().Decisions; after != before {
		t.Errorf("second Wait must not re-count decisions: %d -> %d", before, after)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Errorf("repeated Wait must return the identical decisions")
	}
}

func TestSubmitErrorDelivery(t *testing.T) {
	m, _ := asyncManager(1, 8)
	// An empty group fails platform validation at post time; the error
	// must come back through Wait, not wedge the scheduler.
	p := m.Submit(&crowd.HITGroup{Title: "empty", Reward: 2, Assignments: 3})
	if _, err := p.Wait(); err == nil {
		t.Fatal("posting an invalid group must surface an error")
	}
	// The scheduler must still work afterwards.
	if _, err := m.Submit(truthGroup("OK", 2)).Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlineExpiresAsyncGroups(t *testing.T) {
	platform := amt.NewDefault(5)
	cfg := DefaultConfig()
	cfg.MaxWait = 2 * time.Minute
	cfg.MaxInFlight = 4
	tracker := quality.NewTracker()
	m := New(platform, nil, tracker, nil, nil, cfg)
	a := m.Submit(truthGroup("A", 2))
	b := m.Submit(truthGroup("B", 2))
	if _, err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.ExpiredGroups != 2 {
		t.Errorf("both groups must expire at the 2-minute deadline: %+v", st)
	}
}

// majorityAnswers reduces a resolved group to its per-HIT majority answer.
func majorityAnswers(byHIT map[string][]*crowd.Assignment) map[string]string {
	out := make(map[string]string, len(byHIT))
	for hitID, as := range byHIT {
		var votes []quality.Vote
		for _, a := range as {
			votes = append(votes, quality.Vote{WorkerID: a.WorkerID, Answer: a.Answers["value"]})
		}
		out[hitID] = quality.Normalize(quality.MajorityVote(votes, 2).Value)
	}
	return out
}

// runAsyncWorkload submits `groups` probe groups and returns every group's
// majority answers plus the final virtual time.
func runAsyncWorkload(seed int64, window, groups int) (map[string]string, time.Duration, error) {
	m, platform := asyncManager(seed, window)
	var pendings []*Pending
	for i := 0; i < groups; i++ {
		pendings = append(pendings, m.Submit(truthGroup(fmt.Sprintf("D%02d", i), 6)))
	}
	answers := make(map[string]string)
	for _, p := range pendings {
		byHIT, err := p.Wait()
		if err != nil {
			return nil, 0, err
		}
		for k, v := range majorityAnswers(byHIT) {
			answers[k] = v
		}
	}
	return answers, platform.Now(), nil
}

// TestAsyncDeterministicPerSeed is the fixed-seed regression: for a fixed
// Submit order, the scheduler must replay the simulation identically run
// after run — including at windows > 1, where several groups interleave
// on one virtual clock.
func TestAsyncDeterministicPerSeed(t *testing.T) {
	for _, window := range []int{1, 8} {
		a1, t1, err := runAsyncWorkload(42, window, 6)
		if err != nil {
			t.Fatal(err)
		}
		a2, t2, err := runAsyncWorkload(42, window, 6)
		if err != nil {
			t.Fatal(err)
		}
		if t1 != t2 {
			t.Errorf("window %d: virtual makespan differs across runs: %v vs %v", window, t1, t2)
		}
		if !reflect.DeepEqual(a1, a2) {
			t.Errorf("window %d: answers differ across runs", window)
		}
	}
}

// TestAsyncVsSerialDecisions pins the async-vs-serial tolerance. Window 1
// IS the serial task manager (groups post one at a time, exactly like the
// old postAndCollect loop). Wider windows post groups at earlier virtual
// times, so the worker-arrival sample sequence shifts and individual raw
// answers may differ — but majority voting absorbs the noise: decision
// outcomes must agree on at least 90% of HITs, and in practice agree on
// all of them for the default simulator accuracy.
func TestAsyncVsSerialDecisions(t *testing.T) {
	serial, serialTime, err := runAsyncWorkload(42, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	async, asyncTime, err := runAsyncWorkload(42, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(async) {
		t.Fatalf("HIT coverage differs: %d vs %d", len(serial), len(async))
	}
	agree := 0
	for k, v := range serial {
		if async[k] == v {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(serial)); frac < 0.9 {
		t.Errorf("async decisions diverge from serial beyond tolerance: %.0f%% agreement", frac*100)
	}
	// And the async schedule must actually be faster wall-clock.
	if asyncTime >= serialTime {
		t.Errorf("window 8 must beat window 1: %v vs %v", asyncTime, serialTime)
	}
}
