package workload

import (
	"strings"
	"testing"

	"crowddb/internal/crowd"
	"crowddb/internal/sqltypes"
)

func TestConferenceDeterministic(t *testing.T) {
	c1 := NewConference(10, 5)
	c2 := NewConference(10, 5)
	for i := range c1.Talks {
		if c1.Talks[i] != c2.Talks[i] {
			t.Fatal("same seed must generate identical talks")
		}
	}
	if len(c1.Talks) != 10 {
		t.Errorf("talks: %d", len(c1.Talks))
	}
}

func TestConferenceTalkLookup(t *testing.T) {
	c := NewConference(5, 1)
	info, ok := c.Talk(strings.ToUpper(c.Talks[2].Title))
	if !ok || info.Title != c.Talks[2].Title {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := c.Talk("nope"); ok {
		t.Error("missing talk found")
	}
}

func TestConferencePreferenceRanking(t *testing.T) {
	c := NewConference(8, 2)
	ranking := c.PreferenceRanking()
	if len(ranking) != 8 {
		t.Fatal("ranking size")
	}
	for i := 1; i < len(ranking); i++ {
		prev, _ := c.Talk(ranking[i-1])
		cur, _ := c.Talk(ranking[i])
		if prev.Preference < cur.Preference {
			t.Fatal("ranking must be best-first")
		}
	}
}

func TestConferenceOracleProbe(t *testing.T) {
	c := NewConference(5, 3)
	o := c.Oracle()
	known := map[string]sqltypes.Value{"title": sqltypes.NewString(c.Talks[0].Title)}
	truth := o.ProbeTruth("Talk", known, []string{"abstract", "nb_attendees"})
	if truth == nil {
		t.Fatal("no truth for known talk")
	}
	if truth.Truth["abstract"] != c.Talks[0].Abstract {
		t.Error("abstract truth")
	}
	if truth.Truth["nb_attendees"] == "" {
		t.Error("attendance truth")
	}
	if len(truth.Wrong["nb_attendees"]) == 0 {
		t.Error("plausible wrong answers expected")
	}
	if got := o.ProbeTruth("Talk", map[string]sqltypes.Value{"title": sqltypes.NewString("ghost")}, []string{"abstract"}); got != nil {
		t.Error("unknown talk must have no truth")
	}
	if got := o.ProbeTruth("Unregistered", known, nil); got != nil {
		t.Error("unregistered table must have no truth")
	}
}

func TestConferenceOracleTuples(t *testing.T) {
	c := NewConference(5, 4)
	o := c.Oracle()
	title := c.Talks[0].Title
	prefill := map[string]sqltypes.Value{"title": sqltypes.NewString(title)}
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		truth := o.NewTupleTruth("NotableAttendee", prefill, i)
		if truth == nil || truth.Truth["name"] == "" {
			t.Fatalf("tuple truth %d: %+v", i, truth)
		}
		if truth.Truth["title"] != title {
			t.Error("prefilled title must round-trip")
		}
		seen[truth.Truth["name"]] = true
	}
	if len(seen) < 1 {
		t.Error("no names generated")
	}
}

func TestConferenceOracleCompare(t *testing.T) {
	c := NewConference(6, 5)
	o := c.Oracle()
	a, b := c.Talks[0], c.Talks[1]
	truth := o.CompareTruth(crowd.TaskCompareOrder, "q", a.Title, b.Title)
	want := a.Title
	if b.Preference > a.Preference {
		want = b.Title
	}
	if truth.Truth["answer"] != want {
		t.Errorf("order truth: %v", truth.Truth)
	}
	eq := o.CompareTruth(crowd.TaskCompareEqual, "q", "X", " x ")
	if eq.Truth["answer"] != "yes" {
		t.Errorf("loose equality: %v", eq.Truth)
	}
}

func TestCompaniesVariantsResolve(t *testing.T) {
	cs := NewCompanies(8, 7)
	for _, c := range cs.List {
		if len(c.Variants) == 0 {
			t.Fatalf("%s has no variants", c.Canonical)
		}
		for _, v := range c.Variants {
			got := cs.CanonicalOf(v)
			// Abbreviations may collide; dropped-letter and case variants
			// must resolve to their own canonical.
			if got != "" && got != c.Canonical && v != c.Variants[0] && v != c.Variants[1] {
				t.Errorf("variant %q of %q resolved to %q", v, c.Canonical, got)
			}
		}
		if cs.CanonicalOf(c.Canonical) != c.Canonical {
			t.Errorf("canonical must resolve to itself: %q", c.Canonical)
		}
	}
	if cs.CanonicalOf("completely unknown") != "" {
		t.Error("unknown surface form must not resolve")
	}
}

func TestCompaniesOracle(t *testing.T) {
	cs := NewCompanies(4, 8)
	o := cs.Oracle()
	c := cs.List[0]
	same := o.CompareTruth(crowd.TaskCompareEqual, "", c.Canonical, strings.ToLower(c.Canonical))
	if same.Truth["answer"] != "yes" {
		t.Errorf("case variant: %v", same.Truth)
	}
	diff := o.CompareTruth(crowd.TaskCompareEqual, "", cs.List[0].Canonical, cs.List[1].Canonical)
	if diff.Truth["answer"] != "no" {
		t.Errorf("different companies: %v", diff.Truth)
	}
}

func TestUniversityOracle(t *testing.T) {
	u := NewUniversity(10, 9)
	o := u.Oracle()
	p := u.Professors[3]
	truth := o.ProbeTruth("Professor",
		map[string]sqltypes.Value{"name": sqltypes.NewString(p.Name)},
		[]string{"email", "department"})
	if truth == nil || truth.Truth["email"] != p.Email || truth.Truth["department"] != p.Department {
		t.Errorf("professor truth: %+v", truth)
	}
	if o.ProbeTruth("Professor", map[string]sqltypes.Value{"name": sqltypes.NewString("Dr. Nobody")}, []string{"email"}) != nil {
		t.Error("unknown professor")
	}
}

func TestRestaurantsOracle(t *testing.T) {
	r := NewRestaurants(6, 10)
	o := r.Oracle()
	ranking := r.QualityRanking()
	if len(ranking) != 6 {
		t.Fatal("ranking size")
	}
	best, worst := ranking[0], ranking[len(ranking)-1]
	truth := o.CompareTruth(crowd.TaskCompareOrder, "", best, worst)
	if truth.Truth["answer"] != best {
		t.Errorf("best must win: %v", truth.Truth)
	}
	tup := o.NewTupleTruth("Restaurant", nil, 2)
	if tup == nil || tup.Truth["name"] != r.List[2].Name {
		t.Errorf("tuple truth: %+v", tup)
	}
	unknown := o.CompareTruth(crowd.TaskCompareOrder, "", "ghost a", "ghost b")
	if len(unknown.Truth) != 0 {
		t.Error("unknown restaurants must have no truth")
	}
}

func TestOracleUnregisteredHandlers(t *testing.T) {
	o := NewOracle()
	if o.ProbeTruth("x", nil, nil) != nil || o.NewTupleTruth("x", nil, 0) != nil ||
		o.CompareTruth(crowd.TaskCompareEqual, "", "a", "b") != nil {
		t.Error("empty oracle must return nil truths")
	}
}
