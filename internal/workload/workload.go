// Package workload generates the experiment datasets and their
// simulation-only ground-truth oracles. Each dataset mirrors a workload of
// the paper's evaluation: the VLDB conference schema of the demo's
// examples (talks, notable attendees, talk preference), the company
// entity-resolution workload (CROWDEQUAL), the professor-directory probe
// workload (CrowdProbe), and venue restaurants for the mobile platform.
//
// The oracle implements taskmgr.Oracle: it tells simulated workers what a
// correct answer looks like. CrowdDB itself never sees it.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"crowddb/internal/crowd"
	"crowddb/internal/sqltypes"
	"crowddb/internal/taskmgr"
)

// Oracle is a composable taskmgr.Oracle: datasets register handlers per
// table; comparisons go to a single handler.
type Oracle struct {
	probe   map[string]func(known map[string]sqltypes.Value, ask []string) *crowd.SimTruth
	tuple   map[string]func(prefill map[string]sqltypes.Value, i int) *crowd.SimTruth
	compare func(kind crowd.TaskKind, question, left, right string) *crowd.SimTruth
}

// NewOracle returns an empty oracle.
func NewOracle() *Oracle {
	return &Oracle{
		probe: make(map[string]func(map[string]sqltypes.Value, []string) *crowd.SimTruth),
		tuple: make(map[string]func(map[string]sqltypes.Value, int) *crowd.SimTruth),
	}
}

// RegisterProbe installs the probe-truth handler for a table.
func (o *Oracle) RegisterProbe(table string, fn func(known map[string]sqltypes.Value, ask []string) *crowd.SimTruth) {
	o.probe[strings.ToLower(table)] = fn
}

// RegisterTuple installs the new-tuple-truth handler for a table.
func (o *Oracle) RegisterTuple(table string, fn func(prefill map[string]sqltypes.Value, i int) *crowd.SimTruth) {
	o.tuple[strings.ToLower(table)] = fn
}

// RegisterCompare installs the comparison-truth handler.
func (o *Oracle) RegisterCompare(fn func(kind crowd.TaskKind, question, left, right string) *crowd.SimTruth) {
	o.compare = fn
}

// ProbeTruth implements taskmgr.Oracle.
func (o *Oracle) ProbeTruth(table string, known map[string]sqltypes.Value, ask []string) *crowd.SimTruth {
	if fn, ok := o.probe[strings.ToLower(table)]; ok {
		return fn(known, ask)
	}
	return nil
}

// NewTupleTruth implements taskmgr.Oracle.
func (o *Oracle) NewTupleTruth(table string, prefill map[string]sqltypes.Value, i int) *crowd.SimTruth {
	if fn, ok := o.tuple[strings.ToLower(table)]; ok {
		return fn(prefill, i)
	}
	return nil
}

// CompareTruth implements taskmgr.Oracle.
func (o *Oracle) CompareTruth(kind crowd.TaskKind, question, left, right string) *crowd.SimTruth {
	if o.compare != nil {
		return o.compare(kind, question, left, right)
	}
	return nil
}

var _ taskmgr.Oracle = (*Oracle)(nil)

// ---------------------------------------------------------------------------
// Conference: the demo paper's running example (§2).

// TalkInfo is the ground truth for one VLDB talk.
type TalkInfo struct {
	Title       string
	Abstract    string
	NbAttendees int
	// Preference is the hidden favorability score CROWDORDER answers
	// derive from (Example 3: "Which talk did you like better").
	Preference float64
}

// Conference is the VLDB-2011 demo dataset.
type Conference struct {
	Talks []TalkInfo
	// Notable maps a talk title to its notable attendees (the open-world
	// content of the NotableAttendee CROWD table, Example 2).
	Notable map[string][]string

	rng *rand.Rand
}

var talkTopics = []string{
	"Crowdsourced Query Processing", "Column-Store Compression", "Adaptive Indexing",
	"Stream Processing at Scale", "Probabilistic Databases", "Graph Pattern Mining",
	"Transactional Memory for OLTP", "Declarative Machine Learning", "Elastic Cloud Databases",
	"Provenance Tracking", "Skyline Queries", "Entity Resolution at Web Scale",
	"Main-Memory Hash Joins", "Flash-Aware Storage", "Workload-Driven Partitioning",
	"Array Databases for Science", "Privacy-Preserving Analytics", "Temporal Query Languages",
	"Self-Tuning Optimizers", "Energy-Efficient Query Processing",
}

var researcherNames = []string{
	"Mike Franklin", "Donald Kossmann", "Tim Kraska", "Sam Madden", "Amber Feng",
	"Reynold Xin", "Sukriti Ramesh", "Andrew Wang", "Jennifer Widom", "David DeWitt",
	"Michael Stonebraker", "Surajit Chaudhuri", "Anastasia Ailamaki", "Joe Hellerstein",
	"Magda Balazinska", "Daniel Abadi", "Jens Dittrich", "Volker Markl",
	"Laura Haas", "Gustavo Alonso", "Peter Boncz", "Stratos Idreos",
}

// NewConference generates n talks with deterministic ground truth.
func NewConference(n int, seed int64) *Conference {
	rng := rand.New(rand.NewSource(seed))
	c := &Conference{Notable: make(map[string][]string), rng: rng}
	for i := 0; i < n; i++ {
		topic := talkTopics[i%len(talkTopics)]
		title := fmt.Sprintf("%s %d", topic, i+1)
		c.Talks = append(c.Talks, TalkInfo{
			Title:       title,
			Abstract:    fmt.Sprintf("We present new techniques for %s, improving on the state of the art.", strings.ToLower(topic)),
			NbAttendees: 30 + rng.Intn(270),
			Preference:  rng.Float64(),
		})
		// 1-4 notable attendees per talk.
		k := 1 + rng.Intn(4)
		perm := rng.Perm(len(researcherNames))
		for j := 0; j < k; j++ {
			c.Notable[title] = append(c.Notable[title], researcherNames[perm[j]])
		}
	}
	return c
}

// Talk returns the ground truth for a title.
func (c *Conference) Talk(title string) (TalkInfo, bool) {
	for _, t := range c.Talks {
		if strings.EqualFold(t.Title, title) {
			return t, true
		}
	}
	return TalkInfo{}, false
}

// PreferenceRanking returns talk titles best-first — the ground truth for
// CROWDORDER quality measurements (experiment E8).
func (c *Conference) PreferenceRanking() []string {
	talks := append([]TalkInfo(nil), c.Talks...)
	sort.Slice(talks, func(i, j int) bool { return talks[i].Preference > talks[j].Preference })
	titles := make([]string, len(talks))
	for i, t := range talks {
		titles[i] = t.Title
	}
	return titles
}

// Oracle builds the simulation oracle for the conference schema: Talk
// probes, NotableAttendee tuples, and talk-preference comparisons.
func (c *Conference) Oracle() *Oracle {
	o := NewOracle()
	o.RegisterProbe("Talk", func(known map[string]sqltypes.Value, ask []string) *crowd.SimTruth {
		title := known["title"].Str()
		info, ok := c.Talk(title)
		if !ok {
			return nil
		}
		truth := make(map[string]string)
		wrong := make(map[string][]string)
		for _, col := range ask {
			switch strings.ToLower(col) {
			case "abstract":
				truth[col] = info.Abstract
				wrong[col] = []string{"An interesting talk about databases.", "See the proceedings."}
			case "nb_attendees":
				truth[col] = fmt.Sprintf("%d", info.NbAttendees)
				// Counting a room is noisy: plausible wrong answers are
				// nearby counts.
				wrong[col] = []string{
					fmt.Sprintf("%d", info.NbAttendees+5+c.rng.Intn(30)),
					fmt.Sprintf("%d", maxInt(1, info.NbAttendees-5-c.rng.Intn(30))),
				}
			}
		}
		return &crowd.SimTruth{Truth: truth, Wrong: wrong, Difficulty: 0.1}
	})
	o.RegisterTuple("NotableAttendee", func(prefill map[string]sqltypes.Value, i int) *crowd.SimTruth {
		title := ""
		if v, ok := prefill["title"]; ok {
			title = v.Str()
		}
		names := c.Notable[title]
		if len(names) == 0 {
			// Workers asked about an unknown talk improvise.
			return &crowd.SimTruth{Truth: map[string]string{
				"name":  researcherNames[i%len(researcherNames)],
				"title": title,
			}, Difficulty: 0.5}
		}
		return &crowd.SimTruth{Truth: map[string]string{
			"name":  names[i%len(names)],
			"title": title,
		}, Difficulty: 0.1}
	})
	o.RegisterCompare(func(kind crowd.TaskKind, question, left, right string) *crowd.SimTruth {
		if kind == crowd.TaskCompareEqual {
			ans := "no"
			if normalizeLoose(left) == normalizeLoose(right) {
				ans = "yes"
			}
			return &crowd.SimTruth{Truth: map[string]string{"answer": ans}, Difficulty: 0.15}
		}
		li, lok := c.Talk(left)
		ri, rok := c.Talk(right)
		if !lok || !rok {
			return &crowd.SimTruth{Difficulty: 1}
		}
		win := left
		if ri.Preference > li.Preference {
			win = right
		}
		// Subjective comparisons are harder when preferences are close.
		diff := 0.15 + 0.5*(1-absF(li.Preference-ri.Preference))
		return &crowd.SimTruth{Truth: map[string]string{"answer": win}, Difficulty: diff}
	})
	return o
}

// ---------------------------------------------------------------------------
// Companies: the SIGMOD paper's entity-resolution workload (CROWDEQUAL).

// Company is one canonical entity with surface-form variants.
type Company struct {
	Canonical string
	Variants  []string
	HQ        string
}

// Companies is the entity-resolution dataset.
type Companies struct {
	List []Company
}

var companySeeds = []struct{ name, hq string }{
	{"International Business Machines", "Armonk"},
	{"Microsoft Corporation", "Redmond"},
	{"Google Incorporated", "Mountain View"},
	{"Oracle Corporation", "Redwood City"},
	{"Amazon.com Incorporated", "Seattle"},
	{"Apple Incorporated", "Cupertino"},
	{"Hewlett Packard Company", "Palo Alto"},
	{"Intel Corporation", "Santa Clara"},
	{"Cisco Systems", "San Jose"},
	{"SAP Aktiengesellschaft", "Walldorf"},
	{"Salesforce.com", "San Francisco"},
	{"Teradata Corporation", "Dayton"},
	{"Sybase Incorporated", "Dublin"},
	{"Netezza Corporation", "Marlborough"},
	{"Vertica Systems", "Billerica"},
	{"Greenplum Incorporated", "San Mateo"},
}

// NewCompanies builds n companies (cycling the seed list) with misspelled
// and abbreviated variants.
func NewCompanies(n int, seed int64) *Companies {
	rng := rand.New(rand.NewSource(seed))
	cs := &Companies{}
	for i := 0; i < n; i++ {
		s := companySeeds[i%len(companySeeds)]
		name := s.name
		if i >= len(companySeeds) {
			name = fmt.Sprintf("%s %d", s.name, i/len(companySeeds)+1)
		}
		c := Company{Canonical: name, HQ: s.hq}
		// Variants: abbreviation, typo, case damage.
		words := strings.Fields(name)
		if len(words) > 1 {
			var abbr []byte
			for _, w := range words {
				abbr = append(abbr, w[0])
			}
			c.Variants = append(c.Variants, string(abbr))
			c.Variants = append(c.Variants, words[0])
		}
		if len(name) > 4 {
			i := 1 + rng.Intn(len(name)-2)
			c.Variants = append(c.Variants, name[:i]+name[i+1:]) // dropped letter
		}
		c.Variants = append(c.Variants, strings.ToLower(name))
		cs.List = append(cs.List, c)
	}
	return cs
}

// CanonicalOf resolves a surface form to its canonical name ("" if none).
func (cs *Companies) CanonicalOf(surface string) string {
	n := normalizeLoose(surface)
	for _, c := range cs.List {
		if normalizeLoose(c.Canonical) == n {
			return c.Canonical
		}
		for _, v := range c.Variants {
			if normalizeLoose(v) == n {
				return c.Canonical
			}
		}
	}
	return ""
}

// Oracle builds the entity-resolution oracle: CROWDEQUAL answers are "yes"
// iff both surface forms map to the same canonical entity.
func (cs *Companies) Oracle() *Oracle {
	o := NewOracle()
	o.RegisterCompare(func(kind crowd.TaskKind, question, left, right string) *crowd.SimTruth {
		if kind != crowd.TaskCompareEqual {
			return &crowd.SimTruth{Difficulty: 1}
		}
		lc, rc := cs.CanonicalOf(left), cs.CanonicalOf(right)
		ans := "no"
		if lc != "" && lc == rc {
			ans = "yes"
		}
		// Entity resolution is moderately hard for humans too.
		return &crowd.SimTruth{Truth: map[string]string{"answer": ans}, Difficulty: 0.25}
	})
	return o
}

// ---------------------------------------------------------------------------
// University: the SIGMOD CrowdProbe workload (professor directory).

// Professor is ground truth for one directory entry.
type Professor struct {
	Name       string
	Email      string
	Department string
}

// University is the professor-directory dataset.
type University struct {
	Professors []Professor
}

var departments = []string{"Computer Science", "EECS", "Statistics", "Mathematics", "Information School"}

// NewUniversity builds n professors with derivable emails.
func NewUniversity(n int, seed int64) *University {
	rng := rand.New(rand.NewSource(seed))
	u := &University{}
	for i := 0; i < n; i++ {
		first := string(rune('a' + rng.Intn(26)))
		last := fmt.Sprintf("prof%03d", i)
		u.Professors = append(u.Professors, Professor{
			Name:       fmt.Sprintf("%s. %s", strings.ToUpper(first), strings.ToUpper(last[:1])+last[1:]),
			Email:      fmt.Sprintf("%s%s@university.edu", first, last),
			Department: departments[rng.Intn(len(departments))],
		})
	}
	return u
}

// Oracle builds the probe oracle for the Professor table.
func (u *University) Oracle() *Oracle {
	o := NewOracle()
	o.RegisterProbe("Professor", func(known map[string]sqltypes.Value, ask []string) *crowd.SimTruth {
		name := known["name"].Str()
		for _, p := range u.Professors {
			if strings.EqualFold(p.Name, name) {
				truth := make(map[string]string)
				wrong := make(map[string][]string)
				for _, col := range ask {
					switch strings.ToLower(col) {
					case "email":
						truth[col] = p.Email
						wrong[col] = []string{strings.Replace(p.Email, "@", "@cs.", 1)}
					case "department":
						truth[col] = p.Department
						wrong[col] = departments
					}
				}
				return &crowd.SimTruth{Truth: truth, Wrong: wrong, Difficulty: 0.1}
			}
		}
		return nil
	})
	return o
}

// ---------------------------------------------------------------------------
// Restaurants: the demo's mobile scenario (§4, "nearby restaurant
// recommendations").

// Restaurant is one venue-area restaurant with a hidden quality score.
type Restaurant struct {
	Name    string
	Cuisine string
	Quality float64
}

// Restaurants is the mobile-platform dataset.
type Restaurants struct {
	List []Restaurant
}

var cuisines = []string{"Seafood", "Italian", "Thai", "Steakhouse", "Vegetarian", "Diner", "Sushi", "Mexican"}

// NewRestaurants builds n restaurants near the venue.
func NewRestaurants(n int, seed int64) *Restaurants {
	rng := rand.New(rand.NewSource(seed))
	r := &Restaurants{}
	for i := 0; i < n; i++ {
		r.List = append(r.List, Restaurant{
			Name:    fmt.Sprintf("%s Place %d", cuisines[i%len(cuisines)], i+1),
			Cuisine: cuisines[i%len(cuisines)],
			Quality: rng.Float64(),
		})
	}
	return r
}

// QualityRanking returns restaurant names best-first.
func (r *Restaurants) QualityRanking() []string {
	list := append([]Restaurant(nil), r.List...)
	sort.Slice(list, func(i, j int) bool { return list[i].Quality > list[j].Quality })
	names := make([]string, len(list))
	for i, x := range list {
		names[i] = x.Name
	}
	return names
}

// Oracle builds the restaurant-preference oracle (CROWDORDER) and a
// new-tuple handler for an open-world Restaurant CROWD table.
func (r *Restaurants) Oracle() *Oracle {
	o := NewOracle()
	o.RegisterTuple("Restaurant", func(prefill map[string]sqltypes.Value, i int) *crowd.SimTruth {
		rest := r.List[i%len(r.List)]
		return &crowd.SimTruth{Truth: map[string]string{
			"name":    rest.Name,
			"cuisine": rest.Cuisine,
		}, Difficulty: 0.05}
	})
	o.RegisterCompare(func(kind crowd.TaskKind, question, left, right string) *crowd.SimTruth {
		if kind != crowd.TaskCompareOrder {
			return &crowd.SimTruth{Difficulty: 1}
		}
		var lq, rq float64 = -1, -1
		for _, x := range r.List {
			if x.Name == left {
				lq = x.Quality
			}
			if x.Name == right {
				rq = x.Quality
			}
		}
		if lq < 0 || rq < 0 {
			return &crowd.SimTruth{Difficulty: 1}
		}
		win := left
		if rq > lq {
			win = right
		}
		return &crowd.SimTruth{Truth: map[string]string{"answer": win},
			Difficulty: 0.15 + 0.5*(1-absF(lq-rq))}
	})
	return o
}

// ---------------------------------------------------------------------------

func normalizeLoose(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
