package catalog

import (
	"strings"
	"testing"

	"crowddb/internal/sqltypes"
)

func talkTable() *Table {
	return &Table{
		Name: "Talk",
		Columns: []Column{
			{Name: "title", Type: sqltypes.TypeString, PrimaryKey: true},
			{Name: "abstract", Type: sqltypes.TypeString, Crowd: true},
			{Name: "nb_attendees", Type: sqltypes.TypeInt, Crowd: true},
		},
	}
}

func notableTable() *Table {
	return &Table{
		Name:  "NotableAttendee",
		Crowd: true,
		Columns: []Column{
			{Name: "name", Type: sqltypes.TypeString, PrimaryKey: true},
			{Name: "title", Type: sqltypes.TypeString},
		},
		ForeignKeys: []ForeignKey{{Columns: []string{"title"}, RefTable: "Talk", RefColumns: []string{"title"}}},
	}
}

func TestCreateAndLookup(t *testing.T) {
	c := New()
	if err := c.CreateTable(talkTable()); err != nil {
		t.Fatal(err)
	}
	tab, ok := c.Table("talk") // case-insensitive
	if !ok || tab.Name != "Talk" {
		t.Fatal("lookup failed")
	}
	if len(tab.PrimaryKey) != 1 || tab.PrimaryKey[0] != "title" {
		t.Errorf("inline PK not promoted: %v", tab.PrimaryKey)
	}
	if !tab.HasCrowdColumns() || tab.Crowd {
		t.Error("Talk: crowd columns but not crowd table")
	}
	if got := tab.CrowdColumns(); len(got) != 2 {
		t.Errorf("crowd columns: %v", got)
	}
	if !tab.IsCrowdSourced() {
		t.Error("IsCrowdSourced")
	}
}

func TestDuplicateTable(t *testing.T) {
	c := New()
	if err := c.CreateTable(talkTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(talkTable()); err == nil {
		t.Error("duplicate create must fail")
	}
}

func TestCrowdTableRequiresPK(t *testing.T) {
	c := New()
	bad := &Table{Name: "X", Crowd: true, Columns: []Column{{Name: "a", Type: sqltypes.TypeString}}}
	if err := c.CreateTable(bad); err == nil || !strings.Contains(err.Error(), "PRIMARY KEY") {
		t.Errorf("CROWD table without PK must be rejected, got %v", err)
	}
}

func TestForeignKeyValidation(t *testing.T) {
	c := New()
	// FK to missing table fails.
	if err := c.CreateTable(notableTable()); err == nil {
		t.Error("FK to unknown table must fail")
	}
	if err := c.CreateTable(talkTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(notableTable()); err != nil {
		t.Fatalf("valid FK rejected: %v", err)
	}
	// FK to unknown column fails.
	bad := notableTable()
	bad.Name = "Bad"
	bad.ForeignKeys[0].RefColumns = []string{"nonexistent"}
	if err := c.CreateTable(bad); err == nil {
		t.Error("FK to unknown column must fail")
	}
}

func TestDropRestrictedByFK(t *testing.T) {
	c := New()
	if err := c.CreateTable(talkTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(notableTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("Talk"); err == nil {
		t.Error("drop of referenced table must fail")
	}
	if err := c.DropTable("NotableAttendee"); err != nil {
		t.Errorf("drop referencing table: %v", err)
	}
	if err := c.DropTable("Talk"); err != nil {
		t.Errorf("drop after reference gone: %v", err)
	}
	if err := c.DropTable("Talk"); err == nil {
		t.Error("double drop must fail")
	}
}

func TestIndexes(t *testing.T) {
	c := New()
	if err := c.CreateTable(talkTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateIndex(&Index{Name: "idx_t", Table: "Talk", Columns: []string{"title"}, Unique: true}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateIndex(&Index{Name: "idx_t", Table: "Talk", Columns: []string{"title"}}); err == nil {
		t.Error("duplicate index name must fail")
	}
	if err := c.CreateIndex(&Index{Name: "idx_bad", Table: "Nope", Columns: []string{"x"}}); err == nil {
		t.Error("index on unknown table must fail")
	}
	if err := c.CreateIndex(&Index{Name: "idx_bad2", Table: "Talk", Columns: []string{"zzz"}}); err == nil {
		t.Error("index on unknown column must fail")
	}
	idx, ok := c.IndexOn("Talk", "title")
	if !ok || !idx.Unique {
		t.Error("IndexOn should find the unique index")
	}
	if _, ok := c.IndexOn("Talk", "abstract"); ok {
		t.Error("no index on abstract")
	}
}

func TestIndexDroppedWithTable(t *testing.T) {
	c := New()
	if err := c.CreateTable(talkTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateIndex(&Index{Name: "i1", Table: "Talk", Columns: []string{"title"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("Talk"); err != nil {
		t.Fatal(err)
	}
	if got := c.Indexes("Talk"); len(got) != 0 {
		t.Errorf("indexes must drop with table: %v", got)
	}
}

func TestReferencingKeys(t *testing.T) {
	c := New()
	if err := c.CreateTable(talkTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(notableTable()); err != nil {
		t.Fatal(err)
	}
	refs := c.ReferencingKeys("Talk")
	if len(refs["NotableAttendee"]) != 1 {
		t.Errorf("referencing keys: %v", refs)
	}
}

func TestTablesSorted(t *testing.T) {
	c := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := c.CreateTable(&Table{Name: n, Columns: []Column{{Name: "x", Type: sqltypes.TypeInt}}}); err != nil {
			t.Fatal(err)
		}
	}
	ts := c.Tables()
	if ts[0].Name != "alpha" || ts[2].Name != "zeta" {
		t.Errorf("not sorted: %v", []string{ts[0].Name, ts[1].Name, ts[2].Name})
	}
}

func TestValidateDuplicateColumn(t *testing.T) {
	bad := &Table{Name: "X", Columns: []Column{
		{Name: "a", Type: sqltypes.TypeInt}, {Name: "A", Type: sqltypes.TypeInt},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("duplicate column (case-insensitive) must fail")
	}
}

func TestDefaultStats(t *testing.T) {
	c := New()
	if err := c.CreateTable(talkTable()); err != nil {
		t.Fatal(err)
	}
	tab, _ := c.Table("Talk")
	if tab.Stats().ExpectedCrowdCard != DefaultCrowdCard {
		t.Errorf("default crowd card: %d", tab.Stats().ExpectedCrowdCard)
	}
	// CNULL accounting works on a fresh table (the internal map is
	// initialized and clamps at zero on the way down).
	tab.AdjustCNull("abstract", 1)
	if n := tab.Stats().CNullCount["abstract"]; n != 1 {
		t.Errorf("CNULL count after increment: %d", n)
	}
	tab.AdjustCNull("abstract", -2)
	if n := tab.Stats().CNullCount["abstract"]; n != 0 {
		t.Errorf("CNULL count must clamp at zero, got %d", n)
	}
}

func TestObservedFilterSelectivityEWMA(t *testing.T) {
	c := New()
	if err := c.CreateTable(talkTable()); err != nil {
		t.Fatal(err)
	}
	tab, _ := c.Table("Talk")
	if _, ok := tab.FilterSelectivity(); ok {
		t.Error("no observation yet")
	}
	tab.ObserveFilter(100, 50)
	if sel, ok := tab.FilterSelectivity(); !ok || sel != 0.5 {
		t.Errorf("first observation must seed the EWMA: %v %v", sel, ok)
	}
	// Subsequent observations move the average toward the new value.
	tab.ObserveFilter(100, 10)
	if sel, _ := tab.FilterSelectivity(); sel >= 0.5 || sel <= 0.1 {
		t.Errorf("EWMA must land between old and new: %v", sel)
	}
	// Zero scanned rows are ignored (no divide-by-zero, no skew).
	before, _ := tab.FilterSelectivity()
	tab.ObserveFilter(0, 0)
	if after, _ := tab.FilterSelectivity(); after != before {
		t.Errorf("empty scans must not move the EWMA: %v -> %v", before, after)
	}
}

func TestObservedCrowdFanoutEWMA(t *testing.T) {
	c := New()
	if err := c.CreateTable(talkTable()); err != nil {
		t.Fatal(err)
	}
	tab, _ := c.Table("Talk")
	if _, ok := tab.CrowdFanout(); ok {
		t.Error("no observation yet")
	}
	tab.ObserveCrowdFanout(2, 6)
	if fan, ok := tab.CrowdFanout(); !ok || fan != 3 {
		t.Errorf("first fanout observation: %v %v", fan, ok)
	}
	tab.ObserveCrowdFanout(1, 1)
	if fan, _ := tab.CrowdFanout(); fan >= 3 || fan <= 1 {
		t.Errorf("EWMA must land between old and new: %v", fan)
	}
}
