// Package catalog holds CrowdDB's schema metadata: table and column
// definitions including the paper's CROWD annotations (§2.1), foreign keys
// (which CrowdJoin and UI generation rely on), free-text annotations used
// for task-form generation (§3.1), and per-table statistics the rule-based
// optimizer consults for cardinality prediction (§3.2.2).
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"crowddb/internal/sqltypes"
)

// Column describes one column of a table.
type Column struct {
	Name       string
	Type       sqltypes.Type
	Crowd      bool // value may be CNULL and is crowdsourced on first use
	PrimaryKey bool
	Annotation string // free text shown on generated task forms
}

// ForeignKey links columns of this table to a referenced table. CrowdDB uses
// FKs both for CrowdJoin and to pre-fill referencing values on task forms.
type ForeignKey struct {
	Columns    []string
	RefTable   string
	RefColumns []string
}

// Index describes a secondary index maintained by the storage layer.
type Index struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
}

// Statistics are the optimizer's per-table numbers. For CROWD tables the
// paper's optimizer works with *expected* cardinalities because the open
// world means the true size is unknowable.
type Statistics struct {
	RowCount int64
	// ExpectedCrowdCard is the predicted number of crowd tuples matching a
	// single probe key (used to bound CrowdJoin fan-out). Defaults to
	// DefaultCrowdCard when never set.
	ExpectedCrowdCard int64
	// CNullCount tracks, per column name, how many stored values are still
	// CNULL — CrowdProbe uses it to estimate outstanding work.
	CNullCount map[string]int64

	// ShardCount is the storage engine's hash-partition fan-out for this
	// table (set by the engine at create/open time). The cost model
	// divides machine scan time by min(ShardCount, available cores);
	// 0 means unknown and is treated as 1.
	ShardCount int64

	// Runtime feedback: observations the executor reports back after each
	// statement, consumed only by the cost model's predictions (never by
	// execution itself, so feedback cannot change query answers — only
	// which plan the optimizer prefers and what EXPLAIN forecasts).

	// ObservedFilterSel is an exponential moving average of kept/scanned
	// for scans with a pushed-down predicate on this table.
	ObservedFilterSel  float64
	FilterObservations int64
	// ObservedCrowdFanout is an EWMA of accepted crowd tuples per
	// solicited key (the measured counterpart of ExpectedCrowdCard).
	ObservedCrowdFanout float64
	FanoutObservations  int64
}

// feedbackAlpha is the EWMA weight of a new observation: high enough that
// a handful of statements converge, low enough that one outlier does not
// swing predictions.
const feedbackAlpha = 0.3

// DefaultCrowdCard is the default expected number of crowdsourced tuples per
// probe against a CROWD table.
const DefaultCrowdCard = 3

// Table is a full table definition. Statistics live behind a mutex because
// concurrent SELECTs update them from the crowd operators (memorizing a
// probed value decrements the CNULL count, an accepted crowd tuple bumps
// the row count) while other queries' optimizations read them.
type Table struct {
	Name        string
	Crowd       bool // CREATE CROWD TABLE: open-world, tuples may be crowdsourced
	Columns     []Column
	PrimaryKey  []string
	ForeignKeys []ForeignKey
	Annotation  string

	statsMu sync.Mutex
	stats   Statistics
}

// Stats returns a consistent copy of the table's statistics.
func (t *Table) Stats() Statistics {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	cp := t.stats
	cp.CNullCount = make(map[string]int64, len(t.stats.CNullCount))
	for k, v := range t.stats.CNullCount {
		cp.CNullCount[k] = v
	}
	return cp
}

// RowCount returns the current stored-row count.
func (t *Table) RowCount() int64 {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.stats.RowCount
}

// ShardCount returns the storage fan-out recorded for this table (0 =
// unknown; callers treat it as 1).
func (t *Table) ShardCount() int64 {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.stats.ShardCount
}

// SetShardCount records the storage engine's hash-partition fan-out.
func (t *Table) SetShardCount(n int64) {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	t.stats.ShardCount = n
}

// AddRowCount adjusts the stored-row count by delta.
func (t *Table) AddRowCount(delta int64) {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	t.stats.RowCount += delta
}

// SetRowCount overwrites the stored-row count (recovery).
func (t *Table) SetRowCount(n int64) {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	t.stats.RowCount = n
}

// AdjustCNull adjusts a column's outstanding-CNULL count by delta,
// clamping at zero (answers can race recovery's recount).
func (t *Table) AdjustCNull(col string, delta int64) {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	if t.stats.CNullCount == nil {
		t.stats.CNullCount = make(map[string]int64)
	}
	n := t.stats.CNullCount[col] + delta
	if n < 0 {
		n = 0
	}
	t.stats.CNullCount[col] = n
}

// ResetCNullCounts clears all CNULL counters (before a recovery recount).
func (t *Table) ResetCNullCounts() {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	t.stats.CNullCount = make(map[string]int64)
}

// ExpectedCrowdCard returns the predicted crowd tuples per probe key.
func (t *Table) ExpectedCrowdCard() int64 {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.stats.ExpectedCrowdCard
}

// SetExpectedCrowdCard overrides the predicted crowd cardinality.
func (t *Table) SetExpectedCrowdCard(n int64) {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	t.stats.ExpectedCrowdCard = n
}

// ObserveFilter feeds back one filtered-scan execution: scanned input
// rows vs rows the pushed predicate kept.
func (t *Table) ObserveFilter(scanned, kept int64) {
	if scanned <= 0 {
		return
	}
	sel := float64(kept) / float64(scanned)
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	if t.stats.FilterObservations == 0 {
		t.stats.ObservedFilterSel = sel
	} else {
		t.stats.ObservedFilterSel += feedbackAlpha * (sel - t.stats.ObservedFilterSel)
	}
	t.stats.FilterObservations++
}

// FilterSelectivity returns the observed pushed-predicate selectivity and
// whether any observation exists.
func (t *Table) FilterSelectivity() (float64, bool) {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.stats.ObservedFilterSel, t.stats.FilterObservations > 0
}

// ObserveCrowdFanout feeds back one solicitation round: keys asked vs
// crowd tuples accepted.
func (t *Table) ObserveCrowdFanout(keys, accepted int64) {
	if keys <= 0 {
		return
	}
	fan := float64(accepted) / float64(keys)
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	if t.stats.FanoutObservations == 0 {
		t.stats.ObservedCrowdFanout = fan
	} else {
		t.stats.ObservedCrowdFanout += feedbackAlpha * (fan - t.stats.ObservedCrowdFanout)
	}
	t.stats.FanoutObservations++
}

// CrowdFanout returns the observed tuples-per-key fanout and whether any
// observation exists.
func (t *Table) CrowdFanout() (float64, bool) {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.stats.ObservedCrowdFanout, t.stats.FanoutObservations > 0
}

// Column returns the column definition by name (case-insensitive, like H2).
func (t *Table) Column(name string) (*Column, bool) {
	for i := range t.Columns {
		if strings.EqualFold(t.Columns[i].Name, name) {
			return &t.Columns[i], true
		}
	}
	return nil, false
}

// ColumnIndex returns the ordinal of a column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i := range t.Columns {
		if strings.EqualFold(t.Columns[i].Name, name) {
			return i
		}
	}
	return -1
}

// HasCrowdColumns reports whether any column is CROWD-annotated.
func (t *Table) HasCrowdColumns() bool {
	for _, c := range t.Columns {
		if c.Crowd {
			return true
		}
	}
	return false
}

// CrowdColumns returns the names of all CROWD columns.
func (t *Table) CrowdColumns() []string {
	var cols []string
	for _, c := range t.Columns {
		if c.Crowd {
			cols = append(cols, c.Name)
		}
	}
	return cols
}

// IsCrowdSourced reports whether the table participates in crowdsourcing at
// all (CROWD table or has CROWD columns) — exactly the tables for which the
// UI Creation component generates templates at compile time (§3.1).
func (t *Table) IsCrowdSourced() bool { return t.Crowd || t.HasCrowdColumns() }

// PrimaryKeyIndexes returns the ordinals of the primary-key columns.
func (t *Table) PrimaryKeyIndexes() []int {
	idx := make([]int, 0, len(t.PrimaryKey))
	for _, pk := range t.PrimaryKey {
		idx = append(idx, t.ColumnIndex(pk))
	}
	return idx
}

// Validate checks internal consistency of a table definition.
func (t *Table) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("catalog: table has no name")
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("catalog: table %s has no columns", t.Name)
	}
	seen := map[string]bool{}
	for _, c := range t.Columns {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return fmt.Errorf("catalog: table %s: duplicate column %s", t.Name, c.Name)
		}
		seen[lc] = true
	}
	for _, pk := range t.PrimaryKey {
		if t.ColumnIndex(pk) < 0 {
			return fmt.Errorf("catalog: table %s: primary key column %s not found", t.Name, pk)
		}
	}
	// The paper requires CROWD tables to have a primary key so that
	// crowd-contributed tuples can be deduplicated.
	if t.Crowd && len(t.PrimaryKey) == 0 {
		return fmt.Errorf("catalog: CROWD table %s requires a PRIMARY KEY", t.Name)
	}
	for _, fk := range t.ForeignKeys {
		for _, c := range fk.Columns {
			if t.ColumnIndex(c) < 0 {
				return fmt.Errorf("catalog: table %s: foreign key column %s not found", t.Name, c)
			}
		}
	}
	return nil
}

// Catalog is the thread-safe registry of tables and indexes.
type Catalog struct {
	mu      sync.RWMutex
	tables  map[string]*Table // lower-cased name -> def
	indexes map[string]*Index // lower-cased index name -> def
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:  make(map[string]*Table),
		indexes: make(map[string]*Index),
	}
}

// CreateTable registers a validated table definition.
func (c *Catalog) CreateTable(t *Table) error {
	// Promote inline PRIMARY KEY markers into the table-level key before
	// validation, so the CROWD-table PK requirement sees them.
	if len(t.PrimaryKey) == 0 {
		for _, col := range t.Columns {
			if col.PrimaryKey {
				t.PrimaryKey = append(t.PrimaryKey, col.Name)
			}
		}
	}
	if err := t.Validate(); err != nil {
		return err
	}
	t.statsMu.Lock()
	if t.stats.CNullCount == nil {
		t.stats.CNullCount = make(map[string]int64)
	}
	if t.stats.ExpectedCrowdCard == 0 {
		t.stats.ExpectedCrowdCard = DefaultCrowdCard
	}
	t.statsMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(t.Name)
	if _, exists := c.tables[key]; exists {
		return fmt.Errorf("catalog: table %s already exists", t.Name)
	}
	// FK targets must exist.
	for _, fk := range t.ForeignKeys {
		ref, ok := c.tables[strings.ToLower(fk.RefTable)]
		if !ok {
			return fmt.Errorf("catalog: table %s: foreign key references unknown table %s", t.Name, fk.RefTable)
		}
		for _, rc := range fk.RefColumns {
			if ref.ColumnIndex(rc) < 0 {
				return fmt.Errorf("catalog: table %s: foreign key references unknown column %s.%s", t.Name, fk.RefTable, rc)
			}
		}
	}
	c.tables[key] = t
	return nil
}

// DropTable removes a table. It fails if another table references it.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("catalog: table %s does not exist", name)
	}
	for _, other := range c.tables {
		if strings.EqualFold(other.Name, name) {
			continue
		}
		for _, fk := range other.ForeignKeys {
			if strings.EqualFold(fk.RefTable, name) {
				return fmt.Errorf("catalog: cannot drop %s: referenced by %s", name, other.Name)
			}
		}
	}
	delete(c.tables, key)
	for iname, idx := range c.indexes {
		if strings.EqualFold(idx.Table, name) {
			delete(c.indexes, iname)
		}
	}
	return nil
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns all table definitions sorted by name.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CreateIndex registers an index definition after validating it.
func (c *Catalog) CreateIndex(idx *Index) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(idx.Name)
	if _, exists := c.indexes[key]; exists {
		return fmt.Errorf("catalog: index %s already exists", idx.Name)
	}
	t, ok := c.tables[strings.ToLower(idx.Table)]
	if !ok {
		return fmt.Errorf("catalog: index %s: unknown table %s", idx.Name, idx.Table)
	}
	for _, col := range idx.Columns {
		if t.ColumnIndex(col) < 0 {
			return fmt.Errorf("catalog: index %s: unknown column %s.%s", idx.Name, idx.Table, col)
		}
	}
	c.indexes[key] = idx
	return nil
}

// Indexes returns all indexes on the given table, sorted by name.
func (c *Catalog) Indexes(table string) []*Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*Index
	for _, idx := range c.indexes {
		if strings.EqualFold(idx.Table, table) {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// IndexOn returns an index whose leading column is col, preferring unique
// indexes; the executor uses it to choose index-nested-loop joins.
func (c *Catalog) IndexOn(table, col string) (*Index, bool) {
	var best *Index
	for _, idx := range c.Indexes(table) {
		if len(idx.Columns) > 0 && strings.EqualFold(idx.Columns[0], col) {
			if idx.Unique {
				return idx, true
			}
			if best == nil {
				best = idx
			}
		}
	}
	return best, best != nil
}

// ReferencingKeys returns, for a given table, the FKs of *other* tables that
// point at it. UI generation uses this to offer "add a new referencing
// tuple" forms (e.g. new NotableAttendee rows for a Talk).
func (c *Catalog) ReferencingKeys(table string) map[string][]ForeignKey {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string][]ForeignKey)
	for _, t := range c.tables {
		for _, fk := range t.ForeignKeys {
			if strings.EqualFold(fk.RefTable, table) {
				out[t.Name] = append(out[t.Name], fk)
			}
		}
	}
	return out
}
