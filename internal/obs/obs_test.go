package obs

import (
	"bufio"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("crowddb_things_total", "things")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	g := r.Gauge("crowddb_depth_rows", "depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
	// Idempotent re-registration returns the same instrument.
	if r.Counter("crowddb_things_total", "things") != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Nil instruments are safe no-ops.
	var nc *Counter
	nc.Inc()
	var ng *Gauge
	ng.Set(1)
	var nh *Histogram
	nh.Observe(1)
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("crowddb_lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if want := 56.05; h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`crowddb_lat_seconds_bucket{le="0.1"} 1`,
		`crowddb_lat_seconds_bucket{le="1"} 3`,
		`crowddb_lat_seconds_bucket{le="10"} 4`,
		`crowddb_lat_seconds_bucket{le="+Inf"} 5`,
		`crowddb_lat_seconds_sum 56.05`,
		`crowddb_lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelsAndFuncs(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("crowddb_ops_total", "ops", "kind", "read")
	bc := r.Counter("crowddb_ops_total", "ops", "kind", "write")
	a.Add(2)
	bc.Add(3)
	r.GaugeFunc("crowddb_live_rows", "live", func() float64 { return 42 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`crowddb_ops_total{kind="read"} 2`,
		`crowddb_ops_total{kind="write"} 3`,
		`crowddb_live_rows 42`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// One family header per name, even with two labeled series.
	if n := strings.Count(out, "# TYPE crowddb_ops_total"); n != 1 {
		t.Errorf("family header rendered %d times, want 1", n)
	}
}

// TestPrometheusTextFormat line-validates a full exposition: every line
// is a comment or `name{labels} value`, HELP/TYPE precede samples, and
// histogram buckets are cumulative with the +Inf bucket equal to _count.
func TestPrometheusTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("crowddb_a_total", "a").Add(1)
	r.Gauge("crowddb_b_rows", "b with \"quotes\"").Set(2)
	h := r.Histogram("crowddb_c_seconds", "c", ExpBuckets(0.001, 10, 4), "shard", "0")
	h.Observe(0.5)
	h.Observe(99)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	sample := regexp.MustCompile(`^[a-z][a-z0-9_]*(\{[^}]*\})? (\+Inf|-?[0-9.e+-]+)$`)
	seenType := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			seenType[f[2]] = true
			continue
		}
		if !sample.MatchString(line) {
			t.Fatalf("malformed sample line %q", line)
		}
		base := line[:strings.IndexAny(line, "{ ")]
		base = strings.TrimSuffix(base, "_bucket")
		base = strings.TrimSuffix(base, "_sum")
		base = strings.TrimSuffix(base, "_count")
		if !seenType[base] {
			t.Fatalf("sample %q before its TYPE header", line)
		}
	}
	// Bucket cumulativity + count agreement.
	var last, count int64 = -1, 0
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "crowddb_c_seconds_bucket") {
			v, _ := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if v < last {
				t.Fatalf("bucket counts not cumulative: %d after %d", v, last)
			}
			last = v
		}
		if strings.HasPrefix(line, "crowddb_c_seconds_count") {
			count, _ = strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		}
	}
	if last != count {
		t.Fatalf("+Inf bucket %d != count %d", last, count)
	}
}

func TestMetricNaming(t *testing.T) {
	ok := [][2]string{
		{"counter", "crowddb_crowd_spend_cents_total"},
		{"gauge", "crowddb_mvcc_retained_versions"},
		{"histogram", "crowddb_wal_fsync_seconds"},
		{"gauge", "crowddb_overhead_ratio"},
	}
	for _, c := range ok {
		if err := CheckName(c[0], c[1]); err != nil {
			t.Errorf("CheckName(%s, %s) = %v, want nil", c[0], c[1], err)
		}
	}
	bad := [][2]string{
		{"counter", "crowddb_spend_cents"},    // counter without _total
		{"gauge", "crowddb_retained"},         // no unit suffix
		{"histogram", "crowddb_fsyncLatency"}, // camelCase
		{"counter", "CrowdDB_total"},          // uppercase
		{"counter", "crowddb__x_total"},       // double underscore
	}
	for _, c := range bad {
		if err := CheckName(c[0], c[1]); err == nil {
			t.Errorf("CheckName(%s, %s) = nil, want error", c[0], c[1])
		}
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("crowddb_hits_total", "hits")
	h := r.Histogram("crowddb_wait_seconds", "wait", ExpBuckets(0.001, 2, 8))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) / 100)
				// Concurrent registration of the same + distinct series.
				r.Counter("crowddb_hits_total", "hits").Add(0)
				r.Gauge(fmt.Sprintf("crowddb_g%d_rows", i), "g").Set(float64(j))
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 8000 {
		t.Fatalf("counter = %v, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestTracerRingAndSpans(t *testing.T) {
	tr := NewTracer(2)
	a := tr.Start("q1")
	sp := a.Span(nil, "statement")
	sp.SetAttr("kind", "select")
	child := a.Span(sp, "optimize")
	child.SetInt("rows", 7)
	child.End()
	sp.End()
	tr.Finish(a)
	if tr.Lookup("q1") != a {
		t.Fatal("lookup after finish failed")
	}
	tr.Start("q2")
	tr.Start("q3") // evicts q1
	if tr.Lookup("q1") != nil {
		t.Fatal("q1 not evicted from ring of 2")
	}
	js := a.JSON()
	if js.TraceID != "q1" || js.Spans != 3 {
		t.Fatalf("trace json = %+v", js)
	}
	got := js.FindSpans("optimize")
	if len(got) != 1 || got[0].Attrs["rows"] != "7" {
		t.Fatalf("optimize span = %+v", got)
	}
	// Nil-safety end to end.
	var nt *Tracer
	ntr := nt.Start("x")
	nsp := ntr.Span(nil, "y")
	nsp.SetAttr("a", "b")
	nsp.End()
	nt.Finish(ntr)
	if ntr.ID() != "" {
		t.Fatal("nil trace has an id")
	}
}

func TestTracerFinishClosesDanglingSpans(t *testing.T) {
	tr := NewTracer(4)
	a := tr.Start("q1")
	sp := a.Span(nil, "statement")
	a.Span(sp, "op:scan") // never ended — error path
	tr.Finish(a)
	js := a.JSON()
	for _, s := range js.FindSpans("op:scan") {
		if s.DurationMicros < 0 {
			t.Fatalf("dangling span has negative duration: %+v", s)
		}
	}
	if js.DurationMicros < 0 {
		t.Fatal("trace duration negative")
	}
}

func TestSlowQueryLog(t *testing.T) {
	tr := NewTracer(4)
	var b strings.Builder
	tr.SetSlowQueryLog(time.Nanosecond, &b)
	a := tr.Start("q9")
	sp := a.Span(nil, "statement")
	sp.SetAttr("stmt", "SELECT 1")
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Finish(a)
	out := b.String()
	if !strings.Contains(out, "[slow query] trace=q9") || !strings.Contains(out, "statement") {
		t.Fatalf("slow log = %q", out)
	}
	// Below threshold: silent.
	b.Reset()
	tr.SetSlowQueryLog(time.Hour, &b)
	fast := tr.Start("q10")
	tr.Finish(fast)
	if b.Len() != 0 {
		t.Fatalf("fast trace logged: %q", b.String())
	}
}

func TestSpanCap(t *testing.T) {
	tr := NewTracer(1)
	a := tr.Start("big")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		a.Span(nil, "s")
	}
	if n := a.SpanCount(); n != maxSpansPerTrace {
		t.Fatalf("span count = %d, want cap %d", n, maxSpansPerTrace)
	}
	// Past-cap spans are nil and still safe.
	sp := a.Span(nil, "overflow")
	if sp != nil {
		t.Fatal("expected nil span past cap")
	}
	sp.SetAttr("a", "b")
	sp.End()
}
