package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// maxSpansPerTrace caps a single trace's span tree so a runaway scan
// cannot hold the whole heap; past the cap new spans are dropped (nil).
const maxSpansPerTrace = 4096

// defaultTraceRing is how many finished traces the tracer retains for
// GET /v1/queries/{id}/trace when no capacity is given.
const defaultTraceRing = 256

// Tracer hands out traces and retains finished ones in a bounded FIFO
// ring. It optionally mirrors traces slower than a threshold to a
// slow-query log. All methods are nil-receiver safe, so callers thread a
// possibly-nil *Tracer without guards.
type Tracer struct {
	mu        sync.Mutex
	capacity  int
	traces    map[string]*Trace
	order     []string
	threshold time.Duration
	slow      io.Writer
}

// NewTracer builds a tracer retaining up to capacity traces (<=0 means
// the default of 256).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = defaultTraceRing
	}
	return &Tracer{capacity: capacity, traces: make(map[string]*Trace)}
}

// SetSlowQueryLog arms the slow-query log: any trace finishing with wall
// time >= threshold is rendered to w.
func (t *Tracer) SetSlowQueryLog(threshold time.Duration, w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.threshold = threshold
	t.slow = w
	t.mu.Unlock()
}

// Start opens a new trace under id and retains it in the ring (evicting
// the oldest when full). Nil-safe: a nil tracer yields a nil trace, and
// every downstream span operation on it is a no-op.
func (t *Tracer) Start(id string) *Trace {
	if t == nil {
		return nil
	}
	now := time.Now()
	tr := &Trace{id: id, start: now, root: &Span{name: "root", start: now}}
	tr.root.tr = tr
	tr.nspans = 1
	t.mu.Lock()
	if _, ok := t.traces[id]; !ok {
		t.order = append(t.order, id)
	}
	t.traces[id] = tr
	for len(t.order) > t.capacity {
		delete(t.traces, t.order[0])
		t.order = t.order[1:]
	}
	t.mu.Unlock()
	return tr
}

// Lookup returns the retained trace for id, or nil.
func (t *Tracer) Lookup(id string) *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traces[id]
}

// Finish seals a trace: the root span and any spans left dangling by
// error paths are ended at the current instant, and the slow-query log
// fires if the trace crossed the threshold. Idempotent and nil-safe.
func (t *Tracer) Finish(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.end.IsZero() {
		tr.end = time.Now()
		closeDangling(tr.root, tr.end)
	}
	dur := tr.end.Sub(tr.start)
	tr.mu.Unlock()
	t.mu.Lock()
	threshold, slow := t.threshold, t.slow
	t.mu.Unlock()
	if slow != nil && threshold > 0 && dur >= threshold {
		var b strings.Builder
		fmt.Fprintf(&b, "[slow query] trace=%s duration=%s spans=%d\n", tr.ID(), dur.Round(time.Microsecond), tr.SpanCount())
		tr.renderText(&b)
		io.WriteString(slow, b.String())
	}
}

func closeDangling(sp *Span, at time.Time) {
	if sp.end.IsZero() {
		sp.end = at
	}
	for _, c := range sp.children {
		closeDangling(c, at)
	}
}

// ---------------------------------------------------------------------------
// Trace and Span.

// Trace is one statement or job's span tree. A single mutex guards the
// whole tree: spans are created on the query's hot path but far less
// often than rows flow, so contention is negligible.
type Trace struct {
	id     string
	mu     sync.Mutex
	start  time.Time
	end    time.Time
	root   *Span
	nspans int
}

// ID names the trace (the job or query id). Nil-safe.
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// SpanCount reports how many spans the trace holds.
func (tr *Trace) SpanCount() int {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.nspans
}

// Duration is the trace's wall time (up to now while unfinished).
func (tr *Trace) Duration() time.Duration {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.end.IsZero() {
		return time.Since(tr.start)
	}
	return tr.end.Sub(tr.start)
}

// Span opens a child span under parent (nil parent = under the root),
// started now. Returns nil past the per-trace span cap.
func (tr *Trace) Span(parent *Span, name string) *Span {
	if tr == nil {
		return nil
	}
	return tr.spanAt(parent, name, time.Now(), time.Time{})
}

// SpanAt records a span with explicit bounds — used to stamp work that
// happened before the trace object existed (e.g. parsing a job's script
// before the job id was allocated). A zero end leaves the span open.
func (tr *Trace) SpanAt(parent *Span, name string, start, end time.Time) *Span {
	if tr == nil {
		return nil
	}
	return tr.spanAt(parent, name, start, end)
}

func (tr *Trace) spanAt(parent *Span, name string, start, end time.Time) *Span {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.nspans >= maxSpansPerTrace {
		return nil
	}
	if parent == nil || parent.tr != tr {
		parent = tr.root
	}
	sp := &Span{tr: tr, name: name, start: start, end: end}
	parent.children = append(parent.children, sp)
	tr.nspans++
	return sp
}

// Attr is one ordered key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed region of a trace. All methods are nil-safe so
// instrumented code paths need no tracing-enabled guards.
type Span struct {
	tr       *Trace
	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	events   []string
	children []*Span
}

// End closes the span at the current instant (idempotent).
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	if sp.end.IsZero() {
		sp.end = time.Now()
	}
	sp.tr.mu.Unlock()
}

// SetAttr annotates the span with a string attribute.
func (sp *Span) SetAttr(k, v string) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	sp.attrs = append(sp.attrs, Attr{k, v})
	sp.tr.mu.Unlock()
}

// SetInt annotates the span with an integer attribute.
func (sp *Span) SetInt(k string, v int64) {
	if sp == nil {
		return
	}
	sp.SetAttr(k, strconv.FormatInt(v, 10))
}

// Event appends a point-in-time annotation, stamped relative to the
// span's start.
func (sp *Span) Event(msg string) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	sp.events = append(sp.events, fmt.Sprintf("+%s %s", time.Since(sp.start).Round(time.Microsecond), msg))
	sp.tr.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Rendering.

// SpanJSON is the wire form of one span, times in microseconds relative
// to the trace start.
type SpanJSON struct {
	Name           string            `json:"name"`
	StartMicros    int64             `json:"start_micros"`
	DurationMicros int64             `json:"duration_micros"`
	Attrs          map[string]string `json:"attrs,omitempty"`
	Events         []string          `json:"events,omitempty"`
	Children       []*SpanJSON       `json:"children,omitempty"`
}

// TraceJSON is the wire form of a whole trace (GET /v1/queries/{id}/trace).
type TraceJSON struct {
	TraceID        string    `json:"trace_id"`
	DurationMicros int64     `json:"duration_micros"`
	Spans          int       `json:"spans"`
	Root           *SpanJSON `json:"root"`
}

// JSON snapshots the trace for the HTTP trace endpoint. Safe to call on
// a live (unfinished) trace.
func (tr *Trace) JSON() TraceJSON {
	if tr == nil {
		return TraceJSON{}
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	end := tr.end
	if end.IsZero() {
		end = time.Now()
	}
	return TraceJSON{
		TraceID:        tr.id,
		DurationMicros: end.Sub(tr.start).Microseconds(),
		Spans:          tr.nspans,
		Root:           spanJSON(tr.root, tr.start, end),
	}
}

func spanJSON(sp *Span, origin, fallbackEnd time.Time) *SpanJSON {
	end := sp.end
	if end.IsZero() {
		end = fallbackEnd
	}
	out := &SpanJSON{
		Name:           sp.name,
		StartMicros:    sp.start.Sub(origin).Microseconds(),
		DurationMicros: end.Sub(sp.start).Microseconds(),
		Events:         append([]string(nil), sp.events...),
	}
	if len(sp.attrs) > 0 {
		out.Attrs = make(map[string]string, len(sp.attrs))
		for _, a := range sp.attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range sp.children {
		out.Children = append(out.Children, spanJSON(c, origin, fallbackEnd))
	}
	return out
}

// renderText writes the indented tree used by the slow-query log.
// Caller holds no locks; renderText takes the trace lock itself.
func (tr *Trace) renderText(w io.Writer) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	end := tr.end
	if end.IsZero() {
		end = time.Now()
	}
	renderSpanText(w, tr.root, end, 1)
}

func renderSpanText(w io.Writer, sp *Span, fallbackEnd time.Time, depth int) {
	end := sp.end
	if end.IsZero() {
		end = fallbackEnd
	}
	attrs := ""
	if len(sp.attrs) > 0 {
		parts := make([]string, len(sp.attrs))
		for i, a := range sp.attrs {
			parts[i] = a.Key + "=" + strconv.Quote(a.Value)
		}
		attrs = " {" + strings.Join(parts, ", ") + "}"
	}
	fmt.Fprintf(w, "%s%s %s%s\n", strings.Repeat("  ", depth), sp.name,
		end.Sub(sp.start).Round(time.Microsecond), attrs)
	for _, e := range sp.events {
		fmt.Fprintf(w, "%s! %s\n", strings.Repeat("  ", depth+1), e)
	}
	for _, c := range sp.children {
		renderSpanText(w, c, fallbackEnd, depth+1)
	}
}

// FindSpans walks the tree depth-first and returns every span whose name
// has the given prefix — a test convenience.
func (tj TraceJSON) FindSpans(prefix string) []*SpanJSON {
	var out []*SpanJSON
	var walk func(sp *SpanJSON)
	walk = func(sp *SpanJSON) {
		if sp == nil {
			return
		}
		if strings.HasPrefix(sp.Name, prefix) {
			out = append(out, sp)
		}
		// Children sorted by start for deterministic test assertions.
		kids := append([]*SpanJSON(nil), sp.Children...)
		sort.SliceStable(kids, func(i, j int) bool { return kids[i].StartMicros < kids[j].StartMicros })
		for _, c := range kids {
			walk(c)
		}
	}
	walk(tj.Root)
	return out
}
