// Package obs is CrowdDB's zero-dependency observability layer: a
// Prometheus-text-format metrics registry (counters, gauges, histograms
// with atomic hot paths) and a per-statement trace-span recorder with a
// bounded retention ring and a threshold-triggered slow-query log.
//
// The package sits below every other internal package (it imports only
// the standard library), so storage, taskmgr, exec, core, and server can
// all register instruments without cycles. Instrument names are
// validated at registration time — snake_case, unit-suffixed, counters
// ending in _total — which doubles as the repo's metric-naming lint.
package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ---------------------------------------------------------------------------
// Naming rules (the metric-naming lint).

var nameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// unitSuffixes are the accepted trailing units for gauges and histograms
// (counters must end in _total instead, per Prometheus convention).
var unitSuffixes = []string{
	"_seconds", "_micros", "_bytes", "_cents", "_rows", "_entries",
	"_versions", "_groups", "_jobs", "_sessions", "_queries", "_shards",
	"_ratio",
}

// CheckName validates an instrument name against the repo's conventions:
// snake_case ASCII, counters suffixed _total, gauges and histograms
// suffixed with a recognized unit. typ is "counter", "gauge", or
// "histogram".
func CheckName(typ, name string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("obs: metric %q is not snake_case", name)
	}
	switch typ {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			return fmt.Errorf("obs: counter %q must end in _total", name)
		}
	case "gauge", "histogram":
		for _, s := range unitSuffixes {
			if strings.HasSuffix(name, s) {
				return nil
			}
		}
		return fmt.Errorf("obs: %s %q must end in a unit suffix (%s)",
			typ, name, strings.Join(unitSuffixes, ", "))
	default:
		return fmt.Errorf("obs: unknown instrument type %q", typ)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Value instruments.

// fval is an atomically updated float64 (bit-cast through a uint64).
type fval struct{ bits atomic.Uint64 }

func (v *fval) add(d float64) {
	for {
		old := v.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if v.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

func (v *fval) set(x float64) { v.bits.Store(math.Float64bits(x)) }
func (v *fval) get() float64  { return math.Float64frombits(v.bits.Load()) }

// Counter is a monotonically increasing metric. All methods are safe on a
// nil receiver (instrumented code never has to guard for disabled
// observability).
type Counter struct{ v fval }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (negative deltas are ignored — counters are monotonic).
func (c *Counter) Add(d float64) {
	if c == nil || d < 0 {
		return
	}
	c.v.add(d)
}

// Value reads the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v.get()
}

// Gauge is a set-to-current-value metric. Nil-safe like Counter.
type Gauge struct{ v fval }

// Set stores the current value.
func (g *Gauge) Set(x float64) {
	if g == nil {
		return
	}
	g.v.set(x)
}

// Add adjusts the gauge by d (either sign).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.v.add(d)
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.get()
}

// Histogram is a fixed-bucket cumulative histogram. Observe is lock-free;
// the exposition renders Prometheus _bucket/_sum/_count series. Nil-safe.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64
	sum    fval
	count  atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	h.sum.add(x)
	h.count.Add(1)
	for i, b := range h.bounds {
		if x <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(h.bounds)].Add(1)
}

// Count reports the number of samples observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.get()
}

// ExpBuckets builds n exponentially growing upper bounds starting at
// start and multiplying by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// ---------------------------------------------------------------------------
// Registry.

// instrument is one labeled series inside a family.
type instrument struct {
	labels  string // rendered {k="v",...} or ""
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // CounterFunc / GaugeFunc
}

// family groups every series sharing one metric name.
type family struct {
	name, help, typ string
	insts           []*instrument
	byLabel         map[string]*instrument
}

// Registry holds the process's metric families and renders them in
// Prometheus text exposition format. Registration is idempotent: asking
// for an already-registered (name, labels) series returns the existing
// instrument, so independent subsystems (or repeated server construction
// over one engine) can share series safely.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels turns k,v pairs into a canonical {k="v",...} string.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value list")
	}
	parts := make([]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", kv[i], escapeLabel(kv[i+1])))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// series fetches or creates the (name, labels) instrument, enforcing the
// naming rules and type consistency. Misuse is a programming error and
// panics.
func (r *Registry) series(typ, name, help string, kv []string) *instrument {
	if err := CheckName(typ, name); err != nil {
		panic(err)
	}
	labels := renderLabels(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byLabel: make(map[string]*instrument)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Errorf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	inst, ok := f.byLabel[labels]
	if !ok {
		inst = &instrument{labels: labels}
		f.byLabel[labels] = inst
		f.insts = append(f.insts, inst)
	}
	return inst
}

// Counter registers (or returns) a counter series. kv is an alternating
// label key/value list.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	inst := r.series("counter", name, help, kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	if inst.counter == nil {
		inst.counter = &Counter{}
	}
	return inst.counter
}

// Gauge registers (or returns) a gauge series.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	inst := r.series("gauge", name, help, kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	if inst.gauge == nil {
		inst.gauge = &Gauge{}
	}
	return inst.gauge
}

// Histogram registers (or returns) a histogram series with the given
// ascending upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, kv ...string) *Histogram {
	inst := r.series("histogram", name, help, kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	if inst.hist == nil {
		inst.hist = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	}
	return inst.hist
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time (for subsystems that already keep their own counters).
func (r *Registry) CounterFunc(name, help string, fn func() float64, kv ...string) {
	inst := r.series("counter", name, help, kv)
	r.mu.Lock()
	inst.fn = fn
	r.mu.Unlock()
}

// GaugeFunc registers a gauge series read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, kv ...string) {
	inst := r.series("gauge", name, help, kv)
	r.mu.Lock()
	inst.fn = fn
	r.mu.Unlock()
}

// Families lists every registered metric family name, in registration
// order.
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// fmtFloat renders a sample value the way Prometheus expects.
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// withLabel merges an extra k="v" pair into an already rendered label
// string (the histogram le label).
func withLabel(labels, k, v string) string {
	pair := fmt.Sprintf("%s=%q", k, v)
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// WritePrometheus renders every family in Prometheus 0.0.4 text
// exposition format. Func-backed series are evaluated outside the
// registry lock, so their callbacks may take subsystem locks freely.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()
	for _, f := range fams {
		help := strings.ReplaceAll(strings.ReplaceAll(f.help, `\`, `\\`), "\n", `\n`)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, help, f.name, f.typ); err != nil {
			return err
		}
		// Stable output: series sorted by label string.
		insts := append([]*instrument(nil), f.insts...)
		sort.Slice(insts, func(i, j int) bool { return insts[i].labels < insts[j].labels })
		for _, inst := range insts {
			var err error
			switch {
			case inst.hist != nil:
				err = writeHistogram(w, f.name, inst)
			case inst.fn != nil:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, inst.labels, fmtFloat(inst.fn()))
			case inst.counter != nil:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, inst.labels, fmtFloat(inst.counter.Value()))
			case inst.gauge != nil:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, inst.labels, fmtFloat(inst.gauge.Value()))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, inst *instrument) error {
	h := inst.hist
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(inst.labels, "le", fmtFloat(b)), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(inst.labels, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, inst.labels, fmtFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, inst.labels, h.Count())
	return err
}
