package exec

import (
	"fmt"
	"testing"

	"crowddb/internal/catalog"
	"crowddb/internal/optimizer"
	"crowddb/internal/parser"
	"crowddb/internal/plan"
	"crowddb/internal/sqltypes"
)

// runWithStats compiles+runs a SELECT and also returns executor stats.
func (h *harness) runWithStats(t *testing.T, sql string) ([]Row, Stats) {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	root, err := plan.Build(stmt.(*parser.Select), h.cat)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := optimizer.Optimize(root, h.cat, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Ctx{Store: h.store, Cat: h.cat, Cache: NewCompareCache()}
	op, err := Build(opt.Root, ctx)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Run(op, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return rows, ctx.Stats
}

func bigTable(t *testing.T) *harness {
	t.Helper()
	h := newHarness(t)
	h.createTable(t, &catalog.Table{
		Name: "item",
		Columns: []catalog.Column{
			{Name: "id", Type: sqltypes.TypeInt, PrimaryKey: true},
			{Name: "grp", Type: sqltypes.TypeString},
			{Name: "v", Type: sqltypes.TypeInt},
		},
	})
	for i := 0; i < 500; i++ {
		h.insert(t, "item", Row{num(int64(i)), str(fmt.Sprintf("g%d", i%20)), num(int64(i * 3))})
	}
	return h
}

func TestPKLookupAvoidsFullScan(t *testing.T) {
	h := bigTable(t)
	rows, st := h.runWithStats(t, "SELECT v FROM item WHERE id = 123")
	if len(rows) != 1 || rows[0][0].Int() != 369 {
		t.Fatalf("rows: %v", rows)
	}
	if st.RowsScanned > 1 {
		t.Errorf("PK lookup must touch 1 row, scanned %d", st.RowsScanned)
	}
}

func TestPKLookupMiss(t *testing.T) {
	h := bigTable(t)
	rows, st := h.runWithStats(t, "SELECT v FROM item WHERE id = 99999")
	if len(rows) != 0 {
		t.Errorf("rows: %v", rows)
	}
	if st.RowsScanned != 0 {
		t.Errorf("missing key must scan nothing: %d", st.RowsScanned)
	}
}

func TestSecondaryIndexLookup(t *testing.T) {
	h := bigTable(t)
	tab, _ := h.cat.Table("item")
	if err := h.cat.CreateIndex(&catalog.Index{Name: "idx_grp", Table: "item", Columns: []string{"grp"}}); err != nil {
		t.Fatal(err)
	}
	if err := h.store.CreateIndex("item", "idx_grp", []int{tab.ColumnIndex("grp")}, false); err != nil {
		t.Fatal(err)
	}
	rows, st := h.runWithStats(t, "SELECT id FROM item WHERE grp = 'g7'")
	if len(rows) != 25 {
		t.Fatalf("rows: %d", len(rows))
	}
	if st.RowsScanned != 25 {
		t.Errorf("index lookup must touch 25 rows, scanned %d", st.RowsScanned)
	}
}

func TestIndexScanAppliesResidualFilter(t *testing.T) {
	h := bigTable(t)
	rows, st := h.runWithStats(t, "SELECT v FROM item WHERE id = 123 AND v > 1000")
	if len(rows) != 0 {
		t.Errorf("residual filter ignored: %v", rows)
	}
	if st.RowsScanned > 1 {
		t.Errorf("still a point lookup: %d", st.RowsScanned)
	}
}

func TestIndexScanCoercesKeyType(t *testing.T) {
	h := bigTable(t)
	// String literal against INTEGER PK must still hit the index.
	rows, _ := h.runWithStats(t, "SELECT v FROM item WHERE id = '42'")
	if len(rows) != 1 || rows[0][0].Int() != 126 {
		t.Errorf("coerced key lookup: %v", rows)
	}
}

func TestSeqScanFallbackWithoutIndex(t *testing.T) {
	h := bigTable(t)
	rows, st := h.runWithStats(t, "SELECT id FROM item WHERE grp = 'g3'")
	if len(rows) != 25 {
		t.Fatalf("rows: %d", len(rows))
	}
	if st.RowsScanned != 500 {
		t.Errorf("no index on grp: full scan expected, got %d", st.RowsScanned)
	}
}
