package exec

import (
	"fmt"
	"strings"
	"testing"

	"crowddb/internal/catalog"
	"crowddb/internal/optimizer"
	"crowddb/internal/parser"
	"crowddb/internal/plan"
	"crowddb/internal/sqltypes"
	"crowddb/internal/storage"
)

// harness builds a crowd-free engine substrate: catalog + store + data.
type harness struct {
	cat   *catalog.Catalog
	store *storage.Store
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	st, err := storage.NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	return &harness{cat: catalog.New(), store: st}
}

func (h *harness) createTable(t *testing.T, tab *catalog.Table) {
	t.Helper()
	if err := h.cat.CreateTable(tab); err != nil {
		t.Fatal(err)
	}
	if err := h.store.CreateTable(tab.Name, tab.PrimaryKeyIndexes()); err != nil {
		t.Fatal(err)
	}
}

func (h *harness) insert(t *testing.T, table string, rows ...Row) {
	t.Helper()
	tab, _ := h.cat.Table(table)
	for _, r := range rows {
		if _, err := h.store.Insert(table, r); err != nil {
			t.Fatal(err)
		}
		tab.AddRowCount(1)
	}
}

// run compiles and executes a SELECT without a crowd.
func (h *harness) run(t *testing.T, sql string, opts optimizer.Options) []Row {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	root, err := plan.Build(stmt.(*parser.Select), h.cat)
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	opt, err := optimizer.Optimize(root, h.cat, opts)
	if err != nil {
		t.Fatalf("optimize %q: %v", sql, err)
	}
	ctx := &Ctx{Store: h.store, Cat: h.cat, Cache: NewCompareCache()}
	op, err := Build(opt.Root, ctx)
	if err != nil {
		t.Fatalf("build %q: %v", sql, err)
	}
	rows, err := Run(op, ctx)
	if err != nil {
		t.Fatalf("run %q: %v", sql, err)
	}
	return rows
}

func str(s string) sqltypes.Value { return sqltypes.NewString(s) }
func num(i int64) sqltypes.Value  { return sqltypes.NewInt(i) }

func setupConference(t *testing.T) *harness {
	t.Helper()
	h := newHarness(t)
	h.createTable(t, &catalog.Table{
		Name: "Talk",
		Columns: []catalog.Column{
			{Name: "title", Type: sqltypes.TypeString, PrimaryKey: true},
			{Name: "room", Type: sqltypes.TypeString},
			{Name: "nb_attendees", Type: sqltypes.TypeInt},
		},
	})
	h.createTable(t, &catalog.Table{
		Name: "Attendee",
		Columns: []catalog.Column{
			{Name: "name", Type: sqltypes.TypeString, PrimaryKey: true},
			{Name: "talk", Type: sqltypes.TypeString},
		},
	})
	h.insert(t, "Talk",
		Row{str("CrowdDB"), str("Grand A"), num(120)},
		Row{str("Qurk"), str("Grand B"), num(80)},
		Row{str("PIQL"), str("Grand A"), num(60)},
		Row{str("Spark"), str("Grand C"), num(200)},
	)
	h.insert(t, "Attendee",
		Row{str("alice"), str("CrowdDB")},
		Row{str("bob"), str("CrowdDB")},
		Row{str("carol"), str("Qurk")},
		Row{str("dave"), str("Spark")},
		Row{str("erin"), str("Spark")},
		Row{str("frank"), str("Spark")},
	)
	return h
}

func TestSelectWhereProject(t *testing.T) {
	h := setupConference(t)
	rows := h.run(t, "SELECT title FROM Talk WHERE nb_attendees > 100", optimizer.Options{})
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
	got := map[string]bool{rows[0][0].Str(): true, rows[1][0].Str(): true}
	if !got["CrowdDB"] || !got["Spark"] {
		t.Errorf("wrong rows: %v", rows)
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	h := setupConference(t)
	rows := h.run(t, "SELECT title FROM Talk ORDER BY nb_attendees DESC LIMIT 2 OFFSET 1", optimizer.Options{})
	if len(rows) != 2 || rows[0][0].Str() != "CrowdDB" || rows[1][0].Str() != "Qurk" {
		t.Errorf("rows: %v", rows)
	}
}

func TestJoinStrategiesAgree(t *testing.T) {
	h := setupConference(t)
	sqls := []string{
		// equi join -> hash join
		"SELECT a.name, t.room FROM Attendee a JOIN Talk t ON a.talk = t.title ORDER BY a.name",
		// non-equi ON -> nested loop
		"SELECT a.name FROM Attendee a JOIN Talk t ON a.talk = t.title AND t.nb_attendees > 100 ORDER BY a.name",
	}
	want := [][]string{
		{"alice", "bob", "carol", "dave", "erin", "frank"},
		{"alice", "bob", "dave", "erin", "frank"},
	}
	for i, sql := range sqls {
		rows := h.run(t, sql, optimizer.Options{})
		var names []string
		for _, r := range rows {
			names = append(names, r[0].Str())
		}
		if strings.Join(names, ",") != strings.Join(want[i], ",") {
			t.Errorf("%s:\n got %v\nwant %v", sql, names, want[i])
		}
	}
}

func TestLeftJoin(t *testing.T) {
	h := setupConference(t)
	rows := h.run(t, "SELECT t.title, a.name FROM Talk t LEFT JOIN Attendee a ON a.talk = t.title WHERE t.title = 'PIQL'", optimizer.Options{})
	if len(rows) != 1 {
		t.Fatalf("rows: %v", rows)
	}
	if !rows[0][1].IsNull() {
		t.Errorf("unmatched left join must null-extend: %v", rows[0])
	}
}

func TestCrossJoinCount(t *testing.T) {
	h := setupConference(t)
	rows := h.run(t, "SELECT t.title, a.name FROM Talk t, Attendee a", optimizer.Options{})
	if len(rows) != 24 {
		t.Errorf("cross join: %d rows", len(rows))
	}
}

func TestAggregates(t *testing.T) {
	h := setupConference(t)
	rows := h.run(t, "SELECT COUNT(*), SUM(nb_attendees), AVG(nb_attendees), MIN(title), MAX(nb_attendees) FROM Talk", optimizer.Options{})
	if len(rows) != 1 {
		t.Fatal("one row expected")
	}
	r := rows[0]
	if r[0].Int() != 4 || r[1].Int() != 460 || r[2].Float() != 115 || r[3].Str() != "CrowdDB" || r[4].Int() != 200 {
		t.Errorf("aggregates: %v", r)
	}
}

func TestGroupByHaving(t *testing.T) {
	h := setupConference(t)
	rows := h.run(t, `SELECT talk, COUNT(*) AS c FROM Attendee GROUP BY talk HAVING COUNT(*) >= 2 ORDER BY c DESC, talk`, optimizer.Options{})
	if len(rows) != 2 {
		t.Fatalf("groups: %v", rows)
	}
	if rows[0][0].Str() != "Spark" || rows[0][1].Int() != 3 {
		t.Errorf("first group: %v", rows[0])
	}
	if rows[1][0].Str() != "CrowdDB" || rows[1][1].Int() != 2 {
		t.Errorf("second group: %v", rows[1])
	}
}

func TestGlobalAggregateOnEmptyInput(t *testing.T) {
	h := setupConference(t)
	rows := h.run(t, "SELECT COUNT(*), SUM(nb_attendees) FROM Talk WHERE nb_attendees > 9999", optimizer.Options{})
	if len(rows) != 1 || rows[0][0].Int() != 0 || !rows[0][1].IsNull() {
		t.Errorf("empty aggregate: %v", rows)
	}
}

func TestDistinct(t *testing.T) {
	h := setupConference(t)
	rows := h.run(t, "SELECT DISTINCT room FROM Talk ORDER BY room", optimizer.Options{})
	if len(rows) != 3 {
		t.Errorf("distinct: %v", rows)
	}
}

func TestAggregatesSkipUnknowns(t *testing.T) {
	h := setupConference(t)
	h.insert(t, "Talk", Row{str("NullTalk"), str("X"), sqltypes.Null()})
	h.insert(t, "Talk", Row{str("CNullTalk"), str("X"), sqltypes.CNull()})
	rows := h.run(t, "SELECT COUNT(nb_attendees), COUNT(*) FROM Talk", optimizer.Options{})
	if rows[0][0].Int() != 4 || rows[0][1].Int() != 6 {
		t.Errorf("NULL/CNULL skip: %v", rows[0])
	}
}

// The optimizer must never change results on crowd-free data: run a query
// battery with all rules on and all rules off and compare.
func TestOptimizerPlanEquivalence(t *testing.T) {
	h := setupConference(t)
	queries := []string{
		"SELECT title FROM Talk WHERE nb_attendees > 50 AND room = 'Grand A' ORDER BY title",
		"SELECT a.name, t.room FROM Attendee a JOIN Talk t ON a.talk = t.title WHERE t.nb_attendees >= 80 ORDER BY a.name",
		"SELECT t.title FROM Talk t, Attendee a WHERE a.talk = t.title AND a.name = 'alice'",
		"SELECT talk, COUNT(*) FROM Attendee GROUP BY talk ORDER BY talk",
		"SELECT DISTINCT room FROM Talk ORDER BY room LIMIT 2",
		"SELECT title FROM Talk ORDER BY nb_attendees LIMIT 3",
	}
	naive := optimizer.Options{DisablePushdown: true, DisableStopAfter: true, DisableJoinReorder: true}
	for _, sql := range queries {
		a := h.run(t, sql, optimizer.Options{})
		b := h.run(t, sql, naive)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Errorf("optimizer changed results for %q:\n opt:   %v\n naive: %v", sql, a, b)
		}
	}
}

func TestStopAfterLimitsScan(t *testing.T) {
	h := setupConference(t)
	rows := h.run(t, "SELECT title FROM Talk LIMIT 2", optimizer.Options{})
	if len(rows) != 2 {
		t.Errorf("limit: %v", rows)
	}
}

func TestCompareCacheRoundTrip(t *testing.T) {
	c := NewCompareCache()
	c.PutEqual("q", "a", "b", true)
	c.PutOrder("q2", "x", "y", "y")
	// Symmetric lookup.
	if v, ok := c.GetEqual("q", "b", "a"); !ok || !v {
		t.Error("equal lookup must be symmetric")
	}
	if w, ok := c.GetOrder("q2", "y", "x"); !ok || w != "y" {
		t.Error("order lookup must be symmetric")
	}
	snap := c.TakeDirty()
	if len(snap) != 2 {
		t.Fatalf("dirty entries: %v", snap)
	}
	c2 := NewCompareCache()
	c2.Load(snap)
	if v, ok := c2.GetEqual("q", "a", "b"); !ok || !v {
		t.Error("load lost equal entry")
	}
	if w, ok := c2.GetOrder("q2", "x", "y"); !ok || w != "y" {
		t.Error("load lost order entry")
	}
}
