package exec

import (
	"testing"

	"crowddb/internal/catalog"
	"crowddb/internal/optimizer"
	"crowddb/internal/parser"
	"crowddb/internal/plan"
	"crowddb/internal/sqltypes"
)

// runCtxOpts is runCtx with explicit optimizer options (the phase-ordering
// tests compare cost-based against the flat ablation).
func (h *harness) runCtxOpts(t *testing.T, ctx *Ctx, sql string, opts optimizer.Options) []Row {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	root, err := plan.Build(stmt.(*parser.Select), h.cat)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := optimizer.Optimize(root, h.cat, opts)
	if err != nil {
		t.Fatalf("Optimize(%q): %v", sql, err)
	}
	op, err := Build(opt.Root, ctx)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Run(op, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// equalOracleHarness extends the crowd harness with a pair table whose
// CROWDEQUAL truth is "yes" iff the two strings match case-insensitively
// (orderOracle's CompareTruth answers the winner field; for equality the
// sim uses Truth["answer"], so reuse the same oracle and let noise be
// irrelevant: we only count comparisons, not verdicts).
func crowdFilterFixture(t *testing.T, seed int64) (*harness, *Ctx) {
	h, ctx := crowdHarness(t, seed)
	h.createTable(t, &catalog.Table{
		Name: "v",
		Columns: []catalog.Column{
			{Name: "id", Type: sqltypes.TypeInt, PrimaryKey: true},
			{Name: "a", Type: sqltypes.TypeString},
			{Name: "b", Type: sqltypes.TypeString},
		},
	})
	h.createTable(t, &catalog.Table{
		Name: "w",
		Columns: []catalog.Column{
			{Name: "id", Type: sqltypes.TypeInt, PrimaryKey: true},
			{Name: "keep", Type: sqltypes.TypeInt},
		},
	})
	for i := 1; i <= 4; i++ {
		h.insert(t, "v", Row{num(int64(i)), str("left" + string(rune('0'+i))), str("right" + string(rune('0'+i)))})
	}
	// Only row 2 is marked keep=1.
	h.insert(t, "w",
		Row{num(1), num(0)}, Row{num(2), num(1)}, Row{num(3), num(0)}, Row{num(4), num(0)})
	return h, ctx
}

// The query mixes a paid crowd predicate with a cheap machine predicate
// the rule-based rewrites cannot push down (it spans a LEFT JOIN's null-
// producing side, so it must stay in the WHERE filter).
const mixedFilterQuery = `SELECT v.id FROM v LEFT JOIN w ON w.id = v.id WHERE v.a ~= v.b AND w.keep = 1`

// TestCrowdFilterCheapFirstPruning: with cost-based phase ordering, only
// rows surviving the machine predicate pay for a comparison.
func TestCrowdFilterCheapFirstPruning(t *testing.T) {
	h, ctx := crowdFilterFixture(t, 71)
	rows := h.runCtxOpts(t, ctx, mixedFilterQuery, optimizer.Options{})
	if ctx.Stats.Comparisons != 1 {
		t.Errorf("cheap-first filter must pay for exactly the kept row: %+v", ctx.Stats)
	}
	for _, r := range rows {
		if r[0].Int() != 2 {
			t.Errorf("only id=2 can qualify: %v", rows)
		}
	}
}

// TestCrowdFilterFlatAblationPaysForAllRows: the pre-cost-model behavior
// (DisableCostBased) prefetches a comparison for every buffered row.
func TestCrowdFilterFlatAblationPaysForAllRows(t *testing.T) {
	h, ctx := crowdFilterFixture(t, 71)
	h.runCtxOpts(t, ctx, mixedFilterQuery, optimizer.Options{DisableCostBased: true})
	if ctx.Stats.Comparisons != 4 {
		t.Errorf("flat filter must pay one comparison per row: %+v", ctx.Stats)
	}
}

// TestCheapFirstSameAnswers: phase ordering is an optimization, not a
// semantics change — both plans return identical rows.
func TestCheapFirstSameAnswers(t *testing.T) {
	hA, ctxA := crowdFilterFixture(t, 72)
	fast := hA.runCtxOpts(t, ctxA, mixedFilterQuery, optimizer.Options{})
	hB, ctxB := crowdFilterFixture(t, 72)
	flat := hB.runCtxOpts(t, ctxB, mixedFilterQuery, optimizer.Options{DisableCostBased: true})
	if len(fast) != len(flat) {
		t.Fatalf("row counts differ: %d vs %d", len(fast), len(flat))
	}
	for i := range fast {
		if fast[i][0].Int() != flat[i][0].Int() {
			t.Errorf("row %d differs: %v vs %v", i, fast[i], flat[i])
		}
	}
}
