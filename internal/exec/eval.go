// Package exec implements CrowdDB's physical operators: the classic
// Volcano-style relational operators plus the paper's three crowd
// operators (§3.2.1) — CrowdProbe (sourcing missing values and new
// tuples), CrowdJoin (index nested-loop join that solicits matching
// tuples), and CrowdCompare (crowd-answered CROWDEQUAL predicates and
// CROWDORDER sorting). Crowd answers are always memorized in the store so
// a repeated query never re-asks the crowd.
package exec

import (
	"fmt"
	"strings"

	"crowddb/internal/parser"
	"crowddb/internal/plan"
	"crowddb/internal/sqltypes"
)

// crowdEqualFn resolves one CROWDEQUAL question; the executor wires it to
// the CrowdCompare machinery (cache + Task Manager).
type crowdEqualFn func(question, left, right string) (sqltypes.Value, error)

// evalCtx carries what expression evaluation needs.
type evalCtx struct {
	schema []plan.Col
	row    []sqltypes.Value
	// crowdEqual is nil when no crowd is attached; CROWDEQUAL then
	// evaluates to unknown (NULL).
	crowdEqual crowdEqualFn
	// exec gives access to subquery execution; nil in contexts where
	// IN (SELECT ...) is not supported.
	exec *Ctx
}

// eval computes an expression over one row with SQL three-valued logic.
// NULL and CNULL both behave as "unknown"; a CNULL that reaches the
// evaluator was either not instantiable (no quorum) or not a crowd column.
func eval(e parser.Expr, ctx *evalCtx) (sqltypes.Value, error) {
	switch x := e.(type) {
	case *parser.Literal:
		return x.Val, nil
	case *parser.ColumnRef:
		i, err := plan.FindCol(ctx.schema, x.Table, x.Name)
		if err != nil {
			return sqltypes.Value{}, err
		}
		return ctx.row[i], nil
	case *parser.BinaryExpr:
		return evalBinary(x, ctx)
	case *parser.UnaryExpr:
		v, err := eval(x.E, ctx)
		if err != nil {
			return sqltypes.Value{}, err
		}
		switch x.Op {
		case "NOT":
			if v.IsUnknown() {
				return sqltypes.Null(), nil
			}
			b, err := v.Coerce(sqltypes.TypeBool)
			if err != nil {
				return sqltypes.Value{}, err
			}
			return sqltypes.NewBool(!b.Bool()), nil
		case "-":
			switch v.Kind() {
			case sqltypes.KindInt:
				return sqltypes.NewInt(-v.Int()), nil
			case sqltypes.KindFloat:
				return sqltypes.NewFloat(-v.Float()), nil
			case sqltypes.KindNull, sqltypes.KindCNull:
				return v, nil
			}
			return sqltypes.Value{}, fmt.Errorf("exec: cannot negate %v", v)
		}
		return sqltypes.Value{}, fmt.Errorf("exec: unknown unary op %q", x.Op)
	case *parser.IsNullExpr:
		v, err := eval(x.E, ctx)
		if err != nil {
			return sqltypes.Value{}, err
		}
		var match bool
		if x.CNull {
			match = v.IsCNull()
		} else {
			match = v.IsNull() || v.IsCNull() // CNULL is a NULL flavor for IS NULL
		}
		if x.Neg {
			match = !match
		}
		return sqltypes.NewBool(match), nil
	case *parser.InExpr:
		v, err := eval(x.E, ctx)
		if err != nil {
			return sqltypes.Value{}, err
		}
		if v.IsUnknown() {
			return sqltypes.Null(), nil
		}
		var list []sqltypes.Value
		if x.Sub != nil {
			if ctx.exec == nil {
				return sqltypes.Value{}, fmt.Errorf("exec: IN (SELECT ...) is not supported in this context")
			}
			list, err = ctx.exec.subqueryValues(x)
			if err != nil {
				return sqltypes.Value{}, err
			}
		} else {
			list = make([]sqltypes.Value, len(x.List))
			for i, item := range x.List {
				iv, err := eval(item, ctx)
				if err != nil {
					return sqltypes.Value{}, err
				}
				list[i] = iv
			}
		}
		sawUnknown := false
		for _, iv := range list {
			if iv.IsUnknown() {
				sawUnknown = true
				continue
			}
			if sqltypes.Equal(v, iv) {
				return sqltypes.NewBool(!x.Neg), nil
			}
		}
		if sawUnknown {
			return sqltypes.Null(), nil
		}
		return sqltypes.NewBool(x.Neg), nil
	case *parser.BetweenExpr:
		v, err := eval(x.E, ctx)
		if err != nil {
			return sqltypes.Value{}, err
		}
		lo, err := eval(x.Lo, ctx)
		if err != nil {
			return sqltypes.Value{}, err
		}
		hi, err := eval(x.Hi, ctx)
		if err != nil {
			return sqltypes.Value{}, err
		}
		c1, ok1 := sqltypes.Compare(v, lo)
		c2, ok2 := sqltypes.Compare(v, hi)
		if !ok1 || !ok2 {
			return sqltypes.Null(), nil
		}
		in := c1 >= 0 && c2 <= 0
		if x.Neg {
			in = !in
		}
		return sqltypes.NewBool(in), nil
	case *parser.FuncCall:
		return evalFunc(x, ctx)
	}
	return sqltypes.Value{}, fmt.Errorf("exec: cannot evaluate %T", e)
}

func evalBinary(x *parser.BinaryExpr, ctx *evalCtx) (sqltypes.Value, error) {
	switch x.Op {
	case "AND", "OR":
		l, err := eval(x.L, ctx)
		if err != nil {
			return sqltypes.Value{}, err
		}
		r, err := eval(x.R, ctx)
		if err != nil {
			return sqltypes.Value{}, err
		}
		return evalLogic(x.Op, l, r)
	case "~=":
		return evalCrowdEqual(ctx, "", x.L, x.R)
	}
	l, err := eval(x.L, ctx)
	if err != nil {
		return sqltypes.Value{}, err
	}
	r, err := eval(x.R, ctx)
	if err != nil {
		return sqltypes.Value{}, err
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		c, ok := sqltypes.Compare(l, r)
		if !ok && !l.IsUnknown() && !r.IsUnknown() {
			// Implicit conversion for mixed string/number comparisons,
			// matching H2's behaviour (e.g. `id = '42'` on an INTEGER).
			if lc, err := l.Coerce(r.TypeOf()); err == nil {
				c, ok = sqltypes.Compare(lc, r)
			} else if rc, err := r.Coerce(l.TypeOf()); err == nil {
				c, ok = sqltypes.Compare(l, rc)
			}
		}
		if !ok {
			return sqltypes.Null(), nil
		}
		var b bool
		switch x.Op {
		case "=":
			b = c == 0
		case "<>":
			b = c != 0
		case "<":
			b = c < 0
		case "<=":
			b = c <= 0
		case ">":
			b = c > 0
		case ">=":
			b = c >= 0
		}
		return sqltypes.NewBool(b), nil
	case "LIKE":
		if l.IsUnknown() || r.IsUnknown() {
			return sqltypes.Null(), nil
		}
		return sqltypes.NewBool(likeMatch(l.String(), r.String())), nil
	case "||":
		if l.IsUnknown() || r.IsUnknown() {
			return sqltypes.Null(), nil
		}
		return sqltypes.NewString(l.String() + r.String()), nil
	case "+", "-", "*", "/", "%":
		return evalArith(x.Op, l, r)
	}
	return sqltypes.Value{}, fmt.Errorf("exec: unknown operator %q", x.Op)
}

// evalLogic implements SQL three-valued AND/OR.
func evalLogic(op string, l, r sqltypes.Value) (sqltypes.Value, error) {
	lb, lu := boolOf(l)
	rb, ru := boolOf(r)
	if op == "AND" {
		switch {
		case !lu && !lb, !ru && !rb:
			return sqltypes.NewBool(false), nil
		case lu || ru:
			return sqltypes.Null(), nil
		default:
			return sqltypes.NewBool(true), nil
		}
	}
	switch {
	case !lu && lb, !ru && rb:
		return sqltypes.NewBool(true), nil
	case lu || ru:
		return sqltypes.Null(), nil
	default:
		return sqltypes.NewBool(false), nil
	}
}

// boolOf returns (value, unknown).
func boolOf(v sqltypes.Value) (bool, bool) {
	if v.IsUnknown() {
		return false, true
	}
	b, err := v.Coerce(sqltypes.TypeBool)
	if err != nil {
		return false, true
	}
	return b.Bool(), false
}

func evalArith(op string, l, r sqltypes.Value) (sqltypes.Value, error) {
	if l.IsUnknown() || r.IsUnknown() {
		return sqltypes.Null(), nil
	}
	lk, rk := l.Kind(), r.Kind()
	if lk == sqltypes.KindInt && rk == sqltypes.KindInt && op != "/" {
		a, b := l.Int(), r.Int()
		switch op {
		case "+":
			return sqltypes.NewInt(a + b), nil
		case "-":
			return sqltypes.NewInt(a - b), nil
		case "*":
			return sqltypes.NewInt(a * b), nil
		case "%":
			if b == 0 {
				return sqltypes.Null(), nil
			}
			return sqltypes.NewInt(a % b), nil
		}
	}
	lf, err := l.Coerce(sqltypes.TypeFloat)
	if err != nil {
		return sqltypes.Value{}, fmt.Errorf("exec: %v %s %v: %w", l, op, r, err)
	}
	rf, err := r.Coerce(sqltypes.TypeFloat)
	if err != nil {
		return sqltypes.Value{}, fmt.Errorf("exec: %v %s %v: %w", l, op, r, err)
	}
	a, b := lf.Float(), rf.Float()
	switch op {
	case "+":
		return sqltypes.NewFloat(a + b), nil
	case "-":
		return sqltypes.NewFloat(a - b), nil
	case "*":
		return sqltypes.NewFloat(a * b), nil
	case "/":
		if b == 0 {
			return sqltypes.Null(), nil
		}
		return sqltypes.NewFloat(a / b), nil
	case "%":
		if b == 0 {
			return sqltypes.Null(), nil
		}
		return sqltypes.NewFloat(float64(int64(a) % int64(b))), nil
	}
	return sqltypes.Value{}, fmt.Errorf("exec: unknown arithmetic op %q", op)
}

func evalFunc(x *parser.FuncCall, ctx *evalCtx) (sqltypes.Value, error) {
	if x.IsAggregate() {
		return sqltypes.Value{}, fmt.Errorf("exec: aggregate %s outside aggregation context", x.Name)
	}
	switch x.Name {
	case "CROWDEQUAL":
		question := ""
		if len(x.Args) == 3 {
			qv, err := eval(x.Args[2], ctx)
			if err != nil {
				return sqltypes.Value{}, err
			}
			question = qv.String()
		}
		return evalCrowdEqual(ctx, question, x.Args[0], x.Args[1])
	case "CROWDORDER":
		return sqltypes.Value{}, fmt.Errorf("exec: CROWDORDER is only valid in ORDER BY")
	}
	args := make([]sqltypes.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := eval(a, ctx)
		if err != nil {
			return sqltypes.Value{}, err
		}
		args[i] = v
	}
	switch x.Name {
	case "LOWER", "UPPER", "TRIM", "LENGTH":
		if args[0].IsUnknown() {
			return sqltypes.Null(), nil
		}
		s := args[0].String()
		switch x.Name {
		case "LOWER":
			return sqltypes.NewString(strings.ToLower(s)), nil
		case "UPPER":
			return sqltypes.NewString(strings.ToUpper(s)), nil
		case "TRIM":
			return sqltypes.NewString(strings.TrimSpace(s)), nil
		default:
			return sqltypes.NewInt(int64(len(s))), nil
		}
	case "ABS":
		if args[0].IsUnknown() {
			return sqltypes.Null(), nil
		}
		switch args[0].Kind() {
		case sqltypes.KindInt:
			v := args[0].Int()
			if v < 0 {
				v = -v
			}
			return sqltypes.NewInt(v), nil
		default:
			f := args[0].Float()
			if f < 0 {
				f = -f
			}
			return sqltypes.NewFloat(f), nil
		}
	case "ROUND":
		if args[0].IsUnknown() {
			return sqltypes.Null(), nil
		}
		f := args[0].Float()
		if f < 0 {
			return sqltypes.NewInt(int64(f - 0.5)), nil
		}
		return sqltypes.NewInt(int64(f + 0.5)), nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsUnknown() {
				return a, nil
			}
		}
		return sqltypes.Null(), nil
	case "SUBSTR":
		if args[0].IsUnknown() {
			return sqltypes.Null(), nil
		}
		s := args[0].String()
		start := 1
		if len(args) > 1 && !args[1].IsUnknown() {
			start = int(args[1].Int())
		}
		if start < 1 {
			start = 1
		}
		if start > len(s) {
			return sqltypes.NewString(""), nil
		}
		out := s[start-1:]
		if len(args) > 2 && !args[2].IsUnknown() {
			n := int(args[2].Int())
			if n < len(out) {
				out = out[:n]
			}
		}
		return sqltypes.NewString(out), nil
	}
	return sqltypes.Value{}, fmt.Errorf("exec: unknown function %s", x.Name)
}

// evalCrowdEqual renders both sides and delegates to the crowd resolver.
func evalCrowdEqual(ctx *evalCtx, question string, le, re parser.Expr) (sqltypes.Value, error) {
	l, err := eval(le, ctx)
	if err != nil {
		return sqltypes.Value{}, err
	}
	r, err := eval(re, ctx)
	if err != nil {
		return sqltypes.Value{}, err
	}
	if l.IsUnknown() || r.IsUnknown() {
		return sqltypes.Null(), nil
	}
	// Trivially equal values need no crowd.
	if sqltypes.Equal(l, r) {
		return sqltypes.NewBool(true), nil
	}
	if ctx.crowdEqual == nil {
		return sqltypes.Null(), nil
	}
	return ctx.crowdEqual(question, l.String(), r.String())
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single rune),
// case-insensitively (matching H2's default collation behaviour for the
// paper's examples).
func likeMatch(s, pattern string) bool {
	return likeRunes([]rune(strings.ToLower(s)), []rune(strings.ToLower(pattern)))
}

func likeRunes(s, p []rune) bool {
	if len(p) == 0 {
		return len(s) == 0
	}
	switch p[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeRunes(s[i:], p[1:]) {
				return true
			}
		}
		return false
	case '_':
		return len(s) > 0 && likeRunes(s[1:], p[1:])
	default:
		return len(s) > 0 && s[0] == p[0] && likeRunes(s[1:], p[1:])
	}
}
