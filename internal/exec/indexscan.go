package exec

import (
	"strings"

	"crowddb/internal/plan"
)

// indexScan serves a scan whose pushed-down filter pins an indexed column
// to a literal: the primary key or a secondary index supplies the
// candidate rows, the full residual filter then verifies them. Chosen by
// Build for closed-world tables when an access path exists.
type indexScan struct {
	node *plan.Scan
	// pk is true when the primary key answers the lookup; otherwise
	// indexName/keyCol name the secondary index.
	pk        bool
	indexName string
	keyCol    string

	rows []Row
	out  batchEmitter
}

// accessPath inspects a scan's probe keys for an indexable equality.
// Returns nil when only a sequential scan applies.
func accessPath(ctx *Ctx, node *plan.Scan) *indexScan {
	if len(node.ProbeKeys) == 0 {
		return nil
	}
	t := node.Table
	// Single-column primary key pinned by the filter?
	if len(t.PrimaryKey) == 1 {
		if _, ok := node.ProbeKeys[strings.ToLower(t.PrimaryKey[0])]; ok {
			return &indexScan{node: node, pk: true, keyCol: t.PrimaryKey[0]}
		}
	}
	// Any secondary index whose leading column is pinned?
	for col := range node.ProbeKeys {
		if idx, ok := ctx.Cat.IndexOn(t.Name, col); ok && len(idx.Columns) == 1 {
			return &indexScan{node: node, indexName: idx.Name, keyCol: col}
		}
	}
	return nil
}

func (s *indexScan) Schema() []plan.Col { return s.node.Schema() }

func (s *indexScan) Open(ctx *Ctx) error {
	s.rows, s.out = nil, batchEmitter{}
	key := s.node.ProbeKeys[strings.ToLower(s.keyCol)]
	// Coerce the literal to the column type so the encoded key matches
	// stored values (e.g. WHERE id = 3 against an INTEGER column).
	if col, ok := s.node.Table.Column(s.keyCol); ok {
		if cv, err := key.Coerce(col.Type); err == nil {
			key = cv
		}
	}
	// Bulk candidate fetch: the row(s) come back with the index probe
	// under one lock acquisition per shard — no per-row Get round-trips.
	var candidates []Row
	if s.pk {
		if _, row, ok := ctx.Store.LookupPKRowAt(s.node.Table.Name, ctx.snapTS(), key); ok {
			candidates = []Row{row}
		}
	} else {
		_, rows, err := ctx.Store.LookupIndexRowsAt(s.node.Table.Name, s.indexName, ctx.snapTS(), key)
		if err != nil {
			return err
		}
		candidates = rows
	}
	for _, row := range candidates {
		if row == nil {
			continue
		}
		ctx.Stats.RowsScanned++
		keep, err := rowMatches(s.node.Filter, row, s.node.Schema())
		if err != nil {
			return err
		}
		if keep {
			s.rows = append(s.rows, row)
			if s.node.StopAfter >= 0 && int64(len(s.rows)) >= s.node.StopAfter {
				break
			}
		}
	}
	s.out.rows = s.rows
	return nil
}

func (s *indexScan) NextBatch(ctx *Ctx) (*Batch, error) {
	return s.out.next(ctx), nil
}

func (s *indexScan) Close(*Ctx) error { return nil }

func (s *indexScan) bufferedRows() int64 { return int64(len(s.rows)) }
