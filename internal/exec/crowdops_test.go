package exec

import (
	"strings"
	"testing"

	"crowddb/internal/catalog"
	"crowddb/internal/crowd"
	"crowddb/internal/crowd/amt"
	"crowddb/internal/optimizer"
	"crowddb/internal/parser"
	"crowddb/internal/plan"
	"crowddb/internal/quality"
	"crowddb/internal/sqltypes"
	"crowddb/internal/taskmgr"
	"crowddb/internal/ui"
)

// orderOracle prefers reverse-lexicographic labels ("z" beats "a").
type orderOracle struct{}

func (orderOracle) ProbeTruth(string, map[string]sqltypes.Value, []string) *crowd.SimTruth {
	return nil
}

func (orderOracle) NewTupleTruth(string, map[string]sqltypes.Value, int) *crowd.SimTruth {
	return nil
}

func (orderOracle) CompareTruth(kind crowd.TaskKind, q, l, r string) *crowd.SimTruth {
	win := l
	if r > l {
		win = r
	}
	return &crowd.SimTruth{Truth: map[string]string{ui.AnswerField: win}, Difficulty: 0.05}
}

// crowdHarness is the exec harness plus a live task manager.
func crowdHarness(t *testing.T, seed int64) (*harness, *Ctx) {
	t.Helper()
	h := newHarness(t)
	h.createTable(t, &catalog.Table{
		Name: "item",
		Columns: []catalog.Column{
			{Name: "label", Type: sqltypes.TypeString, PrimaryKey: true},
		},
	})
	uim := ui.NewManager(h.cat)
	uim.GenerateAll()
	tracker := quality.NewTracker()
	tm := taskmgr.New(amt.NewDefault(seed), uim, tracker, nil, orderOracle{}, taskmgr.DefaultConfig())
	ctx := &Ctx{Store: h.store, Cat: h.cat, Tasks: tm, Cache: NewCompareCache()}
	return h, ctx
}

func (h *harness) runCtx(t *testing.T, ctx *Ctx, sql string) []Row {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	root, err := plan.Build(stmt.(*parser.Select), h.cat)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := optimizer.Optimize(root, h.cat, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	op, err := Build(opt.Root, ctx)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Run(op, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestCrowdOrderSortAscAndDesc(t *testing.T) {
	h, ctx := crowdHarness(t, 61)
	for _, l := range []string{"banana", "apple", "cherry", "date"} {
		h.insert(t, "item", Row{str(l)})
	}
	asc := h.runCtx(t, ctx, `SELECT label FROM item ORDER BY CROWDORDER(label, 'which is better?')`)
	// The oracle prefers reverse-lex: the winner must come from the top
	// half despite per-comparison crowd noise.
	if first := asc[0][0].Str(); first != "date" && first != "cherry" {
		t.Errorf("asc (most preferred first): %v", asc)
	}
	// DESC with a warm cache is the exact reverse of ASC, at no new cost.
	before := ctx.Stats.Comparisons
	desc := h.runCtx(t, ctx, `SELECT label FROM item ORDER BY CROWDORDER(label, 'which is better?') DESC`)
	for i := range desc {
		if desc[i][0].Str() != asc[len(asc)-1-i][0].Str() {
			t.Fatalf("desc must reverse asc:\nasc:  %v\ndesc: %v", asc, desc)
		}
	}
	if ctx.Stats.Comparisons != before {
		t.Errorf("repeat sort must be fully cached: %d -> %d", before, ctx.Stats.Comparisons)
	}
}

func TestCrowdOrderDuplicateLabels(t *testing.T) {
	h, ctx := crowdHarness(t, 62)
	h.createTable(t, &catalog.Table{
		Name: "pair",
		Columns: []catalog.Column{
			{Name: "id", Type: sqltypes.TypeInt, PrimaryKey: true},
			{Name: "label", Type: sqltypes.TypeString},
		},
	})
	h.insert(t, "pair", Row{num(1), str("same")}, Row{num(2), str("same")}, Row{num(3), str("other")})
	rows := h.runCtx(t, ctx, `SELECT id FROM pair ORDER BY CROWDORDER(label, 'q')`)
	if len(rows) != 3 {
		t.Fatalf("rows: %v", rows)
	}
	// Duplicate labels must not be compared against each other.
	for _, r := range rows {
		_ = r
	}
}

func TestCrowdOrderRejectsMixedKeys(t *testing.T) {
	h, ctx := crowdHarness(t, 63)
	h.insert(t, "item", Row{str("a")})
	stmt, _ := parser.Parse(`SELECT label FROM item ORDER BY CROWDORDER(label, 'q'), label`)
	root, err := plan.Build(stmt.(*parser.Select), h.cat)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := optimizer.Optimize(root, h.cat, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	op, err := Build(opt.Root, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(op, ctx); err == nil || !strings.Contains(err.Error(), "cannot be combined") {
		t.Errorf("mixed crowd sort keys must fail: %v", err)
	}
}

func TestCrowdOrderQuestionMustBeLiteral(t *testing.T) {
	h, ctx := crowdHarness(t, 64)
	h.insert(t, "item", Row{str("a")}, Row{str("b")})
	stmt, _ := parser.Parse(`SELECT label FROM item ORDER BY CROWDORDER(label, label)`)
	root, _ := plan.Build(stmt.(*parser.Select), h.cat)
	opt, _ := optimizer.Optimize(root, h.cat, optimizer.Options{})
	op, _ := Build(opt.Root, ctx)
	if _, err := Run(op, ctx); err == nil || !strings.Contains(err.Error(), "literal") {
		t.Errorf("non-literal question must fail: %v", err)
	}
}

func TestCompareBudgetDegradesToLabelOrder(t *testing.T) {
	h, ctx := crowdHarness(t, 65)
	ctx.CompareBudget = 1
	for _, l := range []string{"b", "a", "d", "c"} {
		h.insert(t, "item", Row{str(l)})
	}
	rows := h.runCtx(t, ctx, `SELECT label FROM item ORDER BY CROWDORDER(label, 'q')`)
	if len(rows) != 4 {
		t.Fatalf("rows: %v", rows)
	}
	if ctx.Stats.Comparisons > 1 {
		t.Errorf("budget exceeded: %+v", ctx.Stats)
	}
	if ctx.Stats.BudgetDenied == 0 {
		t.Errorf("denials expected: %+v", ctx.Stats)
	}
}

func TestPrefetchSkipsTrivialAndUnknownPairs(t *testing.T) {
	h, ctx := crowdHarness(t, 66)
	h.createTable(t, &catalog.Table{
		Name: "v",
		Columns: []catalog.Column{
			{Name: "id", Type: sqltypes.TypeInt, PrimaryKey: true},
			{Name: "a", Type: sqltypes.TypeString},
			{Name: "b", Type: sqltypes.TypeString},
		},
	})
	h.insert(t, "v",
		Row{num(1), str("x"), str("x")},         // trivially equal: no task
		Row{num(2), str("x"), sqltypes.Null()},  // unknown side: no task
		Row{num(3), sqltypes.CNull(), str("y")}, // unknown side: no task
	)
	rows := h.runCtx(t, ctx, `SELECT id FROM v WHERE a ~= b`)
	if ctx.Stats.Comparisons != 0 {
		t.Errorf("no crowd tasks expected: %+v", ctx.Stats)
	}
	if len(rows) != 1 || rows[0][0].Int() != 1 {
		t.Errorf("only the trivially-equal row qualifies: %v", rows)
	}
}
