package exec

// Tests for the vectorized batch pipeline: the batch-size invariance
// property (BatchSize=1 IS the old row-at-a-time execution, so equality
// across sizes proves the redesign changed the unit of flow, not the
// results), early-stop propagation into parallel scan workers, the
// legacy-operator adapter, and a -race stress of the quorum-streaming
// CROWDEQUAL path under concurrent statements.

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"crowddb/internal/catalog"
	"crowddb/internal/optimizer"
	"crowddb/internal/parser"
	"crowddb/internal/plan"
	"crowddb/internal/sqltypes"
	"crowddb/internal/storage"
)

// setupNums builds a table large enough that every batch size under test
// crosses batch boundaries (600 rows vs DefaultBatchSize=256), plus a
// small lookup table for join coverage.
func setupNums(t *testing.T) *harness {
	t.Helper()
	h := newHarness(t)
	h.createTable(t, &catalog.Table{
		Name: "nums",
		Columns: []catalog.Column{
			{Name: "id", Type: sqltypes.TypeInt, PrimaryKey: true},
			{Name: "grp", Type: sqltypes.TypeString},
			{Name: "val", Type: sqltypes.TypeInt},
		},
	})
	h.createTable(t, &catalog.Table{
		Name: "lk",
		Columns: []catalog.Column{
			{Name: "grp", Type: sqltypes.TypeString, PrimaryKey: true},
			{Name: "label", Type: sqltypes.TypeString},
		},
	})
	groups := []string{"red", "green", "blue"}
	for i := 0; i < 600; i++ {
		h.insert(t, "nums", Row{
			num(int64(i)),
			str(groups[i%len(groups)]),
			num(int64((i * 37) % 101)),
		})
	}
	for _, g := range groups {
		h.insert(t, "lk", Row{str(g), str("label-" + g)})
	}
	return h
}

// randomQuery draws one SELECT from a grammar covering every converted
// operator: scans, filters, projects, hash and nested-loop joins,
// aggregates, distinct, sort, limit/offset.
func randomQuery(rng *rand.Rand) string {
	where := ""
	switch rng.Intn(4) {
	case 0:
		where = fmt.Sprintf(" WHERE nums.val > %d", rng.Intn(100))
	case 1:
		where = fmt.Sprintf(" WHERE nums.grp = '%s'", []string{"red", "green", "blue"}[rng.Intn(3)])
	case 2:
		where = fmt.Sprintf(" WHERE nums.val > %d AND nums.id < %d", rng.Intn(80), 50+rng.Intn(550))
	}
	tail := ""
	if rng.Intn(2) == 0 {
		dir := ""
		if rng.Intn(2) == 0 {
			dir = " DESC"
		}
		tail = " ORDER BY nums.val" + dir + ", nums.id"
		if rng.Intn(2) == 0 {
			tail += fmt.Sprintf(" LIMIT %d", 1+rng.Intn(40))
			if rng.Intn(2) == 0 {
				tail += fmt.Sprintf(" OFFSET %d", rng.Intn(20))
			}
		}
	}
	switch rng.Intn(5) {
	case 0:
		return "SELECT id, grp, val FROM nums" + where + tail
	case 1:
		return "SELECT DISTINCT grp FROM nums" + where
	case 2:
		agg := []string{"COUNT(*)", "SUM(nums.val)", "MIN(nums.val)", "MAX(nums.val)", "AVG(nums.val)"}[rng.Intn(5)]
		return "SELECT grp, " + agg + " FROM nums" + where + " GROUP BY grp"
	case 3:
		return "SELECT nums.id, lk.label FROM nums JOIN lk ON lk.grp = nums.grp" + where + tail
	default:
		return "SELECT nums.id, lk.label FROM nums, lk" + where + tail
	}
}

func rowsKey(rows []Row) string {
	var sb []byte
	for _, r := range rows {
		for _, v := range r {
			sb = append(sb, v.String()...)
			sb = append(sb, '|')
		}
		sb = append(sb, '\n')
	}
	return string(sb)
}

// runSized executes sql with an explicit batch size.
func (h *harness) runSized(t *testing.T, sql string, size int) []Row {
	t.Helper()
	ctx := &Ctx{Store: h.store, Cat: h.cat, Cache: NewCompareCache(), BatchSize: size}
	return h.runCtxOpts(t, ctx, sql, optimizer.Options{})
}

// TestBatchSizeInvariance is the redesign's core property: 100 random
// plans produce row-for-row identical output at BatchSize 1 (degenerate
// row-at-a-time), 7 (never divides anything evenly), and the default.
func TestBatchSizeInvariance(t *testing.T) {
	h := setupNums(t)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		sql := randomQuery(rng)
		want := h.runSized(t, sql, 1)
		for _, size := range []int{7, 0} { // 0 = DefaultBatchSize
			got := h.runSized(t, sql, size)
			if rowsKey(got) != rowsKey(want) {
				t.Fatalf("plan %d %q: batch size %d diverged from row-at-a-time\nwant %d rows\ngot  %d rows",
					i, sql, size, len(want), len(got))
			}
		}
	}
}

// TestLimitStopsParallelScanWorkers pins the early-stop satellite: a
// filled LIMIT quota above a parallel scan must halt the shard workers
// mid-shard instead of filtering the whole table. StopAfter push-down is
// disabled so the bound reaches the scan only through StopEarly.
func TestLimitStopsParallelScanWorkers(t *testing.T) {
	st, err := storage.NewStoreOptions("", storage.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{cat: catalog.New(), store: st}
	h.createTable(t, &catalog.Table{
		Name: "big",
		Columns: []catalog.Column{
			{Name: "id", Type: sqltypes.TypeInt, PrimaryKey: true},
			{Name: "val", Type: sqltypes.TypeInt},
		},
	})
	const total = 20000
	for i := 0; i < total; i++ {
		h.insert(t, "big", Row{num(int64(i)), num(int64(i % 7))})
	}
	ctx := &Ctx{Store: h.store, Cat: h.cat, Cache: NewCompareCache(), ParallelScanMinRows: 1}
	rows := h.runCtxOpts(t, ctx, "SELECT id FROM big WHERE val >= 0 LIMIT 5",
		optimizer.Options{DisableStopAfter: true})
	if len(rows) != 5 {
		t.Fatalf("rows: %d", len(rows))
	}
	if ctx.Stats.RowsScanned == 0 {
		t.Fatal("scan stats missing")
	}
	// Workers run at most a few chunks ahead of the merge (bounded
	// channels), so a stopped scan must come in far below the table.
	if ctx.Stats.RowsScanned >= total/2 {
		t.Errorf("early stop ineffective: scanned %d of %d rows", ctx.Stats.RowsScanned, total)
	}
}

// TestAdaptRowOperator checks the migration shim: batches fill to the
// context's size, the tail batch is short, EOF is (nil, nil), and
// StopEarly forwards through the adapter.
func TestAdaptRowOperator(t *testing.T) {
	inner := &rowOpImpl{n: 10}
	op := AdaptRowOperator(inner)
	ctx := &Ctx{BatchSize: 4}
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	var sizes []int
	var got []int64
	for {
		b, err := op.NextBatch(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if b.Len() == 0 {
			break
		}
		sizes = append(sizes, b.Len())
		for _, r := range b.Rows {
			got = append(got, r[0].Int())
		}
	}
	if fmt.Sprint(sizes) != "[4 4 2]" {
		t.Errorf("batch fill: %v", sizes)
	}
	for i, v := range got {
		if v != int64(i+1) {
			t.Fatalf("row %d: %d", i, v)
		}
	}
	stopEarly(op)
	if !inner.stopped {
		t.Error("StopEarly did not forward through the adapter")
	}
	if err := op.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// rowOpImpl is the real legacy-shaped operator for the adapter test.
type rowOpImpl struct {
	n, pos  int
	stopped bool
}

func (f *rowOpImpl) Schema() []plan.Col { return nil }

func (f *rowOpImpl) Open(*Ctx) error { f.pos = 0; return nil }
func (f *rowOpImpl) Next(*Ctx) (Row, error) {
	if f.pos >= f.n || f.stopped {
		return nil, nil
	}
	f.pos++
	return Row{sqltypes.NewInt(int64(f.pos))}, nil
}
func (f *rowOpImpl) Close(*Ctx) error { return nil }
func (f *rowOpImpl) StopEarly()       { f.stopped = true }

// TestCrowdEqualConcurrentStreams stresses the quorum-streaming
// CROWDEQUAL path under -race: several statements run the same crowd
// filter concurrently over a shared task manager and comparison cache,
// so leaders, followers, and cache adoption interleave across
// goroutines while each stream emits rows. Every statement must agree:
// each pair reaches quorum exactly once globally (one leader; everyone
// else adopts), so the verdicts — and therefore the row sets — are
// shared.
func TestCrowdEqualConcurrentStreams(t *testing.T) {
	h, base := crowdFilterFixture(t, 99)
	for i := 5; i <= 24; i++ {
		h.insert(t, "v", Row{num(int64(i)), str(fmt.Sprintf("l%02d", i)), str(fmt.Sprintf("r%02d", i))})
	}
	const workers = 4
	results := make([]string, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := &Ctx{Store: h.store, Cat: h.cat, Tasks: base.Tasks, Cache: base.Cache, BatchSize: 3}
			rows, err := h.collectStreamed(ctx, `SELECT id FROM v WHERE a ~= b`)
			if err != nil {
				errs[w] = err
				return
			}
			var ids []string
			for _, r := range rows {
				ids = append(ids, r[0].String())
			}
			sort.Strings(ids)
			results[w] = fmt.Sprint(ids)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for w := 1; w < workers; w++ {
		if results[w] != results[0] {
			t.Errorf("worker %d disagreed:\n%s\nvs\n%s", w, results[w], results[0])
		}
	}
}

// TestCrowdOrderStreamsSettledPrefix pins the headline streaming
// behavior: an ascending CROWDORDER emits its settled prefix while later
// segments are still being compared, so the comparison count observed at
// the first sink row is strictly below the statement's final count.
func TestCrowdOrderStreamsSettledPrefix(t *testing.T) {
	h, ctx := crowdHarness(t, 7)
	for i := 0; i < 16; i++ {
		h.insert(t, "item", Row{str(fmt.Sprintf("i%02d", (i*7)%16))})
	}
	firstRowComparisons := -1
	rows := 0
	op, err := h.compile(ctx, `SELECT label FROM item ORDER BY CROWDORDER(label, 'rank')`)
	if err != nil {
		t.Fatal(err)
	}
	err = RunSink(op, ctx, func(Row) error {
		if firstRowComparisons < 0 {
			firstRowComparisons = ctx.Stats.Comparisons
		}
		rows++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != 16 {
		t.Fatalf("rows: %d", rows)
	}
	if firstRowComparisons < 0 || firstRowComparisons >= ctx.Stats.Comparisons {
		t.Errorf("no streaming: %d comparisons at first row, %d total",
			firstRowComparisons, ctx.Stats.Comparisons)
	}
}

// collectStreamed runs sql through RunSink (the streaming seam) rather
// than Run, so the test exercises the per-batch emission path.
func (h *harness) collectStreamed(ctx *Ctx, sql string) ([]Row, error) {
	op, err := h.compile(ctx, sql)
	if err != nil {
		return nil, err
	}
	var rows []Row
	err = RunSink(op, ctx, func(r Row) error {
		rows = append(rows, r)
		return nil
	})
	return rows, err
}

// compile parses, plans, optimizes, and builds sql into an operator.
func (h *harness) compile(ctx *Ctx, sql string) (Operator, error) {
	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	root, err := plan.Build(stmt.(*parser.Select), h.cat)
	if err != nil {
		return nil, err
	}
	opt, err := optimizer.Optimize(root, h.cat, optimizer.Options{})
	if err != nil {
		return nil, err
	}
	return Build(opt.Root, ctx)
}
