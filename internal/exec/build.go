package exec

import (
	"fmt"

	"crowddb/internal/parser"
	"crowddb/internal/plan"
)

// Build instantiates the physical operator tree for a logical plan
// (paper §3.2.2 step 3: "the logical plan is translated into a physical
// plan... Crowd operators and traditional operators of the relational
// algebra are instantiated"). When the context carries a trace or an
// EXPLAIN ANALYZE stats map, every operator (recursively, since child
// construction also goes through Build) is wrapped in an instrumented
// shell.
func Build(n plan.Node, ctx *Ctx) (Operator, error) {
	op, err := build(n, ctx)
	if err != nil {
		return nil, err
	}
	return instrument(op, n, ctx), nil
}

func build(n plan.Node, ctx *Ctx) (Operator, error) {
	switch x := n.(type) {
	case *plan.Scan:
		if ctx.Tasks != nil && (x.Table.Crowd || len(x.AskColumns) > 0) {
			return &crowdProbeScan{node: x}, nil
		}
		if is := accessPath(ctx, x); is != nil {
			return is, nil
		}
		return &seqScan{node: x}, nil

	case *plan.Filter:
		in, err := Build(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		return &filterOp{node: x, input: in, crowd: parser.HasCrowdFunc(x.Cond)}, nil

	case *plan.Join:
		return buildJoin(x, ctx)

	case *plan.Project:
		in, err := Build(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		return &projectOp{node: x, input: in}, nil

	case *plan.Aggregate:
		in, err := Build(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		return &aggregateOp{node: x, input: in}, nil

	case *plan.Sort:
		in, err := Build(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		return &sortOp{node: x, input: in}, nil

	case *plan.Limit:
		in, err := Build(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		return &limitOp{node: x, input: in}, nil

	case *plan.Distinct:
		in, err := Build(x.Input, ctx)
		if err != nil {
			return nil, err
		}
		return &distinctOp{input: in}, nil
	}
	return nil, fmt.Errorf("exec: unknown plan node %T", n)
}

func buildJoin(j *plan.Join, ctx *Ctx) (Operator, error) {
	left, err := Build(j.Left, ctx)
	if err != nil {
		return nil, err
	}

	// CrowdJoin: inner join whose right input is a CROWD-table scan bound
	// by an equality on the join condition.
	if j.Type == parser.JoinInner && ctx.Tasks != nil {
		if scan, ok := j.Right.(*plan.Scan); ok && scan.Table.Crowd {
			if leftKey, rightCol, residual, ok := crowdJoinBinding(j, scan); ok {
				return &crowdJoin{
					node: j, left: left, scan: scan,
					leftKey: leftKey, rightCol: rightCol, residual: residual,
				}, nil
			}
		}
	}

	right, err := Build(j.Right, ctx)
	if err != nil {
		return nil, err
	}

	if j.Type == parser.JoinInner && j.On != nil {
		if lk, rk, residual, ok := equiJoinKeys(j); ok {
			return &hashJoin{node: j, left: left, right: right,
				leftKey: lk, rightKey: rk, residual: residual}, nil
		}
	}
	return &nlJoin{node: j, left: left, right: right}, nil
}

// crowdJoinBinding finds a conjunct equating a column of the crowd scan
// with an expression over the left side; the rest becomes residual.
func crowdJoinBinding(j *plan.Join, scan *plan.Scan) (leftKey parser.Expr, rightCol string, residual parser.Expr, ok bool) {
	if j.On == nil {
		return nil, "", nil, false
	}
	leftSchema := j.Left.Schema()
	rightSchema := scan.Schema()
	for _, conj := range splitConjuncts(j.On) {
		be, isBin := conj.(*parser.BinaryExpr)
		if !isBin || be.Op != "=" || ok {
			residual = andExpr(residual, conj)
			continue
		}
		var scanSide, otherSide parser.Expr
		if cr, isCol := be.L.(*parser.ColumnRef); isCol && resolves(rightSchema, cr) && coveredBySchema(be.R, leftSchema) {
			scanSide, otherSide = be.L, be.R
		} else if cr, isCol := be.R.(*parser.ColumnRef); isCol && resolves(rightSchema, cr) && coveredBySchema(be.L, leftSchema) {
			scanSide, otherSide = be.R, be.L
		}
		if scanSide == nil {
			residual = andExpr(residual, conj)
			continue
		}
		rightCol = scanSide.(*parser.ColumnRef).Name
		leftKey = otherSide
		ok = true
	}
	return leftKey, rightCol, residual, ok
}

// equiJoinKeys extracts one equi-key pair usable for a hash join.
func equiJoinKeys(j *plan.Join) (lk, rk parser.Expr, residual parser.Expr, ok bool) {
	leftSchema := j.Left.Schema()
	rightSchema := j.Right.Schema()
	for _, conj := range splitConjuncts(j.On) {
		be, isBin := conj.(*parser.BinaryExpr)
		if !isBin || be.Op != "=" || ok {
			residual = andExpr(residual, conj)
			continue
		}
		switch {
		case coveredBySchema(be.L, leftSchema) && coveredBySchema(be.R, rightSchema):
			lk, rk, ok = be.L, be.R, true
		case coveredBySchema(be.R, leftSchema) && coveredBySchema(be.L, rightSchema):
			lk, rk, ok = be.R, be.L, true
		default:
			residual = andExpr(residual, conj)
		}
	}
	return lk, rk, residual, ok
}

func resolves(schema []plan.Col, cr *parser.ColumnRef) bool {
	_, err := plan.FindCol(schema, cr.Table, cr.Name)
	return err == nil
}

func coveredBySchema(e parser.Expr, schema []plan.Col) bool {
	covered := true
	parser.WalkExprs(e, func(x parser.Expr) {
		if cr, ok := x.(*parser.ColumnRef); ok && !resolves(schema, cr) {
			covered = false
		}
	})
	return covered
}

// RowSink consumes streamed result rows; returning an error stops the
// statement (the row that errored is not retried).
type RowSink func(Row) error

// RunSink executes an operator tree, handing each row to sink the moment
// the root operator's batch carrying it lands — the streaming seam the
// jobs API and the wire shims consume. With the vectorized crowd
// operators, that is first-quorum time: a CROWDORDER's settled prefix
// and a CROWDEQUAL's ready rows reach the sink while later groups are
// still open on the platform. Cancellation (Ctx.Context) is checked
// between batches, so a cancelled statement stops without draining its
// input.
func RunSink(op Operator, ctx *Ctx, sink RowSink) error {
	if err := op.Open(ctx); err != nil {
		return err
	}
	for {
		if err := ctx.Canceled(); err != nil {
			op.Close(ctx)
			return err
		}
		b, err := op.NextBatch(ctx)
		if err != nil {
			op.Close(ctx)
			return err
		}
		if b.Len() == 0 {
			break
		}
		for _, r := range b.Rows {
			if err := sink(r); err != nil {
				op.Close(ctx)
				return err
			}
		}
	}
	return op.Close(ctx)
}

// Run executes an operator tree to completion and returns all rows
// (RunSink materialized). Safe without copying: batch headers are
// producer-owned but the Row values are consumer-owned (see the package
// contract), so accumulating them outlives the pipeline.
func Run(op Operator, ctx *Ctx) ([]Row, error) {
	var rows []Row
	if err := RunSink(op, ctx, func(r Row) error {
		rows = append(rows, r)
		return nil
	}); err != nil {
		return nil, err
	}
	return rows, nil
}
