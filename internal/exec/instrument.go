package exec

// Per-operator instrumentation: when a statement runs with a trace or an
// EXPLAIN ANALYZE stats map, Build wraps every operator in an
// instrumented shell that times open/next/close, counts rows out, and
// attributes crowd work (comparisons, probes, solicited tuples) to the
// operator that caused it by diffing the shared Stats before and after.
// When neither is requested the raw operator is returned, so traced and
// untraced executions follow byte-identical code on the row hot path.

import (
	"fmt"
	"time"

	"crowddb/internal/obs"
	"crowddb/internal/plan"
	"crowddb/internal/quality"
	"crowddb/internal/taskmgr"
)

// OpStats is one operator's measured actuals, inclusive of its children
// (a child's rows and crowd work happen inside the parent's NextBatch
// calls).
type OpStats struct {
	RowsOut          int64
	WallNanos        int64
	Comparisons      int
	ProbeRequests    int
	NewTupleRequests int
	CacheHits        int
	// PeakBufferedRows is the operator's own peak materialization (rows
	// held at once: a sort's input, a hash join's build table, a scan's
	// snapshot) — the vectorized pipeline's per-operator memory figure. 0
	// for fully streaming operators.
	PeakBufferedRows int64
	// Batches counts NextBatch calls that returned rows; with RowsOut it
	// gives the realized batch fill.
	Batches int64
}

// Cents prices the operator's crowd work under a task configuration.
func (st *OpStats) Cents(cfg taskmgr.Config) float64 {
	return float64(st.Comparisons+st.ProbeRequests)*float64(cfg.Reward)*float64(cfg.Assignments) +
		float64(st.NewTupleRequests)*float64(cfg.Reward)*float64(cfg.NewTupleAssignments)
}

// RowsPerSec is the operator's inclusive throughput (rows out over wall
// time inside the operator and its children).
func (st *OpStats) RowsPerSec() float64 {
	if st.WallNanos <= 0 {
		return 0
	}
	return float64(st.RowsOut) / (float64(st.WallNanos) / float64(time.Second))
}

// OpMetricsSink receives each instrumented operator's final accounting
// at Close; the engine funnels it into the /metrics registry keyed by
// operator name.
type OpMetricsSink interface {
	ObserveOp(op string, st OpStats)
}

// bufferedReporter is implemented by operators that materialize rows;
// the instrumented shell reads it at Close for PeakBufferedRows.
type bufferedReporter interface {
	bufferedRows() int64
}

// instrument wraps op when the context asks for tracing, per-operator
// stats, or operator metrics; otherwise it returns op untouched.
func instrument(op Operator, n plan.Node, ctx *Ctx) Operator {
	if ctx.Trace == nil && ctx.OpStats == nil && ctx.OpMetrics == nil {
		return op
	}
	return &instrumentedOp{op: op, node: n}
}

type instrumentedOp struct {
	op      Operator
	node    plan.Node
	span    *obs.Span
	opening Stats // ctx.Stats snapshot at Open
	st      OpStats
}

func (o *instrumentedOp) Schema() []plan.Col { return o.op.Schema() }

func (o *instrumentedOp) Open(ctx *Ctx) error {
	if ctx.Trace != nil {
		o.span = ctx.Trace.Span(ctx.Span, "op:"+opName(o.node))
	}
	o.opening = ctx.Stats
	parent := ctx.Span
	ctx.Span = o.span
	t0 := time.Now()
	err := o.op.Open(ctx)
	o.st.WallNanos += time.Since(t0).Nanoseconds()
	ctx.Span = parent
	return err
}

func (o *instrumentedOp) NextBatch(ctx *Ctx) (*Batch, error) {
	parent := ctx.Span
	ctx.Span = o.span
	t0 := time.Now()
	b, err := o.op.NextBatch(ctx)
	o.st.WallNanos += time.Since(t0).Nanoseconds()
	ctx.Span = parent
	if err == nil && b.Len() > 0 {
		o.st.RowsOut += int64(b.Len())
		o.st.Batches++
	}
	return b, err
}

// StopEarly forwards the early-stop signal through the shell so a LIMIT
// above an instrumented pipeline still stops scan workers.
func (o *instrumentedOp) StopEarly() { stopEarly(o.op) }

func (o *instrumentedOp) Close(ctx *Ctx) error {
	parent := ctx.Span
	ctx.Span = o.span
	t0 := time.Now()
	err := o.op.Close(ctx)
	o.st.WallNanos += time.Since(t0).Nanoseconds()
	ctx.Span = parent
	o.st.Comparisons = ctx.Stats.Comparisons - o.opening.Comparisons
	o.st.ProbeRequests = ctx.Stats.ProbeRequests - o.opening.ProbeRequests
	o.st.NewTupleRequests = ctx.Stats.NewTupleRequests - o.opening.NewTupleRequests
	o.st.CacheHits = ctx.Stats.CacheHits - o.opening.CacheHits
	if br, ok := o.op.(bufferedReporter); ok {
		o.st.PeakBufferedRows = br.bufferedRows()
	}
	if ctx.OpStats != nil {
		snap := o.st
		ctx.OpStats[o.node] = &snap
	}
	if ctx.OpMetrics != nil {
		ctx.OpMetrics.ObserveOp(opName(o.node), o.st)
	}
	if o.span != nil {
		o.span.SetInt("rows_out", o.st.RowsOut)
		o.span.SetAttr("wall", time.Duration(o.st.WallNanos).Round(time.Microsecond).String())
		if o.st.Comparisons > 0 {
			o.span.SetInt("comparisons", int64(o.st.Comparisons))
		}
		if o.st.ProbeRequests > 0 {
			o.span.SetInt("probe_requests", int64(o.st.ProbeRequests))
		}
		if o.st.NewTupleRequests > 0 {
			o.span.SetInt("new_tuple_requests", int64(o.st.NewTupleRequests))
		}
		if o.st.CacheHits > 0 {
			o.span.SetInt("cache_hits", int64(o.st.CacheHits))
		}
		if o.st.PeakBufferedRows > 0 {
			o.span.SetInt("peak_buffered_rows", o.st.PeakBufferedRows)
		}
		if o.st.Batches > 0 {
			o.span.SetInt("batches", o.st.Batches)
		}
		o.span.End()
	}
	return err
}

// opName labels a plan node for span names and ANALYZE output.
func opName(n plan.Node) string {
	switch x := n.(type) {
	case *plan.Scan:
		return "scan:" + x.Table.Name
	case *plan.Filter:
		return "filter"
	case *plan.Join:
		return "join"
	case *plan.Project:
		return "project"
	case *plan.Aggregate:
		return "aggregate"
	case *plan.Sort:
		return "sort"
	case *plan.Limit:
		return "limit"
	case *plan.Distinct:
		return "distinct"
	default:
		return fmt.Sprintf("%T", n)
	}
}

// answersTotal sums the usable votes across a group's decisions.
func answersTotal(ds []quality.Decision) int {
	n := 0
	for _, d := range ds {
		n += d.Total
	}
	return n
}

// quorumCount counts how many of a group's decisions reached quorum.
func quorumCount(ds []quality.Decision) int {
	n := 0
	for _, d := range ds {
		if d.Quorum {
			n++
		}
	}
	return n
}

// startCrowdSpan opens a span for one crowd interaction under the
// currently executing operator. Nil-safe when tracing is off.
func (c *Ctx) startCrowdSpan(name string) *obs.Span {
	if c.Trace == nil {
		return nil
	}
	return c.Trace.Span(c.Span, name)
}

// finishGroupSpan stamps a resolved HIT group's scheduler lifecycle —
// queued behind the in-flight window, virtual post/resolve instants, and
// the quorum outcome — onto its span and ends it.
func finishGroupSpan(sp *obs.Span, tel taskmgr.GroupTelemetry, answers, quorum int) {
	if sp == nil {
		return
	}
	sp.SetAttr("queued", fmt.Sprintf("%v", tel.Queued))
	if tel.Posted {
		sp.SetAttr("posted_at", tel.PostedAt.String())
		sp.SetAttr("resolved_at", tel.ResolvedAt.String())
		sp.SetAttr("roundtrip", (tel.ResolvedAt - tel.PostedAt).String())
	}
	if tel.Tier != "" {
		sp.SetAttr("tier", tel.Tier)
		sp.SetAttr("escalated", fmt.Sprintf("%v", tel.Escalated))
	}
	sp.SetInt("answers", int64(answers))
	sp.SetInt("quorum", int64(quorum))
	sp.End()
}
