package exec

import (
	"crowddb/internal/parser"
	"crowddb/internal/plan"
	"crowddb/internal/sqltypes"
)

// EvalConst evaluates a row-independent expression (literals, arithmetic,
// scalar functions). Column references fail.
func EvalConst(e parser.Expr) (sqltypes.Value, error) {
	return eval(e, &evalCtx{})
}

// EvalRow evaluates an expression over one row with the given schema,
// without crowd support (CROWDEQUAL evaluates to unknown).
func EvalRow(e parser.Expr, row Row, schema []plan.Col) (sqltypes.Value, error) {
	return eval(e, &evalCtx{schema: schema, row: row})
}

// RowMatches evaluates an optional predicate to a keep/drop decision (SQL
// semantics: unknown drops the row). A nil predicate keeps everything.
func RowMatches(filter parser.Expr, row Row, schema []plan.Col) (bool, error) {
	return rowMatches(filter, row, schema)
}
