package exec

import (
	"testing"

	"crowddb/internal/parser"
	"crowddb/internal/plan"
	"crowddb/internal/sqltypes"
)

func evalStr(t *testing.T, expr string) sqltypes.Value {
	t.Helper()
	e, err := parser.ParseExpr(expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	v, err := EvalConst(e)
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	return v
}

func TestEvalArithmetic(t *testing.T) {
	cases := map[string]string{
		"1 + 2":       "3",
		"2 * 3 + 4":   "10",
		"10 / 4":      "2.5",
		"10 % 3":      "1",
		"-5 + 2":      "-3",
		"1.5 * 2":     "3",
		"2 - 3":       "-1",
		"'a' || 'b'":  "ab",
		"1 + 2 * 3":   "7",
		"(1 + 2) * 3": "9",
	}
	for expr, want := range cases {
		if got := evalStr(t, expr).String(); got != want {
			t.Errorf("%s = %s, want %s", expr, got, want)
		}
	}
}

func TestEvalComparisons(t *testing.T) {
	truthy := []string{
		"1 < 2", "2 <= 2", "3 > 2", "3 >= 3", "1 = 1", "1 <> 2",
		"'a' < 'b'", "1 = 1.0", "TRUE", "NOT FALSE",
		"1 IN (1, 2)", "3 NOT IN (1, 2)", "2 BETWEEN 1 AND 3",
		"'CrowdDB' LIKE 'Crowd%'", "'CrowdDB' LIKE '%db'", "'abc' LIKE 'a_c'",
		"NULL IS NULL", "CNULL IS CNULL", "CNULL IS NULL", "1 IS NOT NULL",
	}
	for _, expr := range truthy {
		v := evalStr(t, expr)
		if v.Kind() != sqltypes.KindBool || !v.Bool() {
			t.Errorf("%s should be TRUE, got %v", expr, v)
		}
	}
	falsy := []string{"NULL IS CNULL", "1 IS NULL", "'x' LIKE 'y%'", "2 NOT BETWEEN 1 AND 3"}
	for _, expr := range falsy {
		v := evalStr(t, expr)
		if v.Kind() != sqltypes.KindBool || v.Bool() {
			t.Errorf("%s should be FALSE, got %v", expr, v)
		}
	}
}

func TestEvalThreeValuedLogic(t *testing.T) {
	// Unknown propagates per SQL: FALSE AND NULL = FALSE, TRUE OR NULL = TRUE.
	unknown := []string{"NULL = 1", "NULL AND TRUE", "NULL OR FALSE", "NOT (NULL = 1)", "CNULL + 1 > 0"}
	for _, expr := range unknown {
		if v := evalStr(t, expr); !v.IsUnknown() {
			t.Errorf("%s should be unknown, got %v", expr, v)
		}
	}
	if v := evalStr(t, "(NULL = 1) AND FALSE"); v.IsUnknown() || v.Bool() {
		t.Errorf("unknown AND FALSE = FALSE, got %v", v)
	}
	if v := evalStr(t, "(NULL = 1) OR TRUE"); v.IsUnknown() || !v.Bool() {
		t.Errorf("unknown OR TRUE = TRUE, got %v", v)
	}
}

func TestEvalScalarFunctions(t *testing.T) {
	cases := map[string]string{
		"LOWER('AbC')":          "abc",
		"UPPER('abc')":          "ABC",
		"TRIM('  x ')":          "x",
		"LENGTH('abcd')":        "4",
		"ABS(-3)":               "3",
		"ABS(-2.5)":             "2.5",
		"ROUND(2.6)":            "3",
		"ROUND(-2.6)":           "-3",
		"COALESCE(NULL, 5)":     "5",
		"COALESCE(CNULL, 7)":    "7",
		"SUBSTR('hello', 2)":    "ello",
		"SUBSTR('hello', 2, 3)": "ell",
	}
	for expr, want := range cases {
		if got := evalStr(t, expr).String(); got != want {
			t.Errorf("%s = %s, want %s", expr, got, want)
		}
	}
}

func TestEvalDivisionByZero(t *testing.T) {
	if v := evalStr(t, "1 / 0"); !v.IsNull() {
		t.Errorf("division by zero must be NULL, got %v", v)
	}
	if v := evalStr(t, "1 % 0"); !v.IsNull() {
		t.Errorf("mod by zero must be NULL, got %v", v)
	}
}

func TestEvalColumnRef(t *testing.T) {
	schema := []plan.Col{{Table: "t", Name: "x", Type: sqltypes.TypeInt}}
	row := Row{sqltypes.NewInt(41)}
	e, _ := parser.ParseExpr("x + 1")
	v, err := EvalRow(e, row, schema)
	if err != nil || v.Int() != 42 {
		t.Errorf("column eval: %v %v", v, err)
	}
	e, _ = parser.ParseExpr("t.x")
	v, err = EvalRow(e, row, schema)
	if err != nil || v.Int() != 41 {
		t.Errorf("qualified eval: %v %v", v, err)
	}
	e, _ = parser.ParseExpr("zzz")
	if _, err = EvalRow(e, row, schema); err == nil {
		t.Error("unknown column must fail")
	}
}

func TestCrowdEqualWithoutCrowdIsUnknown(t *testing.T) {
	if v := evalStr(t, "CROWDEQUAL('a', 'b')"); !v.IsUnknown() {
		t.Errorf("no crowd attached: %v", v)
	}
	// Trivially equal values don't need the crowd.
	if v := evalStr(t, "CROWDEQUAL('a', 'a')"); v.IsUnknown() || !v.Bool() {
		t.Errorf("identical values: %v", v)
	}
}

func TestCrowdOrderOutsideOrderByFails(t *testing.T) {
	e, _ := parser.ParseExpr("CROWDORDER('a', 'q')")
	if _, err := EvalConst(e); err == nil {
		t.Error("CROWDORDER in scalar context must fail")
	}
}

func TestAggregateOutsideContextFails(t *testing.T) {
	e, _ := parser.ParseExpr("COUNT(x)")
	if _, err := EvalConst(e); err == nil {
		t.Error("aggregate outside aggregation must fail")
	}
}

func TestLikeEdgeCases(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"", "", true},
		{"", "%", true},
		{"abc", "%", true},
		{"abc", "abc", true},
		{"abc", "ABC", true}, // case-insensitive
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "%b%", true},
		{"abc", "_b_", true},
		{"abc", "__", false},
		{"", "_", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.s, c.p, got)
		}
	}
}
