package exec

import (
	"container/list"
	"context"
	"strings"
	"sync"
)

// CompareCache is the cross-session memo for CrowdCompare answers. The
// engine persists it in a system table so comparisons, like all crowd
// answers, are paid for only once (paper §3: "Results obtained from the
// crowd are always stored in the database for future use").
//
// Beyond the memo it provides two services the multi-session server
// relies on:
//
//   - Bounded residency: with a capacity set, resolved entries are kept
//     in an LRU list and the coldest is evicted when the cap is exceeded.
//     A paid answer is never lost to eviction: entries stay readable
//     through the dirty record until the engine persists them (TakeDirty)
//     and through the ReadThrough hook afterwards.
//   - Singleflight: Claim marks a question as in flight, so identical
//     concurrent questions from other sessions wait for the first asker's
//     HIT group instead of paying the crowd twice. Claims resolve when the
//     leader memoizes the answer (PutEqual/PutOrder) or abandons it.
//
// All methods are safe for concurrent use.
type CompareCache struct {
	mu      sync.Mutex
	cap     int // max resident entries; <= 0 = unbounded
	entries map[string]*list.Element
	lru     *list.List // front = most recently used *cacheEntry
	flights map[string]*flight
	// Entries memoized since the last TakeDirty: the list preserves
	// memoization order for persistence, the map keeps evicted-but-not-
	// yet-persisted answers readable (they are in neither the LRU nor
	// durable storage).
	dirtyList []Entry
	dirtyKeys map[string]string
	stats     CacheStats

	// ReadThrough, when set, is consulted on a resident miss before a
	// claimant is made a leader (and on plain reads): it looks the
	// normalized pair up in durable storage (the engine's system table),
	// so answers evicted by the residency cap are re-read instead of
	// re-purchased from the crowd. Called without the cache lock held.
	// Set it before the cache is shared across goroutines.
	ReadThrough func(kind, question, left, right string) (string, bool)
}

// CacheStats counts the shared cache's activity across all sessions.
type CacheStats struct {
	// Hits counts claims answered from a resident entry.
	Hits int64
	// Misses counts claims that found neither an entry nor a flight (the
	// claimant became the leader and will pay the crowd).
	Misses int64
	// Shared counts claims that joined another session's in-flight
	// question instead of posting their own HIT group.
	Shared int64
	// Evictions counts entries dropped by the LRU cap.
	Evictions int64
	// Size is the current number of resident entries; Cap echoes the
	// configured bound (0 = unbounded).
	Size, Cap int
}

// NewCompareCache returns an empty, unbounded cache.
func NewCompareCache() *CompareCache { return NewCompareCacheSize(0) }

// NewCompareCacheSize returns an empty cache holding at most cap resolved
// entries (cap <= 0 = unbounded).
func NewCompareCacheSize(cap int) *CompareCache {
	if cap < 0 {
		cap = 0
	}
	return &CompareCache{
		cap:       cap,
		entries:   make(map[string]*list.Element),
		lru:       list.New(),
		flights:   make(map[string]*flight),
		dirtyKeys: make(map[string]string),
	}
}

// InFlight reports the number of unresolved singleflight claims. A quiet
// cache must read zero: every leader either memoized an answer or
// abandoned its claim (the cancellation tests pin this down).
func (c *CompareCache) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.flights)
}

// Stats returns a snapshot of the cache counters.
func (c *CompareCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Size = c.lru.Len()
	st.Cap = c.cap
	return st
}

const (
	kindEqual = "equal"
	kindOrder = "order"
)

type cacheEntry struct {
	key string // kind + \x00 + pairKey
	val string // "yes"/"no" for equal, the winning label for order
}

func pairKey(question, l, r string) string {
	if r < l {
		l, r = r, l
	}
	return question + "\x00" + l + "\x00" + r
}

func cacheKey(kind, question, l, r string) string {
	return kind + "\x00" + pairKey(question, l, r)
}

// lookupLocked finds a resident entry and bumps its recency.
func (c *CompareCache) lookupLocked(key string) (string, bool) {
	el, ok := c.entries[key]
	if !ok {
		return "", false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// insertLocked stores an entry, evicting the coldest beyond the cap, and
// returns how many entries were evicted.
func (c *CompareCache) insertLocked(key, val string) int {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.lru.MoveToFront(el)
		return 0
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, val: val})
	evicted := 0
	for c.cap > 0 && c.lru.Len() > c.cap {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.stats.Evictions++
		evicted++
	}
	return evicted
}

// get reads without touching the hit/miss counters (recency still bumps):
// the claim path owns the accounting, and post-resolution re-reads (e.g.
// the crowd sorter consulting verdicts while partitioning) would inflate
// the numbers. Like claims, reads see dirty (evicted-before-persist) and
// durable answers — a paid verdict is never invisible; read-through
// results are returned without re-inserting, so a mid-sort read cannot
// churn the LRU.
func (c *CompareCache) get(kind, question, l, r string) (string, bool) {
	key := cacheKey(kind, question, l, r)
	c.mu.Lock()
	if v, ok := c.lookupLocked(key); ok {
		c.mu.Unlock()
		return v, true
	}
	if v, ok := c.dirtyKeys[key]; ok {
		c.mu.Unlock()
		return v, true
	}
	rt := c.ReadThrough
	c.mu.Unlock()
	if rt == nil {
		return "", false
	}
	if r < l {
		l, r = r, l
	}
	return rt(kind, question, l, r)
}

func (c *CompareCache) put(kind, question, l, r, val string) {
	key := cacheKey(kind, question, l, r)
	c.mu.Lock()
	c.insertLocked(key, val)
	c.dirtyList = append(c.dirtyList, entryFromKey(key, val))
	c.dirtyKeys[key] = val
	f := c.flights[key]
	delete(c.flights, key)
	c.mu.Unlock()
	if f != nil {
		f.resolve(val, true)
	}
}

// TakeDirty drains the entries memoized since the last call, in
// memoization order. The engine persists exactly these after each query
// instead of re-scanning the whole (cross-session, potentially large)
// cache. The caller must make the drained entries durably readable:
// until it does, a resident miss on them can only be answered by its own
// pending list (see ReadThrough).
func (c *CompareCache) TakeDirty() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.dirtyList
	c.dirtyList = nil
	c.dirtyKeys = make(map[string]string)
	return d
}

// GetEqual looks up a cached CROWDEQUAL verdict.
func (c *CompareCache) GetEqual(question, l, r string) (bool, bool) {
	v, ok := c.get(kindEqual, question, l, r)
	return v == "yes", ok
}

// PutEqual memoizes a CROWDEQUAL verdict and resolves any in-flight claim.
func (c *CompareCache) PutEqual(question, l, r string, same bool) {
	v := "no"
	if same {
		v = "yes"
	}
	c.put(kindEqual, question, l, r, v)
}

// GetOrder looks up a cached CROWDORDER winner.
func (c *CompareCache) GetOrder(question, l, r string) (string, bool) {
	return c.get(kindOrder, question, l, r)
}

// PutOrder memoizes a CROWDORDER winner and resolves any in-flight claim.
func (c *CompareCache) PutOrder(question, l, r, winner string) {
	c.put(kindOrder, question, l, r, winner)
}

// ---------------------------------------------------------------------------
// Singleflight claims

// flight is one in-flight crowd question; resolve publishes the answer (or
// the leader's abandonment) exactly once.
type flight struct {
	once sync.Once
	done chan struct{}
	val  string
	ok   bool
}

func (f *flight) resolve(val string, ok bool) {
	f.once.Do(func() {
		f.val = val
		f.ok = ok
		close(f.done)
	})
}

// Claim is the outcome of asking the cache who owns a crowd question.
// Exactly one of three states holds:
//
//   - Hit: the answer is resident; Value carries it.
//   - Leader: the caller owns the question. It must either memoize an
//     answer (PutEqual/PutOrder) or call Abandon — otherwise followers
//     block forever.
//   - follower (neither flag): another session is already asking the
//     crowd; Wait blocks for its answer.
type Claim struct {
	Hit    bool
	Leader bool
	Value  string
	c      *CompareCache
	key    string
	f      *flight
}

// Wait blocks until the claimed question resolves and returns the answer.
// ok is false when the leader abandoned the flight (error, no quorum, or
// budget denial); the caller should re-claim or fall back.
func (cl Claim) Wait() (string, bool) {
	return cl.WaitCtx(context.Background())
}

// WaitCtx is Wait with cancellation: it returns ("", false) as soon as the
// context is done, leaving the flight (and its eventual answer) untouched
// for other followers.
func (cl Claim) WaitCtx(ctx context.Context) (string, bool) {
	if cl.Hit {
		return cl.Value, true
	}
	if cl.f == nil {
		return "", false
	}
	select {
	case <-cl.f.done:
		return cl.f.val, cl.f.ok
	case <-ctx.Done():
		return "", false
	}
}

// Abandon releases a leader claim without an answer, waking followers with
// ok=false. Safe to call after the answer was memoized (it is then a
// no-op), so leaders can simply defer it.
func (cl Claim) Abandon() {
	if cl.f == nil || cl.c == nil {
		return
	}
	cl.c.mu.Lock()
	if cl.c.flights[cl.key] == cl.f {
		delete(cl.c.flights, cl.key)
	}
	cl.c.mu.Unlock()
	cl.f.resolve("", false)
}

// ClaimEqual claims a CROWDEQUAL question (see Claim).
func (c *CompareCache) ClaimEqual(question, l, r string) Claim {
	return c.claim(kindEqual, question, l, r)
}

// ClaimOrder claims a CROWDORDER question (see Claim).
func (c *CompareCache) ClaimOrder(question, l, r string) Claim {
	return c.claim(kindOrder, question, l, r)
}

func (c *CompareCache) claim(kind, question, l, r string) Claim {
	key := cacheKey(kind, question, l, r)
	cl, miss := c.claimResident(key, c.ReadThrough == nil)
	if !miss {
		return cl
	}
	// Resident miss with durable storage behind us: an answer evicted by
	// the residency cap is restored instead of re-purchased. Normalize
	// the pair the way persisted entries are keyed.
	if r < l {
		l, r = r, l
	}
	if v, ok := c.ReadThrough(kind, question, l, r); ok {
		c.mu.Lock()
		c.insertLocked(key, v) // not marked dirty: already persisted
		c.stats.Hits++
		f := c.flights[key]
		delete(c.flights, key)
		c.mu.Unlock()
		if f != nil {
			f.resolve(v, true)
		}
		return Claim{Hit: true, Value: v}
	}
	// Nothing durable either: re-check residency (an entry or flight may
	// have appeared while storage was read), then lead.
	cl, _ = c.claimResident(key, true)
	return cl
}

// claimResident resolves a claim against resident entries and in-flight
// questions. On a full miss it appoints the caller leader when lead is
// true; otherwise it reports miss=true so the caller can consult durable
// storage first.
func (c *CompareCache) claimResident(key string, lead bool) (cl Claim, miss bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.lookupLocked(key); ok {
		c.stats.Hits++
		return Claim{Hit: true, Value: v}, false
	}
	// Evicted before it could be persisted: the dirty record still has
	// the answer.
	if v, ok := c.dirtyKeys[key]; ok {
		c.stats.Hits++
		return Claim{Hit: true, Value: v}, false
	}
	if f, ok := c.flights[key]; ok {
		c.stats.Shared++
		return Claim{c: c, key: key, f: f}, false
	}
	if !lead {
		return Claim{}, true
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.stats.Misses++
	return Claim{Leader: true, c: c, key: key, f: f}, false
}

// ---------------------------------------------------------------------------
// Persistence

// Entry is one persisted cache row (kind, question, left, right, answer).
type Entry struct {
	Kind     string // "equal" | "order"
	Question string
	Left     string
	Right    string
	Answer   string // "yes"/"no" or the winning label
}

func entryFromKey(key, val string) Entry {
	parts := strings.SplitN(key, "\x00", 4)
	return Entry{Kind: parts[0], Question: parts[1], Left: parts[2], Right: parts[3], Answer: val}
}

// Load restores persisted entries (oldest recency; a capped cache keeps
// the last cap entries loaded). Loaded entries are already durable, so
// they are not marked dirty, and Load does not touch the stats counters.
func (c *CompareCache) Load(entries []Entry) {
	c.mu.Lock()
	evicted := 0
	for _, e := range entries {
		kind := kindOrder
		if e.Kind == kindEqual {
			kind = kindEqual
		}
		evicted += c.insertLocked(cacheKey(kind, e.Question, e.Left, e.Right), e.Answer)
	}
	// Loading is not paying: evictions during replay are not real losses.
	c.stats.Evictions -= int64(evicted)
	c.mu.Unlock()
}
