package exec

import (
	"sync"
	"testing"
)

func TestCompareCacheLRUEviction(t *testing.T) {
	c := NewCompareCacheSize(3)

	c.PutEqual("q", "a", "b", true)
	c.PutOrder("q", "a", "b", "a")
	c.PutEqual("q", "c", "d", false)
	if st := c.Stats(); st.Size != 3 || st.Evictions != 0 {
		t.Fatalf("before cap: %+v", st)
	}
	// Drain the dirty record (as the engine's persist pass does): from
	// here on, an evicted entry is only readable via ReadThrough.
	if dirty := c.TakeDirty(); len(dirty) != 3 {
		t.Fatalf("dirty entries: %v", dirty)
	}
	// Touch the oldest so the second-oldest is the LRU victim.
	if same, ok := c.GetEqual("q", "a", "b"); !ok || !same {
		t.Fatalf("GetEqual(a,b) = %v, %v", same, ok)
	}
	c.PutOrder("q", "e", "f", "f")
	st := c.Stats()
	if st.Size != 3 || st.Evictions != 1 {
		t.Fatalf("after cap: %+v", st)
	}
	// The recently-touched equal entry survived; the order entry is gone.
	if _, ok := c.GetEqual("q", "a", "b"); !ok {
		t.Error("recently-used entry evicted")
	}
	if _, ok := c.GetOrder("q", "a", "b"); ok {
		t.Error("LRU victim still resident (no ReadThrough set)")
	}
}

func TestCompareCacheDirtyEntriesSurviveEviction(t *testing.T) {
	c := NewCompareCacheSize(1)
	c.PutEqual("q", "a", "b", true)
	c.PutEqual("q", "c", "d", false) // evicts (a,b), whose record is still dirty
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if same, ok := c.GetEqual("q", "a", "b"); !ok || !same {
		t.Error("evicted-but-unpersisted answer must stay readable")
	}
	if claim := c.ClaimEqual("q", "b", "a"); !claim.Hit || claim.Value != "yes" {
		t.Errorf("claim on dirty evicted entry must hit, got %+v", claim)
	}
}

func TestCompareCacheReadThroughRestoresEvicted(t *testing.T) {
	durable := map[string]string{}
	c := NewCompareCacheSize(1)
	c.ReadThrough = func(kind, question, l, r string) (string, bool) {
		v, ok := durable[kind+"/"+question+"/"+l+"/"+r]
		return v, ok
	}
	c.PutEqual("q", "a", "b", true)
	for _, e := range c.TakeDirty() { // the engine's persist pass
		durable[e.Kind+"/"+e.Question+"/"+e.Left+"/"+e.Right] = e.Answer
	}
	c.PutEqual("q", "c", "d", false) // evicts the persisted (a,b)

	// A claim on the evicted pair restores it from durable storage
	// instead of appointing a paying leader.
	claim := c.ClaimEqual("q", "b", "a")
	if !claim.Hit || claim.Value != "yes" {
		t.Fatalf("claim after eviction: %+v", claim)
	}
	// No paying leader was ever appointed: the restore counts as a hit
	// (and re-inserting it evicted the other resident entry).
	if st := c.Stats(); st.Misses != 0 || st.Hits != 1 {
		t.Errorf("restored answer stats: %+v", st)
	}
}

func TestCompareCacheClaimStates(t *testing.T) {
	c := NewCompareCache()

	leader := c.ClaimEqual("q", "x", "y")
	if !leader.Leader || leader.Hit {
		t.Fatalf("first claim must lead: %+v", leader)
	}
	follower := c.ClaimEqual("q", "y", "x") // symmetric key
	if follower.Leader || follower.Hit {
		t.Fatalf("second claim must follow: %+v", follower)
	}

	done := make(chan bool, 1)
	go func() {
		v, ok := follower.Wait()
		done <- ok && v == "yes"
	}()
	c.PutEqual("q", "x", "y", true)
	if !<-done {
		t.Fatal("follower did not observe the leader's answer")
	}
	if hit := c.ClaimEqual("q", "x", "y"); !hit.Hit || hit.Value != "yes" {
		t.Fatalf("post-resolution claim must hit: %+v", hit)
	}

	st := c.Stats()
	if st.Misses != 1 || st.Shared != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCompareCacheAbandonWakesFollowers(t *testing.T) {
	c := NewCompareCache()
	leader := c.ClaimOrder("q", "l", "r")
	follower := c.ClaimOrder("q", "l", "r")

	done := make(chan bool, 1)
	go func() {
		_, ok := follower.Wait()
		done <- ok
	}()
	leader.Abandon()
	if <-done {
		t.Fatal("abandoned flight must resolve followers with ok=false")
	}
	// The question is claimable again, and a later Put is a no-op on the
	// dead flight.
	again := c.ClaimOrder("q", "l", "r")
	if !again.Leader {
		t.Fatalf("re-claim after abandon must lead: %+v", again)
	}
	c.PutOrder("q", "l", "r", "l")
	leader.Abandon() // idempotent no-op after the answer is memoized
	if v, ok := c.GetOrder("q", "l", "r"); !ok || v != "l" {
		t.Fatalf("answer lost: %q, %v", v, ok)
	}
}

func TestCompareCacheConcurrentClaims(t *testing.T) {
	c := NewCompareCacheSize(64)
	const goroutines, pairs = 16, 32
	var paid sync.Map // pair index -> number of leaders
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := 0; p < pairs; p++ {
				l, r := string(rune('a'+p)), string(rune('A'+p))
				claim := c.ClaimEqual("q", l, r)
				switch {
				case claim.Hit:
				case claim.Leader:
					n, _ := paid.LoadOrStore(p, new(int))
					*(n.(*int))++ // counts leaders; must end at 1 per pair
					c.PutEqual("q", l, r, true)
				default:
					if _, ok := claim.Wait(); !ok {
						t.Errorf("pair %d: follower woke without answer", p)
					}
				}
			}
		}()
	}
	wg.Wait()
	for p := 0; p < pairs; p++ {
		n, ok := paid.Load(p)
		if !ok || *(n.(*int)) != 1 {
			t.Errorf("pair %d paid %v times, want exactly 1", p, n)
		}
	}
	if st := c.Stats(); st.Misses != pairs {
		t.Errorf("misses = %d, want %d (one leader per pair)", st.Misses, pairs)
	}
}

func TestCompareCacheSnapshotLoadRoundTrip(t *testing.T) {
	c := NewCompareCache()
	c.PutEqual("same entity?", "IBM", "International Business Machines", true)
	c.PutOrder("better talk?", "A", "B", "B")
	snap := c.TakeDirty()
	if len(snap) != 2 {
		t.Fatalf("dirty size %d", len(snap))
	}
	c2 := NewCompareCache()
	c2.Load(snap)
	if same, ok := c2.GetEqual("same entity?", "International Business Machines", "IBM"); !ok || !same {
		t.Error("equal entry lost in round trip")
	}
	if w, ok := c2.GetOrder("better talk?", "B", "A"); !ok || w != "B" {
		t.Error("order entry lost in round trip")
	}
	if st := c2.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("Load must not count stats: %+v", st)
	}
}
