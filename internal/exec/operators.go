// Package exec implements CrowdDB's vectorized streaming executor.
//
// # Operator contract
//
// Operators compose into a pull-based pipeline that moves rows in
// batches (row vectors) instead of one row per virtual call:
//
//	Open(ctx)      acquires resources and (for blocking operators)
//	               consumes the input; it must leave the operator ready
//	               to produce.
//	NextBatch(ctx) returns the next batch of result rows. End of stream
//	               is (nil, nil); a non-nil batch holds at least one row.
//	               The *Batch and its Rows slice header are OWNED BY THE
//	               PRODUCER and are only valid until the next call to
//	               NextBatch or Close on that operator — consumers that
//	               need the set of rows must copy the headers out (see
//	               drainInput). The Row values inside are immutable once
//	               handed over and MAY be retained by the consumer.
//	Close(ctx)     releases resources, stops any background workers, and
//	               reports feedback (observed selectivities) to the
//	               catalog. Close must be called even after an error.
//
// Batch sizing is per-statement (Ctx.BatchSize, DefaultBatchSize when
// unset). Operators reuse one batch buffer across NextBatch calls, so a
// steady-state pipeline allocates no per-batch memory.
//
// Streaming semantics: scans, filters, projections, joins (probe side),
// and limits produce rows incrementally. Blocking operators (sort,
// aggregate) consume their input in Open but stream their output.  The
// crowd operators stream as human work settles: CROWDORDER emits the
// settled prefix of the breadth-first quicksort after each comparison
// round (most-preferred rows appear before the full order is resolved),
// and a CROWDEQUAL filter emits each buffered row as soon as every
// comparison it depends on has a quorum — without waiting for the other
// rows' groups. The crowd *scheduling* order (claims, HIT-group posts,
// collections) is independent of batch size and emission timing, which
// keeps seeded replays bit-identical to the row-at-a-time executor.
//
// Early stop: operators that can cut upstream work short once a
// downstream quota is filled implement EarlyStopper; limitOp signals it
// the moment its Nth row is produced, which stops parallel scan workers
// instead of letting them fan out full shard scans whose rows would be
// discarded.
//
// Legacy row-at-a-time operators can ride in the pipeline through
// AdaptRowOperator during migrations.
package exec

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"crowddb/internal/parser"
	"crowddb/internal/plan"
	"crowddb/internal/sqltypes"
	"crowddb/internal/storage"
)

// Row is an executor tuple.
type Row = storage.Row

// Operator is a batch-at-a-time streaming iterator. See the package
// comment for the full contract (ownership, reuse, EOF, early stop).
type Operator interface {
	Schema() []plan.Col
	Open(ctx *Ctx) error
	NextBatch(ctx *Ctx) (*Batch, error)
	Close(ctx *Ctx) error
}

// ---------------------------------------------------------------------------
// SeqScan: stored-table scan with pushed filter and stop-after. Small
// tables snapshot in bulk (one lock acquisition per shard, no per-row
// store round-trips) and filter lazily per batch; large tables on a
// sharded store fan out one streaming worker per shard and merge by
// ascending row ID, which IS global insertion order (IDs are allocated
// from one per-table counter), so the parallel scan emits byte-identical
// output to the sequential one. Workers observe the early-stop signal:
// a filled LIMIT quota stops them mid-shard.

// DefaultParallelScanMinRows is the table size (catalog estimate) below
// which a scan stays sequential: fan-out overhead beats the win on small
// tables, and the paper's crowd workloads live well under it.
const DefaultParallelScanMinRows = 2048

type seqScan struct {
	node    *plan.Scan
	rows    []Row
	ids     []storage.RowID // lazy (stop-after) path only
	pos     int
	out     int64
	scanned int64
	stopped bool
	buf     Batch
	par     *parallelScanRun
	peakBuf int64
}

func (s *seqScan) Schema() []plan.Col { return s.node.Schema() }

func (s *seqScan) Open(ctx *Ctx) error {
	s.rows, s.ids, s.pos, s.out, s.scanned, s.stopped, s.par = nil, nil, 0, 0, 0, false, nil
	if parallelEligible(ctx, s.node) {
		// Lazy fan-out: workers start at the first NextBatch, so an
		// early stop that lands before any demand skips the scan work
		// entirely.
		s.par = newParallelScanRun(ctx, s.node)
		return nil
	}
	if s.node.StopAfter >= 0 {
		// The scan may stop far short of the table: fetch IDs only and
		// materialize rows lazily so a filled quota costs O(quota), not
		// O(table) clones.
		ids, err := ctx.Store.ScanAt(s.node.Table.Name, ctx.snapTS())
		if err != nil {
			return err
		}
		s.ids = ids
		s.peakBuf = int64(len(ids))
		return nil
	}
	_, rows, err := ctx.Store.ScanRowsAt(s.node.Table.Name, ctx.snapTS())
	if err != nil {
		return err
	}
	s.rows = rows
	s.peakBuf = int64(len(rows))
	return nil
}

// parallelEligible gates the fan-out: never when a stop-after could end
// the scan early (the sequential path stops scanning the moment the
// quota fills, and the selectivity feedback must see the same counts),
// and never below the size threshold.
func parallelEligible(ctx *Ctx, node *plan.Scan) bool {
	if node.StopAfter >= 0 || ctx.Store.NumShards() < 2 {
		return false
	}
	min := ctx.ParallelScanMinRows
	if min == 0 {
		min = DefaultParallelScanMinRows
	}
	return min > 0 && node.Table.RowCount() >= int64(min)
}

// StopEarly implements EarlyStopper: the sequential path simply stops
// producing (it is already lazy per batch); the parallel path signals
// the shard workers so in-flight filtering halts mid-shard.
func (s *seqScan) StopEarly() {
	s.stopped = true
	if s.par != nil {
		s.par.stop()
	}
}

func (s *seqScan) NextBatch(ctx *Ctx) (*Batch, error) {
	if s.stopped {
		return nil, nil
	}
	if s.par != nil {
		return s.par.nextBatch(ctx, &s.buf)
	}
	lazy := s.ids != nil
	s.buf.reset()
	limit := ctx.batchSize()
	for len(s.buf.Rows) < limit {
		if s.node.StopAfter >= 0 && s.out >= s.node.StopAfter {
			break
		}
		var row Row
		if lazy {
			if s.pos >= len(s.ids) {
				break
			}
			got, ok := ctx.Store.GetAt(s.node.Table.Name, s.ids[s.pos], ctx.snapTS())
			s.pos++
			if !ok {
				continue
			}
			row = got
		} else {
			if s.pos >= len(s.rows) {
				break
			}
			row = s.rows[s.pos]
			s.pos++
		}
		ctx.Stats.RowsScanned++
		s.scanned++
		keep, err := rowMatches(s.node.Filter, row, s.node.Schema())
		if err != nil {
			return nil, err
		}
		if keep {
			s.out++
			s.buf.Rows = append(s.buf.Rows, row)
		}
	}
	if len(s.buf.Rows) == 0 {
		return nil, nil
	}
	return &s.buf, nil
}

func (s *seqScan) Close(ctx *Ctx) error {
	if s.par != nil {
		scanned, kept, complete := s.par.finish()
		ctx.Stats.RowsScanned += int(scanned)
		s.scanned, s.out = scanned, kept
		// Feed the observed selectivity back only when every shard ran to
		// completion: a partial (early-stopped) scan's counts depend on
		// worker timing and would poison the EWMA nondeterministically.
		if complete && s.node.Filter != nil && scanned > 0 {
			s.node.Table.ObserveFilter(scanned, kept)
		}
		return nil
	}
	// Feed the observed predicate selectivity back to the cost model.
	if s.node.Filter != nil && s.scanned > 0 {
		s.node.Table.ObserveFilter(s.scanned, s.out)
	}
	return nil
}

func (s *seqScan) bufferedRows() int64 {
	if s.par != nil {
		return s.par.buffered()
	}
	return s.peakBuf
}

// ---------------------------------------------------------------------------
// Parallel scan fan-out: one streaming worker per shard, k-way merged by
// ascending row ID.

// parallelChunkRows is the granularity at which shard workers hand
// filtered rows to the merger and check the stop signal.
const parallelChunkRows = 256

type shardChunk struct {
	ids     []storage.RowID
	rows    []Row
	scanned int64
	kept    int64
	err     error
}

// shardCursor is the merger's view of one shard's stream.
type shardCursor struct {
	ch   chan shardChunk
	cur  shardChunk
	pos  int
	done bool
}

type parallelScanRun struct {
	node    *plan.Scan
	sch     []plan.Col
	at      int64
	store   *storage.Store
	started bool
	stopped atomic.Bool
	stopCh  chan struct{}
	stopOne sync.Once
	wg      sync.WaitGroup
	curs    []*shardCursor
	scanned atomic.Int64
	kept    atomic.Int64
	eofAll  bool
	maxBuf  atomic.Int64
}

func newParallelScanRun(ctx *Ctx, node *plan.Scan) *parallelScanRun {
	return &parallelScanRun{
		node:   node,
		sch:    node.Schema(), // resolved once; workers share it read-only
		at:     ctx.snapTS(),  // one timestamp for every shard: a consistent cut
		store:  ctx.Store,
		stopCh: make(chan struct{}),
	}
}

func (p *parallelScanRun) stop() {
	p.stopped.Store(true)
	p.stopOne.Do(func() { close(p.stopCh) })
}

func (p *parallelScanRun) start() {
	n := p.store.NumShards()
	p.curs = make([]*shardCursor, n)
	for i := 0; i < n; i++ {
		p.curs[i] = &shardCursor{ch: make(chan shardChunk, 2)}
		p.wg.Add(1)
		go p.worker(i, p.curs[i].ch)
	}
	p.started = true
}

// worker scans one shard, applies the pushed filter, and streams
// filtered chunks to the merger in ascending row-ID order. It checks the
// stop signal between chunks (and on every handoff), so a filled LIMIT
// quota halts the remaining filter work instead of producing rows that
// would be discarded.
func (p *parallelScanRun) worker(shard int, ch chan shardChunk) {
	defer p.wg.Done()
	defer close(ch)
	send := func(c shardChunk) bool {
		p.scanned.Add(c.scanned)
		p.kept.Add(c.kept)
		select {
		case ch <- c:
			return true
		case <-p.stopCh:
			return false
		}
	}
	ids, rows, err := p.store.ScanShardRowsAt(p.node.Table.Name, shard, p.at)
	if err != nil {
		send(shardChunk{err: err})
		return
	}
	p.maxBuf.Add(int64(len(rows)))
	var c shardChunk
	for j, row := range rows {
		c.scanned++
		keep, err := rowMatches(p.node.Filter, row, p.sch)
		if err != nil {
			c.err = err
			send(c)
			return
		}
		if keep {
			c.kept++
			c.ids = append(c.ids, ids[j])
			c.rows = append(c.rows, row)
		}
		if len(c.rows) >= parallelChunkRows {
			if !send(c) {
				return
			}
			c = shardChunk{}
		}
	}
	if c.scanned > 0 || len(c.rows) > 0 {
		send(c)
	}
}

// advance ensures the cursor holds a current row or is marked done.
func (c *shardCursor) advance() error {
	for !c.done && c.pos >= len(c.cur.rows) {
		chunk, ok := <-c.ch
		if !ok {
			c.done = true
			return nil
		}
		if chunk.err != nil {
			c.done = true
			return chunk.err
		}
		c.cur, c.pos = chunk, 0
	}
	return nil
}

// nextBatch merges the shard streams by ascending row ID into buf.
// Ascending ID across shards reconstructs insertion order exactly, so
// seeded replays stay bit-identical to the sequential scan.
func (p *parallelScanRun) nextBatch(ctx *Ctx, buf *Batch) (*Batch, error) {
	if !p.started {
		p.start()
	}
	buf.reset()
	limit := ctx.batchSize()
	for len(buf.Rows) < limit {
		best := -1
		var bestID storage.RowID
		for i, c := range p.curs {
			if err := c.advance(); err != nil {
				return nil, err
			}
			if c.done {
				continue
			}
			if id := c.cur.ids[c.pos]; best < 0 || id < bestID {
				best, bestID = i, id
			}
		}
		if best < 0 {
			p.eofAll = true
			break
		}
		c := p.curs[best]
		buf.Rows = append(buf.Rows, c.cur.rows[c.pos])
		c.pos++
	}
	if len(buf.Rows) == 0 {
		return nil, nil
	}
	return buf, nil
}

// finish stops the workers, waits them out (no goroutine leaks), and
// reports (scanned, kept, complete): complete is true only when every
// shard was filtered to the end and merged to EOF — the condition under
// which the counts are deterministic.
func (p *parallelScanRun) finish() (scanned, kept int64, complete bool) {
	if !p.started {
		return 0, 0, false
	}
	p.stopOne.Do(func() { close(p.stopCh) })
	p.wg.Wait()
	return p.scanned.Load(), p.kept.Load(), p.eofAll && !p.stopped.Load()
}

func (p *parallelScanRun) buffered() int64 { return p.maxBuf.Load() }

// ---------------------------------------------------------------------------
// Filter (with CrowdCompare support for crowd predicates)

type filterOp struct {
	node    *plan.Filter
	input   Operator
	crowd   bool
	stream  *equalStream // crowd mode: quorum-streaming CROWDEQUAL state
	stopped bool
	buf     Batch
}

func (f *filterOp) Schema() []plan.Col { return f.input.Schema() }

func (f *filterOp) Open(ctx *Ctx) error {
	if err := f.input.Open(ctx); err != nil {
		return err
	}
	f.stream, f.stopped = nil, false
	if !f.crowd {
		return nil
	}
	// CrowdFilter: drain the input, batch-resolve every CROWDEQUAL pair
	// in pipelined HIT groups (CrowdCompare). Collection is deferred to
	// NextBatch so rows stream out as their quorums land.
	buffered, err := drainInput(ctx, f.input, nil)
	if err != nil {
		return err
	}
	// Cost-based phase ordering: when the optimizer split off a cheap
	// (crowd-free) phase, prune with it first — rows a machine predicate
	// rejects must never cost a paid comparison. AND semantics make this
	// exact: a row failing Pre fails Cond regardless of crowd verdicts.
	if f.node.Pre != nil {
		kept := buffered[:0]
		for _, r := range buffered {
			v, err := eval(f.node.Pre, &evalCtx{schema: f.Schema(), row: r, exec: ctx})
			if err != nil {
				return err
			}
			if b, unknown := boolOf(v); !unknown && b {
				kept = append(kept, r)
			}
		}
		buffered = kept
	}
	stream, err := newEqualStream(ctx, f.node.Cond, buffered, f.Schema())
	if err != nil {
		return err
	}
	f.stream = stream
	return nil
}

func (f *filterOp) StopEarly() {
	f.stopped = true
	stopEarly(f.input)
}

func (f *filterOp) NextBatch(ctx *Ctx) (*Batch, error) {
	if f.stopped {
		return nil, nil
	}
	if f.crowd {
		return f.stream.nextBatch(ctx)
	}
	for {
		b, err := f.input.NextBatch(ctx)
		if err != nil {
			return nil, err
		}
		if b.Len() == 0 {
			return nil, nil
		}
		f.buf.reset()
		for _, r := range b.Rows {
			v, err := eval(f.node.Cond, &evalCtx{schema: f.Schema(), row: r, crowdEqual: cachedEqualResolver(ctx), exec: ctx})
			if err != nil {
				return nil, err
			}
			if keep, unknown := boolOf(v); !unknown && keep {
				f.buf.Rows = append(f.buf.Rows, r)
			}
		}
		if len(f.buf.Rows) > 0 {
			return &f.buf, nil
		}
	}
}

func (f *filterOp) Close(ctx *Ctx) error {
	if f.stream != nil {
		f.stream.close(ctx)
	}
	return f.input.Close(ctx)
}

func (f *filterOp) bufferedRows() int64 {
	if f.stream != nil {
		return int64(len(f.stream.rows))
	}
	return 0
}

// rowMatches evaluates a (crowd-free) predicate to a keep/drop decision.
func rowMatches(filter parser.Expr, row Row, schema []plan.Col) (bool, error) {
	if filter == nil {
		return true, nil
	}
	v, err := eval(filter, &evalCtx{schema: schema, row: row})
	if err != nil {
		return false, err
	}
	b, unknown := boolOf(v)
	return !unknown && b, nil
}

// ---------------------------------------------------------------------------
// Project

type projectOp struct {
	node  *plan.Project
	input Operator
	buf   Batch
}

func (p *projectOp) Schema() []plan.Col { return p.node.Schema() }

func (p *projectOp) Open(ctx *Ctx) error { return p.input.Open(ctx) }

func (p *projectOp) StopEarly() { stopEarly(p.input) }

func (p *projectOp) NextBatch(ctx *Ctx) (*Batch, error) {
	b, err := p.input.NextBatch(ctx)
	if err != nil {
		return nil, err
	}
	if b.Len() == 0 {
		return nil, nil
	}
	p.buf.reset()
	for _, r := range b.Rows {
		out := make(Row, len(p.node.Items))
		ectx := &evalCtx{schema: p.input.Schema(), row: r, crowdEqual: cachedEqualResolver(ctx), exec: ctx}
		for i, it := range p.node.Items {
			v, err := eval(it.Expr, ectx)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		p.buf.Rows = append(p.buf.Rows, out)
	}
	return &p.buf, nil
}

func (p *projectOp) Close(ctx *Ctx) error { return p.input.Close(ctx) }

// ---------------------------------------------------------------------------
// Joins

// nlJoin is the general nested-loop join (inner, cross, left outer) with an
// arbitrary ON condition; the right side is buffered, the left streams.
type nlJoin struct {
	node  *plan.Join
	left  Operator
	right Operator

	rightRows []Row
	leftBatch *Batch
	lpos      int
	cur       Row
	rpos      int
	matched   bool
	buf       Batch
}

func (j *nlJoin) Schema() []plan.Col { return j.node.Schema() }

func (j *nlJoin) Open(ctx *Ctx) error {
	if err := j.left.Open(ctx); err != nil {
		return err
	}
	if err := j.right.Open(ctx); err != nil {
		return err
	}
	rows, err := drainInput(ctx, j.right, nil)
	if err != nil {
		return err
	}
	j.rightRows = rows
	j.leftBatch, j.lpos, j.cur, j.rpos, j.matched = nil, 0, nil, 0, false
	return nil
}

func (j *nlJoin) StopEarly() { stopEarly(j.left) }

// nextLeft pulls the next probe-side row through the batch pipeline.
func (j *nlJoin) nextLeft(ctx *Ctx) (Row, error) {
	for j.leftBatch == nil || j.lpos >= len(j.leftBatch.Rows) {
		b, err := j.left.NextBatch(ctx)
		if err != nil {
			return nil, err
		}
		if b.Len() == 0 {
			return nil, nil
		}
		j.leftBatch, j.lpos = b, 0
	}
	r := j.leftBatch.Rows[j.lpos]
	j.lpos++
	return r, nil
}

func (j *nlJoin) next(ctx *Ctx) (Row, error) {
	for {
		if j.cur == nil {
			l, err := j.nextLeft(ctx)
			if err != nil || l == nil {
				return nil, err
			}
			j.cur, j.rpos, j.matched = l, 0, false
		}
		for j.rpos < len(j.rightRows) {
			r := j.rightRows[j.rpos]
			j.rpos++
			combined := append(append(Row{}, j.cur...), r...)
			ok, err := rowMatches(j.node.On, combined, j.Schema())
			if err != nil {
				return nil, err
			}
			if ok {
				j.matched = true
				return combined, nil
			}
		}
		// Right side exhausted for this left row.
		if j.node.Type == parser.JoinLeft && !j.matched {
			out := append(Row{}, j.cur...)
			for range j.right.Schema() {
				out = append(out, sqltypes.Null())
			}
			j.cur = nil
			return out, nil
		}
		j.cur = nil
	}
}

func (j *nlJoin) NextBatch(ctx *Ctx) (*Batch, error) {
	j.buf.reset()
	limit := ctx.batchSize()
	for len(j.buf.Rows) < limit {
		r, err := j.next(ctx)
		if err != nil {
			return nil, err
		}
		if r == nil {
			break
		}
		j.buf.Rows = append(j.buf.Rows, r)
	}
	if len(j.buf.Rows) == 0 {
		return nil, nil
	}
	return &j.buf, nil
}

func (j *nlJoin) Close(ctx *Ctx) error {
	if err := j.left.Close(ctx); err != nil {
		return err
	}
	return j.right.Close(ctx)
}

func (j *nlJoin) bufferedRows() int64 { return int64(len(j.rightRows)) }

// hashJoin handles inner equi-joins: it hashes the right input on the join
// key and streams the left. The build table is pre-sized from the
// optimizer's cardinality estimate for the build side (plan.Join.BuildRows)
// so bulk builds do not rehash their way up from an empty map.
type hashJoin struct {
	node     *plan.Join
	left     Operator
	right    Operator
	leftKey  parser.Expr
	rightKey parser.Expr
	residual parser.Expr

	table map[string][]Row
	built int64
	cur   Row
	bkt   []Row
	bpos  int

	leftBatch *Batch
	lpos      int
	buf       Batch
}

func (j *hashJoin) Schema() []plan.Col { return j.node.Schema() }

// buildSizeHint converts the optimizer's build-side row estimate into a
// map pre-size, clamped so a wild estimate cannot pre-allocate
// unboundedly.
func (j *hashJoin) buildSizeHint() int {
	const maxHint = 1 << 20
	est := int(j.node.BuildRows)
	if est < 0 {
		return 0
	}
	if est > maxHint {
		return maxHint
	}
	return est
}

func (j *hashJoin) Open(ctx *Ctx) error {
	if err := j.left.Open(ctx); err != nil {
		return err
	}
	if err := j.right.Open(ctx); err != nil {
		return err
	}
	j.table = make(map[string][]Row, j.buildSizeHint())
	j.built = 0
	for {
		b, err := j.right.NextBatch(ctx)
		if err != nil {
			return err
		}
		if b.Len() == 0 {
			break
		}
		for _, r := range b.Rows {
			v, err := eval(j.rightKey, &evalCtx{schema: j.right.Schema(), row: r})
			if err != nil {
				return err
			}
			if v.IsUnknown() {
				continue // unknown keys never join
			}
			k := storage.IndexKey(v)
			j.table[k] = append(j.table[k], r)
			j.built++
		}
	}
	j.leftBatch, j.lpos, j.cur, j.bkt, j.bpos = nil, 0, nil, nil, 0
	return nil
}

func (j *hashJoin) StopEarly() { stopEarly(j.left) }

func (j *hashJoin) nextLeft(ctx *Ctx) (Row, error) {
	for j.leftBatch == nil || j.lpos >= len(j.leftBatch.Rows) {
		b, err := j.left.NextBatch(ctx)
		if err != nil {
			return nil, err
		}
		if b.Len() == 0 {
			return nil, nil
		}
		j.leftBatch, j.lpos = b, 0
	}
	r := j.leftBatch.Rows[j.lpos]
	j.lpos++
	return r, nil
}

func (j *hashJoin) next(ctx *Ctx) (Row, error) {
	for {
		for j.bpos < len(j.bkt) {
			r := j.bkt[j.bpos]
			j.bpos++
			combined := append(append(Row{}, j.cur...), r...)
			ok, err := rowMatches(j.residual, combined, j.Schema())
			if err != nil {
				return nil, err
			}
			if ok {
				return combined, nil
			}
		}
		l, err := j.nextLeft(ctx)
		if err != nil || l == nil {
			return nil, err
		}
		v, err := eval(j.leftKey, &evalCtx{schema: j.left.Schema(), row: l})
		if err != nil {
			return nil, err
		}
		if v.IsUnknown() {
			continue
		}
		j.cur = l
		j.bkt = j.table[storage.IndexKey(v)]
		j.bpos = 0
	}
}

func (j *hashJoin) NextBatch(ctx *Ctx) (*Batch, error) {
	j.buf.reset()
	limit := ctx.batchSize()
	for len(j.buf.Rows) < limit {
		r, err := j.next(ctx)
		if err != nil {
			return nil, err
		}
		if r == nil {
			break
		}
		j.buf.Rows = append(j.buf.Rows, r)
	}
	if len(j.buf.Rows) == 0 {
		return nil, nil
	}
	return &j.buf, nil
}

func (j *hashJoin) Close(ctx *Ctx) error {
	if err := j.left.Close(ctx); err != nil {
		return err
	}
	return j.right.Close(ctx)
}

func (j *hashJoin) bufferedRows() int64 { return j.built }

// ---------------------------------------------------------------------------
// Sort (plain and crowd-backed)

type sortOp struct {
	node  *plan.Sort
	input Operator

	rows    []Row
	sorter  *crowdSorter // non-nil while a CROWDORDER sort is streaming
	emitted int
	buf     Batch
}

func (s *sortOp) Schema() []plan.Col { return s.input.Schema() }

func (s *sortOp) Open(ctx *Ctx) error {
	if err := s.input.Open(ctx); err != nil {
		return err
	}
	s.rows, s.sorter, s.emitted = nil, nil, 0
	rows, err := drainInput(ctx, s.input, nil)
	if err != nil {
		return err
	}
	s.rows = rows
	// Split keys: a CROWDORDER key delegates to the crowd sort; other keys
	// sort conventionally. A crowd key must be the only key.
	for _, k := range s.node.Keys {
		if parser.HasCrowdFunc(k.Expr) {
			if len(s.node.Keys) != 1 {
				return fmt.Errorf("exec: CROWDORDER cannot be combined with other sort keys")
			}
			sorter, err := newCrowdSorter(ctx, s.rows, s.Schema(), k)
			if err != nil {
				return err
			}
			if k.Desc {
				// DESC reverses the final order, so the settled ASC
				// prefix is the *suffix* of the output: stream nothing
				// until the sort completes (matches the materializing
				// executor exactly).
				if err := sorter.run(); err != nil {
					return err
				}
				s.rows = sorter.permuted()
				reverseRows(s.rows)
				return nil
			}
			// ASC streams: NextBatch drives comparison rounds and emits
			// the settled prefix as it grows.
			s.sorter = sorter
			return nil
		}
	}
	return s.plainSort(ctx)
}

func reverseRows(rows []Row) {
	for i, j := 0, len(rows)-1; i < j; i, j = i+1, j-1 {
		rows[i], rows[j] = rows[j], rows[i]
	}
}

func (s *sortOp) plainSort(ctx *Ctx) error {
	type keyed struct {
		row  Row
		keys []sqltypes.Value
	}
	ks := make([]keyed, len(s.rows))
	for i, r := range s.rows {
		ks[i] = keyed{row: r, keys: make([]sqltypes.Value, len(s.node.Keys))}
		for ki, k := range s.node.Keys {
			v, err := eval(k.Expr, &evalCtx{schema: s.Schema(), row: r})
			if err != nil {
				return err
			}
			ks[i].keys[ki] = v
		}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		for ki, k := range s.node.Keys {
			c := sqltypes.SortCompare(ks[a].keys[ki], ks[b].keys[ki])
			if k.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	for i := range ks {
		s.rows[i] = ks[i].row
	}
	return nil
}

func (s *sortOp) NextBatch(ctx *Ctx) (*Batch, error) {
	if s.sorter != nil {
		// Run comparison rounds until the settled prefix grows past what
		// has been emitted (or the sort completes). CROWDORDER's
		// breadth-first quicksort settles most-preferred rows first, so
		// the first rows leave while later partitions still wait on the
		// crowd.
		for !s.sorter.done() && s.sorter.settled() <= s.emitted {
			if err := s.sorter.step(); err != nil {
				return nil, err
			}
		}
		end := s.sorter.settled()
		if s.emitted >= end {
			return nil, nil // fully emitted (done, nothing left)
		}
		n := min(ctx.batchSize(), end-s.emitted)
		s.buf.reset()
		for i := s.emitted; i < s.emitted+n; i++ {
			s.buf.Rows = append(s.buf.Rows, s.rows[s.sorter.idx[i]])
		}
		s.emitted += n
		return &s.buf, nil
	}
	if s.emitted >= len(s.rows) {
		return nil, nil
	}
	n := min(ctx.batchSize(), len(s.rows)-s.emitted)
	s.buf.Rows = s.rows[s.emitted : s.emitted+n]
	s.emitted += n
	return &s.buf, nil
}

func (s *sortOp) Close(ctx *Ctx) error { return s.input.Close(ctx) }

func (s *sortOp) bufferedRows() int64 { return int64(len(s.rows)) }

// ---------------------------------------------------------------------------
// Limit / Distinct

type limitOp struct {
	node    *plan.Limit
	input   Operator
	skipped int64
	emitted int64
	buf     Batch
}

func (l *limitOp) Schema() []plan.Col { return l.input.Schema() }

func (l *limitOp) Open(ctx *Ctx) error {
	l.skipped, l.emitted = 0, 0
	return l.input.Open(ctx)
}

func (l *limitOp) StopEarly() { stopEarly(l.input) }

func (l *limitOp) NextBatch(ctx *Ctx) (*Batch, error) {
	for {
		if l.node.N >= 0 && l.emitted >= l.node.N {
			return nil, nil
		}
		b, err := l.input.NextBatch(ctx)
		if err != nil {
			return nil, err
		}
		if b.Len() == 0 {
			return nil, nil
		}
		rows := b.Rows
		if l.skipped < l.node.Offset {
			skip := l.node.Offset - l.skipped
			if skip > int64(len(rows)) {
				skip = int64(len(rows))
			}
			l.skipped += skip
			rows = rows[skip:]
		}
		if l.node.N >= 0 {
			if remaining := l.node.N - l.emitted; int64(len(rows)) >= remaining {
				rows = rows[:remaining]
				l.emitted = l.node.N
				// Quota filled: stop upstream production (parallel scan
				// workers, etc.) instead of discarding their rows.
				stopEarly(l.input)
			} else {
				l.emitted += int64(len(rows))
			}
		}
		if len(rows) == 0 {
			continue
		}
		l.buf.Rows = rows // view into the input batch: valid until our next call
		return &l.buf, nil
	}
}

func (l *limitOp) Close(ctx *Ctx) error { return l.input.Close(ctx) }

type distinctOp struct {
	input Operator
	seen  map[string]bool
	buf   Batch
}

func (d *distinctOp) Schema() []plan.Col { return d.input.Schema() }

func (d *distinctOp) Open(ctx *Ctx) error {
	d.seen = make(map[string]bool)
	return d.input.Open(ctx)
}

func (d *distinctOp) StopEarly() { stopEarly(d.input) }

func (d *distinctOp) NextBatch(ctx *Ctx) (*Batch, error) {
	for {
		b, err := d.input.NextBatch(ctx)
		if err != nil {
			return nil, err
		}
		if b.Len() == 0 {
			return nil, nil
		}
		d.buf.reset()
		for _, r := range b.Rows {
			k := storage.IndexKey(r...)
			if !d.seen[k] {
				d.seen[k] = true
				d.buf.Rows = append(d.buf.Rows, r)
			}
		}
		if len(d.buf.Rows) > 0 {
			return &d.buf, nil
		}
	}
}

func (d *distinctOp) Close(ctx *Ctx) error { return d.input.Close(ctx) }

func (d *distinctOp) bufferedRows() int64 { return int64(len(d.seen)) }

// ---------------------------------------------------------------------------
// Aggregate

type aggregateOp struct {
	node    *plan.Aggregate
	input   Operator
	out     batchEmitter
	grouped int64
}

func (a *aggregateOp) Schema() []plan.Col { return a.node.Schema() }

func (a *aggregateOp) Open(ctx *Ctx) error {
	if err := a.input.Open(ctx); err != nil {
		return err
	}
	a.out = batchEmitter{}
	a.grouped = 0
	groups := make(map[string][]Row)
	var order []string
	for {
		b, err := a.input.NextBatch(ctx)
		if err != nil {
			return err
		}
		if b.Len() == 0 {
			break
		}
		for _, r := range b.Rows {
			keyVals := make([]sqltypes.Value, len(a.node.GroupBy))
			for i, g := range a.node.GroupBy {
				v, err := eval(g, &evalCtx{schema: a.input.Schema(), row: r})
				if err != nil {
					return err
				}
				keyVals[i] = v
			}
			k := storage.IndexKey(keyVals...)
			if _, ok := groups[k]; !ok {
				order = append(order, k)
			}
			groups[k] = append(groups[k], r)
			a.grouped++
		}
	}
	// A global aggregate over zero rows still produces one row.
	if len(a.node.GroupBy) == 0 && len(order) == 0 {
		order = append(order, "")
		groups[""] = nil
	}
	for _, k := range order {
		rows := groups[k]
		if a.node.Having != nil {
			hv, err := evalAggExpr(a.node.Having, rows, a.input.Schema())
			if err != nil {
				return err
			}
			if b, unknown := boolOf(hv); unknown || !b {
				continue
			}
		}
		out := make(Row, len(a.node.Items))
		for i, it := range a.node.Items {
			v, err := evalAggExpr(it.Expr, rows, a.input.Schema())
			if err != nil {
				return err
			}
			out[i] = v
		}
		a.out.rows = append(a.out.rows, out)
	}
	return nil
}

func (a *aggregateOp) NextBatch(ctx *Ctx) (*Batch, error) {
	b := a.out.next(ctx)
	if b == nil {
		return nil, nil
	}
	return b, nil
}

func (a *aggregateOp) Close(ctx *Ctx) error { return a.input.Close(ctx) }

func (a *aggregateOp) bufferedRows() int64 { return a.grouped + int64(len(a.out.rows)) }

// evalAggExpr evaluates an expression over a group: aggregates compute over
// all rows, everything else over the group's first row (legal because the
// planner enforced grouping).
func evalAggExpr(e parser.Expr, rows []Row, schema []plan.Col) (sqltypes.Value, error) {
	if fc, ok := e.(*parser.FuncCall); ok && fc.IsAggregate() {
		return computeAggregate(fc, rows, schema)
	}
	switch x := e.(type) {
	case *parser.BinaryExpr:
		if exprHasAggregate(e) {
			l, err := evalAggExpr(x.L, rows, schema)
			if err != nil {
				return sqltypes.Value{}, err
			}
			r, err := evalAggExpr(x.R, rows, schema)
			if err != nil {
				return sqltypes.Value{}, err
			}
			switch x.Op {
			case "AND", "OR":
				return evalLogic(x.Op, l, r)
			case "=", "<>", "<", "<=", ">", ">=":
				return evalBinary(&parser.BinaryExpr{Op: x.Op,
					L: &parser.Literal{Val: l}, R: &parser.Literal{Val: r}}, &evalCtx{})
			default:
				return evalArith(x.Op, l, r)
			}
		}
	case *parser.UnaryExpr:
		if exprHasAggregate(e) {
			v, err := evalAggExpr(x.E, rows, schema)
			if err != nil {
				return sqltypes.Value{}, err
			}
			return eval(&parser.UnaryExpr{Op: x.Op, E: &parser.Literal{Val: v}}, &evalCtx{})
		}
	}
	if len(rows) == 0 {
		return sqltypes.Null(), nil
	}
	return eval(e, &evalCtx{schema: schema, row: rows[0]})
}

func exprHasAggregate(e parser.Expr) bool {
	found := false
	parser.WalkExprs(e, func(x parser.Expr) {
		if fc, ok := x.(*parser.FuncCall); ok && fc.IsAggregate() {
			found = true
		}
	})
	return found
}

func computeAggregate(fc *parser.FuncCall, rows []Row, schema []plan.Col) (sqltypes.Value, error) {
	if fc.Star { // COUNT(*)
		return sqltypes.NewInt(int64(len(rows))), nil
	}
	var vals []sqltypes.Value
	for _, r := range rows {
		v, err := eval(fc.Args[0], &evalCtx{schema: schema, row: r})
		if err != nil {
			return sqltypes.Value{}, err
		}
		if !v.IsUnknown() { // SQL aggregates skip NULLs (and CNULLs)
			vals = append(vals, v)
		}
	}
	switch fc.Name {
	case "COUNT":
		return sqltypes.NewInt(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return sqltypes.Null(), nil
		}
		sum := 0.0
		allInt := true
		for _, v := range vals {
			f, err := v.Coerce(sqltypes.TypeFloat)
			if err != nil {
				return sqltypes.Value{}, fmt.Errorf("exec: %s over non-numeric value %v", fc.Name, v)
			}
			sum += f.Float()
			if v.Kind() != sqltypes.KindInt {
				allInt = false
			}
		}
		if fc.Name == "AVG" {
			return sqltypes.NewFloat(sum / float64(len(vals))), nil
		}
		if allInt {
			return sqltypes.NewInt(int64(sum)), nil
		}
		return sqltypes.NewFloat(sum), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return sqltypes.Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, ok := sqltypes.Compare(v, best)
			if !ok {
				return sqltypes.Value{}, fmt.Errorf("exec: %s over incomparable values", fc.Name)
			}
			if (fc.Name == "MIN" && c < 0) || (fc.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return sqltypes.Value{}, fmt.Errorf("exec: unknown aggregate %s", fc.Name)
}
