package exec

import (
	"fmt"
	"sort"
	"sync"

	"crowddb/internal/parser"
	"crowddb/internal/plan"
	"crowddb/internal/sqltypes"
	"crowddb/internal/storage"
)

// Row is an executor tuple.
type Row = storage.Row

// Operator is a Volcano-style iterator. Next returns (nil, nil) at end of
// stream.
type Operator interface {
	Schema() []plan.Col
	Open(ctx *Ctx) error
	Next(ctx *Ctx) (Row, error)
	Close(ctx *Ctx) error
}

// ---------------------------------------------------------------------------
// SeqScan: stored-table scan with pushed filter and stop-after. Small
// tables snapshot in bulk (one lock acquisition per shard, no per-row
// store round-trips); large tables on a sharded store fan out one worker
// per shard and merge by ascending row ID, which IS global insertion
// order (IDs are allocated from one per-table counter), so the parallel
// scan emits byte-identical output to the sequential one.

// DefaultParallelScanMinRows is the table size (catalog estimate) below
// which a scan stays sequential: fan-out overhead beats the win on small
// tables, and the paper's crowd workloads live well under it.
const DefaultParallelScanMinRows = 2048

type seqScan struct {
	node    *plan.Scan
	rows    []Row
	ids     []storage.RowID // lazy (stop-after) path only
	pos     int
	out     int64
	scanned int64
	// prefiltered marks the parallel path: workers already applied the
	// pushed filter, Next only drains the merged rows.
	prefiltered bool
}

func (s *seqScan) Schema() []plan.Col { return s.node.Schema() }

func (s *seqScan) Open(ctx *Ctx) error {
	s.rows, s.ids, s.pos, s.out, s.scanned, s.prefiltered = nil, nil, 0, 0, 0, false
	if parallelEligible(ctx, s.node) {
		return s.openParallel(ctx)
	}
	if s.node.StopAfter >= 0 {
		// The scan may stop far short of the table: fetch IDs only and
		// materialize rows lazily so a filled quota costs O(quota), not
		// O(table) clones.
		ids, err := ctx.Store.ScanAt(s.node.Table.Name, ctx.snapTS())
		if err != nil {
			return err
		}
		s.ids = ids
		return nil
	}
	_, rows, err := ctx.Store.ScanRowsAt(s.node.Table.Name, ctx.snapTS())
	if err != nil {
		return err
	}
	s.rows = rows
	return nil
}

// parallelEligible gates the fan-out: never when a stop-after could end
// the scan early (the sequential path stops scanning the moment the
// quota fills, and the selectivity feedback must see the same counts),
// and never below the size threshold.
func parallelEligible(ctx *Ctx, node *plan.Scan) bool {
	if node.StopAfter >= 0 || ctx.Store.NumShards() < 2 {
		return false
	}
	min := ctx.ParallelScanMinRows
	if min == 0 {
		min = DefaultParallelScanMinRows
	}
	return min > 0 && node.Table.RowCount() >= int64(min)
}

func (s *seqScan) openParallel(ctx *Ctx) error {
	sch := s.node.Schema() // resolved once; workers share it read-only
	name := s.node.Table.Name
	n := ctx.Store.NumShards()
	at := ctx.snapTS() // one timestamp for every shard: a consistent cut
	type part struct {
		ids     []storage.RowID
		rows    []Row
		scanned int64
		err     error
	}
	parts := make([]part, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			p := &parts[shard]
			ids, rows, err := ctx.Store.ScanShardRowsAt(name, shard, at)
			if err != nil {
				p.err = err
				return
			}
			for j, row := range rows {
				p.scanned++
				keep, err := rowMatches(s.node.Filter, row, sch)
				if err != nil {
					p.err = err
					return
				}
				if keep {
					p.ids = append(p.ids, ids[j])
					p.rows = append(p.rows, row)
				}
			}
		}(i)
	}
	wg.Wait()
	total := 0
	for i := range parts {
		if parts[i].err != nil {
			return parts[i].err
		}
		s.scanned += parts[i].scanned
		total += len(parts[i].ids)
	}
	// Deterministic merge: ascending row ID across shards reconstructs
	// insertion order exactly, so seeded replays stay bit-identical.
	merged := make([]Row, 0, total)
	pos := make([]int, n)
	for len(merged) < total {
		best := -1
		var bestID storage.RowID
		for i := range parts {
			if pos[i] >= len(parts[i].ids) {
				continue
			}
			if best < 0 || parts[i].ids[pos[i]] < bestID {
				best, bestID = i, parts[i].ids[pos[i]]
			}
		}
		merged = append(merged, parts[best].rows[pos[best]])
		pos[best]++
	}
	s.rows, s.prefiltered = merged, true
	s.out = int64(total)
	ctx.Stats.RowsScanned += int(s.scanned)
	return nil
}

func (s *seqScan) Next(ctx *Ctx) (Row, error) {
	if s.prefiltered {
		if s.pos >= len(s.rows) {
			return nil, nil
		}
		r := s.rows[s.pos]
		s.pos++
		return r, nil
	}
	lazy := s.ids != nil
	for {
		if s.node.StopAfter >= 0 && s.out >= s.node.StopAfter {
			return nil, nil
		}
		var row Row
		if lazy {
			if s.pos >= len(s.ids) {
				return nil, nil
			}
			got, ok := ctx.Store.GetAt(s.node.Table.Name, s.ids[s.pos], ctx.snapTS())
			s.pos++
			if !ok {
				continue
			}
			row = got
		} else {
			if s.pos >= len(s.rows) {
				return nil, nil
			}
			row = s.rows[s.pos]
			s.pos++
		}
		ctx.Stats.RowsScanned++
		s.scanned++
		keep, err := rowMatches(s.node.Filter, row, s.node.Schema())
		if err != nil {
			return nil, err
		}
		if keep {
			s.out++
			return row, nil
		}
	}
}

func (s *seqScan) Close(*Ctx) error {
	// Feed the observed predicate selectivity back to the cost model.
	if s.node.Filter != nil && s.scanned > 0 {
		s.node.Table.ObserveFilter(s.scanned, s.out)
	}
	return nil
}

// rowMatches evaluates a (crowd-free) predicate to a keep/drop decision.
func rowMatches(filter parser.Expr, row Row, schema []plan.Col) (bool, error) {
	if filter == nil {
		return true, nil
	}
	v, err := eval(filter, &evalCtx{schema: schema, row: row})
	if err != nil {
		return false, err
	}
	b, unknown := boolOf(v)
	return !unknown && b, nil
}

// ---------------------------------------------------------------------------
// Filter (with CrowdCompare support for crowd predicates)

type filterOp struct {
	node  *plan.Filter
	input Operator
	crowd bool
	rows  []Row
	pos   int
}

func (f *filterOp) Schema() []plan.Col { return f.input.Schema() }

func (f *filterOp) Open(ctx *Ctx) error {
	if err := f.input.Open(ctx); err != nil {
		return err
	}
	f.rows, f.pos = nil, 0
	if !f.crowd {
		return nil
	}
	// CrowdFilter: drain the input, batch-resolve every CROWDEQUAL pair in
	// one HIT group (CrowdCompare), then evaluate with the warm cache.
	var buffered []Row
	for {
		r, err := f.input.Next(ctx)
		if err != nil {
			return err
		}
		if r == nil {
			break
		}
		buffered = append(buffered, r)
	}
	// Cost-based phase ordering: when the optimizer split off a cheap
	// (crowd-free) phase, prune with it first — rows a machine predicate
	// rejects must never cost a paid comparison. AND semantics make this
	// exact: a row failing Pre fails Cond regardless of crowd verdicts.
	if f.node.Pre != nil {
		kept := buffered[:0]
		for _, r := range buffered {
			v, err := eval(f.node.Pre, &evalCtx{schema: f.Schema(), row: r, exec: ctx})
			if err != nil {
				return err
			}
			if b, unknown := boolOf(v); !unknown && b {
				kept = append(kept, r)
			}
		}
		buffered = kept
	}
	if err := prefetchCrowdEqual(ctx, f.node.Cond, buffered, f.Schema()); err != nil {
		return err
	}
	resolver := cachedEqualResolver(ctx)
	for _, r := range buffered {
		v, err := eval(f.node.Cond, &evalCtx{schema: f.Schema(), row: r, crowdEqual: resolver, exec: ctx})
		if err != nil {
			return err
		}
		if b, unknown := boolOf(v); !unknown && b {
			f.rows = append(f.rows, r)
		}
	}
	return nil
}

func (f *filterOp) Next(ctx *Ctx) (Row, error) {
	if f.crowd {
		if f.pos >= len(f.rows) {
			return nil, nil
		}
		r := f.rows[f.pos]
		f.pos++
		return r, nil
	}
	for {
		r, err := f.input.Next(ctx)
		if err != nil || r == nil {
			return nil, err
		}
		v, err := eval(f.node.Cond, &evalCtx{schema: f.Schema(), row: r, crowdEqual: cachedEqualResolver(ctx), exec: ctx})
		if err != nil {
			return nil, err
		}
		if b, unknown := boolOf(v); !unknown && b {
			return r, nil
		}
	}
}

func (f *filterOp) Close(ctx *Ctx) error { return f.input.Close(ctx) }

// ---------------------------------------------------------------------------
// Project

type projectOp struct {
	node  *plan.Project
	input Operator
}

func (p *projectOp) Schema() []plan.Col { return p.node.Schema() }

func (p *projectOp) Open(ctx *Ctx) error { return p.input.Open(ctx) }

func (p *projectOp) Next(ctx *Ctx) (Row, error) {
	r, err := p.input.Next(ctx)
	if err != nil || r == nil {
		return nil, err
	}
	out := make(Row, len(p.node.Items))
	ectx := &evalCtx{schema: p.input.Schema(), row: r, crowdEqual: cachedEqualResolver(ctx), exec: ctx}
	for i, it := range p.node.Items {
		v, err := eval(it.Expr, ectx)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (p *projectOp) Close(ctx *Ctx) error { return p.input.Close(ctx) }

// ---------------------------------------------------------------------------
// Joins

// nlJoin is the general nested-loop join (inner, cross, left outer) with an
// arbitrary ON condition; the right side is buffered.
type nlJoin struct {
	node  *plan.Join
	left  Operator
	right Operator

	rightRows []Row
	cur       Row
	rpos      int
	matched   bool
}

func (j *nlJoin) Schema() []plan.Col { return j.node.Schema() }

func (j *nlJoin) Open(ctx *Ctx) error {
	if err := j.left.Open(ctx); err != nil {
		return err
	}
	if err := j.right.Open(ctx); err != nil {
		return err
	}
	j.rightRows = nil
	for {
		r, err := j.right.Next(ctx)
		if err != nil {
			return err
		}
		if r == nil {
			break
		}
		j.rightRows = append(j.rightRows, r)
	}
	j.cur, j.rpos, j.matched = nil, 0, false
	return nil
}

func (j *nlJoin) Next(ctx *Ctx) (Row, error) {
	for {
		if j.cur == nil {
			l, err := j.left.Next(ctx)
			if err != nil || l == nil {
				return nil, err
			}
			j.cur, j.rpos, j.matched = l, 0, false
		}
		for j.rpos < len(j.rightRows) {
			r := j.rightRows[j.rpos]
			j.rpos++
			combined := append(append(Row{}, j.cur...), r...)
			ok, err := rowMatches(j.node.On, combined, j.Schema())
			if err != nil {
				return nil, err
			}
			if ok {
				j.matched = true
				return combined, nil
			}
		}
		// Right side exhausted for this left row.
		if j.node.Type == parser.JoinLeft && !j.matched {
			out := append(Row{}, j.cur...)
			for range j.right.Schema() {
				out = append(out, sqltypes.Null())
			}
			j.cur = nil
			return out, nil
		}
		j.cur = nil
	}
}

func (j *nlJoin) Close(ctx *Ctx) error {
	if err := j.left.Close(ctx); err != nil {
		return err
	}
	return j.right.Close(ctx)
}

// hashJoin handles inner equi-joins: it hashes the right input on the join
// key and streams the left.
type hashJoin struct {
	node     *plan.Join
	left     Operator
	right    Operator
	leftKey  parser.Expr
	rightKey parser.Expr
	residual parser.Expr

	table map[string][]Row
	cur   Row
	bkt   []Row
	bpos  int
}

func (j *hashJoin) Schema() []plan.Col { return j.node.Schema() }

func (j *hashJoin) Open(ctx *Ctx) error {
	if err := j.left.Open(ctx); err != nil {
		return err
	}
	if err := j.right.Open(ctx); err != nil {
		return err
	}
	j.table = make(map[string][]Row)
	for {
		r, err := j.right.Next(ctx)
		if err != nil {
			return err
		}
		if r == nil {
			break
		}
		v, err := eval(j.rightKey, &evalCtx{schema: j.right.Schema(), row: r})
		if err != nil {
			return err
		}
		if v.IsUnknown() {
			continue // unknown keys never join
		}
		k := storage.IndexKey(v)
		j.table[k] = append(j.table[k], r)
	}
	j.cur, j.bkt, j.bpos = nil, nil, 0
	return nil
}

func (j *hashJoin) Next(ctx *Ctx) (Row, error) {
	for {
		for j.bpos < len(j.bkt) {
			r := j.bkt[j.bpos]
			j.bpos++
			combined := append(append(Row{}, j.cur...), r...)
			ok, err := rowMatches(j.residual, combined, j.Schema())
			if err != nil {
				return nil, err
			}
			if ok {
				return combined, nil
			}
		}
		l, err := j.left.Next(ctx)
		if err != nil || l == nil {
			return nil, err
		}
		v, err := eval(j.leftKey, &evalCtx{schema: j.left.Schema(), row: l})
		if err != nil {
			return nil, err
		}
		if v.IsUnknown() {
			continue
		}
		j.cur = l
		j.bkt = j.table[storage.IndexKey(v)]
		j.bpos = 0
	}
}

func (j *hashJoin) Close(ctx *Ctx) error {
	if err := j.left.Close(ctx); err != nil {
		return err
	}
	return j.right.Close(ctx)
}

// ---------------------------------------------------------------------------
// Sort (plain and crowd-backed)

type sortOp struct {
	node  *plan.Sort
	input Operator
	rows  []Row
	pos   int
}

func (s *sortOp) Schema() []plan.Col { return s.input.Schema() }

func (s *sortOp) Open(ctx *Ctx) error {
	if err := s.input.Open(ctx); err != nil {
		return err
	}
	s.rows, s.pos = nil, 0
	for {
		r, err := s.input.Next(ctx)
		if err != nil {
			return err
		}
		if r == nil {
			break
		}
		s.rows = append(s.rows, r)
	}
	// Split keys: a CROWDORDER key delegates to the crowd sort; other keys
	// sort conventionally. A crowd key must be the only key.
	for _, k := range s.node.Keys {
		if parser.HasCrowdFunc(k.Expr) {
			if len(s.node.Keys) != 1 {
				return fmt.Errorf("exec: CROWDORDER cannot be combined with other sort keys")
			}
			return crowdOrderSort(ctx, s.rows, s.Schema(), k)
		}
	}
	return s.plainSort(ctx)
}

func (s *sortOp) plainSort(ctx *Ctx) error {
	type keyed struct {
		row  Row
		keys []sqltypes.Value
	}
	ks := make([]keyed, len(s.rows))
	for i, r := range s.rows {
		ks[i] = keyed{row: r, keys: make([]sqltypes.Value, len(s.node.Keys))}
		for ki, k := range s.node.Keys {
			v, err := eval(k.Expr, &evalCtx{schema: s.Schema(), row: r})
			if err != nil {
				return err
			}
			ks[i].keys[ki] = v
		}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		for ki, k := range s.node.Keys {
			c := sqltypes.SortCompare(ks[a].keys[ki], ks[b].keys[ki])
			if k.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	for i := range ks {
		s.rows[i] = ks[i].row
	}
	return nil
}

func (s *sortOp) Next(*Ctx) (Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

func (s *sortOp) Close(ctx *Ctx) error { return s.input.Close(ctx) }

// ---------------------------------------------------------------------------
// Limit / Distinct

type limitOp struct {
	node    *plan.Limit
	input   Operator
	skipped int64
	emitted int64
}

func (l *limitOp) Schema() []plan.Col { return l.input.Schema() }

func (l *limitOp) Open(ctx *Ctx) error {
	l.skipped, l.emitted = 0, 0
	return l.input.Open(ctx)
}

func (l *limitOp) Next(ctx *Ctx) (Row, error) {
	for {
		if l.node.N >= 0 && l.emitted >= l.node.N {
			return nil, nil
		}
		r, err := l.input.Next(ctx)
		if err != nil || r == nil {
			return nil, err
		}
		if l.skipped < l.node.Offset {
			l.skipped++
			continue
		}
		l.emitted++
		return r, nil
	}
}

func (l *limitOp) Close(ctx *Ctx) error { return l.input.Close(ctx) }

type distinctOp struct {
	input Operator
	seen  map[string]bool
}

func (d *distinctOp) Schema() []plan.Col { return d.input.Schema() }

func (d *distinctOp) Open(ctx *Ctx) error {
	d.seen = make(map[string]bool)
	return d.input.Open(ctx)
}

func (d *distinctOp) Next(ctx *Ctx) (Row, error) {
	for {
		r, err := d.input.Next(ctx)
		if err != nil || r == nil {
			return nil, err
		}
		k := storage.IndexKey(r...)
		if !d.seen[k] {
			d.seen[k] = true
			return r, nil
		}
	}
}

func (d *distinctOp) Close(ctx *Ctx) error { return d.input.Close(ctx) }

// ---------------------------------------------------------------------------
// Aggregate

type aggregateOp struct {
	node  *plan.Aggregate
	input Operator
	out   []Row
	pos   int
}

func (a *aggregateOp) Schema() []plan.Col { return a.node.Schema() }

func (a *aggregateOp) Open(ctx *Ctx) error {
	if err := a.input.Open(ctx); err != nil {
		return err
	}
	a.out, a.pos = nil, 0
	groups := make(map[string][]Row)
	var order []string
	for {
		r, err := a.input.Next(ctx)
		if err != nil {
			return err
		}
		if r == nil {
			break
		}
		keyVals := make([]sqltypes.Value, len(a.node.GroupBy))
		for i, g := range a.node.GroupBy {
			v, err := eval(g, &evalCtx{schema: a.input.Schema(), row: r})
			if err != nil {
				return err
			}
			keyVals[i] = v
		}
		k := storage.IndexKey(keyVals...)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	// A global aggregate over zero rows still produces one row.
	if len(a.node.GroupBy) == 0 && len(order) == 0 {
		order = append(order, "")
		groups[""] = nil
	}
	for _, k := range order {
		rows := groups[k]
		if a.node.Having != nil {
			hv, err := evalAggExpr(a.node.Having, rows, a.input.Schema())
			if err != nil {
				return err
			}
			if b, unknown := boolOf(hv); unknown || !b {
				continue
			}
		}
		out := make(Row, len(a.node.Items))
		for i, it := range a.node.Items {
			v, err := evalAggExpr(it.Expr, rows, a.input.Schema())
			if err != nil {
				return err
			}
			out[i] = v
		}
		a.out = append(a.out, out)
	}
	return nil
}

func (a *aggregateOp) Next(*Ctx) (Row, error) {
	if a.pos >= len(a.out) {
		return nil, nil
	}
	r := a.out[a.pos]
	a.pos++
	return r, nil
}

func (a *aggregateOp) Close(ctx *Ctx) error { return a.input.Close(ctx) }

// evalAggExpr evaluates an expression over a group: aggregates compute over
// all rows, everything else over the group's first row (legal because the
// planner enforced grouping).
func evalAggExpr(e parser.Expr, rows []Row, schema []plan.Col) (sqltypes.Value, error) {
	if fc, ok := e.(*parser.FuncCall); ok && fc.IsAggregate() {
		return computeAggregate(fc, rows, schema)
	}
	switch x := e.(type) {
	case *parser.BinaryExpr:
		if exprHasAggregate(e) {
			l, err := evalAggExpr(x.L, rows, schema)
			if err != nil {
				return sqltypes.Value{}, err
			}
			r, err := evalAggExpr(x.R, rows, schema)
			if err != nil {
				return sqltypes.Value{}, err
			}
			switch x.Op {
			case "AND", "OR":
				return evalLogic(x.Op, l, r)
			case "=", "<>", "<", "<=", ">", ">=":
				return evalBinary(&parser.BinaryExpr{Op: x.Op,
					L: &parser.Literal{Val: l}, R: &parser.Literal{Val: r}}, &evalCtx{})
			default:
				return evalArith(x.Op, l, r)
			}
		}
	case *parser.UnaryExpr:
		if exprHasAggregate(e) {
			v, err := evalAggExpr(x.E, rows, schema)
			if err != nil {
				return sqltypes.Value{}, err
			}
			return eval(&parser.UnaryExpr{Op: x.Op, E: &parser.Literal{Val: v}}, &evalCtx{})
		}
	}
	if len(rows) == 0 {
		return sqltypes.Null(), nil
	}
	return eval(e, &evalCtx{schema: schema, row: rows[0]})
}

func exprHasAggregate(e parser.Expr) bool {
	found := false
	parser.WalkExprs(e, func(x parser.Expr) {
		if fc, ok := x.(*parser.FuncCall); ok && fc.IsAggregate() {
			found = true
		}
	})
	return found
}

func computeAggregate(fc *parser.FuncCall, rows []Row, schema []plan.Col) (sqltypes.Value, error) {
	if fc.Star { // COUNT(*)
		return sqltypes.NewInt(int64(len(rows))), nil
	}
	var vals []sqltypes.Value
	for _, r := range rows {
		v, err := eval(fc.Args[0], &evalCtx{schema: schema, row: r})
		if err != nil {
			return sqltypes.Value{}, err
		}
		if !v.IsUnknown() { // SQL aggregates skip NULLs (and CNULLs)
			vals = append(vals, v)
		}
	}
	switch fc.Name {
	case "COUNT":
		return sqltypes.NewInt(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return sqltypes.Null(), nil
		}
		sum := 0.0
		allInt := true
		for _, v := range vals {
			f, err := v.Coerce(sqltypes.TypeFloat)
			if err != nil {
				return sqltypes.Value{}, fmt.Errorf("exec: %s over non-numeric value %v", fc.Name, v)
			}
			sum += f.Float()
			if v.Kind() != sqltypes.KindInt {
				allInt = false
			}
		}
		if fc.Name == "AVG" {
			return sqltypes.NewFloat(sum / float64(len(vals))), nil
		}
		if allInt {
			return sqltypes.NewInt(int64(sum)), nil
		}
		return sqltypes.NewFloat(sum), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return sqltypes.Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, ok := sqltypes.Compare(v, best)
			if !ok {
				return sqltypes.Value{}, fmt.Errorf("exec: %s over incomparable values", fc.Name)
			}
			if (fc.Name == "MIN" && c < 0) || (fc.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return sqltypes.Value{}, fmt.Errorf("exec: unknown aggregate %s", fc.Name)
}
