package exec

// Batch plumbing for the vectorized streaming executor: the Batch unit,
// the configurable batch size, the legacy row-at-a-time adapter, and the
// small helpers operators share to emit batches without re-allocating.
// The Operator contract itself (ownership, reuse, EOF semantics) is
// documented in the package comment in operators.go.

import "crowddb/internal/plan"

// DefaultBatchSize is the number of rows an operator aims to hand over
// per NextBatch call when Ctx.BatchSize is unset. Large enough to
// amortize per-call overhead across the pipeline, small enough that a
// first batch never resembles materialization.
const DefaultBatchSize = 256

// Batch is one unit of row flow between operators. The Rows slice (the
// header) is owned by the producing operator and reused across NextBatch
// calls; the Row values inside are owned by the consumer once returned
// and stay valid after the next call.
type Batch struct {
	Rows []Row
}

// Len reports the number of rows in the batch (nil-safe).
func (b *Batch) Len() int {
	if b == nil {
		return 0
	}
	return len(b.Rows)
}

// reset empties the batch for refilling, keeping the backing capacity.
func (b *Batch) reset() { b.Rows = b.Rows[:0] }

// batchSize resolves the effective rows-per-batch for this statement.
func (c *Ctx) batchSize() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return DefaultBatchSize
}

// EarlyStopper is implemented by operators that can cut row production
// short once a downstream consumer (e.g. LIMIT) has all the rows it
// needs. StopEarly must be safe to call at any point between Open and
// Close, from the query goroutine; after it, NextBatch may keep
// returning already-produced rows but should stop doing new work.
type EarlyStopper interface {
	StopEarly()
}

// stopEarly propagates an early-stop signal to op if it supports one.
func stopEarly(op Operator) {
	if s, ok := op.(EarlyStopper); ok {
		s.StopEarly()
	}
}

// RowOperator is the legacy row-at-a-time iterator contract the batch
// redesign replaced. AdaptRowOperator bridges an unconverted
// implementation into the batch pipeline during migrations; every
// in-tree operator is batch-native.
type RowOperator interface {
	Schema() []plan.Col
	Open(ctx *Ctx) error
	Next(ctx *Ctx) (Row, error)
	Close(ctx *Ctx) error
}

// AdaptRowOperator wraps a row-at-a-time operator into the batch
// Operator contract: NextBatch accumulates up to one batch of rows from
// successive Next calls. EOF ((nil, nil) from Next) maps to batch EOF.
func AdaptRowOperator(op RowOperator) Operator { return &rowAdapter{op: op} }

type rowAdapter struct {
	op  RowOperator
	buf Batch
}

func (a *rowAdapter) Schema() []plan.Col { return a.op.Schema() }

func (a *rowAdapter) Open(ctx *Ctx) error { return a.op.Open(ctx) }

func (a *rowAdapter) NextBatch(ctx *Ctx) (*Batch, error) {
	a.buf.reset()
	limit := ctx.batchSize()
	for len(a.buf.Rows) < limit {
		r, err := a.op.Next(ctx)
		if err != nil {
			return nil, err
		}
		if r == nil {
			break
		}
		a.buf.Rows = append(a.buf.Rows, r)
	}
	if len(a.buf.Rows) == 0 {
		return nil, nil
	}
	return &a.buf, nil
}

func (a *rowAdapter) Close(ctx *Ctx) error { return a.op.Close(ctx) }

// StopEarly forwards to the wrapped operator when it supports it.
func (a *rowAdapter) StopEarly() {
	if s, ok := a.op.(EarlyStopper); ok {
		s.StopEarly()
	}
}

// batchEmitter serves batches out of a materialized row slice as
// zero-copy views; the helper blocking operators (sort, aggregate, crowd
// scans) use to stream their buffered output.
type batchEmitter struct {
	rows []Row
	pos  int
	buf  Batch
}

func (e *batchEmitter) next(ctx *Ctx) *Batch {
	if e.pos >= len(e.rows) {
		return nil
	}
	n := min(ctx.batchSize(), len(e.rows)-e.pos)
	e.buf.Rows = e.rows[e.pos : e.pos+n]
	e.pos += n
	return &e.buf
}

// drainInput pulls the input operator to EOF, appending every row to
// dst — the shared materialization step of blocking operators. The batch
// headers are copied (the producer reuses them); the Row values are not.
func drainInput(ctx *Ctx, in Operator, dst []Row) ([]Row, error) {
	for {
		b, err := in.NextBatch(ctx)
		if err != nil {
			return dst, err
		}
		if b.Len() == 0 {
			return dst, nil
		}
		dst = append(dst, b.Rows...)
	}
}
