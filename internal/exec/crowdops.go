package exec

import (
	"context"
	"fmt"
	"strings"

	"crowddb/internal/catalog"
	"crowddb/internal/obs"
	"crowddb/internal/parser"
	"crowddb/internal/plan"
	"crowddb/internal/quality"
	"crowddb/internal/sqltypes"
	"crowddb/internal/storage"
	"crowddb/internal/taskmgr"
)

// Stats counts the executor's work; the benchmark harness reads it.
type Stats struct {
	RowsScanned int
	// ProbeRequests counts tuples whose CNULLs were sent to the crowd.
	ProbeRequests int
	// NewTupleRequests counts solicited candidate tuples.
	NewTupleRequests int
	// Comparisons counts crowd-answered comparisons this query paid for
	// (cache misses it led).
	Comparisons int
	// CacheHits counts comparisons answered from the memo.
	CacheHits int
	// SharedFlights counts comparisons resolved by adopting another
	// session's in-flight crowd question (singleflight) — answered without
	// paying the crowd again.
	SharedFlights int
	// BudgetDenied counts comparisons skipped because the budget ran out.
	BudgetDenied int
}

// Add returns the field-wise sum of two stats snapshots. Every
// aggregation site (session settlement, job resources, subquery merge)
// goes through it so a new counter cannot silently drop from one.
func (s Stats) Add(o Stats) Stats {
	s.RowsScanned += o.RowsScanned
	s.ProbeRequests += o.ProbeRequests
	s.NewTupleRequests += o.NewTupleRequests
	s.Comparisons += o.Comparisons
	s.CacheHits += o.CacheHits
	s.SharedFlights += o.SharedFlights
	s.BudgetDenied += o.BudgetDenied
	return s
}

// Ctx is the per-query execution context.
type Ctx struct {
	Store *storage.Store
	Cat   *catalog.Catalog
	// Tasks is the Task Manager; nil runs the query against stored data
	// only (crowd operators degrade to their relational cores).
	Tasks *taskmgr.Manager
	// Cache memoizes crowd comparisons across queries.
	Cache *CompareCache
	// CompareBudget caps crowd comparisons per query (0 = unlimited,
	// negative = already exhausted by an enclosing query); beyond it,
	// CROWDORDER falls back to a deterministic label order.
	CompareBudget int
	// RunSubquery executes an uncorrelated IN-subquery and returns its
	// single column's values; the engine installs it (nil = subqueries
	// unsupported in this context).
	RunSubquery func(sel *parser.Select) ([]sqltypes.Value, error)
	// ParallelScanMinRows overrides the table-size threshold for
	// fanning a sequential scan out across shards (0 = the default,
	// DefaultParallelScanMinRows; negative = never parallelize).
	ParallelScanMinRows int
	// SnapshotTS pins every stored-data read (scans, index probes, point
	// gets) of this statement to one MVCC snapshot: the statement sees
	// exactly the rows committed at that timestamp, however long it runs
	// and whatever commits meanwhile. 0 means unpinned — each read sees
	// the latest committed data (legacy behavior for hand-built
	// contexts). Crowd write-backs during the statement commit at later
	// timestamps and are therefore invisible to the statement itself.
	SnapshotTS int64
	// Context carries the statement's cancellation signal end-to-end:
	// operators check it between rows, and the crowd operators stop
	// posting new HIT groups and unwind their crowd waits when it fires
	// (nil = never cancelled). Queued submissions are withdrawn; groups
	// already live on the platform are left to settle.
	Context context.Context
	// Progress, when set, receives a stats snapshot from the executing
	// goroutine each time a crowd operator commits to paid work (probe,
	// solicitation, or comparison batches) — the jobs API reports "cents
	// spent so far" from it without racing on Stats.
	Progress func(Stats)
	Stats    Stats

	// Trace, when set, records this statement's execution as a span
	// tree: Build wraps every operator in an instrumented shell, and the
	// crowd operators open a span per HIT-group interaction. Nil leaves
	// the raw operators in place — a traced run and an untraced run make
	// bit-identical crowd decisions.
	Trace *obs.Trace
	// Span is the parent new spans attach under; the instrumented
	// operator shells push/pop it around delegated calls so crowd spans
	// nest under the operator that caused them.
	Span *obs.Span
	// OpStats, when non-nil, collects per-plan-node actuals (rows out,
	// wall time, crowd work) for EXPLAIN ANALYZE. Counts are inclusive
	// of child operators.
	OpStats map[plan.Node]*OpStats

	// BatchSize is the rows-per-batch target of the vectorized pipeline
	// (0 = DefaultBatchSize). Batch size changes emission granularity
	// only, never results or crowd scheduling.
	BatchSize int
	// OpMetrics, when non-nil, receives each instrumented operator's
	// final accounting at Close (rows/sec, peak buffered rows) — the
	// engine aggregates it into /metrics per operator type.
	OpMetrics OpMetricsSink

	subqMemo map[*parser.InExpr][]sqltypes.Value
}

// snapTS is the MVCC read timestamp for stored-data access: the pinned
// snapshot when set, the store's current watermark otherwise.
func (c *Ctx) snapTS() int64 {
	if c.SnapshotTS != 0 {
		return c.SnapshotTS
	}
	return c.Store.VisibleTS()
}

// context returns the statement context (Background when unset).
func (c *Ctx) context() context.Context {
	if c.Context == nil {
		return context.Background()
	}
	return c.Context
}

// Canceled reports the statement's cancellation error, if any.
func (c *Ctx) Canceled() error {
	if c.Context == nil {
		return nil
	}
	return c.Context.Err()
}

// noteProgress publishes a stats snapshot to the Progress observer.
func (c *Ctx) noteProgress() {
	if c.Progress != nil {
		c.Progress(c.Stats)
	}
}

// subqueryValues resolves an IN-subquery once per query (uncorrelated
// subqueries are loop-invariant) and memoizes the value list.
func (c *Ctx) subqueryValues(e *parser.InExpr) ([]sqltypes.Value, error) {
	if c.RunSubquery == nil {
		return nil, fmt.Errorf("exec: IN (SELECT ...) is not supported in this context")
	}
	if vals, ok := c.subqMemo[e]; ok {
		return vals, nil
	}
	vals, err := c.RunSubquery(e.Sub)
	if err != nil {
		return nil, err
	}
	if c.subqMemo == nil {
		c.subqMemo = make(map[*parser.InExpr][]sqltypes.Value)
	}
	c.subqMemo[e] = vals
	return vals, nil
}

func (c *Ctx) budgetOK() bool {
	if c.CompareBudget < 0 {
		return false
	}
	return c.CompareBudget == 0 || c.Stats.Comparisons < c.CompareBudget
}

// ---------------------------------------------------------------------------
// CrowdCompare: CROWDEQUAL resolution

// cachedEqualResolver returns the evaluator hook for CROWDEQUAL: cache
// first, then a single-pair crowd task (CrowdFilter prefetches batches, so
// this path is the cold fallback, e.g. CROWDEQUAL in a SELECT list). The
// cache claim collapses identical questions from concurrent sessions into
// one crowd task.
func cachedEqualResolver(ctx *Ctx) crowdEqualFn {
	if ctx.Cache == nil {
		return nil
	}
	return func(question, l, r string) (sqltypes.Value, error) {
		// A follower whose leader abandons retries and, at the latest on
		// the second pass, leads (or budget-denies) itself.
		for attempt := 0; attempt < 3; attempt++ {
			if err := ctx.Canceled(); err != nil {
				return sqltypes.Value{}, err
			}
			claim := ctx.Cache.ClaimEqual(question, l, r)
			if claim.Hit {
				ctx.Stats.CacheHits++
				return sqltypes.NewBool(claim.Value == "yes"), nil
			}
			if !claim.Leader {
				fsp := ctx.startCrowdSpan("crowd:compare_equal")
				fsp.SetAttr("role", "follower")
				if v, ok := claim.WaitCtx(ctx.context()); ok {
					ctx.Stats.SharedFlights++
					fsp.SetAttr("adopted", "true")
					fsp.End()
					return sqltypes.NewBool(v == "yes"), nil
				}
				fsp.SetAttr("adopted", "false")
				fsp.End()
				continue
			}
			if ctx.Tasks == nil || !ctx.budgetOK() {
				claim.Abandon()
				if ctx.Tasks != nil {
					ctx.Stats.BudgetDenied++
				}
				return sqltypes.Null(), nil
			}
			sp := ctx.startCrowdSpan("crowd:compare_equal")
			sp.SetAttr("role", "leader")
			sp.SetInt("pairs", 1)
			call, err := ctx.Tasks.CompareEqualAsync(question, []taskmgr.ComparePair{{Left: l, Right: r}})
			if err != nil {
				sp.SetAttr("error", err.Error())
				sp.End()
				claim.Abandon()
				return sqltypes.Value{}, err
			}
			ctx.Stats.Comparisons++
			ctx.noteProgress()
			ds, err := call.WaitCtx(ctx.context())
			if err != nil {
				if call.Abort() {
					// Withdrawn before it reached the platform: nothing
					// was committed, so nothing is charged.
					ctx.Stats.Comparisons--
				}
				sp.SetAttr("error", err.Error())
				sp.End()
				claim.Abandon()
				return sqltypes.Value{}, err
			}
			d := ds[0]
			finishGroupSpan(sp, call.Telemetry(), d.Total, quorumCount(ds))
			if d.Total == 0 {
				claim.Abandon()
				return sqltypes.Null(), nil
			}
			same := quality.Normalize(d.Value) == "yes"
			ctx.Cache.PutEqual(question, l, r, same) // resolves the claim
			return sqltypes.NewBool(same), nil
		}
		return sqltypes.Null(), nil
	}
}

// crowdEqualCall is one CROWDEQUAL occurrence in an expression.
type crowdEqualCall struct {
	question parser.Expr // nil = default question
	l, r     parser.Expr
}

func collectCrowdEqualCalls(e parser.Expr) []crowdEqualCall {
	var calls []crowdEqualCall
	parser.WalkExprs(e, func(x parser.Expr) {
		switch n := x.(type) {
		case *parser.BinaryExpr:
			if n.Op == "~=" {
				calls = append(calls, crowdEqualCall{l: n.L, r: n.R})
			}
		case *parser.FuncCall:
			if n.Name == "CROWDEQUAL" {
				c := crowdEqualCall{l: n.Args[0], r: n.Args[1]}
				if len(n.Args) == 3 {
					c.question = n.Args[2]
				}
				calls = append(calls, c)
			}
		}
	})
	return calls
}

// pendingPair is one deduplicated CROWDEQUAL comparison this query leads.
type pendingPair struct {
	question string
	l, r     string
	key      string
}

// eqDispatch is one posted CROWDEQUAL HIT group awaiting collection.
type eqDispatch struct {
	question string
	batch    []pendingPair
	call     *taskmgr.CompareCall
	span     *obs.Span
}

// equalStream is the CrowdFilter's quorum-streaming state machine. It
// batch-resolves every CROWDEQUAL pair the condition needs across the
// buffered rows — the CrowdCompare batching the paper's operators do —
// but instead of blocking until all groups settle, it tracks which pairs
// each row depends on and emits the maximal ready prefix of rows after
// each group's quorum lands. Pairs another session is already asking are
// not re-posted: their flights are adopted after this query's own groups
// resolve (singleflight), in a final phase before the stalled tail rows
// evaluate.
//
// The crowd-facing call sequence (claims in row-major order, all groups
// submitted before any is collected, collections in submission order,
// leader claims abandoned before follower adoption) is EXACTLY the
// blocking prefetch's — only row emission timing differs, which keeps
// seeded replays bit-identical. Rows are evaluated strictly in input
// order; evaluating a resolved row touches only the in-memory cache, so
// interleaving evaluations between collections is scheduling-invisible.
type equalStream struct {
	cond   parser.Expr
	schema []plan.Col
	rows   []Row
	// rowKeys[i] lists the pair keys row i needs that were unresolved at
	// claim time; the row is ready once all are in resolved (or after
	// finalization, when eval-time retries handle the leftovers).
	rowKeys    [][]string
	resolved   map[string]bool
	dispatched []eqDispatch
	collected  int
	leaders    []Claim
	followers  []Claim
	released   bool
	finalized  bool
	nextRow    int
	buf        Batch
}

// newEqualStream claims and dispatches every needed comparison (the
// submit-all-before-collect half of the CrowdCompare batching); quorum
// collection happens lazily in nextBatch.
func newEqualStream(ctx *Ctx, cond parser.Expr, rows []Row, schema []plan.Col) (*equalStream, error) {
	es := &equalStream{cond: cond, schema: schema, rows: rows, resolved: map[string]bool{}}
	if ctx.Tasks == nil || ctx.Cache == nil {
		es.finalized = true
		return es, nil
	}
	calls := collectCrowdEqualCalls(cond)
	if len(calls) == 0 {
		es.finalized = true
		return es, nil
	}
	es.rowKeys = make([][]string, len(rows))
	seen := map[string]bool{}
	var todo []pendingPair
	for i, row := range rows {
		ectx := &evalCtx{schema: schema, row: row}
		for _, call := range calls {
			lv, err := eval(call.l, ectx)
			if err != nil {
				es.abandonLeaders()
				return nil, err
			}
			rv, err := eval(call.r, ectx)
			if err != nil {
				es.abandonLeaders()
				return nil, err
			}
			if lv.IsUnknown() || rv.IsUnknown() || sqltypes.Equal(lv, rv) {
				continue
			}
			question := ""
			if call.question != nil {
				qv, err := eval(call.question, ectx)
				if err != nil {
					es.abandonLeaders()
					return nil, err
				}
				question = qv.String()
			}
			l, r := lv.String(), rv.String()
			k := pairKey(question, l, r)
			if seen[k] {
				if !es.resolved[k] {
					es.rowKeys[i] = append(es.rowKeys[i], k)
				}
				continue
			}
			seen[k] = true
			claim := ctx.Cache.ClaimEqual(question, l, r)
			if claim.Hit {
				ctx.Stats.CacheHits++
				es.resolved[k] = true
				continue
			}
			if !claim.Leader {
				// Another session's flight: adopted in the final phase.
				es.followers = append(es.followers, claim)
				es.rowKeys[i] = append(es.rowKeys[i], k)
				continue
			}
			if !ctx.budgetOK() {
				claim.Abandon()
				ctx.Stats.BudgetDenied++
				// Denied pairs evaluate deterministically (CNULL) with no
				// crowd interaction: the row need not wait for them.
				es.resolved[k] = true
				continue
			}
			es.leaders = append(es.leaders, claim)
			todo = append(todo, pendingPair{question: question, l: l, r: r, key: k})
			ctx.Stats.Comparisons++
			es.rowKeys[i] = append(es.rowKeys[i], k)
		}
	}
	// Group by question (HIT groups share one question text), then submit
	// every group before collecting any: big single-question batches are
	// split so several groups overlap on the platform (async pipelining).
	byQ := map[string][]pendingPair{}
	var qOrder []string
	for _, p := range todo {
		if _, ok := byQ[p.question]; !ok {
			qOrder = append(qOrder, p.question)
		}
		byQ[p.question] = append(byQ[p.question], p)
	}
	// Pairs charged at claim time but never submitted (cancellation or a
	// dispatch error before their batch went out) are refunded on every
	// early return: only work that reached the scheduler is committed.
	undispatched := len(todo)
	ctx.noteProgress()
	for _, q := range qOrder {
		// Each question's batch is split into up to one window of groups;
		// the scheduler queues whatever exceeds the global in-flight cap.
		for _, batch := range chunkSlice(byQ[q], asyncWindow(ctx)) {
			if err := ctx.Canceled(); err != nil {
				ctx.Stats.Comparisons -= undispatched
				es.drainFrom(ctx, 0)
				es.collected = len(es.dispatched)
				es.abandonLeaders()
				return nil, err
			}
			pairs := make([]taskmgr.ComparePair, len(batch))
			for i, p := range batch {
				pairs[i] = taskmgr.ComparePair{Left: p.l, Right: p.r}
			}
			sp := ctx.startCrowdSpan("crowd:compare_equal")
			sp.SetAttr("role", "leader")
			sp.SetInt("pairs", int64(len(batch)))
			call, err := ctx.Tasks.CompareEqualAsync(q, pairs)
			if err != nil {
				sp.SetAttr("error", err.Error())
				sp.End()
				ctx.Stats.Comparisons -= undispatched
				es.drainFrom(ctx, 0)
				es.collected = len(es.dispatched)
				es.abandonLeaders()
				return nil, err
			}
			undispatched -= len(batch)
			es.dispatched = append(es.dispatched, eqDispatch{question: q, batch: batch, call: call, span: sp})
		}
	}
	return es, nil
}

// nextBatch emits the next batch of passing rows, settling just enough
// crowd work to unblock the row at the front: rows whose pairs all have
// verdicts evaluate and stream out while later groups are still open on
// the platform. Evaluation is strictly in input order (the streamed
// output is a prefix-stable reordering of nothing).
func (es *equalStream) nextBatch(ctx *Ctx) (*Batch, error) {
	limit := ctx.batchSize()
	for {
		es.buf.reset()
		for es.nextRow < len(es.rows) && len(es.buf.Rows) < limit && es.rowReady(es.nextRow) {
			row := es.rows[es.nextRow]
			es.nextRow++
			v, err := eval(es.cond, &evalCtx{schema: es.schema, row: row, crowdEqual: cachedEqualResolver(ctx), exec: ctx})
			if err != nil {
				return nil, err
			}
			if b, unknown := boolOf(v); !unknown && b {
				es.buf.Rows = append(es.buf.Rows, row)
			}
		}
		if len(es.buf.Rows) > 0 {
			return &es.buf, nil
		}
		if es.nextRow >= len(es.rows) {
			return nil, nil
		}
		// The front row is stalled on an open pair: settle more crowd work.
		if es.collected < len(es.dispatched) {
			if err := es.collectNext(ctx); err != nil {
				return nil, err
			}
			continue
		}
		if err := es.finish(ctx); err != nil {
			return nil, err
		}
	}
}

// rowReady reports whether every pair row i depends on has settled.
func (es *equalStream) rowReady(i int) bool {
	if es.finalized {
		return true
	}
	for _, k := range es.rowKeys[i] {
		if !es.resolved[k] {
			return false
		}
	}
	return true
}

// collectNext waits out the oldest open HIT group and memoizes its
// quorum verdicts (which resolves this session's claims for follower
// sessions and marks the pairs' dependent rows ready).
func (es *equalStream) collectNext(ctx *Ctx) error {
	c := es.dispatched[es.collected]
	ds, err := c.call.WaitCtx(ctx.context())
	if err != nil {
		c.span.SetAttr("error", err.Error())
		es.drainFrom(ctx, es.collected)
		es.collected = len(es.dispatched)
		es.abandonLeaders()
		es.finalized = true
		return err
	}
	es.collected++
	finishGroupSpan(c.span, c.call.Telemetry(), answersTotal(ds), quorumCount(ds))
	for i, d := range ds {
		if d.Total == 0 {
			// No quorum: the pair stays open and its rows stall to the
			// final phase, where eval retries it (a fresh single-pair
			// group) exactly as the blocking executor did.
			continue
		}
		ctx.Cache.PutEqual(c.question, c.batch[i].l, c.batch[i].r, quality.Normalize(d.Value) == "yes")
		es.resolved[c.batch[i].key] = true
	}
	return nil
}

// finish releases unresolved leader claims and adopts follower flights,
// after which every row is ready: the tail evaluates with eval-time
// retries for pairs that never got a verdict.
func (es *equalStream) finish(ctx *Ctx) error {
	// Release leader claims whose groups yielded no quorum (their answers
	// were never memoized) BEFORE waiting on foreign flights: a session
	// symmetric to this one may be blocked on exactly those claims.
	es.abandonLeaders()
	// Adopt the answers other sessions are sourcing. This must come after
	// every own claim resolved: two sessions following each other's pairs
	// before fulfilling their own would deadlock.
	adopted := 0
	if len(es.followers) > 0 {
		asp := ctx.startCrowdSpan("crowd:adopt_followers")
		asp.SetInt("flights", int64(len(es.followers)))
		defer func() {
			asp.SetInt("adopted", int64(adopted))
			asp.End()
		}()
	}
	for _, cl := range es.followers {
		if err := ctx.Canceled(); err != nil {
			es.finalized = true
			return err
		}
		if _, ok := cl.WaitCtx(ctx.context()); ok {
			ctx.Stats.SharedFlights++
			adopted++
		}
		// ok=false: the leader abandoned (error or no quorum) or this
		// query was cancelled; the pair resolves — or stays unknown — at
		// eval time.
	}
	es.followers = nil
	es.finalized = true
	return nil
}

// abandonLeaders releases every leader claim this stream still holds.
// Memoizing an answer resolved a claim already; abandoning is a no-op
// for those and unblocks follower sessions for the rest (errors, no
// quorum). Idempotent.
func (es *equalStream) abandonLeaders() {
	if es.released {
		return
	}
	es.released = true
	for _, cl := range es.leaders {
		cl.Abandon()
	}
}

// drainFrom waits out the open groups from index k on. An error abandons
// their results, but the groups are already live: wait them out so they
// don't keep occupying the scheduler's window after this query unwinds.
// A cancelled query must not block on crowd waits: queued submissions
// are withdrawn (and their charge refunded — they never reached the
// platform) and posted groups left for the next driver to settle.
func (es *equalStream) drainFrom(ctx *Ctx, k int) {
	for _, c := range es.dispatched[k:] {
		c.span.SetAttr("drained", "true")
		c.span.End()
		if ctx.Canceled() != nil {
			if c.call.Abort() {
				ctx.Stats.Comparisons -= len(c.batch)
			}
			continue
		}
		c.call.Wait() //nolint:errcheck // draining after a prior error
	}
}

// close settles the stream's outstanding crowd state when the query ends
// before the stream drained (error, cancellation, early stop).
func (es *equalStream) close(ctx *Ctx) {
	if es.collected < len(es.dispatched) {
		es.drainFrom(ctx, es.collected)
		es.collected = len(es.dispatched)
	}
	es.abandonLeaders()
}

// asyncWindow is the Task Manager's in-flight window: how many HIT groups
// the pipelined operators should aim to keep live at once.
func asyncWindow(ctx *Ctx) int {
	if ctx.Tasks == nil {
		return 1
	}
	if w := ctx.Tasks.Config().MaxInFlight; w > 0 {
		return w
	}
	return 1
}

// chunkSlice splits items into at most n contiguous, near-equal chunks.
func chunkSlice[T any](items []T, n int) [][]T {
	if len(items) == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	size := (len(items) + n - 1) / n
	var out [][]T
	for lo := 0; lo < len(items); lo += size {
		out = append(out, items[lo:min(lo+size, len(items))])
	}
	return out
}

// ---------------------------------------------------------------------------
// CrowdCompare: CROWDORDER sorting

// newCrowdSorter builds the incremental CROWDORDER quicksort over rows:
// most-preferred first, one pivot-comparison HIT group per open segment
// per round, results memoized in the compare cache. The caller drives it
// with step() (one breadth-first round) and reads the settled prefix
// between rounds, or run()s it to completion.
func newCrowdSorter(ctx *Ctx, rows []Row, schema []plan.Col, key parser.OrderItem) (*crowdSorter, error) {
	fc, ok := key.Expr.(*parser.FuncCall)
	if !ok || fc.Name != "CROWDORDER" {
		return nil, fmt.Errorf("exec: unsupported crowd sort key %s", key.Expr)
	}
	question := "Which of the two items ranks higher?"
	if len(fc.Args) == 2 {
		q, ok := fc.Args[1].(*parser.Literal)
		if !ok {
			return nil, fmt.Errorf("exec: CROWDORDER question must be a string literal")
		}
		question = q.Val.Str()
	}
	// Render each row's label (the first CROWDORDER argument). Labels that
	// fail to resolve (e.g. the paper's free variable `p`) fall back to the
	// row's first column rendering.
	labels := make([]string, len(rows))
	for i, r := range rows {
		v, err := eval(fc.Args[0], &evalCtx{schema: schema, row: r})
		if err != nil || v.IsUnknown() {
			labels[i] = rows[i][0].String()
		} else {
			labels[i] = v.String()
		}
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	s := &crowdSorter{ctx: ctx, question: question, labels: labels, rows: rows, idx: idx}
	if len(idx) > 1 {
		s.frontier = []segRange{{0, len(idx)}}
	}
	return s, nil
}

// segRange is one open quicksort segment: idx[lo:hi] still needs
// partitioning. The frontier holds open segments in ascending position
// order; everything before frontier[0].lo is in final sorted position.
type segRange struct{ lo, hi int }

type crowdSorter struct {
	ctx      *Ctx
	question string
	labels   []string
	rows     []Row
	idx      []int // permutation under construction: idx[i] = source row of sorted position i
	frontier []segRange
}

// done reports whether the permutation is fully sorted.
func (s *crowdSorter) done() bool { return len(s.frontier) == 0 }

// settled is the length of the finalized prefix of idx: positions before
// the first open segment can never change again (partitioning only
// permutes within a segment), so their rows are safe to emit while the
// rest of the sort is still waiting on the crowd.
func (s *crowdSorter) settled() int {
	if len(s.frontier) == 0 {
		return len(s.idx)
	}
	return s.frontier[0].lo
}

// run drives the sort to completion (the blocking DESC path).
func (s *crowdSorter) run() error {
	for !s.done() {
		if err := s.step(); err != nil {
			return err
		}
	}
	return nil
}

// permuted returns the rows in sorted order (valid once done).
func (s *crowdSorter) permuted() []Row {
	sorted := make([]Row, len(s.rows))
	for i, j := range s.idx {
		sorted[i] = s.rows[j]
	}
	return sorted
}

// step runs one breadth-first quicksort round: it batches one
// pivot-comparison HIT group per open segment and submits them all
// before collecting any, so sibling partitions' crowd waits overlap
// (log n rounds, each a window of concurrent groups on the platform).
// Pairs another session is already asking are adopted from its flight
// instead of re-posted (singleflight); their verdicts are awaited after
// this round's own groups resolve and before any segment partitions.
func (s *crowdSorter) step() error {
	type segCall struct {
		seg   segRange
		pivot int
		pairs []taskmgr.ComparePair
		call  *taskmgr.CompareCall
		span  *obs.Span
	}
	var round []segCall
	var leaderClaims, followers []Claim
	// Abandon any leader claim whose answer was not memoized (post
	// error or no quorum) so follower sessions never hang; memoized
	// pairs make this a no-op.
	releaseRound := func() {
		for _, cl := range leaderClaims {
			cl.Abandon()
		}
	}
	drainFrom := func(k int) {
		for _, sc := range round[k:] {
			if sc.call == nil {
				continue
			}
			sc.span.SetAttr("drained", "true")
			sc.span.End()
			if s.ctx.Canceled() != nil {
				if sc.call.Abort() {
					// Withdrawn before reaching the platform: refund.
					s.ctx.Stats.Comparisons -= len(sc.pairs)
				}
				continue
			}
			sc.call.Wait() //nolint:errcheck // draining after a prior error
		}
	}
	// roundSeen dedups label pairs across sibling segments: with
	// repeated labels two segments can need the same comparison in one
	// round, and the cache is only written back at collection time.
	roundSeen := map[string]bool{}
	for _, sr := range s.frontier {
		seg := s.idx[sr.lo:sr.hi]
		// Cancellation stops the sort before another group is posted:
		// claims this round already took are released so follower
		// sessions never hang on a cancelled leader.
		if err := s.ctx.Canceled(); err != nil {
			drainFrom(0)
			releaseRound()
			return err
		}
		pivot := seg[len(seg)/2]
		pairs, segLeaders, segFollowers := s.pivotPairs(seg, pivot, roundSeen)
		leaderClaims = append(leaderClaims, segLeaders...)
		followers = append(followers, segFollowers...)
		sc := segCall{seg: sr, pivot: pivot, pairs: pairs}
		if len(sc.pairs) > 0 {
			s.ctx.noteProgress()
			sp := s.ctx.startCrowdSpan("crowd:compare_order")
			sp.SetAttr("role", "leader")
			sp.SetInt("pairs", int64(len(sc.pairs)))
			call, err := s.ctx.Tasks.CompareOrderAsync(s.question, sc.pairs)
			if err != nil {
				sp.SetAttr("error", err.Error())
				sp.End()
				// This segment's pairs never went out: refund them.
				s.ctx.Stats.Comparisons -= len(sc.pairs)
				drainFrom(0)
				releaseRound()
				return err
			}
			sc.call = call
			sc.span = sp
		}
		round = append(round, sc)
	}
	// Collect every own group, memoizing verdicts (which resolves this
	// session's claims for follower sessions).
	for k, sc := range round {
		if sc.call == nil {
			continue
		}
		ds, err := sc.call.WaitCtx(s.ctx.context())
		if err != nil {
			sc.span.SetAttr("error", err.Error())
			drainFrom(k)
			releaseRound()
			return err
		}
		finishGroupSpan(sc.span, sc.call.Telemetry(), answersTotal(ds), quorumCount(ds))
		for i, d := range ds {
			if d.Total == 0 {
				continue
			}
			s.ctx.Cache.PutOrder(s.question, sc.pairs[i].Left, sc.pairs[i].Right, d.Value)
		}
	}
	releaseRound()
	// Adopt verdicts other sessions are sourcing. Waiting only after
	// all own groups are memoized avoids deadlocking with a session
	// symmetric to this one.
	for _, cl := range followers {
		if err := s.ctx.Canceled(); err != nil {
			return err
		}
		if _, ok := cl.WaitCtx(s.ctx.context()); ok {
			s.ctx.Stats.SharedFlights++
		}
		// ok=false: the leader abandoned; prefers falls back to the
		// deterministic label order for this pair.
	}
	// Partition every segment in place around its pivot. Children are
	// appended in position order, keeping the frontier sorted so
	// settled() is exactly the finalized prefix.
	var next []segRange
	for _, sc := range round {
		seg := s.idx[sc.seg.lo:sc.seg.hi]
		var before, after []int
		for _, i := range seg {
			if i == sc.pivot {
				continue
			}
			if s.prefers(i, sc.pivot) {
				before = append(before, i)
			} else {
				after = append(after, i)
			}
		}
		n := copy(seg, before)
		seg[n] = sc.pivot
		copy(seg[n+1:], after)
		if n > 1 {
			next = append(next, segRange{sc.seg.lo, sc.seg.lo + n})
		}
		if sc.seg.lo+n+1 < sc.seg.hi-1 {
			next = append(next, segRange{sc.seg.lo + n + 1, sc.seg.hi})
		}
	}
	s.frontier = next
	return nil
}

// pivotPairs gathers the comparisons a segment needs against its pivot:
// uncached, in-budget pairs this session will post (with their leader
// claims), plus follower claims on pairs other sessions have in flight.
// roundSeen carries the pairs already claimed by sibling segments this
// round — a duplicate is dropped here and resolved from the cache once
// the sibling's group is collected (collection always precedes the
// partition step).
func (s *crowdSorter) pivotPairs(seg []int, pivot int, roundSeen map[string]bool) (pairs []taskmgr.ComparePair, leaders, followers []Claim) {
	for _, i := range seg {
		if i == pivot || s.labels[i] == s.labels[pivot] {
			continue
		}
		key := pairKey(s.question, s.labels[i], s.labels[pivot])
		if roundSeen[key] {
			continue
		}
		claim := s.ctx.Cache.ClaimOrder(s.question, s.labels[i], s.labels[pivot])
		if claim.Hit {
			s.ctx.Stats.CacheHits++
			continue
		}
		if !claim.Leader {
			roundSeen[key] = true
			followers = append(followers, claim)
			continue
		}
		if s.ctx.Tasks == nil || !s.ctx.budgetOK() {
			claim.Abandon()
			s.ctx.Stats.BudgetDenied++
			continue
		}
		roundSeen[key] = true
		leaders = append(leaders, claim)
		pairs = append(pairs, taskmgr.ComparePair{Left: s.labels[i], Right: s.labels[pivot]})
		s.ctx.Stats.Comparisons++
	}
	return pairs, leaders, followers
}

// prefers reports whether item i ranks before item j: by crowd verdict when
// available, by label order otherwise (deterministic fallback for ties,
// missing answers, and exhausted budgets).
func (s *crowdSorter) prefers(i, j int) bool {
	li, lj := s.labels[i], s.labels[j]
	if li == lj {
		return i < j
	}
	if w, ok := s.ctx.Cache.GetOrder(s.question, li, lj); ok {
		if w == li {
			return true
		}
		if w == lj {
			return false
		}
	}
	return li < lj
}

// ---------------------------------------------------------------------------
// CrowdProbe: scan with CNULL instantiation and tuple solicitation

type crowdProbeScan struct {
	node *plan.Scan
	out  batchEmitter
}

func (s *crowdProbeScan) Schema() []plan.Col { return s.node.Schema() }

func (s *crowdProbeScan) Open(ctx *Ctx) error {
	s.out = batchEmitter{}
	name := s.node.Table.Name
	ids, stored, err := ctx.Store.ScanRowsAt(name, ctx.snapTS())
	if err != nil {
		return err
	}
	var rows []Row
	var rowIDs []storage.RowID
	// Pre-filter on conjuncts that do not touch this table's crowd columns:
	// predicate push-down shrinks the probe set (experiment E10's win).
	preFilter, postNeeded := splitCrowdFilter(s.node)
	scanned := int64(0)
	for i, row := range stored {
		ctx.Stats.RowsScanned++
		scanned++
		keep, err := rowMatches(preFilter, row, s.node.Schema())
		if err != nil {
			return err
		}
		if keep {
			rows = append(rows, row)
			rowIDs = append(rowIDs, ids[i])
		}
	}
	if s.node.Filter != nil && scanned > 0 {
		// Cost-model feedback: observed selectivity of the pushed predicate.
		s.node.Table.ObserveFilter(scanned, int64(len(rows)))
	}

	// Stop-after push-down (§3.2.2): when the whole filter ran pre-probe,
	// the surviving rows are final, so the bound applies BEFORE the crowd
	// is asked — this is exactly the rule's crowd-task saving.
	if !postNeeded && !s.node.Table.Crowd && s.node.StopAfter >= 0 && int64(len(rows)) > s.node.StopAfter {
		rows = rows[:s.node.StopAfter]
		rowIDs = rowIDs[:s.node.StopAfter]
	}

	// CrowdProbe phase 1: instantiate CNULLs of the asked crowd columns.
	if ctx.Tasks != nil && len(s.node.AskColumns) > 0 {
		if err := probeCNulls(ctx, s.node, rows, rowIDs); err != nil {
			return err
		}
	}

	// CrowdProbe phase 2: solicit new tuples for CROWD tables (open world).
	if ctx.Tasks != nil && s.node.Table.Crowd {
		acquired, err := solicitTuples(ctx, s.node, rows)
		if err != nil {
			return err
		}
		rows = append(rows, acquired...)
	}

	// Final filter (now that CNULLs are instantiated) and stop-after for
	// closed-world tables.
	var out []Row
	for _, row := range rows {
		keep := true
		if postNeeded {
			keep, err = rowMatches(s.node.Filter, row, s.node.Schema())
			if err != nil {
				return err
			}
		}
		if keep {
			out = append(out, row)
			if !s.node.Table.Crowd && s.node.StopAfter >= 0 && int64(len(out)) >= s.node.StopAfter {
				break
			}
		}
	}
	s.out.rows = out
	return nil
}

// splitCrowdFilter separates the scan filter into a pre-probe part (no
// crowd columns referenced) and reports whether a post-probe pass is
// needed.
func splitCrowdFilter(node *plan.Scan) (parser.Expr, bool) {
	if node.Filter == nil {
		return nil, false
	}
	crowdCols := map[string]bool{}
	for _, c := range node.Table.Columns {
		if c.Crowd {
			crowdCols[strings.ToLower(c.Name)] = true
		}
	}
	var pre parser.Expr
	post := false
	for _, conj := range splitConjuncts(node.Filter) {
		touches := false
		parser.WalkExprs(conj, func(x parser.Expr) {
			if cr, ok := x.(*parser.ColumnRef); ok && crowdCols[strings.ToLower(cr.Name)] {
				touches = true
			}
		})
		if touches {
			post = true
		} else {
			pre = andExpr(pre, conj)
		}
	}
	return pre, post
}

func splitConjuncts(e parser.Expr) []parser.Expr {
	if be, ok := e.(*parser.BinaryExpr); ok && be.Op == "AND" {
		return append(splitConjuncts(be.L), splitConjuncts(be.R)...)
	}
	return []parser.Expr{e}
}

func andExpr(a, b parser.Expr) parser.Expr {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	default:
		return &parser.BinaryExpr{Op: "AND", L: a, R: b}
	}
}

// probeCNulls sends batched HIT groups for every buffered row whose asked
// crowd columns hold CNULL, coerces the majority answers, writes them back
// to the row AND the store (memorization), and updates statistics. The
// request batch is split into up to MaxInFlight probe groups that are all
// submitted before any is collected, so their crowd waits overlap. Rows
// whose answers miss quorum are re-posted once (the operators' built-in
// quality control, §3.2.1).
func probeCNulls(ctx *Ctx, node *plan.Scan, rows []Row, rowIDs []storage.RowID) error {
	if err := probeCNullsOnce(ctx, node, rows, rowIDs); err != nil {
		return err
	}
	// Retry round for rows that still hold CNULL in an asked column.
	return probeCNullsOnce(ctx, node, rows, rowIDs)
}

func probeCNullsOnce(ctx *Ctx, node *plan.Scan, rows []Row, rowIDs []storage.RowID) error {
	t := node.Table
	var reqs []taskmgr.ProbeRequest
	var reqRow []int
	for i, row := range rows {
		var ask []string
		for _, col := range node.AskColumns {
			if ci := t.ColumnIndex(col); ci >= 0 && row[ci].IsCNull() {
				ask = append(ask, col)
			}
		}
		if len(ask) == 0 {
			continue
		}
		known := make(map[string]sqltypes.Value, len(t.Columns))
		for ci, c := range t.Columns {
			known[strings.ToLower(c.Name)] = row[ci]
		}
		reqs = append(reqs, taskmgr.ProbeRequest{Known: known, Ask: ask})
		reqRow = append(reqRow, i)
	}
	if len(reqs) == 0 {
		return nil
	}
	ctx.Stats.ProbeRequests += len(reqs)
	ctx.noteProgress()

	// Pipelined dispatch: post every chunk, then collect in order.
	type probeChunk struct {
		lo   int // offset of the chunk's first request in reqs
		n    int
		call *taskmgr.ProbeCall
		span *obs.Span
	}
	var chunks []probeChunk
	drainFrom := func(k int) {
		for _, c := range chunks[k:] {
			c.span.SetAttr("drained", "true")
			c.span.End()
			if ctx.Canceled() != nil {
				if c.call.Abort() {
					// Withdrawn before reaching the platform: refund.
					ctx.Stats.ProbeRequests -= c.n
				}
				continue
			}
			c.call.Wait() //nolint:errcheck // draining after a prior error
		}
	}
	undispatched := len(reqs)
	lo := 0
	for _, chunk := range chunkSlice(reqs, asyncWindow(ctx)) {
		if err := ctx.Canceled(); err != nil {
			ctx.Stats.ProbeRequests -= undispatched
			drainFrom(0)
			return err
		}
		sp := ctx.startCrowdSpan("crowd:probe")
		sp.SetAttr("table", t.Name)
		sp.SetInt("requests", int64(len(chunk)))
		call, err := ctx.Tasks.ProbeValuesAsync(t.Name, chunk)
		if err != nil {
			sp.SetAttr("error", err.Error())
			sp.End()
			ctx.Stats.ProbeRequests -= undispatched
			drainFrom(0)
			return err
		}
		undispatched -= len(chunk)
		chunks = append(chunks, probeChunk{lo: lo, n: len(chunk), call: call, span: sp})
		lo += len(chunk)
	}
	for k, c := range chunks {
		results, err := c.call.WaitCtx(ctx.context())
		if err != nil {
			c.span.SetAttr("error", err.Error())
			drainFrom(k)
			return err
		}
		answers, quorums := 0, 0
		for _, res := range results {
			for _, d := range res.Decisions {
				answers += d.Total
				if d.Quorum {
					quorums++
				}
			}
		}
		finishGroupSpan(c.span, c.call.Telemetry(), answers, quorums)
		for ri, res := range results {
			i := reqRow[c.lo+ri]
			changed := false
			for col, d := range res.Decisions {
				if d.Total == 0 || !d.Quorum {
					continue // no usable answer: the value stays CNULL
				}
				ci := t.ColumnIndex(col)
				v, err := sqltypes.NewString(strings.TrimSpace(d.Value)).Coerce(t.Columns[ci].Type)
				if err != nil {
					continue // untypable answer: stays CNULL
				}
				rows[i][ci] = v
				changed = true
				t.AdjustCNull(t.Columns[ci].Name, -1)
			}
			if changed {
				// Memorize: the crowd is never asked the same value twice.
				if err := ctx.Store.Update(t.Name, rowIDs[i], rows[i]); err != nil {
					drainFrom(k + 1)
					return err
				}
			}
		}
	}
	return nil
}

// solicitTuples asks the crowd for new tuples of a CROWD table, bounded by
// probe keys (expected cardinality) and/or the pushed stop-after.
func solicitTuples(ctx *Ctx, node *plan.Scan, existing []Row) ([]Row, error) {
	t := node.Table
	want := -1
	if len(node.ProbeKeys) > 0 {
		matching := 0
		for _, row := range existing {
			ok, err := rowMatches(node.Filter, row, node.Schema())
			if err != nil {
				return nil, err
			}
			if ok {
				matching++
			}
		}
		want = int(t.ExpectedCrowdCard()) - matching
	}
	if node.StopAfter >= 0 {
		byLimit := int(node.StopAfter) - len(existing)
		if want < 0 || byLimit < want {
			want = byLimit
		}
	}
	if want <= 0 {
		return nil, nil
	}
	prefill := make(map[string]sqltypes.Value, len(node.ProbeKeys))
	for col, v := range node.ProbeKeys {
		prefill[col] = v
	}
	ctx.Stats.NewTupleRequests += want
	ctx.noteProgress()
	sp := ctx.startCrowdSpan("crowd:new_tuples")
	sp.SetAttr("table", t.Name)
	sp.SetInt("want", int64(want))
	call, err := ctx.Tasks.NewTuplesBatchAsync(t.Name, []taskmgr.TupleRequest{{Prefill: prefill, Want: want}})
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		ctx.Stats.NewTupleRequests -= want
		return nil, err
	}
	batches, err := call.WaitCtx(ctx.context())
	if err != nil {
		if call.Abort() {
			// Withdrawn before reaching the platform: refund.
			ctx.Stats.NewTupleRequests -= want
		}
		sp.SetAttr("error", err.Error())
		sp.End()
		return nil, err
	}
	var candidates []map[string]string
	if len(batches) > 0 {
		candidates = batches[0]
	}
	finishGroupSpan(sp, call.Telemetry(), len(candidates), 0)
	accepted, err := insertCandidates(ctx, t, candidates)
	if err == nil && len(node.ProbeKeys) > 0 {
		// Cost-model feedback: accepted crowd tuples per solicited key.
		// Only key-driven solicitations are representative — a stop-after
		// fill ("give me 30 rows") would poison the per-key fanout EWMA.
		t.ObserveCrowdFanout(1, int64(len(accepted)))
	}
	return accepted, err
}

// insertCandidates coerces raw candidate tuples, inserts them (primary key
// deduplicates crowd contributions), and returns the accepted rows.
func insertCandidates(ctx *Ctx, t *catalog.Table, candidates []map[string]string) ([]Row, error) {
	var out []Row
	for _, cand := range candidates {
		row := make(Row, len(t.Columns))
		ok := true
		for ci, c := range t.Columns {
			raw, has := cand[strings.ToLower(c.Name)]
			if !has {
				raw = cand[c.Name]
			}
			if raw == "" || quality.IsGarbage(raw) {
				if isPKColumn(t, c.Name) {
					ok = false // unusable key: drop candidate
					break
				}
				row[ci] = sqltypes.Null()
				continue
			}
			v, err := sqltypes.NewString(strings.TrimSpace(raw)).Coerce(c.Type)
			if err != nil {
				if isPKColumn(t, c.Name) {
					ok = false
					break
				}
				row[ci] = sqltypes.Null()
				continue
			}
			row[ci] = v
		}
		if !ok {
			continue
		}
		if _, err := ctx.Store.Insert(t.Name, row); err != nil {
			// Duplicate key: another worker (or an earlier query) already
			// contributed this entity — exactly the dedup the paper's PK
			// requirement exists for.
			continue
		}
		t.AddRowCount(1)
		out = append(out, row)
	}
	return out, nil
}

func isPKColumn(t *catalog.Table, col string) bool {
	for _, pk := range t.PrimaryKey {
		if strings.EqualFold(pk, col) {
			return true
		}
	}
	return false
}

func (s *crowdProbeScan) NextBatch(ctx *Ctx) (*Batch, error) {
	return s.out.next(ctx), nil
}

func (s *crowdProbeScan) Close(*Ctx) error { return nil }

func (s *crowdProbeScan) bufferedRows() int64 { return int64(len(s.out.rows)) }

// ---------------------------------------------------------------------------
// CrowdJoin: index nested-loop join soliciting matching inner tuples

// crowdJoin implements the paper's CrowdJoin: an index nested-loop join
// whose inner is a CROWD table. For every distinct outer key it looks up
// stored matches and solicits the expected number of missing tuples with
// the join key pre-filled — all keys batched into ONE HIT group.
type crowdJoin struct {
	node     *plan.Join
	left     Operator
	scan     *plan.Scan // crowd inner
	leftKey  parser.Expr
	rightCol string
	residual parser.Expr

	out batchEmitter
}

func (j *crowdJoin) Schema() []plan.Col { return j.node.Schema() }

func (j *crowdJoin) Open(ctx *Ctx) error {
	j.out = batchEmitter{}
	if err := j.left.Open(ctx); err != nil {
		return err
	}
	leftRows, err := drainInput(ctx, j.left, nil)
	if err != nil {
		return err
	}
	keys := make([]sqltypes.Value, len(leftRows))
	for i, r := range leftRows {
		v, err := eval(j.leftKey, &evalCtx{schema: j.left.Schema(), row: r})
		if err != nil {
			return err
		}
		keys[i] = v
	}

	t := j.scan.Table
	rightColIdx := t.ColumnIndex(j.rightCol)

	// Index the stored inner rows by join key (and probe their CNULLs).
	ids, stored, err := ctx.Store.ScanRowsAt(t.Name, ctx.snapTS())
	if err != nil {
		return err
	}
	var innerRows []Row
	var innerIDs []storage.RowID
	for i, row := range stored {
		id := ids[i]
		ctx.Stats.RowsScanned++
		keep, err := rowMatches(j.scan.Filter, row, j.scan.Schema())
		if err != nil {
			return err
		}
		if keep {
			innerRows = append(innerRows, row)
			innerIDs = append(innerIDs, id)
		}
	}
	if ctx.Tasks != nil && len(j.scan.AskColumns) > 0 {
		if err := probeCNulls(ctx, j.scan, innerRows, innerIDs); err != nil {
			return err
		}
	}
	matches := make(map[string][]Row)
	for _, row := range innerRows {
		matches[storage.IndexKey(row[rightColIdx])] = append(matches[storage.IndexKey(row[rightColIdx])], row)
	}

	// Solicit missing inner tuples: one TupleRequest per distinct outer
	// key, all in one group.
	if ctx.Tasks != nil {
		var reqs []taskmgr.TupleRequest
		seen := map[string]bool{}
		for _, k := range keys {
			if k.IsUnknown() {
				continue
			}
			kk := storage.IndexKey(k)
			if seen[kk] {
				continue
			}
			seen[kk] = true
			want := int(t.ExpectedCrowdCard()) - len(matches[kk])
			if want <= 0 {
				continue
			}
			prefill := map[string]sqltypes.Value{strings.ToLower(j.rightCol): k}
			for col, v := range j.scan.ProbeKeys {
				prefill[col] = v
			}
			reqs = append(reqs, taskmgr.TupleRequest{Prefill: prefill, Want: want})
			ctx.Stats.NewTupleRequests += want
		}
		if len(reqs) > 0 {
			// Pipelined solicitation: split the outer keys into up to
			// MaxInFlight groups and post them all before collecting, so the
			// next batch's HITs are already live while the previous batch's
			// candidates are being inserted.
			type tupleChunk struct {
				want int // summed Want of the chunk's requests
				call *taskmgr.TupleCall
				span *obs.Span
			}
			wantOf := func(rs []taskmgr.TupleRequest) int {
				n := 0
				for _, r := range rs {
					n += r.Want
				}
				return n
			}
			var calls []tupleChunk
			drainFrom := func(k int) {
				for _, c := range calls[k:] {
					c.span.SetAttr("drained", "true")
					c.span.End()
					if ctx.Canceled() != nil {
						if c.call.Abort() {
							// Withdrawn before reaching the platform: refund.
							ctx.Stats.NewTupleRequests -= c.want
						}
						continue
					}
					c.call.Wait() //nolint:errcheck // draining after a prior error
				}
			}
			undispatched := wantOf(reqs)
			ctx.noteProgress()
			for _, chunk := range chunkSlice(reqs, asyncWindow(ctx)) {
				if err := ctx.Canceled(); err != nil {
					ctx.Stats.NewTupleRequests -= undispatched
					drainFrom(0)
					return err
				}
				sp := ctx.startCrowdSpan("crowd:join_tuples")
				sp.SetAttr("table", t.Name)
				sp.SetInt("want", int64(wantOf(chunk)))
				call, err := ctx.Tasks.NewTuplesBatchAsync(t.Name, chunk)
				if err != nil {
					sp.SetAttr("error", err.Error())
					sp.End()
					ctx.Stats.NewTupleRequests -= undispatched
					drainFrom(0)
					return err
				}
				undispatched -= wantOf(chunk)
				calls = append(calls, tupleChunk{want: wantOf(chunk), call: call, span: sp})
			}
			totalAccepted := int64(0)
			for k, c := range calls {
				batches, err := c.call.WaitCtx(ctx.context())
				if err != nil {
					c.span.SetAttr("error", err.Error())
					drainFrom(k)
					return err
				}
				got := 0
				for _, cands := range batches {
					got += len(cands)
				}
				finishGroupSpan(c.span, c.call.Telemetry(), got, 0)
				for _, cands := range batches {
					accepted, err := insertCandidates(ctx, t, cands)
					if err != nil {
						drainFrom(k + 1)
						return err
					}
					totalAccepted += int64(len(accepted))
					for _, row := range accepted {
						ok, err := rowMatches(j.scan.Filter, row, j.scan.Schema())
						if err != nil {
							drainFrom(k + 1)
							return err
						}
						if ok {
							kk := storage.IndexKey(row[rightColIdx])
							matches[kk] = append(matches[kk], row)
						}
					}
				}
			}
			// Cost-model feedback: accepted crowd tuples per solicited key.
			t.ObserveCrowdFanout(int64(len(reqs)), totalAccepted)
		}
	}

	// Emit joined rows.
	for i, l := range leftRows {
		if keys[i].IsUnknown() {
			continue
		}
		for _, r := range matches[storage.IndexKey(keys[i])] {
			combined := append(append(Row{}, l...), r...)
			ok, err := rowMatches(j.residual, combined, j.Schema())
			if err != nil {
				return err
			}
			if ok {
				j.out.rows = append(j.out.rows, combined)
			}
		}
	}
	return nil
}

func (j *crowdJoin) NextBatch(ctx *Ctx) (*Batch, error) {
	return j.out.next(ctx), nil
}

func (j *crowdJoin) Close(ctx *Ctx) error { return j.left.Close(ctx) }

func (j *crowdJoin) bufferedRows() int64 { return int64(len(j.out.rows)) }
