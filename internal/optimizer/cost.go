package optimizer

// The crowd-aware cost model (paper §3.2.2, taken past the rule-based
// heuristics): every plan node is priced in two crowd dimensions —
// expected monetary spend (cents) and expected human latency (seconds) —
// plus a predicted output cardinality. The per-operator formulas mirror
// what the executor actually pays:
//
//	CrowdProbe   cents = probeRows × reward × assignments
//	             (probeRows = stored rows surviving the pushed filter
//	             that still hold CNULL in an asked column)
//	Solicitation cents = wantedTuples × reward × tupleAssignments
//	CROWDEQUAL   cents = inputRows × calls × (1 − cacheHitRate)
//	             × reward × assignments
//	CROWDORDER   cents = n × ceil(log2 n) × (1 − cacheHitRate)
//	             × reward × assignments (the batched quicksort)
//	latency      = crowd rounds × observed group round-trip, with each
//	             phase's groups pipelined through the task manager's
//	             in-flight window
//
// The inputs come from a runtime feedback loop: observed filter
// selectivities and crowd fanouts (catalog), the live comparison-cache
// hit rate, and the task manager's observed group round-trip latency.
// Repeated workloads therefore converge on cheaper plans.

import (
	"math"
	"math/bits"
	"strings"

	"crowddb/internal/parser"
	"crowddb/internal/plan"
)

// CostInputs are the live runtime-feedback numbers the cost model prices
// plans with. The engine assembles them per compilation from the task
// manager's configuration and observed latency plus the comparison
// cache's hit rate; the zero value normalizes to DefaultCostInputs.
type CostInputs struct {
	// RewardCents is the payment per assignment.
	RewardCents float64
	// CompareAssignments is the replication per probe/comparison HIT.
	CompareAssignments float64
	// TupleAssignments is the replication per new-tuple solicitation.
	TupleAssignments float64
	// RoundTripSeconds is the observed (p50) HIT-group round-trip in
	// virtual seconds — the latency of one crowd round.
	RoundTripSeconds float64
	// Window is the async scheduler's in-flight group window.
	Window float64
	// CacheHitRate is the live comparison-cache hit rate in [0,1): the
	// fraction of CROWDEQUAL/CROWDORDER questions answered without pay.
	CacheHitRate float64
	// LatencyCentsPerHour folds crowd latency into money for plan
	// ranking: one hour of waiting is "worth" this many cents.
	LatencyCentsPerHour float64
	// MachineParallelism is the number of CPU workers available to the
	// storage engine (GOMAXPROCS). A scan's machine time divides by the
	// effective parallelism min(table shards, MachineParallelism), so
	// EXPLAIN and plan ranking reflect the sharded engine's real
	// hardware. 0 normalizes to 1 (sequential).
	MachineParallelism float64
	// ModelRewardCents/ModelAssignments price the model tier when the
	// escalation router is on: every crowd question then pays the model
	// rate, and an EscalationRate fraction of them additionally pays the
	// full human rate. All three stay zero when routing is off (they are
	// deliberately not defaulted by normalized()), which prices the pure
	// human rate as before.
	ModelRewardCents float64
	ModelAssignments float64
	// EscalationRate is the observed (or prior) fraction of model-tier
	// HITs that escalate to humans, in [0,1].
	EscalationRate float64
}

// compareCents prices n paid comparison/probe HITs: the pure human rate,
// or the blended model-first rate (every HIT pays the model tier, the
// escalated fraction additionally pays humans) when the router is on.
// The human branch keeps the historical multiplication order so plans
// price bit-identically with routing off.
func (ci CostInputs) compareCents(n float64) float64 {
	human := n * ci.RewardCents * ci.CompareAssignments
	if ci.ModelRewardCents <= 0 || ci.ModelAssignments <= 0 {
		return human
	}
	return n*ci.ModelRewardCents*ci.ModelAssignments + ci.EscalationRate*human
}

// tupleCents prices n new-tuple solicitations; the model tier keeps the
// tuple replication (each assignment is a distinct candidate), so only
// the per-assignment reward is the model's.
func (ci CostInputs) tupleCents(n float64) float64 {
	human := n * ci.RewardCents * ci.TupleAssignments
	if ci.ModelRewardCents <= 0 || ci.ModelAssignments <= 0 {
		return human
	}
	return n*ci.ModelRewardCents*ci.TupleAssignments + ci.EscalationRate*human
}

// scanRowsPerSecond is the assumed single-worker heap-scan throughput
// (rows cloned + filtered per second) used to price machine scan time.
const scanRowsPerSecond = 2e6

// DefaultCostInputs matches the paper's experimental defaults: 2¢ HITs,
// 3-way replication, single-candidate solicitations, a 30-minute group
// round-trip, window 8, a cold cache, and a sequential (1-worker)
// machine.
func DefaultCostInputs() CostInputs {
	return CostInputs{
		RewardCents:         2,
		CompareAssignments:  3,
		TupleAssignments:    1,
		RoundTripSeconds:    30 * 60,
		Window:              8,
		CacheHitRate:        0,
		LatencyCentsPerHour: 6,
		MachineParallelism:  1,
	}
}

// normalized fills zero fields with defaults and clamps the hit rate so a
// saturated cache never predicts free comparisons.
func (ci CostInputs) normalized() CostInputs {
	def := DefaultCostInputs()
	if ci.RewardCents <= 0 {
		ci.RewardCents = def.RewardCents
	}
	if ci.CompareAssignments <= 0 {
		ci.CompareAssignments = def.CompareAssignments
	}
	if ci.TupleAssignments <= 0 {
		ci.TupleAssignments = def.TupleAssignments
	}
	if ci.RoundTripSeconds <= 0 {
		ci.RoundTripSeconds = def.RoundTripSeconds
	}
	if ci.Window <= 0 {
		ci.Window = def.Window
	}
	if ci.LatencyCentsPerHour <= 0 {
		ci.LatencyCentsPerHour = def.LatencyCentsPerHour
	}
	if ci.CacheHitRate < 0 {
		ci.CacheHitRate = 0
	}
	if ci.CacheHitRate > 0.95 {
		ci.CacheHitRate = 0.95
	}
	if ci.MachineParallelism < 1 {
		ci.MachineParallelism = 1
	}
	if ci.EscalationRate < 0 {
		ci.EscalationRate = 0
	}
	if ci.EscalationRate > 1 {
		ci.EscalationRate = 1
	}
	return ci
}

// Join-order search bounds: past these the chain falls back to greedy.
const (
	dpMaxLeaves    = 8
	dpMaxConjuncts = 32
	// scoreEpsilon is the margin by which a DP plan must beat greedy to
	// replace it: ties keep the deterministic greedy order.
	scoreEpsilon = 1e-9
	// workWeight prices intermediate rows (CPU work) far below any crowd
	// cent, so row savings only ever break money×latency ties.
	workWeight = 1e-6
)

// costModel computes Cost predictions bottom-up, memoized per node.
type costModel struct {
	o    *optimizer
	in   CostInputs
	memo map[plan.Node]plan.Cost
	work map[plan.Node]float64 // cumulative intermediate rows of the subtree
}

func newCostModel(o *optimizer) *costModel {
	return &costModel{
		o:    o,
		in:   o.opts.Cost,
		memo: make(map[plan.Node]plan.Cost),
		work: make(map[plan.Node]float64),
	}
}

// score folds a subtree's prediction into one scalar for plan ranking:
// cents, latency (crowd and machine) at the configured exchange rate,
// and a vanishing weight on intermediate rows as the tie-breaker.
func (cm *costModel) score(n plan.Node) float64 {
	c := cm.cost(n)
	if c.IsUnbounded() {
		return math.Inf(1)
	}
	return c.Cents + (c.Seconds+c.MachineSeconds)*cm.in.LatencyCentsPerHour/3600 + cm.work[n]*workWeight
}

// cost predicts one node's cumulative crowd cost (memoized).
func (cm *costModel) cost(n plan.Node) plan.Cost {
	if c, ok := cm.memo[n]; ok {
		return c
	}
	c := cm.compute(n)
	if c.Rows < 1 && !math.IsInf(c.Rows, 1) {
		c.Rows = 1
	}
	cm.memo[n] = c
	w := c.Rows
	for _, ch := range n.Children() {
		w += cm.work[ch]
	}
	cm.work[n] = w
	return c
}

func (cm *costModel) compute(n plan.Node) plan.Cost {
	switch x := n.(type) {
	case *plan.Scan:
		return cm.scanCost(x)
	case *plan.Filter:
		return cm.filterCost(x)
	case *plan.Join:
		return cm.joinCost(x)
	case *plan.Project:
		c := cm.cost(x.Input)
		return c
	case *plan.Aggregate:
		c := cm.cost(x.Input)
		c.Rows *= 0.1
		return c
	case *plan.Sort:
		return cm.sortCost(x)
	case *plan.Distinct:
		c := cm.cost(x.Input)
		c.Rows *= 0.7
		return c
	case *plan.Limit:
		c := cm.cost(x.Input)
		if x.N >= 0 && float64(x.N) < c.Rows {
			c.Rows = float64(x.N)
		}
		return c
	}
	return plan.Cost{Rows: 1}
}

// storedScanRows estimates the stored rows a scan emits after its pushed
// predicate, preferring the observed selectivity over the 1/3 guess.
func (cm *costModel) storedScanRows(s *plan.Scan) float64 {
	stored := float64(s.Table.RowCount())
	if s.Filter == nil {
		return stored
	}
	sel := 1.0 / 3
	if obs, ok := s.Table.FilterSelectivity(); ok {
		sel = obs
	}
	// A single-column primary-key equality pins one row regardless.
	for col := range s.ProbeKeys {
		for _, pk := range s.Table.PrimaryKey {
			if len(s.Table.PrimaryKey) == 1 && strings.EqualFold(pk, col) && stored > 0 {
				return 1
			}
		}
	}
	return stored * sel
}

// fanout is the predicted NEW crowd tuples accepted per solicited key
// (stored matches excluded — both executor observations measure
// incremental acceptance).
func (cm *costModel) fanout(s *plan.Scan) float64 {
	if obs, ok := s.Table.CrowdFanout(); ok {
		return obs
	}
	return float64(s.Table.ExpectedCrowdCard())
}

// probeCost prices instantiating the asked CNULL columns of `rows` stored
// rows: one probe HIT per row still holding a CNULL, capped by the
// catalog's outstanding-CNULL counters.
func (cm *costModel) probeCost(s *plan.Scan, rows float64) plan.Cost {
	if len(s.AskColumns) == 0 || rows <= 0 {
		return plan.Cost{}
	}
	stats := s.Table.Stats()
	var outstanding float64
	for _, col := range s.AskColumns {
		if cn := float64(stats.CNullCount[col]); cn > outstanding {
			outstanding = cn
		}
	}
	probeRows := rows
	if total := float64(stats.RowCount); total > 0 {
		// Scale outstanding CNULLs by the scanned fraction.
		frac := rows / total
		if frac > 1 {
			frac = 1
		}
		if est := outstanding * frac; est < probeRows {
			probeRows = est
		}
	} else if outstanding < probeRows {
		probeRows = outstanding
	}
	if probeRows <= 0 {
		return plan.Cost{}
	}
	return plan.Cost{
		Cents:   cm.in.compareCents(probeRows),
		Seconds: cm.in.RoundTripSeconds, // one pipelined probe round
	}
}

// solicitCost prices asking the crowd for `want` new tuples.
func (cm *costModel) solicitCost(want float64) plan.Cost {
	if want <= 0 {
		return plan.Cost{}
	}
	return plan.Cost{
		Cents:   cm.in.tupleCents(want),
		Seconds: cm.in.RoundTripSeconds,
	}
}

// machineScanSeconds prices the machine side of a sequential scan: every
// stored row is read and filtered once, divided by the effective
// parallelism of the sharded engine (min of the table's shard count and
// the CPU workers available) — the parallel seqScan's actual fan-out.
func (cm *costModel) machineScanSeconds(s *plan.Scan) float64 {
	rows := float64(s.Table.RowCount())
	if rows <= 0 {
		return 0
	}
	par := float64(s.Table.ShardCount())
	if par < 1 {
		par = 1
	}
	if par > cm.in.MachineParallelism {
		par = cm.in.MachineParallelism
	}
	return rows / scanRowsPerSecond / par
}

func (cm *costModel) scanCost(s *plan.Scan) plan.Cost {
	storedOut := cm.storedScanRows(s)
	machine := cm.machineScanSeconds(s)
	if !s.Table.Crowd {
		// Stop-after truncates a closed-world scan before the crowd is
		// asked whenever the whole pushed filter runs pre-probe (no crowd
		// columns referenced) — mirror that in the probe forecast.
		if s.StopAfter >= 0 && float64(s.StopAfter) < storedOut && !filterTouchesCrowdColumns(s) {
			storedOut = float64(s.StopAfter)
		}
		c := cm.probeCost(s, storedOut)
		c.MachineSeconds += machine
		c.Rows = storedOut
		if s.StopAfter >= 0 && float64(s.StopAfter) < c.Rows {
			c.Rows = float64(s.StopAfter)
		}
		return c
	}
	c := cm.probeCost(s, storedOut)
	c.MachineSeconds += machine
	c.Rows = storedOut
	// Open world: solicitation. Execution wants ExpectedCrowdCard matches
	// per probe key (or fills up to the stop-after bound); the predicted
	// yield uses the observed fanout when available.
	execFan := float64(s.Table.ExpectedCrowdCard())
	switch {
	case len(s.ProbeKeys) > 0:
		want := execFan - storedOut
		c = c.Plus(cm.solicitCost(want))
		c.Rows = storedOut + cm.fanout(s)
	case s.StopAfter >= 0:
		want := float64(s.StopAfter) - storedOut
		c = c.Plus(cm.solicitCost(want))
		c.Rows = storedOut + math.Max(want, 0)
		if float64(s.StopAfter) < c.Rows {
			c.Rows = float64(s.StopAfter)
		}
	default:
		return plan.Cost{Cents: math.Inf(1), Seconds: math.Inf(1), Rows: math.Inf(1)}
	}
	return c
}

// filterTouchesCrowdColumns reports whether the scan's pushed predicate
// references a CROWD column (the executor must then probe before it can
// finish filtering, so stop-after cannot shrink the probe set).
func filterTouchesCrowdColumns(s *plan.Scan) bool {
	if s.Filter == nil {
		return false
	}
	touches := false
	parser.WalkExprs(s.Filter, func(x parser.Expr) {
		cr, ok := x.(*parser.ColumnRef)
		if !ok {
			return
		}
		if col, found := s.Table.Column(cr.Name); found && col.Crowd {
			touches = true
		}
	})
	return touches
}

// countCrowdEqualCalls counts CROWDEQUAL / ~= occurrences in a predicate.
func countCrowdEqualCalls(e parser.Expr) float64 {
	n := 0.0
	parser.WalkExprs(e, func(x parser.Expr) {
		switch v := x.(type) {
		case *parser.BinaryExpr:
			if v.Op == "~=" {
				n++
			}
		case *parser.FuncCall:
			if v.Name == "CROWDEQUAL" {
				n++
			}
		}
	})
	return n
}

func (cm *costModel) filterCost(f *plan.Filter) plan.Cost {
	in := cm.cost(f.Input)
	c := plan.Cost{Cents: in.Cents, Seconds: in.Seconds, MachineSeconds: in.MachineSeconds}
	calls := countCrowdEqualCalls(f.Cond)
	if calls > 0 && !math.IsInf(in.Rows, 1) {
		pairRows := in.Rows
		if f.Pre != nil {
			// Cheap-first phase ordering: only rows surviving the machine
			// predicates reach the crowd.
			pairRows *= 1.0 / 3
		}
		comparisons := pairRows * calls * (1 - cm.in.CacheHitRate)
		if comparisons > 0 {
			c.Cents += cm.in.compareCents(comparisons)
			c.Seconds += cm.in.RoundTripSeconds
		}
	}
	c.Rows = in.Rows * (1.0 / 3)
	return c
}

func (cm *costModel) sortCost(s *plan.Sort) plan.Cost {
	in := cm.cost(s.Input)
	c := plan.Cost{Cents: in.Cents, Seconds: in.Seconds, Rows: in.Rows, MachineSeconds: in.MachineSeconds}
	crowd := false
	for _, k := range s.Keys {
		if parser.HasCrowdFunc(k.Expr) {
			crowd = true
		}
	}
	if !crowd || math.IsInf(in.Rows, 1) || in.Rows < 2 {
		return c
	}
	// Batched quicksort: ~n comparisons per round, ceil(log2 n) rounds;
	// sibling segments pipeline through the in-flight window.
	n := in.Rows
	rounds := math.Ceil(math.Log2(n))
	if rounds < 1 {
		rounds = 1
	}
	comparisons := n * rounds * (1 - cm.in.CacheHitRate)
	c.Cents += cm.in.compareCents(comparisons)
	groupsPerRound := math.Max(1, math.Ceil(n/math.Max(cm.in.Window, 1)/8))
	c.Seconds += rounds * groupsPerRound * cm.in.RoundTripSeconds
	return c
}

func (cm *costModel) joinCost(j *plan.Join) plan.Cost {
	l := cm.cost(j.Left)
	r := cm.cost(j.Right)
	sel := 1.0
	if j.On != nil {
		sel = 0.1
	}

	// CrowdJoin rescue (§3.2.1): an inner crowd scan bound by the join
	// condition is solicited per distinct outer key rather than
	// enumerated, so its standalone infinity does not apply.
	if j.Type == parser.JoinInner && !l.IsUnbounded() {
		if s, ok := j.Right.(*plan.Scan); ok && s.Table.Crowd && cm.o.joinBindsScan(j, s) {
			storedInner := cm.storedScanRows(s)
			c := plan.Cost{Cents: l.Cents, Seconds: l.Seconds,
				MachineSeconds: l.MachineSeconds + cm.machineScanSeconds(s)}
			c = c.Plus(cm.probeCost(s, storedInner))
			keys := l.Rows
			execFan := float64(s.Table.ExpectedCrowdCard())
			storedPerKey := 0.0
			if keys > 0 {
				storedPerKey = storedInner / keys
			}
			want := keys * math.Max(0, execFan-storedPerKey)
			c = c.Plus(cm.solicitCost(want))
			c.Rows = keys * (storedPerKey + cm.fanout(s))
			return c
		}
	}

	c := plan.Cost{Cents: l.Cents + r.Cents, Seconds: l.Seconds + r.Seconds,
		MachineSeconds: l.MachineSeconds + r.MachineSeconds}
	c.Rows = l.Rows * r.Rows * sel
	return c
}

// ---------------------------------------------------------------------------
// Bounded DP join-order enumeration

// dpState is the best left-deep plan found for one leaf subset.
type dpState struct {
	node  plan.Node
	used  uint64 // conjunct bitmask folded into ON conditions so far
	score float64
	// crosses records cross products in build order (for warnings).
	crosses []crossPair
}

// buildDP enumerates left-deep join orders over the chain's leaves,
// pricing each candidate with the cost model, and returns the cheapest
// complete plan. It reports ok=false when every complete order is
// unbounded (the caller then keeps greedy).
func (o *optimizer) buildDP(leaves []plan.Node, conjuncts []parser.Expr) (plan.Node, []crossPair, bool) {
	n := len(leaves)
	cm := newCostModel(o)
	states := make([]*dpState, 1<<n)
	for i := 0; i < n; i++ {
		states[1<<i] = &dpState{node: leaves[i], score: cm.score(leaves[i])}
	}
	for mask := 1; mask < 1<<n; mask++ {
		if states[mask] == nil || bits.OnesCount(uint(mask)) == n {
			continue
		}
		parent := states[mask]
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				continue
			}
			leaf := leaves[j]
			joint := append(append([]plan.Col{}, parent.node.Schema()...), leaf.Schema()...)
			var on parser.Expr
			used := parent.used
			for ci, conj := range conjuncts {
				if used&(1<<uint(ci)) != 0 {
					continue
				}
				if coveredBy(conj, joint) {
					on = andExpr(on, conj)
					used |= 1 << uint(ci)
				}
			}
			jt := parser.JoinInner
			if on == nil {
				jt = parser.JoinCross
			}
			cand := &plan.Join{Left: parent.node, Right: leaf, Type: jt, On: on}
			score := cm.score(cand)
			next := mask | 1<<j
			if cur := states[next]; cur == nil || score < cur.score-scoreEpsilon {
				crosses := parent.crosses
				if on == nil {
					crosses = append(append([]crossPair{}, parent.crosses...), crossPair{left: parent.node, right: leaf})
				}
				states[next] = &dpState{node: cand, used: used, score: score, crosses: crosses}
			}
		}
	}
	best := states[1<<n-1]
	if best == nil || math.IsInf(best.score, 1) {
		return nil, nil, false
	}
	return best.node, best.crosses, true
}

// ---------------------------------------------------------------------------
// Cost-based crowd-filter phase ordering

// orderFilterPhases splits every crowd filter's condition into a cheap
// (crowd-free) phase and the crowd phase, recording the cheap conjuncts
// on the Filter node: the executor prunes with them BEFORE paying for any
// crowd comparison. Classic expensive-predicate ordering, with CROWDEQUAL
// as the expensive predicate.
func (o *optimizer) orderFilterPhases(n plan.Node) {
	if f, ok := n.(*plan.Filter); ok && parser.HasCrowdFunc(f.Cond) {
		var cheap []parser.Expr
		crowd := false
		for _, conj := range splitConjuncts(f.Cond) {
			if parser.HasCrowdFunc(conj) {
				crowd = true
			} else {
				cheap = append(cheap, conj)
			}
		}
		if crowd && len(cheap) > 0 {
			f.Pre = joinConjuncts(cheap)
		}
	}
	for _, c := range n.Children() {
		o.orderFilterPhases(c)
	}
}
