// Package optimizer implements CrowdDB's rule-based query optimizer
// (paper §3.2.2): predicate push-down, stop-after push-down, join
// ordering, and the open-world boundedness analysis that "ensur[es] that
// the amount of data requested from the crowd is bounded", annotating the
// plan with cardinality predictions and warning at compile time when the
// number of crowd requests cannot be bounded.
package optimizer

import (
	"fmt"
	"math"
	"strings"

	"crowddb/internal/catalog"
	"crowddb/internal/parser"
	"crowddb/internal/plan"
	"crowddb/internal/sqltypes"
)

// Options control optimization.
type Options struct {
	// AllowUnbounded downgrades the unbounded-crowd-request error to a
	// warning; execution then uses stored data only for unbounded scans.
	AllowUnbounded bool
	// DisablePushdown, DisableStopAfter and DisableJoinReorder switch off
	// individual rules (the ablation benchmarks use these).
	DisablePushdown    bool
	DisableStopAfter   bool
	DisableJoinReorder bool
	// DisableCostBased turns off the crowd-aware cost-based optimizations
	// (DP join-order search, cheap-first crowd-filter phases) and falls
	// back to the flat greedy heuristic — the pre-cost-model behavior,
	// kept for ablation benchmarks.
	DisableCostBased bool
	// Cost carries the live runtime-feedback numbers the cost model
	// prices plans with. The zero value is normalized to
	// DefaultCostInputs.
	Cost CostInputs
}

// Result is the optimized plan with its compile-time annotations.
type Result struct {
	Root plan.Node
	// Warnings are human-readable compile-time diagnostics (unbounded
	// crowd access, cross products, ...).
	Warnings []string
	// Bounded reports whether every crowd access in the plan is bounded.
	Bounded bool
	// Cards are the optimizer's cardinality predictions per node.
	Cards map[plan.Node]float64
	// Costs are the cost model's per-node predictions (crowd cents,
	// crowd-latency seconds, output rows); EXPLAIN prints them.
	Costs map[plan.Node]plan.Cost
	// Predicted is the root's total predicted cost for the statement.
	Predicted plan.Cost
}

// Optimize rewrites the logical plan. It returns an error for unbounded
// crowd access unless opts.AllowUnbounded is set.
func Optimize(root plan.Node, cat *catalog.Catalog, opts Options) (*Result, error) {
	opts.Cost = opts.Cost.normalized()
	o := &optimizer{cat: cat, opts: opts}
	if !opts.DisablePushdown {
		root = o.pushPredicates(root)
	}
	o.deriveProbeKeys(root)
	if !opts.DisableJoinReorder {
		root = o.reorderJoins(root)
	}
	if !opts.DisableStopAfter {
		o.pushLimits(root, -1, true)
	}
	if !opts.DisableCostBased {
		o.orderFilterPhases(root)
	}
	res := &Result{Root: root, Cards: map[plan.Node]float64{}}
	bounded := o.annotate(root, res)
	res.Bounded = bounded
	// Final costing pass: a fresh model, because the tree was mutated
	// (stop-after, filter phases) since any costs computed during the
	// join-order search.
	cm := newCostModel(o)
	res.Predicted = cm.cost(root)
	res.Costs = cm.memo
	stampBuildRows(root, res.Costs)
	res.Warnings = append(res.Warnings, o.warningTexts()...)
	if !bounded && !opts.AllowUnbounded {
		return nil, fmt.Errorf("optimizer: plan requests an unbounded amount of crowd data: %s",
			strings.Join(res.Warnings, "; "))
	}
	return res, nil
}

// stampBuildRows writes each join's build-side row estimate onto the
// plan node so the executor's hash join can pre-size its build table
// instead of rehashing its way up from an empty map.
func stampBuildRows(n plan.Node, costs map[plan.Node]plan.Cost) {
	if j, ok := n.(*plan.Join); ok {
		j.BuildRows = costs[j.Right].Rows
	}
	for _, c := range n.Children() {
		stampBuildRows(c, costs)
	}
}

// warning is one structured compile-time diagnostic. Unbounded-scan
// warnings carry the scan that logged them so the CrowdJoin rescue can
// retract exactly that warning — not whichever string happens to match —
// regardless of how join reordering interleaved other warnings.
type warning struct {
	text    string
	scan    *plan.Scan
	dropped bool
}

type optimizer struct {
	cat      *catalog.Catalog
	opts     Options
	warnings []warning
}

func (o *optimizer) warnf(format string, args ...interface{}) {
	o.warnings = append(o.warnings, warning{text: fmt.Sprintf(format, args...)})
}

func (o *optimizer) warnScan(s *plan.Scan, format string, args ...interface{}) {
	o.warnings = append(o.warnings, warning{text: fmt.Sprintf(format, args...), scan: s})
}

// dropScanWarning retracts the (latest) unbounded warning logged for
// exactly this scan node.
func (o *optimizer) dropScanWarning(s *plan.Scan) {
	for i := len(o.warnings) - 1; i >= 0; i-- {
		if o.warnings[i].scan == s && !o.warnings[i].dropped {
			o.warnings[i].dropped = true
			return
		}
	}
}

func (o *optimizer) warningTexts() []string {
	var out []string
	for _, w := range o.warnings {
		if !w.dropped {
			out = append(out, w.text)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Rule 1: predicate push-down

// pushPredicates moves non-crowd filter conjuncts as close to the scans as
// possible; conjuncts spanning an inner/cross join migrate into its ON.
func (o *optimizer) pushPredicates(n plan.Node) plan.Node {
	switch x := n.(type) {
	case *plan.Filter:
		x.Input = o.pushPredicates(x.Input)
		var rest []parser.Expr
		for _, conj := range splitConjuncts(x.Cond) {
			if parser.HasCrowdFunc(conj) || hasSubquery(conj) || !o.push(x.Input, conj) {
				rest = append(rest, conj)
			}
		}
		if len(rest) == 0 {
			return x.Input
		}
		x.Cond = joinConjuncts(rest)
		return x
	case *plan.Join:
		x.Left = o.pushPredicates(x.Left)
		x.Right = o.pushPredicates(x.Right)
		if x.On != nil && x.Type != parser.JoinLeft {
			var rest []parser.Expr
			for _, conj := range splitConjuncts(x.On) {
				if parser.HasCrowdFunc(conj) || hasSubquery(conj) || !o.pushToSide(x, conj) {
					rest = append(rest, conj)
				}
			}
			x.On = joinConjuncts(rest)
		}
		return x
	case *plan.Project:
		x.Input = o.pushPredicates(x.Input)
		return x
	case *plan.Aggregate:
		x.Input = o.pushPredicates(x.Input)
		return x
	case *plan.Sort:
		x.Input = o.pushPredicates(x.Input)
		return x
	case *plan.Limit:
		x.Input = o.pushPredicates(x.Input)
		return x
	case *plan.Distinct:
		x.Input = o.pushPredicates(x.Input)
		return x
	default:
		return n
	}
}

// push tries to attach conj below n; it reports success.
func (o *optimizer) push(n plan.Node, conj parser.Expr) bool {
	switch x := n.(type) {
	case *plan.Scan:
		if coveredBy(conj, x.Schema()) {
			x.Filter = andExpr(x.Filter, conj)
			return true
		}
	case *plan.Filter:
		return o.push(x.Input, conj)
	case *plan.Join:
		if x.Type == parser.JoinLeft {
			// Only the preserved (left) side accepts pushes safely.
			return coveredBy(conj, x.Left.Schema()) && o.push(x.Left, conj)
		}
		if coveredBy(conj, x.Left.Schema()) && o.push(x.Left, conj) {
			return true
		}
		if coveredBy(conj, x.Right.Schema()) && o.push(x.Right, conj) {
			return true
		}
		// Spans both sides: fold into the join condition (turns cross
		// products into equi-joins the executor can run as CrowdJoin).
		if coveredBy(conj, x.Schema()) {
			x.On = andExpr(x.On, conj)
			if x.Type == parser.JoinCross {
				x.Type = parser.JoinInner
			}
			return true
		}
	}
	return false
}

// pushToSide moves single-side ON conjuncts of inner joins down as filters.
func (o *optimizer) pushToSide(j *plan.Join, conj parser.Expr) bool {
	if coveredBy(conj, j.Left.Schema()) && o.push(j.Left, conj) {
		return true
	}
	if coveredBy(conj, j.Right.Schema()) && o.push(j.Right, conj) {
		return true
	}
	return false
}

func splitConjuncts(e parser.Expr) []parser.Expr {
	if be, ok := e.(*parser.BinaryExpr); ok && be.Op == "AND" {
		return append(splitConjuncts(be.L), splitConjuncts(be.R)...)
	}
	return []parser.Expr{e}
}

func joinConjuncts(es []parser.Expr) parser.Expr {
	var out parser.Expr
	for _, e := range es {
		out = andExpr(out, e)
	}
	return out
}

func andExpr(a, b parser.Expr) parser.Expr {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	default:
		return &parser.BinaryExpr{Op: "AND", L: a, R: b}
	}
}

// hasSubquery reports whether e contains an IN-subquery; those stay in
// Filter nodes where the executor can run them.
func hasSubquery(e parser.Expr) bool {
	found := false
	parser.WalkExprs(e, func(x parser.Expr) {
		if in, ok := x.(*parser.InExpr); ok && in.Sub != nil {
			found = true
		}
	})
	return found
}

// coveredBy reports whether every column reference in e resolves in schema.
func coveredBy(e parser.Expr, schema []plan.Col) bool {
	ok := true
	parser.WalkExprs(e, func(x parser.Expr) {
		if cr, isCol := x.(*parser.ColumnRef); isCol {
			if _, err := plan.FindCol(schema, cr.Table, cr.Name); err != nil {
				ok = false
			}
		}
	})
	return ok
}

// ---------------------------------------------------------------------------
// Rule 2: probe-key derivation

// deriveProbeKeys extracts `col = literal` bindings from scan filters: the
// keys CrowdProbe pre-fills when soliciting new tuples (§3.1) and the
// bindings the boundedness analysis accepts.
func (o *optimizer) deriveProbeKeys(n plan.Node) {
	if s, ok := n.(*plan.Scan); ok {
		if s.Filter != nil {
			for _, conj := range splitConjuncts(s.Filter) {
				if col, val, ok := equalityBinding(conj); ok {
					s.ProbeKeys[strings.ToLower(col)] = val
				}
			}
		}
		return
	}
	for _, c := range n.Children() {
		o.deriveProbeKeys(c)
	}
}

// equalityBinding matches `col = literal` (either order).
func equalityBinding(e parser.Expr) (string, sqltypes.Value, bool) {
	be, ok := e.(*parser.BinaryExpr)
	if !ok || be.Op != "=" {
		return "", sqltypes.Value{}, false
	}
	if cr, ok := be.L.(*parser.ColumnRef); ok {
		if lit, ok := be.R.(*parser.Literal); ok {
			return cr.Name, lit.Val, true
		}
	}
	if cr, ok := be.R.(*parser.ColumnRef); ok {
		if lit, ok := be.L.(*parser.Literal); ok {
			return cr.Name, lit.Val, true
		}
	}
	return "", sqltypes.Value{}, false
}

// ---------------------------------------------------------------------------
// Rule 3: join ordering

// reorderJoins rebuilds maximal inner/cross join chains left-deep by a
// greedy heuristic: start from the cheapest bounded input, repeatedly join
// the cheapest connected input, putting crowd tables late so they are
// probed with bound keys rather than enumerated (§3.2.2 "re-order the
// operators to minimize the requests against the crowd").
func (o *optimizer) reorderJoins(n plan.Node) plan.Node {
	switch x := n.(type) {
	case *plan.Join:
		if x.Type == parser.JoinLeft {
			x.Left = o.reorderJoins(x.Left)
			x.Right = o.reorderJoins(x.Right)
			return x
		}
		leaves, conjuncts := o.collectJoinTree(x)
		if len(leaves) < 2 {
			return x
		}
		for i := range leaves {
			leaves[i] = o.reorderJoins(leaves[i])
		}
		return o.orderJoinChain(leaves, conjuncts)
	case *plan.Filter:
		x.Input = o.reorderJoins(x.Input)
		return x
	case *plan.Project:
		x.Input = o.reorderJoins(x.Input)
		return x
	case *plan.Aggregate:
		x.Input = o.reorderJoins(x.Input)
		return x
	case *plan.Sort:
		x.Input = o.reorderJoins(x.Input)
		return x
	case *plan.Limit:
		x.Input = o.reorderJoins(x.Input)
		return x
	case *plan.Distinct:
		x.Input = o.reorderJoins(x.Input)
		return x
	default:
		return n
	}
}

// collectJoinTree flattens a chain of inner/cross joins into leaves and ON
// conjuncts.
func (o *optimizer) collectJoinTree(j *plan.Join) ([]plan.Node, []parser.Expr) {
	var leaves []plan.Node
	var conjs []parser.Expr
	var walk func(n plan.Node)
	walk = func(n plan.Node) {
		if jn, ok := n.(*plan.Join); ok && jn.Type != parser.JoinLeft {
			walk(jn.Left)
			walk(jn.Right)
			if jn.On != nil {
				conjs = append(conjs, splitConjuncts(jn.On)...)
			}
			return
		}
		leaves = append(leaves, n)
	}
	walk(j)
	return leaves, conjs
}

// leafCost ranks join inputs: bounded closed-world data is cheap, crowd
// tables without probe keys are effectively infinite.
func (o *optimizer) leafCost(n plan.Node) float64 {
	if s, ok := n.(*plan.Scan); ok {
		return o.scanCard(s)
	}
	// Non-scan leaf (e.g. a left join subtree): sum of its scans.
	cost := 1.0
	for _, c := range n.Children() {
		cost += o.leafCost(c)
	}
	return cost
}

// orderJoinChain rebuilds one flattened inner/cross join chain. The flat
// greedy heuristic is always computed (it is the deterministic baseline);
// with the cost model enabled and the chain small enough, a bounded DP
// enumeration of left-deep orders runs too and wins only when its
// predicted money×latency score is strictly better — ties keep the greedy
// plan, so existing workloads replay identically.
func (o *optimizer) orderJoinChain(leaves []plan.Node, conjuncts []parser.Expr) plan.Node {
	greedy, greedyCrosses := o.buildGreedy(leaves, conjuncts)
	chosen, crosses := greedy, greedyCrosses
	if !o.opts.DisableCostBased && len(leaves) <= dpMaxLeaves && len(conjuncts) <= dpMaxConjuncts {
		if dp, dpCrosses, ok := o.buildDP(leaves, conjuncts); ok {
			cm := newCostModel(o)
			if cm.score(dp) < cm.score(greedy)-scoreEpsilon {
				chosen, crosses = dp, dpCrosses
			}
		}
	}
	for _, cp := range crosses {
		o.warnf("cross product between %s and %s", describe(cp.left), describe(cp.right))
	}
	return chosen
}

// crossPair records a cross product a join-order builder introduced, in
// build order, so the chosen plan's warnings match the legacy ordering.
type crossPair struct{ left, right plan.Node }

func (o *optimizer) buildGreedy(leaves []plan.Node, conjuncts []parser.Expr) (plan.Node, []crossPair) {
	used := make([]bool, len(leaves))
	usedConj := make([]bool, len(conjuncts))
	var crosses []crossPair

	// Seed: cheapest leaf.
	best := 0
	for i := range leaves {
		if o.leafCost(leaves[i]) < o.leafCost(leaves[best]) {
			best = i
		}
	}
	cur := leaves[best]
	used[best] = true

	for remaining := len(leaves) - 1; remaining > 0; remaining-- {
		curSchema := cur.Schema()
		pick, pickCost, connectedPick := -1, math.Inf(1), false
		for i := range leaves {
			if used[i] {
				continue
			}
			connected := false
			joint := append(append([]plan.Col{}, curSchema...), leaves[i].Schema()...)
			for ci, conj := range conjuncts {
				if usedConj[ci] {
					continue
				}
				if coveredBy(conj, joint) && !coveredBy(conj, curSchema) && !coveredBy(conj, leaves[i].Schema()) {
					connected = true
					break
				}
			}
			cost := o.leafCost(leaves[i])
			// Prefer connected inputs; among equals, cheapest. Always take
			// the first candidate (costs may be +Inf for unbounded scans).
			if pick < 0 || (connected && !connectedPick) || (connected == connectedPick && cost < pickCost) {
				pick, pickCost, connectedPick = i, cost, connected
			}
		}
		next := leaves[pick]
		used[pick] = true
		joint := append(append([]plan.Col{}, curSchema...), next.Schema()...)
		var on parser.Expr
		for ci, conj := range conjuncts {
			if usedConj[ci] {
				continue
			}
			if coveredBy(conj, joint) {
				on = andExpr(on, conj)
				usedConj[ci] = true
			}
		}
		jt := parser.JoinInner
		if on == nil {
			jt = parser.JoinCross
			crosses = append(crosses, crossPair{left: cur, right: next})
		}
		cur = &plan.Join{Left: cur, Right: next, Type: jt, On: on}
	}
	return cur, crosses
}

func describe(n plan.Node) string {
	if s, ok := n.(*plan.Scan); ok {
		return s.Alias
	}
	return n.Explain()
}

// ---------------------------------------------------------------------------
// Rule 4: stop-after push-down

// pushLimits walks down from Limit nodes, carrying the bound through
// row-preserving Projects (exact) and through Sorts (as a crowd-acquisition
// bound only: stored rows still all participate in the sort, but the number
// of *new* crowd tuples solicited is capped — the paper's stop-after rule
// exists to bound crowd requests).
func (o *optimizer) pushLimits(n plan.Node, bound int64, exact bool) {
	switch x := n.(type) {
	case *plan.Limit:
		b := x.N
		if b >= 0 {
			b += x.Offset
		}
		o.pushLimits(x.Input, b, true)
	case *plan.Project:
		o.pushLimits(x.Input, bound, exact)
	case *plan.Sort:
		o.pushLimits(x.Input, bound, false)
	case *plan.Scan:
		if bound < 0 {
			return
		}
		if x.Table.Crowd || x.Table.HasCrowdColumns() {
			// Acquisition bound: cap crowd solicitation.
			if x.StopAfter < 0 || bound < x.StopAfter {
				x.StopAfter = bound
			}
		} else if exact {
			if x.StopAfter < 0 || bound < x.StopAfter {
				x.StopAfter = bound
			}
		}
	default:
		// Filters, joins, aggregates, distinct: pushing a bound through
		// would under-produce; recurse without a bound.
		for _, c := range n.Children() {
			o.pushLimits(c, -1, false)
		}
	}
}

// ---------------------------------------------------------------------------
// Rule 5: boundedness analysis and cardinality annotation

func (o *optimizer) scanCard(s *plan.Scan) float64 {
	stored := float64(s.Table.RowCount())
	if stored < 1 {
		stored = 1
	}
	sel := 1.0
	if s.Filter != nil {
		sel = 0.33
		for col := range s.ProbeKeys {
			for _, pk := range s.Table.PrimaryKey {
				if strings.EqualFold(pk, col) && len(s.Table.PrimaryKey) == 1 {
					sel = 1 / stored
				}
			}
		}
	}
	card := stored * sel
	if s.Table.Crowd {
		switch {
		case len(s.ProbeKeys) > 0:
			card += float64(s.Table.ExpectedCrowdCard())
		case s.StopAfter >= 0:
			card += float64(s.StopAfter)
		default:
			return math.Inf(1)
		}
	}
	if card < 1 {
		card = 1
	}
	return card
}

// annotate computes cardinalities bottom-up and records unbounded crowd
// access warnings. Returns whether n is bounded.
func (o *optimizer) annotate(n plan.Node, res *Result) bool {
	bounded := true
	var card float64
	switch x := n.(type) {
	case *plan.Scan:
		card = o.scanCard(x)
		if math.IsInf(card, 1) {
			bounded = false
			o.warnScan(x, "scan of CROWD table %s is unbounded: add a key predicate or LIMIT", x.Alias)
			card = float64(x.Table.RowCount()) + 1 // stored-only fallback card
		}
	case *plan.Join:
		lb := o.annotate(x.Left, res)
		rb := o.annotate(x.Right, res)
		lc, rc := res.Cards[x.Left], res.Cards[x.Right]
		bounded = lb && rb
		// CrowdJoin rescue: an unbounded crowd inner whose key is bound by
		// the join condition becomes bounded per outer tuple (§3.2.1).
		if lb && !rb {
			if s, ok := x.Right.(*plan.Scan); ok && s.Table.Crowd && o.joinBindsScan(x, s) {
				bounded = true
				rc = float64(s.Table.ExpectedCrowdCard())
				// Retract the unbounded warning the inner scan just logged.
				o.dropScanWarning(s)
			}
		}
		sel := 1.0
		if x.On != nil {
			sel = 0.1
		}
		card = lc * rc * sel
	case *plan.Filter:
		bounded = o.annotate(x.Input, res)
		card = res.Cards[x.Input] * 0.33
	case *plan.Project:
		bounded = o.annotate(x.Input, res)
		card = res.Cards[x.Input]
	case *plan.Aggregate:
		bounded = o.annotate(x.Input, res)
		card = res.Cards[x.Input] * 0.1
	case *plan.Sort:
		bounded = o.annotate(x.Input, res)
		card = res.Cards[x.Input]
	case *plan.Distinct:
		bounded = o.annotate(x.Input, res)
		card = res.Cards[x.Input] * 0.7
	case *plan.Limit:
		bounded = o.annotate(x.Input, res)
		card = res.Cards[x.Input]
		if x.N >= 0 && float64(x.N) < card {
			card = float64(x.N)
		}
	}
	if card < 1 {
		card = 1
	}
	res.Cards[n] = card
	return bounded
}

// joinBindsScan reports whether the join condition equates some column of
// the crowd scan with a column of the other side (an index-nested-loop /
// CrowdJoin binding).
func (o *optimizer) joinBindsScan(j *plan.Join, s *plan.Scan) bool {
	if j.On == nil {
		return false
	}
	other := j.Left.Schema()
	for _, conj := range splitConjuncts(j.On) {
		be, ok := conj.(*parser.BinaryExpr)
		if !ok || be.Op != "=" {
			continue
		}
		lc, lok := be.L.(*parser.ColumnRef)
		rc, rok := be.R.(*parser.ColumnRef)
		if !lok || !rok {
			continue
		}
		inScan := func(c *parser.ColumnRef) bool {
			_, err := plan.FindCol(s.Schema(), c.Table, c.Name)
			return err == nil
		}
		inOther := func(c *parser.ColumnRef) bool {
			_, err := plan.FindCol(other, c.Table, c.Name)
			return err == nil
		}
		if (inScan(lc) && inOther(rc)) || (inScan(rc) && inOther(lc)) {
			return true
		}
	}
	return false
}
