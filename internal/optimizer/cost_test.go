package optimizer

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"crowddb/internal/catalog"
	"crowddb/internal/plan"
	"crowddb/internal/sqltypes"
)

// scoreOf prices an optimized plan with a fresh cost model at the given
// inputs (white-box: the DP's ranking function).
func scoreOf(cat *catalog.Catalog, root plan.Node, in CostInputs) float64 {
	o := &optimizer{cat: cat, opts: Options{Cost: in.normalized()}}
	return newCostModel(o).score(root)
}

func TestCostInputsNormalized(t *testing.T) {
	ci := CostInputs{}.normalized()
	if ci != DefaultCostInputs() {
		t.Errorf("zero value must normalize to defaults: %+v", ci)
	}
	ci = CostInputs{CacheHitRate: 2}.normalized()
	if ci.CacheHitRate != 0.95 {
		t.Errorf("hit rate must clamp below 1: %v", ci.CacheHitRate)
	}
}

// TestProbeCostFormula pins CROWDPROBE pricing: cents = probe rows ×
// reward × assignments, one crowd round of latency.
func TestProbeCostFormula(t *testing.T) {
	cat := testCatalog(t)
	talk, _ := cat.Table("Talk")
	talk.ResetCNullCounts()
	talk.AdjustCNull("abstract", 100) // all 100 stored abstracts open
	in := DefaultCostInputs()
	res := optimize(t, cat, `SELECT abstract FROM Talk`, Options{Cost: in})
	// 100 stored rows, no filter: 100 probe HITs at 2¢ × 3 assignments.
	want := 100 * in.RewardCents * in.CompareAssignments
	if res.Predicted.Cents != want {
		t.Errorf("probe cents: got %v want %v", res.Predicted.Cents, want)
	}
	if res.Predicted.Seconds != in.RoundTripSeconds {
		t.Errorf("probe latency: got %v want one round trip %v", res.Predicted.Seconds, in.RoundTripSeconds)
	}
}

// TestProbeCostCappedByOutstandingCNulls: answered columns are never
// re-bought, and the prediction knows it.
func TestProbeCostCappedByOutstandingCNulls(t *testing.T) {
	cat := testCatalog(t)
	talk, _ := cat.Table("Talk")
	talk.ResetCNullCounts()
	talk.AdjustCNull("abstract", 10) // 90 of 100 already memorized
	in := DefaultCostInputs()
	res := optimize(t, cat, `SELECT abstract FROM Talk`, Options{Cost: in})
	want := 10 * in.RewardCents * in.CompareAssignments
	if res.Predicted.Cents != want {
		t.Errorf("probe cents: got %v want %v", res.Predicted.Cents, want)
	}
}

// TestCrowdEqualCostDiscountedByHitRate pins the CROWDEQUAL formula:
// comparisons × (1 − cache hit rate) × reward × assignments.
func TestCrowdEqualCostDiscountedByHitRate(t *testing.T) {
	cat := testCatalog(t)
	cold := DefaultCostInputs()
	warm := cold
	warm.CacheHitRate = 0.5
	q := `SELECT title FROM Talk WHERE title ~= 'crowd db'`
	costCold := optimize(t, cat, q, Options{Cost: cold}).Predicted.Cents
	costWarm := optimize(t, cat, q, Options{Cost: warm}).Predicted.Cents
	if costCold <= 0 {
		t.Fatalf("crowd filter must cost: %v", costCold)
	}
	if math.Abs(costWarm-costCold/2) > 1e-9 {
		t.Errorf("50%% hit rate must halve compare cents: cold %v warm %v", costCold, costWarm)
	}
}

// TestCrowdOrderCostFormula pins the CROWDORDER sort: n × ceil(log2 n)
// comparisons, ceil(log2 n) crowd rounds of latency.
func TestCrowdOrderCostFormula(t *testing.T) {
	cat := testCatalog(t)
	in := DefaultCostInputs()
	res := optimize(t, cat, `SELECT title FROM Talk ORDER BY CROWDORDER(title, 'better?')`, Options{Cost: in})
	n, rounds := 100.0, math.Ceil(math.Log2(100))
	want := n * rounds * in.RewardCents * in.CompareAssignments
	if res.Predicted.Cents != want {
		t.Errorf("order cents: got %v want %v", res.Predicted.Cents, want)
	}
	if res.Predicted.Seconds < rounds*in.RoundTripSeconds {
		t.Errorf("order latency: got %v want >= %v rounds", res.Predicted.Seconds, rounds)
	}
}

// TestCrowdJoinSolicitationCost pins the CrowdJoin formula: outer keys ×
// expected fan-out × reward × tuple replication.
func TestCrowdJoinSolicitationCost(t *testing.T) {
	cat := testCatalog(t)
	in := DefaultCostInputs()
	res := optimize(t, cat,
		`SELECT t.title, n.name FROM Talk t JOIN NotableAttendee n ON n.title = t.title`, Options{Cost: in})
	// 100 outer keys, fan-out 3 minus 0.05 stored per key: 295 tuples at
	// reward × tuple assignments.
	want := 100 * (3 - 5.0/100) * in.RewardCents * in.TupleAssignments
	if math.Abs(res.Predicted.Cents-want) > 1e-9 {
		t.Errorf("join solicit cents: got %v want %v", res.Predicted.Cents, want)
	}
}

// TestObservedSelectivityFeedsPrediction: the runtime feedback loop makes
// repeated workloads converge on measured selectivities.
func TestObservedSelectivityFeedsPrediction(t *testing.T) {
	cat := testCatalog(t)
	talk, _ := cat.Table("Talk")
	talk.ResetCNullCounts()
	talk.AdjustCNull("abstract", 100)
	in := DefaultCostInputs()
	q := `SELECT abstract FROM Talk WHERE nb_attendees > 10`
	before := optimize(t, cat, q, Options{Cost: in}).Predicted
	talk.ObserveFilter(100, 5) // measured: predicate keeps 5%
	after := optimize(t, cat, q, Options{Cost: in}).Predicted
	if after.Cents >= before.Cents {
		t.Errorf("observed 5%% selectivity must shrink the probe forecast: %v -> %v", before.Cents, after.Cents)
	}
}

// TestFilterPhaseOrdering: the optimizer splits a mixed cheap/crowd
// condition so the executor prunes before paying; the ablation flag
// restores the flat behavior.
func TestFilterPhaseOrdering(t *testing.T) {
	cat := testCatalog(t)
	// An IN-subquery conjunct is unpushable and shares the filter with
	// the crowd predicate.
	q := `SELECT title FROM Talk WHERE title ~= 'x' AND title IN (SELECT rtitle FROM Room)`
	res := optimize(t, cat, q, Options{})
	f := findFilter(res.Root)
	if f == nil {
		t.Fatal("no filter in plan")
	}
	if f.Pre == nil || !strings.Contains(f.Pre.String(), "IN") {
		t.Errorf("cheap conjunct must become the pre phase: %v", f.Pre)
	}
	res = optimize(t, cat, q, Options{DisableCostBased: true})
	if f := findFilter(res.Root); f == nil || f.Pre != nil {
		t.Errorf("ablation must not split phases: %+v", f)
	}
}

func findFilter(n plan.Node) *plan.Filter {
	if f, ok := n.(*plan.Filter); ok {
		return f
	}
	for _, c := range n.Children() {
		if f := findFilter(c); f != nil {
			return f
		}
	}
	return nil
}

// TestExplainCostsPopulated: every node gets a cost annotation and the
// root total is finite for a bounded plan.
func TestExplainCostsPopulated(t *testing.T) {
	cat := testCatalog(t)
	res := optimize(t, cat, `SELECT abstract FROM Talk WHERE title = 'CrowdDB'`, Options{})
	if len(res.Costs) == 0 {
		t.Fatal("no cost annotations")
	}
	if _, ok := res.Costs[res.Root]; !ok {
		t.Error("root must be costed")
	}
	if res.Predicted.IsUnbounded() {
		t.Errorf("bounded plan must have finite predicted cost: %v", res.Predicted)
	}
}

// TestDPNeverCostsMoreThanGreedy is the property test: over random
// schemas and join graphs, the cost-based plan's score is never worse
// than the flat greedy heuristic's (ties fall back to greedy exactly).
func TestDPNeverCostsMoreThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := DefaultCostInputs()
	for trial := 0; trial < 60; trial++ {
		cat := catalog.New()
		nTables := 3 + rng.Intn(4) // 3..6
		crowdIdx := -1
		if rng.Intn(2) == 0 {
			crowdIdx = rng.Intn(nTables)
		}
		for i := 0; i < nTables; i++ {
			tab := &catalog.Table{
				Name:  fmt.Sprintf("T%d", i),
				Crowd: i == crowdIdx,
				Columns: []catalog.Column{
					{Name: fmt.Sprintf("k%d", i), Type: sqltypes.TypeString, PrimaryKey: true},
					{Name: "x", Type: sqltypes.TypeInt},
				},
			}
			if err := cat.CreateTable(tab); err != nil {
				t.Fatal(err)
			}
			tab.SetRowCount(int64(1 + rng.Intn(200)))
		}
		// Random connected-ish join graph: each table i>0 joins a random
		// earlier table with some probability, on key columns.
		var conds []string
		for i := 1; i < nTables; i++ {
			if rng.Intn(4) == 0 {
				continue // leave some tables unconnected (cross products)
			}
			j := rng.Intn(i)
			conds = append(conds, fmt.Sprintf("t%d.k%d = t%d.k%d", i, i, j, j))
		}
		var from []string
		for i := 0; i < nTables; i++ {
			from = append(from, fmt.Sprintf("T%d t%d", i, i))
		}
		sql := "SELECT t0.x FROM " + strings.Join(from, ", ")
		if len(conds) > 0 {
			sql += " WHERE " + strings.Join(conds, " AND ")
		}
		opts := Options{AllowUnbounded: true, Cost: in}
		costBased := optimize(t, cat, sql, opts)
		flatOpts := opts
		flatOpts.DisableCostBased = true
		greedy := optimize(t, cat, sql, flatOpts)
		cbScore := scoreOf(cat, costBased.Root, in)
		gScore := scoreOf(cat, greedy.Root, in)
		if cbScore > gScore+1e-6 && !math.IsInf(gScore, 1) {
			t.Errorf("trial %d (%s): cost-based plan scored worse: %v > greedy %v\ncb:\n%s\ngreedy:\n%s",
				trial, sql, cbScore, gScore,
				plan.ExplainTree(costBased.Root), plan.ExplainTree(greedy.Root))
		}
	}
}

// TestRescuedWarningSurvivesReordering is the warning-ordering regression
// test: a chain containing both a cross product and a rescued crowd join
// must keep the cross-product warning and retract exactly the rescued
// scan's unbounded warning.
func TestRescuedWarningSurvivesReordering(t *testing.T) {
	cat := testCatalog(t)
	res := optimize(t, cat,
		`SELECT t.title FROM Room r, Talk t, NotableAttendee n WHERE n.title = t.title`, Options{})
	if !res.Bounded {
		t.Fatalf("join binding must bound the crowd inner: %v", res.Warnings)
	}
	crosses, unbounded := 0, 0
	for _, w := range res.Warnings {
		if strings.Contains(w, "cross product") {
			crosses++
		}
		if strings.Contains(w, "unbounded") {
			unbounded++
		}
	}
	if crosses != 1 || unbounded != 0 {
		t.Errorf("want exactly the cross-product warning, got %v", res.Warnings)
	}
}

// TestRescueDropsOnlyOwnWarning: with two scans of the same crowd table
// (prefix aliases n / n2), rescuing one must not eat the other's warning.
func TestRescueDropsOnlyOwnWarning(t *testing.T) {
	cat := testCatalog(t)
	res := optimize(t, cat,
		`SELECT t.title FROM Talk t JOIN NotableAttendee n ON n.title = t.title, NotableAttendee n2`,
		Options{AllowUnbounded: true})
	if res.Bounded {
		t.Fatal("n2 is unbounded")
	}
	sawN2, sawN := false, false
	for _, w := range res.Warnings {
		if strings.Contains(w, "CROWD table n2 ") {
			sawN2 = true
		}
		if strings.Contains(w, "CROWD table n ") {
			sawN = true
		}
	}
	if !sawN2 || sawN {
		t.Errorf("only n2's warning must survive: %v", res.Warnings)
	}
}
