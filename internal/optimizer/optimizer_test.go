package optimizer

import (
	"strings"
	"testing"

	"crowddb/internal/catalog"
	"crowddb/internal/parser"
	"crowddb/internal/plan"
	"crowddb/internal/sqltypes"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, tab := range []*catalog.Table{
		{
			Name: "Talk",
			Columns: []catalog.Column{
				{Name: "title", Type: sqltypes.TypeString, PrimaryKey: true},
				{Name: "abstract", Type: sqltypes.TypeString, Crowd: true},
				{Name: "nb_attendees", Type: sqltypes.TypeInt, Crowd: true},
			},
		},
		{
			Name:  "NotableAttendee",
			Crowd: true,
			Columns: []catalog.Column{
				{Name: "name", Type: sqltypes.TypeString, PrimaryKey: true},
				{Name: "title", Type: sqltypes.TypeString},
			},
			ForeignKeys: []catalog.ForeignKey{{Columns: []string{"title"}, RefTable: "Talk", RefColumns: []string{"title"}}},
		},
		{
			Name: "Room",
			Columns: []catalog.Column{
				{Name: "rtitle", Type: sqltypes.TypeString, PrimaryKey: true},
				{Name: "capacity", Type: sqltypes.TypeInt},
			},
		},
	} {
		if err := cat.CreateTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	if tab, ok := cat.Table("Talk"); ok {
		tab.SetRowCount(100)
	}
	if tab, ok := cat.Table("NotableAttendee"); ok {
		tab.SetRowCount(5)
	}
	if tab, ok := cat.Table("Room"); ok {
		tab.SetRowCount(10)
	}
	return cat
}

func optimize(t *testing.T, cat *catalog.Catalog, sql string, opts Options) *Result {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	root, err := plan.Build(stmt.(*parser.Select), cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(root, cat, opts)
	if err != nil {
		t.Fatalf("Optimize(%q): %v", sql, err)
	}
	return res
}

func findScan(n plan.Node, table string) *plan.Scan {
	if s, ok := n.(*plan.Scan); ok {
		if strings.EqualFold(s.Table.Name, table) {
			return s
		}
		return nil
	}
	for _, c := range n.Children() {
		if s := findScan(c, table); s != nil {
			return s
		}
	}
	return nil
}

func TestPredicatePushdown(t *testing.T) {
	cat := testCatalog(t)
	res := optimize(t, cat, `SELECT abstract FROM Talk WHERE title = 'CrowdDB'`, Options{})
	scan := findScan(res.Root, "Talk")
	if scan.Filter == nil {
		t.Fatal("predicate must be pushed into the scan")
	}
	// No Filter node should remain.
	if strings.Contains(plan.ExplainTree(res.Root), "Filter(") {
		t.Errorf("residual filter:\n%s", plan.ExplainTree(res.Root))
	}
	// Probe key derived from the equality.
	if v, ok := scan.ProbeKeys["title"]; !ok || v.Str() != "CrowdDB" {
		t.Errorf("probe keys: %v", scan.ProbeKeys)
	}
}

func TestCrowdPredicateNotPushed(t *testing.T) {
	cat := testCatalog(t)
	res := optimize(t, cat, `SELECT title FROM Talk WHERE title ~= 'crowd db' AND nb_attendees > 10`, Options{})
	out := plan.ExplainTree(res.Root)
	if !strings.Contains(out, "CrowdFilter") {
		t.Errorf("crowd predicate must stay in a CrowdFilter:\n%s", out)
	}
	scan := findScan(res.Root, "Talk")
	if scan.Filter == nil || !strings.Contains(scan.Filter.String(), "nb_attendees") {
		t.Errorf("plain predicate must still push: %v", scan.Filter)
	}
}

func TestJoinConditionPushdownFromWhere(t *testing.T) {
	cat := testCatalog(t)
	// Comma join with WHERE equality: pushdown converts it to an inner join.
	res := optimize(t, cat, `SELECT t.title FROM Talk t, Room r WHERE r.rtitle = t.title AND r.capacity > 5`, Options{})
	out := plan.ExplainTree(res.Root)
	if !strings.Contains(out, "InnerJoin") {
		t.Errorf("cross join must become inner join:\n%s", out)
	}
	room := findScan(res.Root, "Room")
	if room.Filter == nil {
		t.Error("capacity predicate must push to Room scan")
	}
}

func TestStopAfterPushdown(t *testing.T) {
	cat := testCatalog(t)
	res := optimize(t, cat, `SELECT title FROM Talk LIMIT 7`, Options{})
	scan := findScan(res.Root, "Talk")
	if scan.StopAfter != 7 {
		t.Errorf("stopafter: %d", scan.StopAfter)
	}
	// Through a crowd sort the bound still caps crowd acquisition.
	res = optimize(t, cat, `SELECT name FROM NotableAttendee ORDER BY CROWDORDER(name, 'better?') LIMIT 10`, Options{})
	scan = findScan(res.Root, "NotableAttendee")
	if scan.StopAfter != 10 {
		t.Errorf("acquisition bound through sort: %d", scan.StopAfter)
	}
	if !res.Bounded {
		t.Error("limit must bound the crowd table")
	}
}

func TestStopAfterNotPushedThroughFilterForStoredTables(t *testing.T) {
	cat := testCatalog(t)
	res := optimize(t, cat, `SELECT rtitle FROM Room WHERE capacity > 3 LIMIT 2`, Options{})
	scan := findScan(res.Root, "Room")
	// The predicate pushed into the scan; the limit may then apply to the
	// filtered scan output, which is safe. What must NOT happen is losing
	// rows: the Limit node must still exist at the top.
	if _, ok := res.Root.(*plan.Limit); !ok {
		t.Errorf("limit node must remain at root: %T", res.Root)
	}
	_ = scan
}

func TestUnboundedCrowdScanRejected(t *testing.T) {
	cat := testCatalog(t)
	stmt, _ := parser.Parse(`SELECT name FROM NotableAttendee`)
	root, err := plan.Build(stmt.(*parser.Select), cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Optimize(root, cat, Options{}); err == nil {
		t.Fatal("unbounded crowd scan must be rejected")
	}
	res, err := Optimize(root, cat, Options{AllowUnbounded: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bounded || len(res.Warnings) == 0 {
		t.Errorf("AllowUnbounded must warn: %+v", res.Warnings)
	}
}

func TestBoundedByProbeKey(t *testing.T) {
	cat := testCatalog(t)
	res := optimize(t, cat, `SELECT name FROM NotableAttendee WHERE title = 'CrowdDB'`, Options{})
	if !res.Bounded {
		t.Errorf("key predicate must bound the crowd scan: %v", res.Warnings)
	}
}

func TestCrowdJoinBoundsInner(t *testing.T) {
	cat := testCatalog(t)
	res := optimize(t, cat,
		`SELECT t.title, n.name FROM Talk t JOIN NotableAttendee n ON n.title = t.title`, Options{})
	if !res.Bounded {
		t.Errorf("join binding must bound the crowd inner: %v", res.Warnings)
	}
	if len(res.Warnings) != 0 {
		t.Errorf("no warnings expected: %v", res.Warnings)
	}
}

func TestJoinReorderPutsCrowdTableInner(t *testing.T) {
	cat := testCatalog(t)
	// Written with the crowd table first; the optimizer must reorder so the
	// bounded Talk side drives the probe.
	res := optimize(t, cat,
		`SELECT t.title, n.name FROM NotableAttendee n JOIN Talk t ON n.title = t.title`, Options{})
	j := topJoin(res.Root)
	if j == nil {
		t.Fatal("no join in plan")
	}
	if s, ok := j.Right.(*plan.Scan); !ok || !s.Table.Crowd {
		t.Errorf("crowd table must be the join inner:\n%s", plan.ExplainTree(res.Root))
	}
	if !res.Bounded {
		t.Errorf("reordered join must be bounded: %v", res.Warnings)
	}
}

func topJoin(n plan.Node) *plan.Join {
	if j, ok := n.(*plan.Join); ok {
		return j
	}
	for _, c := range n.Children() {
		if j := topJoin(c); j != nil {
			return j
		}
	}
	return nil
}

func TestJoinReorderThreeWay(t *testing.T) {
	cat := testCatalog(t)
	res := optimize(t, cat,
		`SELECT t.title FROM NotableAttendee n, Talk t, Room r WHERE n.title = t.title AND r.rtitle = t.title`, Options{})
	// Greedy order: Room (10 rows) or Talk (100) first, crowd table last.
	j := res.Root
	for {
		ch := j.Children()
		if len(ch) == 0 {
			break
		}
		if jn, ok := j.(*plan.Join); ok {
			if s, ok := jn.Right.(*plan.Scan); ok && s.Table.Crowd {
				if !res.Bounded {
					t.Errorf("bounded expected: %v", res.Warnings)
				}
				return
			}
		}
		j = ch[0]
	}
	t.Errorf("crowd table must end up innermost:\n%s", plan.ExplainTree(res.Root))
}

func TestCrossProductWarning(t *testing.T) {
	cat := testCatalog(t)
	res := optimize(t, cat, `SELECT t.title FROM Talk t, Room r`, Options{})
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "cross product") {
			found = true
		}
	}
	if !found {
		t.Errorf("cross product must warn: %v", res.Warnings)
	}
}

func TestAblationOptions(t *testing.T) {
	cat := testCatalog(t)
	res := optimize(t, cat, `SELECT abstract FROM Talk WHERE title = 'CrowdDB'`,
		Options{DisablePushdown: true})
	scan := findScan(res.Root, "Talk")
	if scan.Filter != nil {
		t.Error("pushdown disabled but filter moved")
	}
	res = optimize(t, cat, `SELECT title FROM Talk LIMIT 7`, Options{DisableStopAfter: true})
	scan = findScan(res.Root, "Talk")
	if scan.StopAfter >= 0 {
		t.Error("stopafter disabled but bound pushed")
	}
	res = optimize(t, cat,
		`SELECT t.title FROM NotableAttendee n JOIN Talk t ON n.title = t.title`,
		Options{DisableJoinReorder: true, AllowUnbounded: true})
	j := topJoin(res.Root)
	if s, ok := j.Left.(*plan.Scan); !ok || !s.Table.Crowd {
		t.Error("reorder disabled but crowd table moved")
	}
}

func TestCardinalityAnnotations(t *testing.T) {
	cat := testCatalog(t)
	res := optimize(t, cat, `SELECT title FROM Talk WHERE title = 'X'`, Options{})
	if len(res.Cards) == 0 {
		t.Fatal("no cardinality annotations")
	}
	scan := findScan(res.Root, "Talk")
	if res.Cards[scan] > 2 {
		t.Errorf("PK equality should predict ~1 row, got %f", res.Cards[scan])
	}
}
