package sqltypes

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseType(t *testing.T) {
	cases := map[string]Type{
		"STRING": TypeString, "varchar": TypeString, "Text": TypeString,
		"INT": TypeInt, "integer": TypeInt, "BIGINT": TypeInt,
		"FLOAT": TypeFloat, "double": TypeFloat,
		"BOOL": TypeBool, "Boolean": TypeBool,
	}
	for in, want := range cases {
		got, err := ParseType(in)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseType("BLOB"); err == nil {
		t.Error("ParseType(BLOB) should fail")
	}
}

func TestNullAndCNullDistinct(t *testing.T) {
	n, c := Null(), CNull()
	if !n.IsNull() || n.IsCNull() {
		t.Error("Null() misclassified")
	}
	if !c.IsCNull() || c.IsNull() {
		t.Error("CNull() misclassified")
	}
	if !n.IsUnknown() || !c.IsUnknown() {
		t.Error("both NULL and CNULL must be unknown")
	}
	if Identical(n, c) {
		t.Error("NULL and CNULL must not be Identical")
	}
	if Equal(n, n) || Equal(c, c) {
		t.Error("unknowns are never Equal under SQL semantics")
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	c, ok := Compare(NewInt(3), NewFloat(3.0))
	if !ok || c != 0 {
		t.Errorf("3 vs 3.0: got %d,%v", c, ok)
	}
	c, ok = Compare(NewInt(3), NewFloat(3.5))
	if !ok || c >= 0 {
		t.Errorf("3 vs 3.5: got %d,%v", c, ok)
	}
	if _, ok := Compare(NewInt(1), NewString("1")); ok {
		t.Error("int vs string must be incomparable")
	}
}

func TestCoerce(t *testing.T) {
	v, err := NewString(" 42 ").Coerce(TypeInt)
	if err != nil || v.Int() != 42 {
		t.Errorf("coerce ' 42 '->int: %v %v", v, err)
	}
	v, err = NewFloat(2).Coerce(TypeInt)
	if err != nil || v.Int() != 2 {
		t.Errorf("coerce 2.0->int: %v %v", v, err)
	}
	if _, err = NewFloat(2.5).Coerce(TypeInt); err == nil {
		t.Error("coerce 2.5->int must fail")
	}
	v, err = NewString("yes").Coerce(TypeBool)
	if err != nil || !v.Bool() {
		t.Errorf("coerce yes->bool: %v %v", v, err)
	}
	v, err = CNull().Coerce(TypeInt)
	if err != nil || !v.IsCNull() {
		t.Errorf("CNULL must coerce to any type unchanged: %v %v", v, err)
	}
}

func TestSQLLiteralQuoting(t *testing.T) {
	got := NewString("it's").SQLLiteral()
	if got != "'it''s'" {
		t.Errorf("SQLLiteral quoting: %q", got)
	}
	if NewInt(7).SQLLiteral() != "7" {
		t.Error("int literal")
	}
}

// SortCompare must be a total order: antisymmetric, transitive via sort, and
// NULL < CNULL < everything.
func TestSortCompareTotalOrder(t *testing.T) {
	vals := []Value{
		Null(), CNull(), NewBool(false), NewBool(true),
		NewInt(-5), NewInt(0), NewFloat(0.5), NewInt(2), NewFloat(math.Inf(1)),
		NewString(""), NewString("a"), NewString("b"),
	}
	sort.Slice(vals, func(i, j int) bool { return SortCompare(vals[i], vals[j]) < 0 })
	if !vals[0].IsNull() || !vals[1].IsCNull() {
		t.Fatalf("NULL then CNULL must sort first: %v", vals[:3])
	}
	for i := 0; i < len(vals); i++ {
		for j := 0; j < len(vals); j++ {
			a, b := SortCompare(vals[i], vals[j]), SortCompare(vals[j], vals[i])
			if (a < 0) != (b > 0) || (a == 0) != (b == 0) {
				t.Fatalf("antisymmetry violated for %v vs %v", vals[i], vals[j])
			}
		}
	}
}

func TestEncodeKeyOrderPreservingInts(t *testing.T) {
	check := func(a, b int64) bool {
		ka, kb := EncodeKey(NewInt(a)), EncodeKey(NewInt(b))
		want := 0
		switch {
		case a < b:
			want = -1
		case a > b:
			want = 1
		}
		return strings.Compare(ka, kb) == want
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeKeyOrderPreservingFloats(t *testing.T) {
	check := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka, kb := EncodeKey(NewFloat(a)), EncodeKey(NewFloat(b))
		want := 0
		switch {
		case a < b:
			want = -1
		case a > b:
			want = 1
		}
		return strings.Compare(ka, kb) == want
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeKeyOrderPreservingStrings(t *testing.T) {
	check := func(a, b string) bool {
		return strings.Compare(EncodeKey(NewString(a)), EncodeKey(NewString(b))) ==
			strings.Compare(a, b)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: SortCompare agrees with EncodeKey byte order for same-type values.
func TestSortCompareAgreesWithEncodeKey(t *testing.T) {
	check := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		sc := SortCompare(va, vb)
		kc := strings.Compare(EncodeKey(va), EncodeKey(vb))
		return (sc < 0) == (kc < 0) && (sc == 0) == (kc == 0)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestValueStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{CNull(), "CNULL"},
		{NewInt(42), "42"},
		{NewFloat(1.5), "1.5"},
		{NewBool(true), "TRUE"},
		{NewString("hi"), "hi"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q want %q", c.v.Kind(), got, c.want)
		}
	}
}
