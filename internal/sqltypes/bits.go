package sqltypes

import "math"

// mathFloat64bits is split out so the key-encoding code reads without the
// math import cluttering value.go.
func mathFloat64bits(f float64) uint64 { return math.Float64bits(f) }
