// Package sqltypes defines the value model of CrowdDB: the SQL scalar
// types, the standard NULL value, and the CrowdSQL-specific CNULL value.
//
// CNULL is the crowd equivalent of NULL (paper §2.1): it marks a value that
// is unknown *and should be crowdsourced when first used*. NULL and CNULL
// are distinct: NULL means "known to be absent", CNULL means "ask the crowd".
// Both compare as SQL unknowns in predicates, but the executor intercepts
// CNULL before predicate evaluation and triggers a CrowdProbe.
package sqltypes

import (
	"fmt"
	"strconv"
	"strings"
)

// Type enumerates the SQL scalar types CrowdDB supports.
type Type int

// The supported column types. TypeAny is used internally for expressions
// whose type is not known until runtime (e.g. bare CNULL literals).
const (
	TypeAny Type = iota
	TypeString
	TypeInt
	TypeFloat
	TypeBool
)

// String returns the DDL spelling of the type.
func (t Type) String() string {
	switch t {
	case TypeString:
		return "STRING"
	case TypeInt:
		return "INTEGER"
	case TypeFloat:
		return "FLOAT"
	case TypeBool:
		return "BOOLEAN"
	default:
		return "ANY"
	}
}

// ParseType converts a DDL type name to a Type. It accepts the synonyms H2
// (and therefore CrowdDB's prototype) accepted: VARCHAR/TEXT/STRING,
// INT/INTEGER/BIGINT, FLOAT/DOUBLE/REAL, BOOL/BOOLEAN.
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(s) {
	case "STRING", "VARCHAR", "TEXT", "CHAR":
		return TypeString, nil
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return TypeInt, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		return TypeFloat, nil
	case "BOOL", "BOOLEAN":
		return TypeBool, nil
	default:
		return TypeAny, fmt.Errorf("sqltypes: unknown type %q", s)
	}
}

// Kind discriminates the runtime representation of a Value.
type Kind int

// Value kinds. KindNull is the SQL NULL; KindCNull is CrowdSQL's CNULL.
const (
	KindNull Kind = iota
	KindCNull
	KindString
	KindInt
	KindFloat
	KindBool
)

// Value is a runtime SQL value. The zero Value is NULL.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
	b    bool
}

// Constructors.

// Null returns the SQL NULL value.
func Null() Value { return Value{kind: KindNull} }

// CNull returns the CrowdSQL CNULL value ("crowdsource me on first use").
func CNull() Value { return Value{kind: KindCNull} }

// NewString returns a STRING value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// NewInt returns an INTEGER value.
func NewInt(i int64) Value { return Value{kind: KindInt, i: i} }

// NewFloat returns a FLOAT value.
func NewFloat(f float64) Value { return Value{kind: KindFloat, f: f} }

// NewBool returns a BOOLEAN value.
func NewBool(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind returns the runtime kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsCNull reports whether v is the CrowdSQL CNULL.
func (v Value) IsCNull() bool { return v.kind == KindCNull }

// IsUnknown reports whether v is NULL or CNULL (three-valued logic unknown).
func (v Value) IsUnknown() bool { return v.kind == KindNull || v.kind == KindCNull }

// Str returns the string payload. It is only meaningful for KindString.
func (v Value) Str() string { return v.s }

// Int returns the integer payload. It is only meaningful for KindInt.
func (v Value) Int() int64 { return v.i }

// Float returns the float payload, coercing from int if needed.
func (v Value) Float() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// Bool returns the boolean payload. It is only meaningful for KindBool.
func (v Value) Bool() bool { return v.b }

// TypeOf returns the schema type a value naturally carries.
func (v Value) TypeOf() Type {
	switch v.kind {
	case KindString:
		return TypeString
	case KindInt:
		return TypeInt
	case KindFloat:
		return TypeFloat
	case KindBool:
		return TypeBool
	default:
		return TypeAny
	}
}

// String renders the value the way the REPL and test goldens print it.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindCNull:
		return "CNULL"
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "?"
	}
}

// SQLLiteral renders the value as a CrowdSQL literal (strings quoted).
func (v Value) SQLLiteral() string {
	if v.kind == KindString {
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	}
	return v.String()
}

// Coerce converts v to the given column type, or returns an error if the
// conversion is lossy/nonsensical. NULL and CNULL coerce to any type.
func (v Value) Coerce(t Type) (Value, error) {
	if v.IsUnknown() || t == TypeAny || v.TypeOf() == t {
		return v, nil
	}
	switch t {
	case TypeString:
		return NewString(v.String()), nil
	case TypeInt:
		switch v.kind {
		case KindFloat:
			if v.f == float64(int64(v.f)) {
				return NewInt(int64(v.f)), nil
			}
			return Value{}, fmt.Errorf("sqltypes: cannot coerce %v to INTEGER without loss", v)
		case KindString:
			i, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("sqltypes: cannot coerce %q to INTEGER", v.s)
			}
			return NewInt(i), nil
		case KindBool:
			if v.b {
				return NewInt(1), nil
			}
			return NewInt(0), nil
		}
	case TypeFloat:
		switch v.kind {
		case KindInt:
			return NewFloat(float64(v.i)), nil
		case KindString:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
			if err != nil {
				return Value{}, fmt.Errorf("sqltypes: cannot coerce %q to FLOAT", v.s)
			}
			return NewFloat(f), nil
		}
	case TypeBool:
		switch v.kind {
		case KindInt:
			return NewBool(v.i != 0), nil
		case KindString:
			switch strings.ToUpper(strings.TrimSpace(v.s)) {
			case "TRUE", "T", "YES", "1":
				return NewBool(true), nil
			case "FALSE", "F", "NO", "0":
				return NewBool(false), nil
			}
		}
	}
	return Value{}, fmt.Errorf("sqltypes: cannot coerce %v (%v) to %v", v, v.TypeOf(), t)
}

// Compare orders two values. It returns <0, 0, >0 like strings.Compare, and
// ok=false when either side is unknown (NULL/CNULL) or the kinds are
// incomparable. Numeric kinds compare cross-kind via float widening.
func Compare(a, b Value) (cmp int, ok bool) {
	if a.IsUnknown() || b.IsUnknown() {
		return 0, false
	}
	switch {
	case a.kind == KindString && b.kind == KindString:
		return strings.Compare(a.s, b.s), true
	case a.kind == KindBool && b.kind == KindBool:
		switch {
		case a.b == b.b:
			return 0, true
		case b.b:
			return -1, true
		default:
			return 1, true
		}
	case a.isNumeric() && b.isNumeric():
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1, true
			case a.i > b.i:
				return 1, true
			default:
				return 0, true
			}
		}
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	default:
		return 0, false
	}
}

func (v Value) isNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// SortCompare is a total order used by ORDER BY and B-tree keys: NULL sorts
// first, then CNULL, then values by Compare; incomparable kinds order by
// kind then by string rendering, so the order is deterministic.
func SortCompare(a, b Value) int {
	ra, rb := sortRank(a), sortRank(b)
	if ra != rb {
		return ra - rb
	}
	if c, ok := Compare(a, b); ok {
		return c
	}
	if a.kind != b.kind {
		return int(a.kind) - int(b.kind)
	}
	return strings.Compare(a.String(), b.String())
}

func sortRank(v Value) int {
	switch v.kind {
	case KindNull:
		return 0
	case KindCNull:
		return 1
	default:
		return 2
	}
}

// Equal reports strict SQL equality; unknowns are never equal to anything.
func Equal(a, b Value) bool {
	c, ok := Compare(a, b)
	return ok && c == 0
}

// Identical reports whether two values are the same, treating NULL==NULL and
// CNULL==CNULL as true. Used for storage-level comparisons and test goldens,
// not for SQL predicate semantics.
func Identical(a, b Value) bool {
	if a.kind != b.kind {
		// int/float cross-kind numerics with equal magnitude still differ here.
		return false
	}
	if a.IsUnknown() {
		return true
	}
	c, ok := Compare(a, b)
	return ok && c == 0
}

// EncodeKey renders a value as an order-preserving string key for B-tree
// indexes: SortCompare(a,b) agrees with strings.Compare(EncodeKey(a),
// EncodeKey(b)) for values of the same column type.
func EncodeKey(v Value) string {
	switch v.kind {
	case KindNull:
		return "\x00"
	case KindCNull:
		return "\x01"
	case KindBool:
		if v.b {
			return "\x02\x01"
		}
		return "\x02\x00"
	case KindInt, KindFloat:
		return "\x03" + encodeFloatKey(v.Float())
	default:
		return "\x04" + v.s
	}
}

// encodeFloatKey produces an order-preserving byte string for a float64.
func encodeFloatKey(f float64) string {
	bits := floatBits(f)
	var buf [8]byte
	for i := 7; i >= 0; i-- {
		buf[i] = byte(bits)
		bits >>= 8
	}
	return string(buf[:])
}

func floatBits(f float64) uint64 {
	bits := mathFloat64bits(f)
	if bits&(1<<63) != 0 {
		return ^bits // negative: flip all
	}
	return bits | (1 << 63) // positive: flip sign bit
}
