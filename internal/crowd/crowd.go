// Package crowd defines the platform-neutral crowdsourcing model CrowdDB's
// Task Manager works against: HITs (Human Intelligence Tasks) grouped for
// posting, assignments (one worker's answer to one HIT), and the Platform
// interface both supported platforms implement — the simulated Amazon
// Mechanical Turk (internal/crowd/amt) and the locality-aware mobile
// platform the paper demos at VLDB (internal/crowd/mobile).
//
// Time is virtual: platforms are driven by Step, which advances the
// simulated crowd by a duration. This preserves the latency *shapes* the
// paper measures on live crowds while letting experiments run in
// milliseconds (see DESIGN.md, substitution rule).
package crowd

import (
	"fmt"
	"time"
)

// Cents is a money amount in US cents; AMT rewards in the paper's
// experiments range from 1¢ to a few cents per HIT.
type Cents int64

// String renders the amount as dollars, e.g. "$0.02".
func (c Cents) String() string { return fmt.Sprintf("$%d.%02d", c/100, c%100) }

// FieldKind tells the worker UI how to render a field.
type FieldKind int

// Field kinds: Display fields are pre-filled read-only context (the known
// column values, §3.1), Input fields collect free text, Choice fields
// collect one of a fixed set of options (comparison tasks).
const (
	FieldDisplay FieldKind = iota
	FieldInput
	FieldChoice
)

// Field is one element of a task form.
type Field struct {
	Name    string // column or question identifier
	Label   string // human-readable prompt, from schema annotations
	Kind    FieldKind
	Value   string   // pre-filled value for Display fields
	Options []string // for Choice fields
}

// TaskKind classifies what a HIT asks for; it selects the UI template and
// the quality-control policy.
type TaskKind int

// Task kinds, one per crowd operator in the paper (§3.2.1): CrowdProbe
// sources missing values or new tuples, CrowdCompare powers CROWDEQUAL and
// CROWDORDER.
const (
	TaskProbeValues  TaskKind = iota // fill CNULL columns of an existing tuple
	TaskNewTuple                     // contribute a new tuple to a CROWD table
	TaskCompareEqual                 // are these two values the same entity?
	TaskCompareOrder                 // which of the two items ranks higher?
)

func (k TaskKind) String() string {
	switch k {
	case TaskProbeValues:
		return "probe"
	case TaskNewTuple:
		return "new-tuple"
	case TaskCompareEqual:
		return "crowd-equal"
	case TaskCompareOrder:
		return "crowd-order"
	default:
		return "unknown"
	}
}

// SimTruth is simulation-only ground truth attached to a HIT so simulated
// workers can answer it. A real crowd deployment leaves it nil; CrowdDB
// itself never reads it — only the worker simulator does. This is the
// substitution for the live AMT / VLDB-attendee crowds of the paper.
type SimTruth struct {
	// Truth maps input-field names to the correct answer.
	Truth map[string]string
	// Wrong maps input-field names to plausible incorrect answers a
	// confused worker might give. Empty means workers invent noise.
	Wrong map[string][]string
	// Difficulty in [0,1] scales how often even a diligent worker errs
	// (0 = trivial, 1 = coin flip). Subjective comparisons use mid values.
	Difficulty float64
}

// HIT is one task instance: a rendered form plus bookkeeping.
type HIT struct {
	ID     string
	Kind   TaskKind
	Title  string
	Fields []Field
	// HTML is the instantiated UI template (paper §3.1); platforms show it
	// to workers, the simulator ignores it.
	HTML string
	// Truth is simulation-only (see SimTruth).
	Truth *SimTruth
}

// InputFields returns the names of the fields a worker must fill.
func (h *HIT) InputFields() []string {
	var names []string
	for _, f := range h.Fields {
		if f.Kind != FieldDisplay {
			names = append(names, f.Name)
		}
	}
	return names
}

// HITGroup is a batch of same-shaped HITs posted together, as AMT groups
// them. Assignments is the replication factor per HIT, the knob the paper's
// majority-vote quality control turns.
type HITGroup struct {
	Title       string
	Description string
	Kind        TaskKind
	Reward      Cents // per assignment
	Assignments int   // replication per HIT (quality control, §3.2.1)
	Expiry      time.Duration
	HITs        []*HIT
	// Venue restricts the group to workers near the given location; only
	// the mobile platform honors it (paper §4: "constrain the workers to
	// the attendees at VLDB").
	Venue *GeoFence
	// AdaptiveVotes lets the platform stop soliciting further assignments
	// for a HIT once its early answers are unanimous above the quorum
	// floor (quality.MajorityFor(Assignments)) — fewer votes on easy
	// questions, full replication only where workers disagree.
	AdaptiveVotes bool
}

// GeoFence restricts tasks to workers within RadiusKM of a point.
type GeoFence struct {
	Lat, Lon float64
	RadiusKM float64
}

// Validate checks a group is postable.
func (g *HITGroup) Validate() error {
	if len(g.HITs) == 0 {
		return fmt.Errorf("crowd: group %q has no HITs", g.Title)
	}
	if g.Assignments <= 0 {
		return fmt.Errorf("crowd: group %q needs a positive assignment count", g.Title)
	}
	if g.Reward <= 0 {
		return fmt.Errorf("crowd: group %q needs a positive reward", g.Title)
	}
	for _, h := range g.HITs {
		if h.ID == "" {
			return fmt.Errorf("crowd: group %q contains a HIT without ID", g.Title)
		}
	}
	return nil
}

// AssignmentStatus tracks the lifecycle of one worker's work on one HIT.
type AssignmentStatus int

// Assignment states.
const (
	AssignmentPending AssignmentStatus = iota
	AssignmentSubmitted
	AssignmentApproved
	AssignmentRejected
)

// Assignment is one worker's submitted answer for one HIT.
type Assignment struct {
	ID          string
	HITID       string
	WorkerID    string
	Status      AssignmentStatus
	SubmittedAt time.Duration // virtual time of submission
	// Answers maps input-field names to the worker's raw answers,
	// un-cleansed: quality control normalizes and votes over them.
	Answers map[string]string
	// Confidence is the worker's self-reported certainty in (0,1], when the
	// platform supplies one (model answerers do; human platforms leave 0).
	// The escalation router reads it to decide whether a model-tier answer
	// stands or the HIT escalates to the human tier.
	Confidence float64
	// Source names the platform the assignment came from; the Task Manager
	// stamps it at collection time so tier-weighted voting can tell model
	// votes from human votes after the answers are merged.
	Source string
}

// GroupStatus summarizes a posted group's progress.
type GroupStatus struct {
	Posted    int // HITs in the group
	Completed int // HITs with all assignments submitted
	Submitted int // total submitted assignments
	Expired   bool
}

// Done reports whether every HIT has its full replication of answers (or
// the group has expired — partial answers are then all the requester gets).
func (st GroupStatus) Done() bool {
	return st.Expired || (st.Posted > 0 && st.Completed == st.Posted)
}

// GroupID names a posted group on a platform.
type GroupID string

// Platform is what the Task Manager programs against (paper Fig. 1: the
// Task Manager "makes the API calls to post tasks, assess their status, and
// obtain results").
//
// Thread-safety contract: the Task Manager's async scheduler keeps several
// HIT groups in flight and may call Post, Status, Results, Approve, Reject,
// Expire, Step, and Now from different goroutines at once (Post from
// submitters, everything else from the current clock driver). Every method
// must therefore be safe for concurrent use. Additional guarantees
// implementations must uphold:
//
//   - Post is atomic: a group is either fully registered (its ID valid for
//     every other method) or an error is returned; no partial state.
//   - Results returns copies — callers may retain and read the assignments
//     without further synchronization while the simulation advances.
//   - Step serializes internally; virtual time is monotone and Now never
//     runs backwards. Callers must not assume Step is exclusive with
//     Status/Results polling.
//   - Approve/Reject are idempotence-checked: double-approving the same
//     assignment is an error, never a double payment.
//
// Both simulated platforms (amt, mobile) satisfy this by delegating to the
// sim.Market, whose methods all run under one mutex (including clock event
// dispatch, which fires inside Step).
type Platform interface {
	// Name identifies the platform ("amt" or "mobile").
	Name() string
	// Post publishes a HIT group and returns its ID.
	Post(g *HITGroup) (GroupID, error)
	// Status reports group progress.
	Status(id GroupID) (GroupStatus, error)
	// Results returns submitted assignments for the group.
	Results(id GroupID) ([]*Assignment, error)
	// Approve marks an assignment approved and pays the worker,
	// optionally with a bonus (the WRM's job, §3).
	Approve(assignmentID string, bonus Cents) error
	// Reject refuses an assignment (no payment).
	Reject(assignmentID string, reason string) error
	// Expire force-expires a group (no further answers will arrive).
	Expire(id GroupID) error
	// Step advances the simulated crowd by d of virtual time.
	Step(d time.Duration)
	// Now is the platform's current virtual time.
	Now() time.Duration
}
