package crowd

import (
	"testing"
	"time"
)

func TestCentsString(t *testing.T) {
	cases := map[Cents]string{
		1:   "$0.01",
		25:  "$0.25",
		100: "$1.00",
		150: "$1.50",
		0:   "$0.00",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Cents(%d) = %q, want %q", c, got, want)
		}
	}
}

func TestTaskKindString(t *testing.T) {
	kinds := map[TaskKind]string{
		TaskProbeValues:  "probe",
		TaskNewTuple:     "new-tuple",
		TaskCompareEqual: "crowd-equal",
		TaskCompareOrder: "crowd-order",
		TaskKind(99):     "unknown",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("%d = %q, want %q", k, got, want)
		}
	}
}

func TestHITInputFields(t *testing.T) {
	h := &HIT{Fields: []Field{
		{Name: "a", Kind: FieldDisplay},
		{Name: "b", Kind: FieldInput},
		{Name: "c", Kind: FieldChoice},
	}}
	got := h.InputFields()
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Errorf("InputFields: %v", got)
	}
}

func TestGroupValidate(t *testing.T) {
	ok := &HITGroup{Title: "t", Reward: 1, Assignments: 1, HITs: []*HIT{{ID: "h"}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid group rejected: %v", err)
	}
	bad := []*HITGroup{
		{Title: "no hits", Reward: 1, Assignments: 1},
		{Title: "no pay", Assignments: 1, HITs: []*HIT{{ID: "h"}}},
		{Title: "no repl", Reward: 1, HITs: []*HIT{{ID: "h"}}},
		{Title: "no id", Reward: 1, Assignments: 1, HITs: []*HIT{{}}},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("group %q must be rejected", g.Title)
		}
	}
}

func TestGroupStatusDone(t *testing.T) {
	if (GroupStatus{Posted: 2, Completed: 1}).Done() {
		t.Error("incomplete group is not done")
	}
	if !(GroupStatus{Posted: 2, Completed: 2}).Done() {
		t.Error("complete group is done")
	}
	if !(GroupStatus{Posted: 2, Completed: 0, Expired: true}).Done() {
		t.Error("expired group is done")
	}
	if (GroupStatus{}).Done() {
		t.Error("empty group is not done")
	}
}

// fakePlatform is a minimal Platform for the flaky wrapper tests.
type fakePlatform struct{ posts, statuses, results int }

func (f *fakePlatform) Name() string { return "fake" }
func (f *fakePlatform) Post(*HITGroup) (GroupID, error) {
	f.posts++
	return "G1", nil
}
func (f *fakePlatform) Status(GroupID) (GroupStatus, error) {
	f.statuses++
	return GroupStatus{Posted: 1, Completed: 1}, nil
}
func (f *fakePlatform) Results(GroupID) ([]*Assignment, error) {
	f.results++
	return nil, nil
}
func (f *fakePlatform) Approve(string, Cents) error { return nil }
func (f *fakePlatform) Reject(string, string) error { return nil }
func (f *fakePlatform) Expire(GroupID) error        { return nil }
func (f *fakePlatform) Step(time.Duration)          {}
func (f *fakePlatform) Now() time.Duration          { return 0 }

func TestFlakyPlatformInjectsFailures(t *testing.T) {
	inner := &fakePlatform{}
	flaky := NewFlaky(inner, 2) // every 2nd call of each kind fails
	g := &HITGroup{Title: "t", Reward: 1, Assignments: 1, HITs: []*HIT{{ID: "h"}}}

	if _, err := flaky.Post(g); err != nil { // post 1: ok
		t.Fatalf("first call should pass: %v", err)
	}
	if _, err := flaky.Post(g); err == nil { // post 2: fails
		t.Fatal("second post should fail")
	}
	if inner.posts != 1 {
		t.Errorf("failed call must not reach inner platform: %d", inner.posts)
	}
	if flaky.Fails() != 1 {
		t.Errorf("fails: %d", flaky.Fails())
	}
	// Counting is per kind: the post failures above must not advance the
	// status or results schedules.
	if _, err := flaky.Status("G1"); err != nil { // status 1: ok
		t.Errorf("status: %v", err)
	}
	if _, err := flaky.Status("G1"); err == nil { // status 2: fails
		t.Error("second status should fail")
	}
	if _, err := flaky.Results("G1"); err != nil { // results 1: ok
		t.Errorf("results: %v", err)
	}
	if _, err := flaky.Results("G1"); err == nil { // results 2: fails
		t.Error("second results should fail")
	}
	if flaky.Fails() != 3 {
		t.Errorf("fails: %d", flaky.Fails())
	}
	if flaky.Name() != "fake" {
		t.Error("name passthrough")
	}
}

// Per-kind scheduling lets a test target one operation only: with
// FailPost set and FailEvery=1 every post fails while status and results
// sail through, no matter how the kinds interleave.
func TestFlakyPerKindTargeting(t *testing.T) {
	inner := &fakePlatform{}
	flaky := NewFlaky(inner, 1)
	flaky.FailStatus, flaky.FailResults = false, false
	g := &HITGroup{Title: "t", Reward: 1, Assignments: 1, HITs: []*HIT{{ID: "h"}}}
	for i := 0; i < 3; i++ {
		if _, err := flaky.Post(g); err == nil {
			t.Fatal("post must fail")
		}
		if _, err := flaky.Status("G1"); err != nil {
			t.Fatalf("status must pass: %v", err)
		}
		if _, err := flaky.Results("G1"); err != nil {
			t.Fatalf("results must pass: %v", err)
		}
	}
	if inner.posts != 0 || inner.statuses != 3 || inner.results != 3 {
		t.Fatalf("inner calls: posts=%d status=%d results=%d", inner.posts, inner.statuses, inner.results)
	}
}

func TestFlakyDisabled(t *testing.T) {
	flaky := NewFlaky(&fakePlatform{}, 0)
	for i := 0; i < 10; i++ {
		if _, err := flaky.Status("G1"); err != nil {
			t.Fatal("disabled injector must never fail")
		}
	}
}
