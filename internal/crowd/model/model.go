// Package model simulates a model-worker crowdsourcing platform: the
// "workers" are LLM-style answerers with a configurable cost/latency/
// accuracy/confidence profile instead of a human marketplace. A decade
// after the paper, the cheapest worker for most CNULL probes and
// comparisons is a model — humans are reserved for the contested tail —
// so this platform is the cheap tier the Task Manager's escalation
// router posts to first (see taskmgr: ModelPlatform).
//
// Unlike the human simulators (amt, mobile), answers are pre-generated
// at Post time: every assignment's worker, answer, confidence, and
// virtual completion time are drawn from the seeded RNG the moment the
// group is posted. Replay is therefore deterministic for a fixed seed
// and Post order regardless of how often the scheduler polls — the same
// property the determinism tests pin for the human platforms, with a
// stronger guarantee (poll cadence cannot perturb the RNG stream).
package model

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"crowddb/internal/crowd"
	"crowddb/internal/quality"
)

// Profile describes one model tier's behavior. The two presets bracket
// the trade-off experiments sweep: Sharp (expensive, accurate,
// well-calibrated confidence) and Cheap (sloppy, overconfident).
type Profile struct {
	// Workers is how many distinct model replicas answer (worker IDs
	// rotate across them; quality tracking scores each separately).
	Workers int
	// Accuracy is the per-answer correctness on a trivial task; HIT
	// difficulty scales it toward a coin flip exactly as the human
	// simulator does (eff = acc·(1−d) + 0.5·d).
	Accuracy float64
	// CorrectConfidence / WrongConfidence are the mean self-reported
	// confidences on correct and incorrect answers; ConfidenceNoise is
	// the ± half-width of the uniform spread around each. A calibrated
	// profile keeps the two ranges disjoint so a confidence floor
	// between them routes exactly the wrong answers to humans; a sloppy
	// profile overlaps them.
	CorrectConfidence float64
	WrongConfidence   float64
	ConfidenceNoise   float64
	// Latency is the mean virtual time per assignment; LatencyJitter is
	// the ± fraction of uniform spread around it.
	Latency       time.Duration
	LatencyJitter float64
	// GarbageRate is how often the model emits an unusable non-answer.
	GarbageRate float64
	// CostPerCall is the suggested per-assignment price in cents; the
	// router's ModelReward defaults from it.
	CostPerCall crowd.Cents
}

// Sharp is the expensive well-calibrated tier: high accuracy, and
// confidence ranges disjoint around the default 0.75 escalation floor
// (correct ∈ [0.80,0.94], wrong ∈ [0.48,0.62]), so escalations track
// actual mistakes.
func Sharp() Profile {
	return Profile{
		Workers:           4,
		Accuracy:          0.95,
		CorrectConfidence: 0.87,
		WrongConfidence:   0.55,
		ConfidenceNoise:   0.07,
		Latency:           5 * time.Second,
		LatencyJitter:     0.4,
		CostPerCall:       1,
	}
}

// Cheap is the sloppy tier: lower accuracy and overlapping, overconfident
// ranges (correct ∈ [0.63,0.93], wrong ∈ [0.53,0.83]) — its confidence is
// a weak escalation signal, which is exactly what experiments sweeping
// "cheap sloppy" vs "expensive sharp" want to expose.
func Cheap() Profile {
	return Profile{
		Workers:           4,
		Accuracy:          0.72,
		CorrectConfidence: 0.78,
		WrongConfidence:   0.68,
		ConfidenceNoise:   0.15,
		Latency:           2 * time.Second,
		LatencyJitter:     0.5,
		GarbageRate:       0.02,
		CostPerCall:       1,
	}
}

// ParseSpec builds a Profile from a flag string: a preset name ("sharp",
// "cheap"), optionally followed by comma-separated key=value overrides,
// e.g. "sharp,accuracy=0.9,latency=3s,workers=8". Keys: workers,
// accuracy, confidence, wrong-confidence, noise, latency, jitter,
// garbage, cost. A spec with no preset prefix overrides Sharp.
func ParseSpec(spec string) (Profile, error) {
	prof := Sharp()
	parts := strings.Split(spec, ",")
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "=") {
			if i != 0 {
				return prof, fmt.Errorf("model: preset %q must come first in spec %q", part, spec)
			}
			switch part {
			case "sharp":
				prof = Sharp()
			case "cheap":
				prof = Cheap()
			default:
				return prof, fmt.Errorf("model: unknown preset %q (want sharp or cheap)", part)
			}
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		switch key {
		case "workers":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return prof, fmt.Errorf("model: bad workers %q", val)
			}
			prof.Workers = n
		case "accuracy", "confidence", "wrong-confidence", "noise", "jitter", "garbage":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return prof, fmt.Errorf("model: bad %s %q (want 0..1)", key, val)
			}
			switch key {
			case "accuracy":
				prof.Accuracy = f
			case "confidence":
				prof.CorrectConfidence = f
			case "wrong-confidence":
				prof.WrongConfidence = f
			case "noise":
				prof.ConfidenceNoise = f
			case "jitter":
				prof.LatencyJitter = f
			case "garbage":
				prof.GarbageRate = f
			}
		case "latency":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return prof, fmt.Errorf("model: bad latency %q", val)
			}
			prof.Latency = d
		case "cost":
			c, err := strconv.Atoi(val)
			if err != nil || c <= 0 {
				return prof, fmt.Errorf("model: bad cost %q", val)
			}
			prof.CostPerCall = crowd.Cents(c)
		default:
			return prof, fmt.Errorf("model: unknown profile key %q", key)
		}
	}
	return prof, nil
}

// Config assembles a model platform.
type Config struct {
	Seed    int64
	Profile Profile
	// Name identifies the platform; defaults to "model". Distinct names
	// let one deployment route across several model tiers.
	Name string
}

// assignRec is one generated assignment plus its group bookkeeping.
type assignRec struct {
	a       *crowd.Assignment
	reward  crowd.Cents
	readyAt time.Duration
}

type group struct {
	spec      *crowd.HITGroup
	assigns   []*assignRec
	expired   bool
	expiredAt time.Duration
}

// Platform is the simulated model-answerer service. It implements
// crowd.Platform; all methods serialize on one mutex, satisfying the
// interface's concurrency contract.
type Platform struct {
	name string
	prof Profile

	mu       sync.Mutex
	rng      *rand.Rand
	now      time.Duration
	groups   map[crowd.GroupID]*group
	byAssign map[string]*assignRec
	nextGrp  int
	nextAsn  int
	unsure   int
	calls    int // assignments ever generated (worker rotation + stats)
	paid     crowd.Cents
}

// New builds a model platform. Zero-value profile fields fall back to
// the Sharp preset's.
func New(cfg Config) *Platform {
	p := cfg.Profile
	def := Sharp()
	if p.Workers <= 0 {
		p.Workers = def.Workers
	}
	if p.Accuracy <= 0 {
		p.Accuracy = def.Accuracy
	}
	if p.CorrectConfidence <= 0 {
		p.CorrectConfidence = def.CorrectConfidence
	}
	if p.WrongConfidence <= 0 {
		p.WrongConfidence = def.WrongConfidence
	}
	if p.Latency <= 0 {
		p.Latency = def.Latency
	}
	if p.CostPerCall <= 0 {
		p.CostPerCall = def.CostPerCall
	}
	name := cfg.Name
	if name == "" {
		name = "model"
	}
	return &Platform{
		name:     name,
		prof:     p,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		groups:   make(map[crowd.GroupID]*group),
		byAssign: make(map[string]*assignRec),
	}
}

// Name implements crowd.Platform.
func (p *Platform) Name() string { return p.name }

// Profile returns the platform's effective profile.
func (p *Platform) Profile() Profile { return p.prof }

// Post implements crowd.Platform. Every assignment is generated here,
// atomically: worker, answers, confidence, and completion time. The
// group is fully registered or not at all.
func (p *Platform) Post(g *crowd.HITGroup) (crowd.GroupID, error) {
	if err := g.Validate(); err != nil {
		return "", err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextGrp++
	id := crowd.GroupID(fmt.Sprintf("%s-g-%04d", p.name, p.nextGrp))
	gr := &group{spec: g}
	for _, hit := range g.HITs {
		for r := 0; r < g.Assignments; r++ {
			worker := fmt.Sprintf("%s-w%02d", p.name, p.calls%p.prof.Workers)
			p.calls++
			answers, correct := p.answerLocked(hit)
			p.nextAsn++
			lat := p.jitterLocked(p.prof.Latency, p.prof.LatencyJitter)
			rec := &assignRec{
				a: &crowd.Assignment{
					ID:          fmt.Sprintf("%s-a-%06d", p.name, p.nextAsn),
					HITID:       hit.ID,
					WorkerID:    worker,
					Status:      crowd.AssignmentSubmitted,
					SubmittedAt: p.now + lat,
					Answers:     answers,
					Confidence:  p.confidenceLocked(correct),
					Source:      p.name,
				},
				reward:  g.Reward,
				readyAt: p.now + lat,
			}
			gr.assigns = append(gr.assigns, rec)
			p.byAssign[rec.a.ID] = rec
			// Unanimous early answers satisfy an adaptive group without
			// its full replication, mirroring the human marketplace.
			if g.AdaptiveVotes && r+1 >= quality.MajorityFor(g.Assignments) && unanimous(gr, hit.ID) {
				break
			}
		}
	}
	p.groups[id] = gr
	return id, nil
}

// unanimous reports whether every generated answer for the HIT agrees on
// every field (exact match — the model emits clean strings).
func unanimous(gr *group, hitID string) bool {
	var first map[string]string
	for _, rec := range gr.assigns {
		if rec.a.HITID != hitID {
			continue
		}
		if first == nil {
			first = rec.a.Answers
			continue
		}
		if len(first) != len(rec.a.Answers) {
			return false
		}
		for k, v := range first {
			if rec.a.Answers[k] != v {
				return false
			}
		}
	}
	return first != nil
}

// answerLocked generates one model answer for the HIT, reporting whether
// every field came out correct (drives confidence calibration).
func (p *Platform) answerLocked(hit *crowd.HIT) (map[string]string, bool) {
	answers := make(map[string]string)
	correct := true
	for _, f := range hit.Fields {
		if f.Kind == crowd.FieldDisplay {
			continue
		}
		var truth string
		var difficulty float64
		if hit.Truth != nil {
			truth = hit.Truth.Truth[f.Name]
			difficulty = hit.Truth.Difficulty
		}
		switch {
		case p.prof.GarbageRate > 0 && p.rng.Float64() < p.prof.GarbageRate:
			answers[f.Name] = p.unsureLocked()
			correct = false
		case truth == "":
			// No ground truth to simulate against: the model abstains,
			// which quality control treats as garbage and the router
			// escalates — the safe behavior for an unanswerable task.
			answers[f.Name] = p.unsureLocked()
			correct = false
		default:
			eff := p.prof.Accuracy*(1-difficulty) + 0.5*difficulty
			if p.rng.Float64() < eff {
				answers[f.Name] = truth
			} else {
				answers[f.Name] = p.wrongLocked(hit, f, truth)
				correct = false
			}
		}
	}
	return answers, correct
}

// wrongLocked picks a plausible incorrect answer: the HIT's seeded wrong
// answers first, then another choice option, then an abstention.
func (p *Platform) wrongLocked(hit *crowd.HIT, f crowd.Field, truth string) string {
	if hit.Truth != nil {
		if ws := hit.Truth.Wrong[f.Name]; len(ws) > 0 {
			return ws[p.rng.Intn(len(ws))]
		}
	}
	if len(f.Options) > 0 {
		var others []string
		for _, o := range f.Options {
			if o != truth {
				others = append(others, o)
			}
		}
		if len(others) > 0 {
			return others[p.rng.Intn(len(others))]
		}
	}
	return p.unsureLocked()
}

func (p *Platform) unsureLocked() string {
	p.unsure++
	return fmt.Sprintf("unsure-%d", p.unsure)
}

// confidenceLocked draws a self-reported confidence from the profile's
// correct or wrong range, clamped to (0,1).
func (p *Platform) confidenceLocked(correct bool) float64 {
	base := p.prof.WrongConfidence
	if correct {
		base = p.prof.CorrectConfidence
	}
	c := base + p.prof.ConfidenceNoise*(2*p.rng.Float64()-1)
	if c < 0.05 {
		c = 0.05
	}
	if c > 0.99 {
		c = 0.99
	}
	return c
}

func (p *Platform) jitterLocked(d time.Duration, frac float64) time.Duration {
	if frac <= 0 {
		return d
	}
	return time.Duration(float64(d) * (1 + frac*(2*p.rng.Float64()-1)))
}

// readyLocked reports whether the assignment's answer has landed: its
// completion time has passed, and the group had not expired before it.
func (gr *group) readyLocked(rec *assignRec, now time.Duration) bool {
	if gr.expired && rec.readyAt > gr.expiredAt {
		return false
	}
	return rec.readyAt <= now
}

// Status implements crowd.Platform.
func (p *Platform) Status(id crowd.GroupID) (crowd.GroupStatus, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	gr, ok := p.groups[id]
	if !ok {
		return crowd.GroupStatus{}, fmt.Errorf("model: unknown group %q", id)
	}
	st := crowd.GroupStatus{Posted: len(gr.spec.HITs), Expired: gr.expired}
	perHIT := make(map[string]int)
	for _, rec := range gr.assigns {
		if gr.readyLocked(rec, p.now) {
			st.Submitted++
			perHIT[rec.a.HITID]++
		}
	}
	for _, hit := range gr.spec.HITs {
		want := gr.spec.Assignments
		if gr.spec.AdaptiveVotes {
			// An adaptive group generates fewer assignments for
			// unanimous HITs; all-generated-and-ready counts complete.
			if n := countFor(gr, hit.ID); n < want {
				want = n
			}
		}
		if perHIT[hit.ID] >= want {
			st.Completed++
		}
	}
	return st, nil
}

func countFor(gr *group, hitID string) int {
	n := 0
	for _, rec := range gr.assigns {
		if rec.a.HITID == hitID {
			n++
		}
	}
	return n
}

// Results implements crowd.Platform, returning copies of the ready
// assignments ordered by completion time then ID.
func (p *Platform) Results(id crowd.GroupID) ([]*crowd.Assignment, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	gr, ok := p.groups[id]
	if !ok {
		return nil, fmt.Errorf("model: unknown group %q", id)
	}
	var out []*crowd.Assignment
	for _, rec := range gr.assigns {
		if !gr.readyLocked(rec, p.now) {
			continue
		}
		cp := *rec.a
		cp.Answers = make(map[string]string, len(rec.a.Answers))
		for k, v := range rec.a.Answers {
			cp.Answers[k] = v
		}
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SubmittedAt != out[j].SubmittedAt {
			return out[i].SubmittedAt < out[j].SubmittedAt
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// Approve implements crowd.Platform: pays the assignment's reward plus
// bonus exactly once.
func (p *Platform) Approve(assignmentID string, bonus crowd.Cents) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	rec, ok := p.byAssign[assignmentID]
	if !ok {
		return fmt.Errorf("model: unknown assignment %q", assignmentID)
	}
	if rec.a.Status == crowd.AssignmentApproved {
		return fmt.Errorf("model: assignment %q already approved", assignmentID)
	}
	if rec.a.Status == crowd.AssignmentRejected {
		return fmt.Errorf("model: assignment %q already rejected", assignmentID)
	}
	rec.a.Status = crowd.AssignmentApproved
	p.paid += rec.reward + bonus
	return nil
}

// Reject implements crowd.Platform.
func (p *Platform) Reject(assignmentID, reason string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	rec, ok := p.byAssign[assignmentID]
	if !ok {
		return fmt.Errorf("model: unknown assignment %q", assignmentID)
	}
	if rec.a.Status == crowd.AssignmentApproved {
		return fmt.Errorf("model: assignment %q already approved", assignmentID)
	}
	rec.a.Status = crowd.AssignmentRejected
	return nil
}

// Expire implements crowd.Platform: answers not yet landed never will.
func (p *Platform) Expire(id crowd.GroupID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	gr, ok := p.groups[id]
	if !ok {
		return fmt.Errorf("model: unknown group %q", id)
	}
	if !gr.expired {
		gr.expired = true
		gr.expiredAt = p.now
	}
	return nil
}

// Step implements crowd.Platform.
func (p *Platform) Step(d time.Duration) {
	p.mu.Lock()
	p.now += d
	p.mu.Unlock()
}

// Now implements crowd.Platform.
func (p *Platform) Now() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.now
}

// Spend reports total payments made to model workers (rewards + bonuses).
func (p *Platform) Spend() crowd.Cents {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.paid
}

// Calls reports how many assignments the platform has generated.
func (p *Platform) Calls() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}
