package model

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"crowddb/internal/crowd"
)

// groupFor builds a one-HIT group of the given kind with seeded truth.
func groupFor(kind crowd.TaskKind, assignments int) *crowd.HITGroup {
	return &crowd.HITGroup{
		Title:       "model test",
		Kind:        kind,
		Reward:      1,
		Assignments: assignments,
		HITs: []*crowd.HIT{{
			ID:   "H1",
			Kind: kind,
			Fields: []crowd.Field{
				{Name: "item", Kind: crowd.FieldDisplay, Value: "item"},
				{Name: "answer", Kind: crowd.FieldInput, Label: "answer"},
			},
			Truth: &crowd.SimTruth{
				Truth:      map[string]string{"answer": "right"},
				Wrong:      map[string][]string{"answer": {"wrong"}},
				Difficulty: 0.1,
			},
		}},
	}
}

// drain steps the platform past all latencies and returns the group's
// assignments.
func drain(t *testing.T, p *Platform, id crowd.GroupID) []*crowd.Assignment {
	t.Helper()
	p.Step(time.Hour)
	res, err := p.Results(id)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The platform answers all four task kinds with per-assignment
// confidence and a stamped source.
func TestAllTaskKinds(t *testing.T) {
	p := New(Config{Seed: 1, Profile: Sharp()})
	for _, kind := range []crowd.TaskKind{
		crowd.TaskProbeValues, crowd.TaskNewTuple, crowd.TaskCompareEqual, crowd.TaskCompareOrder,
	} {
		id, err := p.Post(groupFor(kind, 3))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		res := drain(t, p, id)
		if len(res) != 3 {
			t.Fatalf("%v: want 3 assignments, got %d", kind, len(res))
		}
		for _, a := range res {
			if a.Confidence <= 0 || a.Confidence > 0.99 {
				t.Errorf("%v: confidence out of range: %v", kind, a.Confidence)
			}
			if a.Source != "model" {
				t.Errorf("%v: source = %q", kind, a.Source)
			}
			if a.Answers["answer"] == "" {
				t.Errorf("%v: empty answer", kind)
			}
		}
		st, err := p.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Done() {
			t.Errorf("%v: group not done after drain: %+v", kind, st)
		}
	}
}

// Replay is deterministic: two platforms with the same seed and Post
// order produce byte-identical assignments regardless of poll cadence.
func TestDeterministicReplay(t *testing.T) {
	run := func(pollEvery time.Duration) []*crowd.Assignment {
		p := New(Config{Seed: 42, Profile: Cheap()})
		var ids []crowd.GroupID
		for i := 0; i < 5; i++ {
			g := groupFor(crowd.TaskCompareEqual, 3)
			g.HITs[0].ID = fmt.Sprintf("H%d", i)
			id, err := p.Post(g)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
			// Poll cadence varies between runs; the RNG stream must not.
			for p.Now() < time.Hour {
				p.Step(pollEvery)
				for _, gid := range ids {
					if _, err := p.Results(gid); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		var all []*crowd.Assignment
		for _, id := range ids {
			res, err := p.Results(id)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, res...)
		}
		return all
	}
	a, b := run(time.Second), run(17*time.Minute)
	if len(a) != len(b) {
		t.Fatalf("assignment counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Errorf("assignment %d differs:\n %+v\n %+v", i, a[i], b[i])
		}
	}
}

// Confidence is calibrated: with zero noise, correct answers report the
// correct-range confidence and wrong answers the wrong-range one, so a
// floor between the two routes exactly the mistakes.
func TestConfidenceCalibration(t *testing.T) {
	prof := Sharp()
	prof.ConfidenceNoise = 0.001
	p := New(Config{Seed: 7, Profile: prof})
	g := groupFor(crowd.TaskProbeValues, 3)
	for i := 1; i < 60; i++ {
		g.HITs = append(g.HITs, &crowd.HIT{
			ID:     fmt.Sprintf("H%d", i+1),
			Kind:   crowd.TaskProbeValues,
			Fields: g.HITs[0].Fields,
			Truth:  g.HITs[0].Truth,
		})
	}
	id, err := p.Post(g)
	if err != nil {
		t.Fatal(err)
	}
	sawWrong := false
	for _, a := range drain(t, p, id) {
		correct := a.Answers["answer"] == "right"
		if correct && a.Confidence < 0.8 {
			t.Errorf("correct answer with low confidence %v", a.Confidence)
		}
		if !correct {
			sawWrong = true
			if a.Confidence > 0.62 {
				t.Errorf("wrong answer %q with high confidence %v", a.Answers["answer"], a.Confidence)
			}
		}
	}
	if !sawWrong {
		t.Skip("seed produced no wrong answers; calibration of the wrong range unexercised")
	}
}

// Truthless HITs make the model abstain with a unique unsure marker, the
// safe escalation path for unanswerable tasks.
func TestAbstainsWithoutTruth(t *testing.T) {
	p := New(Config{Seed: 1, Profile: Sharp()})
	g := groupFor(crowd.TaskProbeValues, 2)
	g.HITs[0].Truth = nil
	id, err := p.Post(g)
	if err != nil {
		t.Fatal(err)
	}
	res := drain(t, p, id)
	seen := map[string]bool{}
	for _, a := range res {
		if !strings.HasPrefix(a.Answers["answer"], "unsure-") {
			t.Errorf("want abstention, got %q", a.Answers["answer"])
		}
		if seen[a.Answers["answer"]] {
			t.Errorf("abstentions must not collide (they would fake agreement): %q", a.Answers["answer"])
		}
		seen[a.Answers["answer"]] = true
	}
}

// Approve pays exactly once; double approval and approve-after-reject
// are errors, and Spend tracks reward plus bonus.
func TestApproveOnce(t *testing.T) {
	p := New(Config{Seed: 1, Profile: Sharp()})
	g := groupFor(crowd.TaskProbeValues, 2)
	g.Reward = 3
	id, err := p.Post(g)
	if err != nil {
		t.Fatal(err)
	}
	res := drain(t, p, id)
	if err := p.Approve(res[0].ID, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Approve(res[0].ID, 1); err == nil {
		t.Error("double approval must fail")
	}
	if err := p.Reject(res[1].ID, "test"); err != nil {
		t.Fatal(err)
	}
	if err := p.Approve(res[1].ID, 0); err == nil {
		t.Error("approve after reject must fail")
	}
	if got := p.Spend(); got != 4 {
		t.Errorf("spend = %v, want 4 (reward 3 + bonus 1)", got)
	}
}

// Expire freezes the group: answers whose latency had not elapsed at
// expiry never land.
func TestExpire(t *testing.T) {
	p := New(Config{Seed: 1, Profile: Sharp()})
	id, err := p.Post(groupFor(crowd.TaskProbeValues, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Expire(id); err != nil {
		t.Fatal(err)
	}
	p.Step(time.Hour)
	res, err := p.Results(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("expired-before-latency group must return no answers, got %d", len(res))
	}
	st, err := p.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done() {
		t.Errorf("expired group must be done: %+v", st)
	}
}

// Adaptive groups stop generating once early answers are unanimous at
// the quorum floor.
func TestAdaptiveVotes(t *testing.T) {
	prof := Sharp()
	prof.Accuracy = 1 // every answer correct, so every HIT is unanimous
	p := New(Config{Seed: 1, Profile: prof})
	g := groupFor(crowd.TaskProbeValues, 5)
	g.HITs[0].Truth.Difficulty = 0 // eff = 1.0: unanimity guaranteed
	g.AdaptiveVotes = true
	id, err := p.Post(g)
	if err != nil {
		t.Fatal(err)
	}
	res := drain(t, p, id)
	if len(res) != 3 {
		t.Errorf("unanimous adaptive group must stop at the quorum floor (3 of 5), got %d", len(res))
	}
	st, err := p.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done() {
		t.Errorf("adaptive group must complete with fewer assignments: %+v", st)
	}
}

func TestParseSpec(t *testing.T) {
	prof, err := ParseSpec("cheap,accuracy=0.5,latency=3s,workers=8,cost=2")
	if err != nil {
		t.Fatal(err)
	}
	if prof.Accuracy != 0.5 || prof.Latency != 3*time.Second || prof.Workers != 8 || prof.CostPerCall != 2 {
		t.Errorf("overrides not applied: %+v", prof)
	}
	if prof.GarbageRate != Cheap().GarbageRate {
		t.Errorf("preset base not kept: %+v", prof)
	}
	if _, err := ParseSpec("fancy"); err == nil {
		t.Error("unknown preset must fail")
	}
	if _, err := ParseSpec("accuracy=2"); err == nil {
		t.Error("out-of-range accuracy must fail")
	}
	if _, err := ParseSpec("sharp,bogus=1"); err == nil {
		t.Error("unknown key must fail")
	}
	if _, err := ParseSpec("accuracy=0.9,sharp"); err == nil {
		t.Error("preset after overrides must fail")
	}
}
