package crowd

import (
	"fmt"
	"sync"
	"time"
)

// FlakyPlatform wraps a Platform and injects failures: every Nth call OF
// EACH KIND returns an error. Counting is per operation kind (post,
// status, results), so a test can schedule post-only or results-only
// outages deterministically without the other call kinds perturbing the
// schedule. It exists for failure-injection tests — the Task Manager and
// executor must surface platform outages as errors without wedging,
// double-posting, or double-paying.
type FlakyPlatform struct {
	Inner Platform
	// FailEvery makes every n-th fallible call of each kind fail
	// (0 disables).
	FailEvery int
	// FailPost/FailStatus/FailResults select which operations can fail.
	FailPost    bool
	FailStatus  bool
	FailResults bool

	mu    sync.Mutex
	calls map[string]int
	fails int
}

// NewFlaky wraps a platform so every n-th fallible call of each kind
// errors.
func NewFlaky(inner Platform, failEvery int) *FlakyPlatform {
	return &FlakyPlatform{
		Inner: inner, FailEvery: failEvery,
		FailPost: true, FailStatus: true, FailResults: true,
	}
}

// Fails reports how many injected failures have fired across all kinds.
func (f *FlakyPlatform) Fails() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fails
}

func (f *FlakyPlatform) shouldFail(kind string, enabled bool) error {
	if !enabled || f.FailEvery <= 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.calls == nil {
		f.calls = make(map[string]int)
	}
	f.calls[kind]++
	if f.calls[kind]%f.FailEvery == 0 {
		f.fails++
		return fmt.Errorf("crowd: injected platform outage (%s call %d)", kind, f.calls[kind])
	}
	return nil
}

// Name implements Platform.
func (f *FlakyPlatform) Name() string { return f.Inner.Name() }

// Post implements Platform with injected failures.
func (f *FlakyPlatform) Post(g *HITGroup) (GroupID, error) {
	if err := f.shouldFail("post", f.FailPost); err != nil {
		return "", err
	}
	return f.Inner.Post(g)
}

// Status implements Platform with injected failures.
func (f *FlakyPlatform) Status(id GroupID) (GroupStatus, error) {
	if err := f.shouldFail("status", f.FailStatus); err != nil {
		return GroupStatus{}, err
	}
	return f.Inner.Status(id)
}

// Results implements Platform with injected failures.
func (f *FlakyPlatform) Results(id GroupID) ([]*Assignment, error) {
	if err := f.shouldFail("results", f.FailResults); err != nil {
		return nil, err
	}
	return f.Inner.Results(id)
}

// Approve implements Platform.
func (f *FlakyPlatform) Approve(assignmentID string, bonus Cents) error {
	return f.Inner.Approve(assignmentID, bonus)
}

// Reject implements Platform.
func (f *FlakyPlatform) Reject(assignmentID, reason string) error {
	return f.Inner.Reject(assignmentID, reason)
}

// Expire implements Platform.
func (f *FlakyPlatform) Expire(id GroupID) error { return f.Inner.Expire(id) }

// Step implements Platform.
func (f *FlakyPlatform) Step(d time.Duration) { f.Inner.Step(d) }

// Now implements Platform.
func (f *FlakyPlatform) Now() time.Duration { return f.Inner.Now() }
