// Package mobile simulates CrowdDB's locality-aware mobile crowdsourcing
// platform (paper §4, [2]): tasks are posted to people in a specific
// geographic area — at VLDB, the conference attendees. Compared to AMT the
// pool is small but co-located and domain-expert (attendees answering
// questions about talks they just saw), so latency is low and answer
// quality for conference topics is high. Workers join without registration,
// modeled as session IDs handed out on first contact.
package mobile

import (
	"fmt"
	"sync"
	"time"

	"crowddb/internal/crowd"
	"crowddb/internal/sim"
)

// Venue describes where the platform's crowd is gathered.
type Venue struct {
	Name     string
	Lat, Lon float64
	RadiusKM float64
}

// VLDB2011 is the demo venue: the conference hotel in Seattle.
var VLDB2011 = Venue{Name: "VLDB 2011, Seattle", Lat: 47.6062, Lon: -122.3321, RadiusKM: 1.0}

// Config tunes the mobile platform.
type Config struct {
	Seed  int64
	Venue Venue
	// Attendees is the size of the local crowd.
	Attendees int
	// ExpertAccuracy is the mean accuracy of attendees on conference
	// topics (higher than generic AMT workers).
	ExpertAccuracy float64
}

// DefaultConfig returns a VLDB-sized mobile crowd.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, Venue: VLDB2011, Attendees: 400, ExpertAccuracy: 0.93}
}

// Platform is the simulated mobile crowdsourcing service.
type Platform struct {
	venue  Venue
	market *sim.Market

	mu       sync.Mutex
	sessions map[string]string // device ID -> session token (registration-free join)
	nextSess int
}

// New builds the mobile platform with its local crowd.
func New(cfg Config) *Platform {
	mcfg := sim.DefaultConfig()
	mcfg.Seed = cfg.Seed
	// The local crowd: small, clustered inside the venue, expert, fast.
	mcfg.Pool.Size = cfg.Attendees
	mcfg.Pool.SpammerFrac = 0.03 // conference attendees rarely spam
	mcfg.Pool.AccuracyMean = cfg.ExpertAccuracy
	mcfg.Pool.AccuracySpread = 0.04
	mcfg.Pool.GarbageRate = 0.01
	mcfg.Pool.Region = &sim.Region{
		LatMin: cfg.Venue.Lat - 0.004, LatMax: cfg.Venue.Lat + 0.004,
		LonMin: cfg.Venue.Lon - 0.006, LonMax: cfg.Venue.Lon + 0.006,
	}
	// Phones in pockets at a conference: arrivals are brisk during the
	// event, individual answers quick.
	mcfg.BaseArrivalPerHour = 30
	mcfg.MeanHITsPerVisit = 4
	mcfg.LatencyMedian = 20 * time.Second
	mcfg.LatencySigma = 0.6
	mcfg.AffinityProb = 0.5
	return &Platform{
		venue:    cfg.Venue,
		market:   sim.NewMarket(mcfg),
		sessions: make(map[string]string),
	}
}

// Name implements crowd.Platform.
func (p *Platform) Name() string { return "mobile" }

// Join hands out a session token for a device — the paper's
// "without registration" mobile onboarding. Idempotent per device.
func (p *Platform) Join(deviceID string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if tok, ok := p.sessions[deviceID]; ok {
		return tok
	}
	p.nextSess++
	tok := fmt.Sprintf("sess-%04d", p.nextSess)
	p.sessions[deviceID] = tok
	return tok
}

// Sessions reports how many devices have joined.
func (p *Platform) Sessions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.sessions)
}

// Post implements crowd.Platform. Groups without an explicit venue fence
// are fenced to the platform's venue — every mobile task is local.
func (p *Platform) Post(g *crowd.HITGroup) (crowd.GroupID, error) {
	if g.Venue == nil {
		fenced := *g
		fenced.Venue = &crowd.GeoFence{Lat: p.venue.Lat, Lon: p.venue.Lon, RadiusKM: p.venue.RadiusKM}
		g = &fenced
	}
	return p.market.Post(g)
}

// Status implements crowd.Platform.
func (p *Platform) Status(id crowd.GroupID) (crowd.GroupStatus, error) {
	return p.market.Status(id)
}

// Results implements crowd.Platform.
func (p *Platform) Results(id crowd.GroupID) ([]*crowd.Assignment, error) {
	return p.market.Results(id)
}

// Approve implements crowd.Platform. The mobile platform takes no
// commission — it is the researchers' own service.
func (p *Platform) Approve(assignmentID string, bonus crowd.Cents) error {
	_, err := p.market.Approve(assignmentID, bonus)
	return err
}

// Reject implements crowd.Platform.
func (p *Platform) Reject(assignmentID, reason string) error {
	return p.market.Reject(assignmentID, reason)
}

// Expire implements crowd.Platform.
func (p *Platform) Expire(id crowd.GroupID) error { return p.market.Expire(id) }

// Step implements crowd.Platform.
func (p *Platform) Step(d time.Duration) { p.market.Step(d) }

// Now implements crowd.Platform.
func (p *Platform) Now() time.Duration { return p.market.Now() }

// Block bars a device's worker from future assignments.
func (p *Platform) Block(workerID string) { p.market.Block(workerID) }

// Market exposes the underlying simulator for benchmarks.
func (p *Platform) Market() *sim.Market { return p.market }

// VenueInfo returns the platform's venue.
func (p *Platform) VenueInfo() Venue { return p.venue }
