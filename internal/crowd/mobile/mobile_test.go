package mobile

import (
	"fmt"
	"testing"
	"time"

	"crowddb/internal/crowd"
)

func talkRatingGroup(n int) *crowd.HITGroup {
	g := &crowd.HITGroup{
		Title:       "rate talks",
		Kind:        crowd.TaskProbeValues,
		Reward:      1,
		Assignments: 3,
	}
	for i := 0; i < n; i++ {
		g.HITs = append(g.HITs, &crowd.HIT{
			ID: fmt.Sprintf("T%d", i),
			Fields: []crowd.Field{
				{Name: "title", Kind: crowd.FieldDisplay, Value: fmt.Sprintf("Talk %d", i)},
				{Name: "nb_attendees", Kind: crowd.FieldInput, Label: "How many people attended?"},
			},
			Truth: &crowd.SimTruth{Truth: map[string]string{"nb_attendees": "80"}},
		})
	}
	return g
}

func TestMobileAutoFence(t *testing.T) {
	p := New(DefaultConfig(3))
	id, err := p.Post(talkRatingGroup(5))
	if err != nil {
		t.Fatal(err)
	}
	p.Step(12 * time.Hour)
	st, err := p.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done() {
		t.Fatalf("conference crowd should finish in hours: %+v", st)
	}
	// Every answering worker must be inside the venue fence.
	res, _ := p.Results(id)
	fence := &crowd.GeoFence{Lat: p.venue.Lat, Lon: p.venue.Lon, RadiusKM: p.venue.RadiusKM}
	stats := p.Market().WorkerStats()
	byID := map[string]bool{}
	for _, w := range stats {
		w := w
		if !w.InFence(fence) {
			t.Fatalf("worker %s outside venue completed work", w.ID)
		}
		byID[w.ID] = true
	}
	for _, a := range res {
		if !byID[a.WorkerID] {
			t.Fatalf("assignment from unknown worker %s", a.WorkerID)
		}
	}
}

func TestMobileFasterThanAMTLatencyProfile(t *testing.T) {
	// The mobile crowd is smaller but co-located and quick; a small group
	// should complete faster than the default AMT profile at the same pay.
	p := New(DefaultConfig(3))
	id, _ := p.Post(talkRatingGroup(10))
	var done time.Duration
	for elapsed := time.Duration(0); elapsed < 48*time.Hour; elapsed += 10 * time.Minute {
		p.Step(10 * time.Minute)
		if st, _ := p.Status(id); st.Done() {
			done = elapsed
			break
		}
	}
	if done == 0 || done > 8*time.Hour {
		t.Errorf("mobile completion too slow: %v", done)
	}
}

func TestJoinSessions(t *testing.T) {
	p := New(DefaultConfig(3))
	t1 := p.Join("phone-a")
	t2 := p.Join("phone-b")
	if t1 == t2 {
		t.Error("distinct devices must get distinct sessions")
	}
	if p.Join("phone-a") != t1 {
		t.Error("Join must be idempotent per device")
	}
	if p.Sessions() != 2 {
		t.Errorf("sessions: %d", p.Sessions())
	}
}

func TestMobileQualityHigherThanSpammyCrowd(t *testing.T) {
	p := New(DefaultConfig(3))
	id, _ := p.Post(talkRatingGroup(20))
	p.Step(24 * time.Hour)
	res, _ := p.Results(id)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	correct := 0
	for _, a := range res {
		if a.Answers["nb_attendees"] == "80" {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(res)); frac < 0.8 {
		t.Errorf("expert crowd accuracy too low: %.2f", frac)
	}
	if p.Name() != "mobile" {
		t.Error("name")
	}
	if p.VenueInfo().Name == "" {
		t.Error("venue info")
	}
}
