// Package amt simulates the Amazon Mechanical Turk platform CrowdDB posts
// to (paper §3, [1]). It adapts the worker-market simulator to the
// crowd.Platform interface and adds the AMT-specific mechanics CrowdDB's
// prototype dealt with: a requester account with a platform commission on
// every payment, and HIT-group lifecycle operations.
//
// The package also ships an HTTP binding (http.go) exposing the same
// operations REST-style, so the Task Manager can talk to a separate amtsimd
// process exactly as it would talk to the real AMT endpoint.
package amt

import (
	"fmt"
	"sync"
	"time"

	"crowddb/internal/crowd"
	"crowddb/internal/sim"
)

// CommissionPct is the platform's cut on every payment (AMT charged 10% in
// the paper's era).
const CommissionPct = 10

// Platform is the in-process simulated AMT.
type Platform struct {
	market *sim.Market

	mu         sync.Mutex
	commission crowd.Cents // accumulated platform fees
	paid       crowd.Cents // total worker payments (rewards + bonuses)
}

// New builds an AMT simulation over an existing market.
func New(market *sim.Market) *Platform { return &Platform{market: market} }

// NewDefault builds an AMT simulation with the default AMT-like market,
// seeded for reproducibility.
func NewDefault(seed int64) *Platform {
	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	return New(sim.NewMarket(cfg))
}

// Name implements crowd.Platform.
func (p *Platform) Name() string { return "amt" }

// Post implements crowd.Platform.
func (p *Platform) Post(g *crowd.HITGroup) (crowd.GroupID, error) {
	if g.Venue != nil {
		return "", fmt.Errorf("amt: geo-fenced groups are not supported on AMT; use the mobile platform")
	}
	return p.market.Post(g)
}

// Status implements crowd.Platform.
func (p *Platform) Status(id crowd.GroupID) (crowd.GroupStatus, error) {
	return p.market.Status(id)
}

// Results implements crowd.Platform.
func (p *Platform) Results(id crowd.GroupID) ([]*crowd.Assignment, error) {
	return p.market.Results(id)
}

// Approve implements crowd.Platform, collecting the platform commission.
func (p *Platform) Approve(assignmentID string, bonus crowd.Cents) error {
	pay, err := p.market.Approve(assignmentID, bonus)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.paid += pay
	p.commission += pay * CommissionPct / 100
	p.mu.Unlock()
	return nil
}

// Reject implements crowd.Platform.
func (p *Platform) Reject(assignmentID, reason string) error {
	return p.market.Reject(assignmentID, reason)
}

// Expire implements crowd.Platform.
func (p *Platform) Expire(id crowd.GroupID) error { return p.market.Expire(id) }

// Step implements crowd.Platform.
func (p *Platform) Step(d time.Duration) { p.market.Step(d) }

// Now implements crowd.Platform.
func (p *Platform) Now() time.Duration { return p.market.Now() }

// Spend reports total requester spend: worker payments plus commission.
func (p *Platform) Spend() (paid, commission crowd.Cents) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.paid, p.commission
}

// Block bars a worker from future assignments (AMT's worker-block
// operation; the WRM escalates to it for persistently bad workers).
func (p *Platform) Block(workerID string) { p.market.Block(workerID) }

// Market exposes the underlying simulator (benchmarks read worker stats).
func (p *Platform) Market() *sim.Market { return p.market }
