package amt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"crowddb/internal/crowd"
)

// The HTTP binding lets CrowdDB talk to a simulated-AMT service over the
// network the way the prototype talked to the real AMT REST endpoint. The
// Server wraps a Platform; the Client implements crowd.Platform against a
// Server's base URL. Both use JSON bodies.

// Server exposes a Platform over HTTP.
type Server struct {
	platform *Platform
	mux      *http.ServeMux
}

// NewServer builds the HTTP facade for a platform.
func NewServer(p *Platform) *Server {
	s := &Server{platform: p, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /groups", s.handlePost)
	s.mux.HandleFunc("GET /groups/{id}/status", s.handleStatus)
	s.mux.HandleFunc("GET /groups/{id}/assignments", s.handleResults)
	s.mux.HandleFunc("POST /groups/{id}/expire", s.handleExpire)
	s.mux.HandleFunc("POST /assignments/{id}/approve", s.handleApprove)
	s.mux.HandleFunc("POST /assignments/{id}/reject", s.handleReject)
	s.mux.HandleFunc("POST /step", s.handleStep)
	s.mux.HandleFunc("GET /now", s.handleNow)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// wire types

type postResponse struct {
	GroupID string `json:"group_id"`
}

type stepRequest struct {
	DurationMS int64 `json:"duration_ms"`
}

type approveRequest struct {
	BonusCents int64 `json:"bonus_cents"`
}

type rejectRequest struct {
	Reason string `json:"reason"`
}

func (s *Server) handlePost(w http.ResponseWriter, r *http.Request) {
	var g crowd.HITGroup
	if err := json.NewDecoder(r.Body).Decode(&g); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.platform.Post(&g)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, postResponse{GroupID: string(id)})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.platform.Status(crowd.GroupID(r.PathValue("id")))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	res, err := s.platform.Results(crowd.GroupID(r.PathValue("id")))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleExpire(w http.ResponseWriter, r *http.Request) {
	if err := s.platform.Expire(crowd.GroupID(r.PathValue("id"))); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleApprove(w http.ResponseWriter, r *http.Request) {
	var req approveRequest
	if r.Body != nil {
		json.NewDecoder(r.Body).Decode(&req) // empty body = no bonus
	}
	if err := s.platform.Approve(r.PathValue("id"), crowd.Cents(req.BonusCents)); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleReject(w http.ResponseWriter, r *http.Request) {
	var req rejectRequest
	if r.Body != nil {
		json.NewDecoder(r.Body).Decode(&req)
	}
	if err := s.platform.Reject(r.PathValue("id"), req.Reason); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	var req stepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.platform.Step(time.Duration(req.DurationMS) * time.Millisecond)
	writeJSON(w, http.StatusOK, map[string]int64{"now_ms": s.platform.Now().Milliseconds()})
}

func (s *Server) handleNow(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]int64{"now_ms": s.platform.Now().Milliseconds()})
}

// Client implements crowd.Platform against a Server over HTTP.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), HTTP: &http.Client{Timeout: 30 * time.Second}}
}

// Name implements crowd.Platform.
func (c *Client) Name() string { return "amt" }

func (c *Client) do(method, path string, in, out any) error {
	var body *bytes.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	} else {
		body = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return fmt.Errorf("amt client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return fmt.Errorf("amt client: %s %s: %s", method, path, e.Error)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// Post implements crowd.Platform.
func (c *Client) Post(g *crowd.HITGroup) (crowd.GroupID, error) {
	var resp postResponse
	if err := c.do("POST", "/groups", g, &resp); err != nil {
		return "", err
	}
	return crowd.GroupID(resp.GroupID), nil
}

// Status implements crowd.Platform.
func (c *Client) Status(id crowd.GroupID) (crowd.GroupStatus, error) {
	var st crowd.GroupStatus
	err := c.do("GET", "/groups/"+string(id)+"/status", nil, &st)
	return st, err
}

// Results implements crowd.Platform.
func (c *Client) Results(id crowd.GroupID) ([]*crowd.Assignment, error) {
	var res []*crowd.Assignment
	err := c.do("GET", "/groups/"+string(id)+"/assignments", nil, &res)
	return res, err
}

// Approve implements crowd.Platform.
func (c *Client) Approve(assignmentID string, bonus crowd.Cents) error {
	return c.do("POST", "/assignments/"+assignmentID+"/approve", approveRequest{BonusCents: int64(bonus)}, nil)
}

// Reject implements crowd.Platform.
func (c *Client) Reject(assignmentID, reason string) error {
	return c.do("POST", "/assignments/"+assignmentID+"/reject", rejectRequest{Reason: reason}, nil)
}

// Expire implements crowd.Platform.
func (c *Client) Expire(id crowd.GroupID) error {
	return c.do("POST", "/groups/"+string(id)+"/expire", nil, nil)
}

// Step implements crowd.Platform.
func (c *Client) Step(d time.Duration) {
	c.do("POST", "/step", stepRequest{DurationMS: d.Milliseconds()}, nil)
}

// Now implements crowd.Platform.
func (c *Client) Now() time.Duration {
	var resp map[string]int64
	if err := c.do("GET", "/now", nil, &resp); err != nil {
		return 0
	}
	return time.Duration(resp["now_ms"]) * time.Millisecond
}
