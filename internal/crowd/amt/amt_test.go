package amt

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"crowddb/internal/crowd"
)

func probeGroup(n int) *crowd.HITGroup {
	g := &crowd.HITGroup{
		Title:       "fill abstracts",
		Kind:        crowd.TaskProbeValues,
		Reward:      2,
		Assignments: 3,
	}
	for i := 0; i < n; i++ {
		g.HITs = append(g.HITs, &crowd.HIT{
			ID: fmt.Sprintf("H%d", i),
			Fields: []crowd.Field{
				{Name: "abstract", Kind: crowd.FieldInput},
			},
			Truth: &crowd.SimTruth{Truth: map[string]string{"abstract": fmt.Sprintf("a%d", i)}},
		})
	}
	return g
}

func TestPlatformLifecycle(t *testing.T) {
	p := NewDefault(7)
	id, err := p.Post(probeGroup(5))
	if err != nil {
		t.Fatal(err)
	}
	p.Step(48 * time.Hour)
	st, err := p.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done() {
		t.Fatalf("group not done after 48h: %+v", st)
	}
	res, err := p.Results(id)
	if err != nil || len(res) < 15 {
		t.Fatalf("results: %d %v", len(res), err)
	}
}

func TestCommission(t *testing.T) {
	p := NewDefault(7)
	id, _ := p.Post(probeGroup(2))
	p.Step(48 * time.Hour)
	res, _ := p.Results(id)
	if len(res) == 0 {
		t.Fatal("no assignments")
	}
	if err := p.Approve(res[0].ID, 0); err != nil {
		t.Fatal(err)
	}
	paid, fee := p.Spend()
	if paid != 2 {
		t.Errorf("paid: %v", paid)
	}
	if fee != 0 { // 10% of 2¢ rounds down to 0
		t.Errorf("fee: %v", fee)
	}
	if err := p.Approve(res[1].ID, 20); err != nil {
		t.Fatal(err)
	}
	paid, fee = p.Spend()
	if paid != 24 || fee != 2 {
		t.Errorf("paid=%v fee=%v", paid, fee)
	}
}

func TestAMTRejectsGeoFence(t *testing.T) {
	p := NewDefault(7)
	g := probeGroup(1)
	g.Venue = &crowd.GeoFence{Lat: 47.6, Lon: -122.3, RadiusKM: 1}
	if _, err := p.Post(g); err == nil {
		t.Error("AMT must reject geo-fenced groups")
	}
}

// The HTTP client/server pair must behave identically to the in-process
// platform for the full lifecycle.
func TestHTTPBinding(t *testing.T) {
	p := NewDefault(7)
	srv := httptest.NewServer(NewServer(p))
	defer srv.Close()
	c := NewClient(srv.URL)

	if c.Name() != "amt" {
		t.Error("name")
	}
	id, err := c.Post(probeGroup(3))
	if err != nil {
		t.Fatal(err)
	}
	c.Step(48 * time.Hour)
	if c.Now() != 48*time.Hour {
		t.Errorf("Now over HTTP: %v", c.Now())
	}
	st, err := c.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done() {
		t.Fatalf("not done: %+v", st)
	}
	res, err := c.Results(id)
	if err != nil || len(res) < 9 {
		t.Fatalf("results over HTTP: %d %v", len(res), err)
	}
	if res[0].Answers["abstract"] == "" {
		t.Error("answers must survive the wire")
	}
	if err := c.Approve(res[0].ID, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Approve(res[0].ID, 0); err == nil {
		t.Error("double approve must fail over HTTP")
	}
	if err := c.Reject(res[1].ID, "bad"); err != nil {
		t.Fatal(err)
	}
	if err := c.Expire(id); err != nil {
		t.Fatal(err)
	}
	st, _ = c.Status(id)
	if !st.Expired {
		t.Error("expire not applied")
	}
	// Errors surface with server-side messages.
	if _, err := c.Status("G99999"); err == nil {
		t.Error("unknown group over HTTP must fail")
	}
	bad := probeGroup(0)
	if _, err := c.Post(bad); err == nil {
		t.Error("invalid group over HTTP must fail")
	}
}
