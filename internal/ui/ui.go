// Package ui implements CrowdDB's user-interface generation (paper §3.1):
// at compile time the UI Creation component turns schema information into
// HTML form templates for every CROWD table and every table with CROWD
// columns; the UI Template Manager stores them and lets application
// developers edit instructions (the Form Editor); at runtime the Task
// Manager instantiates a template for a concrete tuple — known values are
// copied into the form, CNULL fields asked by the query become inputs.
package ui

import (
	"fmt"
	"html/template"
	"sort"
	"strings"
	"sync"

	"crowddb/internal/catalog"
	"crowddb/internal/crowd"
	"crowddb/internal/sqltypes"
)

// formTemplate is the HTML skeleton every generated task form uses. It
// mirrors the paper's Fig. 2: instructions at the top, known values shown
// read-only, missing values as inputs, choices as radio buttons.
var formTemplate = template.Must(template.New("form").Parse(`<!DOCTYPE html>
<html>
<head><title>{{.Title}}</title></head>
<body>
<form class="crowddb-task" data-kind="{{.Kind}}">
<h2>{{.Title}}</h2>
<p class="instructions">{{.Instructions}}</p>
{{if .Annotation}}<p class="annotation">{{.Annotation}}</p>{{end}}
<table>
{{range .Fields}}<tr>
  <td class="label">{{.Label}}</td>
  <td>{{if eq .Control "display"}}<span class="known">{{.Value}}</span>{{end -}}
      {{if eq .Control "input"}}<input type="text" name="{{.Name}}" value="">{{end -}}
      {{if eq .Control "choice"}}{{$f := .}}{{range .Options}}<label><input type="radio" name="{{$f.Name}}" value="{{.}}">{{.}}</label> {{end}}{{end}}</td>
</tr>
{{end}}</table>
<button type="submit">Submit</button>
</form>
</body>
</html>
`))

// templateField is the render model for one form row.
type templateField struct {
	Name    string
	Label   string
	Control string // display | input | choice
	Value   string
	Options []string
}

type formData struct {
	Title        string
	Kind         string
	Instructions string
	Annotation   string
	Fields       []templateField
}

// Template is one managed UI template. Instructions are the editable part
// (Form Editor); the field layout is derived from the schema.
type Template struct {
	Table        string
	Kind         crowd.TaskKind
	Instructions string
}

func key(table string, kind crowd.TaskKind) string {
	return strings.ToLower(table) + "#" + kind.String()
}

// Manager is the UI Template Manager: it owns every generated template and
// instantiates them into concrete task forms.
type Manager struct {
	cat *catalog.Catalog

	mu        sync.RWMutex
	templates map[string]*Template
}

// NewManager creates a manager bound to a catalog.
func NewManager(cat *catalog.Catalog) *Manager {
	return &Manager{cat: cat, templates: make(map[string]*Template)}
}

// GenerateAll performs the compile-time generation step: templates for
// probing CROWD columns, for contributing tuples to CROWD tables, and the
// two comparison forms. Safe to call repeatedly (e.g. after DDL); existing
// developer-edited instructions are preserved.
func (m *Manager) GenerateAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range m.cat.Tables() {
		if t.HasCrowdColumns() {
			m.ensureLocked(t.Name, crowd.TaskProbeValues, fmt.Sprintf(
				"Please fill in the missing information for this row of the %s table.", t.Name))
		}
		if t.Crowd {
			m.ensureLocked(t.Name, crowd.TaskNewTuple, fmt.Sprintf(
				"Please contribute a new entry for the %s table.", t.Name))
		}
	}
	m.ensureLocked("", crowd.TaskCompareEqual,
		"Do the two values below refer to the same real-world entity?")
	m.ensureLocked("", crowd.TaskCompareOrder,
		"Please pick the item you consider higher-ranked for the question below.")
}

func (m *Manager) ensureLocked(table string, kind crowd.TaskKind, instructions string) {
	k := key(table, kind)
	if _, ok := m.templates[k]; !ok {
		m.templates[k] = &Template{Table: table, Kind: kind, Instructions: instructions}
	}
}

// Template fetches a managed template.
func (m *Manager) Template(table string, kind crowd.TaskKind) (*Template, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	t, ok := m.templates[key(table, kind)]
	return t, ok
}

// Templates lists all managed templates, sorted by table and kind.
func (m *Manager) Templates() []*Template {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Template, 0, len(m.templates))
	for _, t := range m.templates {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// EditInstructions is the Form Editor hook: developers replace the default
// instructions with custom text.
func (m *Manager) EditInstructions(table string, kind crowd.TaskKind, text string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.templates[key(table, kind)]
	if !ok {
		return fmt.Errorf("ui: no template for table %q kind %v", table, kind)
	}
	t.Instructions = text
	return nil
}

func (m *Manager) instructionsFor(table string, kind crowd.TaskKind, fallback string) string {
	if t, ok := m.Template(table, kind); ok {
		return t.Instructions
	}
	return fallback
}

func fieldLabel(col *catalog.Column) string {
	if col.Annotation != "" {
		return col.Annotation
	}
	return strings.ReplaceAll(col.Name, "_", " ")
}

// ProbeForm instantiates the probe template for one tuple of a table:
// known column values become read-only context, the named ask columns
// become inputs. Returns the rendered fields and HTML.
func (m *Manager) ProbeForm(table string, known map[string]sqltypes.Value, ask []string) ([]crowd.Field, string, error) {
	t, ok := m.cat.Table(table)
	if !ok {
		return nil, "", fmt.Errorf("ui: unknown table %s", table)
	}
	askSet := make(map[string]bool, len(ask))
	for _, a := range ask {
		if t.ColumnIndex(a) < 0 {
			return nil, "", fmt.Errorf("ui: unknown column %s.%s", table, a)
		}
		askSet[strings.ToLower(a)] = true
	}
	var fields []crowd.Field
	for i := range t.Columns {
		col := &t.Columns[i]
		switch {
		case askSet[strings.ToLower(col.Name)]:
			fields = append(fields, crowd.Field{Name: col.Name, Label: fieldLabel(col), Kind: crowd.FieldInput})
		default:
			v, ok := known[strings.ToLower(col.Name)]
			if !ok || v.IsUnknown() {
				continue // unknown and not asked: omit from the form
			}
			fields = append(fields, crowd.Field{Name: col.Name, Label: fieldLabel(col), Kind: crowd.FieldDisplay, Value: v.String()})
		}
	}
	title := fmt.Sprintf("Fill in missing data: %s", t.Name)
	instr := m.instructionsFor(t.Name, crowd.TaskProbeValues,
		fmt.Sprintf("Please fill in the missing information for this row of the %s table.", t.Name))
	html, err := renderForm(title, crowd.TaskProbeValues, instr, t.Annotation, fields)
	return fields, html, err
}

// NewTupleForm instantiates the new-tuple template for a CROWD table:
// every column becomes an input unless prefill pins it (e.g. the foreign
// key of the probing query, as in the paper's NotableAttendee example).
func (m *Manager) NewTupleForm(table string, prefill map[string]sqltypes.Value) ([]crowd.Field, string, error) {
	t, ok := m.cat.Table(table)
	if !ok {
		return nil, "", fmt.Errorf("ui: unknown table %s", table)
	}
	if !t.Crowd {
		return nil, "", fmt.Errorf("ui: table %s is not a CROWD table", table)
	}
	var fields []crowd.Field
	for i := range t.Columns {
		col := &t.Columns[i]
		if v, ok := prefill[strings.ToLower(col.Name)]; ok && !v.IsUnknown() {
			fields = append(fields, crowd.Field{Name: col.Name, Label: fieldLabel(col), Kind: crowd.FieldDisplay, Value: v.String()})
			continue
		}
		fields = append(fields, crowd.Field{Name: col.Name, Label: fieldLabel(col), Kind: crowd.FieldInput})
	}
	title := fmt.Sprintf("Contribute a new entry: %s", t.Name)
	instr := m.instructionsFor(t.Name, crowd.TaskNewTuple,
		fmt.Sprintf("Please contribute a new entry for the %s table.", t.Name))
	html, err := renderForm(title, crowd.TaskNewTuple, instr, t.Annotation, fields)
	return fields, html, err
}

// AnswerField is the canonical input-field name for comparison forms.
const AnswerField = "answer"

// CompareEqualForm builds the CROWDEQUAL task: two values and a yes/no
// choice (paper §2.2).
func (m *Manager) CompareEqualForm(question, left, right string) ([]crowd.Field, string, error) {
	if question == "" {
		question = "Do these two values refer to the same entity?"
	}
	fields := []crowd.Field{
		{Name: "question", Label: "Question", Kind: crowd.FieldDisplay, Value: question},
		{Name: "left", Label: "Value A", Kind: crowd.FieldDisplay, Value: left},
		{Name: "right", Label: "Value B", Kind: crowd.FieldDisplay, Value: right},
		{Name: AnswerField, Label: "Same entity?", Kind: crowd.FieldChoice, Options: []string{"yes", "no"}},
	}
	instr := m.instructionsFor("", crowd.TaskCompareEqual,
		"Do the two values below refer to the same real-world entity?")
	html, err := renderForm("Compare two values", crowd.TaskCompareEqual, instr, "", fields)
	return fields, html, err
}

// CompareOrderForm builds the CROWDORDER binary-comparison task: the
// question from the query (e.g. "Which talk did you like better") plus two
// items to choose between (paper Example 3).
func (m *Manager) CompareOrderForm(question, left, right string) ([]crowd.Field, string, error) {
	if question == "" {
		question = "Which of the two items ranks higher?"
	}
	fields := []crowd.Field{
		{Name: "question", Label: "Question", Kind: crowd.FieldDisplay, Value: question},
		{Name: AnswerField, Label: question, Kind: crowd.FieldChoice, Options: []string{left, right}},
	}
	instr := m.instructionsFor("", crowd.TaskCompareOrder,
		"Please pick the item you consider higher-ranked for the question below.")
	html, err := renderForm("Rank two items", crowd.TaskCompareOrder, instr, "", fields)
	return fields, html, err
}

func renderForm(title string, kind crowd.TaskKind, instructions, annotation string, fields []crowd.Field) (string, error) {
	data := formData{Title: title, Kind: kind.String(), Instructions: instructions, Annotation: annotation}
	for _, f := range fields {
		tf := templateField{Name: f.Name, Label: f.Label, Value: f.Value, Options: f.Options}
		switch f.Kind {
		case crowd.FieldDisplay:
			tf.Control = "display"
		case crowd.FieldInput:
			tf.Control = "input"
		case crowd.FieldChoice:
			tf.Control = "choice"
		}
		data.Fields = append(data.Fields, tf)
	}
	var sb strings.Builder
	if err := formTemplate.Execute(&sb, data); err != nil {
		return "", fmt.Errorf("ui: render: %w", err)
	}
	return sb.String(), nil
}
