package ui

import (
	"strings"
	"testing"

	"crowddb/internal/catalog"
	"crowddb/internal/crowd"
	"crowddb/internal/sqltypes"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	err := cat.CreateTable(&catalog.Table{
		Name: "Talk",
		Columns: []catalog.Column{
			{Name: "title", Type: sqltypes.TypeString, PrimaryKey: true},
			{Name: "abstract", Type: sqltypes.TypeString, Crowd: true},
			{Name: "nb_attendees", Type: sqltypes.TypeInt, Crowd: true, Annotation: "How many people were in the audience?"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = cat.CreateTable(&catalog.Table{
		Name:  "NotableAttendee",
		Crowd: true,
		Columns: []catalog.Column{
			{Name: "name", Type: sqltypes.TypeString, PrimaryKey: true},
			{Name: "title", Type: sqltypes.TypeString},
		},
		ForeignKeys: []catalog.ForeignKey{{Columns: []string{"title"}, RefTable: "Talk", RefColumns: []string{"title"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestGenerateAll(t *testing.T) {
	m := NewManager(testCatalog(t))
	m.GenerateAll()
	if _, ok := m.Template("Talk", crowd.TaskProbeValues); !ok {
		t.Error("probe template for Talk (has CROWD columns)")
	}
	if _, ok := m.Template("Talk", crowd.TaskNewTuple); ok {
		t.Error("Talk is not a CROWD table; no new-tuple template")
	}
	if _, ok := m.Template("NotableAttendee", crowd.TaskNewTuple); !ok {
		t.Error("new-tuple template for CROWD table")
	}
	if _, ok := m.Template("", crowd.TaskCompareEqual); !ok {
		t.Error("compare-equal template")
	}
	if got := len(m.Templates()); got != 4 {
		t.Errorf("template count: %d", got)
	}
}

// This is the paper's Fig. 2 scenario: SELECT abstract FROM Talk WHERE
// title = "CrowdDB" — the form shows the known title and asks for the
// abstract.
func TestProbeFormFig2(t *testing.T) {
	m := NewManager(testCatalog(t))
	m.GenerateAll()
	fields, html, err := m.ProbeForm("Talk",
		map[string]sqltypes.Value{"title": sqltypes.NewString("CrowdDB"), "abstract": sqltypes.CNull()},
		[]string{"abstract"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != 2 {
		t.Fatalf("fields: %+v", fields)
	}
	if fields[0].Kind != crowd.FieldDisplay || fields[0].Value != "CrowdDB" {
		t.Errorf("known title must be display: %+v", fields[0])
	}
	if fields[1].Kind != crowd.FieldInput || fields[1].Name != "abstract" {
		t.Errorf("abstract must be input: %+v", fields[1])
	}
	for _, want := range []string{
		`<span class="known">CrowdDB</span>`,
		`<input type="text" name="abstract"`,
		"Fill in missing data: Talk",
		"Please fill in the missing information",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML missing %q:\n%s", want, html)
		}
	}
}

func TestProbeFormUsesColumnAnnotation(t *testing.T) {
	m := NewManager(testCatalog(t))
	m.GenerateAll()
	_, html, err := m.ProbeForm("Talk",
		map[string]sqltypes.Value{"title": sqltypes.NewString("X")},
		[]string{"nb_attendees"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html, "How many people were in the audience?") {
		t.Error("column annotation must label the input")
	}
}

func TestProbeFormErrors(t *testing.T) {
	m := NewManager(testCatalog(t))
	if _, _, err := m.ProbeForm("Nope", nil, nil); err == nil {
		t.Error("unknown table")
	}
	if _, _, err := m.ProbeForm("Talk", nil, []string{"zzz"}); err == nil {
		t.Error("unknown column")
	}
}

func TestNewTupleFormWithPrefill(t *testing.T) {
	m := NewManager(testCatalog(t))
	m.GenerateAll()
	fields, html, err := m.NewTupleForm("NotableAttendee",
		map[string]sqltypes.Value{"title": sqltypes.NewString("CrowdDB")})
	if err != nil {
		t.Fatal(err)
	}
	// name = input, title = prefilled display.
	if fields[0].Name != "name" || fields[0].Kind != crowd.FieldInput {
		t.Errorf("%+v", fields[0])
	}
	if fields[1].Name != "title" || fields[1].Kind != crowd.FieldDisplay || fields[1].Value != "CrowdDB" {
		t.Errorf("%+v", fields[1])
	}
	if !strings.Contains(html, "Contribute a new entry: NotableAttendee") {
		t.Error("title missing")
	}
	if _, _, err := m.NewTupleForm("Talk", nil); err == nil {
		t.Error("new-tuple form requires a CROWD table")
	}
}

func TestCompareForms(t *testing.T) {
	m := NewManager(testCatalog(t))
	m.GenerateAll()
	fields, html, err := m.CompareEqualForm("", "CrowdDB", "CrowDB")
	if err != nil {
		t.Fatal(err)
	}
	last := fields[len(fields)-1]
	if last.Kind != crowd.FieldChoice || len(last.Options) != 2 {
		t.Errorf("%+v", last)
	}
	if !strings.Contains(html, `value="yes"`) || !strings.Contains(html, `value="no"`) {
		t.Error("yes/no radios missing")
	}

	fields, html, err = m.CompareOrderForm("Which talk did you like better", "Talk A", "Talk B")
	if err != nil {
		t.Fatal(err)
	}
	last = fields[len(fields)-1]
	if last.Options[0] != "Talk A" || last.Options[1] != "Talk B" {
		t.Errorf("%+v", last)
	}
	if !strings.Contains(html, "Which talk did you like better") {
		t.Error("question missing from form")
	}
}

func TestFormEditor(t *testing.T) {
	m := NewManager(testCatalog(t))
	m.GenerateAll()
	if err := m.EditInstructions("Talk", crowd.TaskProbeValues, "Custom instructions here."); err != nil {
		t.Fatal(err)
	}
	_, html, err := m.ProbeForm("Talk", nil, []string{"abstract"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html, "Custom instructions here.") {
		t.Error("edited instructions must appear in rendered forms")
	}
	// Re-generation must not clobber the edit.
	m.GenerateAll()
	_, html, _ = m.ProbeForm("Talk", nil, []string{"abstract"})
	if !strings.Contains(html, "Custom instructions here.") {
		t.Error("GenerateAll clobbered a developer edit")
	}
	if err := m.EditInstructions("Nope", crowd.TaskProbeValues, "x"); err == nil {
		t.Error("editing a missing template must fail")
	}
}

func TestHTMLEscaping(t *testing.T) {
	m := NewManager(testCatalog(t))
	m.GenerateAll()
	_, html, err := m.ProbeForm("Talk",
		map[string]sqltypes.Value{"title": sqltypes.NewString(`<script>alert("x")</script>`)},
		[]string{"abstract"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(html, "<script>") {
		t.Error("known values must be HTML-escaped")
	}
}
