package storage

import (
	"os"
	"path/filepath"
	"testing"

	"crowddb/internal/sqltypes"
)

// reopen closes the store and opens a fresh one over the same dir,
// re-creating the Talk schema and recovering.
func reopen(t *testing.T, s *Store, dir string) *Store {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.CreateTable("Talk", []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	return s2
}

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable("Talk", []int{0}); err != nil {
		t.Fatal(err)
	}
	id1, _ := s.Insert("Talk", talkRow("CrowdDB", 100))
	s.Insert("Talk", talkRow("Qurk", 80))
	s.Update("Talk", id1, talkRow("CrowdDB", 250))

	s2 := reopen(t, s, dir)
	defer s2.Close()
	n, _ := s2.RowCount("Talk")
	if n != 2 {
		t.Fatalf("recovered %d rows", n)
	}
	rid, ok := s2.LookupPK("Talk", sqltypes.NewString("CrowdDB"))
	if !ok {
		t.Fatal("PK lost in recovery")
	}
	row, _ := s2.Get("Talk", rid)
	if row[2].Int() != 250 {
		t.Errorf("update lost: %v", row)
	}
}

func TestWALRecoveryWithDeletes(t *testing.T) {
	dir := t.TempDir()
	s, _ := NewStore(dir)
	s.CreateTable("Talk", []int{0})
	id, _ := s.Insert("Talk", talkRow("A", 1))
	s.Insert("Talk", talkRow("B", 2))
	s.Delete("Talk", id)

	s2 := reopen(t, s, dir)
	defer s2.Close()
	n, _ := s2.RowCount("Talk")
	if n != 1 {
		t.Errorf("recovered %d rows, want 1", n)
	}
	if _, ok := s2.LookupPK("Talk", sqltypes.NewString("A")); ok {
		t.Error("deleted row recovered")
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStoreOptions(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.CreateTable("Talk", []int{0})
	for i := 0; i < 50; i++ {
		s.Insert("Talk", talkRow(string(rune('A'+i)), int64(i)))
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for shard := 0; shard < s.NumShards(); shard++ {
		info, err := os.Stat(walShardPath(dir, shard))
		if err != nil || info.Size() != 0 {
			t.Errorf("shard %d WAL should be empty after checkpoint: %v %v", shard, err, info)
		}
	}
	// Post-checkpoint writes land in the fresh WAL.
	s.Insert("Talk", talkRow("after", 999))

	s2 := reopen(t, s, dir)
	defer s2.Close()
	n, _ := s2.RowCount("Talk")
	if n != 51 {
		t.Errorf("recovered %d rows, want 51", n)
	}
	if _, ok := s2.LookupPK("Talk", sqltypes.NewString("after")); !ok {
		t.Error("post-checkpoint row lost")
	}
}

func TestTornWALTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := NewStore(dir)
	s.CreateTable("Talk", []int{0})
	s.Insert("Talk", talkRow("ok", 1))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: append garbage to a shard's log. (With one
	// shard the row shares the log; with more, the garbage may land in an
	// empty log — replay must stop at the torn line either way.)
	f, err := os.OpenFile(walShardPath(dir, 0), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"insert","table":"Talk","row":99,"data":[{"k":`)
	f.Close()

	s2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.CreateTable("Talk", []int{0})
	if err := s2.Recover(); err != nil {
		t.Fatalf("torn tail must not fail recovery: %v", err)
	}
	n, _ := s2.RowCount("Talk")
	if n != 1 {
		t.Errorf("recovered %d rows, want 1", n)
	}
}

func TestRecoverNoFiles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fresh")
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.CreateTable("Talk", []int{0})
	if err := s.Recover(); err != nil {
		t.Errorf("recover with no snapshot/WAL: %v", err)
	}
}

func TestMemoryStoreNoFiles(t *testing.T) {
	s := memStore(t)
	setupTalk(t, s)
	s.Insert("Talk", talkRow("X", 1))
	if err := s.Checkpoint(); err != nil {
		t.Errorf("memory checkpoint must be a no-op: %v", err)
	}
	if err := s.Recover(); err != nil {
		t.Errorf("memory recover must be a no-op: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}
