package storage

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"crowddb/internal/faultinject"
)

type rlRec struct {
	N int    `json:"n"`
	S string `json:"s,omitempty"`
}

func replayAll(t *testing.T, path string) []rlRec {
	t.Helper()
	var out []rlRec
	if err := ReplayRecordLog(path, func(line json.RawMessage) error {
		var r rlRec
		if err := json.Unmarshal(line, &r); err != nil {
			return err
		}
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRecordLogRoundTrip(t *testing.T) {
	for _, mode := range []SyncMode{SyncAlways, SyncGroup, SyncOff} {
		t.Run(string(mode), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "jobs.log")
			l, err := OpenRecordLog(path, mode)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if err := l.Append(rlRec{N: i, S: "x"}); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			recs := replayAll(t, path)
			if len(recs) != 10 || recs[0].N != 0 || recs[9].N != 9 {
				t.Fatalf("replayed %v", recs)
			}
		})
	}
}

func TestRecordLogGroupCommitConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	l, err := OpenRecordLog(path, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := l.Append(rlRec{N: g*100 + i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(replayAll(t, path)); got != 200 {
		t.Fatalf("replayed %d records, want 200", got)
	}
}

func TestRecordLogTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	l, err := OpenRecordLog(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(rlRec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn final write.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"n":99,"s":"tor`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs := replayAll(t, path)
	if len(recs) != 3 {
		t.Fatalf("torn tail must end replay at 3 records, got %d", len(recs))
	}
	if replayAll(t, filepath.Join(t.TempDir(), "absent.log")) != nil {
		t.Fatal("missing log must replay empty")
	}
}

func TestRecordLogRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	l, err := OpenRecordLog(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(rlRec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	nl, err := RewriteRecordLog(path, SyncAlways, func(add func(v any) error) error {
		return add(rlRec{N: 42, S: "compacted"})
	})
	if err != nil {
		t.Fatal(err)
	}
	// The rewritten log keeps accepting appends.
	if err := nl.Append(rlRec{N: 43}); err != nil {
		t.Fatal(err)
	}
	if err := nl.Close(); err != nil {
		t.Fatal(err)
	}
	recs := replayAll(t, path)
	if len(recs) != 2 || recs[0].N != 42 || recs[0].S != "compacted" || recs[1].N != 43 {
		t.Fatalf("rewritten log replayed %v", recs)
	}
}

func TestRecordLogDropsAppendsAfterKill(t *testing.T) {
	defer faultinject.Disarm()
	path := filepath.Join(t.TempDir(), "jobs.log")
	l, err := OpenRecordLog(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.SetHandler(func(string) {})
	if err := faultinject.Arm("storage.recordlog.append=3"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := l.Append(rlRec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs := replayAll(t, path)
	// The 3rd append fires the crashpoint; it and everything after is lost.
	if len(recs) != 2 || recs[0].N != 0 || recs[1].N != 1 {
		t.Fatalf("post-kill appends must be dropped, replayed %v", recs)
	}
}
