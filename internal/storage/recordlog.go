package storage

// RecordLog is the jobs journal's append-only JSON-lines log. It shares
// the per-shard WAL's durability contract — the same SyncMode policies,
// leader-based group commit in SyncGroup mode, torn-tail-tolerant
// replay — but carries caller-defined records (the server journals job
// lifecycle, emitted rows, and budget movements through it) instead of
// row mutations, and Append is the acknowledgement barrier: when it
// returns under always/group modes, the record is fsynced.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"crowddb/internal/faultinject"
	"crowddb/internal/obs"
)

// RecordLog is an append-only, crash-safe JSON-lines log.
type RecordLog struct {
	mu   sync.Mutex
	cond *sync.Cond
	f    *os.File
	w    *bufio.Writer
	mode SyncMode

	seq     int64 // records appended (buffered)
	synced  int64 // records durably committed
	syncing bool  // a leader is mid-flush
	err     error // sticky I/O error

	fsyncHist *obs.Histogram
	batchHist *obs.Histogram
}

// OpenRecordLog opens (creating if absent) the log at path for appends.
func OpenRecordLog(path string, mode SyncMode) (*RecordLog, error) {
	if err := mode.valid(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open record log: %w", err)
	}
	l := &RecordLog{f: f, w: bufio.NewWriter(f), mode: mode}
	l.cond = sync.NewCond(&l.mu)
	return l, nil
}

// SetMetrics wires optional fsync latency / group batch histograms
// (nil-safe, set before writes flow).
func (l *RecordLog) SetMetrics(fsync, batch *obs.Histogram) {
	l.mu.Lock()
	l.fsyncHist = fsync
	l.batchHist = batch
	l.mu.Unlock()
}

// Append marshals v as one JSON line and makes it durable per the sync
// mode: always and group return only after the record is fsynced (group
// coalesces concurrent appenders into one syscall pair), off returns
// after the OS has the bytes. After a fault-injection kill the append is
// silently dropped — the write a torn process would have lost.
func (l *RecordLog) Append(v any) error {
	faultinject.Hit("storage.recordlog.append")
	if faultinject.Killed() {
		return nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	l.mu.Lock()
	if l.err != nil {
		defer l.mu.Unlock()
		return l.err
	}
	if _, err := l.w.Write(data); err != nil {
		l.err = err
		l.mu.Unlock()
		return err
	}
	if err := l.w.WriteByte('\n'); err != nil {
		l.err = err
		l.mu.Unlock()
		return err
	}
	l.seq++
	seq := l.seq
	switch l.mode {
	case SyncAlways:
		start := time.Now()
		err := l.w.Flush()
		if err == nil {
			err = l.f.Sync()
		}
		if err != nil {
			l.err = err
			l.mu.Unlock()
			return err
		}
		l.fsyncHist.Observe(time.Since(start).Seconds())
		l.batchHist.Observe(1)
		l.synced = l.seq
		l.mu.Unlock()
		return nil
	case SyncOff:
		if err := l.w.Flush(); err != nil {
			l.err = err
			l.mu.Unlock()
			return err
		}
		l.synced = l.seq
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	return l.commit(seq)
}

// commit is the group-mode acknowledgement barrier (leader-based, one
// flush+fsync for the whole buffered batch).
func (l *RecordLog) commit(seq int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.synced < seq && l.err == nil {
		if l.syncing {
			l.cond.Wait()
			continue
		}
		l.syncing = true
		target := l.seq
		batch := target - l.synced
		start := time.Now()
		err := l.w.Flush()
		l.mu.Unlock()
		if err == nil {
			err = l.f.Sync()
		}
		l.mu.Lock()
		l.syncing = false
		if err != nil {
			l.err = err
		} else if target > l.synced {
			l.synced = target
			l.fsyncHist.Observe(time.Since(start).Seconds())
			l.batchHist.Observe(float64(batch))
		}
		l.cond.Broadcast()
	}
	return l.err
}

// Sync forces everything buffered to disk (a checkpoint barrier).
func (l *RecordLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if err := l.w.Flush(); err != nil {
		l.err = err
		return err
	}
	if l.mode != SyncOff {
		if err := l.f.Sync(); err != nil {
			l.err = err
			return err
		}
	}
	l.synced = l.seq
	return nil
}

// Close flushes, fsyncs (unless SyncOff), and closes the file.
func (l *RecordLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	if l.mode != SyncOff {
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	return l.f.Close()
}

// ReplayRecordLog streams each JSON line at path to apply. A truncated
// final line (torn write) ends the replay cleanly; a missing file is an
// empty log.
func ReplayRecordLog(path string, apply func(line json.RawMessage) error) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if !json.Valid(line) {
			// Torn tail write: stop replay here.
			return nil
		}
		if err := apply(json.RawMessage(line)); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		return err
	}
	return nil
}

// RewriteRecordLog atomically replaces the log at path with the records
// emit writes (compaction after recovery): the new content lands in a
// temp file, is fsynced, and renamed over the old log before reopening
// for appends. On emit error the old log is left untouched.
func RewriteRecordLog(path string, mode SyncMode, emit func(add func(v any) error) error) (*RecordLog, error) {
	if err := mode.valid(); err != nil {
		return nil, err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: rewrite record log: %w", err)
	}
	w := bufio.NewWriter(f)
	add := func(v any) error {
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
		return w.WriteByte('\n')
	}
	if err := emit(add); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	return OpenRecordLog(path, mode)
}
