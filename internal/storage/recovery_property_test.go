package storage

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"

	"crowddb/internal/sqltypes"
)

// Model-based recovery property: apply a random workload of inserts,
// updates and deletes against both the store and an in-memory reference
// model, occasionally checkpointing; then reopen from disk and verify the
// recovered state matches the model exactly. Each trial uses a different
// shard count and WAL sync mode; the reopen adopts the persisted layout.
func TestRecoveryMatchesModelUnderRandomWorkload(t *testing.T) {
	shardCounts := []int{1, 2, 4, 8}
	syncModes := []SyncMode{SyncGroup, SyncAlways, SyncOff, SyncGroup}
	for trial := 0; trial < 4; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d_shards%d", trial, shardCounts[trial]), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			dir := t.TempDir()
			s, err := NewStoreOptions(dir, Options{Shards: shardCounts[trial], Sync: syncModes[trial]})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.CreateTable("t", []int{0}); err != nil {
				t.Fatal(err)
			}

			model := map[string]int64{} // pk -> value
			ids := map[string]RowID{}

			row := func(pk string, v int64) Row {
				return Row{sqltypes.NewString(pk), sqltypes.NewInt(v)}
			}
			keys := func() []string {
				out := make([]string, 0, len(model))
				for k := range model {
					out = append(out, k)
				}
				return out
			}

			const ops = 400
			for i := 0; i < ops; i++ {
				switch op := rng.Intn(10); {
				case op < 5: // insert
					pk := fmt.Sprintf("k%03d", rng.Intn(120))
					v := rng.Int63n(1000)
					id, err := s.Insert("t", row(pk, v))
					if _, exists := model[pk]; exists {
						if err == nil {
							t.Fatalf("op %d: duplicate insert of %s succeeded", i, pk)
						}
						continue
					}
					if err != nil {
						t.Fatalf("op %d: insert %s: %v", i, pk, err)
					}
					model[pk] = v
					ids[pk] = id
				case op < 7: // update
					ks := keys()
					if len(ks) == 0 {
						continue
					}
					pk := ks[rng.Intn(len(ks))]
					v := rng.Int63n(1000)
					if err := s.Update("t", ids[pk], row(pk, v)); err != nil {
						t.Fatalf("op %d: update %s: %v", i, pk, err)
					}
					model[pk] = v
				case op < 9: // delete
					ks := keys()
					if len(ks) == 0 {
						continue
					}
					pk := ks[rng.Intn(len(ks))]
					if err := s.Delete("t", ids[pk]); err != nil {
						t.Fatalf("op %d: delete %s: %v", i, pk, err)
					}
					delete(model, pk)
					delete(ids, pk)
				default: // checkpoint
					if err := s.Checkpoint(); err != nil {
						t.Fatalf("op %d: checkpoint: %v", i, err)
					}
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			// Reopening with a different explicit shard count must fail:
			// the pinned contract (rows are placed by hash % shards).
			if _, err := NewStoreOptions(dir, Options{Shards: shardCounts[trial] + 1}); err == nil {
				t.Fatal("reopen with a different shard count must error")
			}

			// Reopen (adopting the on-disk count) and compare to the model.
			s2, err := NewStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if got := s2.NumShards(); got != shardCounts[trial] {
				t.Fatalf("adopted %d shards, want %d", got, shardCounts[trial])
			}
			if err := s2.CreateTable("t", []int{0}); err != nil {
				t.Fatal(err)
			}
			if err := s2.Recover(); err != nil {
				t.Fatal(err)
			}
			n, _ := s2.RowCount("t")
			if n != len(model) {
				t.Fatalf("recovered %d rows, model has %d", n, len(model))
			}
			for pk, v := range model {
				id, ok := s2.LookupPK("t", sqltypes.NewString(pk))
				if !ok {
					t.Fatalf("key %s lost in recovery", pk)
				}
				got, _ := s2.Get("t", id)
				if got[1].Int() != v {
					t.Fatalf("key %s: recovered %d, model %d", pk, got[1].Int(), v)
				}
			}
		})
	}
}

// modelOp is one logical mutation for the torn-WAL property test's
// reference replayer.
type modelOp struct {
	op  string // "insert", "update", "delete"
	pk  string
	val int64
}

func replayModel(ops []modelOp) map[string]int64 {
	m := map[string]int64{}
	for _, o := range ops {
		switch o.op {
		case "insert", "update":
			m[o.pk] = o.val
		case "delete":
			delete(m, o.pk)
		}
	}
	return m
}

// TestRecoveryTornShardWALProperty: after a random workload (no
// checkpoints), tear the tail of ONE shard's WAL mid-record. Recovery
// must succeed, and the recovered state must equal either the full model
// or the model with that shard's final operation undone — never anything
// else. Keys never change shards here (updates keep the PK), so each
// shard's WAL fully determines its rows.
func TestRecoveryTornShardWALProperty(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7000 + trial)))
			shards := []int{2, 3, 4, 8}[trial]
			dir := t.TempDir()
			s, err := NewStoreOptions(dir, Options{Shards: shards, Sync: SyncGroup})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.CreateTable("t", []int{0}); err != nil {
				t.Fatal(err)
			}
			ts, err := s.table("t")
			if err != nil {
				t.Fatal(err)
			}
			shardOf := func(pk string) int {
				return ts.shardOfKey(ts.pkKey(Row{sqltypes.NewString(pk), sqltypes.NewInt(0)}))
			}

			perShard := make([][]modelOp, shards)
			ids := map[string]RowID{}
			live := map[string]bool{}
			record := func(o modelOp) { sh := shardOf(o.pk); perShard[sh] = append(perShard[sh], o) }

			for i := 0; i < 300; i++ {
				pk := fmt.Sprintf("k%03d", rng.Intn(80))
				switch op := rng.Intn(10); {
				case op < 6 && !live[pk]:
					v := rng.Int63n(1000)
					id, err := s.Insert("t", Row{sqltypes.NewString(pk), sqltypes.NewInt(v)})
					if err != nil {
						t.Fatal(err)
					}
					ids[pk], live[pk] = id, true
					record(modelOp{"insert", pk, v})
				case op < 8 && live[pk]:
					v := rng.Int63n(1000)
					if err := s.Update("t", ids[pk], Row{sqltypes.NewString(pk), sqltypes.NewInt(v)}); err != nil {
						t.Fatal(err)
					}
					record(modelOp{"update", pk, v})
				case live[pk]:
					if err := s.Delete("t", ids[pk]); err != nil {
						t.Fatal(err)
					}
					live[pk] = false
					record(modelOp{"delete", pk, 0})
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			// Tear the tail of one non-empty shard WAL mid-record.
			victim := -1
			for sh := 0; sh < shards; sh++ {
				if len(perShard[sh]) > 0 {
					victim = sh
				}
			}
			if victim < 0 {
				t.Skip("empty workload")
			}
			path := walShardPath(dir, victim)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Find the last record's start and cut strictly inside it.
			lastStart := strings.LastIndex(strings.TrimSuffix(string(data), "\n"), "\n") + 1
			cut := lastStart + 1 + rng.Intn(len(data)-lastStart-1)
			if err := os.Truncate(path, int64(cut)); err != nil {
				t.Fatal(err)
			}

			s2, err := NewStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if err := s2.CreateTable("t", []int{0}); err != nil {
				t.Fatal(err)
			}
			if err := s2.Recover(); err != nil {
				t.Fatalf("torn shard WAL must not fail recovery: %v", err)
			}

			// Expected: per shard, the full replay — except the victim,
			// which may be missing exactly its final operation.
			want := map[string]int64{}
			wantAlt := map[string]int64{}
			for sh := 0; sh < shards; sh++ {
				ops := perShard[sh]
				for pk, v := range replayModel(ops) {
					want[pk] = v
				}
				if sh == victim {
					ops = ops[:len(ops)-1]
				}
				for pk, v := range replayModel(ops) {
					wantAlt[pk] = v
				}
			}
			got := map[string]int64{}
			_, rows, err := s2.ScanRows("t")
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows {
				got[r[0].Str()] = r[1].Int()
			}
			if !mapsEqual(got, want) && !mapsEqual(got, wantAlt) {
				t.Fatalf("recovered state matches neither the full model (%d keys) nor the model minus shard %d's last op (%d keys): got %d keys",
					len(want), victim, len(wantAlt), len(got))
			}
		})
	}
}

func mapsEqual(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}
