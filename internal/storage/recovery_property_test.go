package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"crowddb/internal/sqltypes"
)

// Model-based recovery property: apply a random workload of inserts,
// updates and deletes against both the store and an in-memory reference
// model, occasionally checkpointing; then reopen from disk and verify the
// recovered state matches the model exactly.
func TestRecoveryMatchesModelUnderRandomWorkload(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			dir := t.TempDir()
			s, err := NewStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.CreateTable("t", []int{0}); err != nil {
				t.Fatal(err)
			}

			model := map[string]int64{} // pk -> value
			ids := map[string]RowID{}

			row := func(pk string, v int64) Row {
				return Row{sqltypes.NewString(pk), sqltypes.NewInt(v)}
			}
			keys := func() []string {
				out := make([]string, 0, len(model))
				for k := range model {
					out = append(out, k)
				}
				return out
			}

			const ops = 400
			for i := 0; i < ops; i++ {
				switch op := rng.Intn(10); {
				case op < 5: // insert
					pk := fmt.Sprintf("k%03d", rng.Intn(120))
					v := rng.Int63n(1000)
					id, err := s.Insert("t", row(pk, v))
					if _, exists := model[pk]; exists {
						if err == nil {
							t.Fatalf("op %d: duplicate insert of %s succeeded", i, pk)
						}
						continue
					}
					if err != nil {
						t.Fatalf("op %d: insert %s: %v", i, pk, err)
					}
					model[pk] = v
					ids[pk] = id
				case op < 7: // update
					ks := keys()
					if len(ks) == 0 {
						continue
					}
					pk := ks[rng.Intn(len(ks))]
					v := rng.Int63n(1000)
					if err := s.Update("t", ids[pk], row(pk, v)); err != nil {
						t.Fatalf("op %d: update %s: %v", i, pk, err)
					}
					model[pk] = v
				case op < 9: // delete
					ks := keys()
					if len(ks) == 0 {
						continue
					}
					pk := ks[rng.Intn(len(ks))]
					if err := s.Delete("t", ids[pk]); err != nil {
						t.Fatalf("op %d: delete %s: %v", i, pk, err)
					}
					delete(model, pk)
					delete(ids, pk)
				default: // checkpoint
					if err := s.Checkpoint(); err != nil {
						t.Fatalf("op %d: checkpoint: %v", i, err)
					}
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			// Reopen and compare to the model.
			s2, err := NewStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if err := s2.CreateTable("t", []int{0}); err != nil {
				t.Fatal(err)
			}
			if err := s2.Recover(); err != nil {
				t.Fatal(err)
			}
			n, _ := s2.RowCount("t")
			if n != len(model) {
				t.Fatalf("recovered %d rows, model has %d", n, len(model))
			}
			for pk, v := range model {
				id, ok := s2.LookupPK("t", sqltypes.NewString(pk))
				if !ok {
					t.Fatalf("key %s lost in recovery", pk)
				}
				got, _ := s2.Get("t", id)
				if got[1].Int() != v {
					t.Fatalf("key %s: recovered %d, model %d", pk, got[1].Int(), v)
				}
			}
		})
	}
}
