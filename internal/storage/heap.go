package storage

import (
	"fmt"
	"sort"
)

// heap is the row store for one shard of a table: rows addressed by
// stable RowIDs. Deleted slots are tombstoned; IDs are never reused so
// the WAL can refer to rows by ID across the table's lifetime. ID
// allocation lives at the table level (tableStore.nextID) so IDs stay
// globally monotonic across shards; nextID here only tracks the high
// water mark for recovery.
type heap struct {
	rows   map[RowID]Row
	nextID RowID
}

func newHeap() *heap { return &heap{rows: make(map[RowID]Row), nextID: 1} }

// insertAt stores a row under a caller-allocated (or replayed) ID.
func (h *heap) insertAt(id RowID, r Row) {
	h.rows[id] = r
	if id >= h.nextID {
		h.nextID = id + 1
	}
}

func (h *heap) get(id RowID) (Row, bool) {
	r, ok := h.rows[id]
	return r, ok
}

func (h *heap) update(id RowID, r Row) error {
	if _, ok := h.rows[id]; !ok {
		return fmt.Errorf("storage: row %d not found", id)
	}
	h.rows[id] = r
	return nil
}

func (h *heap) delete(id RowID) bool {
	if _, ok := h.rows[id]; !ok {
		return false
	}
	delete(h.rows, id)
	return true
}

func (h *heap) count() int { return len(h.rows) }

// scanIDs returns all live row IDs in ascending order, giving scans a
// deterministic physical order (insertion order).
func (h *heap) scanIDs() []RowID {
	ids := make([]RowID, 0, len(h.rows))
	for id := range h.rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
