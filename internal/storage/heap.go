package storage

import (
	"math"
	"sort"
)

// tsInfinity marks a row version that has not been superseded or deleted:
// it is visible to every snapshot at or above its begin timestamp.
const tsInfinity = int64(math.MaxInt64)

// rowVersion is one entry of a row's version chain: the row image and the
// half-open commit-timestamp window [begin, end) during which it is the
// visible version. end == tsInfinity while the version is live.
type rowVersion struct {
	row   Row
	begin int64
	end   int64
}

// visibleAt reports whether the version is the one a snapshot at ts sees.
func (v *rowVersion) visibleAt(ts int64) bool {
	return v.begin <= ts && ts < v.end
}

// versionChain is a row's history, ordered by ascending begin timestamp.
// Writers only ever append (or stamp the last element's end); readers walk
// from the back, so the common case — reading the live version — is O(1).
type versionChain struct {
	versions []rowVersion
}

func (c *versionChain) latest() *rowVersion {
	if len(c.versions) == 0 {
		return nil
	}
	return &c.versions[len(c.versions)-1]
}

// live returns the current (not superseded, not deleted) row image.
func (c *versionChain) live() (Row, bool) {
	if v := c.latest(); v != nil && v.end == tsInfinity {
		return v.row, true
	}
	return nil, false
}

// at returns the row image a snapshot at ts sees, if any.
func (c *versionChain) at(ts int64) (Row, bool) {
	for i := len(c.versions) - 1; i >= 0; i-- {
		if c.versions[i].visibleAt(ts) {
			return c.versions[i].row, true
		}
		if c.versions[i].end <= ts {
			// Versions are ordered by begin; everything earlier ended
			// even sooner, so nothing below can be visible.
			return nil, false
		}
	}
	return nil, false
}

// heap is the versioned row store for one shard of a table: rows addressed
// by stable RowIDs, each holding a chain of committed versions so snapshot
// reads see the image as of their pinned timestamp while writers install
// new versions. Deleted rows keep their chain (with a finite end stamp)
// until garbage collection proves no live snapshot can still see it. IDs
// are never reused, so the WAL can refer to rows by ID across the table's
// lifetime; nextID here only tracks the high water mark for recovery.
type heap struct {
	rows   map[RowID]*versionChain
	nextID RowID
	live   int // chains whose latest version is live
}

func newHeap() *heap { return &heap{rows: make(map[RowID]*versionChain), nextID: 1} }

// insertVersion appends a live version beginning at ts under a
// caller-allocated (or replayed) ID. The chain may already exist with a
// dead tail when a primary-key change moved the row away and back.
func (h *heap) insertVersion(id RowID, r Row, ts int64) {
	c, ok := h.rows[id]
	if !ok {
		c = &versionChain{}
		h.rows[id] = c
	}
	if _, wasLive := c.live(); !wasLive {
		h.live++
	}
	c.versions = append(c.versions, rowVersion{row: r, begin: ts, end: tsInfinity})
	if id >= h.nextID {
		h.nextID = id + 1
	}
}

// get returns the live (latest committed) row image.
func (h *heap) get(id RowID) (Row, bool) {
	c, ok := h.rows[id]
	if !ok {
		return nil, false
	}
	return c.live()
}

// getAt returns the row image visible to a snapshot at ts.
func (h *heap) getAt(id RowID, ts int64) (Row, bool) {
	c, ok := h.rows[id]
	if !ok {
		return nil, false
	}
	return c.at(ts)
}

// supersede stamps the live version's end with ts (an update installing a
// replacement, or a delete). The superseded image stays readable to
// snapshots below ts until gc reclaims it. Returns the superseded row.
func (h *heap) supersede(id RowID, ts int64) (Row, bool) {
	c, ok := h.rows[id]
	if !ok {
		return nil, false
	}
	v := c.latest()
	if v == nil || v.end != tsInfinity {
		return nil, false
	}
	v.end = ts
	h.live--
	return v.row, true
}

// replaceAt wipes a row's history and installs a single version — the
// recovery path, where no snapshot can predate the process.
func (h *heap) replaceAt(id RowID, r Row, ts int64) {
	if c, ok := h.rows[id]; ok {
		if _, wasLive := c.live(); wasLive {
			h.live--
		}
	}
	h.rows[id] = &versionChain{versions: []rowVersion{{row: r, begin: ts, end: tsInfinity}}}
	h.live++
	if id >= h.nextID {
		h.nextID = id + 1
	}
}

// hardDelete removes a row and its whole history (recovery replay only).
func (h *heap) hardDelete(id RowID) bool {
	c, ok := h.rows[id]
	if !ok {
		return false
	}
	if _, wasLive := c.live(); wasLive {
		h.live--
	}
	delete(h.rows, id)
	return true
}

func (h *heap) count() int { return h.live }

// retainedCount reports superseded versions still held for old snapshots.
func (h *heap) retainedCount() int {
	n := 0
	for _, c := range h.rows {
		n += len(c.versions)
		if _, ok := c.live(); ok {
			n--
		}
	}
	return n
}

// scanIDs returns the IDs of all live rows in ascending order, giving
// scans a deterministic physical order (insertion order).
func (h *heap) scanIDs() []RowID {
	ids := make([]RowID, 0, h.live)
	for id, c := range h.rows {
		if _, ok := c.live(); ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// scanIDsAt returns the IDs visible to a snapshot at ts, ascending.
func (h *heap) scanIDsAt(ts int64) []RowID {
	ids := make([]RowID, 0, len(h.rows))
	for id, c := range h.rows {
		if _, ok := c.at(ts); ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// gcChain prunes one chain's versions whose end is at or below horizon —
// invisible to every live and future snapshot. Returns the versions
// reclaimed and whether the whole chain (row) is gone.
func (c *versionChain) gcChain(horizon int64) (pruned int, dead bool) {
	keep := c.versions[:0]
	for _, v := range c.versions {
		if v.end <= horizon {
			pruned++
			continue
		}
		keep = append(keep, v)
	}
	c.versions = keep
	return pruned, len(keep) == 0
}
