package storage

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"crowddb/internal/faultinject"
	"crowddb/internal/obs"
)

// SyncMode is the WAL durability policy.
type SyncMode string

const (
	// SyncAlways flushes and fsyncs every record before the mutation
	// returns: maximum durability, one syscall pair per row.
	SyncAlways SyncMode = "always"
	// SyncGroup (the default) acknowledges a mutation only after its
	// record is flushed and fsynced, but batches: concurrent writers on
	// the same shard coalesce into one flush+fsync (leader-based group
	// commit). No acknowledged write is ever lost.
	SyncGroup SyncMode = "group"
	// SyncOff flushes records to the OS per append but never fsyncs:
	// process crashes lose nothing, machine crashes may lose the tail.
	SyncOff SyncMode = "off"
)

func (m SyncMode) valid() error {
	switch m {
	case SyncAlways, SyncGroup, SyncOff:
		return nil
	}
	return fmt.Errorf("storage: unknown WAL sync mode %q (want always, group, or off)", m)
}

// walRecord is one JSON line in the write-ahead log. Exactly one of the
// payload field groups is meaningful per Op. LSN is a per-table
// monotonic mutation counter: a cross-shard row move writes records to
// two WAL files, and if a crash makes both copies of the row live,
// recovery keeps the one with the higher LSN.
type walRecord struct {
	Op    string          `json:"op"` // "insert", "update", "delete"
	Table string          `json:"table"`
	Row   RowID           `json:"row"`
	LSN   int64           `json:"lsn,omitempty"`
	Data  json.RawMessage `json:"data,omitempty"` // EncodeRow payload
}

// wal is an append-only JSON-lines log for one shard. Records are
// buffered under mu (callers hold their shard lock, so per-row order in
// the file matches apply order); durability is governed by the sync mode.
// In group mode, commit() is the acknowledgement barrier: the first
// waiter becomes the leader, flushes and fsyncs everything buffered so
// far, and wakes the batch — one syscall pair for many rows.
type wal struct {
	mu   sync.Mutex
	cond *sync.Cond
	f    *os.File
	w    *bufio.Writer
	mode SyncMode

	seq     int64 // records appended (buffered)
	synced  int64 // records durably committed
	syncing bool  // a leader is mid-flush
	err     error // sticky I/O error: the log is poisoned once a write fails

	// Optional observability (nil-safe): fsync latency and records per
	// group-commit batch. Set once via setMetrics before writes flow.
	fsyncHist *obs.Histogram
	batchHist *obs.Histogram
}

// setMetrics wires the fsync latency / batch size histograms.
func (l *wal) setMetrics(fsync, batch *obs.Histogram) {
	l.mu.Lock()
	l.fsyncHist = fsync
	l.batchHist = batch
	l.mu.Unlock()
}

func openWAL(path string, mode SyncMode) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	l := &wal{f: f, w: bufio.NewWriter(f), mode: mode}
	l.cond = sync.NewCond(&l.mu)
	return l, nil
}

// append buffers one record and returns its sequence number. Callers in
// group mode must call commit(seq) after releasing their shard lock; in
// always/off modes the record is already flushed on return.
func (l *wal) append(rec walRecord) (int64, error) {
	faultinject.Hit("storage.wal.append")
	if faultinject.Killed() {
		// Simulated crash: the record is lost exactly as a torn process
		// would have lost it; recovery replays only what reached disk.
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.seq, nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if _, err := l.w.Write(data); err != nil {
		l.err = err
		return 0, err
	}
	if err := l.w.WriteByte('\n'); err != nil {
		l.err = err
		return 0, err
	}
	l.seq++
	switch l.mode {
	case SyncAlways:
		start := time.Now()
		err := l.w.Flush()
		if err == nil {
			err = l.f.Sync()
		}
		if err != nil {
			l.err = err
			return 0, err
		}
		l.fsyncHist.Observe(time.Since(start).Seconds())
		l.batchHist.Observe(1)
		l.synced = l.seq
	case SyncOff:
		// Flush per record (crowd answers survive process crashes) but
		// skip the fsync: machine crashes may lose the tail.
		if err := l.w.Flush(); err != nil {
			l.err = err
			return 0, err
		}
		l.synced = l.seq
	}
	return l.seq, nil
}

// commit blocks until record seq is durable. In group mode the first
// caller to arrive leads: it flushes and fsyncs the whole buffered batch
// while later arrivals wait on the condition variable, then everyone
// covered by the batch returns together.
func (l *wal) commit(seq int64) error {
	if l.mode != SyncGroup {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.synced < seq && l.err == nil {
		if l.syncing {
			l.cond.Wait()
			continue
		}
		l.syncing = true
		target := l.seq
		batch := target - l.synced
		start := time.Now()
		err := l.w.Flush()
		l.mu.Unlock()
		if err == nil {
			err = l.f.Sync() // the batched syscall, outside the buffer lock
		}
		l.mu.Lock()
		l.syncing = false
		if err != nil {
			l.err = err
		} else if target > l.synced {
			l.synced = target
			l.fsyncHist.Observe(time.Since(start).Seconds())
			l.batchHist.Observe(float64(batch))
		}
		l.cond.Broadcast()
	}
	return l.err
}

// reset truncates the log after a checkpoint. Callers must guarantee no
// concurrent appends (the checkpoint holds this shard of every table),
// but writers may be parked in commit() for records the snapshot just
// captured — seq/synced are therefore MONOTONIC, never rewound: every
// record buffered so far is durable via the renamed snapshot, so synced
// jumps to seq and the waiters are released.
func (l *wal) reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	l.w.Reset(l.f)
	l.synced, l.err = l.seq, nil
	l.cond.Broadcast()
	return nil
}

func (l *wal) close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	if l.mode != SyncOff {
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	return l.f.Close()
}

// replayWAL streams records from the log at path to apply. A truncated final
// line (torn write) is tolerated and ends the replay, matching standard
// redo-log semantics.
func replayWAL(path string, apply func(walRecord) error) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn tail write: stop replay here.
			return nil
		}
		if err := apply(rec); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		return err
	}
	return nil
}

// ---------------------------------------------------------------------------
// On-disk layout: per-shard WALs and snapshots plus a shard-count meta
// file pinning the layout.

// walShardPath and snapshotShardPath name one shard's on-disk artifacts.
func walShardPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%03d.log", shard))
}

func snapshotShardPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("snapshot-%03d.json", shard))
}

// walLegacyPath is the pre-sharding single WAL; its presence marks an old
// layout this engine refuses to guess at.
func walLegacyPath(dir string) string { return filepath.Join(dir, "wal.log") }

func shardMetaPath(dir string) string { return filepath.Join(dir, "shards.json") }

// shardMeta pins a data directory's partitioning. Rows are placed by
// hash(PK) % shards, so the count must never change silently.
type shardMeta struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

func readShardMeta(dir string) (int, error) {
	data, err := os.ReadFile(shardMetaPath(dir))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var m shardMeta
	if err := json.Unmarshal(data, &m); err != nil {
		return 0, fmt.Errorf("storage: corrupt shard meta: %w", err)
	}
	if m.Shards < 1 || m.Shards > MaxShards {
		return 0, fmt.Errorf("storage: shard meta claims %d shards (want 1..%d)", m.Shards, MaxShards)
	}
	return m.Shards, nil
}

func writeShardMeta(dir string, shards int) error {
	data, err := json.Marshal(shardMeta{Version: 1, Shards: shards})
	if err != nil {
		return err
	}
	tmp := shardMetaPath(dir) + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, shardMetaPath(dir))
}
