package storage

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// walRecord is one JSON line in the write-ahead log. Exactly one of the
// payload field groups is meaningful per Op.
type walRecord struct {
	Op    string          `json:"op"` // "insert", "update", "delete"
	Table string          `json:"table"`
	Row   RowID           `json:"row"`
	Data  json.RawMessage `json:"data,omitempty"` // EncodeRow payload
}

// wal is an append-only JSON-lines log. Every mutation is durably appended
// before it is applied to the in-memory heap, and replayed on open.
type wal struct {
	f *os.File
	w *bufio.Writer
}

func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	return &wal{f: f, w: bufio.NewWriter(f)}, nil
}

func (l *wal) append(rec walRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := l.w.Write(data); err != nil {
		return err
	}
	if err := l.w.WriteByte('\n'); err != nil {
		return err
	}
	// CrowdDB flushes per record: losing crowd answers means paying twice.
	return l.w.Flush()
}

func (l *wal) close() error {
	if l == nil {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Close()
}

// replayWAL streams records from the log at path to apply. A truncated final
// line (torn write) is tolerated and ends the replay, matching standard
// redo-log semantics.
func replayWAL(path string, apply func(walRecord) error) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn tail write: stop replay here.
			return nil
		}
		if err := apply(rec); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		return err
	}
	return nil
}

// walPath and snapshotPath name the on-disk artifacts inside a data dir.
func walPath(dir string) string      { return filepath.Join(dir, "wal.log") }
func snapshotPath(dir string) string { return filepath.Join(dir, "snapshot.json") }
