package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBTreeBasic(t *testing.T) {
	bt := NewBTree()
	bt.Insert("b", 2)
	bt.Insert("a", 1)
	bt.Insert("c", 3)
	bt.Insert("b", 20) // duplicate key, second rowid
	if got := bt.Search("b"); len(got) != 2 {
		t.Errorf("Search(b) = %v", got)
	}
	if got := bt.Search("zzz"); got != nil {
		t.Errorf("Search(zzz) = %v", got)
	}
	if bt.Len() != 4 {
		t.Errorf("Len = %d", bt.Len())
	}
}

func TestBTreeSplits(t *testing.T) {
	bt := NewBTree()
	const n = 10_000
	for i := 0; i < n; i++ {
		bt.Insert(fmt.Sprintf("key%06d", i), RowID(i))
	}
	if bt.Height() < 2 {
		t.Errorf("tree of %d keys should have split, height=%d", n, bt.Height())
	}
	for _, probe := range []int{0, 1, n / 2, n - 1} {
		got := bt.Search(fmt.Sprintf("key%06d", probe))
		if len(got) != 1 || got[0] != RowID(probe) {
			t.Errorf("Search(%d) = %v", probe, got)
		}
	}
}

func TestBTreeAscendOrder(t *testing.T) {
	bt := NewBTree()
	perm := rand.New(rand.NewSource(1)).Perm(2000)
	for _, i := range perm {
		bt.Insert(fmt.Sprintf("%08d", i), RowID(i))
	}
	var keys []string
	bt.Ascend(func(k string, _ []RowID) bool {
		keys = append(keys, k)
		return true
	})
	if !sort.StringsAreSorted(keys) {
		t.Error("Ascend not in order")
	}
	if len(keys) != 2000 {
		t.Errorf("visited %d keys", len(keys))
	}
}

func TestBTreeAscendRange(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 100; i++ {
		bt.Insert(fmt.Sprintf("%03d", i), RowID(i))
	}
	var got []string
	bt.AscendRange("010", "020", func(k string, _ []RowID) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 10 || got[0] != "010" || got[9] != "019" {
		t.Errorf("range scan: %v", got)
	}
}

func TestBTreeDelete(t *testing.T) {
	bt := NewBTree()
	bt.Insert("a", 1)
	bt.Insert("a", 2)
	if !bt.Delete("a", 1) {
		t.Error("delete existing pair")
	}
	if bt.Delete("a", 1) {
		t.Error("double delete must report false")
	}
	if bt.Delete("nope", 1) {
		t.Error("delete missing key must report false")
	}
	if got := bt.Search("a"); len(got) != 1 || got[0] != 2 {
		t.Errorf("after delete: %v", got)
	}
	if !bt.Delete("a", 2) {
		t.Error("delete last pair")
	}
	if got := bt.Search("a"); got != nil {
		t.Errorf("tombstoned key must not be found: %v", got)
	}
	if bt.Len() != 0 {
		t.Errorf("Len = %d", bt.Len())
	}
}

func TestBTreeCompaction(t *testing.T) {
	bt := NewBTree()
	const n = 1000
	for i := 0; i < n; i++ {
		bt.Insert(fmt.Sprintf("%06d", i), RowID(i))
	}
	// Delete most keys to force compaction.
	for i := 0; i < n-10; i++ {
		bt.Delete(fmt.Sprintf("%06d", i), RowID(i))
	}
	if bt.tombstones > bt.liveKeys && bt.tombstones >= 64 {
		t.Errorf("compaction did not run: tombstones=%d live=%d", bt.tombstones, bt.liveKeys)
	}
	for i := n - 10; i < n; i++ {
		if got := bt.Search(fmt.Sprintf("%06d", i)); len(got) != 1 {
			t.Errorf("survivor %d lost: %v", i, got)
		}
	}
}

func TestBTreeReinsertAfterDelete(t *testing.T) {
	bt := NewBTree()
	bt.Insert("k", 1)
	bt.Delete("k", 1)
	bt.Insert("k", 2)
	if got := bt.Search("k"); len(got) != 1 || got[0] != 2 {
		t.Errorf("reinsert into tombstone: %v", got)
	}
}

// Property: the B-tree agrees with a reference map under a random workload
// of inserts and deletes.
func TestBTreeMatchesReferenceModel(t *testing.T) {
	type op struct {
		Key    uint8
		Rid    uint8
		Delete bool
	}
	check := func(ops []op) bool {
		bt := NewBTree()
		ref := map[string]map[RowID]int{} // key -> rid -> count
		for _, o := range ops {
			k := fmt.Sprintf("k%03d", o.Key%50)
			rid := RowID(o.Rid % 8)
			if o.Delete {
				bt.Delete(k, rid)
				if m := ref[k]; m != nil && m[rid] > 0 {
					m[rid]--
				}
			} else {
				bt.Insert(k, rid)
				if ref[k] == nil {
					ref[k] = map[RowID]int{}
				}
				ref[k][rid]++
			}
		}
		for k, m := range ref {
			want := map[RowID]int{}
			total := 0
			for rid, c := range m {
				if c > 0 {
					want[rid] = c
					total += c
				}
			}
			got := bt.Search(k)
			gotCount := map[RowID]int{}
			for _, r := range got {
				gotCount[r]++
			}
			if len(got) != total {
				return false
			}
			for rid, c := range want {
				if gotCount[rid] != c {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBTreeInsert(b *testing.B) {
	bt := NewBTree()
	for i := 0; i < b.N; i++ {
		bt.Insert(fmt.Sprintf("%012d", i), RowID(i))
	}
}

func BenchmarkBTreeSearch(b *testing.B) {
	bt := NewBTree()
	for i := 0; i < 100_000; i++ {
		bt.Insert(fmt.Sprintf("%012d", i), RowID(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Search(fmt.Sprintf("%012d", i%100_000))
	}
}
