package storage

import (
	"errors"
	"testing"
	"testing/quick"

	"crowddb/internal/sqltypes"
)

func memStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func talkRow(title string, attendees int64) Row {
	return Row{sqltypes.NewString(title), sqltypes.CNull(), sqltypes.NewInt(attendees)}
}

func setupTalk(t *testing.T, s *Store) {
	t.Helper()
	if err := s.CreateTable("Talk", []int{0}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertGetScan(t *testing.T) {
	s := memStore(t)
	setupTalk(t, s)
	id1, err := s.Insert("Talk", talkRow("CrowdDB", 100))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Insert("Talk", talkRow("Qurk", 80))
	if err != nil {
		t.Fatal(err)
	}
	row, ok := s.Get("Talk", id1)
	if !ok || row[0].Str() != "CrowdDB" {
		t.Errorf("Get: %v %v", row, ok)
	}
	if !row[1].IsCNull() {
		t.Error("CNULL must round-trip through storage")
	}
	ids, err := s.Scan("Talk")
	if err != nil || len(ids) != 2 || ids[0] != id1 || ids[1] != id2 {
		t.Errorf("Scan: %v %v", ids, err)
	}
	n, _ := s.RowCount("Talk")
	if n != 2 {
		t.Errorf("RowCount: %d", n)
	}
}

func TestPrimaryKeyEnforced(t *testing.T) {
	s := memStore(t)
	setupTalk(t, s)
	if _, err := s.Insert("Talk", talkRow("CrowdDB", 1)); err != nil {
		t.Fatal(err)
	}
	_, err := s.Insert("Talk", talkRow("CrowdDB", 2))
	var dup *DuplicateKeyError
	if !errors.As(err, &dup) {
		t.Fatalf("want DuplicateKeyError, got %v", err)
	}
	if dup.Table != "Talk" {
		t.Errorf("%+v", dup)
	}
}

func TestLookupPK(t *testing.T) {
	s := memStore(t)
	setupTalk(t, s)
	id, _ := s.Insert("Talk", talkRow("CrowdDB", 1))
	got, ok := s.LookupPK("Talk", sqltypes.NewString("CrowdDB"))
	if !ok || got != id {
		t.Errorf("LookupPK: %v %v", got, ok)
	}
	if _, ok := s.LookupPK("Talk", sqltypes.NewString("Nope")); ok {
		t.Error("missing key found")
	}
}

func TestUpdateMaintainsIndexes(t *testing.T) {
	s := memStore(t)
	setupTalk(t, s)
	if err := s.CreateIndex("Talk", "idx_att", []int{2}, false); err != nil {
		t.Fatal(err)
	}
	id, _ := s.Insert("Talk", talkRow("CrowdDB", 100))
	if err := s.Update("Talk", id, talkRow("CrowdDB", 250)); err != nil {
		t.Fatal(err)
	}
	rids, err := s.LookupIndex("Talk", "idx_att", sqltypes.NewInt(250))
	if err != nil || len(rids) != 1 || rids[0] != id {
		t.Errorf("new key: %v %v", rids, err)
	}
	rids, _ = s.LookupIndex("Talk", "idx_att", sqltypes.NewInt(100))
	if len(rids) != 0 {
		t.Errorf("old key still indexed: %v", rids)
	}
	// PK change to a conflicting key must fail.
	id2, _ := s.Insert("Talk", talkRow("Qurk", 80))
	if err := s.Update("Talk", id2, talkRow("CrowdDB", 80)); err == nil {
		t.Error("PK conflict on update must fail")
	}
}

func TestDelete(t *testing.T) {
	s := memStore(t)
	setupTalk(t, s)
	id, _ := s.Insert("Talk", talkRow("CrowdDB", 100))
	if err := s.Delete("Talk", id); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("Talk", id); ok {
		t.Error("row still present after delete")
	}
	if _, ok := s.LookupPK("Talk", sqltypes.NewString("CrowdDB")); ok {
		t.Error("PK still indexed after delete")
	}
	if err := s.Delete("Talk", id); err == nil {
		t.Error("double delete must fail")
	}
	// PK is reusable after delete.
	if _, err := s.Insert("Talk", talkRow("CrowdDB", 1)); err != nil {
		t.Errorf("reinsert after delete: %v", err)
	}
}

func TestUniqueSecondaryIndex(t *testing.T) {
	s := memStore(t)
	setupTalk(t, s)
	if err := s.CreateIndex("Talk", "uniq_att", []int{2}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("Talk", talkRow("A", 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("Talk", talkRow("B", 7)); err == nil {
		t.Error("unique index must reject duplicate")
	}
}

func TestCreateIndexOverExistingData(t *testing.T) {
	s := memStore(t)
	setupTalk(t, s)
	s.Insert("Talk", talkRow("A", 1))
	s.Insert("Talk", talkRow("B", 1))
	if err := s.CreateIndex("Talk", "i", []int{2}, false); err != nil {
		t.Fatal(err)
	}
	rids, _ := s.LookupIndex("Talk", "i", sqltypes.NewInt(1))
	if len(rids) != 2 {
		t.Errorf("backfill: %v", rids)
	}
	if err := s.CreateIndex("Talk", "u", []int{2}, true); err == nil {
		t.Error("unique index over duplicate data must fail")
	}
}

func TestUnknownTableErrors(t *testing.T) {
	s := memStore(t)
	if _, err := s.Insert("nope", Row{}); err == nil {
		t.Error("insert")
	}
	if _, err := s.Scan("nope"); err == nil {
		t.Error("scan")
	}
	if err := s.DropTable("nope"); err == nil {
		t.Error("drop")
	}
}

func TestIndexKeyComposite(t *testing.T) {
	// Composite ordering must be column-major.
	k1 := IndexKey(sqltypes.NewString("a"), sqltypes.NewInt(2))
	k2 := IndexKey(sqltypes.NewString("a"), sqltypes.NewInt(10))
	k3 := IndexKey(sqltypes.NewString("b"), sqltypes.NewInt(1))
	if !(k1 < k2 && k2 < k3) {
		t.Error("composite key order broken")
	}
	// Prefix must not collide: ("ab") vs ("a","b").
	if IndexKey(sqltypes.NewString("ab")) == IndexKey(sqltypes.NewString("a"), sqltypes.NewString("b")) {
		t.Error("composite key ambiguity")
	}
}

// Property: IndexKey over single int values preserves order, including
// negatives (exercises the escape path since encoded ints contain NUL).
func TestIndexKeyOrderProperty(t *testing.T) {
	check := func(a, b int64) bool {
		ka, kb := IndexKey(sqltypes.NewInt(a)), IndexKey(sqltypes.NewInt(b))
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	rows := []Row{
		{sqltypes.Null(), sqltypes.CNull()},
		{sqltypes.NewString("it's"), sqltypes.NewInt(-42), sqltypes.NewFloat(2.5), sqltypes.NewBool(true)},
		{},
	}
	for _, r := range rows {
		data, err := EncodeRow(r)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeRow(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != len(r) {
			t.Fatalf("len %d vs %d", len(back), len(r))
		}
		for i := range r {
			if !sqltypes.Identical(r[i], back[i]) {
				t.Errorf("value %d: %v vs %v", i, r[i], back[i])
			}
		}
	}
}
