package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"crowddb/internal/sqltypes"
)

// IndexKey builds a composite, order-preserving key from column values.
// Each part's encoding is escaped (0x00 -> 0x00 0xFF) and terminated with
// 0x00 0x00 so that lexicographic comparison of composite keys matches
// column-by-column comparison.
func IndexKey(vals ...sqltypes.Value) string {
	var sb strings.Builder
	for _, v := range vals {
		enc := sqltypes.EncodeKey(v)
		for i := 0; i < len(enc); i++ {
			if enc[i] == 0x00 {
				sb.WriteByte(0x00)
				sb.WriteByte(0xFF)
			} else {
				sb.WriteByte(enc[i])
			}
		}
		sb.WriteByte(0x00)
		sb.WriteByte(0x00)
	}
	return sb.String()
}

type indexStore struct {
	name   string
	cols   []int
	unique bool
	tree   *BTree
}

type tableStore struct {
	name    string
	pkCols  []int // ordinals of primary key columns; empty = no PK
	heap    *heap
	primary *BTree // over IndexKey(pk values); nil when no PK
	indexes map[string]*indexStore
}

// Store is the storage engine: one heap + indexes per table, with an
// optional write-ahead log for durability. All methods are safe for
// concurrent use.
type Store struct {
	mu     sync.RWMutex
	dir    string
	log    *wal
	tables map[string]*tableStore
}

// NewStore creates a store. With dir == "" the store is memory-only; with a
// directory, mutations are logged to a WAL inside it. Call Recover after
// re-creating the schema to replay the log.
func NewStore(dir string) (*Store, error) {
	s := &Store{dir: dir, tables: make(map[string]*tableStore)}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("storage: %w", err)
		}
		l, err := openWAL(walPath(dir))
		if err != nil {
			return nil, err
		}
		s.log = l
	}
	return s, nil
}

// Close releases the WAL file handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.close()
}

func (s *Store) table(name string) (*tableStore, error) {
	t, ok := s.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("storage: table %s not found", name)
	}
	return t, nil
}

// CreateTable allocates storage for a table. pkCols are the ordinals of the
// primary-key columns (may be empty).
func (s *Store) CreateTable(name string, pkCols []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	if _, exists := s.tables[key]; exists {
		return fmt.Errorf("storage: table %s already exists", name)
	}
	ts := &tableStore{
		name:    name,
		pkCols:  append([]int(nil), pkCols...),
		heap:    newHeap(),
		indexes: make(map[string]*indexStore),
	}
	if len(pkCols) > 0 {
		ts.primary = NewBTree()
	}
	s.tables[key] = ts
	return nil
}

// DropTable releases a table's storage.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := s.tables[key]; !ok {
		return fmt.Errorf("storage: table %s not found", name)
	}
	delete(s.tables, key)
	return nil
}

// CreateIndex builds a secondary index over the given column ordinals,
// indexing existing rows immediately.
func (s *Store) CreateIndex(table, name string, cols []int, unique bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, err := s.table(table)
	if err != nil {
		return err
	}
	key := strings.ToLower(name)
	if _, exists := ts.indexes[key]; exists {
		return fmt.Errorf("storage: index %s already exists on %s", name, table)
	}
	idx := &indexStore{name: name, cols: append([]int(nil), cols...), unique: unique, tree: NewBTree()}
	for _, id := range ts.heap.scanIDs() {
		row, _ := ts.heap.get(id)
		k := indexKeyFor(row, idx.cols)
		if unique && len(idx.tree.Search(k)) > 0 {
			return fmt.Errorf("storage: unique index %s violated by existing data", name)
		}
		idx.tree.Insert(k, id)
	}
	ts.indexes[key] = idx
	return nil
}

func indexKeyFor(row Row, cols []int) string {
	vals := make([]sqltypes.Value, len(cols))
	for i, c := range cols {
		vals[i] = row[c]
	}
	return IndexKey(vals...)
}

func (ts *tableStore) pkKey(row Row) string { return indexKeyFor(row, ts.pkCols) }

// Insert adds a row, enforcing primary-key uniqueness, and returns its ID.
func (s *Store) Insert(table string, row Row) (RowID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, err := s.table(table)
	if err != nil {
		return 0, err
	}
	if ts.primary != nil {
		k := ts.pkKey(row)
		if len(ts.primary.Search(k)) > 0 {
			return 0, &DuplicateKeyError{Table: table, Key: pkString(row, ts.pkCols)}
		}
	}
	for _, idx := range ts.indexes {
		if idx.unique && len(idx.tree.Search(indexKeyFor(row, idx.cols))) > 0 {
			return 0, &DuplicateKeyError{Table: table, Key: idx.name}
		}
	}
	if s.log != nil {
		data, err := EncodeRow(row)
		if err != nil {
			return 0, err
		}
		// The row ID the heap will assign is its nextID; log it explicitly.
		if err := s.log.append(walRecord{Op: "insert", Table: ts.name, Row: ts.heap.nextID, Data: data}); err != nil {
			return 0, err
		}
	}
	id := ts.heap.insert(row.Clone())
	if ts.primary != nil {
		ts.primary.Insert(ts.pkKey(row), id)
	}
	for _, idx := range ts.indexes {
		idx.tree.Insert(indexKeyFor(row, idx.cols), id)
	}
	return id, nil
}

// DuplicateKeyError reports a primary-key or unique-index violation.
type DuplicateKeyError struct {
	Table string
	Key   string
}

func (e *DuplicateKeyError) Error() string {
	return fmt.Sprintf("storage: duplicate key %q in table %s", e.Key, e.Table)
}

func pkString(row Row, cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = row[c].String()
	}
	return strings.Join(parts, ",")
}

// Update replaces the row at id, maintaining all indexes.
func (s *Store) Update(table string, id RowID, row Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, err := s.table(table)
	if err != nil {
		return err
	}
	old, ok := ts.heap.get(id)
	if !ok {
		return fmt.Errorf("storage: row %d not found in %s", id, table)
	}
	if ts.primary != nil {
		newKey := ts.pkKey(row)
		if newKey != ts.pkKey(old) {
			for _, other := range ts.primary.Search(newKey) {
				if other != id {
					return &DuplicateKeyError{Table: table, Key: pkString(row, ts.pkCols)}
				}
			}
		}
	}
	if s.log != nil {
		data, err := EncodeRow(row)
		if err != nil {
			return err
		}
		if err := s.log.append(walRecord{Op: "update", Table: ts.name, Row: id, Data: data}); err != nil {
			return err
		}
	}
	if ts.primary != nil {
		ts.primary.Delete(ts.pkKey(old), id)
		ts.primary.Insert(ts.pkKey(row), id)
	}
	for _, idx := range ts.indexes {
		idx.tree.Delete(indexKeyFor(old, idx.cols), id)
		idx.tree.Insert(indexKeyFor(row, idx.cols), id)
	}
	return ts.heap.update(id, row.Clone())
}

// Delete removes the row at id.
func (s *Store) Delete(table string, id RowID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, err := s.table(table)
	if err != nil {
		return err
	}
	old, ok := ts.heap.get(id)
	if !ok {
		return fmt.Errorf("storage: row %d not found in %s", id, table)
	}
	if s.log != nil {
		if err := s.log.append(walRecord{Op: "delete", Table: ts.name, Row: id}); err != nil {
			return err
		}
	}
	if ts.primary != nil {
		ts.primary.Delete(ts.pkKey(old), id)
	}
	for _, idx := range ts.indexes {
		idx.tree.Delete(indexKeyFor(old, idx.cols), id)
	}
	ts.heap.delete(id)
	return nil
}

// Get returns a copy of the row at id.
func (s *Store) Get(table string, id RowID) (Row, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ts, err := s.table(table)
	if err != nil {
		return nil, false
	}
	r, ok := ts.heap.get(id)
	if !ok {
		return nil, false
	}
	return r.Clone(), true
}

// Scan returns all live row IDs of a table in insertion order.
func (s *Store) Scan(table string) ([]RowID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ts, err := s.table(table)
	if err != nil {
		return nil, err
	}
	return ts.heap.scanIDs(), nil
}

// RowCount returns the number of live rows.
func (s *Store) RowCount(table string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ts, err := s.table(table)
	if err != nil {
		return 0, err
	}
	return ts.heap.count(), nil
}

// LookupPK finds the row whose primary key equals the given values.
func (s *Store) LookupPK(table string, pk ...sqltypes.Value) (RowID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ts, err := s.table(table)
	if err != nil || ts.primary == nil {
		return 0, false
	}
	rids := ts.primary.Search(IndexKey(pk...))
	if len(rids) == 0 {
		return 0, false
	}
	return rids[0], true
}

// LookupIndex returns the row IDs matching key values on a named index.
func (s *Store) LookupIndex(table, index string, vals ...sqltypes.Value) ([]RowID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ts, err := s.table(table)
	if err != nil {
		return nil, err
	}
	idx, ok := ts.indexes[strings.ToLower(index)]
	if !ok {
		return nil, fmt.Errorf("storage: index %s not found on %s", index, table)
	}
	return idx.tree.Search(IndexKey(vals...)), nil
}

// ---------------------------------------------------------------------------
// Durability: recovery and checkpointing

// Recover replays the snapshot (if any) and the WAL into the already-created
// tables. Call exactly once, after the schema has been re-created.
func (s *Store) Recover() error {
	if s.dir == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.loadSnapshotLocked(); err != nil {
		return err
	}
	return replayWAL(walPath(s.dir), func(rec walRecord) error {
		ts, err := s.table(rec.Table)
		if err != nil {
			return err
		}
		switch rec.Op {
		case "insert", "update":
			row, err := DecodeRow(rec.Data)
			if err != nil {
				return err
			}
			if old, ok := ts.heap.get(rec.Row); ok {
				if ts.primary != nil {
					ts.primary.Delete(ts.pkKey(old), rec.Row)
				}
				for _, idx := range ts.indexes {
					idx.tree.Delete(indexKeyFor(old, idx.cols), rec.Row)
				}
			}
			ts.heap.insertAt(rec.Row, row)
			if ts.primary != nil {
				ts.primary.Insert(ts.pkKey(row), rec.Row)
			}
			for _, idx := range ts.indexes {
				idx.tree.Insert(indexKeyFor(row, idx.cols), rec.Row)
			}
		case "delete":
			if old, ok := ts.heap.get(rec.Row); ok {
				if ts.primary != nil {
					ts.primary.Delete(ts.pkKey(old), rec.Row)
				}
				for _, idx := range ts.indexes {
					idx.tree.Delete(indexKeyFor(old, idx.cols), rec.Row)
				}
				ts.heap.delete(rec.Row)
			}
		default:
			return fmt.Errorf("storage: unknown wal op %q", rec.Op)
		}
		return nil
	})
}

// snapshotFile is the JSON checkpoint format: rows per table keyed by ID.
type snapshotFile struct {
	Tables map[string]map[RowID]json.RawMessage `json:"tables"`
}

func (s *Store) loadSnapshotLocked() error {
	data, err := os.ReadFile(snapshotPath(s.dir))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("storage: corrupt snapshot: %w", err)
	}
	for tname, rows := range snap.Tables {
		ts, err := s.table(tname)
		if err != nil {
			return err
		}
		ids := make([]RowID, 0, len(rows))
		for id := range rows {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			row, err := DecodeRow(rows[id])
			if err != nil {
				return err
			}
			ts.heap.insertAt(id, row)
			if ts.primary != nil {
				ts.primary.Insert(ts.pkKey(row), id)
			}
			for _, idx := range ts.indexes {
				idx.tree.Insert(indexKeyFor(row, idx.cols), id)
			}
		}
	}
	return nil
}

// Checkpoint writes a snapshot of all tables and truncates the WAL. On
// return, recovery needs only the snapshot plus any later WAL records.
func (s *Store) Checkpoint() error {
	if s.dir == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := snapshotFile{Tables: make(map[string]map[RowID]json.RawMessage)}
	for _, ts := range s.tables {
		rows := make(map[RowID]json.RawMessage, ts.heap.count())
		for _, id := range ts.heap.scanIDs() {
			r, _ := ts.heap.get(id)
			data, err := EncodeRow(r)
			if err != nil {
				return err
			}
			rows[id] = data
		}
		snap.Tables[ts.name] = rows
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		return err
	}
	tmp := snapshotPath(s.dir) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, snapshotPath(s.dir)); err != nil {
		return err
	}
	// Truncate the WAL: records up to here are captured by the snapshot.
	if err := s.log.close(); err != nil {
		return err
	}
	if err := os.Truncate(walPath(s.dir), 0); err != nil {
		return err
	}
	l, err := openWAL(walPath(s.dir))
	if err != nil {
		return err
	}
	s.log = l
	return nil
}

// Tables lists the table names the store currently holds (sorted).
func (s *Store) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for _, ts := range s.tables {
		names = append(names, ts.name)
	}
	sort.Strings(names)
	return names
}
