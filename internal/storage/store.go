package storage

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"crowddb/internal/sqltypes"
)

// IndexKey builds a composite, order-preserving key from column values.
// Each part's encoding is escaped (0x00 -> 0x00 0xFF) and terminated with
// 0x00 0x00 so that lexicographic comparison of composite keys matches
// column-by-column comparison.
func IndexKey(vals ...sqltypes.Value) string {
	var sb strings.Builder
	for _, v := range vals {
		enc := sqltypes.EncodeKey(v)
		for i := 0; i < len(enc); i++ {
			if enc[i] == 0x00 {
				sb.WriteByte(0x00)
				sb.WriteByte(0xFF)
			} else {
				sb.WriteByte(enc[i])
			}
		}
		sb.WriteByte(0x00)
		sb.WriteByte(0x00)
	}
	return sb.String()
}

// Shard-count bounds: MaxShards caps explicit configuration, and
// defaultShardCap caps the automatic runtime.NumCPU() default so small
// tables on big machines do not fragment into dozens of near-empty shards.
const (
	MaxShards       = 64
	defaultShardCap = 8
)

// DefaultShards is the automatic shard count: one per CPU, capped.
func DefaultShards() int {
	n := runtime.NumCPU()
	if n > defaultShardCap {
		n = defaultShardCap
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Options tunes a store at open time.
type Options struct {
	// Shards is the hash-partition fan-out for every table. 0 adopts the
	// on-disk count (or DefaultShards for a fresh store); an explicit
	// positive count that disagrees with the on-disk layout is an error
	// (the pinned contract: shard counts never change silently — see
	// ErrShardMismatch).
	Shards int
	// Sync is the WAL durability mode (default SyncGroup).
	Sync SyncMode
}

// ErrShardMismatch is returned when a store directory was created with a
// different shard count than the one explicitly requested. Rows are
// placed by hash(PK) % shards, so reopening with a different fan-out
// would make every lookup miss; re-shard by dump/re-import, or pass
// Shards: 0 to adopt the persisted count.
type ErrShardMismatch struct {
	Dir       string
	OnDisk    int
	Requested int
}

func (e *ErrShardMismatch) Error() string {
	return fmt.Sprintf("storage: %s was created with %d shards, reopen requested %d (pass 0 to adopt the on-disk count)",
		e.Dir, e.OnDisk, e.Requested)
}

type indexStore struct {
	name   string
	cols   []int
	unique bool
	tree   *BTree
}

// indexDef is the table-level definition an index is instantiated from
// (one tree per shard).
type indexDef struct {
	name   string
	cols   []int
	unique bool
}

// tableShard is one hash partition of a table: its own heap, primary
// B-tree, and secondary trees, all behind one lock. Writers on different
// shards never contend.
//
// Under MVCC the trees hold one entry per DISTINCT key any retained
// version of a row carries: updates and deletes leave the old-key entries
// in place (snapshot readers still probe them) and GC removes an entry
// only once every version carrying its key is reclaimed. Probes therefore
// re-verify each hit against the row version visible at their snapshot.
type tableShard struct {
	mu      sync.RWMutex
	heap    *heap
	primary *BTree // nil when the table has no PK
	indexes map[string]*indexStore
	// rowLSN records each live row's last mutation LSN; recovery uses it
	// to resolve the two-copies case a crashed cross-shard move leaves.
	rowLSN map[RowID]int64
}

type tableStore struct {
	name   string
	pkCols []int // ordinals of primary key columns; empty = no PK
	// nextID allocates globally unique, monotonically increasing row IDs
	// across all shards, so ascending-ID merges reproduce insertion order
	// exactly as the unsharded engine did.
	nextID atomic.Int64
	shards []*tableShard

	// defMu guards the index-definition list; the per-shard trees
	// themselves are guarded by their shard lock.
	defMu     sync.RWMutex
	idxDefs   []indexDef
	hasUnique atomic.Bool // any unique secondary index (insert slow path)
}

func newTableStore(name string, pkCols []int, nshards int) *tableStore {
	ts := &tableStore{name: name, pkCols: append([]int(nil), pkCols...)}
	for i := 0; i < nshards; i++ {
		sh := &tableShard{heap: newHeap(), indexes: make(map[string]*indexStore), rowLSN: make(map[RowID]int64)}
		if len(pkCols) > 0 {
			sh.primary = NewBTree()
		}
		ts.shards = append(ts.shards, sh)
	}
	return ts
}

func (ts *tableStore) shardOfKey(key string) int {
	if len(ts.shards) == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(ts.shards)))
}

// findShard locates the shard currently holding the LIVE version of id
// (read-locking each candidate in turn) — the write-path probe. PK-routed
// rows can live on any shard, so the probe walks them; ID-routed rows
// resolve directly.
func (ts *tableStore) findShard(id RowID) (int, Row, bool) {
	if len(ts.pkCols) == 0 {
		i := int(id) % len(ts.shards)
		sh := ts.shards[i]
		sh.mu.RLock()
		r, ok := sh.heap.get(id)
		sh.mu.RUnlock()
		if ok {
			return i, r, true
		}
		return 0, nil, false
	}
	for i, sh := range ts.shards {
		sh.mu.RLock()
		r, ok := sh.heap.get(id)
		sh.mu.RUnlock()
		if ok {
			return i, r, true
		}
	}
	return 0, nil, false
}

// lockShards write-locks the given shard indexes in ascending order (the
// global lock order: shard-major), deduplicating. Returns an unlock func.
func (ts *tableStore) lockShards(idx ...int) func() {
	sort.Ints(idx)
	locked := idx[:0]
	prev := -1
	for _, i := range idx {
		if i == prev {
			continue
		}
		ts.shards[i].mu.Lock()
		locked = append(locked, i)
		prev = i
	}
	return func() {
		for j := len(locked) - 1; j >= 0; j-- {
			ts.shards[locked[j]].mu.Unlock()
		}
	}
}

// allShardIdx returns 0..n-1 (the unique-secondary-index slow path locks
// every shard: a unique secondary key can collide across shards).
func (ts *tableStore) allShardIdx() []int {
	idx := make([]int, len(ts.shards))
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// Store is the storage engine: every table hash-partitioned across N
// shards (per-shard heap + B-trees + WAL file, each behind its own lock),
// with optional write-ahead logging for durability, and multi-version
// rows so snapshot readers never block writers (see mvcc.go). Row IDs are
// allocated from one per-table counter, so merging shards by ascending ID
// reconstructs global insertion order deterministically. All methods are
// safe for concurrent use; operations on different shards do not contend.
type Store struct {
	dir     string
	nshards int
	mode    SyncMode
	logs    []*wal // one per shard; nil when memory-only

	// mu serializes DDL (table-map swaps) and checkpointing; row
	// operations never take it — they load the copy-on-write table map
	// and then synchronize per shard.
	mu     sync.Mutex
	tables atomic.Value // map[string]*tableStore

	// clock issues commit timestamps (stamped into WAL records as the
	// LSN); visible is the watermark snapshots read at; retained counts
	// superseded versions awaiting GC.
	clock    atomic.Int64
	visible  atomic.Int64
	retained atomic.Int64
	// GC observability: sweep runs and versions reclaimed, lifetime.
	gcRuns      atomic.Int64
	gcReclaimed atomic.Int64
	mvccState
}

// NewStore creates a store with default options (automatic shard count,
// group-commit WAL). With dir == "" the store is memory-only; with a
// directory, mutations are logged to per-shard WALs inside it. Call
// Recover after re-creating the schema to replay the logs.
func NewStore(dir string) (*Store, error) {
	return NewStoreOptions(dir, Options{})
}

// NewStoreOptions creates a store with explicit sharding and WAL options.
func NewStoreOptions(dir string, opts Options) (*Store, error) {
	mode := opts.Sync
	if mode == "" {
		mode = SyncGroup
	}
	if err := mode.valid(); err != nil {
		return nil, err
	}
	nshards := opts.Shards
	if nshards > MaxShards {
		return nil, fmt.Errorf("storage: %d shards exceeds the maximum %d", nshards, MaxShards)
	}
	s := &Store{dir: dir, mode: mode, mvccState: newMVCCState()}
	s.tables.Store(map[string]*tableStore{})
	if dir == "" {
		if nshards <= 0 {
			nshards = DefaultShards()
		}
		s.nshards = nshards
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	onDisk, err := readShardMeta(dir)
	if err != nil {
		return nil, err
	}
	switch {
	case onDisk > 0 && nshards > 0 && onDisk != nshards:
		return nil, &ErrShardMismatch{Dir: dir, OnDisk: onDisk, Requested: nshards}
	case onDisk > 0:
		nshards = onDisk
	case nshards <= 0:
		nshards = DefaultShards()
	}
	s.nshards = nshards
	if onDisk == 0 {
		if err := writeShardMeta(dir, nshards); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nshards; i++ {
		l, err := openWAL(walShardPath(dir, i), mode)
		if err != nil {
			for _, prev := range s.logs {
				prev.close()
			}
			return nil, err
		}
		s.logs = append(s.logs, l)
	}
	return s, nil
}

// NumShards reports the hash-partition fan-out.
func (s *Store) NumShards() int { return s.nshards }

// Close flushes and releases every per-shard WAL handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, l := range s.logs {
		if err := l.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (s *Store) tableMap() map[string]*tableStore {
	return s.tables.Load().(map[string]*tableStore)
}

func (s *Store) table(name string) (*tableStore, error) {
	t, ok := s.tableMap()[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("storage: table %s not found", name)
	}
	return t, nil
}

// CreateTable allocates sharded storage for a table. pkCols are the
// ordinals of the primary-key columns (may be empty).
func (s *Store) CreateTable(name string, pkCols []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	old := s.tableMap()
	if _, exists := old[key]; exists {
		return fmt.Errorf("storage: table %s already exists", name)
	}
	next := make(map[string]*tableStore, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[key] = newTableStore(name, pkCols, s.nshards)
	s.tables.Store(next)
	return nil
}

// DropTable releases a table's storage.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	old := s.tableMap()
	if _, ok := old[key]; !ok {
		return fmt.Errorf("storage: table %s not found", name)
	}
	next := make(map[string]*tableStore, len(old))
	for k, v := range old {
		if k != key {
			next[k] = v
		}
	}
	s.tables.Store(next)
	return nil
}

// CreateIndex builds a secondary index over the given column ordinals
// (one tree per shard), indexing existing rows immediately. Every
// retained version's key is indexed — not just the live one — so
// snapshot readers that planned through the new index still see the rows
// their snapshot pins; uniqueness is judged on live rows only.
func (s *Store) CreateIndex(table, name string, cols []int, unique bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, err := s.table(table)
	if err != nil {
		return err
	}
	key := strings.ToLower(name)
	ts.defMu.Lock()
	defer ts.defMu.Unlock()
	for _, d := range ts.idxDefs {
		if strings.ToLower(d.name) == key {
			return fmt.Errorf("storage: index %s already exists on %s", name, table)
		}
	}
	unlock := ts.lockShards(ts.allShardIdx()...)
	defer unlock()
	// Uniqueness is a cross-shard property for secondary keys: collect all
	// live keys first, then commit the trees only if no duplicate exists.
	def := indexDef{name: name, cols: append([]int(nil), cols...), unique: unique}
	seen := make(map[string]bool)
	trees := make([]*BTree, len(ts.shards))
	for i, sh := range ts.shards {
		trees[i] = NewBTree()
		ids := make([]RowID, 0, len(sh.heap.rows))
		for id := range sh.heap.rows {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, id := range ids {
			added := make(map[string]bool, 1)
			for _, v := range sh.heap.rows[id].versions {
				k := indexKeyFor(v.row, def.cols)
				if unique && v.end == tsInfinity {
					if seen[k] {
						return fmt.Errorf("storage: unique index %s violated by existing data", name)
					}
					seen[k] = true
				}
				if !added[k] {
					trees[i].Insert(k, id)
					added[k] = true
				}
			}
		}
	}
	for i, sh := range ts.shards {
		sh.indexes[key] = &indexStore{name: name, cols: def.cols, unique: unique, tree: trees[i]}
	}
	ts.idxDefs = append(ts.idxDefs, def)
	if unique {
		ts.hasUnique.Store(true)
	}
	return nil
}

func indexKeyFor(row Row, cols []int) string {
	vals := make([]sqltypes.Value, len(cols))
	for i, c := range cols {
		vals[i] = row[c]
	}
	return IndexKey(vals...)
}

func (ts *tableStore) pkKey(row Row) string { return indexKeyFor(row, ts.pkCols) }

// DuplicateKeyError reports a primary-key or unique-index violation.
type DuplicateKeyError struct {
	Table string
	Key   string
}

func (e *DuplicateKeyError) Error() string {
	return fmt.Sprintf("storage: duplicate key %q in table %s", e.Key, e.Table)
}

func pkString(row Row, cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = row[c].String()
	}
	return strings.Join(parts, ",")
}

// treeInsertUnique inserts (key, id) unless the pair is already present —
// version chains can revisit a key (A→B→A) whose entry was retained.
func treeInsertUnique(tree *BTree, key string, id RowID) {
	for _, rid := range tree.Search(key) {
		if rid == id {
			return
		}
	}
	tree.Insert(key, id)
}

// liveKeyMatch reports whether id's LIVE version on this shard currently
// carries the given key — index entries may be stale (retained for old
// snapshots), so every write-path hit must be re-verified. Caller holds
// the shard lock.
func (sh *tableShard) liveKeyMatch(id RowID, cols []int, key string) bool {
	r, ok := sh.heap.get(id)
	return ok && indexKeyFor(r, cols) == key
}

// uniqueViolated reports whether a unique secondary index already holds
// the row's key LIVE on some shard (other than owner id, for updates).
// Caller holds every shard lock.
func (ts *tableStore) uniqueViolated(row Row, self RowID) (string, bool) {
	for _, d := range ts.idxDefs {
		if !d.unique {
			continue
		}
		k := indexKeyFor(row, d.cols)
		for _, sh := range ts.shards {
			for _, rid := range sh.indexes[strings.ToLower(d.name)].tree.Search(k) {
				if rid != self && sh.liveKeyMatch(rid, d.cols, k) {
					return d.name, true
				}
			}
		}
	}
	return "", false
}

// pkTaken reports whether any LIVE row on the shard holds the primary
// key. Stale tree entries (rows that moved or changed key, retained for
// snapshots) do not count. Caller holds the shard lock.
func (ts *tableStore) pkTaken(sh *tableShard, key string, self RowID) bool {
	for _, rid := range sh.primary.Search(key) {
		if rid != self && sh.liveKeyMatch(rid, ts.pkCols, key) {
			return true
		}
	}
	return false
}

// Insert adds a row in its own single-statement transaction.
func (s *Store) Insert(table string, row Row) (RowID, error) {
	tx := s.Begin()
	defer tx.Commit()
	return tx.Insert(table, row)
}

// Insert adds a row under the transaction's timestamp, enforcing
// primary-key uniqueness, and returns its ID. The fast path locks only
// the row's home shard; tables with unique secondary indexes lock every
// shard (the key may collide anywhere).
func (t *Txn) Insert(table string, row Row) (RowID, error) {
	s := t.s
	ts, err := s.table(table)
	if err != nil {
		return 0, err
	}
	pkRouted := len(ts.pkCols) > 0
	var unlock func()
	var home int
	var id RowID
	for {
		lockAll := ts.hasUnique.Load()
		if pkRouted {
			home = ts.shardOfKey(ts.pkKey(row))
		} else {
			// ID-routed: the ID decides the shard, so allocate first.
			id = RowID(ts.nextID.Add(1))
			home = int(id) % len(ts.shards)
		}
		if lockAll {
			unlock = ts.lockShards(ts.allShardIdx()...)
		} else {
			unlock = ts.lockShards(home)
		}
		// A concurrent CREATE UNIQUE INDEX (which holds every shard lock
		// to install) may have landed between the flag read and our lock:
		// re-check and widen the lock set if so. The flag is monotonic.
		if !lockAll && ts.hasUnique.Load() {
			unlock()
			continue
		}
		break
	}
	if pkRouted && ts.pkTaken(ts.shards[home], ts.pkKey(row), 0) {
		unlock()
		return 0, &DuplicateKeyError{Table: table, Key: pkString(row, ts.pkCols)}
	}
	if ts.hasUnique.Load() {
		if idx, bad := ts.uniqueViolated(row, 0); bad {
			unlock()
			return 0, &DuplicateKeyError{Table: table, Key: idx}
		}
	}
	if pkRouted {
		// Allocate after the duplicate checks so failed inserts burn no
		// IDs and single-threaded replays keep the unsharded sequence.
		id = RowID(ts.nextID.Add(1))
	}
	return s.finishInsert(ts, home, id, row, t.ts, unlock)
}

// finishInsert logs and applies an insert into shard `home` with the
// caller holding (at least) that shard's lock; unlock releases it.
// Group-commit acknowledgement happens after the locks are released so
// concurrent writers on the shard coalesce into one fsync.
func (s *Store) finishInsert(ts *tableStore, home int, id RowID, row Row, commitTS int64, unlock func()) (RowID, error) {
	var seq int64
	if s.logs != nil {
		data, err := EncodeRow(row)
		if err != nil {
			unlock()
			return 0, err
		}
		seq, err = s.logs[home].append(walRecord{Op: "insert", Table: ts.name, Row: id, LSN: commitTS, Data: data})
		if err != nil {
			unlock()
			return 0, err
		}
	}
	sh := ts.shards[home]
	sh.heap.insertVersion(id, row.Clone(), commitTS)
	sh.rowLSN[id] = commitTS
	if sh.primary != nil {
		treeInsertUnique(sh.primary, ts.pkKey(row), id)
	}
	for _, idx := range sh.indexes {
		treeInsertUnique(idx.tree, indexKeyFor(row, idx.cols), id)
	}
	unlock()
	if s.logs != nil {
		if err := s.logs[home].commit(seq); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// Update replaces a row in its own single-statement transaction.
func (s *Store) Update(table string, id RowID, row Row) error {
	tx := s.Begin()
	defer tx.Commit()
	return tx.Update(table, id, row)
}

// Update installs a new version of the row at id under the transaction's
// timestamp, maintaining all indexes. The superseded version is retained
// for live snapshots: old index entries stay in place until GC. A
// primary-key change can re-home the row onto a different shard; both
// shards are locked in ascending order and the move is logged as a delete
// on the old shard's WAL plus an upsert on the new one's.
func (t *Txn) Update(table string, id RowID, row Row) error {
	s := t.s
	ts, err := s.table(table)
	if err != nil {
		return err
	}
	for {
		oldShard, _, ok := ts.findShard(id)
		if !ok {
			return fmt.Errorf("storage: row %d not found in %s", id, table)
		}
		newShard := oldShard
		if len(ts.pkCols) > 0 {
			newShard = ts.shardOfKey(ts.pkKey(row))
		}
		lockAll := ts.hasUnique.Load()
		var unlock func()
		if lockAll {
			unlock = ts.lockShards(ts.allShardIdx()...)
		} else {
			unlock = ts.lockShards(oldShard, newShard)
		}
		// Re-check after locking: a concurrent CREATE UNIQUE INDEX may
		// have landed between the flag read and our lock acquisition.
		if !lockAll && ts.hasUnique.Load() {
			unlock()
			continue
		}
		src := ts.shards[oldShard]
		old, ok := src.heap.get(id)
		if !ok {
			unlock() // the row moved or vanished between probe and lock
			continue
		}
		if src.primary != nil {
			newKey := ts.pkKey(row)
			if newKey != ts.pkKey(old) && ts.pkTaken(ts.shards[newShard], newKey, id) {
				unlock()
				return &DuplicateKeyError{Table: table, Key: pkString(row, ts.pkCols)}
			}
		}
		if ts.hasUnique.Load() {
			if idx, bad := ts.uniqueViolated(row, id); bad {
				unlock()
				return &DuplicateKeyError{Table: table, Key: idx}
			}
		}
		var seqs [2]int64
		var logged [2]int
		nlogged := 0
		if s.logs != nil {
			data, err := EncodeRow(row)
			if err != nil {
				unlock()
				return err
			}
			// Cross-shard move: the new shard's upsert is logged (and
			// below, fsynced) BEFORE the old shard's delete. A crash
			// between the two can leave both copies live — never zero —
			// and recovery keeps the higher-LSN copy (reconcileMoves).
			seq, err := s.logs[newShard].append(walRecord{Op: "update", Table: ts.name, Row: id, LSN: t.ts, Data: data})
			if err != nil {
				unlock()
				return err
			}
			seqs[nlogged], logged[nlogged] = seq, newShard
			nlogged++
			if newShard != oldShard {
				seq, err := s.logs[oldShard].append(walRecord{Op: "delete", Table: ts.name, Row: id, LSN: t.ts})
				if err != nil {
					unlock()
					return err
				}
				seqs[nlogged], logged[nlogged] = seq, oldShard
				nlogged++
			}
		}
		dst := ts.shards[newShard]
		// Supersede the old version in place (snapshots keep reading it;
		// its index entries stay until GC) and install the new one.
		src.heap.supersede(id, t.ts)
		s.retained.Add(1)
		if newShard != oldShard {
			delete(src.rowLSN, id)
		}
		dst.heap.insertVersion(id, row.Clone(), t.ts)
		dst.rowLSN[id] = t.ts
		if dst.primary != nil {
			treeInsertUnique(dst.primary, ts.pkKey(row), id)
		}
		for _, idx := range dst.indexes {
			treeInsertUnique(idx.tree, indexKeyFor(row, idx.cols), id)
		}
		unlock()
		for i := 0; i < nlogged; i++ {
			if err := s.logs[logged[i]].commit(seqs[i]); err != nil {
				return err
			}
		}
		return nil
	}
}

// Delete removes a row in its own single-statement transaction.
func (s *Store) Delete(table string, id RowID) error {
	tx := s.Begin()
	defer tx.Commit()
	return tx.Delete(table, id)
}

// Delete ends the row's live version at the transaction's timestamp. The
// final version (and its index entries) is retained for live snapshots
// until GC reclaims it.
func (t *Txn) Delete(table string, id RowID) error {
	s := t.s
	ts, err := s.table(table)
	if err != nil {
		return err
	}
	for {
		shard, _, ok := ts.findShard(id)
		if !ok {
			return fmt.Errorf("storage: row %d not found in %s", id, table)
		}
		unlock := ts.lockShards(shard)
		sh := ts.shards[shard]
		if _, ok := sh.heap.get(id); !ok {
			unlock()
			continue
		}
		var seq int64
		if s.logs != nil {
			seq, err = s.logs[shard].append(walRecord{Op: "delete", Table: ts.name, Row: id, LSN: t.ts})
			if err != nil {
				unlock()
				return err
			}
		}
		sh.heap.supersede(id, t.ts)
		s.retained.Add(1)
		delete(sh.rowLSN, id)
		unlock()
		if s.logs != nil {
			return s.logs[shard].commit(seq)
		}
		return nil
	}
}

// Get returns a copy of the row at id as of the current watermark.
func (s *Store) Get(table string, id RowID) (Row, bool) {
	return s.GetAt(table, id, s.visible.Load())
}

// GetAt returns a copy of the row version at id visible to a snapshot at
// ts (probing shards for PK-routed tables — a moved row's versions live
// on different shards, but at most one is visible at any timestamp).
func (s *Store) GetAt(table string, id RowID, ts int64) (Row, bool) {
	t, err := s.table(table)
	if err != nil {
		return nil, false
	}
	if len(t.pkCols) == 0 {
		sh := t.shards[int(id)%len(t.shards)]
		sh.mu.RLock()
		r, ok := sh.heap.getAt(id, ts)
		sh.mu.RUnlock()
		if !ok {
			return nil, false
		}
		return r.Clone(), true
	}
	for _, sh := range t.shards {
		sh.mu.RLock()
		r, ok := sh.heap.getAt(id, ts)
		sh.mu.RUnlock()
		if ok {
			return r.Clone(), true
		}
	}
	return nil, false
}

// Scan returns all row IDs visible at the current watermark in insertion
// order (ascending ID across shards).
func (s *Store) Scan(table string) ([]RowID, error) {
	return s.ScanAt(table, s.visible.Load())
}

// ScanAt returns the row IDs visible to a snapshot at ts, ascending.
func (s *Store) ScanAt(table string, at int64) ([]RowID, error) {
	ts, err := s.table(table)
	if err != nil {
		return nil, err
	}
	perShard := make([][]RowID, len(ts.shards))
	total := 0
	for i, sh := range ts.shards {
		sh.mu.RLock()
		perShard[i] = sh.heap.scanIDsAt(at)
		sh.mu.RUnlock()
		total += len(perShard[i])
	}
	return mergeIDs(perShard, total), nil
}

// mergeIDs k-way merges ascending per-shard ID lists into one ascending
// list (global insertion order).
func mergeIDs(perShard [][]RowID, total int) []RowID {
	out := make([]RowID, 0, total)
	pos := make([]int, len(perShard))
	for len(out) < total {
		best, bestID := -1, RowID(0)
		for i, ids := range perShard {
			if pos[i] >= len(ids) {
				continue
			}
			if best < 0 || ids[pos[i]] < bestID {
				best, bestID = i, ids[pos[i]]
			}
		}
		out = append(out, bestID)
		pos[best]++
	}
	return out
}

// ScanRows snapshots a table's rows at the current watermark in insertion
// order with one lock acquisition per shard, returning parallel ID and
// row slices. This is the bulk read path: no per-row lock churn.
func (s *Store) ScanRows(table string) ([]RowID, []Row, error) {
	return s.ScanRowsAt(table, s.visible.Load())
}

// ScanRowsAt is ScanRows pinned to a snapshot timestamp: it returns
// exactly the rows visible at ts, however long ago that watermark was
// pinned and however many writes have committed since.
func (s *Store) ScanRowsAt(table string, at int64) ([]RowID, []Row, error) {
	ts, err := s.table(table)
	if err != nil {
		return nil, nil, err
	}
	ids := make([][]RowID, len(ts.shards))
	rows := make([][]Row, len(ts.shards))
	total := 0
	for i := range ts.shards {
		ids[i], rows[i] = ts.snapshotShard(i, at)
		total += len(ids[i])
	}
	return mergeRows(ids, rows, total)
}

// ScanShardRows snapshots one shard's rows at the current watermark.
func (s *Store) ScanShardRows(table string, shard int) ([]RowID, []Row, error) {
	return s.ScanShardRowsAt(table, shard, s.visible.Load())
}

// ScanShardRowsAt snapshots one shard's rows visible at ts (ascending ID)
// under one lock acquisition — the unit of work of a parallel scan.
func (s *Store) ScanShardRowsAt(table string, shard int, at int64) ([]RowID, []Row, error) {
	ts, err := s.table(table)
	if err != nil {
		return nil, nil, err
	}
	if shard < 0 || shard >= len(ts.shards) {
		return nil, nil, fmt.Errorf("storage: shard %d out of range for %s (%d shards)", shard, table, len(ts.shards))
	}
	ids, rows := ts.snapshotShard(shard, at)
	return ids, rows, nil
}

func (ts *tableStore) snapshotShard(i int, at int64) ([]RowID, []Row) {
	sh := ts.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ids := sh.heap.scanIDsAt(at)
	rows := make([]Row, len(ids))
	for j, id := range ids {
		r, _ := sh.heap.getAt(id, at)
		rows[j] = r.Clone()
	}
	return ids, rows
}

func mergeRows(ids [][]RowID, rows [][]Row, total int) ([]RowID, []Row, error) {
	outIDs := make([]RowID, 0, total)
	outRows := make([]Row, 0, total)
	pos := make([]int, len(ids))
	for len(outIDs) < total {
		best, bestID := -1, RowID(0)
		for i := range ids {
			if pos[i] >= len(ids[i]) {
				continue
			}
			if best < 0 || ids[i][pos[i]] < bestID {
				best, bestID = i, ids[i][pos[i]]
			}
		}
		outIDs = append(outIDs, bestID)
		outRows = append(outRows, rows[best][pos[best]])
		pos[best]++
	}
	return outIDs, outRows, nil
}

// RowCount returns the number of live rows.
func (s *Store) RowCount(table string) (int, error) {
	ts, err := s.table(table)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, sh := range ts.shards {
		sh.mu.RLock()
		n += sh.heap.count()
		sh.mu.RUnlock()
	}
	return n, nil
}

// LookupPK finds the row whose primary key equals the given values at the
// current watermark (a single-shard probe: the key hashes to its home).
func (s *Store) LookupPK(table string, pk ...sqltypes.Value) (RowID, bool) {
	id, _, ok := s.lookupPK(table, false, pk, s.visible.Load())
	return id, ok
}

// LookupPKRow is LookupPK that also returns a copy of the row under the
// same lock acquisition (no separate Get round-trip).
func (s *Store) LookupPKRow(table string, pk ...sqltypes.Value) (RowID, Row, bool) {
	return s.lookupPK(table, true, pk, s.visible.Load())
}

// LookupPKRowAt probes the primary key as a snapshot at ts sees it: the
// version visible at ts whose key matches, even if the row has since been
// updated, moved, or deleted.
func (s *Store) LookupPKRowAt(table string, at int64, pk ...sqltypes.Value) (RowID, Row, bool) {
	return s.lookupPK(table, true, pk, at)
}

func (s *Store) lookupPK(table string, withRow bool, pk []sqltypes.Value, at int64) (RowID, Row, bool) {
	ts, err := s.table(table)
	if err != nil || len(ts.pkCols) == 0 {
		return 0, nil, false
	}
	key := IndexKey(pk...)
	sh := ts.shards[ts.shardOfKey(key)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	// Entries may be stale (retained for old snapshots): verify each hit
	// against the version visible at the read timestamp. Any version
	// carrying this key was routed here, so one shard suffices.
	for _, rid := range sh.primary.Search(key) {
		r, ok := sh.heap.getAt(rid, at)
		if !ok || ts.pkKey(r) != key {
			continue
		}
		if !withRow {
			return rid, nil, true
		}
		return rid, r.Clone(), true
	}
	return 0, nil, false
}

// LookupIndex returns the row IDs matching key values on a named index at
// the current watermark, in insertion order (ascending ID across shards).
func (s *Store) LookupIndex(table, index string, vals ...sqltypes.Value) ([]RowID, error) {
	ids, _, err := s.lookupIndex(table, index, false, vals, s.visible.Load())
	return ids, err
}

// LookupIndexRows returns matching rows (with their IDs) in insertion
// order, cloned under one lock acquisition per shard.
func (s *Store) LookupIndexRows(table, index string, vals ...sqltypes.Value) ([]RowID, []Row, error) {
	return s.lookupIndex(table, index, true, vals, s.visible.Load())
}

// LookupIndexRowsAt probes a secondary index as a snapshot at ts sees it.
func (s *Store) LookupIndexRowsAt(table, index string, at int64, vals ...sqltypes.Value) ([]RowID, []Row, error) {
	return s.lookupIndex(table, index, true, vals, at)
}

func (s *Store) lookupIndex(table, index string, withRows bool, vals []sqltypes.Value, at int64) ([]RowID, []Row, error) {
	ts, err := s.table(table)
	if err != nil {
		return nil, nil, err
	}
	key := IndexKey(vals...)
	iname := strings.ToLower(index)
	type hit struct {
		id  RowID
		row Row
	}
	var hits []hit
	for _, sh := range ts.shards {
		sh.mu.RLock()
		idx, ok := sh.indexes[iname]
		if !ok {
			sh.mu.RUnlock()
			return nil, nil, fmt.Errorf("storage: index %s not found on %s", index, table)
		}
		for _, rid := range idx.tree.Search(key) {
			// Stale-entry filter: the version visible at the read
			// timestamp must actually carry this key.
			r, ok := sh.heap.getAt(rid, at)
			if !ok || indexKeyFor(r, idx.cols) != key {
				continue
			}
			h := hit{id: rid}
			if withRows {
				h.row = r.Clone()
			}
			hits = append(hits, h)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].id < hits[j].id })
	ids := make([]RowID, len(hits))
	var rows []Row
	if withRows {
		rows = make([]Row, len(hits))
	}
	for i, h := range hits {
		ids[i] = h.id
		if withRows {
			rows[i] = h.row
		}
	}
	return ids, rows, nil
}

// ---------------------------------------------------------------------------
// Durability: recovery and checkpointing

// Recover replays the per-shard snapshots (if any) and WALs into the
// already-created tables, one goroutine per shard. Call exactly once,
// after the schema has been re-created. Version history does not survive
// a restart: recovery rebuilds single-version chains (no snapshot can
// predate the process) and resumes the commit clock above every
// recovered timestamp.
func (s *Store) Recover() error {
	if s.dir == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if legacy := walLegacyPath(s.dir); fileExists(legacy) {
		return fmt.Errorf("storage: %s uses the pre-sharding single-WAL layout; re-import the data (legacy %s present)", s.dir, legacy)
	}
	errs := make([]error, s.nshards)
	var wg sync.WaitGroup
	for i := 0; i < s.nshards; i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			errs[shard] = s.recoverShard(shard)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	s.reconcileMoves()
	// Row-ID allocation and the commit clock resume above every
	// recovered value.
	var maxTS int64
	for _, ts := range s.tableMap() {
		var max RowID
		for _, sh := range ts.shards {
			if m := sh.heap.nextID - 1; m > max {
				max = m
			}
			for _, l := range sh.rowLSN {
				if l > maxTS {
					maxTS = l
				}
			}
		}
		if int64(max) > ts.nextID.Load() {
			ts.nextID.Store(int64(max))
		}
	}
	if maxTS > s.clock.Load() {
		s.clock.Store(maxTS)
		s.visible.Store(maxTS)
	}
	return nil
}

// reconcileMoves resolves the one inconsistency a crashed cross-shard
// move can leave: the new shard's upsert was fsynced but the old shard's
// delete was not, so the same RowID is live on two shards. The upsert is
// always made durable first, so the higher-LSN copy is the newer one —
// keep it, purge the stale copy. (Zero copies is impossible: the delete
// is never durable before the upsert.)
func (s *Store) reconcileMoves() {
	for _, ts := range s.tableMap() {
		if len(ts.pkCols) == 0 || len(ts.shards) == 1 {
			continue // ID-routed rows never move
		}
		type loc struct {
			shard int
			lsn   int64
		}
		seen := make(map[RowID]loc)
		for i, sh := range ts.shards {
			for _, id := range sh.heap.scanIDs() {
				l := sh.rowLSN[id]
				prev, dup := seen[id]
				if !dup {
					seen[id] = loc{i, l}
					continue
				}
				victim := prev.shard
				if l < prev.lsn {
					victim = i
				} else {
					seen[id] = loc{i, l}
				}
				ts.purgeRow(victim, id)
			}
		}
	}
}

// purgeRow removes a stale row copy from one shard (recovery only; no
// locking needed and nothing is logged — the WAL already reflects the
// surviving copy).
func (ts *tableStore) purgeRow(shard int, id RowID) {
	sh := ts.shards[shard]
	row, ok := sh.heap.get(id)
	if !ok {
		return
	}
	if sh.primary != nil {
		sh.primary.Delete(ts.pkKey(row), id)
	}
	for _, idx := range sh.indexes {
		idx.tree.Delete(indexKeyFor(row, idx.cols), id)
	}
	sh.heap.hardDelete(id)
	delete(sh.rowLSN, id)
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// recoverShard loads one shard's snapshot then replays its WAL. Shards
// are disjoint, so recovery parallelizes with no locking beyond the
// shard's own mutex (taken for symmetry; no concurrent use yet). Replay
// applies destructively (replace/hard-delete, eager index maintenance):
// there is no history to retain at recovery time.
func (s *Store) recoverShard(shard int) error {
	if err := s.loadSnapshotShard(shard); err != nil {
		return err
	}
	return replayWAL(walShardPath(s.dir, shard), func(rec walRecord) error {
		ts, err := s.table(rec.Table)
		if err != nil {
			return err
		}
		sh := ts.shards[shard]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		switch rec.Op {
		case "insert", "update":
			row, err := DecodeRow(rec.Data)
			if err != nil {
				return err
			}
			if old, ok := sh.heap.get(rec.Row); ok {
				if sh.primary != nil {
					sh.primary.Delete(ts.pkKey(old), rec.Row)
				}
				for _, idx := range sh.indexes {
					idx.tree.Delete(indexKeyFor(old, idx.cols), rec.Row)
				}
			}
			sh.heap.replaceAt(rec.Row, row, rec.LSN)
			sh.rowLSN[rec.Row] = rec.LSN
			if sh.primary != nil {
				sh.primary.Insert(ts.pkKey(row), rec.Row)
			}
			for _, idx := range sh.indexes {
				idx.tree.Insert(indexKeyFor(row, idx.cols), rec.Row)
			}
		case "delete":
			if old, ok := sh.heap.get(rec.Row); ok {
				if sh.primary != nil {
					sh.primary.Delete(ts.pkKey(old), rec.Row)
				}
				for _, idx := range sh.indexes {
					idx.tree.Delete(indexKeyFor(old, idx.cols), rec.Row)
				}
				sh.heap.hardDelete(rec.Row)
				delete(sh.rowLSN, rec.Row)
			}
		default:
			return fmt.Errorf("storage: unknown wal op %q", rec.Op)
		}
		return nil
	})
}

// snapshotFile is the per-shard JSON checkpoint format: rows per table
// keyed by ID (the rows of exactly one shard of each table), each with
// the LSN of its last mutation (for post-crash move reconciliation).
// Only live rows are checkpointed: version history never survives a
// restart, so superseded versions have nothing to offer recovery.
type snapshotFile struct {
	Tables map[string]map[RowID]snapRow `json:"tables"`
}

type snapRow struct {
	Data json.RawMessage `json:"d"`
	LSN  int64           `json:"l,omitempty"`
}

func (s *Store) loadSnapshotShard(shard int) error {
	data, err := os.ReadFile(snapshotShardPath(s.dir, shard))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("storage: corrupt snapshot shard %d: %w", shard, err)
	}
	for tname, rows := range snap.Tables {
		ts, err := s.table(tname)
		if err != nil {
			return err
		}
		sh := ts.shards[shard]
		sh.mu.Lock()
		ids := make([]RowID, 0, len(rows))
		for id := range rows {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			row, err := DecodeRow(rows[id].Data)
			if err != nil {
				sh.mu.Unlock()
				return err
			}
			sh.heap.replaceAt(id, row, rows[id].LSN)
			sh.rowLSN[id] = rows[id].LSN
			if sh.primary != nil {
				sh.primary.Insert(ts.pkKey(row), id)
			}
			for _, idx := range sh.indexes {
				idx.tree.Insert(indexKeyFor(row, idx.cols), id)
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// Checkpoint writes per-shard snapshots and truncates each shard's WAL,
// one goroutine per shard. On return, recovery needs only the snapshots
// plus any later WAL records. Each shard checkpoints independently: it
// locks that shard of every table (shard-major lock order), snapshots,
// then resets its WAL — writers on other shards are never blocked.
func (s *Store) Checkpoint() error {
	if s.dir == "" {
		return nil
	}
	s.mu.Lock() // excludes DDL: the table set must not change mid-checkpoint
	defer s.mu.Unlock()
	tables := s.tableMap()
	names := make([]string, 0, len(tables))
	for k := range tables {
		names = append(names, k)
	}
	sort.Strings(names)
	errs := make([]error, s.nshards)
	var wg sync.WaitGroup
	for i := 0; i < s.nshards; i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			errs[shard] = s.checkpointShard(shard, names, tables)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) checkpointShard(shard int, names []string, tables map[string]*tableStore) error {
	// Lock this shard of every table (ascending name: the shard-major
	// global order), so no writer can append to this shard's WAL between
	// the snapshot and the truncation.
	for _, n := range names {
		tables[n].shards[shard].mu.Lock()
	}
	defer func() {
		for i := len(names) - 1; i >= 0; i-- {
			tables[names[i]].shards[shard].mu.Unlock()
		}
	}()
	snap := snapshotFile{Tables: make(map[string]map[RowID]snapRow)}
	for _, n := range names {
		ts := tables[n]
		sh := ts.shards[shard]
		rows := make(map[RowID]snapRow, sh.heap.count())
		for _, id := range sh.heap.scanIDs() {
			r, _ := sh.heap.get(id)
			data, err := EncodeRow(r)
			if err != nil {
				return err
			}
			rows[id] = snapRow{Data: data, LSN: sh.rowLSN[id]}
		}
		snap.Tables[ts.name] = rows
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		return err
	}
	path := snapshotShardPath(s.dir, shard)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	// Records up to here are captured by the snapshot: reset the WAL.
	return s.logs[shard].reset()
}

// Tables lists the table names the store currently holds (sorted).
func (s *Store) Tables() []string {
	m := s.tableMap()
	names := make([]string, 0, len(m))
	for _, ts := range m {
		names = append(names, ts.name)
	}
	sort.Strings(names)
	return names
}
