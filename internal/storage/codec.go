package storage

import (
	"encoding/json"
	"fmt"

	"crowddb/internal/sqltypes"
)

// Row is a tuple of values, positionally matching the table's columns.
type Row []sqltypes.Value

// Clone returns an independent copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// wireValue is the JSON wire form of a value, used by the WAL and snapshots.
// K is a one-letter kind tag: n=NULL, c=CNULL, s=string, i=int, f=float,
// b=bool.
type wireValue struct {
	K string          `json:"k"`
	V json.RawMessage `json:"v,omitempty"`
}

func encodeValue(v sqltypes.Value) (wireValue, error) {
	switch v.Kind() {
	case sqltypes.KindNull:
		return wireValue{K: "n"}, nil
	case sqltypes.KindCNull:
		return wireValue{K: "c"}, nil
	case sqltypes.KindString:
		raw, err := json.Marshal(v.Str())
		return wireValue{K: "s", V: raw}, err
	case sqltypes.KindInt:
		raw, err := json.Marshal(v.Int())
		return wireValue{K: "i", V: raw}, err
	case sqltypes.KindFloat:
		raw, err := json.Marshal(v.Float())
		return wireValue{K: "f", V: raw}, err
	case sqltypes.KindBool:
		raw, err := json.Marshal(v.Bool())
		return wireValue{K: "b", V: raw}, err
	default:
		return wireValue{}, fmt.Errorf("storage: cannot encode value kind %v", v.Kind())
	}
}

func decodeValue(w wireValue) (sqltypes.Value, error) {
	switch w.K {
	case "n":
		return sqltypes.Null(), nil
	case "c":
		return sqltypes.CNull(), nil
	case "s":
		var s string
		if err := json.Unmarshal(w.V, &s); err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.NewString(s), nil
	case "i":
		var i int64
		if err := json.Unmarshal(w.V, &i); err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.NewInt(i), nil
	case "f":
		var f float64
		if err := json.Unmarshal(w.V, &f); err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.NewFloat(f), nil
	case "b":
		var b bool
		if err := json.Unmarshal(w.V, &b); err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.NewBool(b), nil
	default:
		return sqltypes.Value{}, fmt.Errorf("storage: unknown wire kind %q", w.K)
	}
}

// EncodeRow serializes a row for the WAL / snapshots.
func EncodeRow(r Row) ([]byte, error) {
	ws := make([]wireValue, len(r))
	for i, v := range r {
		w, err := encodeValue(v)
		if err != nil {
			return nil, err
		}
		ws[i] = w
	}
	return json.Marshal(ws)
}

// DecodeRow is the inverse of EncodeRow.
func DecodeRow(data []byte) (Row, error) {
	var ws []wireValue
	if err := json.Unmarshal(data, &ws); err != nil {
		return nil, err
	}
	r := make(Row, len(ws))
	for i, w := range ws {
		v, err := decodeValue(w)
		if err != nil {
			return nil, err
		}
		r[i] = v
	}
	return r, nil
}
