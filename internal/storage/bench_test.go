package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"crowddb/internal/sqltypes"
)

// loadRows fills a fresh in-memory store with n rows.
func benchStore(b *testing.B, shards, rows int) *Store {
	b.Helper()
	s, err := NewStoreOptions("", Options{Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.CreateTable("t", []int{0}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := s.Insert("t", kvRow(fmt.Sprintf("k%07d", i), int64(i))); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkScan measures full-table snapshot throughput: the bulk
// sequential path (ScanRows: one lock per shard, merged) and the
// parallel path (one goroutine per shard over ScanShardRows).
func BenchmarkScan(b *testing.B) {
	const rows = 10000
	for _, shards := range []int{1, 2, 4, 8} {
		s := benchStore(b, shards, rows)
		b.Run(fmt.Sprintf("bulk/shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, got, err := s.ScanRows("t")
				if err != nil || len(got) != rows {
					b.Fatalf("scan: %d rows, %v", len(got), err)
				}
			}
		})
		b.Run(fmt.Sprintf("parallel/shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var total atomic.Int64
				var wg sync.WaitGroup
				for sh := 0; sh < shards; sh++ {
					wg.Add(1)
					go func(sh int) {
						defer wg.Done()
						_, got, err := s.ScanShardRows("t", sh)
						if err != nil {
							b.Error(err)
						}
						total.Add(int64(len(got)))
					}(sh)
				}
				wg.Wait()
				if total.Load() != rows {
					b.Fatalf("parallel scan covered %d rows", total.Load())
				}
			}
		})
	}
}

// BenchmarkInsertParallel measures concurrent insert throughput per
// shard count: with one shard every writer serializes on a single lock
// (the old engine's behavior); with more, writers on different shards
// proceed in parallel.
func BenchmarkInsertParallel(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, err := NewStoreOptions("", Options{Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.CreateTable("t", []int{0}); err != nil {
				b.Fatal(err)
			}
			var seq atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := seq.Add(1)
					if _, err := s.Insert("t", kvRow(fmt.Sprintf("k%09d", i), i)); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkLookupPK measures the single-shard point-lookup path.
func BenchmarkLookupPK(b *testing.B) {
	const rows = 10000
	for _, shards := range []int{1, 8} {
		s := benchStore(b, shards, rows)
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pk := sqltypes.NewString(fmt.Sprintf("k%07d", i%rows))
				if _, _, ok := s.LookupPKRow("t", pk); !ok {
					b.Fatal("lookup miss")
				}
			}
		})
	}
}
