package storage

// Multi-version concurrency control: commit timestamps, write
// transactions, read snapshots, and version garbage collection.
//
// The store keeps a single logical clock. Every write transaction draws a
// commit timestamp T from it at Begin and stamps each version it installs
// with begin = T (and each version it supersedes with end = T). Readers
// never see T until the transaction commits, because visibility is
// governed by a separate watermark: `visible` advances only once every
// transaction at or below a timestamp has committed. A snapshot pins the
// watermark value at acquisition and reads exactly the versions whose
// [begin, end) window contains it — for minutes if need be, while writers
// keep committing around it. No reader ever blocks a writer and no writer
// ever blocks a reader; writers on different shards still run in parallel
// exactly as before, they only rendezvous briefly on the commit registry.
//
// Superseded versions are retained until no live snapshot (and no future
// one) can reach them, then reclaimed by GC — triggered when the last
// snapshot releases, when the retained backlog crosses a threshold at
// commit, or explicitly via Store.GC.

import "sync"

// gcRetainedThreshold is the retained-version backlog at which a commit
// triggers a sweep even though snapshots may still be live (the sweep
// only reclaims what the oldest snapshot provably cannot see). Write-only
// workloads never supersede anything and therefore never pay for GC.
const gcRetainedThreshold = 4096

// Txn is a write transaction: the unit of atomicity for one statement.
// All versions installed through it share one commit timestamp and become
// visible to new snapshots together, at Commit. Transactions do not roll
// back — the engine's statement semantics are "applied rows stay applied"
// — so Commit must always be called, error or not; it is idempotent.
// A Txn is single-goroutine; distinct Txns may run concurrently.
type Txn struct {
	s    *Store
	ts   int64
	done bool
}

// Begin opens a write transaction at the next commit timestamp.
func (s *Store) Begin() *Txn {
	s.commitMu.Lock()
	ts := s.clock.Add(1)
	s.activeTxns[ts] = struct{}{}
	s.commitMu.Unlock()
	return &Txn{s: s, ts: ts}
}

// TS is the transaction's commit timestamp.
func (t *Txn) TS() int64 { return t.ts }

// Commit publishes the transaction: the visibility watermark advances to
// the highest timestamp below every still-active transaction, so readers
// acquire snapshots that include this transaction's writes (once nothing
// earlier remains in flight). Idempotent.
func (t *Txn) Commit() {
	if t.done {
		return
	}
	t.done = true
	s := t.s
	s.commitMu.Lock()
	delete(s.activeTxns, t.ts)
	vis := s.clock.Load()
	for ts := range s.activeTxns {
		if ts-1 < vis {
			vis = ts - 1
		}
	}
	if vis > s.visible.Load() {
		s.visible.Store(vis)
	}
	s.commitMu.Unlock()
	if s.retained.Load() >= gcRetainedThreshold {
		s.GC()
	}
}

// Snapshot pins a read timestamp: every read through it sees exactly the
// rows committed at or before TS, for as long as it is held. Release when
// the statement finishes so version GC can reclaim superseded rows.
type Snapshot struct {
	s        *Store
	ts       int64
	released bool
}

// AcquireSnapshot pins the current visibility watermark for reading.
// The registration is atomic with respect to GC's horizon computation, so
// a version visible to this snapshot can never be reclaimed under it.
func (s *Store) AcquireSnapshot() *Snapshot {
	s.snapMu.Lock()
	ts := s.visible.Load()
	s.snapRefs[ts]++
	s.snapMu.Unlock()
	return &Snapshot{s: s, ts: ts}
}

// TS is the snapshot's read timestamp.
func (sn *Snapshot) TS() int64 { return sn.ts }

// Release unpins the snapshot (idempotent, single-goroutine). Releasing
// the last live snapshot sweeps any versions that were retained for it.
func (sn *Snapshot) Release() {
	if sn.released {
		return
	}
	sn.released = true
	s := sn.s
	s.snapMu.Lock()
	if s.snapRefs[sn.ts]--; s.snapRefs[sn.ts] <= 0 {
		delete(s.snapRefs, sn.ts)
	}
	idle := len(s.snapRefs) == 0
	s.snapMu.Unlock()
	if idle && s.retained.Load() > 0 {
		s.GC()
	}
}

// VisibleTS reports the current visibility watermark — the timestamp a
// snapshot acquired right now would read at.
func (s *Store) VisibleTS() int64 { return s.visible.Load() }

// gcHorizon is the reclamation bound: versions whose end timestamp is at
// or below it are invisible to every live snapshot and — because future
// snapshots read at or above today's watermark — to every future one.
func (s *Store) gcHorizon() int64 {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	horizon := s.visible.Load()
	for ts := range s.snapRefs {
		if ts < horizon {
			horizon = ts
		}
	}
	return horizon
}

// GC sweeps every table shard, pruning row versions no live or future
// snapshot can see and dropping the index entries that pointed only at
// them. Returns the number of versions reclaimed. Safe to call
// concurrently with readers and writers; each shard is swept under its
// own write lock.
func (s *Store) GC() int {
	horizon := s.gcHorizon()
	reclaimed := 0
	for _, ts := range s.tableMap() {
		reclaimed += ts.gc(horizon)
	}
	if reclaimed > 0 {
		s.retained.Add(int64(-reclaimed))
		s.gcReclaimed.Add(int64(reclaimed))
	}
	s.gcRuns.Add(1)
	return reclaimed
}

// GCStats reports lifetime GC activity: sweep runs and superseded
// versions reclaimed.
func (s *Store) GCStats() (runs, reclaimed int64) {
	return s.gcRuns.Load(), s.gcReclaimed.Load()
}

func (ts *tableStore) gc(horizon int64) int {
	total := 0
	for _, sh := range ts.shards {
		sh.mu.Lock()
		for id, c := range sh.heap.rows {
			if v := c.latest(); len(c.versions) == 1 && v.end == tsInfinity {
				continue // the common case: a live row with no history
			}
			var drop, keep []rowVersion
			for _, v := range c.versions {
				if v.end <= horizon {
					drop = append(drop, v)
				} else {
					keep = append(keep, v)
				}
			}
			if len(drop) == 0 {
				continue
			}
			if sh.primary != nil {
				dropIndexKeys(sh.primary, ts.pkCols, drop, keep, id)
			}
			for _, idx := range sh.indexes {
				dropIndexKeys(idx.tree, idx.cols, drop, keep, id)
			}
			c.versions = append(c.versions[:0:0], keep...)
			total += len(drop)
			if len(keep) == 0 {
				delete(sh.heap.rows, id)
				delete(sh.rowLSN, id)
			}
		}
		sh.mu.Unlock()
	}
	return total
}

// dropIndexKeys removes the (key, id) entries that belonged only to
// dropped versions: a key still referenced by a kept version stays.
func dropIndexKeys(tree *BTree, cols []int, drop, keep []rowVersion, id RowID) {
	kept := make(map[string]bool, len(keep))
	for _, v := range keep {
		kept[indexKeyFor(v.row, cols)] = true
	}
	removed := make(map[string]bool, len(drop))
	for _, v := range drop {
		k := indexKeyFor(v.row, cols)
		if !kept[k] && !removed[k] {
			tree.Delete(k, id)
			removed[k] = true
		}
	}
}

// VersionStats reports the store-wide number of live rows and of
// superseded versions still retained for snapshots (test/observability).
func (s *Store) VersionStats() (live, retained int) {
	for _, ts := range s.tableMap() {
		for _, sh := range ts.shards {
			sh.mu.RLock()
			live += sh.heap.count()
			retained += sh.heap.retainedCount()
			sh.mu.RUnlock()
		}
	}
	return live, retained
}

// mvccState is the clock/registry block embedded in Store.
type mvccState struct {
	// commitMu guards the active-transaction registry and watermark
	// advancement; held only for map ops at Begin/Commit, never during
	// row writes or WAL I/O.
	commitMu   sync.Mutex
	activeTxns map[int64]struct{}
	// snapMu guards the snapshot refcounts; horizon computation and
	// snapshot registration serialize on it so GC can never reclaim a
	// version a just-acquired snapshot still needs.
	snapMu   sync.Mutex
	snapRefs map[int64]int
}

func newMVCCState() mvccState {
	return mvccState{
		activeTxns: make(map[int64]struct{}),
		snapRefs:   make(map[int64]int),
	}
}
