// Package storage implements CrowdDB's storage engine: heap tables with
// stable row IDs, B-tree secondary indexes over order-preserving encoded
// keys, and a JSON-lines write-ahead log with snapshot checkpoints. It plays
// the role H2's storage layer plays in the paper's prototype (§3): crowd
// answers are always memorized here so a query never re-asks the crowd for
// data it already obtained.
package storage

import (
	"sort"
)

// btreeOrder is the maximum number of keys per node. 32 keeps nodes within
// a cache line or two of key headers while exercising real splits in tests.
const btreeOrder = 32

// RowID identifies a row in a heap table; IDs are never reused.
type RowID int64

// entry is one key in a B-tree node. A key maps to the set of row IDs whose
// indexed column(s) encode to it (secondary indexes allow duplicates).
type entry struct {
	key  string
	rids []RowID
}

type node struct {
	entries  []entry
	children []*node // nil for leaves; len = len(entries)+1 otherwise
}

func (n *node) leaf() bool { return len(n.children) == 0 }

// BTree is an in-memory B-tree keyed by order-preserving string encodings
// (see sqltypes.EncodeKey). Deletion removes row IDs from entries and leaves
// empty entries as tombstones; the tree compacts itself when tombstones
// outnumber live keys.
type BTree struct {
	root       *node
	liveKeys   int
	tombstones int
	size       int // total live rowids
}

// NewBTree returns an empty tree.
func NewBTree() *BTree { return &BTree{root: &node{}} }

// Len returns the number of live (key, rowid) pairs.
func (t *BTree) Len() int { return t.size }

// Insert adds rid under key.
func (t *BTree) Insert(key string, rid RowID) {
	if len(t.root.entries) >= btreeOrder {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.splitChild(t.root, 0)
	}
	t.insertNonFull(t.root, key, rid)
}

func (t *BTree) insertNonFull(n *node, key string, rid RowID) {
	i := sort.Search(len(n.entries), func(i int) bool { return n.entries[i].key >= key })
	if i < len(n.entries) && n.entries[i].key == key {
		if len(n.entries[i].rids) == 0 {
			t.tombstones--
			t.liveKeys++
		}
		n.entries[i].rids = append(n.entries[i].rids, rid)
		t.size++
		return
	}
	if n.leaf() {
		n.entries = append(n.entries, entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = entry{key: key, rids: []RowID{rid}}
		t.liveKeys++
		t.size++
		return
	}
	if len(n.children[i].entries) >= btreeOrder {
		t.splitChild(n, i)
		if key > n.entries[i].key {
			i++
		} else if key == n.entries[i].key {
			if len(n.entries[i].rids) == 0 {
				t.tombstones--
				t.liveKeys++
			}
			n.entries[i].rids = append(n.entries[i].rids, rid)
			t.size++
			return
		}
	}
	t.insertNonFull(n.children[i], key, rid)
}

// splitChild splits the full child n.children[i] around its median key.
func (t *BTree) splitChild(n *node, i int) {
	child := n.children[i]
	mid := len(child.entries) / 2
	midEntry := child.entries[mid]

	right := &node{
		entries: append([]entry(nil), child.entries[mid+1:]...),
	}
	if !child.leaf() {
		right.children = append([]*node(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.entries = child.entries[:mid]

	n.entries = append(n.entries, entry{})
	copy(n.entries[i+1:], n.entries[i:])
	n.entries[i] = midEntry
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Search returns the live row IDs stored under key.
func (t *BTree) Search(key string) []RowID {
	n := t.root
	for n != nil {
		i := sort.Search(len(n.entries), func(i int) bool { return n.entries[i].key >= key })
		if i < len(n.entries) && n.entries[i].key == key {
			if len(n.entries[i].rids) == 0 {
				return nil
			}
			out := make([]RowID, len(n.entries[i].rids))
			copy(out, n.entries[i].rids)
			return out
		}
		if n.leaf() {
			return nil
		}
		n = n.children[i]
	}
	return nil
}

// Delete removes rid from key's entry. It reports whether the pair existed.
func (t *BTree) Delete(key string, rid RowID) bool {
	n := t.root
	for n != nil {
		i := sort.Search(len(n.entries), func(i int) bool { return n.entries[i].key >= key })
		if i < len(n.entries) && n.entries[i].key == key {
			e := &n.entries[i]
			for j, r := range e.rids {
				if r == rid {
					e.rids = append(e.rids[:j], e.rids[j+1:]...)
					t.size--
					if len(e.rids) == 0 {
						t.liveKeys--
						t.tombstones++
						t.maybeCompact()
					}
					return true
				}
			}
			return false
		}
		if n.leaf() {
			return false
		}
		n = n.children[i]
	}
	return false
}

// maybeCompact rebuilds the tree when tombstones dominate, bounding memory
// without implementing full B-tree rebalancing.
func (t *BTree) maybeCompact() {
	if t.tombstones < 64 || t.tombstones <= t.liveKeys {
		return
	}
	fresh := NewBTree()
	t.Ascend(func(key string, rids []RowID) bool {
		for _, r := range rids {
			fresh.Insert(key, r)
		}
		return true
	})
	*t = *fresh
}

// Ascend visits every live key in ascending order until fn returns false.
func (t *BTree) Ascend(fn func(key string, rids []RowID) bool) {
	t.ascend(t.root, fn)
}

func (t *BTree) ascend(n *node, fn func(string, []RowID) bool) bool {
	if n == nil {
		return true
	}
	for i, e := range n.entries {
		if !n.leaf() {
			if !t.ascend(n.children[i], fn) {
				return false
			}
		}
		if len(e.rids) > 0 {
			if !fn(e.key, e.rids) {
				return false
			}
		}
	}
	if !n.leaf() {
		return t.ascend(n.children[len(n.entries)], fn)
	}
	return true
}

// AscendRange visits live keys in [lo, hi) in order. An empty hi means "to
// the end".
func (t *BTree) AscendRange(lo, hi string, fn func(key string, rids []RowID) bool) {
	t.Ascend(func(key string, rids []RowID) bool {
		if key < lo {
			return true
		}
		if hi != "" && key >= hi {
			return false
		}
		return fn(key, rids)
	})
}

// Height returns the tree height (1 for a single leaf); used by tests to
// confirm splits actually occur.
func (t *BTree) Height() int {
	h, n := 1, t.root
	for !n.leaf() {
		h++
		n = n.children[0]
	}
	return h
}
