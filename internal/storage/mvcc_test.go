package storage

// MVCC unit tests: snapshot stability under concurrent commits, version
// GC, index visibility across key-changing updates, cross-shard PK
// moves under a pinned snapshot, and clock restoration on recovery.

import (
	"fmt"
	"testing"

	"crowddb/internal/sqltypes"
)

// scanTitles reads the Talk titles visible at ts, in scan order.
func scanTitles(t *testing.T, s *Store, at int64) []string {
	t.Helper()
	_, rows, err := s.ScanRowsAt("Talk", at)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r[0].Str()
	}
	return out
}

// TestSnapshotScanStableUnderWrites pins a snapshot, mutates the table
// in every way (insert, key-preserving update, delete), and checks the
// snapshot keeps reading the original image while the latest view moves.
func TestSnapshotScanStableUnderWrites(t *testing.T) {
	s := memStore(t)
	setupTalk(t, s)
	id1, _ := s.Insert("Talk", talkRow("CrowdDB", 100))
	id2, _ := s.Insert("Talk", talkRow("Qurk", 80))

	snap := s.AcquireSnapshot()
	defer snap.Release()

	if _, err := s.Insert("Talk", talkRow("Deco", 60)); err != nil {
		t.Fatal(err)
	}
	if err := s.Update("Talk", id1, talkRow("CrowdDB", 999)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("Talk", id2); err != nil {
		t.Fatal(err)
	}

	// The snapshot still sees the pre-write world...
	got := scanTitles(t, s, snap.TS())
	if len(got) != 2 || got[0] != "CrowdDB" || got[1] != "Qurk" {
		t.Errorf("snapshot scan = %v, want [CrowdDB Qurk]", got)
	}
	if row, ok := s.GetAt("Talk", id1, snap.TS()); !ok || row[2].Int() != 100 {
		t.Errorf("snapshot GetAt = %v %v, want attendees 100", row, ok)
	}
	if _, ok := s.GetAt("Talk", id2, snap.TS()); !ok {
		t.Error("snapshot must still see the deleted row")
	}
	// ...while the latest view reflects every write.
	latest := scanTitles(t, s, s.VisibleTS())
	if len(latest) != 2 || latest[0] != "CrowdDB" || latest[1] != "Deco" {
		t.Errorf("latest scan = %v, want [CrowdDB Deco]", latest)
	}
	if row, ok := s.Get("Talk", id1); !ok || row[2].Int() != 999 {
		t.Errorf("latest Get = %v %v, want attendees 999", row, ok)
	}
	if _, ok := s.Get("Talk", id2); ok {
		t.Error("latest view must not see the deleted row")
	}
}

// TestSnapshotReleaseTriggersGC checks retained versions are reclaimed
// once no snapshot can see them, and never while one still can.
func TestSnapshotReleaseTriggersGC(t *testing.T) {
	s := memStore(t)
	setupTalk(t, s)
	id, _ := s.Insert("Talk", talkRow("CrowdDB", 1))

	snap := s.AcquireSnapshot()
	for i := 2; i <= 5; i++ {
		if err := s.Update("Talk", id, talkRow("CrowdDB", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if live, retained := s.VersionStats(); live != 1 || retained != 4 {
		t.Fatalf("before GC: live=%d retained=%d, want 1/4", live, retained)
	}
	// The pinned snapshot holds the horizon at its timestamp: only
	// versions that died at or before it may go.
	if n := s.GC(); n != 0 {
		t.Fatalf("GC under pinned snapshot reclaimed %d versions", n)
	}
	if row, ok := s.GetAt("Talk", id, snap.TS()); !ok || row[2].Int() != 1 {
		t.Fatalf("snapshot lost its version after GC: %v %v", row, ok)
	}
	snap.Release() // last snapshot out sweeps retained garbage
	if live, retained := s.VersionStats(); live != 1 || retained != 0 {
		t.Fatalf("after release: live=%d retained=%d, want 1/0", live, retained)
	}
	if row, ok := s.Get("Talk", id); !ok || row[2].Int() != 5 {
		t.Fatalf("live row after GC = %v %v", row, ok)
	}
}

// TestIndexVisibilityAcrossKeyChange: a key-changing update retains the
// old index entry for old snapshots; each reader resolves the key set
// of its own timestamp, and GC drops the stale entry afterwards.
func TestIndexVisibilityAcrossKeyChange(t *testing.T) {
	s := memStore(t)
	setupTalk(t, s)
	if err := s.CreateIndex("Talk", "idx_att", []int{2}, false); err != nil {
		t.Fatal(err)
	}
	id, _ := s.Insert("Talk", talkRow("CrowdDB", 100))
	snap := s.AcquireSnapshot()
	if err := s.Update("Talk", id, talkRow("CrowdDB", 250)); err != nil {
		t.Fatal(err)
	}

	// Old snapshot: finds the row under the old key, not the new one.
	_, rows, err := s.LookupIndexRowsAt("Talk", "idx_att", snap.TS(), sqltypes.NewInt(100))
	if err != nil || len(rows) != 1 || rows[0][2].Int() != 100 {
		t.Errorf("old snapshot, old key: %v %v", rows, err)
	}
	_, rows, _ = s.LookupIndexRowsAt("Talk", "idx_att", snap.TS(), sqltypes.NewInt(250))
	if len(rows) != 0 {
		t.Errorf("old snapshot sees the new key: %v", rows)
	}
	// Latest: the reverse.
	at := s.VisibleTS()
	_, rows, _ = s.LookupIndexRowsAt("Talk", "idx_att", at, sqltypes.NewInt(100))
	if len(rows) != 0 {
		t.Errorf("latest sees the old key: %v", rows)
	}
	_, rows, _ = s.LookupIndexRowsAt("Talk", "idx_att", at, sqltypes.NewInt(250))
	if len(rows) != 1 || rows[0][2].Int() != 250 {
		t.Errorf("latest, new key: %v", rows)
	}

	snap.Release()
	// GC dropped the superseded version and its now-unreachable old key.
	if _, retained := s.VersionStats(); retained != 0 {
		t.Fatalf("retained=%d after release", retained)
	}
	rids, err := s.LookupIndex("Talk", "idx_att", sqltypes.NewInt(100))
	if err != nil || len(rids) != 0 {
		t.Errorf("old index key survived GC: %v %v", rids, err)
	}
}

// TestPKChangeAcrossShardsUnderSnapshot moves rows to new primary keys
// (new shard homes) while a snapshot is pinned: the snapshot keeps the
// old keys, the latest view the new, and neither sees duplicates.
func TestPKChangeAcrossShardsUnderSnapshot(t *testing.T) {
	s, err := NewStoreOptions("", Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	setupTalk(t, s)
	const n = 16
	for i := 0; i < n; i++ {
		if _, err := s.Insert("Talk", talkRow(fmt.Sprintf("t%02d", i), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.AcquireSnapshot()
	// Rename every row: new PK = new hash home, so many rows change shard.
	ids, _ := s.Scan("Talk")
	for _, id := range ids {
		row, _ := s.Get("Talk", id)
		if err := s.Update("Talk", id, talkRow("moved-"+row[0].Str(), row[2].Int())); err != nil {
			t.Fatal(err)
		}
	}

	old := scanTitles(t, s, snap.TS())
	if len(old) != n {
		t.Fatalf("snapshot scan returned %d rows, want %d: %v", len(old), n, old)
	}
	for i, title := range old {
		if title != fmt.Sprintf("t%02d", i) {
			t.Fatalf("snapshot row %d = %q", i, title)
		}
	}
	latest := scanTitles(t, s, s.VisibleTS())
	if len(latest) != n {
		t.Fatalf("latest scan returned %d rows, want %d", len(latest), n)
	}
	seen := map[string]bool{}
	for _, title := range latest {
		if seen[title] || title[:6] != "moved-" {
			t.Fatalf("latest scan duplicate or unmoved title %q (%v)", title, latest)
		}
		seen[title] = true
	}
	snap.Release()
	if live, retained := s.VersionStats(); live != n || retained != 0 {
		t.Fatalf("after release: live=%d retained=%d, want %d/0", live, retained, n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTxnStatementAtomicTimestamp: all rows of one Txn share a commit
// timestamp, and none become visible at earlier snapshots.
func TestTxnStatementAtomicTimestamp(t *testing.T) {
	s := memStore(t)
	setupTalk(t, s)
	before := s.VisibleTS()
	tx := s.Begin()
	for i := 0; i < 3; i++ {
		if _, err := tx.Insert("Talk", talkRow(fmt.Sprintf("t%d", i), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Not yet committed: the visible watermark cannot cover the txn.
	if got := scanTitles(t, s, s.VisibleTS()); len(got) != 0 {
		t.Fatalf("uncommitted rows visible: %v", got)
	}
	tx.Commit()
	if got := scanTitles(t, s, before); len(got) != 0 {
		t.Fatalf("pre-txn snapshot sees committed rows: %v", got)
	}
	if got := scanTitles(t, s, s.VisibleTS()); len(got) != 3 {
		t.Fatalf("committed rows = %v, want 3", got)
	}
	if tx.TS() != before+1 {
		t.Errorf("txn ts = %d, want %d", tx.TS(), before+1)
	}
}

// TestVisibleWatermarkWaitsForOldestTxn: with two concurrent txns the
// watermark only advances past the older one when it commits.
func TestVisibleWatermarkWaitsForOldestTxn(t *testing.T) {
	s := memStore(t)
	setupTalk(t, s)
	tx1 := s.Begin()
	tx2 := s.Begin()
	if _, err := tx2.Insert("Talk", talkRow("late", 1)); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	// tx1 (older) is still open: visibility must hold below tx1's ts.
	if vis := s.VisibleTS(); vis >= tx1.TS() {
		t.Fatalf("visible=%d advanced past open txn ts=%d", vis, tx1.TS())
	}
	if got := scanTitles(t, s, s.VisibleTS()); len(got) != 0 {
		t.Fatalf("tx2's row visible before tx1 committed: %v", got)
	}
	tx1.Commit()
	if vis := s.VisibleTS(); vis != tx2.TS() {
		t.Fatalf("visible=%d after both commits, want %d", vis, tx2.TS())
	}
	if got := scanTitles(t, s, s.VisibleTS()); len(got) != 1 {
		t.Fatalf("committed row lost: %v", got)
	}
}

// TestRecoveryRestoresClock: after restart the commit clock resumes past
// every recovered LSN, version history does not survive (live rows
// only), and new snapshots read the recovered image.
func TestRecoveryRestoresClock(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	setupTalk(t, s)
	id, _ := s.Insert("Talk", talkRow("CrowdDB", 1))
	if err := s.Update("Talk", id, talkRow("CrowdDB", 2)); err != nil {
		t.Fatal(err)
	}
	wantVis := s.VisibleTS()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.CreateTable("Talk", []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	if vis := s2.VisibleTS(); vis < wantVis {
		t.Fatalf("recovered visible=%d, want >= %d", vis, wantVis)
	}
	if live, retained := s2.VersionStats(); live != 1 || retained != 0 {
		t.Fatalf("recovered live=%d retained=%d, want 1/0", live, retained)
	}
	snap := s2.AcquireSnapshot()
	defer snap.Release()
	if row, ok := s2.GetAt("Talk", id, snap.TS()); !ok || row[2].Int() != 2 {
		t.Fatalf("recovered snapshot read = %v %v", row, ok)
	}
	// The clock keeps strictly increasing across the restart.
	id2, err := s2.Insert("Talk", talkRow("Qurk", 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.GetAt("Talk", id2, snap.TS()); ok {
		t.Error("post-restart insert visible at pre-insert snapshot")
	}
	if row, ok := s2.Get("Talk", id2); !ok || row[0].Str() != "Qurk" {
		t.Fatalf("post-restart insert lost: %v %v", row, ok)
	}
}
