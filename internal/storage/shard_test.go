package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crowddb/internal/sqltypes"
)

func shardedStore(t *testing.T, shards int) *Store {
	t.Helper()
	s, err := NewStoreOptions("", Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func kvRow(pk string, v int64) Row {
	return Row{sqltypes.NewString(pk), sqltypes.NewInt(v)}
}

// TestScanOrderAcrossShards pins the determinism contract: ascending row
// IDs are global insertion order, whatever the shard count, so the merged
// scan is byte-identical to an unsharded store's.
func TestScanOrderAcrossShards(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		s := shardedStore(t, shards)
		if err := s.CreateTable("t", []int{0}); err != nil {
			t.Fatal(err)
		}
		var want []string
		for i := 0; i < 100; i++ {
			pk := fmt.Sprintf("k%03d", i)
			if _, err := s.Insert("t", kvRow(pk, int64(i))); err != nil {
				t.Fatal(err)
			}
			want = append(want, pk)
		}
		ids, rows, err := s.ScanRows("t")
		if err != nil || len(rows) != 100 {
			t.Fatalf("shards=%d: scan %d rows, err %v", shards, len(rows), err)
		}
		for i, r := range rows {
			if r[0].Str() != want[i] {
				t.Fatalf("shards=%d: row %d is %s, want %s (insertion order broken)", shards, i, r[0].Str(), want[i])
			}
			if i > 0 && ids[i] <= ids[i-1] {
				t.Fatalf("shards=%d: ids not ascending at %d", shards, i)
			}
		}
		// Per-shard scans must cover the table exactly once.
		seen := map[RowID]bool{}
		for sh := 0; sh < s.NumShards(); sh++ {
			sids, _, err := s.ScanShardRows("t", sh)
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range sids {
				if seen[id] {
					t.Fatalf("shards=%d: row %d in two shards", shards, id)
				}
				seen[id] = true
			}
		}
		if len(seen) != 100 {
			t.Fatalf("shards=%d: per-shard scans cover %d rows", shards, len(seen))
		}
	}
}

// TestBlockedWriterDoesNotBlockOtherShards is the lock-isolation
// acceptance check: with shard A's write lock held (a stuck writer),
// reads and writes on other shards must still complete. There is no
// global mutex on the hot path to queue up behind.
func TestBlockedWriterDoesNotBlockOtherShards(t *testing.T) {
	s := shardedStore(t, 4)
	if err := s.CreateTable("t", []int{0}); err != nil {
		t.Fatal(err)
	}
	ts, err := s.table("t")
	if err != nil {
		t.Fatal(err)
	}
	// Find keys on two different shards.
	keyOn := func(shard int) string {
		for i := 0; ; i++ {
			pk := fmt.Sprintf("key-%d", i)
			if ts.shardOfKey(ts.pkKey(kvRow(pk, 0))) == shard {
				return pk
			}
		}
	}
	pkA, pkB := keyOn(0), keyOn(1)
	if _, err := s.Insert("t", kvRow(pkB, 1)); err != nil {
		t.Fatal(err)
	}

	// Simulate a stuck writer: hold shard 0's write lock.
	ts.shards[0].mu.Lock()
	blocked := make(chan struct{})
	go func() {
		s.Insert("t", kvRow(pkA, 1)) // must block on shard 0
		close(blocked)
	}()

	done := make(chan error, 1)
	go func() {
		if _, _, err := s.ScanShardRows("t", 1); err != nil {
			done <- err
			return
		}
		if _, ok := s.LookupPK("t", sqltypes.NewString(pkB)); !ok {
			done <- errors.New("lookup on unblocked shard failed")
			return
		}
		_, err := s.Insert("t", kvRow(keyOn(2), 2))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("operations on shard 1/2 blocked behind a writer stuck on shard 0")
	}
	select {
	case <-blocked:
		t.Fatal("shard-0 insert completed while the shard lock was held")
	default:
	}
	ts.shards[0].mu.Unlock()
	select {
	case <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("shard-0 insert never completed after unlock")
	}
}

// TestShardStressConcurrentOps hammers a sharded durable store with
// concurrent inserts, updates, deletes, scans, and lookups (run under
// -race in CI), then closes, reopens, and verifies the recovered state
// matches a final snapshot exactly.
func TestShardStressConcurrentOps(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStoreOptions(dir, Options{Shards: 4, Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable("t", []int{0}); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const opsPerWorker = 300
	var wg sync.WaitGroup
	var inserts, deletes atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var mine []struct {
				pk string
				id RowID
			}
			for i := 0; i < opsPerWorker; i++ {
				switch op := rng.Intn(10); {
				case op < 5: // insert (worker-disjoint key space)
					pk := fmt.Sprintf("w%d-k%04d", w, rng.Intn(500))
					id, err := s.Insert("t", kvRow(pk, rng.Int63n(1000)))
					if err == nil {
						inserts.Add(1)
						mine = append(mine, struct {
							pk string
							id RowID
						}{pk, id})
					} else if !errors.As(err, new(*DuplicateKeyError)) {
						t.Errorf("insert: %v", err)
						return
					}
				case op < 7 && len(mine) > 0: // update own row
					m := mine[rng.Intn(len(mine))]
					if err := s.Update("t", m.id, kvRow(m.pk, rng.Int63n(1000))); err != nil {
						t.Errorf("update: %v", err)
						return
					}
				case op < 8 && len(mine) > 0: // delete own row
					j := rng.Intn(len(mine))
					if err := s.Delete("t", mine[j].id); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
					deletes.Add(1)
					mine = append(mine[:j], mine[j+1:]...)
				case op < 9: // scan
					if _, _, err := s.ScanRows("t"); err != nil {
						t.Errorf("scan: %v", err)
						return
					}
				default: // point lookups
					pk := fmt.Sprintf("w%d-k%04d", rng.Intn(workers), rng.Intn(500))
					s.LookupPK("t", sqltypes.NewString(pk))
					if len(mine) > 0 {
						s.Get("t", mine[rng.Intn(len(mine))].id)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	n, err := s.RowCount("t")
	if err != nil {
		t.Fatal(err)
	}
	if want := int(inserts.Load() - deletes.Load()); n != want {
		t.Fatalf("row count %d, want %d (inserts %d - deletes %d)", n, want, inserts.Load(), deletes.Load())
	}
	ids, rows, err := s.ScanRows("t")
	if err != nil || len(ids) != n {
		t.Fatalf("scan after stress: %d ids, err %v", len(ids), err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := NewStoreOptions(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.NumShards(); got != 4 {
		t.Fatalf("reopen adopted %d shards, want 4", got)
	}
	if err := s2.CreateTable("t", []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	ids2, rows2, err := s2.ScanRows("t")
	if err != nil || len(ids2) != len(ids) {
		t.Fatalf("recovered %d rows, want %d (err %v)", len(ids2), len(ids), err)
	}
	for i := range ids {
		if ids2[i] != ids[i] || rows2[i][0].Str() != rows[i][0].Str() || rows2[i][1].Int() != rows[i][1].Int() {
			t.Fatalf("row %d drifted in recovery: %v/%v vs %v/%v", i, ids2[i], rows2[i], ids[i], rows[i])
		}
	}
}

// TestGroupCommitSurvivesCrash proves the group-commit durability
// contract: once Insert returns, the row is on disk — reopening the
// directory WITHOUT closing the first store (a simulated crash) recovers
// every acknowledged insert.
func TestGroupCommitSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStoreOptions(dir, Options{Shards: 4, Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable("t", []int{0}); err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				if _, err := s.Insert("t", kvRow(fmt.Sprintf("w%d-%03d", w, i), int64(i))); err != nil {
					t.Errorf("insert: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	// Crash: no Close, no flush — the store object is simply abandoned.
	s2, err := NewStoreOptions(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.CreateTable("t", []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	got, _ := s2.RowCount("t")
	if got != n {
		t.Fatalf("crash recovery lost acknowledged inserts: %d of %d recovered", got, n)
	}
}

// TestShardCountContract pins the reopen contract: an explicit shard
// count that disagrees with the on-disk layout errors; 0 adopts it.
func TestShardCountContract(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStoreOptions(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.CreateTable("t", []int{0})
	s.Insert("t", kvRow("a", 1))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, err = NewStoreOptions(dir, Options{Shards: 2})
	var mismatch *ErrShardMismatch
	if !errors.As(err, &mismatch) {
		t.Fatalf("reopen with different shard count must fail with ErrShardMismatch, got %v", err)
	}
	if mismatch.OnDisk != 4 || mismatch.Requested != 2 {
		t.Errorf("mismatch detail: %+v", mismatch)
	}

	// Same count and adopted count both work.
	for _, shards := range []int{4, 0} {
		s2, err := NewStoreOptions(dir, Options{Shards: shards})
		if err != nil {
			t.Fatalf("reopen shards=%d: %v", shards, err)
		}
		if s2.NumShards() != 4 {
			t.Errorf("reopen shards=%d: got %d shards", shards, s2.NumShards())
		}
		s2.CreateTable("t", []int{0})
		if err := s2.Recover(); err != nil {
			t.Fatal(err)
		}
		if _, ok := s2.LookupPK("t", sqltypes.NewString("a")); !ok {
			t.Errorf("reopen shards=%d: row lost", shards)
		}
		s2.Close()
	}
}

// TestCrossShardPKUpdate exercises the re-homing path: an update that
// changes the primary key may move the row to a different shard, and the
// move must survive recovery (delete on the old shard's WAL, upsert on
// the new one's).
func TestCrossShardPKUpdate(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStoreOptions(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.CreateTable("t", []int{0})
	ts, _ := s.table("t")
	// Pick two keys living on different shards.
	pkA := "alpha"
	pkB := pkA
	for i := 0; ts.shardOfKey(ts.pkKey(kvRow(pkB, 0))) == ts.shardOfKey(ts.pkKey(kvRow(pkA, 0))); i++ {
		pkB = fmt.Sprintf("beta-%d", i)
	}
	id, err := s.Insert("t", kvRow(pkA, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Update("t", id, kvRow(pkB, 2)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LookupPK("t", sqltypes.NewString(pkA)); ok {
		t.Error("old PK still resolves after re-homing update")
	}
	row, ok := s.Get("t", id)
	if !ok || row[0].Str() != pkB || row[1].Int() != 2 {
		t.Fatalf("row after move: %v %v", row, ok)
	}
	// And back again, then recover.
	if err := s.Update("t", id, kvRow(pkA, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := NewStoreOptions(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.CreateTable("t", []int{0})
	if err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	n, _ := s2.RowCount("t")
	if n != 1 {
		t.Fatalf("recovered %d rows after cross-shard moves, want 1", n)
	}
	rid, ok := s2.LookupPK("t", sqltypes.NewString(pkA))
	if !ok || rid != id {
		t.Fatalf("recovered row id %v ok=%v, want %v", rid, ok, id)
	}
	if row, _ := s2.Get("t", rid); row[1].Int() != 3 {
		t.Errorf("recovered value %v, want 3", row[1])
	}
}

// TestUniqueSecondaryIndexAcrossShards: a unique secondary key must be
// rejected even when the conflicting rows' primary keys hash to
// different shards.
func TestUniqueSecondaryIndexAcrossShards(t *testing.T) {
	s := shardedStore(t, 4)
	s.CreateTable("t", []int{0})
	if err := s.CreateIndex("t", "uniq_v", []int{1}, true); err != nil {
		t.Fatal(err)
	}
	// Insert rows with distinct PKs (spread across shards) and distinct
	// values, then try a duplicate value from a different shard.
	for i := 0; i < 16; i++ {
		if _, err := s.Insert("t", kvRow(fmt.Sprintf("k%02d", i), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Insert("t", kvRow("other-shard-key", 7)); err == nil {
		t.Fatal("unique secondary index must reject duplicates across shards")
	}
	// Update onto a taken value must also fail.
	id, _ := s.LookupPK("t", sqltypes.NewString("k00"))
	if err := s.Update("t", id, kvRow("k00", 7)); err == nil {
		t.Fatal("unique secondary index must reject duplicate on update")
	}
	// The same value is fine once the holder is gone.
	holder, _ := s.LookupPK("t", sqltypes.NewString("k07"))
	if err := s.Delete("t", holder); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("t", kvRow("reuse", 7)); err != nil {
		t.Fatalf("value freed by delete must be insertable: %v", err)
	}
}

// TestCommitReturnsAfterCheckpointReset: a writer parked in the WAL's
// group-commit barrier while a checkpoint resets the log must be
// released (its record is durable via the snapshot), not spin forever.
func TestCommitReturnsAfterCheckpointReset(t *testing.T) {
	dir := t.TempDir()
	l, err := openWAL(walShardPath(dir, 0), SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	defer l.close()
	seq, err := l.append(walRecord{Op: "insert", Table: "t", Row: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.reset(); err != nil { // checkpoint captured the record
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- l.commit(seq) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("commit() hung after a checkpoint reset")
	}
}

// TestCrossShardMoveCrashKeepsNewerCopy: a crash can persist a
// cross-shard move's upsert but lose the old shard's delete, leaving the
// row live on two shards. Recovery must keep exactly one copy — the
// newer (higher-LSN) one.
func TestCrossShardMoveCrashKeepsNewerCopy(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStoreOptions(dir, Options{Shards: 4, Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	s.CreateTable("t", []int{0})
	ts, _ := s.table("t")
	pkOld := "origin"
	oldShard := ts.shardOfKey(ts.pkKey(kvRow(pkOld, 0)))
	pkNew := pkOld
	for i := 0; ts.shardOfKey(ts.pkKey(kvRow(pkNew, 0))) == oldShard; i++ {
		pkNew = fmt.Sprintf("moved-%d", i)
	}
	id, err := s.Insert("t", kvRow(pkOld, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Update("t", id, kvRow(pkNew, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn crash: drop the old shard's delete record (its
	// WAL's last line), keeping the new shard's fsynced-first upsert.
	path := walShardPath(dir, oldShard)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trimmed := strings.TrimSuffix(string(data), "\n")
	cut := strings.LastIndex(trimmed, "\n") + 1
	if err := os.Truncate(path, int64(cut)); err != nil {
		t.Fatal(err)
	}

	s2, err := NewStoreOptions(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.CreateTable("t", []int{0})
	if err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	n, _ := s2.RowCount("t")
	if n != 1 {
		t.Fatalf("recovered %d copies of the moved row, want 1", n)
	}
	if _, ok := s2.LookupPK("t", sqltypes.NewString(pkOld)); ok {
		t.Error("stale pre-move copy survived reconciliation")
	}
	rid, ok := s2.LookupPK("t", sqltypes.NewString(pkNew))
	if !ok || rid != id {
		t.Fatalf("moved copy lost: ok=%v id=%v want %v", ok, rid, id)
	}
	if row, _ := s2.Get("t", rid); row[1].Int() != 2 {
		t.Errorf("recovered value %v, want 2", row[1])
	}
}
