package storage

import (
	"strconv"

	"crowddb/internal/obs"
)

const (
	walFsyncHelp = "WAL flush+fsync latency per group-commit batch, seconds"
	walBatchHelp = "WAL records made durable per fsync (group-commit batch size)"
)

// RegisterMetrics exports the store's durability and MVCC families into
// the registry: per-shard WAL fsync latency and batch-size histograms,
// retained-version and live-row gauges, and GC sweep counters. For a
// memory-only store the WAL families are still registered (empty) so
// scrapers always see a stable family set.
func (s *Store) RegisterMetrics(reg *obs.Registry) {
	fsyncBuckets := obs.ExpBuckets(1e-5, 4, 10) // 10µs .. ~2.6s
	batchBuckets := []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
	if len(s.logs) == 0 {
		reg.Histogram("crowddb_wal_fsync_seconds", walFsyncHelp, fsyncBuckets)
		reg.Histogram("crowddb_wal_fsync_batch_rows", walBatchHelp, batchBuckets)
	}
	for i, l := range s.logs {
		shard := strconv.Itoa(i)
		fs := reg.Histogram("crowddb_wal_fsync_seconds", walFsyncHelp, fsyncBuckets, "shard", shard)
		br := reg.Histogram("crowddb_wal_fsync_batch_rows", walBatchHelp, batchBuckets, "shard", shard)
		l.setMetrics(fs, br)
	}
	reg.GaugeFunc("crowddb_storage_shards",
		"hash shards per table",
		func() float64 { return float64(s.nshards) })
	reg.GaugeFunc("crowddb_mvcc_retained_versions",
		"superseded row versions retained for open snapshots",
		func() float64 { return float64(s.retained.Load()) })
	reg.GaugeFunc("crowddb_mvcc_live_rows",
		"visible row versions across all tables",
		func() float64 { live, _ := s.VersionStats(); return float64(live) })
	reg.CounterFunc("crowddb_mvcc_gc_runs_total",
		"MVCC garbage-collection sweeps",
		func() float64 { runs, _ := s.GCStats(); return float64(runs) })
	reg.CounterFunc("crowddb_mvcc_gc_reclaimed_versions_total",
		"superseded row versions reclaimed by GC",
		func() float64 { _, reclaimed := s.GCStats(); return float64(reclaimed) })
}
