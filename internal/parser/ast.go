// Package parser implements the CrowdSQL parser: standard SQL plus the
// paper's extensions — the CROWD keyword on tables and columns (§2.1), the
// CNULL literal, and the CROWDEQUAL / CROWDORDER built-ins (§2.2).
//
// The AST in this file is deliberately close to the SQL surface syntax; the
// planner (internal/plan) lowers it to logical algebra. Every node has a
// String method that renders valid CrowdSQL, which the tests use for
// print→reparse fixpoint properties and EXPLAIN uses for display.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"crowddb/internal/sqltypes"
)

// Statement is any parsed CrowdSQL statement.
type Statement interface {
	fmt.Stringer
	stmt()
}

// ColumnDef is one column in a CREATE TABLE, with the paper's CROWD marker.
type ColumnDef struct {
	Name       string
	Type       sqltypes.Type
	Crowd      bool   // `abstract CROWD STRING`
	PrimaryKey bool   // inline `PRIMARY KEY`
	Annotation string // optional ANNOTATION 'free text' used by UI generation
}

func (c ColumnDef) String() string {
	var sb strings.Builder
	sb.WriteString(c.Name)
	sb.WriteByte(' ')
	if c.Crowd {
		sb.WriteString("CROWD ")
	}
	sb.WriteString(c.Type.String())
	if c.PrimaryKey {
		sb.WriteString(" PRIMARY KEY")
	}
	if c.Annotation != "" {
		sb.WriteString(" ANNOTATION " + quote(c.Annotation))
	}
	return sb.String()
}

// ForeignKey is a FOREIGN KEY (cols) REF table(cols) table constraint. The
// paper's DDL (Example 2) spells REFERENCES as REF; we accept both.
type ForeignKey struct {
	Columns    []string
	RefTable   string
	RefColumns []string
}

func (f ForeignKey) String() string {
	return fmt.Sprintf("FOREIGN KEY (%s) REF %s(%s)",
		strings.Join(f.Columns, ", "), f.RefTable, strings.Join(f.RefColumns, ", "))
}

// CreateTable is CREATE [CROWD] TABLE.
type CreateTable struct {
	Name        string
	Crowd       bool // CREATE CROWD TABLE (open-world table, §2.1 Example 2)
	Columns     []ColumnDef
	PrimaryKey  []string // table-level PRIMARY KEY(...) constraint
	ForeignKeys []ForeignKey
	Annotation  string
}

func (*CreateTable) stmt() {}

func (s *CreateTable) String() string {
	var sb strings.Builder
	sb.WriteString("CREATE ")
	if s.Crowd {
		sb.WriteString("CROWD ")
	}
	sb.WriteString("TABLE " + s.Name + " (")
	var parts []string
	for _, c := range s.Columns {
		parts = append(parts, c.String())
	}
	if len(s.PrimaryKey) > 0 {
		parts = append(parts, "PRIMARY KEY ("+strings.Join(s.PrimaryKey, ", ")+")")
	}
	for _, fk := range s.ForeignKeys {
		parts = append(parts, fk.String())
	}
	sb.WriteString(strings.Join(parts, ", "))
	sb.WriteString(")")
	if s.Annotation != "" {
		sb.WriteString(" ANNOTATION " + quote(s.Annotation))
	}
	return sb.String()
}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
}

func (*DropTable) stmt() {}

func (s *DropTable) String() string {
	if s.IfExists {
		return "DROP TABLE IF EXISTS " + s.Name
	}
	return "DROP TABLE " + s.Name
}

// CreateIndex is CREATE [UNIQUE] INDEX name ON table (cols).
type CreateIndex struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
}

func (*CreateIndex) stmt() {}

func (s *CreateIndex) String() string {
	u := ""
	if s.Unique {
		u = "UNIQUE "
	}
	return fmt.Sprintf("CREATE %sINDEX %s ON %s (%s)", u, s.Name, s.Table,
		strings.Join(s.Columns, ", "))
}

// Insert is INSERT INTO table [(cols)] VALUES (...), (...).
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

func (*Insert) stmt() {}

func (s *Insert) String() string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO " + s.Table)
	if len(s.Columns) > 0 {
		sb.WriteString(" (" + strings.Join(s.Columns, ", ") + ")")
	}
	sb.WriteString(" VALUES ")
	var rows []string
	for _, r := range s.Rows {
		var vals []string
		for _, e := range r {
			vals = append(vals, e.String())
		}
		rows = append(rows, "("+strings.Join(vals, ", ")+")")
	}
	sb.WriteString(strings.Join(rows, ", "))
	return sb.String()
}

// Assignment is one `col = expr` in UPDATE SET.
type Assignment struct {
	Column string
	Value  Expr
}

// Update is UPDATE table SET ... [WHERE ...].
type Update struct {
	Table string
	Set   []Assignment
	Where Expr
}

func (*Update) stmt() {}

func (s *Update) String() string {
	var sets []string
	for _, a := range s.Set {
		sets = append(sets, a.Column+" = "+a.Value.String())
	}
	out := "UPDATE " + s.Table + " SET " + strings.Join(sets, ", ")
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}

// Delete is DELETE FROM table [WHERE ...].
type Delete struct {
	Table string
	Where Expr
}

func (*Delete) stmt() {}

func (s *Delete) String() string {
	out := "DELETE FROM " + s.Table
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}

// JoinType distinguishes the join flavors the executor supports.
type JoinType int

// Join flavors. JoinNone marks the first FROM entry.
const (
	JoinNone JoinType = iota
	JoinInner
	JoinLeft
	JoinCross
)

// TableRef is one entry in the FROM clause. Entries after the first carry
// their join type and ON condition.
type TableRef struct {
	Table string
	Alias string
	Join  JoinType
	On    Expr
}

func (t TableRef) refString() string {
	s := t.Table
	if t.Alias != "" {
		s += " " + t.Alias
	}
	return s
}

// SelectItem is one projection item: `*`, `t.*`, or expr [AS alias].
type SelectItem struct {
	Star      bool
	StarTable string // for t.*
	Expr      Expr
	Alias     string
}

func (it SelectItem) String() string {
	if it.Star {
		if it.StarTable != "" {
			return it.StarTable + ".*"
		}
		return "*"
	}
	s := it.Expr.String()
	if it.Alias != "" {
		s += " AS " + it.Alias
	}
	return s
}

// OrderItem is one ORDER BY key. CROWDORDER appears here as a FuncCall
// expression (paper Example 3).
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Select is a SELECT query.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
	Offset   int64 // 0 when absent
}

func (*Select) stmt() {}

func (s *Select) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	var items []string
	for _, it := range s.Items {
		items = append(items, it.String())
	}
	sb.WriteString(strings.Join(items, ", "))
	if len(s.From) > 0 {
		sb.WriteString(" FROM " + s.From[0].refString())
		for _, tr := range s.From[1:] {
			switch tr.Join {
			case JoinCross:
				sb.WriteString(", " + tr.refString())
			case JoinLeft:
				sb.WriteString(" LEFT JOIN " + tr.refString())
			default:
				sb.WriteString(" JOIN " + tr.refString())
			}
			if tr.On != nil {
				sb.WriteString(" ON " + tr.On.String())
			}
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		var gs []string
		for _, g := range s.GroupBy {
			gs = append(gs, g.String())
		}
		sb.WriteString(" GROUP BY " + strings.Join(gs, ", "))
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		var os []string
		for _, o := range s.OrderBy {
			item := o.Expr.String()
			if o.Desc {
				item += " DESC"
			}
			os = append(os, item)
		}
		sb.WriteString(" ORDER BY " + strings.Join(os, ", "))
	}
	if s.Limit >= 0 {
		sb.WriteString(" LIMIT " + strconv.FormatInt(s.Limit, 10))
	}
	if s.Offset > 0 {
		sb.WriteString(" OFFSET " + strconv.FormatInt(s.Offset, 10))
	}
	return sb.String()
}

// Explain wraps another statement for EXPLAIN output. Analyze requests
// EXPLAIN ANALYZE: execute the statement and annotate the plan with
// per-operator actuals next to the optimizer's predictions.
type Explain struct {
	Stmt    Statement
	Analyze bool
}

func (*Explain) stmt() {}

func (s *Explain) String() string {
	if s.Analyze {
		return "EXPLAIN ANALYZE " + s.Stmt.String()
	}
	return "EXPLAIN " + s.Stmt.String()
}

// ShowTables is the REPL convenience statement SHOW TABLES.
type ShowTables struct{}

func (*ShowTables) stmt() {}

func (*ShowTables) String() string { return "SHOW TABLES" }

// ---------------------------------------------------------------------------
// Expressions

// Expr is any scalar expression.
type Expr interface {
	fmt.Stringer
	expr()
}

// Literal is a constant, including NULL and CNULL.
type Literal struct{ Val sqltypes.Value }

func (*Literal) expr() {}

func (e *Literal) String() string { return e.Val.SQLLiteral() }

// ColumnRef is a possibly table-qualified column reference.
type ColumnRef struct {
	Table string
	Name  string
}

func (*ColumnRef) expr() {}

func (e *ColumnRef) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Name
	}
	return e.Name
}

// BinaryExpr covers comparisons, boolean connectives, arithmetic, LIKE, and
// the crowd-equality shorthand `~=` (sugar for CROWDEQUAL).
type BinaryExpr struct {
	Op   string // "=", "<>", "<", "<=", ">", ">=", "AND", "OR", "+", "-", "*", "/", "%", "LIKE", "~=", "||"
	L, R Expr
}

func (*BinaryExpr) expr() {}

func (e *BinaryExpr) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}

// UnaryExpr is NOT or numeric negation.
type UnaryExpr struct {
	Op string // "NOT", "-"
	E  Expr
}

func (*UnaryExpr) expr() {}

func (e *UnaryExpr) String() string {
	if e.Op == "NOT" {
		return "(NOT " + e.E.String() + ")"
	}
	return "(" + e.Op + e.E.String() + ")"
}

// IsNullExpr is `x IS [NOT] NULL` and the CrowdSQL `x IS [NOT] CNULL`.
type IsNullExpr struct {
	E     Expr
	CNull bool
	Neg   bool
}

func (*IsNullExpr) expr() {}

func (e *IsNullExpr) String() string {
	s := e.E.String() + " IS "
	if e.Neg {
		s += "NOT "
	}
	if e.CNull {
		return "(" + s + "CNULL)"
	}
	return "(" + s + "NULL)"
}

// InExpr is `x [NOT] IN (v1, v2, ...)` or `x [NOT] IN (SELECT ...)` with
// an uncorrelated subquery.
type InExpr struct {
	E    Expr
	List []Expr
	Sub  *Select // non-nil for the subquery form; List is then empty
	Neg  bool
}

func (*InExpr) expr() {}

func (e *InExpr) String() string {
	op := " IN ("
	if e.Neg {
		op = " NOT IN ("
	}
	if e.Sub != nil {
		return "(" + e.E.String() + op + e.Sub.String() + "))"
	}
	var vals []string
	for _, v := range e.List {
		vals = append(vals, v.String())
	}
	return "(" + e.E.String() + op + strings.Join(vals, ", ") + "))"
}

// BetweenExpr is `x [NOT] BETWEEN lo AND hi`.
type BetweenExpr struct {
	E, Lo, Hi Expr
	Neg       bool
}

func (*BetweenExpr) expr() {}

func (e *BetweenExpr) String() string {
	op := " BETWEEN "
	if e.Neg {
		op = " NOT BETWEEN "
	}
	return "(" + e.E.String() + op + e.Lo.String() + " AND " + e.Hi.String() + ")"
}

// FuncCall is a function application. The crowd built-ins CROWDEQUAL and
// CROWDORDER (paper §2.2), the aggregates, and scalar helpers all land here;
// Name is always upper-case.
type FuncCall struct {
	Name string
	Args []Expr
	Star bool // COUNT(*)
}

func (*FuncCall) expr() {}

func (e *FuncCall) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	var args []string
	for _, a := range e.Args {
		args = append(args, a.String())
	}
	return e.Name + "(" + strings.Join(args, ", ") + ")"
}

// IsAggregate reports whether the call is one of the SQL aggregates.
func (e *FuncCall) IsAggregate() bool {
	switch e.Name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// IsCrowdFunc reports whether the call requires crowdsourcing to evaluate.
func (e *FuncCall) IsCrowdFunc() bool {
	return e.Name == "CROWDEQUAL" || e.Name == "CROWDORDER"
}

func quote(s string) string { return "'" + strings.ReplaceAll(s, "'", "''") + "'" }

// WalkExprs visits e and every sub-expression, depth-first. A nil expression
// is ignored so callers can pass optional clauses directly.
func WalkExprs(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *BinaryExpr:
		WalkExprs(x.L, fn)
		WalkExprs(x.R, fn)
	case *UnaryExpr:
		WalkExprs(x.E, fn)
	case *IsNullExpr:
		WalkExprs(x.E, fn)
	case *InExpr:
		WalkExprs(x.E, fn)
		for _, v := range x.List {
			WalkExprs(v, fn)
		}
	case *BetweenExpr:
		WalkExprs(x.E, fn)
		WalkExprs(x.Lo, fn)
		WalkExprs(x.Hi, fn)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExprs(a, fn)
		}
	}
}

// HasCrowdFunc reports whether the expression tree contains a CROWDEQUAL or
// CROWDORDER call (or the ~= shorthand). The optimizer uses this to place
// CrowdCompare operators.
func HasCrowdFunc(e Expr) bool {
	found := false
	WalkExprs(e, func(x Expr) {
		switch n := x.(type) {
		case *FuncCall:
			if n.IsCrowdFunc() {
				found = true
			}
		case *BinaryExpr:
			if n.Op == "~=" {
				found = true
			}
		}
	})
	return found
}
