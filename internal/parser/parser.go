package parser

import (
	"fmt"
	"strconv"
	"strings"

	"crowddb/internal/lexer"
	"crowddb/internal/sqltypes"
)

// Parse parses a single CrowdSQL statement (a trailing semicolon is
// allowed). It is the entry point the engine uses per statement.
func Parse(src string) (Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("parser: expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated script into statements.
func ParseAll(src string) ([]Statement, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Statement
	for {
		for p.acceptSymbol(";") {
		}
		if p.atEOF() {
			break
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.acceptSymbol(";") && !p.atEOF() {
			return nil, p.errorf("expected ';' or end of input, got %s", p.peekDesc())
		}
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("parser: empty input")
	}
	return stmts, nil
}

// ParseExpr parses a standalone scalar expression (used by tests and the
// form editor's condition fields).
func ParseExpr(src string) (Expr, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("trailing input after expression: %s", p.peekDesc())
	}
	return e, nil
}

type parser struct {
	toks []lexer.Token
	pos  int
}

func (p *parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() lexer.Token {
	if p.atEOF() {
		return lexer.Token{Kind: lexer.EOF}
	}
	return p.toks[p.pos]
}

func (p *parser) next() lexer.Token {
	t := p.peek()
	if !p.atEOF() {
		p.pos++
	}
	return t
}

func (p *parser) peekDesc() string {
	t := p.peek()
	if t.Kind == lexer.EOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Value)
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("parser: "+format+" (offset %d)", append(args, p.peek().Pos)...)
}

func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.Kind == lexer.Keyword && t.Value == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, got %s", kw, p.peekDesc())
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	t := p.peek()
	if t.Kind == lexer.Symbol && t.Value == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errorf("expected %q, got %s", sym, p.peekDesc())
	}
	return nil
}

// ident accepts an identifier. Non-reserved usage of soft keywords (e.g. a
// column named "key") is not supported; quoted identifiers are not needed by
// the paper's examples.
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.Kind != lexer.Ident {
		return "", p.errorf("expected identifier, got %s", p.peekDesc())
	}
	p.pos++
	return t.Value, nil
}

func (p *parser) identList() ([]string, error) {
	var list []string
	for {
		id, err := p.ident()
		if err != nil {
			return nil, err
		}
		list = append(list, id)
		if !p.acceptSymbol(",") {
			return list, nil
		}
	}
}

func (p *parser) statement() (Statement, error) {
	t := p.peek()
	if t.Kind != lexer.Keyword {
		return nil, p.errorf("expected statement keyword, got %s", p.peekDesc())
	}
	switch t.Value {
	case "CREATE":
		return p.createStmt()
	case "DROP":
		return p.dropStmt()
	case "INSERT":
		return p.insertStmt()
	case "SELECT":
		return p.selectStmt()
	case "UPDATE":
		return p.updateStmt()
	case "DELETE":
		return p.deleteStmt()
	case "EXPLAIN":
		p.pos++
		analyze := p.acceptKeyword("ANALYZE")
		inner, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &Explain{Stmt: inner, Analyze: analyze}, nil
	case "SHOW":
		p.pos++
		if err := p.expectKeyword("TABLES"); err != nil {
			return nil, err
		}
		return &ShowTables{}, nil
	default:
		return nil, p.errorf("unsupported statement %q", t.Value)
	}
}

func (p *parser) createStmt() (Statement, error) {
	p.pos++ // CREATE
	switch {
	case p.acceptKeyword("CROWD"):
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		return p.createTable(true)
	case p.acceptKeyword("TABLE"):
		return p.createTable(false)
	case p.acceptKeyword("UNIQUE"):
		if err := p.expectKeyword("INDEX"); err != nil {
			return nil, err
		}
		return p.createIndex(true)
	case p.acceptKeyword("INDEX"):
		return p.createIndex(false)
	default:
		return nil, p.errorf("expected TABLE, CROWD TABLE or INDEX after CREATE")
	}
}

func (p *parser) createTable(crowd bool) (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name, Crowd: crowd}
	for {
		switch {
		case p.acceptKeyword("PRIMARY"):
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			cols, err := p.identList()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			ct.PrimaryKey = cols
		case p.acceptKeyword("FOREIGN"):
			fk, err := p.foreignKey()
			if err != nil {
				return nil, err
			}
			ct.ForeignKeys = append(ct.ForeignKeys, *fk)
		default:
			col, err := p.columnDef()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, *col)
		}
		if p.acceptSymbol(",") {
			continue
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		break
	}
	if p.acceptKeyword("ANNOTATION") {
		ann, err := p.stringLit()
		if err != nil {
			return nil, err
		}
		ct.Annotation = ann
	}
	return ct, nil
}

func (p *parser) columnDef() (*ColumnDef, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	col := &ColumnDef{Name: name}
	// Paper syntax puts CROWD before the type: `abstract CROWD STRING`.
	if p.acceptKeyword("CROWD") {
		col.Crowd = true
	}
	t := p.next()
	if t.Kind != lexer.Ident && t.Kind != lexer.Keyword {
		return nil, p.errorf("expected column type for %s", name)
	}
	typ, err := sqltypes.ParseType(t.Value)
	if err != nil {
		return nil, p.errorf("column %s: %v", name, err)
	}
	col.Type = typ
	for {
		switch {
		case p.acceptKeyword("PRIMARY"):
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			col.PrimaryKey = true
		case p.acceptKeyword("ANNOTATION"):
			ann, err := p.stringLit()
			if err != nil {
				return nil, err
			}
			col.Annotation = ann
		default:
			return col, nil
		}
	}
}

func (p *parser) foreignKey() (*ForeignKey, error) {
	// FOREIGN already consumed.
	if err := p.expectKeyword("KEY"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	cols, err := p.identList()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	// Paper spells it REF; standard SQL says REFERENCES.
	if !p.acceptKeyword("REF") && !p.acceptKeyword("REFERENCES") {
		return nil, p.errorf("expected REF or REFERENCES")
	}
	refTable, err := p.ident()
	if err != nil {
		return nil, err
	}
	fk := &ForeignKey{Columns: cols, RefTable: refTable}
	if p.acceptSymbol("(") {
		refCols, err := p.identList()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		fk.RefColumns = refCols
	}
	return fk, nil
}

func (p *parser) createIndex(unique bool) (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	cols, err := p.identList()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CreateIndex{Name: name, Table: table, Columns: cols, Unique: unique}, nil
}

func (p *parser) dropStmt() (Statement, error) {
	p.pos++ // DROP
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	ifExists := false
	if p.acceptKeyword("IS") { // not standard; ignore
		return nil, p.errorf("unexpected IS")
	}
	if t := p.peek(); t.Kind == lexer.Ident && strings.EqualFold(t.Value, "if") {
		p.pos++
		if t2 := p.peek(); t2.Kind == lexer.Ident && strings.EqualFold(t2.Value, "exists") {
			p.pos++
			ifExists = true
		} else {
			return nil, p.errorf("expected EXISTS after IF")
		}
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name, IfExists: ifExists}, nil
}

func (p *parser) insertStmt() (Statement, error) {
	p.pos++ // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.acceptSymbol("(") {
		cols, err := p.identList()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ins.Columns = cols
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) updateStmt() (Statement, error) {
	p.pos++ // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	upd := &Update{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, Assignment{Column: col, Value: val})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		upd.Where = w
	}
	return upd, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	p.pos++ // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.acceptKeyword("WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

func (p *parser) selectStmt() (Statement, error) {
	p.pos++ // SELECT
	sel := &Select{Limit: -1}
	if p.acceptKeyword("DISTINCT") {
		sel.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, *item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		first, err := p.tableRef(JoinNone)
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, *first)
		for {
			var jt JoinType
			switch {
			case p.acceptSymbol(","):
				jt = JoinCross
			case p.acceptKeyword("CROSS"):
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				jt = JoinCross
			case p.acceptKeyword("LEFT"):
				p.acceptKeyword("OUTER")
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				jt = JoinLeft
			case p.acceptKeyword("INNER"):
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				jt = JoinInner
			case p.acceptKeyword("JOIN"):
				jt = JoinInner
			default:
				jt = JoinNone
			}
			if jt == JoinNone {
				break
			}
			tr, err := p.tableRef(jt)
			if err != nil {
				return nil, err
			}
			if jt != JoinCross {
				if err := p.expectKeyword("ON"); err != nil {
					return nil, err
				}
				on, err := p.expr()
				if err != nil {
					return nil, err
				}
				tr.On = on
			}
			sel.From = append(sel.From, *tr)
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, g)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.intLit()
		if err != nil {
			return nil, err
		}
		sel.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		n, err := p.intLit()
		if err != nil {
			return nil, err
		}
		sel.Offset = n
	}
	return sel, nil
}

func (p *parser) selectItem() (*SelectItem, error) {
	if p.acceptSymbol("*") {
		return &SelectItem{Star: true}, nil
	}
	// t.* form: ident "." "*"
	if t := p.peek(); t.Kind == lexer.Ident && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Kind == lexer.Symbol && p.toks[p.pos+1].Value == "." &&
		p.toks[p.pos+2].Kind == lexer.Symbol && p.toks[p.pos+2].Value == "*" {
		p.pos += 3
		return &SelectItem{Star: true, StarTable: t.Value}, nil
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	item := &SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.ident()
		if err != nil {
			return nil, err
		}
		item.Alias = alias
	} else if t := p.peek(); t.Kind == lexer.Ident {
		p.pos++
		item.Alias = t.Value
	}
	return item, nil
}

func (p *parser) tableRef(jt JoinType) (*TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	tr := &TableRef{Table: name, Join: jt}
	if p.acceptKeyword("AS") {
		alias, err := p.ident()
		if err != nil {
			return nil, err
		}
		tr.Alias = alias
	} else if t := p.peek(); t.Kind == lexer.Ident {
		p.pos++
		tr.Alias = t.Value
	}
	return tr, nil
}

func (p *parser) stringLit() (string, error) {
	t := p.peek()
	if t.Kind != lexer.String {
		return "", p.errorf("expected string literal, got %s", p.peekDesc())
	}
	p.pos++
	return t.Value, nil
}

func (p *parser) intLit() (int64, error) {
	t := p.peek()
	if t.Kind != lexer.Number {
		return 0, p.errorf("expected number, got %s", p.peekDesc())
	}
	n, err := strconv.ParseInt(t.Value, 10, 64)
	if err != nil {
		return 0, p.errorf("expected integer, got %q", t.Value)
	}
	p.pos++
	return n, nil
}

// ---------------------------------------------------------------------------
// Expression parsing (precedence climbing)

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Expr, error) {
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL / CNULL
	if p.acceptKeyword("IS") {
		neg := p.acceptKeyword("NOT")
		switch {
		case p.acceptKeyword("NULL"):
			return &IsNullExpr{E: l, Neg: neg}, nil
		case p.acceptKeyword("CNULL"):
			return &IsNullExpr{E: l, CNull: true, Neg: neg}, nil
		default:
			return nil, p.errorf("expected NULL or CNULL after IS")
		}
	}
	neg := false
	if t := p.peek(); t.Kind == lexer.Keyword && t.Value == "NOT" &&
		p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == lexer.Keyword &&
		(p.toks[p.pos+1].Value == "IN" || p.toks[p.pos+1].Value == "LIKE" || p.toks[p.pos+1].Value == "BETWEEN") {
		p.pos++
		neg = true
	}
	switch {
	case p.acceptKeyword("IN"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		// Subquery form: IN (SELECT ...).
		if tok := p.peek(); tok.Kind == lexer.Keyword && tok.Value == "SELECT" {
			sub, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &InExpr{E: l, Sub: sub.(*Select), Neg: neg}, nil
		}
		var list []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{E: l, List: list, Neg: neg}, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.additive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.additive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi, Neg: neg}, nil
	case p.acceptKeyword("LIKE"):
		r, err := p.additive()
		if err != nil {
			return nil, err
		}
		var e Expr = &BinaryExpr{Op: "LIKE", L: l, R: r}
		if neg {
			e = &UnaryExpr{Op: "NOT", E: e}
		}
		return e, nil
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "~=", "=", "<", ">"} {
		if p.acceptSymbol(op) {
			r, err := p.additive()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) additive() (Expr, error) {
	l, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptSymbol("+"):
			op = "+"
		case p.acceptSymbol("-"):
			op = "-"
		case p.acceptSymbol("||"):
			op = "||"
		default:
			return l, nil
		}
		r, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) multiplicative() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptSymbol("*"):
			op = "*"
		case p.acceptSymbol("/"):
			op = "/"
		case p.acceptSymbol("%"):
			op = "%"
		default:
			return l, nil
		}
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) unary() (Expr, error) {
	if p.acceptSymbol("-") {
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Literal); ok {
			switch lit.Val.Kind() {
			case sqltypes.KindInt:
				return &Literal{Val: sqltypes.NewInt(-lit.Val.Int())}, nil
			case sqltypes.KindFloat:
				return &Literal{Val: sqltypes.NewFloat(-lit.Val.Float())}, nil
			}
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	p.acceptSymbol("+")
	return p.primary()
}

// scalarFuncs are non-aggregate builtins callable by name.
var scalarFuncs = map[string]bool{
	"LOWER": true, "UPPER": true, "LENGTH": true, "TRIM": true,
	"ABS": true, "ROUND": true, "COALESCE": true, "SUBSTR": true,
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case lexer.Number:
		p.pos++
		if strings.ContainsAny(t.Value, ".eE") {
			f, err := strconv.ParseFloat(t.Value, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.Value)
			}
			return &Literal{Val: sqltypes.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.Value, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %q", t.Value)
		}
		return &Literal{Val: sqltypes.NewInt(n)}, nil
	case lexer.String:
		p.pos++
		return &Literal{Val: sqltypes.NewString(t.Value)}, nil
	case lexer.Keyword:
		switch t.Value {
		case "NULL":
			p.pos++
			return &Literal{Val: sqltypes.Null()}, nil
		case "CNULL":
			p.pos++
			return &Literal{Val: sqltypes.CNull()}, nil
		case "TRUE":
			p.pos++
			return &Literal{Val: sqltypes.NewBool(true)}, nil
		case "FALSE":
			p.pos++
			return &Literal{Val: sqltypes.NewBool(false)}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX", "CROWDEQUAL", "CROWDORDER":
			p.pos++
			return p.funcCall(t.Value)
		}
		return nil, p.errorf("unexpected keyword %q in expression", t.Value)
	case lexer.Ident:
		// function call?
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == lexer.Symbol && p.toks[p.pos+1].Value == "(" {
			name := strings.ToUpper(t.Value)
			if !scalarFuncs[name] {
				return nil, p.errorf("unknown function %q", t.Value)
			}
			p.pos++
			return p.funcCall(name)
		}
		p.pos++
		// qualified column t.c
		if p.acceptSymbol(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.Value, Name: col}, nil
		}
		return &ColumnRef{Name: t.Value}, nil
	case lexer.Symbol:
		if t.Value == "(" {
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %s in expression", p.peekDesc())
}

func (p *parser) funcCall(name string) (Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	fc := &FuncCall{Name: name}
	if name == "COUNT" && p.acceptSymbol("*") {
		fc.Star = true
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.acceptSymbol(")") {
		return nil, p.errorf("%s requires arguments", name)
	}
	for {
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		fc.Args = append(fc.Args, a)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if err := checkArity(fc); err != nil {
		return nil, err
	}
	return fc, nil
}

func checkArity(fc *FuncCall) error {
	n := len(fc.Args)
	switch fc.Name {
	case "CROWDEQUAL":
		// CROWDEQUAL(l, r [, question])
		if n != 2 && n != 3 {
			return fmt.Errorf("parser: CROWDEQUAL takes 2 or 3 arguments, got %d", n)
		}
	case "CROWDORDER":
		// CROWDORDER(expr, "question") — paper Example 3.
		if n != 1 && n != 2 {
			return fmt.Errorf("parser: CROWDORDER takes 1 or 2 arguments, got %d", n)
		}
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "LOWER", "UPPER", "LENGTH", "TRIM", "ABS":
		if n != 1 {
			return fmt.Errorf("parser: %s takes 1 argument, got %d", fc.Name, n)
		}
	case "ROUND", "SUBSTR":
		if n < 1 || n > 3 {
			return fmt.Errorf("parser: %s takes 1-3 arguments, got %d", fc.Name, n)
		}
	}
	return nil
}
